let check_p name p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg (name ^ ": congestion probability must lie in (0, 1)")

let pa_window p =
  check_p "Tcp_model.pa_window" p;
  sqrt (2.0 *. (1.0 -. p)) /. sqrt p

let pa_window_approx p =
  check_p "Tcp_model.pa_window_approx" p;
  sqrt 2.0 /. sqrt p

let drift ~p w =
  check_p "Tcp_model.drift" p;
  if w <= 0.0 then invalid_arg "Tcp_model.drift: non-positive window";
  ((1.0 -. p) /. w) -. (p *. w /. 2.0)

let mahdavi_floyd_rate ~rtt ~p =
  check_p "Tcp_model.mahdavi_floyd_rate" p;
  if rtt <= 0.0 then invalid_arg "Tcp_model.mahdavi_floyd_rate: bad rtt";
  1.3 /. (rtt *. sqrt p)

let throughput ~rtt ~p =
  if rtt <= 0.0 then invalid_arg "Tcp_model.throughput: bad rtt";
  pa_window p /. rtt

let congestion_probability_for_window w =
  if w <= 0.0 then
    invalid_arg "Tcp_model.congestion_probability_for_window: bad window";
  2.0 /. ((w *. w) +. 2.0)

let moderate_congestion_limit = 0.05

let simulate_pa_window ~rng ~p ~steps =
  check_p "Tcp_model.simulate_pa_window" p;
  if steps <= 0 then invalid_arg "Tcp_model.simulate_pa_window: bad steps";
  let w = ref (pa_window p) in
  let acc = ref 0.0 in
  for _ = 1 to steps do
    if Sim.Rng.bernoulli rng p then w := Stdlib.max 1.0 (!w /. 2.0)
    else w := !w +. (1.0 /. !w);
    acc := !acc +. !w
  done;
  !acc /. float_of_int steps
