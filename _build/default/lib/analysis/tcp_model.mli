(** Closed-form TCP steady-state models (section 4.1).

    [pa_window p] is the proportional-average window
    [sqrt(2(1-p)/p)] from the drift analysis of Ott, Kemperman &
    Mathis; [mahdavi_floyd_rate] is the popular
    [1.3 / (rtt * sqrt p)] throughput estimate the paper compares
    against.  Both hold for moderate congestion (p < 5%). *)

val pa_window : float -> float
(** Proportional-average window (packets) at congestion probability
    [p]; raises [Invalid_argument] outside (0, 1). *)

val pa_window_approx : float -> float
(** The small-p simplification [sqrt 2 / sqrt p]. *)

val drift : p:float -> float -> float
(** [drift ~p w]: expected per-ack window drift
    [(1-p)/w - p*w/2]; zero exactly at {!pa_window}. *)

val mahdavi_floyd_rate : rtt:float -> p:float -> float
(** Throughput (pkt/s) [1.3/(rtt*sqrt p)]. *)

val throughput : rtt:float -> p:float -> float
(** PA-window throughput estimate [pa_window p / rtt]. *)

val congestion_probability_for_window : float -> float
(** Inverse of {!pa_window}: the congestion probability yielding a
    given PA window ([p = 2/(w^2+2)]). *)

val moderate_congestion_limit : float
(** 0.05: the regime in which these formulas (and the paper's
    theorems) apply. *)

val simulate_pa_window :
  rng:Sim.Rng.t -> p:float -> steps:int -> float
(** Monte-Carlo check of the drift model: iterate the idealised window
    process ([w + 1/w] w.p. [1-p], [w/2] w.p. [p]) and return the
    sample-average window. *)
