(** Markov "particle" model of two competing RLA sessions
    (section 4.4, figures 3-5).

    The pair of congestion windows [(W1, W2)] moves on the plane in
    steps of [2*RTT]: below the pipe both windows grow by 2; at or
    above it each sender independently keeps growing with probability
    [(1-1/n)^n] or halves [i] times with the binomial probability of
    [i] of its [n] congestion signals passing the random-listening
    filter. *)

type pipes = { pipe_sizes : float array; counts : int array }
(** [k] distinct pipe levels, [counts.(i)] troubled receivers at level
    [pipe_sizes.(i)]; arrays must have equal nonzero length and
    ascending sizes. *)

val uniform_pipes : pipe:float -> n:int -> pipes
(** All [n] receivers behind one pipe. *)

val signals_at : pipes -> float -> int
(** Number of congestion signals fed to each sender when
    [w1 + w2] equals the given sum. *)

val drift_at : pipes -> w:float -> sum:float -> float
(** Expected drift of one window at value [w] when the current window
    sum is [sum] (time unit: one step of [2*RTT]). *)

type field_point = { x : float; y : float; dx : float; dy : float }

val drift_field :
  pipes -> x_max:float -> y_max:float -> step:float -> field_point list
(** The figure-4 drift diagram, sampled on a grid. *)

type run_stats = {
  density : Stats.Density.t;
  mean_w1 : float;
  mean_w2 : float;
  mean_abs_diff : float;
  centroid : float * float;
  mass_near_fair_point : float;
      (** Fraction of visits within 25% of the fair operating point. *)
}

val simulate :
  rng:Sim.Rng.t ->
  pipes ->
  steps:int ->
  ?cells:int ->
  ?w_max:float ->
  unit ->
  run_stats
(** Monte-Carlo run of the two-session chain recording the
    figure-5 occupancy density.  The fair operating point is
    [(max_pipe/2 - 1, max_pipe/2 - 1)] scaled to the largest pipe. *)

val fair_point : pipes -> float * float
(** The desired operating point: equal split of the smallest pipe. *)
