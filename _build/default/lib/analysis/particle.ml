type pipes = { pipe_sizes : float array; counts : int array }

let validate p =
  let k = Array.length p.pipe_sizes in
  if k = 0 || Array.length p.counts <> k then
    invalid_arg "Particle: malformed pipes";
  for i = 0 to k - 1 do
    if p.counts.(i) <= 0 then invalid_arg "Particle: non-positive count";
    if i > 0 && p.pipe_sizes.(i) <= p.pipe_sizes.(i - 1) then
      invalid_arg "Particle: pipe sizes must ascend"
  done

let uniform_pipes ~pipe ~n =
  if pipe <= 0.0 || n <= 0 then invalid_arg "Particle.uniform_pipes";
  { pipe_sizes = [| pipe |]; counts = [| n |] }

let total_receivers p = Array.fold_left ( + ) 0 p.counts

let signals_at p sum =
  validate p;
  let m = ref 0 in
  Array.iteri
    (fun i size -> if sum >= size then m := !m + p.counts.(i))
    p.pipe_sizes;
  !m

let binomial_pmf n k q =
  let rec choose n k =
    if k = 0 || k = n then 1.0
    else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  choose n k *. (q ** float_of_int k) *. ((1.0 -. q) ** float_of_int (n - k))

(* Per-step distribution of halvings for one sender given m signals and
   pthresh = 1/n_total. *)
let cut_dist p m =
  let n_total = total_receivers p in
  let q = 1.0 /. float_of_int n_total in
  Array.init (m + 1) (fun k -> binomial_pmf m k q)

let drift_at p ~w ~sum =
  validate p;
  if w <= 0.0 then invalid_arg "Particle.drift_at: bad window";
  let m = signals_at p sum in
  if m = 0 then 2.0
  else begin
    let dist = cut_dist p m in
    let d = ref (2.0 *. dist.(0)) in
    for k = 1 to m do
      let shrink = 1.0 -. (1.0 /. (2.0 ** float_of_int k)) in
      d := !d -. (dist.(k) *. shrink *. w)
    done;
    !d
  end

type field_point = { x : float; y : float; dx : float; dy : float }

let drift_field p ~x_max ~y_max ~step =
  validate p;
  if step <= 0.0 then invalid_arg "Particle.drift_field: bad step";
  let points = ref [] in
  let x = ref step in
  while !x <= x_max do
    let y = ref step in
    while !y <= y_max do
      let sum = !x +. !y in
      points :=
        {
          x = !x;
          y = !y;
          dx = drift_at p ~w:!x ~sum;
          dy = drift_at p ~w:!y ~sum;
        }
        :: !points;
      y := !y +. step
    done;
    x := !x +. step
  done;
  List.rev !points

let fair_point p =
  validate p;
  let smallest = p.pipe_sizes.(0) in
  (smallest /. 2.0, smallest /. 2.0)

type run_stats = {
  density : Stats.Density.t;
  mean_w1 : float;
  mean_w2 : float;
  mean_abs_diff : float;
  centroid : float * float;
  mass_near_fair_point : float;
}

let step_window rng p m w =
  if m = 0 then w +. 2.0
  else begin
    let n_total = total_receivers p in
    let q = 1.0 /. float_of_int n_total in
    (* Sample the number of accepted congestion signals directly. *)
    let k = ref 0 in
    for _ = 1 to m do
      if Sim.Rng.bernoulli rng q then incr k
    done;
    if !k = 0 then w +. 2.0
    else Stdlib.max 1.0 (w /. (2.0 ** float_of_int !k))
  end

let simulate ~rng p ~steps ?(cells = 40) ?w_max () =
  validate p;
  if steps <= 0 then invalid_arg "Particle.simulate: bad steps";
  let max_pipe = p.pipe_sizes.(Array.length p.pipe_sizes - 1) in
  let w_max = match w_max with Some w -> w | None -> max_pipe *. 1.2 in
  let density =
    Stats.Density.create ~x_lo:0.0 ~x_hi:w_max ~y_lo:0.0 ~y_hi:w_max ~cells
  in
  let w1 = ref 1.0 and w2 = ref 1.0 in
  let sum1 = ref 0.0 and sum2 = ref 0.0 and sum_diff = ref 0.0 in
  for _ = 1 to steps do
    let m = signals_at p (!w1 +. !w2) in
    let next1 = step_window rng p m !w1 in
    let next2 = step_window rng p m !w2 in
    w1 := next1;
    w2 := next2;
    Stats.Density.add density ~x:!w1 ~y:!w2;
    sum1 := !sum1 +. !w1;
    sum2 := !sum2 +. !w2;
    sum_diff := !sum_diff +. abs_float (!w1 -. !w2)
  done;
  let n = float_of_int steps in
  let fx, fy = fair_point p in
  {
    density;
    mean_w1 = !sum1 /. n;
    mean_w2 = !sum2 /. n;
    mean_abs_diff = !sum_diff /. n;
    centroid = Stats.Density.centroid density;
    mass_near_fair_point =
      Stats.Density.mass_within density ~cx:fx ~cy:fy
        ~radius:(0.25 *. Stdlib.max fx 1.0 *. 2.0);
  }
