lib/analysis/tcp_model.mli: Sim
