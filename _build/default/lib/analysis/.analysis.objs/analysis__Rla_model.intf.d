lib/analysis/rla_model.mli: Sim
