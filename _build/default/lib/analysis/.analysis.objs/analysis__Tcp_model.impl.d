lib/analysis/tcp_model.ml: Sim Stdlib
