lib/analysis/rla_model.ml: Array Sim Stdlib Tcp_model
