lib/analysis/particle.ml: Array List Sim Stats Stdlib
