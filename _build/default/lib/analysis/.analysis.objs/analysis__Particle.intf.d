lib/analysis/particle.mli: Sim Stats
