lib/net/queue_disc.mli: Red Sim
