lib/net/link.ml: Packet Queue Queue_disc Sim Stdlib
