lib/net/packet.ml: Format Printf
