lib/net/red.mli: Sim
