lib/net/node.ml: Hashtbl Link List Packet
