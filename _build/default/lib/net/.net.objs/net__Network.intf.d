lib/net/network.mli: Link Node Packet Sim
