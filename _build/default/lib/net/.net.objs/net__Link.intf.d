lib/net/link.mli: Packet Queue_disc Sim
