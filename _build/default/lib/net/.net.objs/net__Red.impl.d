lib/net/red.ml: Sim Stdlib
