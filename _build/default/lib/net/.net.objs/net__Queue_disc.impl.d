lib/net/queue_disc.ml: Red Sim
