type addr = int

type group = int

type flow = int

type dest = Unicast of addr | Multicast of group

type payload = ..

type payload += Raw

type t = {
  uid : int;
  flow : flow;
  src : addr;
  dst : dest;
  size : int;
  payload : payload;
  born : float;
  ecn : bool;
}

let dest_to_string = function
  | Unicast a -> Printf.sprintf "node:%d" a
  | Multicast g -> Printf.sprintf "group:%d" g

let pp ppf t =
  Format.fprintf ppf "pkt#%d flow:%d %d->%s %dB" t.uid t.flow t.src
    (dest_to_string t.dst) t.size
