(** Simulated packets.

    A packet carries an extensible [payload] so each transport protocol
    (TCP, RLA, the rate-based baselines) defines its own header type
    without this module depending on any of them. *)

type addr = int
(** Node identifier. *)

type group = int
(** Multicast group identifier. *)

type flow = int
(** Flow (connection/session) identifier; used to dispatch a delivered
    packet to the right endpoint agent. *)

type dest = Unicast of addr | Multicast of group

type payload = ..
(** Extensible: each protocol adds its own constructors. *)

type payload += Raw
(** Payload-free filler traffic. *)

type t = {
  uid : int;  (** Unique per network; never reused. *)
  flow : flow;
  src : addr;
  dst : dest;
  size : int;  (** Bytes, headers included. *)
  payload : payload;
  born : float;  (** Creation time, for end-to-end delay accounting. *)
  ecn : bool;
      (** Congestion-experienced mark: set by an ECN-enabled RED
          gateway instead of dropping; echoed back by receivers so
          senders can react without packet loss. *)
}

val dest_to_string : dest -> string

val pp : Format.formatter -> t -> unit
