type Net.Packet.payload +=
  | Rla_data of { seq : int; sent_at : float; rexmit : bool }
  | Rla_ack of {
      rcvr : Net.Packet.addr;
      cum_ack : int;
      blocks : Tcp.Wire.sack_block list;
      echo : float;
      ece : bool;
    }

let data_size = Tcp.Wire.data_size

let ack_size = Tcp.Wire.ack_size
