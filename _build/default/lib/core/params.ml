type rtt_scaling = Equal_rtt | Rtt_power of float

type trouble_counting = Dynamic | All_receivers

type t = {
  eta : float;
  group_rtt_factor : float;
  forced_cut_factor : float;
  rtt_scaling : rtt_scaling;
  trouble_counting : trouble_counting;
  rexmit_thresh : int;
  awnd_weight : float;
  interval_ewma_weight : float;
  srtt_weight : float;
  dupthresh : int;
  init_cwnd : float;
  init_ssthresh : float;
  max_burst : int;
  rcv_buffer : int;
  data_size : int;
  min_rto : float;
  ack_jitter : float;
  rexmit_timeout_factor : float;
}

let default =
  {
    eta = 20.0;
    group_rtt_factor = 2.0;
    forced_cut_factor = 2.0;
    rtt_scaling = Equal_rtt;
    trouble_counting = Dynamic;
    rexmit_thresh = 0;
    awnd_weight = 0.01;
    interval_ewma_weight = 0.125;
    srtt_weight = 0.125;
    dupthresh = 3;
    init_cwnd = 1.0;
    init_ssthresh = 64.0;
    max_burst = 4;
    rcv_buffer = 1_000_000;
    data_size = 1000;
    min_rto = 1.0;
    ack_jitter = 0.002;
    rexmit_timeout_factor = 2.0;
  }

let generalized ?(k = 2.0) t = { t with rtt_scaling = Rtt_power k }
