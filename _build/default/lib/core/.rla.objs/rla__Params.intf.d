lib/core/params.mli:
