lib/core/sender.ml: Array Hashtbl List Net Params Rcv_state Receiver Sim Stats Stdlib Tcp Wire
