lib/core/params.ml:
