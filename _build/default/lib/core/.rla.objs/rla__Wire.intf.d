lib/core/wire.mli: Net Tcp
