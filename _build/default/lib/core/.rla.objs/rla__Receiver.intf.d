lib/core/receiver.mli: Net
