lib/core/sender.mli: Net Params Receiver
