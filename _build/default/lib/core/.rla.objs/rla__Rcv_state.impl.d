lib/core/rcv_state.ml: Net Params Stats Stdlib Tcp
