lib/core/wire.ml: Net Tcp
