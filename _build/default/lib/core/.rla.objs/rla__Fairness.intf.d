lib/core/fairness.mli:
