lib/core/fairness.ml: List
