lib/core/receiver.ml: Hashtbl List Net Sim Tcp Wire
