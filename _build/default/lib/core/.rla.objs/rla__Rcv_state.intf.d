lib/core/rcv_state.mli: Net Params Tcp
