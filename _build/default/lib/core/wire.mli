(** RLA packet payloads.

    Data travels down the multicast tree (retransmissions optionally by
    unicast); every receiver acknowledges by unicast with the same
    cumulative + selective format as TCP SACK (the algorithm "closely
    follows the TCP selective acknowledgment procedure"). *)

type Net.Packet.payload +=
  | Rla_data of { seq : int; sent_at : float; rexmit : bool }
  | Rla_ack of {
      rcvr : Net.Packet.addr;  (** Which receiver is acknowledging. *)
      cum_ack : int;
      blocks : Tcp.Wire.sack_block list;
      echo : float;
      ece : bool;  (** Echo of an ECN congestion mark. *)
    }

val data_size : int

val ack_size : int
