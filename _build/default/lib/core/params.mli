(** RLA tunables.

    Defaults follow section 3.3 and section 5 of the paper; every knob
    that the paper calls a design choice is exposed so the ablation
    benches can vary it. *)

type rtt_scaling =
  | Equal_rtt  (** Restricted topology: [pthresh = 1/num_trouble_rcvr]. *)
  | Rtt_power of float
      (** Generalized RLA (section 5.3):
          [pthresh = (srtt_i / srtt_max)^k / num_trouble_rcvr]. *)

type trouble_counting =
  | Dynamic
      (** Rule 6: count receivers whose congestion-signal cadence is
          within [eta] of the fastest-losing one. *)
  | All_receivers
      (** The paper's evaluation setting ("all receivers are troubled
          receivers"): [num_trouble_rcvr] equals the number of active
          receivers, making [pthresh = 1/N] throughout. *)

type t = {
  eta : float;
      (** Troubled-receiver threshold: receiver [i] is troubled iff its
          mean congestion-signal interval is below
          [eta * min_congestion_interval].  Paper recommends 20. *)
  group_rtt_factor : float;
      (** Losses within [group_rtt_factor * srtt_i] of the congestion
          period start collapse into one signal.  Paper: 2. *)
  forced_cut_factor : float;
      (** Force a cut when no cut happened for
          [forced_cut_factor * awnd * srtt_i] seconds.  Paper: 2.
          [infinity] disables forced cuts. *)
  rtt_scaling : rtt_scaling;
  trouble_counting : trouble_counting;
  rexmit_thresh : int;
      (** Retransmit by multicast when more than this many receivers
          request a packet; 0 (the paper's simulation setting) makes
          every retransmission multicast. *)
  awnd_weight : float;  (** EWMA weight for the average window. *)
  interval_ewma_weight : float;
      (** EWMA weight for congestion-signal intervals. *)
  srtt_weight : float;  (** Per-receiver smoothed RTT gain (TCP's 1/8). *)
  dupthresh : int;  (** SACK loss-detection threshold (3). *)
  init_cwnd : float;
  init_ssthresh : float;
  max_burst : int;
  rcv_buffer : int;
      (** Receiver buffer (packets): the send window upper bound is
          [min_last_ack + rcv_buffer]. *)
  data_size : int;
  min_rto : float;
  ack_jitter : float;
      (** Receivers delay each acknowledgment by a uniform random time
          up to this bound (seconds).  A multicast data packet reaches
          all receivers of an equal-RTT tree at the same instant, so
          without jitter the resulting synchronized ack burst overflows
          the reverse bottleneck buffer with {e deterministic} victims
          — the same receivers lose their acks every round and the
          all-receiver frontier livelocks.  This is the ack-path analog
          of the paper's random-overhead device (section 3.1);
          2 ms is negligible against the 230 ms session RTT. *)
  rexmit_timeout_factor : float;
      (** A retransmission unacknowledged for
          [rexmit_timeout_factor * srtt_i] is presumed lost and
          re-requested, instead of stalling the acked-by-all frontier
          until the global timeout collapses the window.  [infinity]
          disables the mechanism (ablation hook).  Default 2. *)
}

val default : t

val generalized : ?k:float -> t -> t
(** Switch to the generalized pthresh with exponent [k] (default 2). *)
