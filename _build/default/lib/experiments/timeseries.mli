(** Time-series probes: sample arbitrary gauges (congestion windows,
    queue lengths, rates) on a fixed interval during a run and export
    aligned CSV — the raw material for the cwnd/queue evolution plots
    that complement the paper's tables. *)

type probe = { name : string; read : unit -> float }

type t

val create :
  net:Net.Network.t -> interval:float -> probes:probe list -> t
(** Starts sampling immediately; every [interval] seconds each probe is
    read once.  Sampling runs for the lifetime of the simulation. *)

val length : t -> int
(** Samples collected so far. *)

val names : t -> string list

val column : t -> string -> float array
(** Values for one probe; raises [Not_found] for unknown names. *)

val times : t -> float array

val to_csv : Format.formatter -> t -> unit
(** Header [time,<probe>...] then one row per sample. *)

val value_at : t -> string -> time:float -> float
(** The probe's last sampled value at or before [time]; raises
    [Invalid_argument] when [time] precedes the first sample. *)
