type point = {
  p : float;
  measured_cwnd : float;
  predicted_cwnd : float;
  measured_throughput : float;
  predicted_throughput : float;
  ratio : float;
}

type config = {
  ps : float list;
  duration : float;
  warmup : float;
  seed : int;
  rtt : float;
}

let default_config =
  {
    ps = [ 0.003; 0.005; 0.01; 0.02; 0.03; 0.05 ];
    duration = 300.0;
    warmup = 50.0;
    seed = 1;
    rtt = 0.1;
  }

let run_point ~config ~p =
  if config.duration <= config.warmup then
    invalid_arg "Validation.run: duration must exceed warmup";
  let net = Net.Network.create ~seed:config.seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let r = Net.Node.id (Net.Network.add_node net) in
  (* Ample bandwidth and buffer: the window, not the queue, limits the
     flow, so drops come only from the Bernoulli process. *)
  let link =
    {
      Net.Link.bandwidth_bps = 80.0e6;
      prop_delay = config.rtt /. 2.0;
      queue = Net.Queue_disc.Bernoulli_loss p;
      capacity = 10_000;
      phase_jitter = false;
    }
  in
  ignore (Net.Network.duplex net s r link);
  Net.Network.install_routes net;
  let tcp = Tcp.Sender.create ~net ~src:s ~dst:r () in
  Net.Network.run_until net config.warmup;
  Tcp.Sender.reset_measurement tcp;
  Net.Network.run_until net config.duration;
  let snap = Tcp.Sender.snapshot tcp in
  let predicted_cwnd = Analysis.Tcp_model.pa_window p in
  let rtt = if snap.Tcp.Sender.rtt_avg > 0.0 then snap.Tcp.Sender.rtt_avg else config.rtt in
  {
    p;
    measured_cwnd = snap.Tcp.Sender.cwnd_avg;
    predicted_cwnd;
    measured_throughput = snap.Tcp.Sender.throughput;
    predicted_throughput = predicted_cwnd /. rtt;
    ratio = snap.Tcp.Sender.cwnd_avg /. predicted_cwnd;
  }

let run config = List.map (fun p -> run_point ~config ~p) config.ps
