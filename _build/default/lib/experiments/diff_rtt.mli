(** Section 5.3 / figure 10: the generalized RLA on a topology with
    heterogeneous round-trip times.

    The nine level-3 gateways G31..G39 join the multicast session as
    receivers alongside the 27 leaves (36 receivers total); the G3
    receivers sit 100 ms (one way) closer to the root.  The generalized
    RLA scales the cut probability by [(srtt_i / srtt_max)^2] so that
    congestion signals from short-RTT receivers are mostly ignored.
    Bottlenecks at the level-2 links (case 1) or level-3 links
    (case 2). *)

type config = {
  gateway : Scenario.gateway;
  case : Tree.case;  (** [Tree.L2_all] or [Tree.L3_all]. *)
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;  (** Defaults to the generalized variant. *)
  share : float;
}

val default_config : case_index:int -> config
(** [case_index] 1 -> L2 bottlenecks, 2 -> L3 bottlenecks (the paper's
    figure-10 numbering); drop-tail gateways. *)

type result = {
  config : config;
  rla : Rla.Sender.snapshot;
  wtcp : Tcp.Sender.snapshot;
  btcp : Tcp.Sender.snapshot;
  n_receivers : int;
  ratio : float;  (** RLA / worst TCP throughput. *)
}

val run : config -> result

val sweep :
  case_indices:int list ->
  ?duration:float ->
  ?warmup:float ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  result Runner.Pool.outcome list
(** Run the figure-10 cases on a domain pool; outcomes in submission
    order, bit-identical for any [jobs] count. *)
