(** Short-flow opportunity.

    Section 2 of the paper limits its fairness guarantees to long-lived
    connections but promises that the RLA "does provide opportunities
    for [short-lived connections] to be set up and to transmit data".
    This experiment injects short TCP flows (Poisson arrivals) into a
    bottleneck occupied by a configurable long-lived background —
    nothing, a persistent TCP, the RLA, or an uncontrolled CBR blast —
    and compares the short flows' completion times.  A well-behaved
    background leaves completion times close to the TCP-background
    reference; CBR starves them. *)

type background =
  | Bg_none
  | Bg_tcp  (** One persistent TCP per branch. *)
  | Bg_rla  (** An RLA session over all branches. *)
  | Bg_cbr of float  (** Constant-rate multicast at this rate (pkt/s). *)

val background_name : background -> string

type config = {
  background : background;
  flow_size : int;  (** Packets per short flow (paper-era web object). *)
  arrival_rate : float;  (** Short-flow arrivals per second (Poisson). *)
  share : float;  (** Per-branch bottleneck fair share, pkt/s. *)
  duration : float;
  warmup : float;
  seed : int;
}

val default_config : background -> config
(** 20-packet flows, one arrival per 2 s, 100 pkt/s shares, 300 s. *)

type result = {
  config : config;
  launched : int;  (** Short flows started after warm-up. *)
  completed : int;
  mean_completion : float;  (** Seconds; completed flows only. *)
  p95_completion : float;
  background_throughput : float;  (** Long-lived background's goodput. *)
}

val run : config -> result

val print : Format.formatter -> result list -> unit
