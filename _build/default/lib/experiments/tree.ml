type case =
  | L1_bottleneck
  | L2_all
  | L3_all
  | L4_all
  | L4_first of int
  | L2_single

let case_of_index = function
  | 1 -> L1_bottleneck
  | 2 -> L3_all
  | 3 -> L4_all
  | 4 -> L4_first 5
  | 5 -> L2_single
  | n -> invalid_arg (Printf.sprintf "Tree.case_of_index: %d not in 1..5" n)

let case_name = function
  | L1_bottleneck -> "L1"
  | L2_all -> "L2i, i=1..3"
  | L3_all -> "L3i, i=1..9"
  | L4_all -> "L4i, i=1..27"
  | L4_first k -> Printf.sprintf "L4i, i=1..%d" k
  | L2_single -> "L21"

type t = {
  net : Net.Network.t;
  root : Net.Packet.addr;
  g1 : Net.Packet.addr;
  g2 : Net.Packet.addr array;
  g3 : Net.Packet.addr array;
  leaves : Net.Packet.addr array;
  congested_leaves : Net.Packet.addr list;
}

let receivers t ~include_g3 =
  let leaves = Array.to_list t.leaves in
  if include_g3 then Array.to_list t.g3 @ leaves else leaves

(* Level-4 leaf [i] (0-based) hangs under G3 [i/3], which hangs under
   G2 [i/9]. *)
let build ~seed ~gateway ~case ?(share = 100.0) ?(buffer = 20)
    ?(receivers_include_g3 = false) ?phase_jitter ?(ecn = false) () =
  let net = Net.Network.create ~seed () in
  let root = Net.Node.id (Net.Network.add_node net) in
  let g1 = Net.Node.id (Net.Network.add_node net) in
  let g2 = Array.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  let g3 = Array.init 9 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  let leaves =
    Array.init 27 (fun _ -> Net.Node.id (Net.Network.add_node net))
  in
  (* Unicast TCP flows crossing each link level: one TCP per leaf (the
     paper's background load stays on the leaves even when the G3
     gateways join the multicast group, as its figure-10 TCP rows all
     show leaf-level round-trip times). *)
  ignore receivers_include_g3;
  let tcp_through_l1 = 27 in
  let tcp_through_l2 = 9 in
  let tcp_through_l3 = 3 in
  let tcp_through_l4 = 1 in
  let congested_l1 = case = L1_bottleneck in
  let congested_l2 i =
    match case with
    | L2_all -> true
    | L2_single -> i = 0
    | L1_bottleneck | L3_all | L4_all | L4_first _ -> false
  in
  let congested_l3 _ = case = L3_all in
  let congested_l4 i =
    match case with
    | L4_all -> true
    | L4_first k -> i < k
    | L1_bottleneck | L2_all | L3_all | L2_single -> false
  in
  let config ~congested ~tcp_flows ~delay =
    if congested then
      Scenario.link_config ~gateway
        ~mu_pkts:(share *. float_of_int (tcp_flows + 1))
        ~delay ~buffer ?phase_jitter ~ecn ()
    else Scenario.fast_link_config ~gateway ~delay ?phase_jitter ()
  in
  ignore
    (Net.Network.duplex net root g1
       (config ~congested:congested_l1 ~tcp_flows:tcp_through_l1 ~delay:0.005));
  Array.iteri
    (fun i n ->
      ignore
        (Net.Network.duplex net g1 n
           (config ~congested:(congested_l2 i) ~tcp_flows:tcp_through_l2
              ~delay:0.005)))
    g2;
  Array.iteri
    (fun i n ->
      ignore
        (Net.Network.duplex net g2.(i / 3) n
           (config ~congested:(congested_l3 i) ~tcp_flows:tcp_through_l3
              ~delay:0.005)))
    g3;
  Array.iteri
    (fun i n ->
      ignore
        (Net.Network.duplex net g3.(i / 3) n
           (config ~congested:(congested_l4 i) ~tcp_flows:tcp_through_l4
              ~delay:0.1)))
    leaves;
  Net.Network.install_routes net;
  let congested_leaves =
    match case with
    | L1_bottleneck | L2_all | L3_all | L4_all -> Array.to_list leaves
    | L4_first k ->
        Array.to_list (Array.sub leaves 0 (Stdlib.min k (Array.length leaves)))
    | L2_single ->
        (* Leaves 0..8 sit below G2.(0), reached through L21. *)
        Array.to_list (Array.sub leaves 0 9)
  in
  { net; root; g1; g2; g3; leaves; congested_leaves }
