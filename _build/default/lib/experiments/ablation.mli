(** Ablations of the RLA design choices DESIGN.md calls out:
    congestion-signal grouping window, forced-cut horizon, the eta
    troubled-receiver threshold, phase-effect randomization, and the
    generalized-pthresh exponent.  Each variant reruns the case-3
    drop-tail sharing experiment. *)

type variant = {
  label : string;
  params : Rla.Params.t;
  phase_jitter : bool option;
}

val grouping_variants : unit -> variant list
(** group_rtt_factor in 0 / 1 / 2 / 4. *)

val forced_cut_variants : unit -> variant list
(** forced_cut_factor off (infinity) / 1 / 2 / 4. *)

val eta_variants : unit -> variant list
(** eta in 2 / 5 / 20 / 100. *)

val phase_variants : unit -> variant list
(** Phase jitter forced off vs on (drop-tail). *)

val rexmit_timeout_variants : unit -> variant list
(** Per-retransmission expiry off / 1.5 / 2 / 4 srtt. *)

val ack_jitter_variants : unit -> variant list
(** Receiver ack jitter 0 / 2 / 10 ms. *)

val rtt_exponent_variants : unit -> variant list
(** Generalized pthresh exponent k in 0 / 1 / 2. *)

type row = {
  variant : variant;
  rla_throughput : float;
  wtcp_throughput : float;
  ratio : float;
  congestion_signals : int;
  window_cuts : int;
  forced_cuts : int;
}

val run :
  variants:variant list ->
  ?case_index:int ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  row list
