(** Section 3.1: the macroscopic behaviour of a drop-tail buffer
    carrying TCP traffic.

    The paper observes that the bottleneck buffer oscillates between
    (nearly) empty and full, that packet drops cluster into short
    {e drop episodes} of at most about two round-trip times while
    consecutive episodes are much further apart, and grounds the RLA's
    loss-grouping rule (losses within [2*srtt_i] count as one
    congestion signal) on that observation.

    Rather than relying on queue-occupancy thresholds, this experiment
    observes the drops themselves: drops closer than [2*RTT] belong to
    one episode; a new episode starts otherwise.  It reports episode
    lengths, inter-episode gaps, and the time-average queue. *)

type config = {
  n_tcp : int;  (** Competing TCP flows through the bottleneck. *)
  mu_pkts : float;  (** Bottleneck capacity, pkt/s. *)
  buffer : int;  (** Buffer size in packets (paper: 20). *)
  rtt : float;  (** Two-way propagation delay. *)
  duration : float;
  warmup : float;
  seed : int;
}

val default_config : config
(** 4 TCP flows, 400 pkt/s, buffer 20, 200 ms RTT, 300 s. *)

type result = {
  config : config;
  episodes : int;  (** Drop episodes observed after warm-up. *)
  drops : int;  (** Individual packet drops. *)
  drops_per_episode : float;
  mean_episode_length : float;
      (** First drop to last drop of an episode (s). *)
  mean_gap : float;  (** First drop to first drop of the next episode. *)
  mean_queue : float;  (** Time-average queue length (packets). *)
  episode_over_2rtt : float;  (** mean episode length / (2 * RTT). *)
  gap_over_2rtt : float;  (** mean gap / (2 * RTT). *)
  measured_rtt : float;
}

val run : config -> result
