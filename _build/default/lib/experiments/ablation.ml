type variant = {
  label : string;
  params : Rla.Params.t;
  phase_jitter : bool option;
}

let base = Rla.Params.default

let plain label params = { label; params; phase_jitter = None }

let grouping_variants () =
  List.map
    (fun f ->
      plain
        (Printf.sprintf "grouping=%.0f RTT" f)
        { base with Rla.Params.group_rtt_factor = f })
    [ 0.0; 1.0; 2.0; 4.0 ]

let forced_cut_variants () =
  plain "forced-cut off" { base with Rla.Params.forced_cut_factor = infinity }
  :: List.map
       (fun f ->
         plain
           (Printf.sprintf "forced-cut=%.0fx" f)
           { base with Rla.Params.forced_cut_factor = f })
       [ 1.0; 2.0; 4.0 ]

let eta_variants () =
  List.map
    (fun eta ->
      plain (Printf.sprintf "eta=%.0f" eta) { base with Rla.Params.eta = eta })
    [ 2.0; 5.0; 20.0; 100.0 ]

let phase_variants () =
  [
    { label = "phase jitter off"; params = base; phase_jitter = Some false };
    { label = "phase jitter on"; params = base; phase_jitter = Some true };
  ]

let rexmit_timeout_variants () =
  plain "rexmit-timeout off"
    { base with Rla.Params.rexmit_timeout_factor = infinity }
  :: List.map
       (fun f ->
         plain
           (Printf.sprintf "rexmit-timeout=%.1f srtt" f)
           { base with Rla.Params.rexmit_timeout_factor = f })
       [ 1.5; 2.0; 4.0 ]

let ack_jitter_variants () =
  List.map
    (fun j ->
      plain
        (Printf.sprintf "ack-jitter=%.0f ms" (j *. 1000.0))
        { base with Rla.Params.ack_jitter = j })
    [ 0.0; 0.002; 0.01 ]

let rtt_exponent_variants () =
  List.map
    (fun k ->
      plain
        (Printf.sprintf "pthresh rtt exponent k=%.0f" k)
        (Rla.Params.generalized ~k base))
    [ 0.0; 1.0; 2.0 ]

type row = {
  variant : variant;
  rla_throughput : float;
  wtcp_throughput : float;
  ratio : float;
  congestion_signals : int;
  window_cuts : int;
  forced_cuts : int;
}

let run ~variants ?(case_index = 3) ?(duration = 250.0) ?(seed = 1) () =
  List.map
    (fun variant ->
      let config =
        {
          (Sharing.default_config ~gateway:Scenario.Droptail
             ~case:(Tree.case_of_index case_index))
          with
          Sharing.duration;
          seed;
          rla_params = variant.params;
          phase_jitter = variant.phase_jitter;
        }
      in
      let r = Sharing.run config in
      {
        variant;
        rla_throughput = r.Sharing.rla.Rla.Sender.send_rate;
        wtcp_throughput = r.Sharing.wtcp.Tcp.Sender.send_rate;
        ratio = r.Sharing.ratio;
        congestion_signals = r.Sharing.rla.Rla.Sender.congestion_signals;
        window_cuts = r.Sharing.rla.Rla.Sender.window_cuts;
        forced_cuts = r.Sharing.rla.Rla.Sender.forced_cuts;
      })
    variants
