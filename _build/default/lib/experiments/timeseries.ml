type probe = { name : string; read : unit -> float }

type column = { probe : probe; mutable data : float array; mutable len : int }

type t = {
  net : Net.Network.t;
  interval : float;
  columns : column list;
  mutable times : float array;
  mutable n : int;
}

let push_time t x =
  if t.n = Array.length t.times then begin
    let grown = Array.make (Stdlib.max 64 (2 * t.n)) 0.0 in
    Array.blit t.times 0 grown 0 t.n;
    t.times <- grown
  end;
  t.times.(t.n) <- x;
  t.n <- t.n + 1

let push_col c x =
  if c.len = Array.length c.data then begin
    let grown = Array.make (Stdlib.max 64 (2 * c.len)) 0.0 in
    Array.blit c.data 0 grown 0 c.len;
    c.data <- grown
  end;
  c.data.(c.len) <- x;
  c.len <- c.len + 1

let create ~net ~interval ~probes =
  if interval <= 0.0 then invalid_arg "Timeseries.create: bad interval";
  if probes = [] then invalid_arg "Timeseries.create: no probes";
  let t =
    {
      net;
      interval;
      columns = List.map (fun probe -> { probe; data = [||]; len = 0 }) probes;
      times = [||];
      n = 0;
    }
  in
  let sched = Net.Network.scheduler net in
  let rec tick () =
    push_time t (Sim.Scheduler.now sched);
    List.iter (fun c -> push_col c (c.probe.read ())) t.columns;
    ignore (Sim.Scheduler.schedule_after sched t.interval tick)
  in
  ignore (Sim.Scheduler.schedule_after sched interval tick);
  t

let length t = t.n

let names t = List.map (fun c -> c.probe.name) t.columns

let times t = Array.sub t.times 0 t.n

let column t name =
  match List.find_opt (fun c -> c.probe.name = name) t.columns with
  | Some c -> Array.sub c.data 0 c.len
  | None -> raise Not_found

let to_csv ppf t =
  Format.fprintf ppf "time";
  List.iter (fun c -> Format.fprintf ppf ",%s" c.probe.name) t.columns;
  Format.fprintf ppf "@.";
  for i = 0 to t.n - 1 do
    Format.fprintf ppf "%.4f" t.times.(i);
    List.iter (fun c -> Format.fprintf ppf ",%.4f" c.data.(i)) t.columns;
    Format.fprintf ppf "@."
  done

let value_at t name ~time =
  let col =
    match List.find_opt (fun c -> c.probe.name = name) t.columns with
    | Some c -> c
    | None -> raise Not_found
  in
  if t.n = 0 || time < t.times.(0) then
    invalid_arg "Timeseries.value_at: before first sample";
  (* Binary search for the last sample at or before [time]. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.times.(mid) <= time then lo := mid else hi := mid - 1
  done;
  col.data.(!lo)
