(** The ECN extension: RED gateways mark instead of dropping, receivers
    echo the mark, and both TCP and the RLA treat the echo as a
    congestion signal.

    The paper notes that keeping the RLA TCP-like means "any changes
    ... in networks to improve TCP performance ... are likely to
    improve the performance of our algorithm as well"; this experiment
    demonstrates exactly that: with ECN the session keeps its fair
    share while retransmissions (and hence duplicate multicast traffic)
    collapse. *)

type row = { ecn : bool; result : Sharing.result }

val run :
  ?case_index:int -> ?duration:float -> ?seed:int -> unit -> row list
(** RED gateways, the given bottleneck case (default 3), ECN off then
    on. *)

val print : Format.formatter -> row list -> unit
