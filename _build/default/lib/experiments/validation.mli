(** Validation of the analytical window formula (equation 1 /
    section 4.1): a single TCP SACK flow runs through a link that drops
    packets independently with probability [p]; the measured
    time-average congestion window is compared with the
    proportional-average prediction [sqrt(2(1-p)/p)]. *)

type point = {
  p : float;  (** Configured per-packet drop probability. *)
  measured_cwnd : float;
  predicted_cwnd : float;
  measured_throughput : float;
  predicted_throughput : float;  (** PA window / RTT. *)
  ratio : float;  (** measured / predicted window. *)
}

type config = {
  ps : float list;
  duration : float;
  warmup : float;
  seed : int;
  rtt : float;  (** Two-way propagation delay of the path. *)
}

val default_config : config
(** p in 0.003..0.05, 300 s per point, 100 ms RTT. *)

val run : config -> point list
