type config = {
  n_tcp : int;
  mu_pkts : float;
  buffer : int;
  rtt : float;
  duration : float;
  warmup : float;
  seed : int;
}

let default_config =
  {
    n_tcp = 4;
    mu_pkts = 400.0;
    buffer = 20;
    rtt = 0.2;
    duration = 300.0;
    warmup = 50.0;
    seed = 1;
  }

type result = {
  config : config;
  episodes : int;
  drops : int;
  drops_per_episode : float;
  mean_episode_length : float;
  mean_gap : float;
  mean_queue : float;
  episode_over_2rtt : float;
  gap_over_2rtt : float;
  measured_rtt : float;
}

(* Drops separated by less than 2*RTT belong to the same episode — the
   same grouping rule the RLA applies per receiver. *)
type episode_state = {
  mutable first_drop : float;
  mutable last_drop : float;
  mutable drop_count : int;
}

let run config =
  if config.n_tcp <= 0 then invalid_arg "Buffer_dynamics.run: need TCP flows";
  if config.duration <= config.warmup then
    invalid_arg "Buffer_dynamics.run: duration must exceed warmup";
  let net = Net.Network.create ~seed:config.seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let r = Net.Node.id (Net.Network.add_node net) in
  ignore
    (Net.Network.duplex net s r
       {
         Net.Link.bandwidth_bps = config.mu_pkts *. 8000.0;
         prop_delay = config.rtt /. 2.0;
         queue = Net.Queue_disc.Droptail;
         capacity = config.buffer;
         phase_jitter = true;
       });
  Net.Network.install_routes net;
  let tcps =
    List.init config.n_tcp (fun _ -> Tcp.Sender.create ~net ~src:s ~dst:r ())
  in
  let link = Option.get (Net.Network.link_between net s r) in
  let sched = Net.Network.scheduler net in
  let group_window = 2.0 *. config.rtt in
  let episode_lengths = Stats.Welford.create () in
  let gaps = Stats.Welford.create () in
  let drops_per_episode = Stats.Welford.create () in
  let queue_avg = Stats.Welford.create () in
  let total_drops = ref 0 in
  let current = ref None in
  let close_episode e =
    Stats.Welford.add episode_lengths (e.last_drop -. e.first_drop);
    Stats.Welford.add drops_per_episode (float_of_int e.drop_count)
  in
  Net.Link.set_drop_hook link (fun _ ->
      let now = Sim.Scheduler.now sched in
      if now >= config.warmup then begin
        incr total_drops;
        match !current with
        | Some e when now -. e.last_drop <= group_window ->
            e.last_drop <- now;
            e.drop_count <- e.drop_count + 1
        | Some e ->
            close_episode e;
            Stats.Welford.add gaps (now -. e.first_drop);
            current := Some { first_drop = now; last_drop = now; drop_count = 1 }
        | None ->
            current := Some { first_drop = now; last_drop = now; drop_count = 1 }
      end);
  (* Sample the queue for its time average. *)
  let rec sample () =
    if Sim.Scheduler.now sched >= config.warmup then
      Stats.Welford.add queue_avg (float_of_int (Net.Link.qlen link));
    ignore (Sim.Scheduler.schedule_after sched 0.01 sample)
  in
  ignore (Sim.Scheduler.schedule_after sched 0.01 sample);
  Net.Network.run_until net config.warmup;
  List.iter Tcp.Sender.reset_measurement tcps;
  Net.Network.run_until net config.duration;
  (match !current with Some e -> close_episode e | None -> ());
  let measured_rtt =
    let sum =
      List.fold_left
        (fun acc tcp -> acc +. (Tcp.Sender.snapshot tcp).Tcp.Sender.rtt_avg)
        0.0 tcps
    in
    sum /. float_of_int config.n_tcp
  in
  let two_rtt = 2.0 *. Stdlib.max measured_rtt 1e-9 in
  {
    config;
    episodes = Stats.Welford.count episode_lengths;
    drops = !total_drops;
    drops_per_episode = Stats.Welford.mean drops_per_episode;
    mean_episode_length = Stats.Welford.mean episode_lengths;
    mean_gap = Stats.Welford.mean gaps;
    mean_queue = Stats.Welford.mean queue_avg;
    episode_over_2rtt = Stats.Welford.mean episode_lengths /. two_rtt;
    gap_over_2rtt = Stats.Welford.mean gaps /. two_rtt;
    measured_rtt;
  }
