(** The paper's motivating claim (section 1): rate-based multicast
    congestion control with evenly spaced packets cannot share a
    drop-tail bottleneck fairly with TCP, whereas the window-based RLA
    can; RED narrows the gap for everyone.

    Topology: a single bottleneck link from the source's gateway, three
    receivers behind it on fast links, three competing TCP flows.
    Fair share of the 400 pkt/s bottleneck is 100 pkt/s per session. *)

type scheme =
  | Scheme_rla
  | Scheme_ltrc
  | Scheme_mbfc
  | Scheme_cbr
  | Scheme_rl_rate
      (** Rate-based random listening (the paper's section-6 idea). *)

val scheme_name : scheme -> string

type config = {
  gateway : Scenario.gateway;
  scheme : scheme;
  duration : float;
  warmup : float;
  seed : int;
  bottleneck_share : float;  (** Fair per-session share, pkt/s. *)
  n_tcp : int;
  cbr_rate : float;  (** Rate for the CBR reference, pkt/s. *)
}

val default_config : gateway:Scenario.gateway -> scheme:scheme -> config

type result = {
  config : config;
  mcast_throughput : float;
      (** Worst receiver's goodput (RLA: all-receiver goodput). *)
  tcp_mean : float;
  tcp_min : float;
  tcp_max : float;
  ratio : float;  (** multicast / mean TCP. *)
}

val run : config -> result

val run_matrix :
  ?duration:float -> ?seed:int -> unit -> result list
(** All five schemes under both gateway types (ten rows). *)
