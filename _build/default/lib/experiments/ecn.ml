type row = { ecn : bool; result : Sharing.result }

let run ?(case_index = 3) ?(duration = 200.0) ?(seed = 1) () =
  List.map
    (fun ecn ->
      let config =
        {
          (Sharing.default_config ~gateway:Scenario.Red
             ~case:(Tree.case_of_index case_index))
          with
          Sharing.duration;
          warmup = duration /. 4.0;
          seed;
          ecn;
        }
      in
      { ecn; result = Sharing.run config })
    [ false; true ]

let print ppf rows =
  Format.fprintf ppf
    "@.ECN extension — RED marking vs dropping (case %s)@."
    (match rows with
    | { result; _ } :: _ -> Tree.case_name result.Sharing.config.Sharing.case
    | [] -> "?");
  Format.fprintf ppf "%s@." (String.make 84 '-');
  Format.fprintf ppf "%-8s %10s %10s %8s %8s %10s %8s %8s@." "ecn"
    "RLA pkt/s" "WTCP" "ratio" "fair" "RLA rexmit" "#cut" "#to";
  List.iter
    (fun { ecn; result = r } ->
      Format.fprintf ppf "%-8s %10.1f %10.1f %8.2f %8s %10d %8d %8d@."
        (if ecn then "on" else "off")
        r.Sharing.rla.Rla.Sender.send_rate r.Sharing.wtcp.Tcp.Sender.send_rate
        r.Sharing.ratio
        (if r.Sharing.essentially_fair then "yes" else "NO")
        r.Sharing.rla.Rla.Sender.rexmits r.Sharing.rla.Rla.Sender.window_cuts
        r.Sharing.rla.Rla.Sender.timeouts)
    rows;
  Format.fprintf ppf "%s@." (String.make 84 '-')
