type scheme =
  | Scheme_rla
  | Scheme_ltrc
  | Scheme_mbfc
  | Scheme_cbr
  | Scheme_rl_rate

let scheme_name = function
  | Scheme_rla -> "RLA"
  | Scheme_ltrc -> "LTRC"
  | Scheme_mbfc -> "MBFC"
  | Scheme_cbr -> "CBR"
  | Scheme_rl_rate -> "RL-rate"

type config = {
  gateway : Scenario.gateway;
  scheme : scheme;
  duration : float;
  warmup : float;
  seed : int;
  bottleneck_share : float;
  n_tcp : int;
  cbr_rate : float;
}

let default_config ~gateway ~scheme =
  {
    gateway;
    scheme;
    duration = 300.0;
    warmup = 100.0;
    seed = 1;
    bottleneck_share = 100.0;
    n_tcp = 3;
    cbr_rate = 100.0;
  }

type result = {
  config : config;
  mcast_throughput : float;
  tcp_mean : float;
  tcp_min : float;
  tcp_max : float;
  ratio : float;
}

let run config =
  if config.duration <= config.warmup then
    invalid_arg "Baseline_fairness.run: duration must exceed warmup";
  let net = Net.Network.create ~seed:config.seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves =
    List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net))
  in
  let mu = config.bottleneck_share *. float_of_int (config.n_tcp + 1) in
  ignore
    (Net.Network.duplex net s hub
       (Scenario.link_config ~gateway:config.gateway ~mu_pkts:mu ~delay:0.02 ()));
  List.iter
    (fun leaf ->
      ignore
        (Net.Network.duplex net hub leaf
           (Scenario.fast_link_config ~gateway:config.gateway ~delay:0.04 ())))
    leaves;
  Net.Network.install_routes net;
  (* The multicast session spans all three receivers. *)
  let rla = ref None in
  let rate = ref None in
  (match config.scheme with
  | Scheme_rla ->
      rla := Some (Rla.Sender.create ~net ~src:s ~receivers:leaves ())
  | Scheme_ltrc ->
      rate := Some (Baselines.Ltrc.create ~net ~src:s ~receivers:leaves ())
  | Scheme_mbfc ->
      rate := Some (Baselines.Mbfc.create ~net ~src:s ~receivers:leaves ())
  | Scheme_cbr ->
      rate :=
        Some
          (Baselines.Cbr.create ~net ~src:s ~receivers:leaves
             ~rate:config.cbr_rate ())
  | Scheme_rl_rate ->
      rate := Some (Baselines.Rl_rate.create ~net ~src:s ~receivers:leaves ()));
  let tcps =
    List.init config.n_tcp (fun i ->
        Tcp.Sender.create ~net ~src:s ~dst:(List.nth leaves (i mod 3)) ())
  in
  Net.Network.run_until net config.warmup;
  (match !rla with Some r -> Rla.Sender.reset_measurement r | None -> ());
  (match !rate with
  | Some r -> Baselines.Rate_sender.reset_measurement r
  | None -> ());
  List.iter Tcp.Sender.reset_measurement tcps;
  Net.Network.run_until net config.duration;
  let mcast_throughput =
    match (!rla, !rate) with
    | Some r, _ -> (Rla.Sender.snapshot r).Rla.Sender.throughput
    | _, Some r -> Baselines.Rate_sender.min_delivered_rate r
    | None, None -> 0.0
  in
  let tcp_thrs =
    List.map (fun tcp -> (Tcp.Sender.snapshot tcp).Tcp.Sender.throughput) tcps
  in
  let tcp_mean =
    List.fold_left ( +. ) 0.0 tcp_thrs /. float_of_int (List.length tcp_thrs)
  in
  {
    config;
    mcast_throughput;
    tcp_mean;
    tcp_min = List.fold_left Stdlib.min infinity tcp_thrs;
    tcp_max = List.fold_left Stdlib.max 0.0 tcp_thrs;
    ratio = (if tcp_mean <= 0.0 then infinity else mcast_throughput /. tcp_mean);
  }

let run_matrix ?duration ?seed () =
  let schemes =
    [ Scheme_rla; Scheme_ltrc; Scheme_mbfc; Scheme_rl_rate; Scheme_cbr ]
  in
  let gateways = [ Scenario.Droptail; Scenario.Red ] in
  List.concat_map
    (fun gateway ->
      List.map
        (fun scheme ->
          let base = default_config ~gateway ~scheme in
          run
            {
              base with
              duration = Option.value duration ~default:base.duration;
              seed = Option.value seed ~default:base.seed;
            })
        schemes)
    gateways
