(** The paper's four-level tertiary tree (figure 6).

    Nodes: root [S] — gateway [G1] — gateways [G2 1..3] — gateways
    [G3 1..9] — receivers [R 1..27].  Links: [L1] (S-G1), [L2i]
    (G1-G2i), [L3i] (G2-G3i), [L4i] (G3-Ri).  One-way propagation is
    5 ms on the first three levels and 100 ms on the fourth, so all
    leaves sit at the same RTT from the root.

    Each case of figures 7-9 designates a set of most-congested links;
    those get capacity [share * (competing TCP flows + 1)] packets per
    second so the soft-bottleneck equal share is [share]; all other
    links run at 100 Mbps. *)

type case =
  | L1_bottleneck  (** Case 1: the shared root link — fully correlated losses. *)
  | L2_all  (** All three level-2 links (figure 10, case 1). *)
  | L3_all  (** Case 2: all nine level-3 links. *)
  | L4_all  (** Case 3: all 27 leaf links — independent losses. *)
  | L4_first of int  (** Case 4: only the first [k] leaf links (paper: 5). *)
  | L2_single  (** Case 5: link L21 only (receivers 1-9 behind it). *)

val case_of_index : int -> case
(** 1-5 as in the paper's tables; raises [Invalid_argument] otherwise. *)

val case_name : case -> string

type t = {
  net : Net.Network.t;
  root : Net.Packet.addr;  (** S *)
  g1 : Net.Packet.addr;
  g2 : Net.Packet.addr array;  (** 3 *)
  g3 : Net.Packet.addr array;  (** 9 *)
  leaves : Net.Packet.addr array;  (** 27 *)
  congested_leaves : Net.Packet.addr list;
      (** Receivers behind a designated bottleneck. *)
}

val build :
  seed:int ->
  gateway:Scenario.gateway ->
  case:case ->
  ?share:float ->
  ?buffer:int ->
  ?receivers_include_g3:bool ->
  ?phase_jitter:bool ->
  ?ecn:bool ->
  unit ->
  t
(** [share] defaults to the paper's 100 pkt/s.
    [receivers_include_g3] widens the receiver set for the
    different-RTT experiment (figure 10): TCP flow counts per link then
    include the G3 receivers. Routes are installed. *)

val receivers : t -> include_g3:bool -> Net.Packet.addr list
