(** Receiver-count scaling.

    Section 2.1's minimum requirement for reasonable fairness: the
    multicast session's throughput must not diminish to zero as the
    number of receivers grows (a sender that reacted to {e every}
    congestion signal would collapse like 1/N).  This experiment sweeps
    N receivers on a uniform star whose branches are each shared with
    one TCP flow, and reports the RLA's throughput and fairness ratio
    per N. *)

type config = {
  ns : int list;  (** Receiver counts to sweep. *)
  gateway : Scenario.gateway;
  share : float;  (** Per-branch fair share, pkt/s. *)
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
}

val default_config : config
(** N in 2, 4, 8, 16, 32; drop-tail; 100 pkt/s shares. *)

type point = {
  n : int;
  rla_throughput : float;
  rla_cwnd : float;
  wtcp_throughput : float;
  ratio : float;
  congestion_signals : int;
  window_cuts : int;
}

val run : config -> point list

val print : Format.formatter -> point list -> unit
