type background = Bg_none | Bg_tcp | Bg_rla | Bg_cbr of float

let background_name = function
  | Bg_none -> "idle"
  | Bg_tcp -> "TCP"
  | Bg_rla -> "RLA"
  | Bg_cbr rate -> Printf.sprintf "CBR@%.0f" rate

type config = {
  background : background;
  flow_size : int;
  arrival_rate : float;
  share : float;
  duration : float;
  warmup : float;
  seed : int;
}

let default_config background =
  {
    background;
    flow_size = 20;
    arrival_rate = 0.5;
    share = 100.0;
    duration = 300.0;
    warmup = 50.0;
    seed = 1;
  }

type result = {
  config : config;
  launched : int;
  completed : int;
  mean_completion : float;
  p95_completion : float;
  background_throughput : float;
}

type flow_record = { started : float; sender : Tcp.Sender.t }

let run config =
  if config.flow_size <= 0 then invalid_arg "Short_flows.run: bad flow size";
  if config.arrival_rate <= 0.0 then
    invalid_arg "Short_flows.run: bad arrival rate";
  if config.duration <= config.warmup then
    invalid_arg "Short_flows.run: duration must exceed warmup";
  let gateway = Scenario.Droptail in
  let net = Net.Network.create ~seed:config.seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  ignore
    (Net.Network.duplex net s hub
       (Scenario.fast_link_config ~gateway ~delay:0.005 ()));
  List.iter
    (fun leaf ->
      ignore
        (Net.Network.duplex net hub leaf
           (Scenario.link_config ~gateway ~mu_pkts:(config.share *. 2.0)
              ~delay:0.05 ())))
    leaves;
  Net.Network.install_routes net;
  (* Long-lived background. *)
  let rla = ref None and cbr = ref None and bg_tcps = ref [] in
  (match config.background with
  | Bg_none -> ()
  | Bg_rla -> rla := Some (Rla.Sender.create ~net ~src:s ~receivers:leaves ())
  | Bg_cbr rate ->
      cbr := Some (Baselines.Cbr.create ~net ~src:s ~receivers:leaves ~rate ())
  | Bg_tcp ->
      bg_tcps :=
        List.map (fun leaf -> Tcp.Sender.create ~net ~src:s ~dst:leaf ()) leaves);
  (* Poisson arrivals of short flows, round-robin over the leaves. *)
  let rng = Net.Network.fork_rng net in
  let flows = ref [] in
  let next_leaf = ref 0 in
  let sched = Net.Network.scheduler net in
  let launch () =
    let leaf = List.nth leaves (!next_leaf mod List.length leaves) in
    incr next_leaf;
    let sender =
      Tcp.Sender.create ~net ~src:s ~dst:leaf
        ~params:
          { Tcp.Sender.default_params with Tcp.Sender.limit = Some config.flow_size }
        ()
    in
    flows := { started = Sim.Scheduler.now sched; sender } :: !flows
  in
  let rec arrival () =
    launch ();
    ignore
      (Sim.Scheduler.schedule_after sched
         (Sim.Rng.exponential rng (1.0 /. config.arrival_rate))
         arrival)
  in
  ignore
    (Sim.Scheduler.schedule_after sched
       (Sim.Rng.exponential rng (1.0 /. config.arrival_rate))
       arrival);
  Net.Network.run_until net config.warmup;
  (match !rla with Some r -> Rla.Sender.reset_measurement r | None -> ());
  (match !cbr with Some c -> Baselines.Rate_sender.reset_measurement c | None -> ());
  Net.Network.run_until net config.duration;
  (* Only flows launched after warm-up and early enough to finish are
     scored; flows launched in the last 10% are censored. *)
  let cutoff = config.duration -. (0.1 *. (config.duration -. config.warmup)) in
  let scored =
    List.filter
      (fun f -> f.started >= config.warmup && f.started <= cutoff)
      !flows
  in
  let completions = Stats.Quantile.create () in
  let completed = ref 0 in
  List.iter
    (fun f ->
      match Tcp.Sender.completed_at f.sender with
      | Some finish ->
          incr completed;
          Stats.Quantile.add completions (finish -. f.started)
      | None -> ())
    scored;
  let background_throughput =
    match (config.background, !rla, !cbr, !bg_tcps) with
    | Bg_rla, Some r, _, _ -> (Rla.Sender.snapshot r).Rla.Sender.throughput
    | Bg_cbr _, _, Some c, _ -> Baselines.Rate_sender.min_delivered_rate c
    | Bg_tcp, _, _, tcps when tcps <> [] ->
        List.fold_left
          (fun acc tcp -> acc +. (Tcp.Sender.snapshot tcp).Tcp.Sender.throughput)
          0.0 tcps
        /. float_of_int (List.length tcps)
    | _ -> 0.0
  in
  {
    config;
    launched = List.length scored;
    completed = !completed;
    mean_completion =
      (if !completed = 0 then nan else Stats.Quantile.mean completions);
    p95_completion =
      (if !completed = 0 then nan else Stats.Quantile.quantile completions 0.95);
    background_throughput;
  }

let print ppf results =
  Format.fprintf ppf
    "@.Short flows — completion times under different long-lived backgrounds@.";
  Format.fprintf ppf "%s@." (String.make 84 '-');
  Format.fprintf ppf "%-10s %9s %10s %14s %14s %14s@." "background" "flows"
    "completed" "mean (s)" "p95 (s)" "bg pkt/s";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %9d %10d %14.2f %14.2f %14.1f@."
        (background_name r.config.background)
        r.launched r.completed r.mean_completion r.p95_completion
        r.background_throughput)
    results;
  Format.fprintf ppf "%s@." (String.make 84 '-')
