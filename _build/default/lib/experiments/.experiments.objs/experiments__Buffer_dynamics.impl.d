lib/experiments/buffer_dynamics.ml: List Net Option Sim Stats Stdlib Tcp
