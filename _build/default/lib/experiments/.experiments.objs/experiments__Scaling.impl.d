lib/experiments/scaling.ml: Format List Net Rla Scenario Stdlib String Tcp
