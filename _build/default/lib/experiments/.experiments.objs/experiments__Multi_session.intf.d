lib/experiments/multi_session.mli: Rla Scenario Tcp Tree
