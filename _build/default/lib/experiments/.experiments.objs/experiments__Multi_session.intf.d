lib/experiments/multi_session.mli: Rla Runner Scenario Tcp Tree
