lib/experiments/diff_rtt.ml: List Net Printf Rla Scenario Tcp Tree
