lib/experiments/diff_rtt.ml: List Net Option Printf Rla Runner Scenario Tcp Tree
