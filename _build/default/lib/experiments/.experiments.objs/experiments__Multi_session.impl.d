lib/experiments/multi_session.ml: Array List Net Option Printf Rla Runner Scenario Tcp Tree
