lib/experiments/multi_session.ml: Array List Net Rla Scenario Tcp Tree
