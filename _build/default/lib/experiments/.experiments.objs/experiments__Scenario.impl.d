lib/experiments/scenario.ml: Net Rla String
