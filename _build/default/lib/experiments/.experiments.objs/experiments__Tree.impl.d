lib/experiments/tree.ml: Array Net Printf Scenario Stdlib
