lib/experiments/validation.mli:
