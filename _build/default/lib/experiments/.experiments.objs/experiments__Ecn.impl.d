lib/experiments/ecn.ml: Format List Rla Scenario Sharing String Tcp Tree
