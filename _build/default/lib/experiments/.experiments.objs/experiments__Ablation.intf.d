lib/experiments/ablation.mli: Rla
