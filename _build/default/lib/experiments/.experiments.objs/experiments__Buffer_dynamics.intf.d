lib/experiments/buffer_dynamics.mli:
