lib/experiments/baseline_fairness.ml: Baselines List Net Option Rla Scenario Stdlib Tcp
