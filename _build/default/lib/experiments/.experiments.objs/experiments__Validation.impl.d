lib/experiments/validation.ml: Analysis List Net Tcp
