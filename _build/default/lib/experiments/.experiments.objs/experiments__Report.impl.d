lib/experiments/report.ml: Ablation Analysis Array Baseline_fairness Buffer_dynamics Diff_rtt Format List Multi_session Rla Scenario Sharing Stats Stdlib String Tcp Tree Validation
