lib/experiments/diff_rtt.mli: Rla Runner Scenario Tcp Tree
