lib/experiments/diff_rtt.mli: Rla Scenario Tcp Tree
