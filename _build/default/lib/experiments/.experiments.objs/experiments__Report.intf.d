lib/experiments/report.mli: Ablation Analysis Baseline_fairness Buffer_dynamics Diff_rtt Format Multi_session Sharing Validation
