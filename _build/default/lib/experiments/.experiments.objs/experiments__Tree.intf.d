lib/experiments/tree.mli: Net Scenario
