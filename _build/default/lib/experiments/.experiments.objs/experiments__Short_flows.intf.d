lib/experiments/short_flows.mli: Format
