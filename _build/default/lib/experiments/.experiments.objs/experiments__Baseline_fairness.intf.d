lib/experiments/baseline_fairness.mli: Scenario
