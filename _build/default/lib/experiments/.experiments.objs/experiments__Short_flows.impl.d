lib/experiments/short_flows.ml: Baselines Format List Net Printf Rla Scenario Sim Stats String Tcp
