lib/experiments/sharing.ml: Array List Net Option Rla Scenario Stdlib Tcp Tree
