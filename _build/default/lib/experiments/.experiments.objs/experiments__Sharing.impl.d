lib/experiments/sharing.ml: Array List Net Option Printf Rla Runner Scenario Stdlib Tcp Tree
