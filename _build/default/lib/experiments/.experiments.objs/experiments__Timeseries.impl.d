lib/experiments/timeseries.ml: Array Format List Net Sim Stdlib
