lib/experiments/timeseries.mli: Format Net
