lib/experiments/ecn.mli: Format Sharing
