lib/experiments/ablation.ml: List Printf Rla Scenario Sharing Tcp Tree
