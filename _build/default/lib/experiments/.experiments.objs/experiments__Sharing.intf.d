lib/experiments/sharing.mli: Net Rla Runner Scenario Tcp Tree
