lib/experiments/sharing.mli: Net Rla Scenario Tcp Tree
