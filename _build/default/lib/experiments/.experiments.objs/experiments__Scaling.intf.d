lib/experiments/scaling.mli: Format Rla Scenario
