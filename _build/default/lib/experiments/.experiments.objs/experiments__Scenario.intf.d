lib/experiments/scenario.mli: Net Rla
