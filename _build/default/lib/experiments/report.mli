(** Table renderers reproducing the layout of the paper's figures.
    Shared by the CLI ([bin/rla_sim]) and the benchmark harness. *)

val print_sharing_table :
  Format.formatter -> title:string -> Sharing.result list -> unit
(** Figures 7 / 9: one column per case, RLA / WTCP / BTCP blocks. *)

val print_signal_table : Format.formatter -> Sharing.result list -> unit
(** Figure 8: per-branch congestion-signal statistics. *)

val print_diff_rtt_table : Format.formatter -> Diff_rtt.result list -> unit
(** Figure 10. *)

val print_multi_session : Format.formatter -> Multi_session.result -> unit
(** Section 5.2. *)

val print_validation : Format.formatter -> Validation.point list -> unit
(** Equation 1: measured vs predicted PA windows. *)

val print_baseline_matrix :
  Format.formatter -> Baseline_fairness.result list -> unit

val print_ablation :
  Format.formatter -> title:string -> Ablation.row list -> unit

val print_drift_field :
  Format.formatter -> Analysis.Particle.field_point list -> unit
(** Figure 4 as a coarse ASCII arrow field. *)

val print_particle_run : Format.formatter -> Analysis.Particle.run_stats -> unit
(** Figure 5: the occupancy density plus its summary statistics. *)

val print_buffer_dynamics :
  Format.formatter -> Buffer_dynamics.result list -> unit
(** Section 3.1: buffer-period statistics of a drop-tail bottleneck. *)

val print_proposition_table :
  Format.formatter ->
  (int * float array * float * float * float * float) list ->
  unit
(** Proposition check rows:
    (n, ps, drift-model PA window, Monte-Carlo mean window, lower,
    upper).  The bound is checked against the PA window — the
    quantity equation 2 constrains; the Monte-Carlo sample mean sits
    slightly above it because the window distribution is skewed. *)
