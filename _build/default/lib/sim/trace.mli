(** Lightweight in-simulation tracing.

    Components emit trace records through a shared sink; experiments
    install a sink only when they need packet-level visibility, so the
    default (no sink) costs one branch per emission. *)

type level = Debug | Info | Warn

type record = { time : float; level : level; component : string; message : string }

type t

val create : unit -> t
(** A trace hub with no sink installed. *)

val set_sink : t -> (record -> unit) -> unit
(** Install a sink receiving every record. *)

val clear_sink : t -> unit

val enabled : t -> bool
(** [true] iff a sink is installed. *)

val emit : t -> time:float -> level:level -> component:string -> string -> unit

val emitf :
  t ->
  time:float ->
  level:level ->
  component:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted emission; the format arguments are not evaluated when no
    sink is installed. *)

val memory_sink : unit -> (record -> unit) * (unit -> record list)
(** A sink accumulating records in memory, plus a function returning
    them in emission order. *)

val level_to_string : level -> string
