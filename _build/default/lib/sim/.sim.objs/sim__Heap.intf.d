lib/sim/heap.mli:
