lib/sim/scheduler.mli:
