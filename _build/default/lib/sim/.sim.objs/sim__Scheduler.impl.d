lib/sim/scheduler.ml: Hashtbl Heap Printf
