lib/sim/rng.mli:
