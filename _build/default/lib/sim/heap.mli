(** Binary min-heap keyed by [(priority, tie-break counter)].

    The heap is the core of the discrete-event scheduler: events are
    ordered by simulated time, and events scheduled for the same time
    fire in insertion order (the monotone counter breaks ties), which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> prio:float -> 'a -> unit
(** [add t ~prio x] inserts [x] with priority [prio].  Elements with
    equal priority are returned in insertion order. *)

val min_prio : 'a t -> float option
(** Priority of the minimum element, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element with its priority. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val iter : 'a t -> f:(float -> 'a -> unit) -> unit
(** Iterate over all elements in unspecified order. *)
