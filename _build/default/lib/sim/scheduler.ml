type event = { id : int; action : unit -> unit }

type event_id = int

type t = {
  queue : event Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable clock : float;
  mutable next_id : int;
  mutable fired : int;
  mutable live : int;
}

let create () =
  {
    queue = Heap.create ();
    cancelled = Hashtbl.create 64;
    clock = 0.0;
    next_id = 0;
    fired = 0;
    live = 0;
  }

let now t = t.clock

let schedule_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_at: %g is in the past (now %g)" time
         t.clock);
  let id = t.next_id in
  t.next_id <- id + 1;
  Heap.add t.queue ~prio:time { id; action };
  t.live <- t.live + 1;
  id

let schedule_after t delay action = schedule_at t (t.clock +. delay) action

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

(* Pop one event; returns false when the queue is exhausted or the next
   event lies beyond [horizon]. *)
let step t horizon =
  match Heap.peek t.queue with
  | None -> false
  | Some (time, _) when time > horizon -> false
  | Some _ -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (time, ev) ->
          if Hashtbl.mem t.cancelled ev.id then begin
            Hashtbl.remove t.cancelled ev.id;
            true
          end
          else begin
            t.clock <- time;
            t.live <- t.live - 1;
            t.fired <- t.fired + 1;
            ev.action ();
            true
          end)

let run_until t horizon =
  while step t horizon do
    ()
  done;
  if horizon > t.clock then t.clock <- horizon

let run_until_empty t ~max_events =
  let budget = ref max_events in
  while !budget > 0 && step t infinity do
    decr budget
  done

let pending t = t.live

let events_fired t = t.fired
