(** Monitor-based flow control (Sano et al. 1997): the double-threshold
    scheme — a receiver is congested when its monitor-period loss rate
    exceeds the loss threshold, and the sender halves its rate only
    when the congested fraction of the population exceeds the
    population threshold. *)

val policy :
  ?loss_threshold:float ->
  ?population_threshold:float ->
  ?refractory:float ->
  unit ->
  Rate_sender.policy
(** Defaults: loss threshold 0.02, population threshold 0.25,
    refractory 1 s. *)

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  receivers:Net.Packet.addr list ->
  ?config:Rate_sender.config ->
  unit ->
  Rate_sender.t
