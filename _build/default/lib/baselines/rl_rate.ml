let policy ?(loss_threshold = 0.02) ?(refractory = 1.0) () =
  Rate_sender.Random_listening { loss_threshold; refractory }

let create ~net ~src ~receivers ?config () =
  let config =
    match config with
    | Some c -> c
    | None -> Rate_sender.default_config (policy ())
  in
  Rate_sender.create ~net ~src ~receivers config
