(** Rate-based random listening — the paper's section-6 suggestion that
    the RLA's key idea ("randomly react to the congestion signals from
    all receivers") carries over to rate-based control.  Useful as a
    bridge between the LTRC/MBFC baselines and the window-based RLA. *)

val policy :
  ?loss_threshold:float -> ?refractory:float -> unit -> Rate_sender.policy
(** Defaults: loss threshold 0.02, refractory 1 s. *)

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  receivers:Net.Packet.addr list ->
  ?config:Rate_sender.config ->
  unit ->
  Rate_sender.t
