(** Loss-tolerant rate controller (Montgomery 1997), as characterised
    in the paper's introduction: halve the rate when the
    exponentially-averaged loss rate reported by some receiver exceeds
    a threshold, with a refractory period after each reduction. *)

val policy :
  ?loss_threshold:float ->
  ?ewma_weight:float ->
  ?refractory:float ->
  unit ->
  Rate_sender.policy
(** Defaults: threshold 0.02, weight 0.25, refractory 1 s. *)

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  receivers:Net.Packet.addr list ->
  ?config:Rate_sender.config ->
  unit ->
  Rate_sender.t
