(** Payloads for the rate-based multicast schemes.

    Rate-based senders pace evenly spaced data packets down the tree;
    receivers return periodic loss reports instead of per-packet
    acknowledgments. *)

type Net.Packet.payload +=
  | Rate_data of { seq : int; sent_at : float }
  | Rate_report of {
      rcvr : Net.Packet.addr;
      received : int;  (** Data packets seen in the monitor period. *)
      expected : int;  (** Sequence span covered by the period. *)
      loss_rate : float;  (** [1 - received/expected], 0 when idle. *)
    }

val data_size : int

val report_size : int
