(** Constant-rate multicast source: no congestion control at all.
    Used as background cross-traffic and as the zero-reference in the
    baseline fairness experiment. *)

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  receivers:Net.Packet.addr list ->
  rate:float ->
  ?data_size:int ->
  unit ->
  Rate_sender.t
