type Net.Packet.payload +=
  | Rate_data of { seq : int; sent_at : float }
  | Rate_report of {
      rcvr : Net.Packet.addr;
      received : int;
      expected : int;
      loss_rate : float;
    }

let data_size = 1000

let report_size = 40
