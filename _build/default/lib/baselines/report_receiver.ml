type t = {
  net : Net.Network.t;
  node : Net.Node.t;
  flow : Net.Packet.flow;
  sender : Net.Packet.addr;
  period : float;
  mutable received_total : int;
  mutable meas_base : int;
  mutable meas_time : float;
  (* per-period accounting *)
  mutable period_received : int;
  mutable low_seq : int;  (* highest seq seen before this period *)
  mutable high_seq : int;  (* highest seq seen so far *)
  mutable last_loss_rate : float;
}

let node_id t = Net.Node.id t.node

let received_total t = t.received_total

let delivered_rate t ~since =
  let span = Net.Network.now t.net -. since in
  if span <= 0.0 then 0.0
  else float_of_int (t.received_total - t.meas_base) /. span

let reset_measurement t ~now =
  t.meas_base <- t.received_total;
  t.meas_time <- now

let last_loss_rate t = t.last_loss_rate

let on_data t ~seq =
  t.received_total <- t.received_total + 1;
  t.period_received <- t.period_received + 1;
  if seq > t.high_seq then t.high_seq <- seq

let send_report t =
  let expected = t.high_seq - t.low_seq in
  let received = Stdlib.min t.period_received expected in
  let loss_rate =
    if expected <= 0 then 0.0
    else 1.0 -. (float_of_int received /. float_of_int expected)
  in
  t.last_loss_rate <- loss_rate;
  t.low_seq <- t.high_seq;
  t.period_received <- 0;
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:(Net.Node.id t.node)
      ~dst:(Net.Packet.Unicast t.sender) ~size:Wire.report_size
      ~payload:
        (Wire.Rate_report
           { rcvr = Net.Node.id t.node; received; expected; loss_rate })
  in
  Net.Network.send t.net pkt

let create ~net ~node ~flow ~sender ~period =
  if period <= 0.0 then invalid_arg "Report_receiver.create: bad period";
  let node = Net.Network.node net node in
  let t =
    {
      net;
      node;
      flow;
      sender;
      period;
      received_total = 0;
      meas_base = 0;
      meas_time = Net.Network.now net;
      period_received = 0;
      low_seq = -1;
      high_seq = -1;
      last_loss_rate = 0.0;
    }
  in
  Net.Node.attach node ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Wire.Rate_data { seq; _ } -> on_data t ~seq
      | _ -> ());
  let sched = Net.Network.scheduler net in
  let rec tick () =
    send_report t;
    ignore (Sim.Scheduler.schedule_after sched t.period tick)
  in
  (* Stagger the first report so receivers don't synchronise. *)
  let stagger = Sim.Rng.float (Net.Network.fork_rng net) period in
  ignore (Sim.Scheduler.schedule_after sched (period +. stagger) tick);
  t
