(** Paced (rate-based) multicast sender with pluggable congestion
    control policy.

    This is the family of schemes the paper's introduction argues
    cannot be TCP-fair through drop-tail gateways: evenly spaced
    packets, rate halved on a congestion indication derived from
    periodic receiver loss reports, rate increased linearly by roughly
    one packet per round-trip time otherwise. *)

type policy =
  | Fixed  (** Constant rate (CBR). *)
  | Ltrc of {
      loss_threshold : float;
          (** Cut when some receiver's EWMA loss rate exceeds this. *)
      ewma_weight : float;
      refractory : float;  (** No second cut within this many seconds. *)
    }
      (** Loss-tolerant rate controller (Montgomery 1997): track the
          most-congested receiver's averaged loss rate against a
          threshold. *)
  | Mbfc of {
      loss_threshold : float;
          (** A receiver is congested when its last reported loss rate
              exceeds this. *)
      population_threshold : float;
          (** Cut when more than this fraction of receivers is
              congested. *)
      refractory : float;
    }
      (** Monitor-based flow control (Sano et al. 1997): the
          double-threshold scheme. *)
  | Random_listening of { loss_threshold : float; refractory : float }
      (** The paper's future-work suggestion (section 6): random
          listening grafted onto rate-based control — a congested
          monitor report halves the rate with probability one over the
          number of currently congested receivers. *)

type config = {
  initial_rate : float;  (** pkt/s *)
  min_rate : float;
  max_rate : float;
  rtt_estimate : float;
      (** Drives the linear increase: every [rtt_estimate] seconds the
          rate grows by one packet per [rtt_estimate]. *)
  report_period : float;  (** Receiver monitor period. *)
  data_size : int;
  policy : policy;
}

val default_config : policy -> config

type t

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  receivers:Net.Packet.addr list ->
  config ->
  t
(** Requires routes installed; allocates flow + group and builds the
    multicast tree, one {!Report_receiver} per receiver node. *)

val rate : t -> float
(** Current sending rate, pkt/s. *)

val cuts : t -> int

val sent : t -> int

val endpoints : t -> Report_receiver.t list

val flow : t -> Net.Packet.flow

val reset_measurement : t -> unit

val avg_rate : t -> float
(** Time-weighted sending rate since the last measurement reset. *)

val min_delivered_rate : t -> float
(** Worst receiver's goodput since the last measurement reset. *)
