lib/baselines/wire.mli: Net
