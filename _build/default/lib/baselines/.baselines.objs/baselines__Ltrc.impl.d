lib/baselines/ltrc.ml: Rate_sender
