lib/baselines/cbr.ml: Rate_sender Wire
