lib/baselines/rl_rate.ml: Rate_sender
