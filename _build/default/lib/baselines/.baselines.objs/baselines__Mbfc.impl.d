lib/baselines/mbfc.ml: Rate_sender
