lib/baselines/ltrc.mli: Net Rate_sender
