lib/baselines/mbfc.mli: Net Rate_sender
