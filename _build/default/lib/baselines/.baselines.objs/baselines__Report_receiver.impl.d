lib/baselines/report_receiver.ml: Net Sim Stdlib Wire
