lib/baselines/rl_rate.mli: Net Rate_sender
