lib/baselines/wire.ml: Net
