lib/baselines/rate_sender.ml: Array List Net Report_receiver Sim Stats Stdlib Wire
