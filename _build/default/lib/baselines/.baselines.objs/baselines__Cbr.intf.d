lib/baselines/cbr.mli: Net Rate_sender
