lib/baselines/rate_sender.mli: Net Report_receiver
