lib/baselines/report_receiver.mli: Net
