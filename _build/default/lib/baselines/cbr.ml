let create ~net ~src ~receivers ~rate ?(data_size = Wire.data_size) () =
  let config =
    {
      (Rate_sender.default_config Rate_sender.Fixed) with
      Rate_sender.initial_rate = rate;
      min_rate = rate;
      max_rate = rate;
      data_size;
    }
  in
  Rate_sender.create ~net ~src ~receivers config
