(** Receiver for rate-based schemes: counts data packets per monitor
    period and reports the observed loss rate to the sender by
    unicast. *)

type t

val create :
  net:Net.Network.t ->
  node:Net.Packet.addr ->
  flow:Net.Packet.flow ->
  sender:Net.Packet.addr ->
  period:float ->
  t

val node_id : t -> Net.Packet.addr

val received_total : t -> int

val delivered_rate : t -> since:float -> float
(** Packets per second received since [since]. *)

val reset_measurement : t -> now:float -> unit

val last_loss_rate : t -> float
(** Loss rate of the last completed monitor period. *)
