let policy ?(loss_threshold = 0.02) ?(population_threshold = 0.25)
    ?(refractory = 1.0) () =
  Rate_sender.Mbfc { loss_threshold; population_threshold; refractory }

let create ~net ~src ~receivers ?config () =
  let config =
    match config with
    | Some c -> c
    | None -> Rate_sender.default_config (policy ())
  in
  Rate_sender.create ~net ~src ~receivers config
