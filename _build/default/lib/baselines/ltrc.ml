let policy ?(loss_threshold = 0.02) ?(ewma_weight = 0.25) ?(refractory = 1.0)
    () =
  Rate_sender.Ltrc { loss_threshold; ewma_weight; refractory }

let create ~net ~src ~receivers ?config () =
  let config =
    match config with
    | Some c -> c
    | None -> Rate_sender.default_config (policy ())
  in
  Rate_sender.create ~net ~src ~receivers config
