type policy =
  | Fixed
  | Ltrc of { loss_threshold : float; ewma_weight : float; refractory : float }
  | Mbfc of {
      loss_threshold : float;
      population_threshold : float;
      refractory : float;
    }
  | Random_listening of { loss_threshold : float; refractory : float }

type config = {
  initial_rate : float;
  min_rate : float;
  max_rate : float;
  rtt_estimate : float;
  report_period : float;
  data_size : int;
  policy : policy;
}

let default_config policy =
  {
    initial_rate = 10.0;
    min_rate = 1.0;
    max_rate = 1.0e5;
    rtt_estimate = 0.25;
    report_period = 1.0;
    data_size = Wire.data_size;
    policy;
  }

type rcvr_state = {
  addr : Net.Packet.addr;
  loss_ewma : Stats.Ewma.t;
  mutable last_report_loss : float;
  mutable reports : int;
}

type t = {
  net : Net.Network.t;
  config : config;
  src : Net.Packet.addr;
  flow : Net.Packet.flow;
  group : Net.Packet.group;
  rcvrs : rcvr_state array;
  rng : Sim.Rng.t;
  endpoints : Report_receiver.t list;
  mutable rate : float;
  mutable next_seq : int;
  mutable sent : int;
  mutable cuts : int;
  mutable last_cut : float;
  rate_avg : Stats.Time_avg.t;
  mutable meas_time : float;
}

let rate t = t.rate

let cuts t = t.cuts

let sent t = t.sent

let endpoints t = t.endpoints

let flow t = t.flow

let now t = Net.Network.now t.net

let set_rate t r =
  t.rate <- Stdlib.max t.config.min_rate (Stdlib.min t.config.max_rate r);
  Stats.Time_avg.update t.rate_avg ~time:(now t) ~value:t.rate

let reset_measurement t =
  Stats.Time_avg.reset t.rate_avg ~start:(now t) ~value:t.rate;
  t.meas_time <- now t;
  List.iter (fun ep -> Report_receiver.reset_measurement ep ~now:(now t)) t.endpoints

let avg_rate t = Stats.Time_avg.average t.rate_avg ~upto:(now t)

let min_delivered_rate t =
  List.fold_left
    (fun acc ep -> Stdlib.min acc (Report_receiver.delivered_rate ep ~since:t.meas_time))
    infinity t.endpoints

let cut_rate t ~refractory =
  if now t -. t.last_cut >= refractory then begin
    set_rate t (t.rate /. 2.0);
    t.cuts <- t.cuts + 1;
    t.last_cut <- now t
  end

let on_report t ~rcvr ~loss_rate =
  match Array.find_opt (fun r -> r.addr = rcvr) t.rcvrs with
  | None -> ()
  | Some r -> (
      r.reports <- r.reports + 1;
      r.last_report_loss <- loss_rate;
      match t.config.policy with
      | Fixed -> ()
      | Ltrc { loss_threshold; ewma_weight = _; refractory } ->
          Stats.Ewma.update r.loss_ewma loss_rate;
          if Stats.Ewma.value r.loss_ewma > loss_threshold then
            cut_rate t ~refractory
      | Mbfc { loss_threshold; population_threshold; refractory } ->
          (* Evaluate the population condition on every report using
             each receiver's most recent monitor period. *)
          let congested =
            Array.fold_left
              (fun acc r ->
                if r.reports > 0 && r.last_report_loss > loss_threshold then
                  acc + 1
                else acc)
              0 t.rcvrs
          in
          let fraction =
            float_of_int congested /. float_of_int (Array.length t.rcvrs)
          in
          if fraction > population_threshold then cut_rate t ~refractory
      | Random_listening { loss_threshold; refractory } ->
          (* The paper's conclusion: apply random listening to a
             rate-based controller.  A congested report triggers a
             halving with probability 1/(currently congested
             receivers). *)
          if loss_rate > loss_threshold then begin
            let congested =
              Array.fold_left
                (fun acc r ->
                  if r.reports > 0 && r.last_report_loss > loss_threshold then
                    acc + 1
                  else acc)
                0 t.rcvrs
            in
            let n = Stdlib.max 1 congested in
            if Sim.Rng.uniform t.rng <= 1.0 /. float_of_int n then
              cut_rate t ~refractory
          end)

let send_data t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.sent <- t.sent + 1;
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:t.src
      ~dst:(Net.Packet.Multicast t.group) ~size:t.config.data_size
      ~payload:(Wire.Rate_data { seq; sent_at = now t })
  in
  Net.Network.send t.net pkt

let create ~net ~src ~receivers config =
  if receivers = [] then invalid_arg "Rate_sender.create: no receivers";
  if config.initial_rate <= 0.0 then
    invalid_arg "Rate_sender.create: non-positive rate";
  let flow = Net.Network.fresh_flow net in
  let group = Net.Network.fresh_group net in
  Net.Network.install_multicast net ~group ~src ~members:receivers;
  let endpoints =
    List.map
      (fun node ->
        Report_receiver.create ~net ~node ~flow ~sender:src
          ~period:config.report_period)
      receivers
  in
  let ewma_weight =
    match config.policy with Ltrc { ewma_weight; _ } -> ewma_weight | _ -> 0.25
  in
  let t =
    {
      net;
      config;
      src;
      flow;
      group;
      rcvrs =
        Array.of_list
          (List.map
             (fun addr ->
               {
                 addr;
                 loss_ewma = Stats.Ewma.create ~weight:ewma_weight;
                 last_report_loss = 0.0;
                 reports = 0;
               })
             receivers);
      rng = Net.Network.fork_rng net;
      endpoints;
      rate = config.initial_rate;
      next_seq = 0;
      sent = 0;
      cuts = 0;
      last_cut = Net.Network.now net;
      rate_avg =
        Stats.Time_avg.create ~start:(Net.Network.now net)
          ~value:config.initial_rate;
      meas_time = Net.Network.now net;
    }
  in
  Net.Node.attach (Net.Network.node net src) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Wire.Rate_report { rcvr; loss_rate; _ } -> on_report t ~rcvr ~loss_rate
      | _ -> ());
  let sched = Net.Network.scheduler net in
  (* Evenly spaced transmissions at the current rate. *)
  let rec pace () =
    send_data t;
    ignore (Sim.Scheduler.schedule_after sched (1.0 /. t.rate) pace)
  in
  ignore
    (Sim.Scheduler.schedule_after sched
       (Sim.Rng.float (Net.Network.fork_rng net) (1.0 /. t.rate))
       pace);
  (* Linear increase: one packet per RTT added every RTT. *)
  (match config.policy with
  | Fixed -> ()
  | Ltrc _ | Mbfc _ | Random_listening _ ->
      let rec grow () =
        set_rate t (t.rate +. (1.0 /. config.rtt_estimate));
        ignore (Sim.Scheduler.schedule_after sched config.rtt_estimate grow)
      in
      ignore (Sim.Scheduler.schedule_after sched config.rtt_estimate grow));
  t
