type sack_block = { block_lo : int; block_hi : int }

type Net.Packet.payload +=
  | Tcp_data of { seq : int; sent_at : float }
  | Tcp_ack of {
      cum_ack : int;
      blocks : sack_block list;
      echo : float;
      ece : bool;
    }

let max_sack_blocks = 3

let data_size = 1000

let ack_size = 40

let block_to_string b = Printf.sprintf "[%d,%d)" b.block_lo b.block_hi
