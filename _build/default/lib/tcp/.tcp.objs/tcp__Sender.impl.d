lib/tcp/sender.ml: List Net Receiver Rto Scoreboard Sim Stats Stdlib Wire
