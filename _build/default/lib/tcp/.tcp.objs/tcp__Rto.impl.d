lib/tcp/rto.ml: Stdlib
