lib/tcp/scoreboard.mli:
