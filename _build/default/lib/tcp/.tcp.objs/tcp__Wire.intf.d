lib/tcp/wire.mli: Net
