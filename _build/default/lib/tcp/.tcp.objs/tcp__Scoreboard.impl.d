lib/tcp/scoreboard.ml: Hashtbl List Stdlib
