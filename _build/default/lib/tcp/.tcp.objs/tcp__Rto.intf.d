lib/tcp/rto.mli:
