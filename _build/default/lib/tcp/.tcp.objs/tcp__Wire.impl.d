lib/tcp/wire.ml: Net Printf
