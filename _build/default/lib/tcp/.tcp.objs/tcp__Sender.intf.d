lib/tcp/sender.mli: Net Receiver Stats
