lib/tcp/receiver.ml: Hashtbl List Net Wire
