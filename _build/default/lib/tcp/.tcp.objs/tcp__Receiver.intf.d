lib/tcp/receiver.mli: Net
