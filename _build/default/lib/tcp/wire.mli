(** TCP packet payloads.

    Sequence numbers count whole packets (as the paper's analysis
    does), not bytes.  Data packets carry their send timestamp, echoed
    back in acknowledgments, giving RTT samples that are immune to
    retransmission ambiguity (Karn's problem). *)

type sack_block = { block_lo : int; block_hi : int }
(** Half-open range [\[block_lo, block_hi)] of packets received
    out of order. *)

type Net.Packet.payload +=
  | Tcp_data of { seq : int; sent_at : float }
  | Tcp_ack of {
      cum_ack : int;
      blocks : sack_block list;
      echo : float;
      ece : bool;
    }
        (** [cum_ack] is the next packet the receiver expects;
            [blocks] holds at most {!max_sack_blocks} ranges, most
            recently changed first; [ece] echoes a congestion mark set
            by an ECN-enabled gateway on the acknowledged data. *)

val max_sack_blocks : int
(** 3, as in RFC 2018 with timestamps in use. *)

val data_size : int
(** Bytes on the wire for a data packet (1000, as in the paper). *)

val ack_size : int
(** Bytes on the wire for a pure ack (40). *)

val block_to_string : sack_block -> string
