lib/runner/pool.mli: Job Metrics
