lib/runner/metrics.mli: Format
