lib/runner/job.ml: Net
