lib/runner/job.mli: Net
