lib/runner/report.mli: Format Json Pool
