lib/runner/metrics.ml: Format
