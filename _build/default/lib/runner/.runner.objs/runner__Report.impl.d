lib/runner/report.ml: Format Fun Json List Metrics Pool
