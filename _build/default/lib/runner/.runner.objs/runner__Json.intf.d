lib/runner/json.mli: Format
