lib/runner/pool.ml: Array Atomic Domain Gc Job List Metrics Net Sim Stdlib Sys Unix
