lib/runner/json.ml: Buffer Char Float Format List Printf String
