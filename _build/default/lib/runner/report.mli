(** Structured export of a sweep's outcomes: a [BENCH_sweep.json]-style
    document with per-job timing, events-fired and memory metrics, plus
    caller-supplied payload fields (fairness numbers, case ids, ...).

    Schema:
    {[
      {
        "name": "<sweep name>",
        "jobs": <domain count>,
        "runs_total": <job count>,
        "wall_s": <whole-sweep wall clock>,
        "runs": [
          {
            "label": "<job label>",
            "wall_s": <per-job wall clock>,
            "events_fired": <scheduler events>,
            "allocated_mb": <MB allocated>,
            "peak_heap_mb": <heap high-water mark>,
            ...payload fields...
          }, ...
        ],
        ...extra fields...
      }
    ]} *)

val sweep_json :
  name:string ->
  jobs:int ->
  wall_s:float ->
  ?extra:(string * Json.t) list ->
  ('a Pool.outcome -> (string * Json.t) list) ->
  'a Pool.outcome list ->
  Json.t
(** [sweep_json ~name ~jobs ~wall_s payload outcomes] builds the
    document above; [payload] contributes per-run fields appended after
    the metrics. *)

val write_file : path:string -> Json.t -> unit
(** Write the document to [path] followed by a newline. *)

val pp_metrics_table :
  Format.formatter -> 'a Pool.outcome list -> unit
(** Human-readable per-job metrics table (label, wall s, events,
    allocation). *)
