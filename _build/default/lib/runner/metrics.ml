type t = {
  wall_s : float;
  events_fired : int;
  allocated_mb : float;
  peak_heap_mb : float;
}

let zero =
  { wall_s = 0.0; events_fired = 0; allocated_mb = 0.0; peak_heap_mb = 0.0 }

let pp ppf t =
  Format.fprintf ppf "%.3f s, %d events, %.1f MB alloc, %.1f MB peak heap"
    t.wall_s t.events_fired t.allocated_mb t.peak_heap_mb
