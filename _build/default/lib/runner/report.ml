let run_json payload (o : _ Pool.outcome) =
  let m = o.Pool.metrics in
  Json.Obj
    ([
       ("label", Json.String o.Pool.label);
       ("wall_s", Json.Float m.Metrics.wall_s);
       ("events_fired", Json.Int m.Metrics.events_fired);
       ("allocated_mb", Json.Float m.Metrics.allocated_mb);
       ("peak_heap_mb", Json.Float m.Metrics.peak_heap_mb);
     ]
    @ payload o)

let sweep_json ~name ~jobs ~wall_s ?(extra = []) payload outcomes =
  Json.Obj
    ([
       ("name", Json.String name);
       ("jobs", Json.Int jobs);
       ("runs_total", Json.Int (List.length outcomes));
       ("wall_s", Json.Float wall_s);
       ("runs", Json.List (List.map (run_json payload) outcomes));
     ]
    @ extra)

let write_file ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

let pp_metrics_table ppf outcomes =
  Format.fprintf ppf "%-24s %10s %14s %12s@." "job" "wall (s)" "events"
    "alloc (MB)";
  List.iter
    (fun (o : _ Pool.outcome) ->
      let m = o.Pool.metrics in
      Format.fprintf ppf "%-24s %10.3f %14d %12.1f@." o.Pool.label
        m.Metrics.wall_s m.Metrics.events_fired m.Metrics.allocated_mb)
    outcomes
