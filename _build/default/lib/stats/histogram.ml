type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let bins t = Array.length t.counts

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let width = (t.hi -. t.lo) /. float_of_int (bins t) in
    let i = int_of_float ((x -. t.lo) /. width) in
    let i = Stdlib.min i (bins t - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total

let bin_count t i = t.counts.(i)

let underflow t = t.underflow

let overflow t = t.overflow

let bin_center t i =
  let width = (t.hi -. t.lo) /. float_of_int (bins t) in
  t.lo +. ((float_of_int i +. 0.5) *. width)

let mode_bin t =
  if t.total = 0 then None
  else begin
    let best = ref 0 in
    for i = 1 to bins t - 1 do
      if t.counts.(i) > t.counts.(!best) then best := i
    done;
    if t.counts.(!best) = 0 then None else Some !best
  end

let to_list t =
  List.init (bins t) (fun i -> (bin_center t i, t.counts.(i)))

let pp ppf t =
  let max_count =
    Array.fold_left Stdlib.max 1 t.counts
  in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let width = 40 * c / max_count in
        Format.fprintf ppf "%8.2f | %s %d@." (bin_center t i)
          (String.make width '#') c
      end)
    t.counts
