(** Fixed-bin histogram over a closed interval.

    Samples outside the interval land in underflow/overflow bins so no
    observation is silently lost. *)

type t

val create : lo:float -> hi:float -> bins:int -> t

val add : t -> float -> unit

val count : t -> int
(** Total samples, including out-of-range ones. *)

val bin_count : t -> int -> int
(** Count in bin [i] (0-based). *)

val underflow : t -> int

val overflow : t -> int

val bin_center : t -> int -> float

val bins : t -> int

val mode_bin : t -> int option
(** Index of the fullest bin; [None] when empty. *)

val to_list : t -> (float * int) list
(** [(bin center, count)] for every bin. *)

val pp : Format.formatter -> t -> unit
(** Render an ASCII bar sketch, one line per non-empty bin. *)
