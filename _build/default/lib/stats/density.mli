(** Two-dimensional occupancy grid.

    Reproduces figure 5 of the paper: the density of visits of the
    pair (cwnd1, cwnd2) of two competing multicast sessions. *)

type t

val create : x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> cells:int -> t
(** A [cells] x [cells] grid covering the rectangle. *)

val add : t -> x:float -> y:float -> unit
(** Out-of-range points are clamped onto the border cells. *)

val cell : t -> int -> int -> int
(** [cell t ix iy]: visit count of the cell. *)

val cells : t -> int

val total : t -> int

val peak_cell : t -> int * int
(** Indices of the fullest cell (ties break to the smallest index). *)

val centroid : t -> float * float
(** Mass-weighted centre; (0, 0) when empty. *)

val mass_within : t -> cx:float -> cy:float -> radius:float -> float
(** Fraction of visits whose cell centre lies within [radius] of
    [(cx, cy)]. *)

val cell_center : t -> int -> int -> float * float

val pp : Format.formatter -> t -> unit
(** ASCII shading of the grid (darker = more visits). *)
