(** Sample store with exact quantiles.

    Keeps all samples (simulation runs are bounded), sorts lazily. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], linear interpolation; raises
    [Invalid_argument] when empty. *)

val median : t -> float

val mean : t -> float

val to_sorted_array : t -> float array
