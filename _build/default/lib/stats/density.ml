type t = {
  x_lo : float;
  x_hi : float;
  y_lo : float;
  y_hi : float;
  n : int;
  grid : int array; (* row-major: iy * n + ix *)
  mutable total : int;
}

let create ~x_lo ~x_hi ~y_lo ~y_hi ~cells =
  if cells <= 0 then invalid_arg "Density.create: cells must be positive";
  if not (x_hi > x_lo && y_hi > y_lo) then
    invalid_arg "Density.create: empty rectangle";
  { x_lo; x_hi; y_lo; y_hi; n = cells; grid = Array.make (cells * cells) 0; total = 0 }

let cells t = t.n

let index_of t lo hi v =
  let w = (hi -. lo) /. float_of_int t.n in
  let i = int_of_float ((v -. lo) /. w) in
  Stdlib.max 0 (Stdlib.min (t.n - 1) i)

let add t ~x ~y =
  let ix = index_of t t.x_lo t.x_hi x in
  let iy = index_of t t.y_lo t.y_hi y in
  t.grid.((iy * t.n) + ix) <- t.grid.((iy * t.n) + ix) + 1;
  t.total <- t.total + 1

let cell t ix iy = t.grid.((iy * t.n) + ix)

let total t = t.total

let peak_cell t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.grid.(!best) then best := i) t.grid;
  (!best mod t.n, !best / t.n)

let cell_center t ix iy =
  let wx = (t.x_hi -. t.x_lo) /. float_of_int t.n in
  let wy = (t.y_hi -. t.y_lo) /. float_of_int t.n in
  ( t.x_lo +. ((float_of_int ix +. 0.5) *. wx),
    t.y_lo +. ((float_of_int iy +. 0.5) *. wy) )

let centroid t =
  if t.total = 0 then (0.0, 0.0)
  else begin
    let sx = ref 0.0 and sy = ref 0.0 in
    for iy = 0 to t.n - 1 do
      for ix = 0 to t.n - 1 do
        let c = float_of_int (cell t ix iy) in
        if c > 0.0 then begin
          let x, y = cell_center t ix iy in
          sx := !sx +. (c *. x);
          sy := !sy +. (c *. y)
        end
      done
    done;
    let m = float_of_int t.total in
    (!sx /. m, !sy /. m)
  end

let mass_within t ~cx ~cy ~radius =
  if t.total = 0 then 0.0
  else begin
    let inside = ref 0 in
    for iy = 0 to t.n - 1 do
      for ix = 0 to t.n - 1 do
        let x, y = cell_center t ix iy in
        let dx = x -. cx and dy = y -. cy in
        if (dx *. dx) +. (dy *. dy) <= radius *. radius then
          inside := !inside + cell t ix iy
      done
    done;
    float_of_int !inside /. float_of_int t.total
  end

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let pp ppf t =
  let max_c = Array.fold_left Stdlib.max 1 t.grid in
  (* Print y from high to low so the origin sits bottom-left. *)
  for iy = t.n - 1 downto 0 do
    for ix = 0 to t.n - 1 do
      let c = cell t ix iy in
      let shade =
        if c = 0 then shades.(0)
        else begin
          let idx = 1 + (c * (Array.length shades - 2) / max_c) in
          shades.(Stdlib.min idx (Array.length shades - 1))
        end
      in
      Format.fprintf ppf "%c" shade
    done;
    Format.fprintf ppf "@."
  done
