lib/stats/density.ml: Array Format Stdlib
