lib/stats/density.mli: Format
