lib/stats/welford.ml: Stdlib
