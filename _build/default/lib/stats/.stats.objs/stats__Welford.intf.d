lib/stats/welford.mli:
