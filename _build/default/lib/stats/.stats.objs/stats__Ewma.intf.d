lib/stats/ewma.mli:
