lib/stats/counter.ml:
