lib/stats/quantile.mli:
