lib/stats/time_avg.ml: Stdlib
