lib/stats/quantile.ml: Array Stdlib
