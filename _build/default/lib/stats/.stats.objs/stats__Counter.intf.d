lib/stats/counter.mli:
