lib/stats/ewma.ml:
