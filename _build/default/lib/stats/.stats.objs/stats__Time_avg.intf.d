lib/stats/time_avg.mli:
