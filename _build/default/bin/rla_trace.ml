(* rla_trace — dump CSV time series from a tree-sharing run.

   Records the RLA congestion window, the worst-positioned TCP's
   window, and the soft-bottleneck queue length, sampling every
   100 ms (configurable).  Pipe to a file and plot:

     dune exec bin/rla_trace.exe -- --case 3 --duration 200 > run.csv *)

open Cmdliner

let run ~case_index ~gateway ~duration ~seed ~interval =
  let case = Experiments.Tree.case_of_index case_index in
  let tree = Experiments.Tree.build ~seed ~gateway ~case () in
  let net = tree.Experiments.Tree.net in
  let leaves = Array.to_list tree.Experiments.Tree.leaves in
  let rla =
    Rla.Sender.create ~net ~src:tree.Experiments.Tree.root ~receivers:leaves ()
  in
  let tcps =
    List.map
      (fun leaf -> Tcp.Sender.create ~net ~src:tree.Experiments.Tree.root ~dst:leaf ())
      leaves
  in
  let first_congested = List.hd tree.Experiments.Tree.congested_leaves in
  let first_tcp =
    (* The TCP sharing the first congested branch. *)
    List.nth tcps
      (Option.get
         (List.find_index (fun leaf -> leaf = first_congested) leaves))
  in
  (* The queue feeding the first congested branch: the last link on the
     path to that receiver. *)
  let bottleneck_queue =
    match
      List.rev (Net.Network.path net tree.Experiments.Tree.root first_congested)
    with
    | last :: _ -> last
    | [] -> invalid_arg "rla_trace: no path to the congested receiver"
  in
  let ts =
    Experiments.Timeseries.create ~net ~interval
      ~probes:
        [
          { Experiments.Timeseries.name = "rla_cwnd";
            read = (fun () -> Rla.Sender.cwnd rla) };
          { Experiments.Timeseries.name = "tcp_cwnd";
            read = (fun () -> Tcp.Sender.cwnd first_tcp) };
          { Experiments.Timeseries.name = "queue";
            read = (fun () -> float_of_int (Net.Link.qlen bottleneck_queue)) };
          { Experiments.Timeseries.name = "rla_delivered";
            read = (fun () -> float_of_int (Rla.Sender.max_reach_all rla)) };
        ]
  in
  Net.Network.run_until net duration;
  Experiments.Timeseries.to_csv Format.std_formatter ts

let case_arg =
  let doc = "Bottleneck case (1-5, figure 7 numbering)." in
  Arg.(value & opt int 3 & info [ "case"; "c" ] ~docv:"CASE" ~doc)

let gateway_arg =
  let doc = "Gateway type: droptail or red." in
  let gateways =
    [
      ("droptail", Experiments.Scenario.Droptail);
      ("drop-tail", Experiments.Scenario.Droptail);
      ("red", Experiments.Scenario.Red);
    ]
  in
  Arg.(
    value
    & opt (enum gateways) Experiments.Scenario.Droptail
    & info [ "gateway"; "g" ] ~docv:"GATEWAY" ~doc)

let duration_arg =
  let doc = "Simulated seconds." in
  Arg.(value & opt float 120.0 & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let interval_arg =
  let doc = "Sampling interval (seconds)." in
  Arg.(value & opt float 0.1 & info [ "interval"; "i" ] ~docv:"SECONDS" ~doc)

let cmd =
  let doc = "Dump cwnd/queue time series of a tree-sharing run as CSV." in
  let term =
    Term.(
      const (fun case_index gateway duration seed interval ->
          run ~case_index ~gateway ~duration ~seed ~interval)
      $ case_arg $ gateway_arg $ duration_arg $ seed_arg $ interval_arg)
  in
  Cmd.v (Cmd.info "rla_trace" ~doc) term

let () = exit (Cmd.eval cmd)
