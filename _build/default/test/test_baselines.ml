(* Tests for the rate-based baselines: report receiver, paced sender,
   LTRC / MBFC policies and the CBR source. *)

let star ?(seed = 1) ?(branch_mu = 500.0) ?(capacity = 20) ?(n = 3) () =
  let net = Net.Network.create ~seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init n (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  let fast =
    {
      Net.Link.bandwidth_bps = 100e6;
      prop_delay = 0.005;
      queue = Net.Queue_disc.Droptail;
      capacity = 100;
      phase_jitter = false;
    }
  in
  let branch =
    {
      Net.Link.bandwidth_bps = branch_mu *. 8000.0;
      prop_delay = 0.02;
      queue = Net.Queue_disc.Droptail;
      capacity;
      phase_jitter = false;
    }
  in
  ignore (Net.Network.duplex net s hub fast);
  List.iter (fun leaf -> ignore (Net.Network.duplex net hub leaf branch)) leaves;
  Net.Network.install_routes net;
  (net, s, leaves)

(* ------------------------------------------------------------------ *)
(* Report receiver                                                    *)
(* ------------------------------------------------------------------ *)

let test_report_receiver_counts () =
  let net, s, leaves = star () in
  let flow = Net.Network.fresh_flow net in
  let leaf = List.hd leaves in
  let reports = ref [] in
  Net.Node.attach (Net.Network.node net s) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Baselines.Wire.Rate_report { received; expected; loss_rate; _ } ->
          reports := (received, expected, loss_rate) :: !reports
      | _ -> ());
  let rcv =
    Baselines.Report_receiver.create ~net ~node:leaf ~flow ~sender:s
      ~period:1.0
  in
  (* Deliver seqs 0..9 with 2 and 5 missing. *)
  List.iter
    (fun seq ->
      Net.Network.send net
        (Net.Network.make_packet net ~flow ~src:s
           ~dst:(Net.Packet.Unicast leaf) ~size:1000
           ~payload:(Baselines.Wire.Rate_data { seq; sent_at = 0.0 })))
    [ 0; 1; 3; 4; 6; 7; 8; 9 ];
  Net.Network.run_until net 3.0;
  Alcotest.(check int) "received total" 8
    (Baselines.Report_receiver.received_total rcv);
  match List.rev !reports with
  | (received, expected, loss_rate) :: _ ->
      (* Highest seq seen is 9; span is 0..9 = 9 expected after the
         first packet establishes the base. *)
      Alcotest.(check bool) "loss rate positive" true (loss_rate > 0.0);
      Alcotest.(check bool) "received <= expected" true (received <= expected)
  | [] -> Alcotest.fail "no report emitted"

let test_report_receiver_idle_reports_zero () =
  let net, s, leaves = star () in
  let flow = Net.Network.fresh_flow net in
  let rcv =
    Baselines.Report_receiver.create ~net ~node:(List.hd leaves) ~flow
      ~sender:s ~period:0.5
  in
  Net.Network.run_until net 3.0;
  Alcotest.(check (float 1e-9)) "idle loss rate" 0.0
    (Baselines.Report_receiver.last_loss_rate rcv)

let test_report_receiver_bad_period () =
  let net, s, leaves = star () in
  let flow = Net.Network.fresh_flow net in
  Alcotest.(check bool) "bad period raises" true
    (try
       ignore
         (Baselines.Report_receiver.create ~net ~node:(List.hd leaves) ~flow
            ~sender:s ~period:0.0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* CBR / pacing                                                       *)
(* ------------------------------------------------------------------ *)

let test_cbr_rate_fixed () =
  let net, s, leaves = star ~branch_mu:10_000.0 () in
  let cbr = Baselines.Cbr.create ~net ~src:s ~receivers:leaves ~rate:50.0 () in
  Net.Network.run_until net 20.0;
  Alcotest.(check (float 1e-9)) "rate unchanged" 50.0
    (Baselines.Rate_sender.rate cbr);
  Alcotest.(check int) "no cuts" 0 (Baselines.Rate_sender.cuts cbr);
  (* ~50 pkt/s for 20 s. *)
  let sent = Baselines.Rate_sender.sent cbr in
  Alcotest.(check bool)
    (Printf.sprintf "sent %d near 1000" sent)
    true
    (sent > 950 && sent < 1050)

let test_cbr_delivery_all_receivers () =
  let net, s, leaves = star ~branch_mu:10_000.0 () in
  let cbr = Baselines.Cbr.create ~net ~src:s ~receivers:leaves ~rate:100.0 () in
  Net.Network.run_until net 10.0;
  List.iter
    (fun ep ->
      Alcotest.(check bool) "receiver got most packets" true
        (Baselines.Report_receiver.received_total ep
        > (Baselines.Rate_sender.sent cbr * 9 / 10)))
    (Baselines.Rate_sender.endpoints cbr)

(* ------------------------------------------------------------------ *)
(* LTRC                                                               *)
(* ------------------------------------------------------------------ *)

let test_ltrc_increases_without_loss () =
  let net, s, leaves = star ~branch_mu:10_000.0 () in
  let ltrc = Baselines.Ltrc.create ~net ~src:s ~receivers:leaves () in
  let r0 = Baselines.Rate_sender.rate ltrc in
  Net.Network.run_until net 10.0;
  Alcotest.(check bool) "rate increased" true
    (Baselines.Rate_sender.rate ltrc > r0);
  Alcotest.(check int) "no cuts" 0 (Baselines.Rate_sender.cuts ltrc)

let test_ltrc_cuts_on_loss () =
  let net, s, leaves = star ~branch_mu:50.0 ~capacity:5 () in
  let ltrc = Baselines.Ltrc.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 60.0;
  Alcotest.(check bool) "cuts happened" true (Baselines.Rate_sender.cuts ltrc > 0)

let test_ltrc_refractory_limits_cut_rate () =
  (* With a 1 s refractory period there can be at most ~T cuts in T
     seconds. *)
  let net, s, leaves = star ~branch_mu:20.0 ~capacity:3 () in
  let ltrc = Baselines.Ltrc.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 30.0;
  Alcotest.(check bool)
    (Printf.sprintf "cuts %d bounded by refractory" (Baselines.Rate_sender.cuts ltrc))
    true
    (Baselines.Rate_sender.cuts ltrc <= 31)

let test_rate_floor_respected () =
  let net, s, leaves = star ~branch_mu:20.0 ~capacity:3 () in
  let ltrc = Baselines.Ltrc.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 120.0;
  Alcotest.(check bool) "rate never below min" true
    (Baselines.Rate_sender.rate ltrc >= 1.0)

(* ------------------------------------------------------------------ *)
(* MBFC                                                               *)
(* ------------------------------------------------------------------ *)

let test_mbfc_needs_population () =
  (* Only one of three receivers is congested: with population
     threshold 0.25, 1/3 > 0.25 so MBFC does react; with threshold 0.5
     it must not. *)
  let build pop_thresh =
    let net = Net.Network.create ~seed:1 () in
    let s = Net.Node.id (Net.Network.add_node net) in
    let hub = Net.Node.id (Net.Network.add_node net) in
    let leaves = List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
    let fast =
      {
        Net.Link.bandwidth_bps = 100e6;
        prop_delay = 0.005;
        queue = Net.Queue_disc.Droptail;
        capacity = 100;
        phase_jitter = false;
      }
    in
    ignore (Net.Network.duplex net s hub fast);
    List.iteri
      (fun i leaf ->
        let mu = if i = 0 then 30.0 else 10_000.0 in
        ignore
          (Net.Network.duplex net hub leaf
             {
               Net.Link.bandwidth_bps = mu *. 8000.0;
               prop_delay = 0.02;
               queue = Net.Queue_disc.Droptail;
               capacity = 5;
               phase_jitter = false;
             }))
      leaves;
    Net.Network.install_routes net;
    let config =
      Baselines.Rate_sender.default_config
        (Baselines.Mbfc.policy ~population_threshold:pop_thresh ())
    in
    let sender = Baselines.Rate_sender.create ~net ~src:s ~receivers:leaves config in
    Net.Network.run_until net 60.0;
    Baselines.Rate_sender.cuts sender
  in
  Alcotest.(check bool) "low threshold reacts" true (build 0.25 > 0);
  Alcotest.(check int) "high threshold ignores the minority" 0 (build 0.5)

let test_mbfc_cuts_when_all_congested () =
  let net, s, leaves = star ~branch_mu:30.0 ~capacity:5 () in
  let mbfc = Baselines.Mbfc.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 60.0;
  Alcotest.(check bool) "cuts" true (Baselines.Rate_sender.cuts mbfc > 0)

(* ------------------------------------------------------------------ *)
(* Rate-based random listening                                        *)
(* ------------------------------------------------------------------ *)

let test_rl_rate_grows_without_loss () =
  let net, s, leaves = star ~branch_mu:10_000.0 () in
  let sender = Baselines.Rl_rate.create ~net ~src:s ~receivers:leaves () in
  let r0 = Baselines.Rate_sender.rate sender in
  Net.Network.run_until net 10.0;
  Alcotest.(check bool) "rate increased" true
    (Baselines.Rate_sender.rate sender > r0);
  Alcotest.(check int) "no cuts" 0 (Baselines.Rate_sender.cuts sender)

let test_rl_rate_cuts_under_loss () =
  let net, s, leaves = star ~branch_mu:50.0 ~capacity:5 () in
  let sender = Baselines.Rl_rate.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 90.0;
  Alcotest.(check bool) "cuts happened" true
    (Baselines.Rate_sender.cuts sender > 0)

let test_rl_rate_cuts_less_than_ltrc () =
  (* Random listening reacts to ~1/n of the congested reports; with all
     three receivers equally congested it should cut no more often than
     LTRC, which reacts to every one. *)
  let run make =
    let net, s, leaves = star ~seed:5 ~branch_mu:40.0 ~capacity:5 () in
    let sender = make ~net ~src:s ~receivers:leaves in
    Net.Network.run_until net 120.0;
    Baselines.Rate_sender.cuts sender
  in
  let rl = run (fun ~net ~src ~receivers -> Baselines.Rl_rate.create ~net ~src ~receivers ()) in
  let ltrc = run (fun ~net ~src ~receivers -> Baselines.Ltrc.create ~net ~src ~receivers ()) in
  Alcotest.(check bool)
    (Printf.sprintf "rl cuts %d <= ltrc cuts %d + slack" rl ltrc)
    true
    (rl <= ltrc + 5)

(* ------------------------------------------------------------------ *)
(* Config validation                                                  *)
(* ------------------------------------------------------------------ *)

let test_rate_sender_validation () =
  let net, s, leaves = star () in
  Alcotest.(check bool) "no receivers" true
    (try
       ignore
         (Baselines.Rate_sender.create ~net ~src:s ~receivers:[]
            (Baselines.Rate_sender.default_config Baselines.Rate_sender.Fixed));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad rate" true
    (try
       ignore
         (Baselines.Rate_sender.create ~net ~src:s ~receivers:leaves
            {
              (Baselines.Rate_sender.default_config Baselines.Rate_sender.Fixed) with
              Baselines.Rate_sender.initial_rate = 0.0;
            });
       false
     with Invalid_argument _ -> true)

let test_measurement_reset () =
  let net, s, leaves = star ~branch_mu:10_000.0 () in
  let cbr = Baselines.Cbr.create ~net ~src:s ~receivers:leaves ~rate:100.0 () in
  Net.Network.run_until net 5.0;
  Baselines.Rate_sender.reset_measurement cbr;
  Net.Network.run_until net 15.0;
  let rate = Baselines.Rate_sender.min_delivered_rate cbr in
  Alcotest.(check bool)
    (Printf.sprintf "measured goodput %.1f near 100" rate)
    true
    (rate > 90.0 && rate < 110.0)

let () =
  Alcotest.run "baselines"
    [
      ( "report_receiver",
        [
          Alcotest.test_case "counts and loss" `Quick test_report_receiver_counts;
          Alcotest.test_case "idle reports zero" `Quick
            test_report_receiver_idle_reports_zero;
          Alcotest.test_case "bad period" `Quick test_report_receiver_bad_period;
        ] );
      ( "cbr",
        [
          Alcotest.test_case "rate fixed" `Quick test_cbr_rate_fixed;
          Alcotest.test_case "delivers to all" `Quick test_cbr_delivery_all_receivers;
        ] );
      ( "ltrc",
        [
          Alcotest.test_case "increases without loss" `Quick
            test_ltrc_increases_without_loss;
          Alcotest.test_case "cuts on loss" `Quick test_ltrc_cuts_on_loss;
          Alcotest.test_case "refractory bound" `Quick
            test_ltrc_refractory_limits_cut_rate;
          Alcotest.test_case "rate floor" `Slow test_rate_floor_respected;
        ] );
      ( "mbfc",
        [
          Alcotest.test_case "population threshold" `Slow test_mbfc_needs_population;
          Alcotest.test_case "cuts when all congested" `Quick
            test_mbfc_cuts_when_all_congested;
        ] );
      ( "rl_rate",
        [
          Alcotest.test_case "grows without loss" `Quick
            test_rl_rate_grows_without_loss;
          Alcotest.test_case "cuts under loss" `Quick test_rl_rate_cuts_under_loss;
          Alcotest.test_case "cuts less than ltrc" `Slow
            test_rl_rate_cuts_less_than_ltrc;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_rate_sender_validation;
          Alcotest.test_case "measurement reset" `Quick test_measurement_reset;
        ] );
    ]
