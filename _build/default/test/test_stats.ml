(* Tests for the statistics library. *)

let check_float = Alcotest.(check (float 1e-9))

let check_close msg ?(tol = 1e-6) expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Ewma                                                               *)
(* ------------------------------------------------------------------ *)

let test_ewma_first_sample () =
  let e = Stats.Ewma.create ~weight:0.1 in
  Alcotest.(check (option (float 0.0))) "empty" None (Stats.Ewma.value_opt e);
  Stats.Ewma.update e 5.0;
  check_float "first sample sets value" 5.0 (Stats.Ewma.value e)

let test_ewma_update () =
  let e = Stats.Ewma.create ~weight:0.5 in
  Stats.Ewma.update e 10.0;
  Stats.Ewma.update e 20.0;
  check_float "half-way" 15.0 (Stats.Ewma.value e);
  Stats.Ewma.update e 15.0;
  check_float "converging" 15.0 (Stats.Ewma.value e)

let test_ewma_constant_stream () =
  let e = Stats.Ewma.create ~weight:0.01 in
  for _ = 1 to 100 do
    Stats.Ewma.update e 7.0
  done;
  check_float "constant stream" 7.0 (Stats.Ewma.value e);
  Alcotest.(check int) "samples" 100 (Stats.Ewma.samples e)

let test_ewma_reset () =
  let e = Stats.Ewma.create ~weight:0.5 in
  Stats.Ewma.update e 3.0;
  Stats.Ewma.reset e;
  Alcotest.(check int) "samples reset" 0 (Stats.Ewma.samples e);
  Stats.Ewma.update e 9.0;
  check_float "behaves as fresh" 9.0 (Stats.Ewma.value e)

let test_ewma_invalid_weight () =
  Alcotest.(check bool) "rejects 0" true
    (try ignore (Stats.Ewma.create ~weight:0.0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects >1" true
    (try ignore (Stats.Ewma.create ~weight:1.5); false
     with Invalid_argument _ -> true)

let prop_ewma_between_extremes =
  QCheck.Test.make ~name:"ewma stays within sample extremes" ~count:200
    QCheck.(pair (float_bound_exclusive 1.0) (list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0)))
    (fun (w, samples) ->
      QCheck.assume (w > 0.0);
      let e = Stats.Ewma.create ~weight:w in
      List.iter (Stats.Ewma.update e) samples;
      let lo = List.fold_left Stdlib.min infinity samples in
      let hi = List.fold_left Stdlib.max neg_infinity samples in
      let v = Stats.Ewma.value e in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Welford                                                            *)
(* ------------------------------------------------------------------ *)

let test_welford_basic () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close "mean" 5.0 (Stats.Welford.mean w);
  check_close "variance" ~tol:1e-9 4.571428571428571 (Stats.Welford.variance w);
  check_float "min" 2.0 (Stats.Welford.min w);
  check_float "max" 9.0 (Stats.Welford.max w);
  Alcotest.(check int) "count" 8 (Stats.Welford.count w)

let test_welford_empty () =
  let w = Stats.Welford.create () in
  check_float "mean 0" 0.0 (Stats.Welford.mean w);
  check_float "variance 0" 0.0 (Stats.Welford.variance w)

let test_welford_single () =
  let w = Stats.Welford.create () in
  Stats.Welford.add w 3.0;
  check_float "mean" 3.0 (Stats.Welford.mean w);
  check_float "variance single" 0.0 (Stats.Welford.variance w)

let test_welford_merge_empty () =
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  Stats.Welford.add a 1.0;
  let m = Stats.Welford.merge a b in
  check_float "merge with empty" 1.0 (Stats.Welford.mean m);
  let m2 = Stats.Welford.merge b a in
  check_float "empty with full" 1.0 (Stats.Welford.mean m2)

let prop_welford_merge =
  QCheck.Test.make ~name:"welford merge equals concatenation" ~count:200
    QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] || ys <> []);
      let a = Stats.Welford.create () and b = Stats.Welford.create () in
      List.iter (Stats.Welford.add a) xs;
      List.iter (Stats.Welford.add b) ys;
      let merged = Stats.Welford.merge a b in
      let direct = Stats.Welford.create () in
      List.iter (Stats.Welford.add direct) (xs @ ys);
      abs_float (Stats.Welford.mean merged -. Stats.Welford.mean direct) < 1e-6
      && abs_float (Stats.Welford.variance merged -. Stats.Welford.variance direct)
         < 1e-6)

let prop_welford_mean_bounds =
  QCheck.Test.make ~name:"welford mean within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1000.0))
    (fun xs ->
      let w = Stats.Welford.create () in
      List.iter (Stats.Welford.add w) xs;
      Stats.Welford.mean w >= Stats.Welford.min w -. 1e-9
      && Stats.Welford.mean w <= Stats.Welford.max w +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Time_avg                                                           *)
(* ------------------------------------------------------------------ *)

let test_time_avg_constant () =
  let t = Stats.Time_avg.create ~start:0.0 ~value:4.0 in
  check_float "constant signal" 4.0 (Stats.Time_avg.average t ~upto:10.0)

let test_time_avg_step () =
  let t = Stats.Time_avg.create ~start:0.0 ~value:0.0 in
  Stats.Time_avg.update t ~time:5.0 ~value:10.0;
  (* 0 for 5 s then 10 for 5 s -> mean 5. *)
  check_float "step signal" 5.0 (Stats.Time_avg.average t ~upto:10.0)

let test_time_avg_weighted () =
  let t = Stats.Time_avg.create ~start:0.0 ~value:1.0 in
  Stats.Time_avg.update t ~time:1.0 ~value:3.0;
  Stats.Time_avg.update t ~time:4.0 ~value:0.0;
  (* 1*1 + 3*3 + 0*6 over 10 s = 1.0 *)
  check_float "weighted" 1.0 (Stats.Time_avg.average t ~upto:10.0)

let test_time_avg_zero_span () =
  let t = Stats.Time_avg.create ~start:2.0 ~value:7.0 in
  check_float "zero span returns current" 7.0 (Stats.Time_avg.average t ~upto:2.0)

let test_time_avg_backwards_rejected () =
  let t = Stats.Time_avg.create ~start:5.0 ~value:1.0 in
  Alcotest.(check bool) "raises" true
    (try
       Stats.Time_avg.update t ~time:4.0 ~value:2.0;
       false
     with Invalid_argument _ -> true)

let test_time_avg_reset () =
  let t = Stats.Time_avg.create ~start:0.0 ~value:100.0 in
  Stats.Time_avg.update t ~time:10.0 ~value:2.0;
  Stats.Time_avg.reset t ~start:10.0 ~value:2.0;
  check_float "post-reset ignores history" 2.0 (Stats.Time_avg.average t ~upto:20.0);
  check_float "current" 2.0 (Stats.Time_avg.current t)

(* ------------------------------------------------------------------ *)
(* Counter                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_basic () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c ~now:1.0;
  Stats.Counter.add c ~now:2.0 3;
  Alcotest.(check int) "value" 4 (Stats.Counter.value c)

let test_counter_warmup () =
  let c = Stats.Counter.create ~enable_after:100.0 () in
  Stats.Counter.incr c ~now:50.0;
  Stats.Counter.incr c ~now:150.0;
  Alcotest.(check int) "warm-up discarded" 1 (Stats.Counter.value c)

let test_counter_rate () =
  let c = Stats.Counter.create ~enable_after:10.0 () in
  for i = 11 to 20 do
    Stats.Counter.incr c ~now:(float_of_int i)
  done;
  check_float "rate" 1.0 (Stats.Counter.rate c ~now:20.0)

let test_counter_reset () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c ~now:0.0;
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_binning () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.99 ];
  Alcotest.(check int) "bin 0" 1 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Stats.Histogram.bin_count h 9);
  Alcotest.(check int) "total" 4 (Stats.Histogram.count h)

let test_histogram_out_of_range () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Stats.Histogram.add h (-1.0);
  Stats.Histogram.add h 2.0;
  Stats.Histogram.add h 1.0;
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow (hi inclusive)" 2 (Stats.Histogram.overflow h);
  Alcotest.(check int) "total counts everything" 3 (Stats.Histogram.count h)

let test_histogram_mode () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Alcotest.(check (option int)) "empty mode" None (Stats.Histogram.mode_bin h);
  List.iter (Stats.Histogram.add h) [ 5.5; 5.6; 5.7; 1.0 ];
  Alcotest.(check (option int)) "mode bin" (Some 5) (Stats.Histogram.mode_bin h)

let test_histogram_centers () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  check_float "center of bin 0" 0.5 (Stats.Histogram.bin_center h 0);
  check_float "center of bin 9" 9.5 (Stats.Histogram.bin_center h 9)

let test_histogram_invalid () =
  Alcotest.(check bool) "bad bins" true
    (try ignore (Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad range" true
    (try ignore (Stats.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Density                                                            *)
(* ------------------------------------------------------------------ *)

let test_density_basic () =
  let d = Stats.Density.create ~x_lo:0.0 ~x_hi:10.0 ~y_lo:0.0 ~y_hi:10.0 ~cells:10 in
  Stats.Density.add d ~x:0.5 ~y:0.5;
  Stats.Density.add d ~x:0.5 ~y:0.5;
  Stats.Density.add d ~x:9.5 ~y:9.5;
  Alcotest.(check int) "cell (0,0)" 2 (Stats.Density.cell d 0 0);
  Alcotest.(check int) "cell (9,9)" 1 (Stats.Density.cell d 9 9);
  Alcotest.(check int) "total" 3 (Stats.Density.total d);
  Alcotest.(check (pair int int)) "peak" (0, 0) (Stats.Density.peak_cell d)

let test_density_clamping () =
  let d = Stats.Density.create ~x_lo:0.0 ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0 ~cells:2 in
  Stats.Density.add d ~x:(-5.0) ~y:50.0;
  Alcotest.(check int) "clamped to border" 1 (Stats.Density.cell d 0 1)

let test_density_centroid () =
  let d = Stats.Density.create ~x_lo:0.0 ~x_hi:10.0 ~y_lo:0.0 ~y_hi:10.0 ~cells:10 in
  Stats.Density.add d ~x:2.5 ~y:2.5;
  Stats.Density.add d ~x:7.5 ~y:7.5;
  let cx, cy = Stats.Density.centroid d in
  check_float "centroid x" 5.0 cx;
  check_float "centroid y" 5.0 cy

let test_density_mass_within () =
  let d = Stats.Density.create ~x_lo:0.0 ~x_hi:10.0 ~y_lo:0.0 ~y_hi:10.0 ~cells:10 in
  for _ = 1 to 9 do
    Stats.Density.add d ~x:5.0 ~y:5.0
  done;
  Stats.Density.add d ~x:0.5 ~y:0.5;
  let mass = Stats.Density.mass_within d ~cx:5.5 ~cy:5.5 ~radius:1.0 in
  check_float "mass near center" 0.9 mass

let test_density_empty_centroid () =
  let d = Stats.Density.create ~x_lo:0.0 ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0 ~cells:2 in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "empty centroid" (0.0, 0.0)
    (Stats.Density.centroid d)

(* ------------------------------------------------------------------ *)
(* Quantile                                                           *)
(* ------------------------------------------------------------------ *)

let test_quantile_basic () =
  let q = Stats.Quantile.create () in
  List.iter (Stats.Quantile.add q) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check_float "median" 3.0 (Stats.Quantile.median q);
  check_float "q0" 1.0 (Stats.Quantile.quantile q 0.0);
  check_float "q1" 5.0 (Stats.Quantile.quantile q 1.0);
  check_float "interpolated" 1.5 (Stats.Quantile.quantile q 0.125)

let test_quantile_mean () =
  let q = Stats.Quantile.create () in
  List.iter (Stats.Quantile.add q) [ 1.0; 2.0; 3.0 ];
  check_float "mean" 2.0 (Stats.Quantile.mean q)

let test_quantile_empty () =
  let q = Stats.Quantile.create () in
  check_float "mean of empty" 0.0 (Stats.Quantile.mean q);
  Alcotest.(check bool) "quantile raises" true
    (try ignore (Stats.Quantile.median q); false
     with Invalid_argument _ -> true)

let test_quantile_add_after_sort () =
  let q = Stats.Quantile.create () in
  List.iter (Stats.Quantile.add q) [ 3.0; 1.0 ];
  ignore (Stats.Quantile.median q);
  Stats.Quantile.add q 2.0;
  check_float "resorted" 2.0 (Stats.Quantile.median q)

let prop_quantile_sorted =
  QCheck.Test.make ~name:"to_sorted_array is sorted and complete" ~count:200
    QCheck.(list (float_bound_exclusive 100.0))
    (fun xs ->
      let q = Stats.Quantile.create () in
      List.iter (Stats.Quantile.add q) xs;
      let arr = Stats.Quantile.to_sorted_array q in
      Array.to_list arr = List.sort compare xs)

let () =
  Alcotest.run "stats"
    [
      ( "ewma",
        [
          Alcotest.test_case "first sample" `Quick test_ewma_first_sample;
          Alcotest.test_case "update" `Quick test_ewma_update;
          Alcotest.test_case "constant stream" `Quick test_ewma_constant_stream;
          Alcotest.test_case "reset" `Quick test_ewma_reset;
          Alcotest.test_case "invalid weight" `Quick test_ewma_invalid_weight;
          QCheck_alcotest.to_alcotest prop_ewma_between_extremes;
        ] );
      ( "welford",
        [
          Alcotest.test_case "basic" `Quick test_welford_basic;
          Alcotest.test_case "empty" `Quick test_welford_empty;
          Alcotest.test_case "single" `Quick test_welford_single;
          Alcotest.test_case "merge with empty" `Quick test_welford_merge_empty;
          QCheck_alcotest.to_alcotest prop_welford_merge;
          QCheck_alcotest.to_alcotest prop_welford_mean_bounds;
        ] );
      ( "time_avg",
        [
          Alcotest.test_case "constant" `Quick test_time_avg_constant;
          Alcotest.test_case "step" `Quick test_time_avg_step;
          Alcotest.test_case "weighted" `Quick test_time_avg_weighted;
          Alcotest.test_case "zero span" `Quick test_time_avg_zero_span;
          Alcotest.test_case "backwards rejected" `Quick test_time_avg_backwards_rejected;
          Alcotest.test_case "reset" `Quick test_time_avg_reset;
        ] );
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "warm-up" `Quick test_counter_warmup;
          Alcotest.test_case "rate" `Quick test_counter_rate;
          Alcotest.test_case "reset" `Quick test_counter_reset;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "out of range" `Quick test_histogram_out_of_range;
          Alcotest.test_case "mode" `Quick test_histogram_mode;
          Alcotest.test_case "centers" `Quick test_histogram_centers;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
        ] );
      ( "density",
        [
          Alcotest.test_case "basic" `Quick test_density_basic;
          Alcotest.test_case "clamping" `Quick test_density_clamping;
          Alcotest.test_case "centroid" `Quick test_density_centroid;
          Alcotest.test_case "mass within" `Quick test_density_mass_within;
          Alcotest.test_case "empty centroid" `Quick test_density_empty_centroid;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "basic" `Quick test_quantile_basic;
          Alcotest.test_case "mean" `Quick test_quantile_mean;
          Alcotest.test_case "empty" `Quick test_quantile_empty;
          Alcotest.test_case "add after sort" `Quick test_quantile_add_after_sort;
          QCheck_alcotest.to_alcotest prop_quantile_sorted;
        ] );
    ]
