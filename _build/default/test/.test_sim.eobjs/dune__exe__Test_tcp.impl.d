test/test_tcp.ml: Alcotest Gen List Net Printf QCheck QCheck_alcotest Sim Stats Tcp
