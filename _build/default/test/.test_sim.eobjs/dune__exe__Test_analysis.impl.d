test/test_analysis.ml: Alcotest Analysis Array List Printf Sim Stdlib
