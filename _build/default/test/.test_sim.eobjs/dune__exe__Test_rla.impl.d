test/test_rla.ml: Alcotest List Net Option Printf Rla
