test/test_scoreboard_model.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Stdlib Tcp
