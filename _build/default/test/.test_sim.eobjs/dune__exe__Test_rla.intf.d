test/test_rla.mli:
