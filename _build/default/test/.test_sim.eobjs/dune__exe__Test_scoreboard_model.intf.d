test/test_scoreboard_model.mli:
