test/test_net.ml: Alcotest Float Format List Net Option Printf Sim String
