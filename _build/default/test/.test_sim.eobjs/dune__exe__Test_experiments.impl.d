test/test_experiments.ml: Alcotest Analysis Array Buffer Experiments Format List Net Option Printf Rla Sim String Tcp
