test/test_runner.ml: Alcotest Experiments Float List Net Printf Rla Runner Tcp
