test/test_runner.mli:
