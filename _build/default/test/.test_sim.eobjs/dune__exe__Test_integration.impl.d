test/test_integration.ml: Alcotest Experiments List Net Printf Rla
