(* Tests for the experiments library: scenario helpers, the tree
   builder, and (short) runs of each experiment harness. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Scenario                                                           *)
(* ------------------------------------------------------------------ *)

let test_scenario_gateway_names () =
  Alcotest.(check string) "droptail" "drop-tail"
    (Experiments.Scenario.gateway_name Experiments.Scenario.Droptail);
  Alcotest.(check string) "red" "RED"
    (Experiments.Scenario.gateway_name Experiments.Scenario.Red);
  Alcotest.(check bool) "parse red" true
    (Experiments.Scenario.gateway_of_string "RED" = Some Experiments.Scenario.Red);
  Alcotest.(check bool) "parse tail" true
    (Experiments.Scenario.gateway_of_string "drop-tail"
    = Some Experiments.Scenario.Droptail);
  Alcotest.(check bool) "parse junk" true
    (Experiments.Scenario.gateway_of_string "fifo" = None)

let test_scenario_link_config () =
  let c =
    Experiments.Scenario.link_config ~gateway:Experiments.Scenario.Droptail
      ~mu_pkts:100.0 ~delay:0.05 ()
  in
  check_float "bandwidth for 100 pkt/s of 1000 B" 800_000.0 c.Net.Link.bandwidth_bps;
  Alcotest.(check int) "buffer 20" 20 c.Net.Link.capacity;
  Alcotest.(check bool) "droptail jitter on" true c.Net.Link.phase_jitter;
  let r =
    Experiments.Scenario.link_config ~gateway:Experiments.Scenario.Red
      ~mu_pkts:100.0 ~delay:0.05 ()
  in
  Alcotest.(check bool) "red jitter off" false r.Net.Link.phase_jitter;
  match r.Net.Link.queue with
  | Net.Queue_disc.Red_gateway p ->
      check_float "min th" 5.0 p.Net.Red.min_th;
      check_float "max th" 15.0 p.Net.Red.max_th
  | _ -> Alcotest.fail "expected RED queue"

let test_scenario_jitter_override () =
  let c =
    Experiments.Scenario.link_config ~gateway:Experiments.Scenario.Droptail
      ~mu_pkts:100.0 ~delay:0.05 ~phase_jitter:false ()
  in
  Alcotest.(check bool) "override respected" false c.Net.Link.phase_jitter

(* ------------------------------------------------------------------ *)
(* Tree                                                               *)
(* ------------------------------------------------------------------ *)

let test_tree_case_mapping () =
  Alcotest.(check string) "case 1" "L1"
    (Experiments.Tree.case_name (Experiments.Tree.case_of_index 1));
  Alcotest.(check string) "case 5" "L21"
    (Experiments.Tree.case_name (Experiments.Tree.case_of_index 5));
  Alcotest.(check bool) "case 6 invalid" true
    (try ignore (Experiments.Tree.case_of_index 6); false
     with Invalid_argument _ -> true)

let build case =
  Experiments.Tree.build ~seed:1 ~gateway:Experiments.Scenario.Droptail ~case ()

let test_tree_structure () =
  let t = build Experiments.Tree.L4_all in
  (* S + G1 + 3 G2 + 9 G3 + 27 leaves. *)
  Alcotest.(check int) "41 nodes" 41 (Net.Network.node_count t.Experiments.Tree.net);
  Alcotest.(check int) "3 g2" 3 (Array.length t.Experiments.Tree.g2);
  Alcotest.(check int) "9 g3" 9 (Array.length t.Experiments.Tree.g3);
  Alcotest.(check int) "27 leaves" 27 (Array.length t.Experiments.Tree.leaves);
  (* 40 duplex links = 80 directed. *)
  Alcotest.(check int) "80 directed links" 80
    (List.length (Net.Network.links t.Experiments.Tree.net))

let test_tree_paths_equal_length () =
  let t = build Experiments.Tree.L4_all in
  let net = t.Experiments.Tree.net in
  Array.iter
    (fun leaf ->
      Alcotest.(check int) "4 hops to each leaf" 4
        (List.length (Net.Network.path net t.Experiments.Tree.root leaf)))
    t.Experiments.Tree.leaves

let bandwidth_between t a b =
  match Net.Network.link_between t.Experiments.Tree.net a b with
  | Some l -> (Net.Link.config l).Net.Link.bandwidth_bps
  | None -> Alcotest.fail "missing link"

let test_tree_case1_capacity () =
  let t = build Experiments.Tree.L1_bottleneck in
  (* L1 carries 27 TCPs + multicast: 100 * 28 pkt/s = 22.4 Mbps. *)
  check_float "root link capacity" (2800.0 *. 8000.0)
    (bandwidth_between t t.Experiments.Tree.root t.Experiments.Tree.g1);
  (* Leaf links are fast. *)
  Alcotest.(check bool) "leaf links fast" true
    (bandwidth_between t t.Experiments.Tree.g3.(0) t.Experiments.Tree.leaves.(0)
    > 9.0e7)

let test_tree_case3_capacity () =
  let t = build Experiments.Tree.L4_all in
  (* Each L4 carries 1 TCP + multicast: 200 pkt/s. *)
  check_float "leaf link capacity" (200.0 *. 8000.0)
    (bandwidth_between t t.Experiments.Tree.g3.(0) t.Experiments.Tree.leaves.(0));
  Alcotest.(check bool) "root link fast" true
    (bandwidth_between t t.Experiments.Tree.root t.Experiments.Tree.g1 > 9.0e7)

let test_tree_case4_partial () =
  let t = build (Experiments.Tree.L4_first 5) in
  Alcotest.(check int) "five congested leaves" 5
    (List.length t.Experiments.Tree.congested_leaves);
  (* Leaf 0 congested, leaf 10 not. *)
  check_float "congested leaf" (200.0 *. 8000.0)
    (bandwidth_between t t.Experiments.Tree.g3.(0) t.Experiments.Tree.leaves.(0));
  Alcotest.(check bool) "uncongested leaf fast" true
    (bandwidth_between t t.Experiments.Tree.g3.(3) t.Experiments.Tree.leaves.(10)
    > 9.0e7)

let test_tree_case5_subtree () =
  let t = build Experiments.Tree.L2_single in
  Alcotest.(check int) "nine receivers behind L21" 9
    (List.length t.Experiments.Tree.congested_leaves);
  (* L21 carries 9 TCPs + multicast: 1000 pkt/s. *)
  check_float "L21 capacity" (1000.0 *. 8000.0)
    (bandwidth_between t t.Experiments.Tree.g1 t.Experiments.Tree.g2.(0));
  (* L22 is not congested. *)
  Alcotest.(check bool) "L22 fast" true
    (bandwidth_between t t.Experiments.Tree.g1 t.Experiments.Tree.g2.(1) > 9.0e7)

let test_tree_g3_receivers () =
  let t =
    Experiments.Tree.build ~seed:1 ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L3_all ~receivers_include_g3:true ()
  in
  let rs = Experiments.Tree.receivers t ~include_g3:true in
  Alcotest.(check int) "36 receivers" 36 (List.length rs);
  (* Background TCPs stay on the leaves (figure 10's TCP rows all show
     leaf RTTs), so each L3 still carries 3 TCPs: 400 pkt/s. *)
  check_float "L3 capacity" (400.0 *. 8000.0)
    (bandwidth_between t t.Experiments.Tree.g2.(0) t.Experiments.Tree.g3.(0))

(* ------------------------------------------------------------------ *)
(* Short end-to-end runs of the harnesses                             *)
(* ------------------------------------------------------------------ *)

let short_sharing_config case =
  {
    (Experiments.Sharing.default_config ~gateway:Experiments.Scenario.Droptail
       ~case)
    with
    Experiments.Sharing.duration = 40.0;
    warmup = 10.0;
  }

let test_sharing_run_structure () =
  let r = Experiments.Sharing.run (short_sharing_config Experiments.Tree.L4_all) in
  Alcotest.(check int) "27 receivers" 27 r.Experiments.Sharing.n_receivers;
  Alcotest.(check int) "27 tcp flows" 27 (List.length r.Experiments.Sharing.tcps);
  Alcotest.(check bool) "worst <= best" true
    (r.Experiments.Sharing.wtcp.Tcp.Sender.throughput
    <= r.Experiments.Sharing.btcp.Tcp.Sender.throughput);
  Alcotest.(check bool) "rla made progress" true
    (r.Experiments.Sharing.rla.Rla.Sender.throughput > 0.0);
  Alcotest.(check (option unit)) "uniform case has no rest group" None
    (Option.map (fun _ -> ()) r.Experiments.Sharing.rla_signals_rest)

let test_sharing_case4_groups () =
  let r =
    Experiments.Sharing.run (short_sharing_config (Experiments.Tree.L4_first 5))
  in
  (match r.Experiments.Sharing.rla_signals_rest with
  | Some _ -> ()
  | None -> Alcotest.fail "case 4 must split groups");
  Alcotest.(check bool) "congested flows flagged" true
    (List.exists (fun f -> f.Experiments.Sharing.congested)
       r.Experiments.Sharing.tcps
    && List.exists
         (fun f -> not f.Experiments.Sharing.congested)
         r.Experiments.Sharing.tcps)

let test_multi_session_structure () =
  let config =
    {
      (Experiments.Multi_session.default_config
         ~gateway:Experiments.Scenario.Droptail)
      with
      Experiments.Multi_session.duration = 40.0;
      warmup = 10.0;
    }
  in
  let r = Experiments.Multi_session.run config in
  Alcotest.(check bool) "both sessions alive" true
    (r.Experiments.Multi_session.session1.Rla.Sender.throughput > 0.0
    && r.Experiments.Multi_session.session2.Rla.Sender.throughput > 0.0)

let test_diff_rtt_structure () =
  let config = Experiments.Diff_rtt.default_config ~case_index:2 in
  let r =
    Experiments.Diff_rtt.run
      { config with Experiments.Diff_rtt.duration = 40.0; warmup = 10.0 }
  in
  Alcotest.(check int) "36 receivers" 36 r.Experiments.Diff_rtt.n_receivers;
  Alcotest.(check bool) "progress" true
    (r.Experiments.Diff_rtt.rla.Rla.Sender.throughput > 0.0)

let test_diff_rtt_bad_case () =
  Alcotest.(check bool) "case 3 invalid" true
    (try ignore (Experiments.Diff_rtt.default_config ~case_index:3); false
     with Invalid_argument _ -> true)

let test_validation_run () =
  let points =
    Experiments.Validation.run
      {
        Experiments.Validation.ps = [ 0.01 ];
        duration = 60.0;
        warmup = 10.0;
        seed = 1;
        rtt = 0.1;
      }
  in
  match points with
  | [ pt ] ->
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.2f within 15%%" pt.Experiments.Validation.ratio)
        true
        (pt.Experiments.Validation.ratio > 0.85
        && pt.Experiments.Validation.ratio < 1.15)
  | _ -> Alcotest.fail "expected one point"

let test_baseline_run () =
  let r =
    Experiments.Baseline_fairness.run
      {
        (Experiments.Baseline_fairness.default_config
           ~gateway:Experiments.Scenario.Droptail
           ~scheme:Experiments.Baseline_fairness.Scheme_cbr)
        with
        Experiments.Baseline_fairness.duration = 40.0;
        warmup = 10.0;
      }
  in
  Alcotest.(check bool) "cbr delivered about its rate" true
    (r.Experiments.Baseline_fairness.mcast_throughput > 50.0);
  Alcotest.(check bool) "tcp alive" true
    (r.Experiments.Baseline_fairness.tcp_mean > 0.0)

let test_buffer_dynamics_run () =
  let r =
    Experiments.Buffer_dynamics.run
      {
        Experiments.Buffer_dynamics.default_config with
        Experiments.Buffer_dynamics.duration = 80.0;
        warmup = 20.0;
      }
  in
  Alcotest.(check bool) "episodes observed" true (r.Experiments.Buffer_dynamics.episodes > 3);
  Alcotest.(check bool) "drops grouped" true
    (r.Experiments.Buffer_dynamics.drops
    >= r.Experiments.Buffer_dynamics.episodes);
  Alcotest.(check bool)
    (Printf.sprintf "gaps (%.2f) exceed episode lengths (%.2f)"
       r.Experiments.Buffer_dynamics.mean_gap
       r.Experiments.Buffer_dynamics.mean_episode_length)
    true
    (r.Experiments.Buffer_dynamics.mean_gap
    > r.Experiments.Buffer_dynamics.mean_episode_length);
  Alcotest.(check bool) "episodes within ~2RTT" true
    (r.Experiments.Buffer_dynamics.episode_over_2rtt < 1.5)

let test_buffer_dynamics_needs_flows () =
  Alcotest.(check bool) "zero flows rejected" true
    (try
       ignore
         (Experiments.Buffer_dynamics.run
            { Experiments.Buffer_dynamics.default_config with
              Experiments.Buffer_dynamics.n_tcp = 0 });
       false
     with Invalid_argument _ -> true)

let test_scaling_run () =
  let points =
    Experiments.Scaling.run
      {
        Experiments.Scaling.default_config with
        Experiments.Scaling.ns = [ 2; 8 ];
        duration = 80.0;
        warmup = 20.0;
      }
  in
  match points with
  | [ p2; p8 ] ->
      Alcotest.(check int) "n recorded" 2 p2.Experiments.Scaling.n;
      (* The throughput must not collapse with receiver count: with the
         1/n listening rule, 8 receivers keep well above share/4. *)
      Alcotest.(check bool)
        (Printf.sprintf "n=8 throughput %.1f stays high"
           p8.Experiments.Scaling.rla_throughput)
        true
        (p8.Experiments.Scaling.rla_throughput > 25.0);
      Alcotest.(check bool) "ratio bounded" true
        (p8.Experiments.Scaling.ratio > 0.25
        && p8.Experiments.Scaling.ratio < 16.0)
  | _ -> Alcotest.fail "expected two points"

let test_short_flows_run () =
  let r =
    Experiments.Short_flows.run
      {
        (Experiments.Short_flows.default_config Experiments.Short_flows.Bg_rla)
        with
        Experiments.Short_flows.duration = 100.0;
        warmup = 20.0;
        arrival_rate = 1.0;
      }
  in
  Alcotest.(check bool) "flows launched" true (r.Experiments.Short_flows.launched > 20);
  Alcotest.(check bool) "most completed" true
    (r.Experiments.Short_flows.completed
    >= r.Experiments.Short_flows.launched * 9 / 10);
  Alcotest.(check bool) "reasonable completion time" true
    (r.Experiments.Short_flows.mean_completion > 0.0
    && r.Experiments.Short_flows.mean_completion < 30.0)

let test_short_flows_cbr_starves () =
  let r =
    Experiments.Short_flows.run
      {
        (Experiments.Short_flows.default_config
           (Experiments.Short_flows.Bg_cbr 220.0))
        with
        Experiments.Short_flows.duration = 100.0;
        warmup = 20.0;
      }
  in
  (* An overload CBR leaves almost no room for the short flows. *)
  Alcotest.(check bool)
    (Printf.sprintf "few complete (%d/%d)" r.Experiments.Short_flows.completed
       r.Experiments.Short_flows.launched)
    true
    (r.Experiments.Short_flows.completed
    <= r.Experiments.Short_flows.launched / 4)

let test_ablation_variant_lists () =
  Alcotest.(check int) "grouping" 4
    (List.length (Experiments.Ablation.grouping_variants ()));
  Alcotest.(check int) "forced cut" 4
    (List.length (Experiments.Ablation.forced_cut_variants ()));
  Alcotest.(check int) "eta" 4 (List.length (Experiments.Ablation.eta_variants ()));
  Alcotest.(check int) "phase" 2
    (List.length (Experiments.Ablation.phase_variants ()));
  Alcotest.(check int) "exponent" 3
    (List.length (Experiments.Ablation.rtt_exponent_variants ()));
  Alcotest.(check int) "rexmit timeout" 4
    (List.length (Experiments.Ablation.rexmit_timeout_variants ()));
  Alcotest.(check int) "ack jitter" 3
    (List.length (Experiments.Ablation.ack_jitter_variants ()))

(* ------------------------------------------------------------------ *)
(* Timeseries                                                         *)
(* ------------------------------------------------------------------ *)

let test_timeseries_sampling () =
  let net = Net.Network.create ~seed:1 () in
  let counter = ref 0.0 in
  let ts =
    Experiments.Timeseries.create ~net ~interval:0.5
      ~probes:
        [
          { Experiments.Timeseries.name = "c"; read = (fun () -> !counter) };
          {
            Experiments.Timeseries.name = "t";
            read = (fun () -> Net.Network.now net);
          };
        ]
  in
  ignore
    (Sim.Scheduler.schedule_at (Net.Network.scheduler net) 1.2 (fun () ->
         counter := 7.0));
  Net.Network.run_until net 3.0;
  (* Samples at 0.5, 1.0, ..., 3.0. *)
  Alcotest.(check int) "six samples" 6 (Experiments.Timeseries.length ts);
  Alcotest.(check (list string)) "names" [ "c"; "t" ]
    (Experiments.Timeseries.names ts);
  let c = Experiments.Timeseries.column ts "c" in
  Alcotest.(check (float 1e-9)) "before change" 0.0 c.(1);
  Alcotest.(check (float 1e-9)) "after change" 7.0 c.(2);
  Alcotest.(check (float 1e-9)) "value_at" 0.0
    (Experiments.Timeseries.value_at ts "c" ~time:1.1);
  Alcotest.(check (float 1e-9)) "value_at later" 7.0
    (Experiments.Timeseries.value_at ts "c" ~time:2.9)

let test_timeseries_csv () =
  let net = Net.Network.create ~seed:1 () in
  let ts =
    Experiments.Timeseries.create ~net ~interval:1.0
      ~probes:[ { Experiments.Timeseries.name = "x"; read = (fun () -> 1.5) } ]
  in
  Net.Network.run_until net 2.0;
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.Timeseries.to_csv ppf ts;
  Format.pp_print_flush ppf ();
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "time,x" (List.hd lines)

let test_timeseries_validation () =
  let net = Net.Network.create ~seed:1 () in
  Alcotest.(check bool) "no probes rejected" true
    (try
       ignore (Experiments.Timeseries.create ~net ~interval:1.0 ~probes:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad interval rejected" true
    (try
       ignore
         (Experiments.Timeseries.create ~net ~interval:0.0
            ~probes:[ { Experiments.Timeseries.name = "x"; read = (fun () -> 0.0) } ]);
       false
     with Invalid_argument _ -> true)

let test_ecn_experiment_rows () =
  let rows = Experiments.Ecn.run ~duration:60.0 () in
  match rows with
  | [ { Experiments.Ecn.ecn = false; _ }; { Experiments.Ecn.ecn = true; result } ] ->
      Alcotest.(check bool) "measured something" true
        (result.Experiments.Sharing.rla.Rla.Sender.send_rate > 0.0)
  | _ -> Alcotest.fail "expected [off; on]"

let test_runner_warmup_guard () =
  Alcotest.(check bool) "sharing rejects duration <= warmup" true
    (try
       ignore
         (Experiments.Sharing.run
            {
              (Experiments.Sharing.default_config
                 ~gateway:Experiments.Scenario.Droptail
                 ~case:Experiments.Tree.L4_all)
              with
              Experiments.Sharing.duration = 50.0;
              warmup = 100.0;
            });
       false
     with Invalid_argument _ -> true)

let test_report_printers_do_not_crash () =
  let r = Experiments.Sharing.run (short_sharing_config Experiments.Tree.L4_all) in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.Report.print_sharing_table ppf ~title:"test" [ r ];
  Experiments.Report.print_signal_table ppf [ r ];
  let field =
    Analysis.Particle.drift_field
      (Analysis.Particle.uniform_pipes ~pipe:10.0 ~n:3)
      ~x_max:10.0 ~y_max:10.0 ~step:2.0
  in
  Experiments.Report.print_drift_field ppf field;
  let stats =
    Analysis.Particle.simulate ~rng:(Sim.Rng.create 1)
      (Analysis.Particle.uniform_pipes ~pipe:10.0 ~n:3)
      ~steps:1000 ()
  in
  Experiments.Report.print_particle_run ppf stats;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "produced output" true (Buffer.length buf > 500)

let () =
  Alcotest.run "experiments"
    [
      ( "scenario",
        [
          Alcotest.test_case "gateway names" `Quick test_scenario_gateway_names;
          Alcotest.test_case "link config" `Quick test_scenario_link_config;
          Alcotest.test_case "jitter override" `Quick test_scenario_jitter_override;
        ] );
      ( "tree",
        [
          Alcotest.test_case "case mapping" `Quick test_tree_case_mapping;
          Alcotest.test_case "structure" `Quick test_tree_structure;
          Alcotest.test_case "equal path lengths" `Quick test_tree_paths_equal_length;
          Alcotest.test_case "case 1 capacity" `Quick test_tree_case1_capacity;
          Alcotest.test_case "case 3 capacity" `Quick test_tree_case3_capacity;
          Alcotest.test_case "case 4 partial" `Quick test_tree_case4_partial;
          Alcotest.test_case "case 5 subtree" `Quick test_tree_case5_subtree;
          Alcotest.test_case "g3 receivers" `Quick test_tree_g3_receivers;
        ] );
      ( "harness",
        [
          Alcotest.test_case "sharing structure" `Slow test_sharing_run_structure;
          Alcotest.test_case "case 4 groups" `Slow test_sharing_case4_groups;
          Alcotest.test_case "multi session" `Slow test_multi_session_structure;
          Alcotest.test_case "diff rtt" `Slow test_diff_rtt_structure;
          Alcotest.test_case "diff rtt bad case" `Quick test_diff_rtt_bad_case;
          Alcotest.test_case "validation" `Slow test_validation_run;
          Alcotest.test_case "baseline" `Slow test_baseline_run;
          Alcotest.test_case "ablation variants" `Quick test_ablation_variant_lists;
          Alcotest.test_case "buffer dynamics" `Slow test_buffer_dynamics_run;
          Alcotest.test_case "buffer dynamics guard" `Quick
            test_buffer_dynamics_needs_flows;
          Alcotest.test_case "scaling" `Slow test_scaling_run;
          Alcotest.test_case "short flows" `Slow test_short_flows_run;
          Alcotest.test_case "short flows cbr starvation" `Slow
            test_short_flows_cbr_starves;
          Alcotest.test_case "timeseries sampling" `Quick test_timeseries_sampling;
          Alcotest.test_case "timeseries csv" `Quick test_timeseries_csv;
          Alcotest.test_case "timeseries validation" `Quick
            test_timeseries_validation;
          Alcotest.test_case "ecn rows" `Slow test_ecn_experiment_rows;
          Alcotest.test_case "warmup guard" `Quick test_runner_warmup_guard;
          Alcotest.test_case "report printers" `Slow test_report_printers_do_not_crash;
        ] );
    ]
