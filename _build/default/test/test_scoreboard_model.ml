(* Model-based testing of the SACK scoreboard.

   A deliberately naive reference model — plain sets of sequence
   numbers, no incremental counters — replays the same operation
   sequences as the real scoreboard; every observable (high_ack, pipe,
   sacked/lost flags, retransmission choice, loss detection) must
   agree.  This catches bookkeeping drift that unit tests of individual
   operations cannot. *)

module Model = struct
  type t = {
    mutable high_ack : int;
    mutable next_seq : int;
    mutable sacked : int list;
    mutable lost : int list;
    mutable rexmitted : int list;
    mutable highest_sacked : int;
    mutable loss_floor : int;
  }

  let create () =
    {
      high_ack = 0;
      next_seq = 0;
      sacked = [];
      lost = [];
      rexmitted = [];
      highest_sacked = -1;
      loss_floor = 0;
    }

  let mem x l = List.mem x l

  let register_send t =
    let s = t.next_seq in
    t.next_seq <- s + 1;
    s

  let sack_one t seq =
    if seq >= t.high_ack && seq < t.next_seq && not (mem seq t.sacked) then begin
      t.sacked <- seq :: t.sacked;
      t.lost <- List.filter (fun s -> s <> seq) t.lost;
      t.rexmitted <- List.filter (fun s -> s <> seq) t.rexmitted;
      if seq > t.highest_sacked then t.highest_sacked <- seq
    end

  let mark_sacked t ~lo ~hi =
    for seq = lo to hi - 1 do
      sack_one t seq
    done

  let advance_cum t ack =
    let ack = Stdlib.min ack t.next_seq in
    if ack > t.high_ack then begin
      let keep l = List.filter (fun s -> s >= ack) l in
      t.sacked <- keep t.sacked;
      t.lost <- keep t.lost;
      t.rexmitted <- keep t.rexmitted;
      t.high_ack <- ack;
      if t.loss_floor < ack then t.loss_floor <- ack
    end

  let detect_losses t ~dupthresh =
    let upper = t.highest_sacked - dupthresh in
    let fresh = ref [] in
    if upper >= t.loss_floor then begin
      for seq = t.loss_floor to upper do
        if
          seq >= t.high_ack
          && (not (mem seq t.sacked))
          && not (mem seq t.lost)
        then begin
          t.lost <- seq :: t.lost;
          fresh := seq :: !fresh
        end
      done;
      t.loss_floor <- upper + 1
    end;
    List.rev !fresh

  let next_retransmit t =
    let candidates =
      List.filter (fun s -> not (mem s t.rexmitted)) t.lost
    in
    match List.sort compare candidates with [] -> None | s :: _ -> Some s

  let mark_retransmitted t seq = t.rexmitted <- seq :: t.rexmitted

  let mark_all_lost t =
    t.rexmitted <- [];
    for seq = t.high_ack to t.next_seq - 1 do
      if (not (mem seq t.sacked)) && not (mem seq t.lost) then
        t.lost <- seq :: t.lost
    done

  let pipe t =
    (* In flight = sent, not cum-acked, not sacked, not lost; plus
       retransmissions still outstanding. *)
    let flight = ref 0 in
    for seq = t.high_ack to t.next_seq - 1 do
      if (not (mem seq t.sacked)) && not (mem seq t.lost) then incr flight
    done;
    !flight + List.length t.rexmitted
end

type op =
  | Send
  | Cum of int  (* advance within the current window, parameterised *)
  | Sack of int * int  (* offset, length *)
  | Detect
  | Rexmit
  | All_lost

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, return Send);
        (2, map (fun k -> Cum k) (int_bound 10));
        (3, map2 (fun o l -> Sack (o, 1 + l)) (int_bound 20) (int_bound 4));
        (2, return Detect);
        (2, return Rexmit);
        (1, return All_lost);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops))
    QCheck.Gen.(list_size (1 -- 300) op_gen)

let agree sb model =
  Tcp.Scoreboard.check_invariants sb;
  let ok = ref true in
  let check name a b =
    if a <> b then begin
      ok := false;
      QCheck.Test.fail_reportf "%s: real %d, model %d" name a b
    end
  in
  check "high_ack" (Tcp.Scoreboard.high_ack sb) model.Model.high_ack;
  check "next_seq" (Tcp.Scoreboard.next_seq sb) model.Model.next_seq;
  check "pipe" (Tcp.Scoreboard.pipe sb) (Model.pipe model);
  check "highest_sacked" (Tcp.Scoreboard.highest_sacked sb)
    model.Model.highest_sacked;
  for seq = model.Model.high_ack to model.Model.next_seq - 1 do
    if Tcp.Scoreboard.is_sacked sb seq <> Model.mem seq model.Model.sacked then begin
      ok := false;
      QCheck.Test.fail_reportf "sacked flag mismatch at %d" seq
    end;
    if Tcp.Scoreboard.is_lost sb seq <> Model.mem seq model.Model.lost then begin
      ok := false;
      QCheck.Test.fail_reportf "lost flag mismatch at %d" seq
    end
  done;
  !ok

let apply_both sb model op =
  match op with
  | Send ->
      let a = Tcp.Scoreboard.register_send sb in
      let b = Model.register_send model in
      a = b
  | Cum k ->
      let target = Tcp.Scoreboard.high_ack sb + k in
      let a = Tcp.Scoreboard.advance_cum sb target in
      let before = model.Model.high_ack in
      Model.advance_cum model target;
      a = model.Model.high_ack - before
  | Sack (offset, len) ->
      let lo = Tcp.Scoreboard.high_ack sb + offset in
      let hi = lo + len in
      ignore (Tcp.Scoreboard.mark_sacked sb ~lo ~hi);
      Model.mark_sacked model ~lo ~hi;
      true
  | Detect ->
      let a = Tcp.Scoreboard.detect_losses sb ~dupthresh:3 in
      let b = Model.detect_losses model ~dupthresh:3 in
      a = b
  | Rexmit -> (
      let a = Tcp.Scoreboard.next_retransmit sb in
      let b = Model.next_retransmit model in
      match (a, b) with
      | None, None -> true
      | Some x, Some y when x = y ->
          Tcp.Scoreboard.mark_retransmitted sb x;
          Model.mark_retransmitted model x;
          true
      | _ -> false)
  | All_lost ->
      ignore (Tcp.Scoreboard.mark_all_lost sb);
      Model.mark_all_lost model;
      true

let prop_model_agreement =
  QCheck.Test.make ~name:"scoreboard agrees with reference model" ~count:300
    ops_arb (fun ops ->
      let sb = Tcp.Scoreboard.create () in
      let model = Model.create () in
      List.for_all
        (fun op -> apply_both sb model op && agree sb model)
        ops)

let prop_pipe_monotone_on_sack =
  QCheck.Test.make ~name:"sacking never increases pipe" ~count:200
    QCheck.(pair (int_bound 50) (int_bound 50))
    (fun (n, s) ->
      let sb = Tcp.Scoreboard.create () in
      for _ = 1 to n + 1 do
        ignore (Tcp.Scoreboard.register_send sb)
      done;
      let before = Tcp.Scoreboard.pipe sb in
      ignore (Tcp.Scoreboard.mark_sacked sb ~lo:(s mod (n + 1)) ~hi:((s mod (n + 1)) + 3));
      Tcp.Scoreboard.pipe sb <= before)

let prop_cum_clears_window =
  QCheck.Test.make ~name:"full cumulative ack empties the window" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 2))
    (fun noise ->
      let sb = Tcp.Scoreboard.create () in
      List.iter
        (fun x ->
          ignore (Tcp.Scoreboard.register_send sb);
          if x = 1 then
            ignore
              (Tcp.Scoreboard.mark_sacked sb
                 ~lo:(Tcp.Scoreboard.next_seq sb - 1)
                 ~hi:(Tcp.Scoreboard.next_seq sb));
          if x = 2 then ignore (Tcp.Scoreboard.detect_losses sb ~dupthresh:3))
        noise;
      ignore (Tcp.Scoreboard.advance_cum sb (Tcp.Scoreboard.next_seq sb));
      Tcp.Scoreboard.pipe sb = 0
      && Tcp.Scoreboard.in_flight_window sb = 0)

let () =
  Alcotest.run "scoreboard-model"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_model_agreement;
          QCheck_alcotest.to_alcotest prop_pipe_monotone_on_sack;
          QCheck_alcotest.to_alcotest prop_cum_clears_window;
        ] );
    ]
