(* The slow-receiver option (section 4.3).

   One of three mirrors sits behind a 20 pkt/s link while the others
   have 500 pkt/s; left alone, the session crawls at the slowest
   receiver's pace.  Section 4.3 observes that when a single bottleneck
   slows down everyone, "the RLA can implement an option to drop this
   slow receiver" — here we exercise exactly that and watch the session
   recover.

     dune exec examples/slow_receiver.exe *)

let () =
  let net = Net.Network.create ~seed:11 () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  let gateway = Experiments.Scenario.Droptail in
  ignore
    (Net.Network.duplex net s hub
       (Experiments.Scenario.fast_link_config ~gateway ~delay:0.005 ()));
  List.iteri
    (fun i leaf ->
      let mu = if i = 0 then 20.0 else 500.0 in
      ignore
        (Net.Network.duplex net hub leaf
           (Experiments.Scenario.link_config ~gateway ~mu_pkts:mu ~delay:0.02 ())))
    leaves;
  Net.Network.install_routes net;
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in

  (* Phase 1: the slow mirror caps everyone. *)
  Net.Network.run_until net 30.0;
  Rla.Sender.reset_measurement rla;
  Net.Network.run_until net 90.0;
  let before = Rla.Sender.snapshot rla in
  Printf.printf "with the slow mirror : %6.1f pkt/s to all receivers\n"
    before.Rla.Sender.throughput;

  (* Phase 2: drop it and measure again. *)
  let slow = List.hd leaves in
  assert (Rla.Sender.drop_receiver rla slow);
  Printf.printf "dropped receiver %d; %d remain active\n" slow
    (List.length (Rla.Sender.active_receivers rla));
  Rla.Sender.reset_measurement rla;
  Net.Network.run_until net 180.0;
  let after = Rla.Sender.snapshot rla in
  Printf.printf "without it           : %6.1f pkt/s to the remaining receivers\n"
    after.Rla.Sender.throughput;
  Printf.printf "speed-up             : %.1fx\n"
    (after.Rla.Sender.throughput /. Stdlib.max before.Rla.Sender.throughput 0.1)
