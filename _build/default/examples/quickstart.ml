(* Quickstart: the smallest complete RLA setup.

   Build a two-branch star, run one RLA multicast session against one
   background TCP per branch, and check essential fairness.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the network: sender S, a gateway, two receivers.  Each
     branch bottleneck is 200 pkt/s, shared by the multicast session
     and one TCP, so the fair share is 100 pkt/s. *)
  let net = Net.Network.create ~seed:42 () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let gw = Net.Node.id (Net.Network.add_node net) in
  let r1 = Net.Node.id (Net.Network.add_node net) in
  let r2 = Net.Node.id (Net.Network.add_node net) in
  let gateway = Experiments.Scenario.Droptail in
  ignore
    (Net.Network.duplex net s gw
       (Experiments.Scenario.fast_link_config ~gateway ~delay:0.005 ()));
  List.iter
    (fun r ->
      ignore
        (Net.Network.duplex net gw r
           (Experiments.Scenario.link_config ~gateway ~mu_pkts:200.0
              ~delay:0.05 ())))
    [ r1; r2 ];
  Net.Network.install_routes net;

  (* 2. Attach the transports: one RLA session to both receivers, one
     TCP SACK flow per receiver. *)
  let rla = Rla.Sender.create ~net ~src:s ~receivers:[ r1; r2 ] () in
  let tcps = List.map (fun r -> Tcp.Sender.create ~net ~src:s ~dst:r ()) [ r1; r2 ] in

  (* 3. Run: discard a 50 s warm-up, measure for 250 s. *)
  Net.Network.run_until net 50.0;
  Rla.Sender.reset_measurement rla;
  List.iter Tcp.Sender.reset_measurement tcps;
  Net.Network.run_until net 300.0;

  (* 4. Report. *)
  let snap = Rla.Sender.snapshot rla in
  Printf.printf "RLA : %6.1f pkt/s  (avg window %.1f, %d congestion signals, %d cuts)\n"
    snap.Rla.Sender.send_rate snap.Rla.Sender.cwnd_avg
    snap.Rla.Sender.congestion_signals snap.Rla.Sender.window_cuts;
  let worst_tcp =
    List.fold_left
      (fun acc tcp ->
        Stdlib.min acc (Tcp.Sender.snapshot tcp).Tcp.Sender.send_rate)
      infinity tcps
  in
  Printf.printf "TCP : %6.1f pkt/s on the most congested branch\n" worst_tcp;
  let n = 2 in
  let a, b =
    Rla.Fairness.essential_bounds Rla.Fairness.Droptail ~n
  in
  let ratio =
    Rla.Fairness.measured_ratio ~rla_throughput:snap.Rla.Sender.send_rate
      ~tcp_throughput:worst_tcp
  in
  Printf.printf "ratio %.2f, essential-fairness bounds (a=%.2f, b=%.2f): %s\n"
    ratio a b
    (if ratio > a && ratio < b then "essentially fair" else "NOT fair")
