(* Bulk distribution to 27 sites over the paper's tertiary tree.

   A software vendor pushes nightly updates from one origin (the tree
   root) to 27 mirrors (the leaves) while every mirror also runs an
   ordinary TCP download.  We reproduce case 3 of figure 7 — every leaf
   link is a bottleneck, losses are independent across branches — and
   check the essential-fairness verdict.

     dune exec examples/tree_sharing.exe *)

let () =
  let case_index = 3 in
  let result =
    Experiments.Sharing.run_case ~gateway:Experiments.Scenario.Droptail
      ~case_index ~duration:250.0 ()
  in
  Experiments.Report.print_sharing_table Format.std_formatter
    ~title:
      (Printf.sprintf "Nightly-update scenario (figure 7, case %d)" case_index)
    [ result ];
  let a, b = result.Experiments.Sharing.bounds in
  Printf.printf
    "\nThe multicast update stream got %.2fx the slowest mirror's TCP \
     throughput;\nthe paper's drop-tail bounds allow anything in (%.2f, %.2f).\n"
    result.Experiments.Sharing.ratio a b;
  Printf.printf "Congestion signals per mirror: worst %d, best %d, average %.0f\n"
    result.Experiments.Sharing.rla_signals_congested.Experiments.Sharing.worst
    result.Experiments.Sharing.rla_signals_congested.Experiments.Sharing.best
    result.Experiments.Sharing.rla_signals_congested.Experiments.Sharing.average
