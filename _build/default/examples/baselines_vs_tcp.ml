(* Why window-based?  Rate-based schemes vs TCP through one bottleneck.

   The paper's introduction argues that rate-based multicast control
   with evenly spaced packets sees a different loss process than TCP's
   bursts at a drop-tail queue, so threshold-tuned schemes (LTRC, MBFC)
   end up unfair — sometimes starved, sometimes dominant — while the
   TCP-like RLA tracks the fair share, and RED narrows the gap for
   everyone.

     dune exec examples/baselines_vs_tcp.exe *)

let () =
  let results = Experiments.Baseline_fairness.run_matrix ~duration:250.0 () in
  Experiments.Report.print_baseline_matrix Format.std_formatter results;
  print_endline
    "A ratio near 1.0 is fair; LTRC/MBFC drift far from it under \
     drop-tail, the RLA stays bounded."
