(* Heterogeneous receivers: the generalized RLA (section 5.3).

   Nine regional gateways (G31..G39, 15 ms from the origin) and 27
   distant leaves (115 ms) all join the same session.  The generalized
   RLA scales the cut probability by (srtt_i/srtt_max)^2 so that the
   nearby receivers' congestion signals are mostly ignored — without
   that, close receivers would drag the window down for everyone.

     dune exec examples/different_rtt.exe *)

let () =
  let run ~label ~params =
    let config = Experiments.Diff_rtt.default_config ~case_index:2 in
    let result =
      Experiments.Diff_rtt.run
        {
          config with
          Experiments.Diff_rtt.duration = 250.0;
          rla_params = params;
        }
    in
    Printf.printf "%-24s RLA %7.1f pkt/s (cwnd %5.1f)   WTCP %7.1f   ratio %5.2f\n"
      label result.Experiments.Diff_rtt.rla.Rla.Sender.throughput
      result.Experiments.Diff_rtt.rla.Rla.Sender.cwnd_avg
      result.Experiments.Diff_rtt.wtcp.Tcp.Sender.throughput
      result.Experiments.Diff_rtt.ratio
  in
  print_endline "36 receivers, bottlenecks on the nine level-3 links:";
  run ~label:"restricted RLA (k absent)" ~params:Rla.Params.default;
  run ~label:"generalized RLA (k = 2)"
    ~params:(Rla.Params.generalized Rla.Params.default);
  run ~label:"generalized RLA (k = 1)"
    ~params:(Rla.Params.generalized ~k:1.0 Rla.Params.default)
