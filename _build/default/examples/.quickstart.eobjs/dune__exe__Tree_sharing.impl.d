examples/tree_sharing.ml: Experiments Format Printf
