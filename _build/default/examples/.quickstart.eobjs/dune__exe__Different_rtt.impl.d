examples/different_rtt.ml: Experiments Printf Rla Tcp
