examples/multi_session_demo.mli:
