examples/baselines_vs_tcp.ml: Experiments Format
