examples/different_rtt.mli:
