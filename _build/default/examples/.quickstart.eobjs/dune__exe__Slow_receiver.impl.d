examples/slow_receiver.ml: Experiments List Net Printf Rla Stdlib
