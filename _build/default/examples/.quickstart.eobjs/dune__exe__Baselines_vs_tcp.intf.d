examples/baselines_vs_tcp.mli:
