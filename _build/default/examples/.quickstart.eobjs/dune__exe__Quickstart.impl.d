examples/quickstart.ml: Experiments List Net Printf Rla Stdlib Tcp
