examples/slow_receiver.mli:
