examples/quickstart.mli:
