examples/multi_session_demo.ml: Experiments Format Printf
