(* Two live-event feeds sharing one distribution tree (section 5.2).

   Two independent RLA sessions stream from the same origin to the same
   27 receivers; the multicast-fairness property says they should split
   the bandwidth evenly, with the background TCPs still protected.

     dune exec examples/multi_session_demo.exe *)

let () =
  let config =
    Experiments.Multi_session.default_config
      ~gateway:Experiments.Scenario.Droptail
  in
  let result =
    Experiments.Multi_session.run
      { config with Experiments.Multi_session.duration = 250.0 }
  in
  Experiments.Report.print_multi_session Format.std_formatter result;
  let r = result.Experiments.Multi_session.throughput_ratio in
  if r > 0.8 && r < 1.25 then
    print_endline "The two sessions share the tree essentially equally."
  else
    Printf.printf
      "Warning: session throughputs diverged (ratio %.2f) — try a longer run.\n"
      r
