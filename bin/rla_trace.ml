(* rla_trace — per-flow time-series traces of a tree-sharing run.

   Two scenarios:

   - [sharing] (default): run the paper's main experiment with a
     metrics registry installed and dump figure-7/8/9-style per-flow
     window and goodput series, one CSV row per stored sample:

       time,flow,cwnd,bytes_acked

     Flows are the RLA session ("rla.flow0") and the 27 background
     TCPs ("tcp.flow1".."tcp.flow27"); rows are grouped by flow,
     time-ascending.  The same seed yields byte-identical output for
     any [--jobs] value.

       dune exec bin/rla_trace.exe -- --scenario sharing \
         --gateway droptail --csv out.csv

   - [probes]: the legacy fixed-interval sampler (RLA window, one TCP
     window, bottleneck queue length) printed to stdout. *)

open Cmdliner

type scenario = Sharing | Probes

let with_csv_sink path f =
  match path with
  | "-" ->
      f Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ()
  | path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          f ppf;
          Format.pp_print_flush ppf ())

(* "default" selects the built-in churn script; anything else must
   parse as a Faults.Timeline spec string. *)
let faults_spec = function
  | None -> None
  | Some "default" -> Some Experiments.Churn.Default_script
  | Some spec -> (
      match Faults.Timeline.of_spec spec with
      | Ok t -> Some (Experiments.Churn.Scripted t)
      | Error err ->
          Format.eprintf "rla_trace: bad --faults spec: %s@.(grammar: %s)@."
            (Faults.Timeline.parse_error_to_string err)
            Faults.Timeline.spec_grammar;
          Stdlib.exit 2)

let dump_outputs ~csv ~json registry =
  with_csv_sink csv (fun ppf -> Runner.Report.flow_series_csv ppf registry);
  match json with
  | None -> ()
  | Some path ->
      Runner.Report.write_file ~path (Runner.Report.registry_json registry)

let summarize ~label registry result =
  let a, b = result.Experiments.Sharing.bounds in
  Format.eprintf
    "%s: ratio %.2f, bounds (%.2f, %.2f), %s; %d series in registry@." label
    result.Experiments.Sharing.ratio a b
    (if result.Experiments.Sharing.essentially_fair then "essentially fair"
     else "NOT essentially fair")
    (List.length (Obs.Registry.all_series registry))

let run_sharing ~case_index ~gateway ~duration ~warmup ~seed ~jobs ~csv ~json
    ~faults ~ckpt =
  let config =
    let base =
      Experiments.Sharing.default_config ~gateway
        ~case:(Experiments.Tree.case_of_index case_index)
    in
    { base with Experiments.Sharing.duration; warmup; seed }
  in
  let label = Printf.sprintf "trace/case%d/seed%d" case_index seed in
  match faults_spec faults with
  | None -> (
      match ckpt with
      | Some (every, dir) ->
          (* Checkpointing bypasses the domain pool: the checkpointed
             run is sliced in-process (still byte-identical to the
             pooled run — slicing is passive).  The event journal lands
             next to the checkpoints for [rla_ckpt diff]. *)
          let registry = Obs.Registry.create () in
          let journal = Ckpt.Journal.create () in
          let prefix = Printf.sprintf "case%d_seed%d" case_index seed in
          let result =
            Ckpt.Sharing_ckpt.run_with_checkpoints ~registry ~journal ~every
              ~dir ~prefix config
          in
          Ckpt.Journal.save journal
            ~path:(Filename.concat dir (prefix ^ ".journal"));
          dump_outputs ~csv ~json registry;
          summarize ~label registry result
      | None ->
          let job =
            Runner.Job.create ~label (fun () ->
                let registry = Obs.Registry.create () in
                let net, result =
                  Experiments.Sharing.run_with_net ~registry config
                in
                (net, (registry, result)))
          in
          let outcomes = Runner.Pool.run ~jobs [ job ] in
          let registry, result = (List.hd outcomes).Runner.Pool.value in
          dump_outputs ~csv ~json registry;
          summarize ~label registry result)
  | Some faults when ckpt <> None ->
      ignore faults;
      Format.eprintf
        "rla_trace: --faults and checkpointing cannot be combined (the churn \
         driver owns flow state outside the checkpoint)@.";
      Stdlib.exit 2
  | Some faults ->
      (* Same CSV/JSON surfaces, but the run goes through the churn
         scenario: the fault timeline perturbs it and the per-epoch
         fairness table lands on stderr. *)
      let config = { Experiments.Churn.sharing = config; faults } in
      let job =
        Runner.Job.create ~label (fun () ->
            let registry = Obs.Registry.create () in
            let net, result =
              Experiments.Churn.run_with_net ~registry config
            in
            (net, (registry, result)))
      in
      let outcomes = Runner.Pool.run ~jobs [ job ] in
      let registry, result = (List.hd outcomes).Runner.Pool.value in
      dump_outputs ~csv ~json registry;
      Experiments.Churn.print Format.err_formatter result

let run_restore ~path ~ckpt ~csv ~json =
  match Ckpt.Sharing_ckpt.load ~path with
  | Error e ->
      Format.eprintf "rla_trace: cannot restore %s: %s@." path
        (Ckpt.Sharing_ckpt.error_to_string e);
      Stdlib.exit 1
  | Ok loaded -> (
      let result =
        match ckpt with
        | None -> Ckpt.Sharing_ckpt.resume_run loaded
        | Some (every, dir) -> Ckpt.Sharing_ckpt.resume_run ~every ~dir loaded
      in
      match loaded.Ckpt.Sharing_ckpt.registry with
      | None ->
          Format.eprintf
            "rla_trace: %s carries no registry section — the original run \
             was not traced (re-run it under rla_trace --checkpoint-every)@."
            path;
          Stdlib.exit 1
      | Some registry ->
          (* The restored registry holds the complete history, so the
             re-dumped CSV/JSON equal the uninterrupted run's output
             byte for byte. *)
          dump_outputs ~csv ~json registry;
          (match (loaded.Ckpt.Sharing_ckpt.journal, ckpt) with
          | Some journal, Some (_, dir) ->
              Ckpt.Journal.save journal
                ~path:(Filename.concat dir "resume.journal")
          | _ -> ());
          summarize ~label:(Printf.sprintf "restore/%s" path) registry result)

let run_probes ~case_index ~gateway ~duration ~seed ~interval ~csv =
  let case = Experiments.Tree.case_of_index case_index in
  let tree = Experiments.Tree.build ~seed ~gateway ~case () in
  let net = tree.Experiments.Tree.net in
  let leaves = Array.to_list tree.Experiments.Tree.leaves in
  let rla =
    Rla.Sender.create ~net ~src:tree.Experiments.Tree.root ~receivers:leaves ()
  in
  let tcps =
    List.map
      (fun leaf -> Tcp.Sender.create ~net ~src:tree.Experiments.Tree.root ~dst:leaf ())
      leaves
  in
  let first_congested = List.hd tree.Experiments.Tree.congested_leaves in
  let first_tcp =
    (* The TCP sharing the first congested branch. *)
    List.nth tcps
      (Option.get
         (List.find_index (fun leaf -> leaf = first_congested) leaves))
  in
  (* The queue feeding the first congested branch: the last link on the
     path to that receiver. *)
  let bottleneck_queue =
    match
      List.rev (Net.Network.path net tree.Experiments.Tree.root first_congested)
    with
    | last :: _ -> last
    | [] -> invalid_arg "rla_trace: no path to the congested receiver"
  in
  let ts =
    Experiments.Timeseries.create ~net ~interval
      ~probes:
        [
          { Experiments.Timeseries.name = "rla_cwnd";
            read = (fun () -> Rla.Sender.cwnd rla) };
          { Experiments.Timeseries.name = "tcp_cwnd";
            read = (fun () -> Tcp.Sender.cwnd first_tcp) };
          { Experiments.Timeseries.name = "queue";
            read = (fun () -> float_of_int (Net.Link.qlen bottleneck_queue)) };
          { Experiments.Timeseries.name = "rla_delivered";
            read = (fun () -> float_of_int (Rla.Sender.max_reach_all rla)) };
        ]
  in
  Net.Network.run_until net duration;
  with_csv_sink csv (fun ppf -> Experiments.Timeseries.to_csv ppf ts)

let run scenario ~case_index ~gateway ~duration ~warmup ~seed ~interval ~jobs
    ~csv ~json ~faults ~ckpt ~restore =
  match restore with
  | Some path ->
      if faults <> None then (
        Format.eprintf "rla_trace: --restore and --faults cannot be combined@.";
        Stdlib.exit 2);
      run_restore ~path ~ckpt ~csv ~json
  | None -> (
      match scenario with
      | Sharing ->
          run_sharing ~case_index ~gateway ~duration ~warmup ~seed ~jobs ~csv
            ~json ~faults ~ckpt
      | Probes ->
          if faults <> None then (
            Format.eprintf "rla_trace: --faults requires --scenario sharing@.";
            Stdlib.exit 2);
          if ckpt <> None then (
            Format.eprintf
              "rla_trace: checkpointing requires --scenario sharing@.";
            Stdlib.exit 2);
          run_probes ~case_index ~gateway ~duration ~seed ~interval ~csv)

let scenario_arg =
  let doc =
    "Trace scenario: $(b,sharing) (per-flow registry series) or \
     $(b,probes) (legacy fixed-interval sampler)."
  in
  Arg.(
    value
    & opt (enum [ ("sharing", Sharing); ("probes", Probes) ]) Sharing
    & info [ "scenario" ] ~docv:"SCENARIO" ~doc)

let case_arg =
  let doc = "Bottleneck case (1-5, figure 7 numbering)." in
  Arg.(value & opt int 3 & info [ "case"; "c" ] ~docv:"CASE" ~doc)

let gateway_arg =
  let doc = "Gateway type: droptail or red." in
  let gateways =
    [
      ("droptail", Experiments.Scenario.Droptail);
      ("drop-tail", Experiments.Scenario.Droptail);
      ("red", Experiments.Scenario.Red);
    ]
  in
  Arg.(
    value
    & opt (enum gateways) Experiments.Scenario.Droptail
    & info [ "gateway"; "g" ] ~docv:"GATEWAY" ~doc)

let duration_arg =
  let doc = "Simulated seconds." in
  Arg.(value & opt float 150.0 & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)

let warmup_arg =
  let doc = "Warm-up seconds discarded from fairness counters (sharing)." in
  Arg.(value & opt float 50.0 & info [ "warmup"; "w" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let interval_arg =
  let doc = "Sampling interval (seconds, probes scenario only)." in
  Arg.(value & opt float 0.1 & info [ "interval"; "i" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Domain-pool size the trace job runs on; output is byte-identical \
     for any value."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "CSV output path ($(b,-) for stdout)." in
  Arg.(value & opt string "-" & info [ "csv" ] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Also dump the full metrics registry as JSON (sharing)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let faults_arg =
  let doc =
    "Inject a fault timeline into the sharing run ($(b,default) for the \
     built-in churn script, or a ';'-separated spec: TIME:down:A-B, \
     TIME:up:A-B, TIME:bw:A-B:BPS, TIME:delay:A-B:SECS, TIME:leave:ADDR, \
     TIME:join:ADDR, TIME:tcpstart:ID:DST, TIME:tcpstop:ID).  The \
     per-epoch fairness table is printed to stderr; CSV/JSON outputs \
     are unchanged in shape."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let ckpt_every_arg =
  let doc =
    "Write a checkpoint every $(docv) simulated seconds (sharing scenario, \
     no --faults).  Requires --checkpoint-dir.  The event journal is saved \
     alongside the checkpoints for $(b,rla_ckpt diff)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "checkpoint-every" ] ~docv:"SECONDS" ~doc)

let ckpt_dir_arg =
  let doc = "Directory for checkpoint files (created if missing)." in
  Arg.(
    value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let restore_arg =
  let doc =
    "Resume a checkpointed traced run from $(docv), run it to completion and \
     re-dump the full CSV/JSON from the restored registry (byte-identical to \
     the uninterrupted run's output)."
  in
  Arg.(value & opt (some string) None & info [ "restore" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "Dump per-flow cwnd/throughput time series of a tree-sharing run" in
  let term =
    Term.(
      const (fun scenario case_index gateway duration warmup seed interval jobs
                 csv json faults ckpt_every ckpt_dir restore ->
          let ckpt =
            match (ckpt_every, ckpt_dir) with
            | Some every, Some dir ->
                if not (every > 0.0) then (
                  Format.eprintf
                    "rla_trace: --checkpoint-every must be positive@.";
                  Stdlib.exit 2);
                Some (every, dir)
            | Some _, None | None, Some _ ->
                Format.eprintf
                  "rla_trace: --checkpoint-every and --checkpoint-dir go \
                   together@.";
                Stdlib.exit 2
            | None, None -> None
          in
          run scenario ~case_index ~gateway ~duration ~warmup ~seed ~interval
            ~jobs ~csv ~json ~faults ~ckpt ~restore)
      $ scenario_arg $ case_arg $ gateway_arg $ duration_arg $ warmup_arg
      $ seed_arg $ interval_arg $ jobs_arg $ csv_arg $ json_arg $ faults_arg
      $ ckpt_every_arg $ ckpt_dir_arg $ restore_arg)
  in
  Cmd.v (Cmd.info "rla_trace" ~doc) term

let () = exit (Cmd.eval cmd)
