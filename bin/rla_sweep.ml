(* lint: allow-file wall-clock -- CLI main: wall_s in the report is a
   host-side metric; simulation time still comes from Sim.Scheduler *)
(* Multicore sweep driver for the paper's sharing experiment
   (figures 7/9): cases x seeds on a fixed-size domain pool.

     rla_sweep --cases 1,2,3,4,5 --seeds 3 --gateway droptail --jobs 4
     rla_sweep --cases 1,2 --duration 120 --warmup 40 --json sweep.json

   Per-run results are bit-identical for any --jobs value (each run
   builds its own network and RNG streams from its seed); only the
   wall clock changes.  The JSON report records per-job wall-clock,
   events-fired and allocation metrics alongside the fairness
   numbers. *)

let ppf = Format.std_formatter

let parse_cases s =
  let parse_one part =
    match int_of_string_opt (String.trim part) with
    | Some i when i >= 1 && i <= 5 -> i
    | _ ->
        raise
          (Invalid_argument
             (Printf.sprintf
                "--cases: %S is not a case index in 1..5 (expected e.g. \
                 \"1,2,3,4,5\")"
                part))
  in
  match String.split_on_char ',' s |> List.map parse_one with
  | [] -> raise (Invalid_argument "--cases: empty list")
  | cases -> cases

let payload (o : Experiments.Sharing.result Runner.Pool.outcome) =
  let r = o.Runner.Pool.value in
  let a, b = r.Experiments.Sharing.bounds in
  [
    ( "case",
      Runner.Json.String
        (Experiments.Tree.case_name r.Experiments.Sharing.config.Experiments.Sharing.case)
    );
    ("seed", Runner.Json.Int r.Experiments.Sharing.config.Experiments.Sharing.seed);
    ( "rla_send_rate",
      Runner.Json.Float r.Experiments.Sharing.rla.Rla.Sender.send_rate );
    ( "rla_goodput",
      Runner.Json.Float r.Experiments.Sharing.rla.Rla.Sender.throughput );
    ( "wtcp_send_rate",
      Runner.Json.Float r.Experiments.Sharing.wtcp.Tcp.Sender.send_rate );
    ( "btcp_send_rate",
      Runner.Json.Float r.Experiments.Sharing.btcp.Tcp.Sender.send_rate );
    ("ratio", Runner.Json.Float r.Experiments.Sharing.ratio);
    ("jain", Runner.Json.Float r.Experiments.Sharing.jain);
    ("bound_a", Runner.Json.Float a);
    ("bound_b", Runner.Json.Float b);
    ( "essentially_fair",
      Runner.Json.Bool r.Experiments.Sharing.essentially_fair );
  ]

let churn_payload (o : Experiments.Churn.result Runner.Pool.outcome) =
  match Experiments.Churn.to_json o.Runner.Pool.value with
  | Runner.Json.Obj fields -> fields
  | json -> [ ("churn", json) ]

let run_churn_sweep ~case_indices ~seed_list ~gateway ~jobs ~duration ~warmup
    ~json_path =
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Experiments.Churn.sweep ~gateway ~case_indices ~duration ~warmup
      ~seeds:seed_list ~jobs ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  List.iter
    (fun o -> Experiments.Churn.print ppf o.Runner.Pool.value)
    outcomes;
  Runner.Report.pp_metrics_table ppf outcomes;
  Format.fprintf ppf "total wall-clock: %.1f s@." wall_s;
  let json =
    Runner.Report.sweep_json ~name:"rla_sweep_churn" ~jobs ~wall_s
      ~extra:
        [
          ( "gateway",
            Runner.Json.String (Experiments.Scenario.gateway_name gateway) );
          ("duration_s", Runner.Json.Float duration);
          ("warmup_s", Runner.Json.Float warmup);
        ]
      churn_payload outcomes
  in
  Runner.Report.write_file ~path:json_path json;
  Format.fprintf ppf "wrote %s@." json_path

(* --- mean-field regime-map sweep ------------------------------------ *)

let mf_payload (o : Meanfield.Regime.classification Runner.Pool.outcome) =
  let c = o.Runner.Pool.value in
  [
    ("w_q", Runner.Json.Float c.Meanfield.Regime.point.Meanfield.Regime.w_q);
    ("max_p", Runner.Json.Float c.Meanfield.Regime.point.Meanfield.Regime.max_p);
    ("n", Runner.Json.Int c.Meanfield.Regime.point.Meanfield.Regime.n);
    ( "verdict",
      Runner.Json.String
        (Meanfield.Solver.verdict_to_string c.Meanfield.Regime.verdict) );
    ("amplitude", Runner.Json.Float c.Meanfield.Regime.amplitude);
    ( "period_s",
      match c.Meanfield.Regime.period with
      | Some p -> Runner.Json.Float p
      | None -> Runner.Json.Null );
    ("queue_mean", Runner.Json.Float c.Meanfield.Regime.queue_mean);
    ("drop_mean", Runner.Json.Float c.Meanfield.Regime.drop_mean);
    ("fairness_ratio", Runner.Json.Float c.Meanfield.Regime.fairness_ratio);
    ("criterion_stable", Runner.Json.Bool c.Meanfield.Regime.criterion_stable);
    ("tau_crit_s", Runner.Json.Float c.Meanfield.Regime.tau_crit);
    ("rtt_star_s", Runner.Json.Float c.Meanfield.Regime.rtt_star);
    ("agree", Runner.Json.Bool c.Meanfield.Regime.agree);
  ]

(* The ODE solver is deterministic and networkless, so the report is
   scrubbed down to simulation-derived numbers only (metrics zeroed,
   wall clock and the jobs field pinned): BENCH_meanfield.json is
   byte-identical for every --jobs value. *)
let run_meanfield_sweep ~jobs ~json_path =
  let grid = Meanfield.Regime.default_grid () in
  let mf_jobs =
    List.map
      (fun (pt : Meanfield.Regime.point) ->
        let label =
          Printf.sprintf "wq%g/mp%g/n%d" pt.Meanfield.Regime.w_q
            pt.Meanfield.Regime.max_p pt.Meanfield.Regime.n
        in
        Runner.Job.pure ~label (fun () -> Meanfield.Regime.classify pt))
      grid
  in
  let outcomes =
    Runner.Pool.run ~jobs mf_jobs
    |> List.map (fun o -> { o with Runner.Pool.metrics = Runner.Metrics.zero })
  in
  Format.fprintf ppf "Mean-field regime map — %d points@." (List.length outcomes);
  Format.fprintf ppf "%-22s %12s %9s %10s %9s %9s %6s@." "point" "verdict"
    "amp" "queue" "drop" "ratio" "agree";
  List.iter
    (fun (o : Meanfield.Regime.classification Runner.Pool.outcome) ->
      let c = o.Runner.Pool.value in
      Format.fprintf ppf "%-22s %12s %9.2f %10.1f %9.5f %9.3f %6s@."
        o.Runner.Pool.label
        (Meanfield.Solver.verdict_to_string c.Meanfield.Regime.verdict)
        c.Meanfield.Regime.amplitude c.Meanfield.Regime.queue_mean
        c.Meanfield.Regime.drop_mean c.Meanfield.Regime.fairness_ratio
        (if c.Meanfield.Regime.agree then "yes" else "NO"))
    outcomes;
  let agreed =
    List.length
      (List.filter
         (fun o -> o.Runner.Pool.value.Meanfield.Regime.agree)
         outcomes)
  in
  Format.fprintf ppf "criterion agrees with the integrated verdict on %d/%d@."
    agreed (List.length outcomes);
  let json =
    Runner.Report.sweep_json ~name:"rla_sweep_meanfield" ~jobs:0 ~wall_s:0.0
      ~extra:
        [
          ("share_pkts", Runner.Json.Float Meanfield.Regime.share);
          ("rtt_s", Runner.Json.Float Meanfield.Regime.rtt);
          ("agree", Runner.Json.Int agreed);
        ]
      mf_payload outcomes
  in
  Runner.Report.write_file ~path:json_path json;
  Format.fprintf ppf "wrote %s@." json_path

(* --- hostile adversary-mix sweep ------------------------------------ *)

let hostile_payload (o : Experiments.Hostile.result Runner.Pool.outcome) =
  match Experiments.Hostile.to_json o.Runner.Pool.value with
  | Runner.Json.Obj fields -> fields
  | json -> [ ("hostile", json) ]

(* Every adversary is deterministic (no RNG draws, scripted
   injections), so the report is scrubbed to simulation-derived
   numbers only — BENCH_hostile.json is byte-identical for every
   --jobs value, and the no-adversary row runs the exact Sharing
   pipeline. *)
let run_hostile_sweep ~seed_list ~jobs ~duration ~warmup ~json_path =
  let raw =
    Experiments.Hostile.sweep ~mixes:Experiments.Hostile.all_mixes
      ~case_index:3 ~duration ~warmup ~seeds:seed_list ~jobs ()
  in
  (* Trend rows: events-fired per *simulated* second — the event count
     is a property of the run, not the machine, so the doc stays
     byte-identical across --jobs (no cores key, no wall clock). *)
  let scenario_rows =
    List.map
      (fun (o : Experiments.Hostile.result Runner.Pool.outcome) ->
        Runner.Json.Obj
          [
            ("name", Runner.Json.String o.Runner.Pool.label);
            ( "events_per_s",
              Runner.Json.Float
                (float_of_int o.Runner.Pool.metrics.Runner.Metrics.events_fired
                /. duration) );
          ])
      raw
  in
  let outcomes =
    List.map
      (fun o -> { o with Runner.Pool.metrics = Runner.Metrics.zero })
      raw
  in
  Experiments.Hostile.print ppf
    (List.map (fun o -> o.Runner.Pool.value) outcomes);
  let json =
    Runner.Report.sweep_json ~name:"rla_sweep_hostile" ~jobs:0 ~wall_s:0.0
      ~extra:
        [
          ("duration_s", Runner.Json.Float duration);
          ("warmup_s", Runner.Json.Float warmup);
          ( "seed",
            Runner.Json.Int (match seed_list with s :: _ -> s | [] -> 1) );
          ("scenarios", Runner.Json.List scenario_rows);
        ]
      hostile_payload outcomes
  in
  Runner.Report.write_file ~path:json_path json;
  Format.fprintf ppf "wrote %s@." json_path

(* --- sharded-scaling sweep ------------------------------------------ *)

let parse_shards s =
  let parse_one part =
    match int_of_string_opt (String.trim part) with
    | Some i when i >= 1 -> i
    | _ ->
        raise
          (Invalid_argument
             (Printf.sprintf
                "--shards: %S is not a worker count >= 1 (expected e.g. \
                 \"1,2,4\")"
                part))
  in
  match String.split_on_char ',' s |> List.map parse_one with
  | [] -> raise (Invalid_argument "--shards: empty list")
  | shards -> shards

(* One sharded scale run per worker count, sequentially — the workers
   knob already owns the machine's domains, so pooling runs on top
   would only oversubscribe.  The fairness tables must be
   byte-identical across the whole list (fixed-shard determinism); the
   JSON mirrors bench/scale.exe's shape so `bench/trend.exe` can gate
   it. *)
let run_scale_sweep ~shards_list ~fanout ~depth ~duration ~warmup ~seed
    ~json_path =
  let config workers =
    {
      Experiments.Scaling.default_sharded_config with
      Experiments.Scaling.fanout;
      depth;
      workers;
      duration;
      warmup;
      seed;
    }
  in
  let runs =
    List.map
      (fun workers ->
        let t0 = Unix.gettimeofday () in
        match Experiments.Scaling.run_sharded (config workers) with
        | Error e -> raise (Invalid_argument (Par.Scenario.error_to_string e))
        | Ok r -> (workers, Unix.gettimeofday () -. t0, r))
      shards_list
  in
  (match runs with
  | [] -> ()
  | (_, _, first) :: rest ->
      if
        not
          (List.for_all
             (fun (_, _, r) ->
               String.equal first.Par.Scenario.fairness_table
                 r.Par.Scenario.fairness_table)
             rest)
      then
        raise
          (Invalid_argument
             "sharded results diverged across --shards — determinism bug"));
  (match runs with
  | (_, _, r) :: _ ->
      Format.fprintf ppf
        "@.Sharded scaling sweep — %d shards, %d receivers, lookahead %g s@."
        r.Par.Scenario.shards r.Par.Scenario.n_receivers
        r.Par.Scenario.lookahead
  | [] -> ());
  let base_wall = match runs with (_, w, _) :: _ -> w | [] -> 1.0 in
  Format.fprintf ppf "%8s %10s %12s %14s %8s@." "shards" "wall s" "events"
    "events/s" "speedup";
  List.iter
    (fun (workers, wall_s, (r : Par.Scenario.result)) ->
      Format.fprintf ppf "%8d %10.2f %12d %14.0f %8.2f@." workers wall_s
        r.Par.Scenario.events_fired
        (float_of_int r.Par.Scenario.events_fired /. wall_s)
        (base_wall /. wall_s))
    runs;
  Format.fprintf ppf "fairness tables byte-identical across %d shard count(s)@."
    (List.length runs);
  let rows =
    List.map
      (fun (workers, wall_s, (r : Par.Scenario.result)) ->
        Runner.Json.Obj
          [
            ( "name",
              Runner.Json.String
                (Printf.sprintf "kary%dx%d/shards%d" fanout depth workers) );
            ("workers", Runner.Json.Int workers);
            ("shards", Runner.Json.Int r.Par.Scenario.shards);
            ("receivers", Runner.Json.Int r.Par.Scenario.n_receivers);
            ("rounds", Runner.Json.Int r.Par.Scenario.rounds);
            ("lookahead_s", Runner.Json.Float r.Par.Scenario.lookahead);
            ("wall_s", Runner.Json.Float wall_s);
            ("events_fired", Runner.Json.Int r.Par.Scenario.events_fired);
            ( "events_per_s",
              Runner.Json.Float
                (float_of_int r.Par.Scenario.events_fired /. wall_s) );
            ("speedup", Runner.Json.Float (base_wall /. wall_s));
          ])
      runs
  in
  let json =
    Runner.Json.Obj
      [
        ("bench", Runner.Json.String "scale");
        ("duration_s", Runner.Json.Float duration);
        ("warmup_s", Runner.Json.Float warmup);
        ("seed", Runner.Json.Int seed);
        ("cores", Runner.Json.Int (Domain.recommended_domain_count ()));
        ("scenarios", Runner.Json.List rows);
      ]
  in
  Runner.Report.write_file ~path:json_path json;
  Format.fprintf ppf "wrote %s@." json_path

(* --- resumable plain sweep ------------------------------------------ *)

(* Finished rows are persisted to <json>.partial, one "label\tjson" line
   per job, flushed after every chunk.  A killed sweep restarted with
   --resume re-runs only the missing jobs and splices the saved rows
   back in job order, so the final report is identical to an
   uninterrupted sweep's (use --deterministic to also zero the
   wall-clock/allocation metrics, which no two executions share). *)

let state_path json_path = json_path ^ ".partial"

let load_state path =
  if not (Sys.file_exists path) then []
  else
    In_channel.with_open_text path (fun ic ->
        let rec go acc =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some "" -> go acc
          | Some line -> (
              match String.index_opt line '\t' with
              | Some i ->
                  let label = String.sub line 0 i in
                  let json =
                    String.sub line (i + 1) (String.length line - i - 1)
                  in
                  go ((label, json) :: acc)
              | None -> go acc)
        in
        go [])

let chunks n list =
  let rec go acc = function
    | [] -> List.rev acc
    | rest ->
        let took = min n (List.length rest) in
        go (List.filteri (fun i _ -> i < took) rest :: acc)
          (List.filteri (fun i _ -> i >= took) rest)
  in
  go [] list

let scrub_metrics ~deterministic (o : 'a Runner.Pool.outcome) =
  if deterministic then { o with Runner.Pool.metrics = Runner.Metrics.zero }
  else o

let run_plain_sweep ~case_indices ~seed_list ~gateway ~jobs ~duration ~warmup
    ~json_path ~resume ~halt_after ~deterministic =
  let specs =
    List.concat_map
      (fun case_index ->
        List.map
          (fun seed ->
            let label = Printf.sprintf "case%d/seed%d" case_index seed in
            let config =
              let base =
                Experiments.Sharing.default_config ~gateway
                  ~case:(Experiments.Tree.case_of_index case_index)
              in
              { base with Experiments.Sharing.duration; warmup; seed }
            in
            (label, config))
          seed_list)
      case_indices
  in
  let state = state_path json_path in
  let done_rows = if resume then load_state state else [] in
  if (not resume) && Sys.file_exists state then Sys.remove state;
  let is_done label = List.mem_assoc label done_rows in
  let todo = List.filter (fun (label, _) -> not (is_done label)) specs in
  if done_rows <> [] then
    Format.fprintf ppf "resuming: %d of %d job(s) already done@."
      (List.length done_rows) (List.length specs);
  let t0 = Unix.gettimeofday () in
  let halted = ref false in
  let completed = ref 0 in
  let fresh = ref [] in
  List.iter
    (fun chunk ->
      if not !halted then begin
        let outcomes =
          Runner.Pool.run ~jobs
            (List.map
               (fun (label, config) -> Experiments.Sharing.job ~label config)
               chunk)
        in
        let outcomes = List.map (scrub_metrics ~deterministic) outcomes in
        fresh := !fresh @ outcomes;
        let oc =
          open_out_gen [ Open_append; Open_creat ] 0o644 state
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun o ->
                Printf.fprintf oc "%s\t%s\n" o.Runner.Pool.label
                  (Runner.Json.to_string
                     (Runner.Report.run_row_json payload o)))
              outcomes);
        completed := !completed + List.length outcomes;
        match halt_after with
        | Some n when !completed >= n -> halted := true
        | _ -> ()
      end)
    (chunks (max 1 jobs) todo);
  let wall_s = if deterministic then 0.0 else Unix.gettimeofday () -. t0 in
  if !halted then
    Format.fprintf ppf
      "halted after %d job(s); %d of %d done — finish with --resume@."
      !completed
      (List.length done_rows + !completed)
      (List.length specs)
  else begin
    (* All rows exist now: saved ones plus this invocation's. *)
    let fresh_rows =
      List.map
        (fun o ->
          ( o.Runner.Pool.label,
            Runner.Json.to_string (Runner.Report.run_row_json payload o) ))
        !fresh
    in
    let all = done_rows @ fresh_rows in
    let rows =
      List.map
        (fun (label, _) ->
          match List.assoc_opt label all with
          | Some json -> Runner.Json.Verbatim json
          | None ->
              raise
                (Invalid_argument (Printf.sprintf "missing row for %s" label)))
        specs
    in
    if done_rows = [] then
      Experiments.Report.print_sharing_table ppf
        ~title:
          (Printf.sprintf "Sharing sweep — %s gateways, %.0f s runs, %d job(s)"
             (Experiments.Scenario.gateway_name gateway)
             duration jobs)
        (List.map (fun o -> o.Runner.Pool.value) !fresh)
    else
      Format.fprintf ppf
        "(table omitted on resume: %d row(s) reloaded from %s)@."
        (List.length done_rows) state;
    Format.fprintf ppf "@.";
    Runner.Report.pp_metrics_table ppf !fresh;
    Format.fprintf ppf "total wall-clock: %.1f s@." wall_s;
    let json =
      Runner.Report.sweep_json_of_rows ~name:"rla_sweep" ~jobs ~wall_s
        ~extra:
          [
            ( "gateway",
              Runner.Json.String (Experiments.Scenario.gateway_name gateway) );
            ("duration_s", Runner.Json.Float duration);
            ("warmup_s", Runner.Json.Float warmup);
          ]
        rows
    in
    Runner.Report.write_file ~path:json_path json;
    if Sys.file_exists state then Sys.remove state;
    Format.fprintf ppf "wrote %s@." json_path
  end

let run ~cases ~seeds ~seed ~gateway ~jobs ~duration ~warmup ~churn ~scale
    ~meanfield ~hostile ~shards ~fanout ~depth ~json_path ~resume ~halt_after
    ~deterministic =
  if duration <= 0.0 then raise (Invalid_argument "--duration: must be > 0");
  if warmup < 0.0 || warmup >= duration then
    raise (Invalid_argument "--warmup: must be in [0, duration)");
  if hostile then begin
    if churn || scale || meanfield || resume || halt_after <> None
       || deterministic
    then
      raise
        (Invalid_argument
           "--hostile combines only with --seeds/--seed/--jobs, \
            --duration/--warmup and --json (the report is always \
            deterministic)");
    if seeds < 1 then raise (Invalid_argument "--seeds: must be >= 1");
    if jobs < 1 then raise (Invalid_argument "--jobs: must be >= 1");
    let seed_list = List.init seeds (fun k -> seed + k) in
    let json_path = Option.value json_path ~default:"BENCH_hostile.json" in
    run_hostile_sweep ~seed_list ~jobs ~duration ~warmup ~json_path
  end
  else if meanfield then begin
    if churn || scale || resume || halt_after <> None || deterministic then
      raise
        (Invalid_argument
           "--meanfield combines only with --jobs and --json (the report \
            is always deterministic)");
    if jobs < 1 then raise (Invalid_argument "--jobs: must be >= 1");
    let json_path = Option.value json_path ~default:"BENCH_meanfield.json" in
    run_meanfield_sweep ~jobs ~json_path
  end
  else if scale then begin
    if churn || resume || halt_after <> None || deterministic then
      raise
        (Invalid_argument
           "--scale combines only with --shards/--fanout/--depth plus the \
            duration/warmup/seed/json options");
    if fanout < 2 then raise (Invalid_argument "--fanout: must be >= 2");
    if depth < 2 then raise (Invalid_argument "--depth: must be >= 2");
    let shards_list = parse_shards shards in
    let json_path = Option.value json_path ~default:"rla_scale.json" in
    run_scale_sweep ~shards_list ~fanout ~depth ~duration ~warmup ~seed
      ~json_path
  end
  else begin
  let case_indices = parse_cases cases in
  if seeds < 1 then raise (Invalid_argument "--seeds: must be >= 1");
  if jobs < 1 then raise (Invalid_argument "--jobs: must be >= 1");
  (match halt_after with
  | Some n when n < 1 -> raise (Invalid_argument "--halt-after: must be >= 1")
  | _ -> ());
  let gateway =
    match Experiments.Scenario.gateway_of_string gateway with
    | Some g -> g
    | None ->
        raise
          (Invalid_argument
             (Printf.sprintf "--gateway: %S is not droptail or red" gateway))
  in
  let seed_list = List.init seeds (fun k -> seed + k) in
  let json_path =
    Option.value json_path
      ~default:(if churn then "BENCH_churn.json" else "rla_sweep.json")
  in
  if churn then begin
    if resume || halt_after <> None then
      raise
        (Invalid_argument "--resume/--halt-after apply to plain sweeps only");
    run_churn_sweep ~case_indices ~seed_list ~gateway ~jobs ~duration ~warmup
      ~json_path
  end
  else
    run_plain_sweep ~case_indices ~seed_list ~gateway ~jobs ~duration ~warmup
      ~json_path ~resume ~halt_after ~deterministic
  end

open Cmdliner

let cases_arg =
  let doc = "Comma-separated sharing case indices (paper numbering 1-5)." in
  Arg.(value & opt string "1,2,3,4,5" & info [ "cases" ] ~docv:"LIST" ~doc)

let seeds_arg =
  let doc = "Number of seed replications per case (seeds $(b,--seed) ...)." in
  Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "First seed of the replication range." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let gateway_arg =
  let doc = "Gateway discipline: droptail or red." in
  Arg.(value & opt string "droptail" & info [ "gateway"; "g" ] ~docv:"KIND" ~doc)

let jobs_arg =
  let doc =
    "Domain-pool size.  Results are identical for any value; only \
     wall-clock changes."
  in
  Arg.(
    value
    & opt int (Runner.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"J" ~doc)

let duration_arg =
  let doc = "Simulated seconds per run (the paper uses 3000)." in
  Arg.(value & opt float 300.0 & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)

let warmup_arg =
  let doc = "Discarded measurement prefix, seconds (must be < duration)." in
  Arg.(value & opt float 100.0 & info [ "warmup" ] ~docv:"SECONDS" ~doc)

let scale_arg =
  let doc =
    "Sweep the sharded 10k-receiver scaling scenario over the \
     $(b,--shards) list instead of the sharing cases (fairness tables \
     must come out byte-identical — the shard structure is fixed by \
     the topology, worker domains are not observable).  Defaults to \
     $(b,rla_scale.json); the checked-in BENCH_scale.json is owned by \
     `make bench-scale`."
  in
  Arg.(value & flag & info [ "scale" ] ~doc)

let shards_arg =
  let doc = "Comma-separated worker-domain counts for $(b,--scale)." in
  Arg.(value & opt string "1,2,4" & info [ "shards" ] ~docv:"LIST" ~doc)

let fanout_arg =
  let doc =
    "Tree fanout for $(b,--scale) (receivers = fanout^depth; 22 x 3 \
     gives 10648)."
  in
  Arg.(value & opt int 22 & info [ "fanout" ] ~docv:"K" ~doc)

let depth_arg =
  let doc = "Tree depth for $(b,--scale) (>= 2)." in
  Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc)

let meanfield_arg =
  let doc =
    "Sweep the mean-field ODE regime map (w_q x max_p x n, with n up \
     to 10^6) instead of the packet-level sharing cases.  Every grid \
     point is classified by the solver and by the closed-form \
     stability criterion; the report defaults to \
     $(b,BENCH_meanfield.json) and is byte-identical at any --jobs."
  in
  Arg.(value & flag & info [ "meanfield" ] ~doc)

let hostile_arg =
  let doc =
    "Sweep the hostile-workload scenario (fig-6 case 3 under every \
     adversary mix: none, non-backoff blast, ack division, optimistic \
     acking, blind RST injection) instead of the plain sharing cases.  \
     The report defaults to $(b,BENCH_hostile.json) and is \
     byte-identical at any --jobs; the no-adversary row matches the \
     plain Sharing numbers exactly."
  in
  Arg.(value & flag & info [ "hostile" ] ~doc)

let churn_arg =
  let doc =
    "Run the fault-injection churn scenario (default script: leaf-link \
     outage, leave + rejoin, competing flow) instead of the plain \
     sharing sweep; the report carries per-epoch fairness ratios and \
     defaults to $(b,BENCH_churn.json)."
  in
  Arg.(value & flag & info [ "churn" ] ~doc)

let json_arg =
  let doc =
    "Path of the JSON report (default rla_sweep.json, or \
     BENCH_churn.json with $(b,--churn))."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Reload finished rows from $(i,JSON).partial (written continuously \
     by every plain sweep) and run only the missing jobs; the final \
     report is spliced in job order, identical to an uninterrupted \
     sweep's."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let halt_after_arg =
  let doc =
    "Stop after $(docv) jobs have finished this invocation, leaving the \
     .partial state behind (simulates a killed sweep; finish it with \
     --resume)."
  in
  Arg.(value & opt (some int) None & info [ "halt-after" ] ~docv:"N" ~doc)

let deterministic_arg =
  let doc =
    "Zero the wall-clock/allocation metrics in the report, leaving only \
     simulation-derived numbers, so a resumed sweep's JSON is \
     byte-identical to an uninterrupted one's."
  in
  Arg.(value & flag & info [ "deterministic" ] ~doc)

let cmd =
  let doc =
    "Parallel seed/case sweep of the RLA-vs-TCP sharing experiment \
     (Wang & Schwartz, SIGCOMM 1998, figures 7/9)."
  in
  let term =
    Term.(
      const (fun cases seeds seed gateway jobs duration warmup churn scale
                 meanfield hostile shards fanout depth json_path resume
                 halt_after deterministic ->
          try
            run ~cases ~seeds ~seed ~gateway ~jobs ~duration ~warmup ~churn
              ~scale ~meanfield ~hostile ~shards ~fanout ~depth ~json_path
              ~resume ~halt_after ~deterministic
          with Invalid_argument msg ->
            Format.eprintf "rla_sweep: %s@." msg;
            Stdlib.exit 2)
      $ cases_arg $ seeds_arg $ seed_arg $ gateway_arg $ jobs_arg
      $ duration_arg $ warmup_arg $ churn_arg $ scale_arg $ meanfield_arg
      $ hostile_arg $ shards_arg $ fanout_arg $ depth_arg $ json_arg
      $ resume_arg $ halt_after_arg $ deterministic_arg)
  in
  Cmd.v (Cmd.info "rla_sweep" ~doc) term

let () = exit (Cmd.eval cmd)
