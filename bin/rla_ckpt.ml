(* rla_ckpt — inspect, validate and diff checkpoint files.

     rla_ckpt inspect  run.ckpt          # header, sections, config
     rla_ckpt validate run.ckpt          # full rebuild + restore check
     rla_ckpt diff     a.journal b.journal   # first divergence
     rla_ckpt diff     a.ckpt b.ckpt         # via embedded journals

   [validate] actually rebuilds the topology and restores every
   component (the same path `rla_sim --restore` takes), so a zero exit
   means the file will resume; [inspect] only parses the header and the
   cheap meta/config sections.  [diff] pinpoints the first event where
   two runs diverged — the tool for "my resumed run differs" triage. *)

let pf = Printf.printf

let load_sections path =
  match Ckpt.Codec.load_file ~path with
  | Ok sections -> sections
  | Error e ->
      Printf.eprintf "rla_ckpt: %s: %s\n" path (Ckpt.Codec.error_to_string e);
      exit 1

let inspect path =
  let sections = load_sections path in
  pf "%s: checkpoint format v%d, %d section(s)\n" path Ckpt.Codec.version
    (List.length sections);
  (match Ckpt.Sharing_ckpt.read_meta sections with
  | Error e -> pf "  meta: unreadable (%s)\n" (Ckpt.Codec.error_to_string e)
  | Ok (meta, config) ->
      pf "  captured at     t=%g of %g s (warmup %g)\n"
        meta.Ckpt.Sharing_ckpt.time config.Experiments.Sharing.duration
        config.Experiments.Sharing.warmup;
      pf "  experiment      case %s, %s gateways, seed %d, %d TCP flow(s)\n"
        (Experiments.Tree.case_name config.Experiments.Sharing.case)
        (Experiments.Scenario.gateway_name config.Experiments.Sharing.gateway)
        config.Experiments.Sharing.seed meta.Ckpt.Sharing_ckpt.n_tcps);
  pf "  %-12s %10s  %s\n" "section" "bytes" "crc32";
  List.iter
    (fun { Ckpt.Codec.name; payload } ->
      pf "  %-12s %10d  %08Lx\n" name (String.length payload)
        (Ckpt.Codec.crc32 payload))
    sections;
  0

let validate path =
  match Ckpt.Sharing_ckpt.load ~path with
  | Ok loaded ->
      pf "%s: ok — restores at t=%g%s%s\n" path loaded.Ckpt.Sharing_ckpt.time
        (match loaded.Ckpt.Sharing_ckpt.registry with
        | Some _ -> ", with registry"
        | None -> "")
        (match loaded.Ckpt.Sharing_ckpt.journal with
        | Some j ->
            Printf.sprintf ", journal of %d event(s)" (Ckpt.Journal.length j)
        | None -> "");
      0
  | Error e ->
      Printf.eprintf "rla_ckpt: %s: %s\n" path
        (Ckpt.Sharing_ckpt.error_to_string e);
      1

(* A diff operand is either a journal text file or a checkpoint with an
   embedded journal section; sniff by magic. *)
let journal_of path =
  let is_ckpt =
    match In_channel.with_open_bin path (fun ic -> In_channel.really_input_string ic 8) with
    | Some magic -> String.equal magic "RLACKPT1"
    | None -> false
    | exception Sys_error _ -> false
  in
  if is_ckpt then
    match Ckpt.Sharing_ckpt.load ~path with
    | Error e ->
        Printf.eprintf "rla_ckpt: %s: %s\n" path
          (Ckpt.Sharing_ckpt.error_to_string e);
        exit 1
    | Ok { Ckpt.Sharing_ckpt.journal = None; _ } ->
        Printf.eprintf
          "rla_ckpt: %s has no journal section (run was not traced)\n" path;
        exit 1
    | Ok { Ckpt.Sharing_ckpt.journal = Some j; _ } -> j
  else
    match Ckpt.Journal.load ~path with
    | Ok j -> j
    | Error msg ->
        Printf.eprintf "rla_ckpt: %s: %s\n" path msg;
        exit 1

let diff a b =
  let ja = journal_of a and jb = journal_of b in
  match Ckpt.Journal.diff ja jb with
  | None ->
      pf "identical: %d event(s)\n" (Ckpt.Journal.length ja);
      0
  | Some d ->
      let side path = function
        | Some e -> Printf.sprintf "%s: %s" path (Ckpt.Journal.entry_to_string e)
        | None -> Printf.sprintf "%s: <journal ends>" path
      in
      pf "first divergence at event %d:\n  %s\n  %s\n" d.Ckpt.Journal.index
        (side a d.Ckpt.Journal.a) (side b d.Ckpt.Journal.b);
      1

open Cmdliner

let file_arg n docv doc = Arg.(required & pos n (some string) None & info [] ~docv ~doc)

let inspect_cmd =
  let doc = "Print a checkpoint's header, sections and embedded config" in
  Cmd.v (Cmd.info "inspect" ~doc)
    Term.(const inspect $ file_arg 0 "FILE" "Checkpoint file.")

let validate_cmd =
  let doc =
    "Fully rebuild and restore a checkpoint; exit 0 iff it would resume"
  in
  Cmd.v (Cmd.info "validate" ~doc)
    Term.(const validate $ file_arg 0 "FILE" "Checkpoint file.")

let diff_cmd =
  let doc =
    "Compare two event journals (or checkpoints carrying journals) and \
     report the first divergence"
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const diff
      $ file_arg 0 "A" "First journal or checkpoint."
      $ file_arg 1 "B" "Second journal or checkpoint.")

let cmd =
  let doc = "Inspect, validate and diff rla checkpoint files" in
  Cmd.group (Cmd.info "rla_ckpt" ~doc) [ inspect_cmd; validate_cmd; diff_cmd ]

let () = exit (Cmd.eval' cmd)
