(* rla_lint — determinism and domain-safety linter for the repo's own
   sources.

   The whole reproduction rests on runs being byte-identical for a
   fixed seed at any --jobs/--shards; this CLI makes the sources that
   carry that guarantee fail the build when they reach for wall clocks,
   ambient randomness, polymorphic compare in hot paths, unordered
   Hashtbl iteration on exporter-feeding paths, shared mutable state
   reachable from worker domains, or allocations in annotated hot
   functions. *)

let list_rules () =
  List.iter
    (fun (r : Lint.Rules.t) ->
      let scope =
        match r.Lint.Rules.scope with
        | Lint.Rules.All -> "everywhere"
        | Lint.Rules.Dirs ds -> String.concat "," ds
      in
      Printf.printf "%-23s %-9s %-40s %s\n" r.Lint.Rules.name
        (Lint.Finding.severity_to_string r.Lint.Rules.severity)
        scope r.Lint.Rules.summary)
    Lint.Rules.all

let run_lint rules format json strict list_only graph paths =
  if list_only then begin
    list_rules ();
    0
  end
  else
    let rules =
      match rules with
      | [] -> None
      | rs ->
          Some (List.concat_map (fun r -> String.split_on_char ',' r) rs)
    in
    let paths = match paths with [] -> [ "lib" ] | ps -> ps in
    if graph then (
      match Lint.Driver.escape_graph ~paths () with
      | listing ->
          print_string listing;
          0
      | exception Invalid_argument msg ->
          prerr_endline msg;
          2)
    else
      let format = if json then "json" else format in
      match Lint.Driver.run ?rules ~paths () with
      | findings ->
          (match format with
          | "json" ->
              print_endline (Lint.Json.to_string (Lint.Driver.to_json findings))
          | "sarif" ->
              print_endline
                (Lint.Json.to_string (Lint.Driver.to_sarif findings))
          | _ ->
              print_string (Lint.Driver.render_text findings);
              let errors =
                List.length
                  (List.filter
                     (fun f -> f.Lint.Finding.severity = Lint.Finding.Error)
                     findings)
              in
              let warnings = List.length findings - errors in
              if findings <> [] || errors > 0 then
                Printf.printf "%d error(s), %d warning(s)\n" errors warnings);
          Lint.Driver.exit_code ~strict findings
      | exception Invalid_argument msg ->
          prerr_endline msg;
          2

open Cmdliner

let rules_arg =
  let doc =
    "Comma-separated rule names to enable (default: all).  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "rules" ] ~docv:"RULES" ~doc)

let format_arg =
  let doc = "Output format: $(b,text), $(b,json) or $(b,sarif)." in
  Arg.(
    value
    & opt (enum [ ("text", "text"); ("json", "json"); ("sarif", "sarif") ])
        "text"
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let json_arg =
  let doc = "Emit findings as a JSON report on stdout (= --format json)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let strict_arg =
  let doc = "Treat warnings (advisory findings) as errors for the exit code." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let list_arg =
  let doc = "List the known rules with scope and severity, then exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let graph_arg =
  let doc =
    "Dump the cross-module escape graph (nodes, worker roots, resolved \
     edges, reachability) instead of linting."
  in
  Arg.(value & flag & info [ "graph" ] ~doc)

let paths_arg =
  let doc = "Files or directories to lint (default: lib)." in
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)

let cmd =
  let doc = "statically enforce the replay-identical guarantee" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses the repo's OCaml sources with compiler-libs and reports \
         determinism hazards: wall-clock reads, ambient randomness, \
         polymorphic compare/hash in hot-path libraries, unordered Hashtbl \
         iteration on exporter-feeding paths, missing .mli interfaces and \
         exported-but-unreferenced values.";
      `P
        "A cross-module escape pass roots every Domain.spawn and \
         Job.create closure, propagates worker-domain reachability over \
         the call graph, and reports module-level mutable state \
         (shared-mutable-capture) and non-reentrant ambient stdlib calls \
         (domain-unsafe-call) that workers can reach.  Functions declared \
         (* lint: hot <name> -- <reason> *) are scanned for allocation \
         constructs (alloc-hot), and hot-coverage verifies the \
         annotations name real exported functions.";
      `P
        "Suppress a finding in source with (* lint: allow <rule> -- \
         <reason> *) on the offending or preceding line, or (* lint: \
         allow-file <rule> -- <reason> *) for a whole file.  The reason is \
         mandatory.";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree, 1 if any error finding, 2 on usage errors.";
    ]
  in
  Cmd.v
    (Cmd.info "rla_lint" ~doc ~man)
    Term.(
      const run_lint $ rules_arg $ format_arg $ json_arg $ strict_arg
      $ list_arg $ graph_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
