(* Command-line driver: regenerate any of the paper's tables/figures.

     rla_sim fig7 --duration 3000 --seed 3
     rla_sim fig5 --steps 200000
     rla_sim all

   Experiment ids match the per-experiment index in DESIGN.md. *)

let ppf = Format.std_formatter

(* [ckpt] is [Some (every, dir)] when --checkpoint-every/--checkpoint-dir
   were given: the sharing-based figures (7/8/9) then run through the
   checkpointing driver, writing [dir]/fig_case<i>_seed<s>_t<time>.ckpt
   at every boundary.  Checkpointing is passive, so the printed tables
   are identical either way. *)
let sharing_cases ?ckpt ~gateway ~duration ~seed () =
  List.map
    (fun i ->
      match ckpt with
      | None ->
          Experiments.Sharing.run_case ~gateway ~case_index:i ~duration ~seed
            ()
      | Some (every, dir) ->
          let config =
            {
              (Experiments.Sharing.default_config ~gateway
                 ~case:(Experiments.Tree.case_of_index i))
              with
              Experiments.Sharing.duration;
              seed;
            }
          in
          let prefix =
            Printf.sprintf "%s_case%d_seed%d"
              (Experiments.Scenario.gateway_name gateway)
              i seed
          in
          Ckpt.Sharing_ckpt.run_with_checkpoints ~every ~dir ~prefix config)
    [ 1; 2; 3; 4; 5 ]

let run_fig7 ?ckpt ~duration ~seed () =
  let results =
    sharing_cases ?ckpt ~gateway:Experiments.Scenario.Droptail ~duration ~seed
      ()
  in
  Experiments.Report.print_sharing_table ppf
    ~title:"Figure 7 — RLA vs TCP, drop-tail gateways" results;
  results

let run_fig8 ?ckpt ~duration ~seed () =
  let results =
    sharing_cases ?ckpt ~gateway:Experiments.Scenario.Droptail ~duration ~seed
      ()
  in
  Experiments.Report.print_signal_table ppf results

let run_fig9 ?ckpt ~duration ~seed () =
  let results =
    sharing_cases ?ckpt ~gateway:Experiments.Scenario.Red ~duration ~seed ()
  in
  Experiments.Report.print_sharing_table ppf
    ~title:"Figure 9 — RLA vs TCP, RED gateways" results

let run_fig10 ~duration ~seed =
  let results =
    List.map
      (fun i ->
        let config = Experiments.Diff_rtt.default_config ~case_index:i in
        Experiments.Diff_rtt.run
          { config with Experiments.Diff_rtt.duration; seed })
      [ 1; 2 ]
  in
  Experiments.Report.print_diff_rtt_table ppf results

let run_sec52 ~duration ~seed =
  let config =
    Experiments.Multi_session.default_config
      ~gateway:Experiments.Scenario.Droptail
  in
  let result =
    Experiments.Multi_session.run
      { config with Experiments.Multi_session.duration; seed }
  in
  Experiments.Report.print_multi_session ppf result

let run_fig4 () =
  let pipes = Analysis.Particle.uniform_pipes ~pipe:10.0 ~n:3 in
  let field = Analysis.Particle.drift_field pipes ~x_max:10.0 ~y_max:10.0 ~step:1.0 in
  Experiments.Report.print_drift_field ppf field

let run_fig5 ~seed ~steps =
  (* Two sessions, 27 receivers, pipe 60 shared by 2 multicast + 1 TCP:
     each session's fair window is 20. *)
  let pipes = Analysis.Particle.uniform_pipes ~pipe:40.0 ~n:27 in
  let stats =
    Analysis.Particle.simulate ~rng:(Sim.Rng.create seed) pipes ~steps ()
  in
  Experiments.Report.print_particle_run ppf stats

let run_eq1 ~duration ~seed =
  let config =
    { Experiments.Validation.default_config with duration; seed }
  in
  Experiments.Report.print_validation ppf (Experiments.Validation.run config)

let run_prop ~seed ~steps =
  let rng = Sim.Rng.create seed in
  let rows =
    List.map
      (fun (n, ps) ->
        let w_model = Analysis.Rla_model.pa_window_independent ~ps in
        let w_mc = Analysis.Rla_model.simulate_window ~rng ~ps ~steps in
        let p_max = Array.fold_left Stdlib.max 0.0 ps in
        let lo, hi = Analysis.Rla_model.proposition_bounds ~n ~p_max in
        (n, ps, w_model, w_mc, lo, hi))
      [
        (2, [| 0.01; 0.01 |]);
        (2, [| 0.02; 0.002 |]);
        (4, [| 0.02; 0.02; 0.02; 0.02 |]);
        (8, Array.make 8 0.01);
        (27, Array.make 27 0.01);
        (27, Array.append [| 0.03 |] (Array.make 26 0.003));
      ]
  in
  Experiments.Report.print_proposition_table ppf rows

let run_sec31 ~duration ~seed =
  let results =
    List.map
      (fun n_tcp ->
        Experiments.Buffer_dynamics.run
          {
            Experiments.Buffer_dynamics.default_config with
            Experiments.Buffer_dynamics.n_tcp;
            mu_pkts = 100.0 *. float_of_int n_tcp;
            duration;
            seed;
          })
      [ 1; 2; 4; 8 ]
  in
  Experiments.Report.print_buffer_dynamics ppf results

let run_scaling ~duration ~seed =
  let points =
    Experiments.Scaling.run
      { Experiments.Scaling.default_config with duration; seed }
  in
  Experiments.Scaling.print ppf points

(* Sharded scaling through the conservative parallel engine.  [shards]
   is the worker-domain count: the shard structure itself is fixed by
   the topology partition (fanout+1 parts), so the printed report is
   byte-identical for every --shards value — that invariance is what
   `make par-smoke` checks.  Checkpoint flags are rejected up front
   with the typed Par.Scenario error. *)
let run_scale ~fanout ~depth ~shards ~duration ~seed ~ckpt =
  let config =
    {
      Experiments.Scaling.default_sharded_config with
      Experiments.Scaling.fanout;
      depth;
      workers = shards;
      duration;
      warmup = duration /. 4.0;
      seed;
    }
  in
  match Experiments.Scaling.run_sharded ?checkpoint:ckpt config with
  | Ok r -> Experiments.Scaling.print_sharded ppf r
  | Error e ->
      Printf.eprintf "rla_sim: %s\n" (Par.Scenario.error_to_string e);
      exit 2

let run_shortflows ~duration ~seed =
  let results =
    List.map
      (fun bg ->
        Experiments.Short_flows.run
          {
            (Experiments.Short_flows.default_config bg) with
            Experiments.Short_flows.duration;
            seed;
          })
      [
        Experiments.Short_flows.Bg_none;
        Experiments.Short_flows.Bg_tcp;
        Experiments.Short_flows.Bg_rla;
        Experiments.Short_flows.Bg_cbr 220.0;
      ]
  in
  Experiments.Short_flows.print ppf results

let run_ecn ~duration ~seed =
  List.iter
    (fun case_index ->
      Experiments.Ecn.print ppf
        (Experiments.Ecn.run ~case_index ~duration ~seed ()))
    [ 1; 3 ]

let run_churn ~duration ~seed =
  (* The default fault script over the paper's case-3 tree: a leaf-link
     outage, a leave + rejoin, and a competing short-lived TCP, with
     the essential-fairness ratio reported per fault epoch. *)
  let warmup = Float.min 100.0 (duration /. 3.0) in
  let config =
    Experiments.Churn.case_config ~gateway:Experiments.Scenario.Droptail
      ~case_index:3 ~duration ~warmup ~seed ()
  in
  Experiments.Churn.print ppf (Experiments.Churn.run config)

let run_baseline ~duration ~seed =
  let results = Experiments.Baseline_fairness.run_matrix ~duration ~seed () in
  Experiments.Report.print_baseline_matrix ppf results

(* Adversary mixes on the fig-6 tree (every mix) plus a small k-ary
   scale tree (honest + non-backoff), all deterministic; --csv writes
   the fixed-precision trace that `make hostile-smoke` byte-compares
   across runs and --jobs values. *)
let run_hostile ~duration ~seed ~csv =
  let warmup = Float.min 100.0 (duration /. 3.0) in
  let fig6 =
    List.map
      (fun mix ->
        Experiments.Hostile.run
          {
            (Experiments.Hostile.default_config ~mix) with
            Experiments.Hostile.duration;
            warmup;
            seed;
          })
      Experiments.Hostile.all_mixes
  in
  let kary =
    List.map
      (fun mix ->
        Experiments.Hostile.run
          {
            (Experiments.Hostile.default_config ~mix) with
            Experiments.Hostile.topology =
              Experiments.Hostile.Kary { fanout = 3; depth = 2 };
            duration;
            warmup;
            seed;
          })
      [ Experiments.Hostile.Honest; Experiments.Hostile.Nonbackoff ]
  in
  let results = fig6 @ kary in
  Experiments.Hostile.print ppf results;
  match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Experiments.Hostile.csv_header ^ "\n");
      List.iter
        (fun r -> output_string oc (Experiments.Hostile.to_csv_row r ^ "\n"))
        results;
      close_out oc;
      Format.fprintf ppf "hostile trace written to %s@." path

(* Mean-field tier: integrate the ODE system at one regime-map point
   and emit the trajectory (CSV to --csv, summary to stdout). *)
let run_meanfield ~mf_n ~mf_w_q ~mf_max_p ~csv =
  let point = { Meanfield.Regime.w_q = mf_w_q; max_p = mf_max_p; n = mf_n } in
  let params = Meanfield.Regime.params_for point in
  let r = Meanfield.Solver.run params in
  Format.fprintf ppf
    "Mean-field trajectory: n=%d w_q=%g max_p=%g@.verdict %s  queue %.2f  \
     avg-queue %.2f  drop %.5f  amplitude %.3f%s@.rla-window %.2f  \
     rla-rate %.1f  fairness-ratio %.3f  (%d steps to t=%.1f)@."
    mf_n mf_w_q mf_max_p
    (Meanfield.Solver.verdict_to_string r.Meanfield.Solver.verdict)
    r.Meanfield.Solver.queue_mean r.Meanfield.Solver.avg_queue_mean
    r.Meanfield.Solver.drop_mean r.Meanfield.Solver.amplitude
    (match r.Meanfield.Solver.period with
    | Some p -> Printf.sprintf "  period %.2fs" p
    | None -> "")
    r.Meanfield.Solver.rla_window r.Meanfield.Solver.rla_rate
    r.Meanfield.Solver.fairness_ratio r.Meanfield.Solver.steps
    r.Meanfield.Solver.t_end;
  match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Meanfield.Trajectory.to_csv_string r.Meanfield.Solver.trajectory);
      close_out oc;
      Format.fprintf ppf "trajectory written to %s@." path

(* Unlike the other experiments, the validation's default horizon comes
   from the experiment itself (640 s): the fairness ratio needs
   hundreds of RLA loss events to time-average, so the generic 300 s
   CLI default would be misleading here.  --duration still overrides
   for quick smoke runs (pair it with a looser --mf-tol). *)
let run_mfvalidate ?duration ?tolerance ~seed () =
  let base = Experiments.Meanfield_validate.default_config in
  let duration =
    Option.value duration ~default:base.Experiments.Meanfield_validate.duration
  in
  let config =
    {
      base with
      Experiments.Meanfield_validate.duration;
      warmup =
        Float.min base.Experiments.Meanfield_validate.warmup (duration /. 4.0);
      seed;
      tolerance =
        Option.value tolerance
          ~default:base.Experiments.Meanfield_validate.tolerance;
    }
  in
  let result = Experiments.Meanfield_validate.run ~config () in
  Experiments.Meanfield_validate.print ppf result;
  if not result.Experiments.Meanfield_validate.pass then exit 1

let run_ablate ~duration ~seed =
  let run ~title variants =
    Experiments.Report.print_ablation ppf ~title
      (Experiments.Ablation.run ~variants ~duration ~seed ())
  in
  run ~title:"congestion-signal grouping window"
    (Experiments.Ablation.grouping_variants ());
  run ~title:"forced-cut horizon" (Experiments.Ablation.forced_cut_variants ());
  run ~title:"eta (troubled-receiver threshold)"
    (Experiments.Ablation.eta_variants ());
  run ~title:"phase-effect randomization"
    (Experiments.Ablation.phase_variants ());
  run ~title:"generalized pthresh exponent"
    (Experiments.Ablation.rtt_exponent_variants ());
  run ~title:"retransmission expiry"
    (Experiments.Ablation.rexmit_timeout_variants ());
  run ~title:"receiver ack jitter"
    (Experiments.Ablation.ack_jitter_variants ())

let experiments =
  [
    ("fig4", `Fig4);
    ("fig5", `Fig5);
    ("fig7", `Fig7);
    ("fig8", `Fig8);
    ("fig9", `Fig9);
    ("fig10", `Fig10);
    ("sec52", `Sec52);
    ("sec31", `Sec31);
    ("scaling", `Scaling);
    ("scale", `Scale);
    ("shortflows", `Shortflows);
    ("ecn", `Ecn);
    ("eq1", `Eq1);
    ("prop", `Prop);
    ("baseline", `Baseline);
    ("hostile", `Hostile);
    ("churn", `Churn);
    ("ablate", `Ablate);
    ("meanfield", `Meanfield);
    ("mfvalidate", `Mfvalidate);
    ("all", `All);
  ]

let dispatch which ~duration ~mf_tol ~seed ~steps ~ckpt ~shards ~fanout ~depth
    ~mf_n ~mf_w_q ~mf_max_p ~csv =
  let mf_duration = duration in
  let duration = Option.value duration ~default:300.0 in
  match which with
  | `Fig4 -> run_fig4 ()
  | `Fig5 -> run_fig5 ~seed ~steps
  | `Fig7 -> ignore (run_fig7 ?ckpt ~duration ~seed ())
  | `Fig8 -> run_fig8 ?ckpt ~duration ~seed ()
  | `Fig9 -> run_fig9 ?ckpt ~duration ~seed ()
  | `Fig10 -> run_fig10 ~duration ~seed
  | `Sec52 -> run_sec52 ~duration ~seed
  | `Sec31 -> run_sec31 ~duration ~seed
  | `Scaling -> run_scaling ~duration ~seed
  | `Scale -> run_scale ~fanout ~depth ~shards ~duration ~seed ~ckpt
  | `Shortflows -> run_shortflows ~duration ~seed
  | `Ecn -> run_ecn ~duration ~seed
  | `Eq1 -> run_eq1 ~duration ~seed
  | `Prop -> run_prop ~seed ~steps
  | `Baseline -> run_baseline ~duration ~seed
  | `Hostile -> run_hostile ~duration ~seed ~csv
  | `Churn -> run_churn ~duration ~seed
  | `Ablate -> run_ablate ~duration ~seed
  | `Meanfield -> run_meanfield ~mf_n ~mf_w_q ~mf_max_p ~csv
  | `Mfvalidate ->
      run_mfvalidate ?duration:mf_duration ?tolerance:mf_tol ~seed ()
  | `All ->
      run_fig4 ();
      run_fig5 ~seed ~steps;
      let dt = run_fig7 ?ckpt ~duration ~seed () in
      Experiments.Report.print_signal_table ppf dt;
      run_fig9 ?ckpt ~duration ~seed ();
      run_fig10 ~duration ~seed;
      run_sec52 ~duration ~seed;
      run_sec31 ~duration ~seed;
      run_scaling ~duration ~seed;
      run_shortflows ~duration ~seed;
      run_ecn ~duration ~seed;
      run_eq1 ~duration ~seed;
      run_prop ~seed ~steps;
      run_baseline ~duration ~seed

open Cmdliner

let which_arg =
  let doc =
    "Experiment to run: "
    ^ String.concat ", " (List.map fst experiments)
    ^ ". Optional when --restore is given."
  in
  Arg.(
    value & pos 0 (some (enum experiments)) None & info [] ~docv:"EXPERIMENT" ~doc)

let duration_arg =
  let doc =
    "Simulated seconds per run (default 300; the paper uses 3000; \
     mfvalidate defaults to its own 640 s horizon)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)

let mf_tol_arg =
  let doc =
    "Relative-error tolerance for mfvalidate (default 0.15); loosen it \
     for short smoke runs."
  in
  Arg.(value & opt (some float) None & info [ "mf-tol" ] ~docv:"FRAC" ~doc)

let seed_arg =
  let doc = "Random seed; every run is reproducible from it." in
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let steps_arg =
  let doc = "Steps for the Monte-Carlo models (fig5, prop)." in
  Arg.(value & opt int 200_000 & info [ "steps" ] ~docv:"STEPS" ~doc)

let shards_arg =
  let doc =
    "Worker domains for the sharded $(b,scale) experiment.  The shard \
     structure is fixed by the topology, so results are byte-identical \
     for any value; only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let fanout_arg =
  let doc =
    "Tree fanout for $(b,scale) (receivers = fanout^depth; the default \
     22 x 3 gives 10648)."
  in
  Arg.(value & opt int 22 & info [ "fanout" ] ~docv:"K" ~doc)

let depth_arg =
  let doc = "Tree depth for $(b,scale) (>= 2)." in
  Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc)

let mf_n_arg =
  let doc = "System size n for the $(b,meanfield) experiment." in
  Arg.(value & opt int 8 & info [ "mf-n" ] ~docv:"N" ~doc)

let mf_w_q_arg =
  let doc = "RED EWMA weight for $(b,meanfield)." in
  Arg.(value & opt float 0.002 & info [ "mf-w-q" ] ~docv:"W" ~doc)

let mf_max_p_arg =
  let doc = "RED max_p for $(b,meanfield)." in
  Arg.(value & opt float 0.1 & info [ "mf-max-p" ] ~docv:"P" ~doc)

let csv_arg =
  let doc =
    "Write the $(b,meanfield) trajectory (or $(b,hostile) trace) CSV to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let ckpt_every_arg =
  let doc =
    "Write a checkpoint every $(docv) simulated seconds (sharing-based \
     experiments: fig7, fig8, fig9).  Requires --checkpoint-dir."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "checkpoint-every" ] ~docv:"SECONDS" ~doc)

let ckpt_dir_arg =
  let doc = "Directory for checkpoint files (created if missing)." in
  Arg.(
    value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let restore_arg =
  let doc =
    "Resume a checkpointed sharing run from $(docv) and print its final \
     fairness table.  With --checkpoint-every/--checkpoint-dir, keeps \
     checkpointing on the way."
  in
  Arg.(value & opt (some string) None & info [ "restore" ] ~docv:"FILE" ~doc)

let run_restore ~path ~ckpt =
  match Ckpt.Sharing_ckpt.load ~path with
  | Error e ->
      Printf.eprintf "rla_sim: cannot restore %s: %s\n" path
        (Ckpt.Sharing_ckpt.error_to_string e);
      1
  | Ok loaded ->
      let config = loaded.Ckpt.Sharing_ckpt.config in
      Format.fprintf ppf
        "Restored %s at t=%g (case %s, %s gateways, seed %d); running to \
         t=%g@."
        path loaded.Ckpt.Sharing_ckpt.time
        (Experiments.Tree.case_name config.Experiments.Sharing.case)
        (Experiments.Scenario.gateway_name config.Experiments.Sharing.gateway)
        config.Experiments.Sharing.seed config.Experiments.Sharing.duration;
      let result =
        match ckpt with
        | None -> Ckpt.Sharing_ckpt.resume_run loaded
        | Some (every, dir) -> Ckpt.Sharing_ckpt.resume_run ~every ~dir loaded
      in
      Experiments.Report.print_sharing_table ppf ~title:"Restored run"
        [ result ];
      0

let main which duration mf_tol seed steps shards fanout depth mf_n mf_w_q
    mf_max_p csv ckpt_every ckpt_dir restore =
  let ckpt =
    match (ckpt_every, ckpt_dir) with
    | Some every, Some dir ->
        if not (every > 0.0) then begin
          Printf.eprintf "rla_sim: --checkpoint-every must be positive\n";
          exit 2
        end;
        Some (every, dir)
    | Some _, None | None, Some _ ->
        Printf.eprintf
          "rla_sim: --checkpoint-every and --checkpoint-dir go together\n";
        exit 2
    | None, None -> None
  in
  match (restore, which) with
  | Some path, None -> run_restore ~path ~ckpt
  | Some _, Some _ ->
      Printf.eprintf "rla_sim: --restore takes no EXPERIMENT argument\n";
      2
  | None, None ->
      Printf.eprintf
        "rla_sim: an EXPERIMENT argument is required (or use --restore)\n";
      2
  | None, Some which ->
      dispatch which ~duration ~mf_tol ~seed ~steps ~ckpt ~shards ~fanout
        ~depth ~mf_n ~mf_w_q ~mf_max_p ~csv;
      0

let cmd =
  let doc =
    "Reproduce the tables and figures of Wang & Schwartz, 'Achieving \
     Bounded Fairness for Multicast and TCP Traffic in the Internet' \
     (SIGCOMM 1998)."
  in
  let term =
    Term.(
      const main $ which_arg $ duration_arg $ mf_tol_arg $ seed_arg
      $ steps_arg $ shards_arg $ fanout_arg $ depth_arg $ mf_n_arg
      $ mf_w_q_arg $ mf_max_p_arg $ csv_arg $ ckpt_every_arg $ ckpt_dir_arg
      $ restore_arg)
  in
  Cmd.v (Cmd.info "rla_sim" ~doc) term

let () = exit (Cmd.eval' cmd)
