# Tier-1 verification is `make check`: full build, the test suites,
# and a short 2-case smoke sweep of the parallel runner.

SMOKE_JSON ?= /tmp/rla_sweep_smoke.json

.PHONY: all build test smoke check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

smoke: build
	dune exec bin/rla_sweep.exe -- --cases 1,2 --duration 120 --warmup 40 \
	  --jobs 2 --json $(SMOKE_JSON)
	@grep -q '"runs_total":2' $(SMOKE_JSON) && echo "smoke sweep OK ($(SMOKE_JSON))"

check: build test smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
