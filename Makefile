# Tier-1 verification is `make check`: full build, the test suites,
# and a short 2-case smoke sweep of the parallel runner.
# `make ci` is the determinism lint (rla_lint must exit 0 on lib/),
# then check, then a per-flow trace smoke (non-empty CSV from an
# instrumented rla_trace run), a churn smoke (a faulted run must
# inject events and replay byte-identically across --jobs), and an
# invariant smoke (a run under RLA_DEBUG_INVARIANTS=1 must stay
# byte-identical to the uninstrumented run), and a checkpoint smoke
# (checkpointed and restored runs must reproduce the uninterrupted
# trace CSV and registry JSON byte-for-byte).

SMOKE_JSON ?= /tmp/rla_sweep_smoke.json
TRACE_CSV ?= /tmp/rla_trace_smoke.csv
CHURN_DIR ?= /tmp/rla_churn_smoke
INV_DIR ?= /tmp/rla_invariant_smoke
CKPT_DIR ?= /tmp/rla_ckpt_smoke
PAR_DIR ?= /tmp/rla_par_smoke
MF_DIR ?= /tmp/rla_meanfield_smoke
HOSTILE_DIR ?= /tmp/rla_hostile_smoke

.PHONY: all build test lint smoke trace-smoke churn-smoke \
  invariant-smoke ckpt-smoke par-smoke meanfield-smoke hostile-smoke \
  check ci bench bench-churn bench-perf bench-scale bench-meanfield \
  bench-hostile bench-trend clean

all: build

build:
	dune build @all

test:
	dune runtest

lint: build
	dune exec bin/rla_lint.exe -- --list-rules > /dev/null
	dune exec bin/rla_lint.exe -- --strict lib bin bench
	dune exec bin/rla_lint.exe -- --format sarif lib bin bench > /tmp/rla_lint.sarif

smoke: build
	dune exec bin/rla_sweep.exe -- --cases 1,2 --duration 120 --warmup 40 \
	  --jobs 2 --json $(SMOKE_JSON)
	@grep -q '"runs_total":2' $(SMOKE_JSON) && echo "smoke sweep OK ($(SMOKE_JSON))"

trace-smoke: build
	dune exec bin/rla_trace.exe -- --scenario sharing --gateway droptail \
	  --duration 60 --warmup 20 --csv $(TRACE_CSV)
	@test "$$(wc -l < $(TRACE_CSV))" -gt 1 \
	  && head -1 $(TRACE_CSV) | grep -q '^time,flow,cwnd,bytes_acked$$' \
	  && echo "trace smoke OK ($(TRACE_CSV))"

churn-smoke: build
	@mkdir -p $(CHURN_DIR)
	dune exec bin/rla_trace.exe -- --scenario sharing --faults default \
	  --duration 40 --warmup 10 --seed 7 --jobs 1 \
	  --csv $(CHURN_DIR)/a.csv --json $(CHURN_DIR)/a.json 2> /dev/null
	dune exec bin/rla_trace.exe -- --scenario sharing --faults default \
	  --duration 40 --warmup 10 --seed 7 --jobs 2 \
	  --csv $(CHURN_DIR)/b.csv --json $(CHURN_DIR)/b.json 2> /dev/null
	@cmp $(CHURN_DIR)/a.csv $(CHURN_DIR)/b.csv
	@cmp $(CHURN_DIR)/a.json $(CHURN_DIR)/b.json
	@grep -q '"faults.injected":[1-9]' $(CHURN_DIR)/a.json \
	  && echo "churn smoke OK (deterministic across --jobs, faults injected)"

invariant-smoke: build
	@mkdir -p $(INV_DIR)
	dune exec bin/rla_trace.exe -- --scenario sharing --gateway droptail \
	  --duration 40 --warmup 10 --seed 7 \
	  --csv $(INV_DIR)/plain.csv --json $(INV_DIR)/plain.json
	RLA_DEBUG_INVARIANTS=1 dune exec bin/rla_trace.exe -- \
	  --scenario sharing --gateway droptail --duration 40 --warmup 10 \
	  --seed 7 --csv $(INV_DIR)/dbg.csv --json $(INV_DIR)/dbg.json
	@cmp $(INV_DIR)/plain.csv $(INV_DIR)/dbg.csv
	@cmp $(INV_DIR)/plain.json $(INV_DIR)/dbg.json
	@echo "invariant smoke OK (instrumented run byte-identical)"

# Checkpoint/restore byte-identity: an uninterrupted run, a run that
# writes checkpoints every 10 s, and a run restored from the mid-run
# checkpoint must all dump identical trace CSV and registry JSON.
ckpt-smoke: build
	@rm -rf $(CKPT_DIR) && mkdir -p $(CKPT_DIR)
	dune exec bin/rla_trace.exe -- --scenario sharing --gateway droptail \
	  --case 3 --duration 40 --warmup 10 --seed 7 \
	  --csv $(CKPT_DIR)/plain.csv --json $(CKPT_DIR)/plain.json
	dune exec bin/rla_trace.exe -- --scenario sharing --gateway droptail \
	  --case 3 --duration 40 --warmup 10 --seed 7 \
	  --checkpoint-every 10 --checkpoint-dir $(CKPT_DIR)/ckpts \
	  --csv $(CKPT_DIR)/ckpt.csv --json $(CKPT_DIR)/ckpt.json
	@cmp $(CKPT_DIR)/plain.csv $(CKPT_DIR)/ckpt.csv
	@cmp $(CKPT_DIR)/plain.json $(CKPT_DIR)/ckpt.json
	dune exec bin/rla_ckpt.exe -- validate \
	  $(CKPT_DIR)/ckpts/case3_seed7_t000020.000.ckpt
	dune exec bin/rla_trace.exe -- \
	  --restore $(CKPT_DIR)/ckpts/case3_seed7_t000020.000.ckpt \
	  --csv $(CKPT_DIR)/restored.csv --json $(CKPT_DIR)/restored.json
	@cmp $(CKPT_DIR)/plain.csv $(CKPT_DIR)/restored.csv
	@cmp $(CKPT_DIR)/plain.json $(CKPT_DIR)/restored.json
	@echo "ckpt smoke OK (checkpointed and restored runs byte-identical)"

# Sharded-run determinism: the scale experiment's report must be
# byte-identical for --shards 1, 2 and 4 (the shard structure is fixed
# by the partition; worker domains must not be observable), and the
# checkpoint flags must be rejected with the typed error (exit 2).
par-smoke: build
	@mkdir -p $(PAR_DIR)
	dune exec bin/rla_sim.exe -- scale --fanout 5 --depth 3 --duration 4 \
	  --shards 1 > $(PAR_DIR)/s1.txt
	dune exec bin/rla_sim.exe -- scale --fanout 5 --depth 3 --duration 4 \
	  --shards 2 > $(PAR_DIR)/s2.txt
	dune exec bin/rla_sim.exe -- scale --fanout 5 --depth 3 --duration 4 \
	  --shards 4 > $(PAR_DIR)/s4.txt
	@cmp $(PAR_DIR)/s1.txt $(PAR_DIR)/s2.txt
	@cmp $(PAR_DIR)/s1.txt $(PAR_DIR)/s4.txt
	@dune exec bin/rla_sim.exe -- scale --fanout 5 --depth 3 --duration 4 \
	  --shards 2 --checkpoint-every 10 --checkpoint-dir $(PAR_DIR)/ck \
	  > /dev/null 2> $(PAR_DIR)/ck_err.txt; \
	  status=$$?; test $$status -eq 2 \
	  && grep -q 'not checkpointable' $(PAR_DIR)/ck_err.txt \
	  || { echo "par-smoke: expected checkpoint rejection (exit 2), got $$status"; exit 1; }
	@echo "par smoke OK (byte-identical across --shards, checkpoint rejected)"

# Mean-field cross-check: (1) the ODE solver must track the packet
# simulator on a shortened 3-point run (the loose tolerance absorbs
# the fairness-ratio noise of the short horizon; the full-length gate
# is `rla_sim mfvalidate` with its defaults), and (2) a solver
# trajectory CSV must be byte-identical across two invocations — the
# solver is deterministic by construction (no RNG, no wall clock).
meanfield-smoke: build
	@mkdir -p $(MF_DIR)
	dune exec bin/rla_sim.exe -- mfvalidate --duration 240 --mf-tol 0.35
	dune exec bin/rla_sim.exe -- meanfield --mf-n 64 --csv $(MF_DIR)/a.csv
	dune exec bin/rla_sim.exe -- meanfield --mf-n 64 --csv $(MF_DIR)/b.csv
	@cmp $(MF_DIR)/a.csv $(MF_DIR)/b.csv
	@echo "meanfield smoke OK (solver tracks the packet sim; CSV byte-identical)"

# Hostile-workload determinism: the adversary-mix trace CSV must be
# byte-identical across two invocations (no adversary draws from any
# RNG or wall clock — RST/data injections ride a scripted
# Faults.Timeline), and the --hostile sweep report must be
# byte-identical across --jobs 1, 2 and 4 (each mix builds its own
# network; worker domains are not observable).
hostile-smoke: build
	@mkdir -p $(HOSTILE_DIR)
	dune exec bin/rla_sim.exe -- hostile --duration 60 \
	  --csv $(HOSTILE_DIR)/a.csv > /dev/null
	dune exec bin/rla_sim.exe -- hostile --duration 60 \
	  --csv $(HOSTILE_DIR)/b.csv > /dev/null
	@cmp $(HOSTILE_DIR)/a.csv $(HOSTILE_DIR)/b.csv
	dune exec bin/rla_sweep.exe -- --hostile --seeds 1 --duration 60 \
	  --warmup 20 --jobs 1 --json $(HOSTILE_DIR)/j1.json > /dev/null
	dune exec bin/rla_sweep.exe -- --hostile --seeds 1 --duration 60 \
	  --warmup 20 --jobs 2 --json $(HOSTILE_DIR)/j2.json > /dev/null
	dune exec bin/rla_sweep.exe -- --hostile --seeds 1 --duration 60 \
	  --warmup 20 --jobs 4 --json $(HOSTILE_DIR)/j4.json > /dev/null
	@cmp $(HOSTILE_DIR)/j1.json $(HOSTILE_DIR)/j2.json
	@cmp $(HOSTILE_DIR)/j1.json $(HOSTILE_DIR)/j4.json
	@echo "hostile smoke OK (trace CSV and sweep JSON byte-identical)"

check: build test smoke

ci: lint check trace-smoke churn-smoke invariant-smoke ckpt-smoke \
  par-smoke meanfield-smoke hostile-smoke bench-trend

bench:
	dune exec bench/main.exe

bench-churn: build
	dune exec bin/rla_sweep.exe -- --churn --cases 1,3 --seeds 2 \
	  --duration 120 --warmup 40 --jobs 2 --json BENCH_churn.json

# Runs the perf scenarios, rewrites BENCH_perf.json, and appends one
# line to the append-only BENCH_perf_history.jsonl trend record.
bench-perf: build
	dune exec bench/perf.exe -- BENCH_perf.json

# Sharded-scaling bench: events/s and speedup at --shards 1/2/4/8 on
# the 10648-receiver tree, rewritten to BENCH_scale.json with one line
# appended to BENCH_scale_history.jsonl (same trend protocol as
# bench-perf).  RLA_BENCH_SCALE_DURATION / RLA_BENCH_SCALE_FANOUT
# shrink it for quick local runs.
bench-scale: build
	dune exec bench/scale.exe -- BENCH_scale.json

# Hostile adversary-mix bench: fig-6 case 3 under every adversary mix
# (none / non-backoff / ack division / optimistic ack / blind RST),
# rewritten to BENCH_hostile.json with one line appended to
# BENCH_hostile_history.jsonl.  The report is byte-identical at any
# --jobs (metrics scrubbed; events/s uses simulated seconds), so the
# file is diffable in review and the trend gate never sees machine
# noise — only event-count drift.
bench-hostile: build
	dune exec bin/rla_sweep.exe -- --hostile --seeds 1 --duration 120 \
	  --warmup 40 --jobs 4 --json BENCH_hostile.json
	cat BENCH_hostile.json >> BENCH_hostile_history.jsonl

# Mean-field regime map: the (w_q, max_p, n) grid up to n = 10^6,
# rewritten to BENCH_meanfield.json.  Byte-identical at any --jobs
# (the payload pins jobs/wall_s), so the file is diffable in review.
bench-meanfield: build
	dune exec bin/rla_sweep.exe -- --meanfield --jobs 2 --json BENCH_meanfield.json

# Regression gate (wired into `make ci`): compares the checked-in
# BENCH_perf.json / BENCH_scale.json against the best comparable run
# (same duration/seed) in their history files and fails on a >10%
# events/s drop.  Pure comparison — no simulation runs.  Tolerance
# override: RLA_BENCH_TREND_TOLERANCE=0.2 make bench-trend
bench-trend: build
	dune exec bench/trend.exe -- BENCH_perf.json BENCH_perf_history.jsonl
	dune exec bench/trend.exe -- BENCH_scale.json BENCH_scale_history.jsonl
	dune exec bench/trend.exe -- BENCH_hostile.json BENCH_hostile_history.jsonl

clean:
	dune clean
