# Tier-1 verification is `make check`: full build, the test suites,
# and a short 2-case smoke sweep of the parallel runner.
# `make ci` is check plus a per-flow trace smoke (non-empty CSV from
# an instrumented rla_trace run).

SMOKE_JSON ?= /tmp/rla_sweep_smoke.json
TRACE_CSV ?= /tmp/rla_trace_smoke.csv

.PHONY: all build test smoke trace-smoke check ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

smoke: build
	dune exec bin/rla_sweep.exe -- --cases 1,2 --duration 120 --warmup 40 \
	  --jobs 2 --json $(SMOKE_JSON)
	@grep -q '"runs_total":2' $(SMOKE_JSON) && echo "smoke sweep OK ($(SMOKE_JSON))"

trace-smoke: build
	dune exec bin/rla_trace.exe -- --scenario sharing --gateway droptail \
	  --duration 60 --warmup 20 --csv $(TRACE_CSV)
	@test "$$(wc -l < $(TRACE_CSV))" -gt 1 \
	  && head -1 $(TRACE_CSV) | grep -q '^time,flow,cwnd,bytes_acked$$' \
	  && echo "trace smoke OK ($(TRACE_CSV))"

check: build test smoke

ci: check trace-smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
