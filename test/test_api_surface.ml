(* Exercises the exported accessors and small helpers that the main
   suites do not reach: every [val] here is part of the public
   performance or tooling contract (checkpoint codecs, CSV exporters,
   debug printers, model variants), and rla_lint's unused-export rule
   runs with --strict under make ci, so each one needs a real caller
   or an explicit waiver.  These tests are the callers. *)

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(tol = 1e-6) msg expected got =
  Alcotest.(check (float tol)) msg expected got

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_welford_stddev () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close "stddev = sqrt variance"
    (sqrt (Stats.Welford.variance w))
    (Stats.Welford.stddev w);
  check_float "empty stddev" 0.0 (Stats.Welford.stddev (Stats.Welford.create ()))

let test_counter_capture_restore () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c ~now:1.0;
  Stats.Counter.incr c ~now:2.0;
  Alcotest.(check int) "capture" 2 (Stats.Counter.capture c);
  Stats.Counter.restore c 5;
  Alcotest.(check int) "restored value" 5 (Stats.Counter.value c);
  Stats.Counter.incr c ~now:3.0;
  Alcotest.(check int) "counts continue" 6 (Stats.Counter.value c)

let test_density_cells () =
  let d =
    Stats.Density.create ~x_lo:0.0 ~x_hi:10.0 ~y_lo:0.0 ~y_hi:10.0 ~cells:5
  in
  Alcotest.(check int) "cells" 5 (Stats.Density.cells d);
  let cx, cy = Stats.Density.cell_center d 0 0 in
  check_float "first center x" 1.0 cx;
  check_float "first center y" 1.0 cy;
  let cx, cy = Stats.Density.cell_center d 4 4 in
  check_float "last center x" 9.0 cx;
  check_float "last center y" 9.0 cy

let test_histogram_bins () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4 in
  Stats.Histogram.add h 1.0;
  Stats.Histogram.add h 6.0;
  Stats.Histogram.add h 6.2;
  Alcotest.(check int) "bins" 4 (Stats.Histogram.bins h);
  let l = Stats.Histogram.to_list h in
  Alcotest.(check int) "one pair per bin" 4 (List.length l);
  Alcotest.(check int) "counts recoverable" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 l);
  let rendered = Format.asprintf "%a" Stats.Histogram.pp h in
  Alcotest.(check bool) "pp renders bars" true (String.length rendered > 0)

let test_quantile_count () =
  let q = Stats.Quantile.create () in
  List.iter (Stats.Quantile.add q) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check int) "count" 3 (Stats.Quantile.count q);
  check_float "median" 2.0 (Stats.Quantile.median q)

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_of_state_and_bool () =
  let r = Sim.Rng.create 42 in
  ignore (Sim.Rng.bits64 r);
  let resumed = Sim.Rng.of_state (Sim.Rng.state r) in
  Alcotest.(check bool) "of_state resumes the stream" true
    (Int64.equal (Sim.Rng.bits64 resumed) (Sim.Rng.bits64 r));
  let b1 = Sim.Rng.bool (Sim.Rng.create 7) in
  let b2 = Sim.Rng.bool (Sim.Rng.create 7) in
  Alcotest.(check bool) "bool is deterministic per seed" b1 b2

let test_scheduler_step () =
  let s = Sim.Scheduler.create () in
  Alcotest.(check bool) "empty queue is Done" true
    (Sim.Scheduler.step s infinity = `Done);
  let hits = ref 0 in
  let id = Sim.Scheduler.schedule_at s 1.0 (fun () -> incr hits) in
  ignore (Sim.Scheduler.schedule_at s 2.0 (fun () -> incr hits));
  Alcotest.(check bool) "beyond horizon is Done" true
    (Sim.Scheduler.step s 0.5 = `Done);
  Alcotest.(check bool) "first event fires" true
    (Sim.Scheduler.step s 10.0 = `Fired);
  Alcotest.(check int) "closure ran" 1 !hits;
  check_float "clock follows the event" 1.0 (Sim.Scheduler.now s);
  Sim.Scheduler.cancel s id;
  (* id already fired: cancel is a no-op, second event still fires *)
  Alcotest.(check bool) "second event fires" true
    (Sim.Scheduler.step s 10.0 = `Fired);
  let id3 = Sim.Scheduler.schedule_at s 3.0 (fun () -> incr hits) in
  Sim.Scheduler.cancel s id3;
  Alcotest.(check bool) "cancelled entry is Skipped" true
    (Sim.Scheduler.step s 10.0 = `Skipped)

(* ------------------------------------------------------------------ *)
(* Net                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_accessors () =
  let r = Net.Ring.create ~dummy:(-1) in
  Alcotest.(check bool) "fresh ring is empty" true (Net.Ring.is_empty r);
  Alcotest.(check (option int)) "peek empty" None (Net.Ring.peek r);
  Net.Ring.push r 1;
  Net.Ring.push r 2;
  Net.Ring.push r 3;
  Alcotest.(check bool) "non-empty" false (Net.Ring.is_empty r);
  Alcotest.(check (option int)) "peek is the front" (Some 1) (Net.Ring.peek r);
  let seen = ref [] in
  Net.Ring.iter r ~f:(fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter front to back" [ 1; 2; 3 ]
    (List.rev !seen);
  Net.Ring.clear r;
  Alcotest.(check bool) "cleared" true (Net.Ring.is_empty r);
  Alcotest.(check int) "cleared length" 0 (Net.Ring.length r)

let link_config ?(capacity = 20) ?(bw = 8e6) ?(delay = 0.01) () =
  {
    Net.Link.bandwidth_bps = bw;
    prop_delay = delay;
    queue = Net.Queue_disc.Droptail;
    capacity;
    phase_jitter = false;
  }

let test_topo_neighbors_degrees () =
  let t =
    Net.Topo.of_edges ~n:4
      [ (0, 1, link_config ()); (0, 2, link_config ()); (2, 3, link_config ()) ]
  in
  let nbrs = Net.Topo.neighbors t in
  let deg = Net.Topo.degrees t in
  Alcotest.(check int) "one adjacency row per node" 4 (Array.length nbrs);
  Alcotest.(check (list int)) "hub row" [ 1; 2 ] (List.sort compare nbrs.(0));
  Array.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "degree %d matches row" i)
        (List.length row) deg.(i))
    nbrs

let test_link_avg_queue () =
  let sched = Sim.Scheduler.create () in
  let make config =
    Net.Link.create ~sched
      ~rng:(Sim.Rng.create 1)
      ~pool:(Net.Packet.Pool.create ())
      ~id:"l" config
      ~deliver:(fun _ -> ())
  in
  let red =
    { (link_config ()) with
      Net.Link.queue =
        Net.Queue_disc.Red_gateway (Net.Red.default_params ~mean_pkt_time:0.001)
    }
  in
  check_float "idle RED link has empty average" 0.0
    (Net.Link.avg_queue (make red));
  Alcotest.(check bool) "drop-tail has no estimate" true
    (Float.is_nan (Net.Link.avg_queue (make (link_config ()))))

let test_network_rng_and_trace () =
  let net = Net.Network.create ~seed:1 () in
  let draw = Sim.Rng.uniform (Net.Network.rng net) in
  Alcotest.(check bool) "network rng draws in [0,1)" true
    (draw >= 0.0 && draw < 1.0);
  let tr = Net.Network.trace net in
  (* No sink installed yet: emits are disabled and dropped. *)
  Alcotest.(check bool) "trace starts with no sink" false (Sim.Trace.enabled tr);
  let sink, dump = Sim.Trace.memory_sink () in
  Sim.Trace.set_sink tr sink;
  Sim.Trace.emit tr ~time:0.0 ~level:Sim.Trace.Info ~component:"test" "hello";
  Alcotest.(check int) "network trace reaches the sink" 1 (List.length (dump ()))

(* ------------------------------------------------------------------ *)
(* Tcp                                                                *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_wire_block_to_string () =
  let s = Tcp.Wire.block_to_string { Tcp.Wire.block_lo = 3; block_hi = 7 } in
  Alcotest.(check bool) "mentions both bounds" true
    (contains ~sub:"3" s && contains ~sub:"7" s)

let build_pair ?(seed = 1) () =
  let net = Net.Network.create ~seed () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore (Net.Network.duplex net a b (link_config ~capacity:20 ~bw:8e6 ()));
  Net.Network.install_routes net;
  (net, a, b)

let test_tcp_sender_accessors () =
  let net, a, b = build_pair () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  check_float "initial ssthresh" 64.0 (Tcp.Sender.ssthresh tcp);
  Alcotest.(check bool) "starts outside recovery" false
    (Tcp.Sender.in_recovery tcp);
  Net.Network.run_until net 5.0;
  Alcotest.(check bool) "avg cwnd accumulates" true
    (Tcp.Sender.avg_cwnd tcp > 0.0)

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

let test_tcp_model_variants () =
  Alcotest.(check bool) "moderate congestion limit" true
    (Analysis.Tcp_model.moderate_congestion_limit = 0.05);
  Alcotest.(check bool) "default eps" true
    (Analysis.Tcp_model.default_domain_eps = 1e-9);
  (match Analysis.Tcp_model.pa_window_result 0.01 with
  | Ok w -> check_close "result agrees with pa_window"
      (Analysis.Tcp_model.pa_window 0.01) w
  | Error _ -> Alcotest.fail "p = 0.01 is in the domain");
  (match Analysis.Tcp_model.pa_window_result 0.0 with
  | Error Analysis.Tcp_model.Below_domain -> ()
  | _ -> Alcotest.fail "p = 0 must be Below_domain");
  (match Analysis.Tcp_model.pa_window_result 1.0 with
  | Error Analysis.Tcp_model.Above_domain -> ()
  | _ -> Alcotest.fail "p = 1 must be Above_domain");
  (match Analysis.Tcp_model.pa_window_result nan with
  | Error e ->
      Alcotest.(check bool) "error strings are distinct" true
        (Analysis.Tcp_model.domain_error_to_string e
        <> Analysis.Tcp_model.domain_error_to_string
             Analysis.Tcp_model.Below_domain)
  | Ok _ -> Alcotest.fail "NaN must be rejected");
  (* window_rate is zero exactly at the PA window. *)
  let p = 0.02 in
  let w = Analysis.Tcp_model.pa_window p in
  check_close ~tol:1e-9 "window_rate zero at PA window" 0.0
    (Analysis.Tcp_model.window_rate ~p ~rtt:0.1 w)

let test_rla_model_drift_and_common_sim () =
  let ps = Array.make 4 0.02 in
  let w = Analysis.Rla_model.pa_window_independent ~ps in
  check_close ~tol:1e-6 "drift zero at PA window" 0.0
    (Analysis.Rla_model.drift_independent ~ps w);
  Alcotest.(check bool) "drift positive below the PA window" true
    (Analysis.Rla_model.drift_independent ~ps (w /. 2.0) > 0.0);
  let n = 4 and p = 0.05 in
  let sim =
    Analysis.Rla_model.simulate_window_common ~rng:(Sim.Rng.create 11) ~n ~p
      ~steps:200_000
  in
  let predicted = Analysis.Rla_model.pa_window_common ~n ~p in
  Alcotest.(check bool)
    (Printf.sprintf "monte-carlo %.2f near drift zero %.2f" sim predicted)
    true
    (Float.abs (sim -. predicted) /. predicted < 0.25)

(* ------------------------------------------------------------------ *)
(* Core (RLA)                                                         *)
(* ------------------------------------------------------------------ *)

let star ?(leaves = 3) () =
  let net = Net.Network.create ~seed:1 () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaf_ids =
    List.init leaves (fun _ -> Net.Node.id (Net.Network.add_node net))
  in
  ignore (Net.Network.duplex net s hub (link_config ~bw:64e6 ()));
  List.iter
    (fun leaf -> ignore (Net.Network.duplex net hub leaf (link_config ())))
    leaf_ids;
  Net.Network.install_routes net;
  (net, s, leaf_ids)

let test_rla_sender_accessors () =
  let net, s, leaves = star () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Alcotest.(check bool) "group is a fresh multicast id" true
    (Rla.Sender.group rla >= 0);
  Alcotest.(check bool) "awnd starts at a sane window" true
    (Rla.Sender.awnd rla >= 1.0);
  Net.Network.run_until net 5.0;
  Alcotest.(check bool) "awnd stays positive" true (Rla.Sender.awnd rla > 0.0)

let test_rcv_state_last_signal () =
  let r =
    Rla.Rcv_state.create ~addr:1 ~params:Rla.Params.default ~session_start:0.0
      ()
  in
  let t0 = Rla.Rcv_state.last_signal r in
  Alcotest.(check bool) "no signal after creation" true (t0 <= 0.0)

(* ------------------------------------------------------------------ *)
(* Baselines                                                          *)
(* ------------------------------------------------------------------ *)

let test_rate_sender_accessors () =
  let net, s, leaves = star () in
  let ltrc = Baselines.Ltrc.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 10.0;
  Alcotest.(check bool) "flow id allocated" true
    (Baselines.Rate_sender.flow ltrc >= 0);
  Alcotest.(check bool) "avg rate accumulated" true
    (Baselines.Rate_sender.avg_rate ltrc > 0.0);
  let eps = Baselines.Rate_sender.endpoints ltrc in
  Alcotest.(check (list int)) "one endpoint per leaf, at the leaf" leaves
    (List.sort compare (List.map Baselines.Report_receiver.node_id eps))

let test_policy_constructors () =
  (match Baselines.Ltrc.policy ~loss_threshold:0.1 () with
  | Baselines.Rate_sender.Ltrc { loss_threshold; _ } ->
      check_float "ltrc threshold" 0.1 loss_threshold
  | _ -> Alcotest.fail "Ltrc.policy must build an Ltrc policy");
  (match Baselines.Rl_rate.policy () with
  | Baselines.Rate_sender.Random_listening { refractory; _ } ->
      check_float "rl default refractory" 1.0 refractory
  | _ -> Alcotest.fail "Rl_rate.policy must build Random_listening");
  let cfg =
    Baselines.Rate_sender.default_config (Baselines.Rl_rate.policy ())
  in
  Alcotest.(check bool) "default config rates ordered" true
    (cfg.Baselines.Rate_sender.min_rate <= cfg.Baselines.Rate_sender.max_rate)

(* ------------------------------------------------------------------ *)
(* Ckpt                                                               *)
(* ------------------------------------------------------------------ *)

let test_packet_codec_roundtrip () =
  let pool = Net.Packet.Pool.create () in
  let pkt =
    Net.Packet.Pool.acquire pool ~uid:42 ~flow:3 ~src:1
      ~dst:(Net.Packet.Multicast 7) ~size:1000 ~payload:Net.Packet.Raw
      ~born:1.25
  in
  let buf = Buffer.create 64 in
  Ckpt.State.w_packet buf pkt;
  let back = Ckpt.State.r_packet (Ckpt.Codec.reader (Buffer.contents buf)) in
  Alcotest.(check int) "uid round-trips" 42 back.Net.Packet.uid;
  Alcotest.(check int) "size round-trips" 1000 back.Net.Packet.size;
  Alcotest.(check bool) "dest round-trips" true
    (back.Net.Packet.dst = Net.Packet.Multicast 7);
  check_float "born round-trips" 1.25 back.Net.Packet.born

let test_sharing_ckpt_sections () =
  let names = Ckpt.Sharing_ckpt.section_names in
  List.iter
    (fun required ->
      Alcotest.(check bool)
        (Printf.sprintf "section %s listed" required)
        true
        (List.mem required names))
    [ "meta"; "config"; "scheduler"; "network" ]

(* ------------------------------------------------------------------ *)
(* Experiments                                                        *)
(* ------------------------------------------------------------------ *)

let test_churn_defaults () =
  let g = Experiments.Churn.default_gen in
  Alcotest.(check bool) "default gen rates positive" true
    (g.Experiments.Churn.outage_rate > 0.0
    && g.Experiments.Churn.churn_rate > 0.0
    && g.Experiments.Churn.flow_rate > 0.0);
  let c =
    Experiments.Churn.default_config ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all
  in
  Alcotest.(check bool) "default config uses the default script" true
    (c.Experiments.Churn.faults = Experiments.Churn.Default_script)

let test_sharded_topo_shape () =
  let cfg =
    { Experiments.Scaling.default_sharded_config with fanout = 2; depth = 2 }
  in
  let t = Experiments.Scaling.sharded_topo cfg in
  let deg = Net.Topo.degrees t in
  let nbrs = Net.Topo.neighbors t in
  Alcotest.(check bool) "non-trivial tree" true (Net.Topo.node_count t > 3);
  (* A topology is consistent when every degree matches its row. *)
  Array.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "node %d degree" i)
        (List.length row) deg.(i))
    nbrs

let test_short_flows_background_name () =
  let names =
    List.map Experiments.Short_flows.background_name
      [
        Experiments.Short_flows.Bg_none;
        Experiments.Short_flows.Bg_tcp;
        Experiments.Short_flows.Bg_rla;
        Experiments.Short_flows.Bg_cbr 500.0;
      ]
  in
  Alcotest.(check int) "distinct names" 4
    (List.length (List.sort_uniq compare names))

let test_timeseries_times () =
  let net = Net.Network.create ~seed:1 () in
  let ts =
    Experiments.Timeseries.create ~net ~interval:0.5
      ~probes:
        [ { Experiments.Timeseries.name = "now";
            read = (fun () -> Net.Network.now net) } ]
  in
  Net.Network.run_until net 2.0;
  let times = Experiments.Timeseries.times ts in
  Alcotest.(check int) "one timestamp per sample" (Experiments.Timeseries.length ts)
    (Array.length times);
  Alcotest.(check bool) "timestamps ascend" true
    (Array.for_all2 (fun a b -> a <= b) (Array.sub times 0 (Array.length times - 1))
       (Array.sub times 1 (Array.length times - 1)))

(* ------------------------------------------------------------------ *)
(* Adversary                                                          *)
(* ------------------------------------------------------------------ *)

let test_flood_accessors () =
  let net, a, b = build_pair () in
  let f = Tcp.Wire.rwnd_field_bits in
  Alcotest.(check bool) "rwnd field is a sane width" true (f > 0 && f < 16);
  let fl = Adversary.Flood.create ~net ~src:a ~dst:b ~rate:200.0 () in
  Alcotest.(check bool) "flow allocated" true (Adversary.Flood.flow fl >= 0);
  check_float "configured rate" 200.0 (Adversary.Flood.rate fl);
  Net.Network.run_until net 5.0;
  Adversary.Flood.stop fl;
  Net.Network.run_until net 6.0;
  let sent = Adversary.Flood.sent fl in
  Alcotest.(check bool)
    (Printf.sprintf "blasted at the configured rate (%d)" sent)
    true
    (sent >= 900 && sent <= 1100);
  Alcotest.(check bool) "deliveries counted at the sink" true
    (Adversary.Flood.delivered fl > 0 && Adversary.Flood.delivered fl <= sent);
  let frozen = Adversary.Flood.sent fl in
  Net.Network.run_until net 8.0;
  Alcotest.(check int) "stop freezes the blast" frozen
    (Adversary.Flood.sent fl)

let test_ackdiv_accessors () =
  let net, a, b = build_pair () in
  let d = Adversary.Ackdiv.create ~net ~src:a ~dst:b () in
  Alcotest.(check bool) "flow allocated" true (Adversary.Ackdiv.flow d >= 0);
  Net.Network.run_until net 10.0;
  Alcotest.(check bool) "window opened past slow start" true
    (Adversary.Ackdiv.cwnd d > 1.0);
  let sent = Adversary.Ackdiv.sent d in
  let delivered = Adversary.Ackdiv.delivered d in
  Alcotest.(check bool) "progress made" true (sent > 0 && delivered > 0);
  Alcotest.(check bool) "split acks: several per delivered packet" true
    (Adversary.Ackdiv.acks_sent d >= 2 * delivered);
  Alcotest.(check bool) "acks flowed back" true
    (Adversary.Ackdiv.acks_received d > 0);
  (* The inflated window overruns the 20-packet queue, so go-back-N
     timeouts do fire — they just must stay rare next to the sends. *)
  Alcotest.(check bool) "timeouts rare next to sends" true
    (Adversary.Ackdiv.timeouts d * 10 < sent);
  Adversary.Ackdiv.stop d;
  Net.Network.run_until net 11.0;
  let frozen = Adversary.Ackdiv.sent d in
  Net.Network.run_until net 13.0;
  Alcotest.(check int) "stop freezes the sender" frozen
    (Adversary.Ackdiv.sent d)

let test_optack_accessors () =
  let net, a, b = build_pair () in
  let flow = Net.Network.fresh_flow net in
  let opt = Adversary.Optack.hijack ~net ~node:b ~flow ~peer:a () in
  let send seq =
    Net.Network.send net
      (Net.Network.make_packet net ~flow ~src:a ~dst:(Net.Packet.Unicast b)
         ~size:1000
         ~payload:(Tcp.Wire.Tcp_data { seq; sent_at = Net.Network.now net }))
  in
  (* A gap at 1: the optimistic acker claims past it anyway. *)
  send 0;
  send 2;
  Net.Network.run_until net 1.0;
  Alcotest.(check int) "both arrivals counted" 2 (Adversary.Optack.received opt);
  Alcotest.(check int) "one ack per arrival" 2 (Adversary.Optack.acks_sent opt);
  Alcotest.(check int) "claims max_seen + 1, concealing the hole" 3
    (Adversary.Optack.claimed opt)

let test_hostile_names_and_job () =
  List.iter
    (fun mix ->
      let name = Experiments.Hostile.mix_name mix in
      Alcotest.(check bool)
        (Printf.sprintf "mix name %s round-trips" name)
        true
        (Experiments.Hostile.mix_of_string name = Some mix))
    Experiments.Hostile.all_mixes;
  Alcotest.(check bool) "unknown mix rejected" true
    (Experiments.Hostile.mix_of_string "nonsense" = None);
  let cfg =
    {
      (Experiments.Hostile.default_config ~mix:Experiments.Hostile.Honest) with
      Experiments.Hostile.topology =
        Experiments.Hostile.Kary { fanout = 2; depth = 2 };
      duration = 20.0;
      warmup = 5.0;
    }
  in
  Alcotest.(check bool) "topology name mentions the shape" true
    (contains ~sub:"2"
       (Experiments.Hostile.topology_name cfg.Experiments.Hostile.topology));
  let job = Experiments.Hostile.job ~label:"api" cfg in
  Alcotest.(check string) "job keeps its label" "api" (Runner.Job.label job);
  match Runner.Job.run job with
  | Some _net, by_job ->
      (* run_with_net exposes the network the pool's metric reads. *)
      let net, direct = Experiments.Hostile.run_with_net cfg in
      Alcotest.(check bool) "network ran to the horizon" true
        (Net.Network.now net >= 20.0);
      Alcotest.(check bool) "job and direct runs agree" true (by_job = direct);
      (* The blind injector's data counter (the rst mix covers the RST
         path): two spoofed segments, counted as sent. *)
      let inj = Adversary.Blind.create ~net ~src:0 () in
      let flow = Net.Network.fresh_flow net in
      Adversary.Blind.data inj ~flow ~dst:1 ~seq:1_000;
      Adversary.Blind.data inj ~flow ~dst:1 ~seq:2_000;
      Alcotest.(check int) "spoofed data counted" 2
        (Adversary.Blind.data_sent inj)
  | None, _ -> Alcotest.fail "hostile job must carry its network"

(* ------------------------------------------------------------------ *)
(* Faults                                                             *)
(* ------------------------------------------------------------------ *)

let test_timeline_merge_and_pp () =
  let a = Faults.Timeline.scripted [ (1.0, Faults.Timeline.Receiver_leave 1) ] in
  let b =
    Faults.Timeline.scripted
      [ (0.5, Faults.Timeline.Link_down (0, 1));
        (2.0, Faults.Timeline.Receiver_join 1) ]
  in
  let m = Faults.Timeline.merge a b in
  Alcotest.(check int) "merge keeps every entry" 3 (Faults.Timeline.length m);
  (match Faults.Timeline.entries m with
  | first :: _ -> check_float "merge sorts by time" 0.5 first.Faults.Timeline.time
  | [] -> Alcotest.fail "merge lost all entries");
  let entry = List.hd (Faults.Timeline.entries m) in
  let s1 = Format.asprintf "%a" Faults.Timeline.pp_entry entry in
  let s2 = Format.asprintf "%a" Faults.Timeline.pp_event entry.Faults.Timeline.event in
  Alcotest.(check bool) "pp_entry embeds pp_event" true
    (String.length s1 > String.length s2 && contains ~sub:s2 s1)

let test_injector_null_handlers_and_timeline () =
  let h = Faults.Injector.null_handlers in
  Alcotest.(check bool) "leave refused" false (h.Faults.Injector.on_receiver_leave 1);
  Alcotest.(check bool) "join refused" false (h.Faults.Injector.on_receiver_join 1);
  Alcotest.(check bool) "flow start refused" false
    (h.Faults.Injector.on_flow_start ~id:1 ~dst:2);
  Alcotest.(check bool) "flow stop refused" false (h.Faults.Injector.on_flow_stop ~id:1);
  Alcotest.(check int) "no members" 0 (h.Faults.Injector.membership ());
  let net, _, _ = build_pair () in
  let tl = Faults.Timeline.scripted [ (1.0, Faults.Timeline.Link_down (0, 1)) ] in
  let inj = Faults.Injector.install ~net tl in
  Alcotest.(check bool) "installed timeline is retrievable" true
    (Faults.Timeline.entries (Faults.Injector.timeline inj)
    = Faults.Timeline.entries tl)

(* ------------------------------------------------------------------ *)
(* Meanfield                                                          *)
(* ------------------------------------------------------------------ *)

let test_dist_center () =
  check_float "bin center" 1.75 (Meanfield.Dist.center ~h:0.5 3);
  check_float "first bin center" 0.25 (Meanfield.Dist.center ~h:0.5 0)

let test_params_accessors () =
  let p =
    Meanfield.Params.make ~capacity:1000.0
      ~rla:{ Meanfield.Params.receivers = 8; rtt = 0.2 }
      [ { Meanfield.Params.flows = 4; rtt = 0.1 } ]
  in
  Alcotest.(check int) "total flows count the RLA session" 5
    (Meanfield.Params.total_flows p);
  check_float "min rtt" 0.1 (Meanfield.Params.min_rtt p);
  check_float "max rtt" 0.2 (Meanfield.Params.max_rtt p);
  check_float "default RED min_th" 5.0 Meanfield.Params.default_red.Meanfield.Params.min_th

let test_regime_default_axes () =
  Alcotest.(check bool) "grid covers the default axes" true
    (List.length (Meanfield.Regime.default_grid ())
    = List.length Meanfield.Regime.default_w_qs
      * List.length Meanfield.Regime.default_max_ps
      * List.length Meanfield.Regime.default_ns)

let test_trajectory_accessors () =
  let t = Meanfield.Trajectory.create () in
  Meanfield.Trajectory.push t ~time:0.0 ~queue:1.0 ~avg:0.5 ~drop:0.01
    ~lambda:100.0 ~rla_w:4.0;
  Meanfield.Trajectory.push t ~time:1.0 ~queue:2.0 ~avg:1.5 ~drop:0.02
    ~lambda:120.0 ~rla_w:5.0;
  check_float "queue sample" 2.0 (Meanfield.Trajectory.queue t 1);
  check_float "avg sample" 1.5 (Meanfield.Trajectory.avg t 1);
  check_float "drop sample" 0.01 (Meanfield.Trajectory.drop t 0);
  let csv = Format.asprintf "%a" Meanfield.Trajectory.pp_csv t in
  Alcotest.(check bool) "csv has a header and two rows" true
    (List.length (String.split_on_char '\n' (String.trim csv)) = 3)

(* ------------------------------------------------------------------ *)
(* Obs / Par / Runner                                                 *)
(* ------------------------------------------------------------------ *)

let test_registry_gauge_name () =
  let r = Obs.Registry.create () in
  let g = Obs.Registry.gauge r "queue.depth" in
  Alcotest.(check string) "gauge keeps its name" "queue.depth"
    (Obs.Registry.gauge_name g)

let test_engine_now () =
  let t =
    Net.Topo.of_edges ~n:2 [ (0, 1, link_config ~bw:8e6 ~delay:0.1 ()) ]
  in
  let partition = Par.Partition.kruskal t ~parts:2 in
  match Par.Engine.create ~topo:t ~partition ~seed:1 () with
  | Error _ -> Alcotest.fail "two-shard engine must build"
  | Ok eng ->
      check_float "fresh engine at time zero" 0.0 (Par.Engine.now eng)

let test_runner_pps () =
  let json =
    Runner.Json.Obj [ ("a", Runner.Json.Int 1); ("b", Runner.Json.Bool true) ]
  in
  Alcotest.(check string) "Json.pp matches to_string"
    (Runner.Json.to_string json)
    (Format.asprintf "%a" Runner.Json.pp json);
  let rendered = Format.asprintf "%a" Runner.Metrics.pp Runner.Metrics.zero in
  Alcotest.(check bool) "Metrics.pp renders the zero record" true
    (String.length rendered > 0)

let test_report_series_csv () =
  let r = Obs.Registry.create () in
  let s = Obs.Registry.series r "cwnd" in
  Obs.Series.add s ~time:0.0 1.0;
  Obs.Series.add s ~time:1.0 2.0;
  let csv = Format.asprintf "%a" Runner.Report.series_csv [ s ] in
  Alcotest.(check bool) "one row per sample" true
    (contains ~sub:"cwnd,0" csv && contains ~sub:"cwnd,1" csv)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "api_surface"
    [
      ( "stats",
        [
          Alcotest.test_case "welford stddev" `Quick test_welford_stddev;
          Alcotest.test_case "counter capture/restore" `Quick
            test_counter_capture_restore;
          Alcotest.test_case "density cells" `Quick test_density_cells;
          Alcotest.test_case "histogram bins" `Quick test_histogram_bins;
          Alcotest.test_case "quantile count" `Quick test_quantile_count;
        ] );
      ( "sim",
        [
          Alcotest.test_case "rng of_state/bool" `Quick
            test_rng_of_state_and_bool;
          Alcotest.test_case "scheduler step" `Quick test_scheduler_step;
        ] );
      ( "net",
        [
          Alcotest.test_case "ring accessors" `Quick test_ring_accessors;
          Alcotest.test_case "topo neighbors/degrees" `Quick
            test_topo_neighbors_degrees;
          Alcotest.test_case "link avg_queue" `Quick test_link_avg_queue;
          Alcotest.test_case "network rng/trace" `Quick
            test_network_rng_and_trace;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "wire block_to_string" `Quick
            test_wire_block_to_string;
          Alcotest.test_case "sender accessors" `Quick
            test_tcp_sender_accessors;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "tcp model variants" `Quick
            test_tcp_model_variants;
          Alcotest.test_case "rla model drift/common sim" `Quick
            test_rla_model_drift_and_common_sim;
        ] );
      ( "core",
        [
          Alcotest.test_case "rla sender accessors" `Quick
            test_rla_sender_accessors;
          Alcotest.test_case "rcv_state last_signal" `Quick
            test_rcv_state_last_signal;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "rate sender accessors" `Quick
            test_rate_sender_accessors;
          Alcotest.test_case "policy constructors" `Quick
            test_policy_constructors;
        ] );
      ( "ckpt",
        [
          Alcotest.test_case "packet codec roundtrip" `Quick
            test_packet_codec_roundtrip;
          Alcotest.test_case "sharing sections" `Quick
            test_sharing_ckpt_sections;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "churn defaults" `Quick test_churn_defaults;
          Alcotest.test_case "sharded topo shape" `Quick
            test_sharded_topo_shape;
          Alcotest.test_case "short-flow background names" `Quick
            test_short_flows_background_name;
          Alcotest.test_case "timeseries times" `Quick test_timeseries_times;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "flood accessors" `Quick test_flood_accessors;
          Alcotest.test_case "ackdiv accessors" `Quick test_ackdiv_accessors;
          Alcotest.test_case "optack accessors" `Quick test_optack_accessors;
          Alcotest.test_case "hostile names and job" `Quick
            test_hostile_names_and_job;
        ] );
      ( "faults",
        [
          Alcotest.test_case "timeline merge/pp" `Quick
            test_timeline_merge_and_pp;
          Alcotest.test_case "injector null handlers" `Quick
            test_injector_null_handlers_and_timeline;
        ] );
      ( "meanfield",
        [
          Alcotest.test_case "dist center" `Quick test_dist_center;
          Alcotest.test_case "params accessors" `Quick test_params_accessors;
          Alcotest.test_case "regime default axes" `Quick
            test_regime_default_axes;
          Alcotest.test_case "trajectory accessors" `Quick
            test_trajectory_accessors;
        ] );
      ( "obs-par-runner",
        [
          Alcotest.test_case "registry gauge_name" `Quick
            test_registry_gauge_name;
          Alcotest.test_case "engine now" `Quick test_engine_now;
          Alcotest.test_case "runner pps" `Quick test_runner_pps;
          Alcotest.test_case "report series_csv" `Quick
            test_report_series_csv;
        ] );
    ]
