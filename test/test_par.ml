(* Tests for the parallel-DES sharding stack: the topology generators
   (Net.Topo), the Kruskal partitioner (Par.Partition), the
   conservative barrier-round engine (Par.Engine) and the end-to-end
   sharded RLA scenario (Par.Scenario).

   The load-bearing property is byte-identity: every deterministic
   output of a sharded run (fairness table, merged registry JSON,
   merged trace CSV) must be byte-for-byte the same for any worker
   count, because the shard structure is fixed by the partition and
   cross-shard messages merge in an explicit (arrival, source shard,
   sequence) order that no domain interleaving can perturb. *)

let cfg ?(bw = 1.6e6) ?(queue = Net.Queue_disc.Droptail) ?(capacity = 20) delay
    =
  {
    Net.Link.bandwidth_bps = bw;
    prop_delay = delay;
    queue;
    capacity;
    phase_jitter = false;
  }

let test_cfgs = [| cfg 0.01; cfg 0.02; cfg 0.05 |]

(* ------------------------------------------------------------------ *)
(* Net.Topo generators                                                *)
(* ------------------------------------------------------------------ *)

let prop_kary_shape =
  QCheck.Test.make ~name:"kary trees have the closed-form shape" ~count:30
    QCheck.(pair (int_range 2 4) (int_range 0 3))
    (fun (fanout, depth) ->
      let t = Net.Topo.kary ~fanout ~depth ~configs:test_cfgs in
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      let nodes = (pow fanout (depth + 1) - 1) / (fanout - 1) in
      Net.Topo.node_count t = nodes
      && Net.Topo.edge_count t = nodes - 1
      && Net.Topo.connected t
      && List.for_all (fun e -> e.Net.Topo.u <> e.Net.Topo.v) t.Net.Topo.edges
      && (* every non-root node hangs off its level-order parent *)
      List.for_all
        (fun e -> e.Net.Topo.u = (e.Net.Topo.v - 1) / fanout)
        t.Net.Topo.edges)

let test_fat_tree_shape () =
  List.iter
    (fun k ->
      let t = Net.Topo.fat_tree ~k ~configs:test_cfgs in
      let nodes = (k * k / 4) + (k * k) + (k * k * k / 4) in
      let edges = 3 * k * k * k / 4 in
      Alcotest.(check int) "node count" nodes (Net.Topo.node_count t);
      Alcotest.(check int) "edge count" edges (Net.Topo.edge_count t);
      Alcotest.(check bool) "connected" true (Net.Topo.connected t);
      Alcotest.(check bool) "no self loops" true
        (List.for_all
           (fun e -> e.Net.Topo.u <> e.Net.Topo.v)
           t.Net.Topo.edges))
    [ 2; 4 ]

let prop_random_graph_sound =
  QCheck.Test.make ~name:"random graphs are connected, clean and seeded"
    ~count:50
    QCheck.(triple (int_range 1 1000) (int_range 2 30) (int_range 0 10))
    (fun (seed, n, extra) ->
      let t = Net.Topo.random_graph ~seed ~n ~extra ~configs:test_cfgs in
      let key e = (min e.Net.Topo.u e.Net.Topo.v, max e.Net.Topo.u e.Net.Topo.v) in
      let keys = List.map key t.Net.Topo.edges in
      Net.Topo.node_count t = n
      && Net.Topo.connected t
      && Net.Topo.edge_count t >= n - 1
      && Net.Topo.edge_count t <= n - 1 + extra
      && List.for_all (fun e -> e.Net.Topo.u <> e.Net.Topo.v) t.Net.Topo.edges
      && List.length (List.sort_uniq compare keys) = List.length keys
      && (* byte-level reproducibility from the seed *)
      Net.Topo.random_graph ~seed ~n ~extra ~configs:test_cfgs = t)

let test_of_edges_validation () =
  let reject name spec =
    Alcotest.(check bool) name true
      (try
         ignore (Net.Topo.of_edges ~n:3 spec);
         false
       with Invalid_argument _ -> true)
  in
  reject "self loop" [ (1, 1, cfg 0.01) ];
  reject "out of range" [ (0, 3, cfg 0.01) ];
  reject "duplicate (reversed)" [ (0, 1, cfg 0.01); (1, 0, cfg 0.02) ]

let test_tree_path () =
  (* fanout-2 depth-2: root 0, children 1 2, leaves 3 4 (under 1) and
     5 6 (under 2). *)
  let t = Net.Topo.kary ~fanout:2 ~depth:2 ~configs:test_cfgs in
  let parents = Net.Topo.bfs_parents t ~root:0 in
  let check_path name expect a b =
    Alcotest.(check (list int)) name expect (Net.Topo.tree_path ~parents a b)
  in
  check_path "across the root" [ 3; 1; 0; 2; 5 ] 3 5;
  check_path "siblings" [ 3; 1; 4 ] 3 4;
  check_path "root to leaf" [ 0; 2; 6 ] 0 6;
  check_path "self" [ 3 ] 3 3;
  Alcotest.(check (list int))
    "leaves ascending" [ 3; 4; 5; 6 ] (Net.Topo.leaves t)

(* ------------------------------------------------------------------ *)
(* Partitioner invariants                                             *)
(* ------------------------------------------------------------------ *)

let prop_partition_invariants =
  QCheck.Test.make ~name:"every node in exactly one shard; cut exact"
    ~count:50
    QCheck.(triple (int_range 1 1000) (int_range 2 30) (int_range 0 8))
    (fun (seed, n, extra) ->
      let t = Net.Topo.random_graph ~seed ~n ~extra ~configs:test_cfgs in
      let parts = 1 + (seed mod n) in
      let p = Net.Topo.node_count t |> fun _ -> Par.Partition.kruskal t ~parts in
      let owner = p.Par.Partition.owner in
      (* connected input: the requested count is achieved exactly *)
      p.Par.Partition.parts = parts
      && Array.length owner = n
      && Array.for_all (fun o -> o >= 0 && o < parts) owner
      && (* members arrays partition 0..n-1 and agree with owner *)
      List.sort_uniq compare
        (List.concat (Array.to_list p.Par.Partition.members))
      = List.init n (fun i -> i)
      && Array.for_all (fun b -> b)
           (Array.mapi
              (fun i ms -> List.for_all (fun v -> owner.(v) = i) ms)
              p.Par.Partition.members)
      && (* the cut is exactly the crossing edges, in topo edge order *)
      p.Par.Partition.cut
      = List.filter
          (fun e -> owner.(e.Net.Topo.u) <> owner.(e.Net.Topo.v))
          t.Net.Topo.edges)

let test_partition_cuts_slow_links () =
  (* kary fanout-4 depth-2 with slow root links (20 ms) and fast
     second-level links (5 ms): asking for fanout+1 parts must cut
     exactly the four root links — Kruskal merges cheap links first,
     so the cut that remains is the high-latency one we want crossing
     shards (it maximizes the lookahead). *)
  let t =
    Net.Topo.kary ~fanout:4 ~depth:2 ~configs:[| cfg 0.02; cfg 0.005 |]
  in
  let p = Par.Partition.kruskal t ~parts:5 in
  Alcotest.(check int) "five parts" 5 p.Par.Partition.parts;
  Alcotest.(check int) "four cut edges" 4 (List.length p.Par.Partition.cut);
  Alcotest.(check bool) "all cut edges are root links" true
    (List.for_all (fun e -> e.Net.Topo.u = 0) p.Par.Partition.cut);
  Alcotest.(check bool) "root is alone in its shard" true
    (p.Par.Partition.members.(0) = [ 0 ])

let test_partition_validation () =
  let t = Net.Topo.kary ~fanout:2 ~depth:1 ~configs:test_cfgs in
  List.iter
    (fun parts ->
      Alcotest.(check bool)
        (Printf.sprintf "parts=%d rejected" parts)
        true
        (try
           ignore (Par.Partition.kruskal t ~parts);
           false
         with Invalid_argument _ -> true))
    [ 0; 4 ]

(* ------------------------------------------------------------------ *)
(* Engine: lookahead edges                                            *)
(* ------------------------------------------------------------------ *)

let two_node_engine ~delay =
  let t = Net.Topo.of_edges ~n:2 [ (0, 1, cfg ~bw:8e6 delay) ] in
  let partition = Par.Partition.kruskal t ~parts:2 in
  Par.Engine.create ~topo:t ~partition ~seed:1 ()

let test_zero_delay_cut_rejected () =
  match two_node_engine ~delay:0.0 with
  | Error (Par.Engine.Zero_delay_cut { u; v }) ->
      Alcotest.(check (pair int int)) "offending edge" (0, 1) (u, v)
  | Ok _ -> Alcotest.fail "zero-delay cut accepted"

(* Send one 1000-byte packet (1 ms serialization at 8 Mb/s) across the
   0.1 s cut link at [send_at]; return (completed rounds when the
   packet reached node 1, arrival time). *)
let cross_shard_probe ~send_at =
  match two_node_engine ~delay:0.1 with
  | Error _ -> Alcotest.fail "positive-delay engine rejected"
  | Ok eng ->
      Par.Engine.install_route eng ~at:0 ~dest:1 ~next:1;
      let net0 = Par.Engine.shard_net eng 0 in
      let net1 = Par.Engine.shard_net eng 1 in
      let flow = Net.Network.fresh_flow net0 in
      let fired = ref None in
      Net.Node.attach (Net.Network.node net1 1) ~flow (fun _pkt ->
          fired := Some (Par.Engine.rounds eng, Net.Network.now net1));
      ignore
        (Sim.Scheduler.schedule_at
           (Net.Network.scheduler net0)
           send_at
           (fun () ->
             let pkt =
               Net.Network.make_packet net0 ~flow ~src:0
                 ~dst:(Net.Packet.Unicast 1) ~size:1000
                 ~payload:Net.Packet.Raw
             in
             Net.Network.send net0 pkt));
      Par.Engine.run eng ~until:0.4 ~workers:1;
      Alcotest.(check (float 0.0))
        "lookahead is the cut delay" 0.1 (Par.Engine.lookahead eng);
      match !fired with
      | None -> Alcotest.fail "packet never crossed the shard boundary"
      | Some x -> x

let test_lookahead_interior_round () =
  (* Sent at 0.05, serialized at 0.051, arrives 0.151: produced in
     round 1 (horizon 0.1), exchanged at the barrier, fired during
     round 2 — i.e. with exactly 1 completed round. *)
  let rounds, at = cross_shard_probe ~send_at:0.05 in
  Alcotest.(check int) "fired during the second round" 1 rounds;
  Alcotest.(check (float 1e-12)) "arrival stamp" 0.151 at

let test_lookahead_horizon_edge () =
  (* Sent at 0.099: serialization ends at exactly the first horizon
     (0.1, inclusive — still round 1) and the arrival lands at exactly
     the second horizon (0.2).  The horizon is inclusive on both
     counts, so the delivery fires during round 2, not round 3. *)
  let rounds, at = cross_shard_probe ~send_at:0.099 in
  Alcotest.(check int) "fired during the second round" 1 rounds;
  Alcotest.(check (float 0.0)) "arrival exactly on the horizon" 0.2 at

(* ------------------------------------------------------------------ *)
(* Scenario: cross-shard determinism                                  *)
(* ------------------------------------------------------------------ *)

let scenario_outputs config =
  match Par.Scenario.run config with
  | Error e -> Alcotest.fail (Par.Scenario.error_to_string e)
  | Ok r ->
      ( r.Par.Scenario.fairness_table,
        r.Par.Scenario.registry_json,
        r.Par.Scenario.trace_csv )

let random_scenario_config ~seed ~n ~parts ~workers =
  let topo = Net.Topo.random_graph ~seed ~n ~extra:3 ~configs:test_cfgs in
  let receivers =
    match List.filter (fun v -> v <> 0) (Net.Topo.leaves topo) with
    | [] -> [ n - 1 ]
    | ls -> ls
  in
  {
    Par.Scenario.topo;
    parts;
    src = 0;
    receivers;
    tcp_pairs = [];
    workers;
    duration = 2.0;
    warmup = 0.5;
    seed;
    rla_params = Rla.Params.default;
    with_registry = true;
  }

let prop_workers_invariant =
  QCheck.Test.make
    ~name:"trace CSV, registry JSON, fairness table byte-identical for \
           shards in {1,2,4,8} workers"
    ~count:3
    QCheck.(pair (int_range 1 1000) (int_range 6 12))
    (fun (seed, n) ->
      let parts = 2 + (seed mod 3) in
      let run workers =
        scenario_outputs (random_scenario_config ~seed ~n ~parts ~workers)
      in
      let reference = run 1 in
      List.for_all (fun w -> run w = reference) [ 2; 4; 8 ])

let figure6_config ~workers =
  (* The paper's figure-6 tree rebuilt as a Topo: fanout-3 depth-3,
     5 ms interior links, 100 ms bottleneck leaf links.  28 parts cuts
     exactly the 27 leaf links (each leaf becomes its own shard), so
     every receiver talks to the source across a shard boundary. *)
  let topo =
    Net.Topo.kary ~fanout:3 ~depth:3
      ~configs:[| cfg ~bw:100e6 0.005; cfg ~bw:100e6 0.005; cfg 0.1 |]
  in
  {
    Par.Scenario.topo;
    parts = 28;
    src = 0;
    receivers = Net.Topo.leaves topo;
    tcp_pairs = [ (0, 1) ];
    workers;
    duration = 6.0;
    warmup = 1.5;
    seed = 7;
    rla_params = Rla.Params.default;
    with_registry = true;
  }

let test_figure6_golden () =
  let sequential = scenario_outputs (figure6_config ~workers:1) in
  List.iter
    (fun workers ->
      let sharded = scenario_outputs (figure6_config ~workers) in
      let name part =
        Printf.sprintf "%s identical at %d workers" part workers
      in
      let (t1, r1, c1) = sequential and (t2, r2, c2) = sharded in
      Alcotest.(check string) (name "fairness table") t1 t2;
      Alcotest.(check string) (name "registry JSON") r1 r2;
      Alcotest.(check string) (name "trace CSV") c1 c2)
    [ 2; 8 ];
  (* and the sequential reference itself carries real content *)
  let table, registry, csv = sequential in
  Alcotest.(check bool) "28 shards in the table" true
    (let sub = "28 shards" in
     let rec find i =
       i + String.length sub <= String.length table
       && (String.sub table i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  Alcotest.(check bool) "registry JSON has all shards" true
    (String.length registry > 1000);
  Alcotest.(check bool) "trace CSV has samples" true
    (String.length csv > 100)

let test_checkpoint_rejected () =
  match
    Par.Scenario.run
      ~checkpoint:(1.0, "/tmp/nope")
      (figure6_config ~workers:1)
  with
  | Error Par.Scenario.Checkpoint_unsupported -> ()
  | Error e ->
      Alcotest.fail ("wrong error: " ^ Par.Scenario.error_to_string e)
  | Ok _ -> Alcotest.fail "checkpointed sharded run accepted"

let test_cross_shard_tcp_rejected () =
  let topo = Net.Topo.of_edges ~n:2 [ (0, 1, cfg 0.1) ] in
  let config =
    {
      Par.Scenario.topo;
      parts = 2;
      src = 0;
      receivers = [ 1 ];
      tcp_pairs = [ (0, 1) ];
      workers = 1;
      duration = 1.0;
      warmup = 0.0;
      seed = 1;
      rla_params = Rla.Params.default;
      with_registry = false;
    }
  in
  match Par.Scenario.run config with
  | Error (Par.Scenario.Cross_shard_tcp (0, 1)) -> ()
  | Error e ->
      Alcotest.fail ("wrong error: " ^ Par.Scenario.error_to_string e)
  | Ok _ -> Alcotest.fail "cross-shard TCP accepted"

let test_bad_config_rejected () =
  let base = figure6_config ~workers:1 in
  let bad name config =
    match Par.Scenario.run config with
    | Error (Par.Scenario.Bad_config _) -> ()
    | Error e ->
        Alcotest.fail
          (name ^ ": wrong error: " ^ Par.Scenario.error_to_string e)
    | Ok _ -> Alcotest.fail (name ^ ": accepted")
  in
  bad "zero duration" { base with Par.Scenario.duration = 0.0 };
  bad "warmup past duration" { base with Par.Scenario.warmup = 7.0 };
  bad "no receivers" { base with Par.Scenario.receivers = [] };
  bad "src as receiver" { base with Par.Scenario.receivers = [ 0 ] };
  bad "zero workers" { base with Par.Scenario.workers = 0 }

let test_scenario_zero_delay_cut () =
  let topo = Net.Topo.of_edges ~n:2 [ (0, 1, cfg 0.0) ] in
  let config =
    { (figure6_config ~workers:1) with Par.Scenario.topo; parts = 2;
      receivers = [ 1 ]; tcp_pairs = [] }
  in
  match Par.Scenario.run config with
  | Error (Par.Scenario.Zero_delay_cut (0, 1)) -> ()
  | Error e ->
      Alcotest.fail ("wrong error: " ^ Par.Scenario.error_to_string e)
  | Ok _ -> Alcotest.fail "zero-delay cut accepted"

(* ------------------------------------------------------------------ *)
(* Runner.Pool wall-clock waiver scope                                *)
(* ------------------------------------------------------------------ *)

(* Runner.Pool carries the repo's only wall-clock lint waiver
   (Unix.gettimeofday for job metrics).  That waiver must never leak
   into anything ordering-relevant: lib/par does not read wall time at
   all (the lint's All-scope wall-clock rule covers it), and a pooled
   run's deterministic report rows must be byte-identical across
   repeated runs even though the measured metrics legitimately vary.
   This is the --deterministic scrub: substitute Metrics.zero before
   rendering. *)
let test_pool_metrics_outside_determinism () =
  let base =
    Experiments.Sharing.default_config ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all
  in
  let config =
    { base with Experiments.Sharing.duration = 12.0; warmup = 3.0 }
  in
  let jobs () =
    [
      Experiments.Sharing.job ~label:"a" config;
      Experiments.Sharing.job ~label:"b"
        { config with Experiments.Sharing.seed = 2 };
    ]
  in
  let payload (o : Experiments.Sharing.result Runner.Pool.outcome) =
    let r = o.Runner.Pool.value in
    [
      ("ratio", Runner.Json.Float r.Experiments.Sharing.ratio);
      ("fair", Runner.Json.Bool r.Experiments.Sharing.essentially_fair);
      ( "rla_send",
        Runner.Json.Float r.Experiments.Sharing.rla.Rla.Sender.send_rate );
    ]
  in
  let deterministic_rows outcomes =
    List.map
      (fun o ->
        Runner.Json.to_string
          (Runner.Report.run_row_json payload
             { o with Runner.Pool.metrics = Runner.Metrics.zero }))
      outcomes
  in
  let first = Runner.Pool.run ~jobs:2 (jobs ()) in
  let second = Runner.Pool.run ~jobs:2 (jobs ()) in
  Alcotest.(check (list string))
    "scrubbed report rows byte-identical across runs"
    (deterministic_rows first) (deterministic_rows second);
  List.iter
    (fun (o : _ Runner.Pool.outcome) ->
      Alcotest.(check bool) "wall clock metrics are sane" true
        (o.Runner.Pool.metrics.Runner.Metrics.wall_s >= 0.0))
    (first @ second)

let () =
  Alcotest.run "par"
    [
      ( "topo",
        [
          QCheck_alcotest.to_alcotest prop_kary_shape;
          Alcotest.test_case "fat-tree shape" `Quick test_fat_tree_shape;
          QCheck_alcotest.to_alcotest prop_random_graph_sound;
          Alcotest.test_case "of_edges validation" `Quick
            test_of_edges_validation;
          Alcotest.test_case "tree paths" `Quick test_tree_path;
        ] );
      ( "partition",
        [
          QCheck_alcotest.to_alcotest prop_partition_invariants;
          Alcotest.test_case "cuts the slow links" `Quick
            test_partition_cuts_slow_links;
          Alcotest.test_case "part count validated" `Quick
            test_partition_validation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "zero-delay cut rejected" `Quick
            test_zero_delay_cut_rejected;
          Alcotest.test_case "interior-round delivery" `Quick
            test_lookahead_interior_round;
          Alcotest.test_case "horizon-edge delivery" `Quick
            test_lookahead_horizon_edge;
        ] );
      ( "scenario",
        [
          QCheck_alcotest.to_alcotest prop_workers_invariant;
          Alcotest.test_case "figure-6 golden byte-compare" `Quick
            test_figure6_golden;
          Alcotest.test_case "checkpoint rejected" `Quick
            test_checkpoint_rejected;
          Alcotest.test_case "cross-shard TCP rejected" `Quick
            test_cross_shard_tcp_rejected;
          Alcotest.test_case "bad configs rejected" `Quick
            test_bad_config_rejected;
          Alcotest.test_case "zero-delay cut surfaces" `Quick
            test_scenario_zero_delay_cut;
        ] );
      ( "pool",
        [
          Alcotest.test_case "metrics outside the deterministic report"
            `Quick test_pool_metrics_outside_determinism;
        ] );
    ]
