(* Tests for the TCP SACK implementation: RTO estimator, scoreboard,
   receiver SACK generation, and sender behaviour on small networks. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rto                                                                *)
(* ------------------------------------------------------------------ *)

let test_rto_before_samples () =
  let r = Tcp.Rto.create () in
  Alcotest.(check bool) "no sample" false (Tcp.Rto.has_sample r);
  check_float "conservative initial" 3.0 (Tcp.Rto.timeout r)

let test_rto_first_sample () =
  let r = Tcp.Rto.create ~min_rto:0.0 () in
  Tcp.Rto.sample r 0.5;
  check_float "srtt = first" 0.5 (Tcp.Rto.srtt r);
  check_float "rttvar = half" 0.25 (Tcp.Rto.rttvar r);
  check_float "timeout" 1.5 (Tcp.Rto.timeout r)

let test_rto_smoothing () =
  let r = Tcp.Rto.create ~min_rto:0.0 () in
  Tcp.Rto.sample r 1.0;
  Tcp.Rto.sample r 1.0;
  Tcp.Rto.sample r 1.0;
  check_float "stable srtt" 1.0 (Tcp.Rto.srtt r);
  Alcotest.(check bool) "rttvar shrinks" true (Tcp.Rto.rttvar r < 0.5)

let test_rto_min_clamp () =
  let r = Tcp.Rto.create ~min_rto:1.0 () in
  for _ = 1 to 50 do
    Tcp.Rto.sample r 0.01
  done;
  check_float "clamped to min" 1.0 (Tcp.Rto.timeout r)

let test_rto_backoff () =
  let r = Tcp.Rto.create ~min_rto:1.0 () in
  Tcp.Rto.sample r 0.1;
  Tcp.Rto.backoff r;
  check_float "doubled" 2.0 (Tcp.Rto.timeout r);
  Tcp.Rto.backoff r;
  check_float "doubled again" 4.0 (Tcp.Rto.timeout r);
  Tcp.Rto.sample r 0.1;
  check_float "sample resets backoff" 1.0 (Tcp.Rto.timeout r)

let test_rto_max_clamp () =
  let r = Tcp.Rto.create ~min_rto:1.0 ~max_rto:8.0 () in
  Tcp.Rto.sample r 0.1;
  for _ = 1 to 10 do
    Tcp.Rto.backoff r
  done;
  check_float "capped at max" 8.0 (Tcp.Rto.timeout r)

let test_rto_karn () =
  let r = Tcp.Rto.create ~min_rto:1.0 () in
  Tcp.Rto.sample r 0.1;
  Tcp.Rto.backoff r;
  Tcp.Rto.backoff r;
  check_float "backed off" 4.0 (Tcp.Rto.timeout r);
  (* Karn's algorithm: an ambiguous sample (taken over a retransmitted
     range) must neither update the estimator nor relax the backoff. *)
  Tcp.Rto.sample ~rexmitted:true r 9.0;
  check_float "srtt untouched" 0.1 (Tcp.Rto.srtt r);
  check_float "backoff kept" 4.0 (Tcp.Rto.timeout r);
  Tcp.Rto.sample ~rexmitted:false r 0.1;
  check_float "clean sample resets" 1.0 (Tcp.Rto.timeout r)

let test_rto_at_max_freezes () =
  let r = Tcp.Rto.create ~min_rto:1.0 ~max_rto:8.0 () in
  Tcp.Rto.sample r 0.1;
  Alcotest.(check bool) "not at max" false (Tcp.Rto.at_max r);
  for _ = 1 to 3 do
    Tcp.Rto.backoff r
  done;
  Alcotest.(check bool) "at max" true (Tcp.Rto.at_max r);
  let shift_before = (Tcp.Rto.capture r).Tcp.Rto.s_shift in
  (* The shift freezes at the ceiling: further backoffs are no-ops, so
     the exponent can never overflow however long the outage lasts. *)
  for _ = 1 to 100 do
    Tcp.Rto.backoff r
  done;
  Alcotest.(check int) "shift frozen" shift_before
    (Tcp.Rto.capture r).Tcp.Rto.s_shift;
  check_float "still capped" 8.0 (Tcp.Rto.timeout r)

let test_rto_negative_sample () =
  let r = Tcp.Rto.create () in
  Alcotest.(check bool) "negative rejected" true
    (try Tcp.Rto.sample r (-1.0); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Scoreboard                                                         *)
(* ------------------------------------------------------------------ *)

let sb_with_sends n =
  let sb = Tcp.Scoreboard.create () in
  for _ = 1 to n do
    ignore (Tcp.Scoreboard.register_send sb)
  done;
  sb

let test_sb_register () =
  let sb = Tcp.Scoreboard.create () in
  Alcotest.(check int) "seq 0" 0 (Tcp.Scoreboard.register_send sb);
  Alcotest.(check int) "seq 1" 1 (Tcp.Scoreboard.register_send sb);
  Alcotest.(check int) "next_seq" 2 (Tcp.Scoreboard.next_seq sb);
  Alcotest.(check int) "pipe counts flight" 2 (Tcp.Scoreboard.pipe sb)

let test_sb_advance_cum () =
  let sb = sb_with_sends 5 in
  Alcotest.(check int) "newly acked" 3 (Tcp.Scoreboard.advance_cum sb 3);
  Alcotest.(check int) "high_ack" 3 (Tcp.Scoreboard.high_ack sb);
  Alcotest.(check int) "pipe" 2 (Tcp.Scoreboard.pipe sb);
  Alcotest.(check int) "stale ack ignored" 0 (Tcp.Scoreboard.advance_cum sb 2)

let test_sb_advance_beyond_sent () =
  let sb = sb_with_sends 3 in
  Alcotest.(check int) "clamped to next_seq" 3 (Tcp.Scoreboard.advance_cum sb 10);
  Alcotest.(check int) "pipe zero" 0 (Tcp.Scoreboard.pipe sb)

let test_sb_sack_reduces_pipe () =
  let sb = sb_with_sends 10 in
  Alcotest.(check int) "newly sacked" 3 (Tcp.Scoreboard.mark_sacked sb ~lo:4 ~hi:7);
  Alcotest.(check int) "pipe" 7 (Tcp.Scoreboard.pipe sb);
  Alcotest.(check int) "re-sack is idempotent" 0
    (Tcp.Scoreboard.mark_sacked sb ~lo:4 ~hi:7);
  Alcotest.(check bool) "is_sacked" true (Tcp.Scoreboard.is_sacked sb 5);
  Alcotest.(check int) "highest_sacked" 6 (Tcp.Scoreboard.highest_sacked sb)

let test_sb_sack_below_high_ack_ignored () =
  let sb = sb_with_sends 5 in
  ignore (Tcp.Scoreboard.advance_cum sb 3);
  Alcotest.(check int) "old range ignored" 0
    (Tcp.Scoreboard.mark_sacked sb ~lo:0 ~hi:3)

let test_sb_loss_detection () =
  let sb = sb_with_sends 10 in
  (* SACK 4,5,6: packets 0..3 have seq+3 <= 6 -> 0,1,2,3 lost. *)
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:4 ~hi:7);
  let lost = Tcp.Scoreboard.detect_losses sb ~dupthresh:3 in
  Alcotest.(check (list int)) "lost prefix" [ 0; 1; 2; 3 ] lost;
  Alcotest.(check (list int)) "no re-detection" []
    (Tcp.Scoreboard.detect_losses sb ~dupthresh:3)

let test_sb_loss_needs_dupthresh () =
  let sb = sb_with_sends 10 in
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:2 ~hi:3);
  (* highest_sacked = 2; 0 is lost only if 0+3 <= 2 — not yet. *)
  Alcotest.(check (list int)) "below dupthresh" []
    (Tcp.Scoreboard.detect_losses sb ~dupthresh:3);
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:3 ~hi:4);
  Alcotest.(check (list int)) "at dupthresh" [ 0 ]
    (Tcp.Scoreboard.detect_losses sb ~dupthresh:3)

let test_sb_retransmit_cycle () =
  let sb = sb_with_sends 8 in
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:3 ~hi:6);
  let lost = Tcp.Scoreboard.detect_losses sb ~dupthresh:3 in
  Alcotest.(check (list int)) "lost" [ 0; 1; 2 ] lost;
  let pipe_before = Tcp.Scoreboard.pipe sb in
  (match Tcp.Scoreboard.next_retransmit sb with
  | Some 0 -> Tcp.Scoreboard.mark_retransmitted sb 0
  | _ -> Alcotest.fail "expected seq 0 first");
  Alcotest.(check int) "pipe grows with rexmit" (pipe_before + 1)
    (Tcp.Scoreboard.pipe sb);
  (match Tcp.Scoreboard.next_retransmit sb with
  | Some 1 -> ()
  | _ -> Alcotest.fail "next is 1");
  (* Cumulative ack past 0 clears its state. *)
  ignore (Tcp.Scoreboard.advance_cum sb 1);
  Tcp.Scoreboard.check_invariants sb

let test_sb_rexmit_guards () =
  let sb = sb_with_sends 4 in
  Alcotest.(check bool) "not lost -> invalid" true
    (try Tcp.Scoreboard.mark_retransmitted sb 0; false
     with Invalid_argument _ -> true);
  ignore (Tcp.Scoreboard.mark_lost sb 0);
  Tcp.Scoreboard.mark_retransmitted sb 0;
  Alcotest.(check bool) "double rexmit -> invalid" true
    (try Tcp.Scoreboard.mark_retransmitted sb 0; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "is_rexmitted" true (Tcp.Scoreboard.is_rexmitted sb 0)

let test_sb_sack_clears_lost () =
  let sb = sb_with_sends 6 in
  ignore (Tcp.Scoreboard.mark_lost sb 0);
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:0 ~hi:1);
  Alcotest.(check bool) "no longer lost" false (Tcp.Scoreboard.is_lost sb 0);
  Alcotest.(check bool) "sacked" true (Tcp.Scoreboard.is_sacked sb 0);
  Alcotest.(check (option int)) "nothing to retransmit" None
    (Tcp.Scoreboard.next_retransmit sb);
  Tcp.Scoreboard.check_invariants sb

let test_sb_mark_all_lost () =
  let sb = sb_with_sends 6 in
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:2 ~hi:3);
  ignore (Tcp.Scoreboard.mark_lost sb 0);
  Tcp.Scoreboard.mark_retransmitted sb 0;
  let marked = Tcp.Scoreboard.mark_all_lost sb in
  (* 0 was already lost, 2 is sacked: 1, 3, 4, 5 newly marked. *)
  Alcotest.(check int) "newly marked" 4 marked;
  Alcotest.(check bool) "rexmit flag cleared" false (Tcp.Scoreboard.is_rexmitted sb 0);
  Alcotest.(check (option int)) "rexmit restarts from 0" (Some 0)
    (Tcp.Scoreboard.next_retransmit sb);
  Tcp.Scoreboard.check_invariants sb

let test_sb_advance_cum_seqs_fresh_only () =
  let sb = sb_with_sends 5 in
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:1 ~hi:2);
  let fresh = Tcp.Scoreboard.advance_cum_seqs sb 3 in
  Alcotest.(check (list int)) "skips previously sacked" [ 0; 2 ] fresh

let test_sb_mark_sacked_seqs () =
  let sb = sb_with_sends 5 in
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:2 ~hi:3);
  let fresh = Tcp.Scoreboard.mark_sacked_seqs sb ~lo:1 ~hi:4 in
  Alcotest.(check (list int)) "only new seqs" [ 1; 3 ] fresh

let test_sb_expire_rexmits () =
  let sb = sb_with_sends 8 in
  ignore (Tcp.Scoreboard.mark_sacked sb ~lo:3 ~hi:7);
  let lost = Tcp.Scoreboard.detect_losses sb ~dupthresh:3 in
  Alcotest.(check (list int)) "lost" [ 0; 1; 2 ] lost;
  Tcp.Scoreboard.mark_retransmitted ~at:10.0 sb 0;
  Tcp.Scoreboard.mark_retransmitted ~at:20.0 sb 1;
  (* Only the rexmit from t=10 is stale at cutoff 15. *)
  Alcotest.(check (list int)) "stale rexmits" [ 0 ]
    (Tcp.Scoreboard.expire_rexmits sb ~before:15.0);
  Alcotest.(check bool) "flag cleared" false (Tcp.Scoreboard.is_rexmitted sb 0);
  Alcotest.(check bool) "fresh one kept" true (Tcp.Scoreboard.is_rexmitted sb 1);
  (* The expired packet is eligible again. *)
  Alcotest.(check (option int)) "re-eligible" (Some 0)
    (Tcp.Scoreboard.next_retransmit sb);
  Tcp.Scoreboard.check_invariants sb

let test_sb_expire_rexmits_empty () =
  let sb = sb_with_sends 4 in
  Alcotest.(check (list int)) "nothing to expire" []
    (Tcp.Scoreboard.expire_rexmits sb ~before:100.0)

let prop_sb_random_ops =
  (* Random sequences of operations never break the counter invariants
     and pipe stays non-negative. *)
  QCheck.Test.make ~name:"scoreboard invariants under random ops" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 5))
    (fun ops ->
      let sb = Tcp.Scoreboard.create () in
      let rng = Sim.Rng.create 9 in
      List.iter
        (fun op ->
          let span = Tcp.Scoreboard.next_seq sb - Tcp.Scoreboard.high_ack sb in
          match op with
          | 0 | 1 -> ignore (Tcp.Scoreboard.register_send sb)
          | 2 ->
              if span > 0 then
                ignore
                  (Tcp.Scoreboard.advance_cum sb
                     (Tcp.Scoreboard.high_ack sb + 1 + Sim.Rng.int rng span))
          | 3 ->
              if span > 0 then begin
                let lo = Tcp.Scoreboard.high_ack sb + Sim.Rng.int rng span in
                ignore (Tcp.Scoreboard.mark_sacked sb ~lo ~hi:(lo + 1 + Sim.Rng.int rng 3))
              end
          | 4 -> ignore (Tcp.Scoreboard.detect_losses sb ~dupthresh:3)
          | _ -> (
              match Tcp.Scoreboard.next_retransmit sb with
              | Some seq -> Tcp.Scoreboard.mark_retransmitted sb seq
              | None -> ()))
        ops;
      Tcp.Scoreboard.check_invariants sb;
      Tcp.Scoreboard.pipe sb >= 0)

(* ------------------------------------------------------------------ *)
(* Receiver + sender end-to-end on small networks                     *)
(* ------------------------------------------------------------------ *)

let droptail ~capacity ~mu_pkts ~delay =
  {
    Net.Link.bandwidth_bps = mu_pkts *. 8000.0;
    prop_delay = delay;
    queue = Net.Queue_disc.Droptail;
    capacity;
    phase_jitter = false;
  }

let build_pair ?(capacity = 20) ?(mu_pkts = 1000.0) ?(delay = 0.01) ?(seed = 1) () =
  let net = Net.Network.create ~seed () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore (Net.Network.duplex net a b (droptail ~capacity ~mu_pkts ~delay));
  Net.Network.install_routes net;
  (net, a, b)

let test_sender_delivers_in_order () =
  let net, a, b = build_pair () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  Net.Network.run_until net 10.0;
  let rcv = Tcp.Sender.receiver tcp in
  Alcotest.(check bool) "progress" true (Tcp.Receiver.expected rcv > 100);
  Alcotest.(check int) "no gaps pending" 0 (Tcp.Receiver.out_of_order_pending rcv);
  (* The sender's view lags by the acks still in flight at the cut-off. *)
  let lag = Tcp.Receiver.expected rcv - Tcp.Sender.delivered tcp in
  Alcotest.(check bool)
    (Printf.sprintf "delivered lags by in-flight acks only (%d)" lag)
    true
    (lag >= 0 && lag < 64)

let test_sender_slow_start_growth () =
  (* Buffer large enough that the slow-start overshoot does not drop. *)
  let net, a, b = build_pair ~mu_pkts:10_000.0 ~capacity:200 () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  (* After a few RTTs with no loss, cwnd should have grown well past 1. *)
  Net.Network.run_until net 0.5;
  Alcotest.(check bool) "cwnd grew" true (Tcp.Sender.cwnd tcp > 8.0);
  Alcotest.(check int) "no cuts yet" 0 (Tcp.Sender.window_cuts tcp)

let test_sender_recovers_from_loss () =
  (* Tiny buffer forces drops; the flow must keep making progress and
     retransmit rather than deadlock. *)
  let net, a, b = build_pair ~capacity:5 ~mu_pkts:200.0 () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  Net.Network.run_until net 60.0;
  Alcotest.(check bool) "cuts happened" true (Tcp.Sender.window_cuts tcp > 0);
  Alcotest.(check bool) "retransmitted" true (Tcp.Sender.retransmits tcp > 0);
  Alcotest.(check bool) "still delivering" true (Tcp.Sender.delivered tcp > 5000);
  let rcv = Tcp.Sender.receiver tcp in
  let lag = Tcp.Receiver.expected rcv - Tcp.Sender.delivered tcp in
  Alcotest.(check bool)
    (Printf.sprintf "receiver within in-flight window (%d)" lag)
    true
    (lag >= 0 && lag < 64)

let test_sender_throughput_tracks_bottleneck () =
  let net, a, b = build_pair ~mu_pkts:100.0 () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  Net.Network.run_until net 20.0;
  Tcp.Sender.reset_measurement tcp;
  Net.Network.run_until net 120.0;
  let snap = Tcp.Sender.snapshot tcp in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.1f near 100" snap.Tcp.Sender.throughput)
    true
    (snap.Tcp.Sender.throughput > 80.0 && snap.Tcp.Sender.throughput <= 101.0)

let test_sender_two_flows_share_fairly () =
  let net, a, b = build_pair ~mu_pkts:200.0 ~capacity:20 () in
  let t1 = Tcp.Sender.create ~net ~src:a ~dst:b () in
  let t2 = Tcp.Sender.create ~net ~src:a ~dst:b () in
  Net.Network.run_until net 20.0;
  Tcp.Sender.reset_measurement t1;
  Tcp.Sender.reset_measurement t2;
  Net.Network.run_until net 220.0;
  let s1 = (Tcp.Sender.snapshot t1).Tcp.Sender.throughput in
  let s2 = (Tcp.Sender.snapshot t2).Tcp.Sender.throughput in
  let ratio = s1 /. s2 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f within 30%%" ratio)
    true
    (ratio > 0.7 && ratio < 1.43);
  Alcotest.(check bool) "combined uses the link" true (s1 +. s2 > 160.0)

let test_sender_rtt_measured () =
  let net, a, b = build_pair ~mu_pkts:10_000.0 ~delay:0.05 () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  Net.Network.run_until net 10.0;
  let rtt = Stats.Welford.mean (Tcp.Sender.rtt_stats tcp) in
  Alcotest.(check bool)
    (Printf.sprintf "rtt %.3f close to 2x prop delay" rtt)
    true
    (rtt >= 0.1 && rtt < 0.13)

let test_sender_timeout_on_dead_path () =
  (* All data packets die: the sender must back off through timeouts,
     not spin. *)
  let net = Net.Network.create ~seed:1 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore
    (Net.Network.duplex net a b
       {
         Net.Link.bandwidth_bps = 8e6;
         prop_delay = 0.01;
         queue = Net.Queue_disc.Bernoulli_loss 0.999;
         capacity = 100;
         phase_jitter = false;
       });
  Net.Network.install_routes net;
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  Net.Network.run_until net 120.0;
  Alcotest.(check bool) "timeouts occurred" true (Tcp.Sender.timeouts tcp > 2);
  Alcotest.(check bool) "cwnd collapsed" true (Tcp.Sender.cwnd tcp <= 2.0);
  Alcotest.(check bool) "bounded send volume" true (Tcp.Sender.sent_new tcp < 1000)

let test_finite_flow_completes () =
  let net, a, b = build_pair ~mu_pkts:1000.0 () in
  let params = { Tcp.Sender.default_params with Tcp.Sender.limit = Some 50 } in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b ~params () in
  Alcotest.(check bool) "not complete initially" false (Tcp.Sender.is_complete tcp);
  Net.Network.run_until net 30.0;
  Alcotest.(check bool) "complete" true (Tcp.Sender.is_complete tcp);
  Alcotest.(check int) "delivered exactly the limit" 50 (Tcp.Sender.delivered tcp);
  Alcotest.(check int) "sent exactly the limit" 50 (Tcp.Sender.sent_new tcp);
  match Tcp.Sender.completed_at tcp with
  | Some finish -> Alcotest.(check bool) "finished quickly" true (finish < 5.0)
  | None -> Alcotest.fail "no completion time"

let test_finite_flow_completes_under_loss () =
  let net, a, b = build_pair ~mu_pkts:100.0 ~capacity:4 ~seed:5 () in
  (* Competing persistent flow to force drops onto the short one. *)
  let _bg = Tcp.Sender.create ~net ~src:a ~dst:b () in
  let params = { Tcp.Sender.default_params with Tcp.Sender.limit = Some 30 } in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b ~params ~start_at:5.0 () in
  Net.Network.run_until net 120.0;
  Alcotest.(check bool) "completes despite drops" true
    (Tcp.Sender.is_complete tcp);
  Alcotest.(check int) "all packets delivered" 30 (Tcp.Sender.delivered tcp)


let test_sender_ecn_cuts_without_loss () =
  (* ECN-enabled RED bottleneck: marks throttle the flow, so it stays
     near the link rate with almost no retransmissions. *)
  let net = Net.Network.create ~seed:4 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore
    (Net.Network.duplex net a b
       {
         Net.Link.bandwidth_bps = 100.0 *. 8000.0;
         prop_delay = 0.05;
         queue =
           Net.Queue_disc.Red_gateway
             {
               (Net.Red.default_params ~mean_pkt_time:0.01) with
               Net.Red.ecn = true;
             };
         capacity = 20;
         phase_jitter = false;
       });
  Net.Network.install_routes net;
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  Net.Network.run_until net 120.0;
  Alcotest.(check bool) "cuts happened" true (Tcp.Sender.window_cuts tcp > 5);
  let sent = Tcp.Sender.sent_new tcp in
  let rexmit = Tcp.Sender.retransmits tcp in
  Alcotest.(check bool)
    (Printf.sprintf "retransmissions rare (%d / %d)" rexmit sent)
    true
    (rexmit * 50 < sent);
  Alcotest.(check bool) "throughput near link rate" true
    (Tcp.Sender.delivered tcp > 80 * 120 * 8 / 10)

let test_receiver_sack_blocks () =
  (* Feed a receiver out-of-order data directly and inspect the acks it
     generates. *)
  let net, a, b = build_pair ~mu_pkts:10_000.0 () in
  let flow = Net.Network.fresh_flow net in
  let acks = ref [] in
  Net.Node.attach (Net.Network.node net a) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Tcp.Wire.Tcp_ack { cum_ack; blocks; _ } ->
          acks := (cum_ack, blocks) :: !acks
      | _ -> ());
  let _rcv = Tcp.Receiver.create ~net ~node:b ~flow ~peer:a () in
  let send seq =
    let pkt =
      Net.Network.make_packet net ~flow ~src:a ~dst:(Net.Packet.Unicast b)
        ~size:1000
        ~payload:(Tcp.Wire.Tcp_data { seq; sent_at = Net.Network.now net })
    in
    Net.Network.send net pkt
  in
  (* Send 0, skip 1, send 2 and 3. *)
  send 0; send 2; send 3;
  Net.Network.run_until net 1.0;
  (match !acks with
  | (cum, blocks) :: _ ->
      Alcotest.(check int) "cum stuck at 1" 1 cum;
      (match blocks with
      | [ { Tcp.Wire.block_lo = 2; block_hi = 4 } ] -> ()
      | _ -> Alcotest.fail "expected SACK block [2,4)")
  | [] -> Alcotest.fail "no acks seen");
  (* Filling the hole advances cum and clears the block. *)
  send 1;
  Net.Network.run_until net 2.0;
  match !acks with
  | (cum, blocks) :: _ ->
      Alcotest.(check int) "cum caught up" 4 cum;
      Alcotest.(check int) "no blocks" 0 (List.length blocks)
  | [] -> Alcotest.fail "no acks"

let test_receiver_duplicate_counting () =
  let net, a, b = build_pair () in
  let flow = Net.Network.fresh_flow net in
  let rcv = Tcp.Receiver.create ~net ~node:b ~flow ~peer:a () in
  let send seq =
    Net.Network.send net
      (Net.Network.make_packet net ~flow ~src:a ~dst:(Net.Packet.Unicast b)
         ~size:1000
         ~payload:(Tcp.Wire.Tcp_data { seq; sent_at = 0.0 }))
  in
  send 0; send 0; send 2; send 2;
  Net.Network.run_until net 1.0;
  Alcotest.(check int) "two duplicates" 2 (Tcp.Receiver.duplicates rcv);
  Alcotest.(check int) "received total" 4 (Tcp.Receiver.received_total rcv)

(* ------------------------------------------------------------------ *)
(* Hardening: options, handshake, flow control, RFC 5961              *)
(* ------------------------------------------------------------------ *)

let test_options_codec_roundtrip () =
  List.iter
    (fun mss ->
      for wscale = 0 to Tcp.Options.max_wscale do
        List.iter
          (fun sack_ok ->
            let o = Tcp.Options.make ~mss ~wscale ~sack_ok in
            match Tcp.Options.decode (Tcp.Options.encode o) with
            | Ok o' ->
                Alcotest.(check bool)
                  (Printf.sprintf "round-trips %s" (Tcp.Options.to_string o))
                  true (o = o')
            | Error e ->
                Alcotest.failf "decode failed: %s"
                  (Tcp.Options.error_to_string e))
          [ false; true ]
      done)
    [ 1; 536; 1000; 1460; 65535 ]

let test_options_codec_rejects_junk () =
  let rejects v =
    match Tcp.Options.decode v with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "zero mss" true (rejects 0);
  Alcotest.(check bool) "shift 15" true
    (rejects (Tcp.Options.encode Tcp.Options.default lor (15 lsl 16)));
  Alcotest.(check bool) "stray high bits" true
    (rejects (Tcp.Options.encode Tcp.Options.default lor (1 lsl 22)));
  Alcotest.(check bool) "make validates" true
    (try
       ignore (Tcp.Options.make ~mss:0 ~wscale:0 ~sack_ok:false);
       false
     with Invalid_argument _ -> true)

let test_options_negotiate () =
  let a = Tcp.Options.make ~mss:1460 ~wscale:7 ~sack_ok:true in
  let b = Tcp.Options.make ~mss:536 ~wscale:2 ~sack_ok:false in
  let m = Tcp.Options.negotiate a b in
  Alcotest.(check int) "min mss" 536 m.Tcp.Options.mss;
  Alcotest.(check int) "min shift" 2 m.Tcp.Options.wscale;
  Alcotest.(check bool) "sack iff both" false m.Tcp.Options.sack_ok;
  Alcotest.(check bool) "symmetric" true
    (Tcp.Options.negotiate b a = m)

let test_handshake_negotiates_wscale () =
  let net, a, b = build_pair () in
  let params =
    { Tcp.Sender.default_params with Tcp.Sender.handshake = true; wscale = 5 }
  in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b ~params () in
  Alcotest.(check bool) "not yet established" false
    (Tcp.Sender.established tcp);
  Net.Network.run_until net 5.0;
  Alcotest.(check bool) "established" true (Tcp.Sender.established tcp);
  Alcotest.(check bool) "syn sent" true (Tcp.Sender.syn_sent tcp >= 1);
  Alcotest.(check int) "negotiated shift" 5
    (Tcp.Sender.negotiated_wscale tcp);
  Alcotest.(check int) "receiver agrees" 5
    (Tcp.Receiver.window_scale (Tcp.Sender.receiver tcp));
  Alcotest.(check bool) "data flows after the handshake" true
    (Tcp.Sender.delivered tcp > 100)

let test_zero_window_persist () =
  (* A slow application behind a fast path: the sender fills the
     8-packet buffer, the window closes, and only persist-timer probes
     keep the connection alive until drain opens it again. *)
  let net, a, b = build_pair ~mu_pkts:10_000.0 ~capacity:200 () in
  let params =
    {
      Tcp.Sender.default_params with
      Tcp.Sender.window =
        Some { Tcp.Receiver.capacity = 8; app_rate = 20.0 };
    }
  in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b ~params () in
  Net.Network.run_until net 30.0;
  let rcv = Tcp.Sender.receiver tcp in
  Alcotest.(check bool) "probes sent" true
    (Tcp.Sender.zero_window_probes tcp > 0);
  Alcotest.(check bool) "probes answered" true
    (Tcp.Receiver.probes_received rcv > 0);
  (* Flow control throttles to the drain rate but never deadlocks. *)
  let delivered = Tcp.Sender.delivered tcp in
  Alcotest.(check bool)
    (Printf.sprintf "delivery tracks the app drain (%d)" delivered)
    true
    (delivered > 400 && delivered < 700)

let inject net ~flow ~src ~dst payload ~size =
  Net.Network.send net
    (Net.Network.make_packet net ~flow ~src ~dst:(Net.Packet.Unicast dst)
       ~size ~payload)

let test_rst_validation_strict () =
  let net, a, b = build_pair () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  let flow = Tcp.Sender.flow tcp in
  let rcv = Tcp.Sender.receiver tcp in
  Net.Network.run_until net 5.0;
  let expected = Tcp.Receiver.expected rcv in
  (* Far outside the window: silently dropped. *)
  inject net ~flow ~src:a ~dst:b
    (Tcp.Wire.Tcp_rst { seq = expected + 1_000_000 })
    ~size:Tcp.Wire.ack_size;
  Net.Network.run_until net 6.0;
  Alcotest.(check int) "outside window dropped" 1 (Tcp.Receiver.rst_dropped rcv);
  Alcotest.(check bool) "still open" false (Tcp.Receiver.closed rcv);
  (* In-window but inexact: challenge ack, no teardown (RFC 5961).
     Aim 500 ahead — far beyond what can arrive during the RST's own
     flight (at most a cwnd's worth), well inside the 1024 window. *)
  let expected = Tcp.Receiver.expected rcv in
  inject net ~flow ~src:a ~dst:b
    (Tcp.Wire.Tcp_rst { seq = expected + 500 })
    ~size:Tcp.Wire.ack_size;
  Net.Network.run_until net 7.0;
  Alcotest.(check int) "in-window challenged" 1
    (Tcp.Receiver.rst_challenged rcv);
  Alcotest.(check bool) "challenge ack sent" true
    (Tcp.Receiver.challenge_acks rcv >= 1);
  Alcotest.(check bool) "still open after challenge" false
    (Tcp.Receiver.closed rcv);
  Alcotest.(check int) "nothing accepted" 0 (Tcp.Receiver.rst_accepted rcv)

let test_rst_exact_match_accepted () =
  let net, a, b = build_pair () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  let flow = Tcp.Sender.flow tcp in
  let rcv = Tcp.Sender.receiver tcp in
  Net.Network.run_until net 5.0;
  let before = Tcp.Receiver.expected rcv in
  (* An attacker who knows the exact next sequence is indistinguishable
     from the peer: the RST is honored even under strict validation.
     Freeze the flow first so the in-order point holds still. *)
  Tcp.Sender.stop tcp;
  Net.Network.run_until net 8.0;
  inject net ~flow ~src:a ~dst:b
    (Tcp.Wire.Tcp_rst { seq = Tcp.Receiver.expected rcv })
    ~size:Tcp.Wire.ack_size;
  Net.Network.run_until net 9.0;
  Alcotest.(check bool) "accepted" true (Tcp.Receiver.rst_accepted rcv >= 1);
  Alcotest.(check bool) "torn down" true (Tcp.Receiver.closed rcv);
  (* A closed endpoint goes silent: no more delivery progress. *)
  let frozen = Tcp.Receiver.expected rcv in
  Net.Network.run_until net 12.0;
  Alcotest.(check int) "no progress after close" frozen
    (Tcp.Receiver.expected rcv);
  Alcotest.(check bool) "in-order point had advanced first" true (before > 0)

let test_rst_validation_legacy () =
  let net, a, b = build_pair () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  let flow = Tcp.Sender.flow tcp in
  let rcv = Tcp.Sender.receiver tcp in
  Tcp.Receiver.set_rst_strict rcv false;
  Net.Network.run_until net 5.0;
  (* The same inexact in-window guess that a strict stack challenges
     kills a legacy stack outright. *)
  inject net ~flow ~src:a ~dst:b
    (Tcp.Wire.Tcp_rst { seq = Tcp.Receiver.expected rcv + 500 })
    ~size:Tcp.Wire.ack_size;
  Net.Network.run_until net 6.0;
  Alcotest.(check bool) "legacy accepts in-window RST" true
    (Tcp.Receiver.rst_accepted rcv >= 1);
  Alcotest.(check bool) "torn down" true (Tcp.Receiver.closed rcv);
  Alcotest.(check int) "no challenge" 0 (Tcp.Receiver.rst_challenged rcv)

let test_blind_data_inject_ghosted () =
  let net, a, b = build_pair () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  let flow = Tcp.Sender.flow tcp in
  let rcv = Tcp.Sender.receiver tcp in
  Net.Network.run_until net 5.0;
  inject net ~flow ~src:a ~dst:b
    (Tcp.Wire.Tcp_data { seq = 50_000_000; sent_at = 5.0 })
    ~size:1000;
  Net.Network.run_until net 6.0;
  Alcotest.(check int) "ghost data counted" 1 (Tcp.Receiver.ghost_data rcv);
  Alcotest.(check int) "not buffered" 0
    (Tcp.Receiver.out_of_order_pending rcv);
  Alcotest.(check bool) "flow unharmed" false (Tcp.Receiver.closed rcv)

let test_ghost_ack_dropped_by_sender () =
  let net, a, b = build_pair () in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
  let flow = Tcp.Sender.flow tcp in
  Net.Network.run_until net 5.0;
  (* An optimistic ack for data never sent must be dropped by the
     ack-validation fast path, not absorbed into the scoreboard. *)
  Alcotest.(check bool) "fast path rejects" false
    (Tcp.Sender.ack_in_window tcp ~cum_ack:50_000_000);
  inject net ~flow ~src:b ~dst:a
    (Tcp.Wire.Tcp_ack
       {
         cum_ack = 50_000_000;
         blocks = [];
         echo = 5.0;
         ece = false;
         rwnd = Tcp.Wire.no_rwnd;
       })
    ~size:Tcp.Wire.ack_size;
  Net.Network.run_until net 6.0;
  Alcotest.(check int) "ghost ack counted" 1 (Tcp.Sender.ghost_acks tcp);
  Alcotest.(check bool) "delivered untouched" true
    (Tcp.Sender.delivered tcp < 50_000_000)

let () =
  Alcotest.run "tcp"
    [
      ( "rto",
        [
          Alcotest.test_case "before samples" `Quick test_rto_before_samples;
          Alcotest.test_case "first sample" `Quick test_rto_first_sample;
          Alcotest.test_case "smoothing" `Quick test_rto_smoothing;
          Alcotest.test_case "min clamp" `Quick test_rto_min_clamp;
          Alcotest.test_case "backoff" `Quick test_rto_backoff;
          Alcotest.test_case "max clamp" `Quick test_rto_max_clamp;
          Alcotest.test_case "karn rejects ambiguous samples" `Quick
            test_rto_karn;
          Alcotest.test_case "backoff freezes at max" `Quick
            test_rto_at_max_freezes;
          Alcotest.test_case "negative sample" `Quick test_rto_negative_sample;
        ] );
      ( "scoreboard",
        [
          Alcotest.test_case "register" `Quick test_sb_register;
          Alcotest.test_case "advance cum" `Quick test_sb_advance_cum;
          Alcotest.test_case "advance beyond sent" `Quick test_sb_advance_beyond_sent;
          Alcotest.test_case "sack reduces pipe" `Quick test_sb_sack_reduces_pipe;
          Alcotest.test_case "old sack ignored" `Quick
            test_sb_sack_below_high_ack_ignored;
          Alcotest.test_case "loss detection" `Quick test_sb_loss_detection;
          Alcotest.test_case "dupthresh boundary" `Quick test_sb_loss_needs_dupthresh;
          Alcotest.test_case "retransmit cycle" `Quick test_sb_retransmit_cycle;
          Alcotest.test_case "rexmit guards" `Quick test_sb_rexmit_guards;
          Alcotest.test_case "sack clears lost" `Quick test_sb_sack_clears_lost;
          Alcotest.test_case "mark all lost" `Quick test_sb_mark_all_lost;
          Alcotest.test_case "advance_cum_seqs fresh only" `Quick
            test_sb_advance_cum_seqs_fresh_only;
          Alcotest.test_case "mark_sacked_seqs" `Quick test_sb_mark_sacked_seqs;
          Alcotest.test_case "expire rexmits" `Quick test_sb_expire_rexmits;
          Alcotest.test_case "expire rexmits empty" `Quick
            test_sb_expire_rexmits_empty;
          QCheck_alcotest.to_alcotest prop_sb_random_ops;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "delivers in order" `Quick test_sender_delivers_in_order;
          Alcotest.test_case "slow start growth" `Quick test_sender_slow_start_growth;
          Alcotest.test_case "recovers from loss" `Quick test_sender_recovers_from_loss;
          Alcotest.test_case "tracks bottleneck" `Slow
            test_sender_throughput_tracks_bottleneck;
          Alcotest.test_case "two flows share" `Slow test_sender_two_flows_share_fairly;
          Alcotest.test_case "rtt measured" `Quick test_sender_rtt_measured;
          Alcotest.test_case "timeout on dead path" `Quick
            test_sender_timeout_on_dead_path;
          Alcotest.test_case "finite flow" `Quick test_finite_flow_completes;
          Alcotest.test_case "finite flow under loss" `Quick
            test_finite_flow_completes_under_loss;
          Alcotest.test_case "ecn cuts without loss" `Quick
            test_sender_ecn_cuts_without_loss;
          Alcotest.test_case "receiver sack blocks" `Quick test_receiver_sack_blocks;
          Alcotest.test_case "receiver duplicates" `Quick
            test_receiver_duplicate_counting;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "options codec round-trip" `Quick
            test_options_codec_roundtrip;
          Alcotest.test_case "options codec rejects junk" `Quick
            test_options_codec_rejects_junk;
          Alcotest.test_case "options negotiate" `Quick test_options_negotiate;
          Alcotest.test_case "handshake negotiates wscale" `Quick
            test_handshake_negotiates_wscale;
          Alcotest.test_case "zero-window persist" `Quick
            test_zero_window_persist;
          Alcotest.test_case "rst strict validation" `Quick
            test_rst_validation_strict;
          Alcotest.test_case "rst exact match accepted" `Quick
            test_rst_exact_match_accepted;
          Alcotest.test_case "rst legacy stack dies" `Quick
            test_rst_validation_legacy;
          Alcotest.test_case "blind data ghosted" `Quick
            test_blind_data_inject_ghosted;
          Alcotest.test_case "ghost ack dropped" `Quick
            test_ghost_ack_dropped_by_sender;
        ] );
    ]
