let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

(* Integrate the window transport of a single class at a constant drop
   probability until stationary; returns the histogram.  rtt = 1 so
   growth = 1 - p and the halving coefficient is p. *)
let transport_steady ~bins ~p ~w_max ~t_end =
  let h = w_max /. float_of_int bins in
  let m = Meanfield.Dist.init_delta ~bins ~h 2.0 in
  let k1 = Array.make bins 0.0 in
  let k2 = Array.make bins 0.0 in
  let tmp = Array.make bins 0.0 in
  let growth = 1.0 -. p and halve_coeff = p in
  let dt = 0.4 /. Float.max w_max (float_of_int bins /. w_max) in
  let steps = int_of_float (t_end /. dt) in
  for _ = 1 to steps do
    (* Midpoint rule is plenty at these step sizes. *)
    Array.fill k1 0 bins 0.0;
    Meanfield.Dist.deriv ~h ~growth ~halve_coeff m k1;
    for i = 0 to bins - 1 do
      tmp.(i) <- m.(i) +. (0.5 *. dt *. k1.(i))
    done;
    Array.fill k2 0 bins 0.0;
    Meanfield.Dist.deriv ~h ~growth ~halve_coeff tmp k2;
    for i = 0 to bins - 1 do
      m.(i) <- m.(i) +. (dt *. k2.(i))
    done;
    Meanfield.Dist.renormalize m
  done;
  (m, h)

let test_dist_mass_conserved () =
  let bins = 32 in
  let h = 0.5 in
  let m = Meanfield.Dist.init_delta ~bins ~h 7.3 in
  check_close "initial mass" 1.0 (Meanfield.Dist.total m);
  check_close "initial mean" 7.3 (Meanfield.Dist.mean ~h m);
  let dm = Array.make bins 0.0 in
  Meanfield.Dist.deriv ~h ~growth:0.9 ~halve_coeff:0.2 m dm;
  check_close "derivative sums to zero" 0.0 (Array.fold_left ( +. ) 0.0 dm)

let test_transport_matches_pa_window () =
  (* Deterministic spot check at p = 0.1: the stationary rms window
     must approach pa_window 0.1 = sqrt(18) ~ 4.2426. *)
  let p = 0.1 in
  let pa = Analysis.Tcp_model.pa_window p in
  let w_max = 4.0 *. pa in
  let m, h = transport_steady ~bins:96 ~p ~w_max ~t_end:300.0 in
  let rms = Meanfield.Dist.rms ~h m in
  if Float.abs (rms -. pa) > 0.05 *. pa then
    Alcotest.failf "rms %.4f vs pa_window %.4f" rms pa

let qcheck_refinement =
  QCheck.Test.make ~count:20 ~name:"transport rms converges to pa_window"
    (QCheck.float_range 0.02 0.3)
    (fun p ->
      let pa = Analysis.Tcp_model.pa_window p in
      let w_max = 4.0 *. pa in
      let err bins =
        let m, h = transport_steady ~bins ~p ~w_max ~t_end:300.0 in
        Float.abs (Meanfield.Dist.rms ~h m -. pa)
      in
      let coarse = err 24 and fine = err 96 in
      (* Refining the discretization shrinks the error (slack for
         already-converged cases) and the fine error is within 5%. *)
      fine <= (0.5 *. coarse) +. (0.005 *. pa) && fine <= 0.05 *. pa)

let small_params () =
  Meanfield.Params.make ~capacity:500.0 ~buffer:60.0
    ~rla:{ Meanfield.Params.receivers = 4; rtt = 0.12 }
    ~bins:48 ~t_max:12.0 ~settle:4.0
    [ { Meanfield.Params.flows = 4; rtt = 0.12 } ]

let test_solver_deterministic () =
  let run () =
    let r = Meanfield.Solver.run (small_params ()) in
    Meanfield.Trajectory.to_csv_string r.Meanfield.Solver.trajectory
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "byte-identical trajectories" true (String.equal a b)

let test_solver_congested_operating_point () =
  let r = Meanfield.Solver.run (small_params ()) in
  (* 4 TCP flows + RLA over 500 pkt/s must congest the RED queue. *)
  if r.Meanfield.Solver.drop_mean <= 0.001 then
    Alcotest.failf "expected congestion, drop %.5f" r.Meanfield.Solver.drop_mean;
  if r.Meanfield.Solver.queue_mean <= 1.0 then
    Alcotest.failf "expected queue, got %.3f" r.Meanfield.Solver.queue_mean;
  let ratio = r.Meanfield.Solver.fairness_ratio in
  if Float.is_nan ratio || ratio <= 0.0 then
    Alcotest.failf "bad fairness ratio %.3f" ratio

let test_stability_uncongested () =
  (* One slow flow over a huge link: no congestion, trivially stable. *)
  let p =
    Meanfield.Params.make ~capacity:1e6 ~buffer:1e5
      [ { Meanfield.Params.flows = 1; rtt = 0.1 } ]
  in
  let s = Meanfield.Stability.evaluate p in
  Alcotest.(check bool) "uncongested" false s.Meanfield.Stability.congested;
  Alcotest.(check bool) "stable" true s.Meanfield.Stability.stable

let test_stability_congested_fixed_point () =
  let s = Meanfield.Stability.evaluate (small_params ()) in
  Alcotest.(check bool) "congested" true s.Meanfield.Stability.congested;
  let fp = s.Meanfield.Stability.fp in
  if fp.Meanfield.Stability.drop <= 0.0 || fp.Meanfield.Stability.drop >= 1.0
  then Alcotest.failf "bad fixed-point drop %.4f" fp.Meanfield.Stability.drop;
  (* At the fixed point the accepted rate balances capacity, so the
     arrival rate must exceed capacity by exactly the drop factor. *)
  check_close ~eps:1.0 "lambda = C/(1-p)"
    (500.0 /. (1.0 -. fp.Meanfield.Stability.drop))
    fp.Meanfield.Stability.lambda

let test_regime_classify_agreement () =
  (* A gentle point (small w_q) should be steady; the solver and the
     closed-form criterion should agree there. *)
  let c =
    Meanfield.Regime.classify ~t_max:15.0
      { Meanfield.Regime.w_q = 0.001; max_p = 0.1; n = 8 }
  in
  Alcotest.(check bool) "solver and criterion agree" true
    c.Meanfield.Regime.agree

let test_regime_large_n_runs () =
  (* n = 1M must classify quickly: the solver cost is n-independent. *)
  let c =
    Meanfield.Regime.classify ~t_max:10.0
      { Meanfield.Regime.w_q = 0.002; max_p = 0.1; n = 1_000_000 }
  in
  if Float.is_nan c.Meanfield.Regime.queue_mean then
    Alcotest.fail "NaN queue at n = 1M"

let () =
  Alcotest.run "meanfield"
    [
      ( "dist",
        [
          Alcotest.test_case "mass conservation" `Quick
            test_dist_mass_conserved;
          Alcotest.test_case "transport matches pa_window" `Slow
            test_transport_matches_pa_window;
          QCheck_alcotest.to_alcotest qcheck_refinement;
        ] );
      ( "solver",
        [
          Alcotest.test_case "deterministic" `Quick test_solver_deterministic;
          Alcotest.test_case "congested operating point" `Quick
            test_solver_congested_operating_point;
        ] );
      ( "stability",
        [
          Alcotest.test_case "uncongested" `Quick test_stability_uncongested;
          Alcotest.test_case "congested fixed point" `Quick
            test_stability_congested_fixed_point;
        ] );
      ( "regime",
        [
          Alcotest.test_case "classify agreement" `Quick
            test_regime_classify_agreement;
          Alcotest.test_case "large n" `Quick test_regime_large_n_runs;
        ] );
    ]
