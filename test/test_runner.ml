(* Tests for the multicore sweep engine: job/pool determinism,
   submission-order results, metrics, and the JSON emitter. *)

(* A small self-contained simulation: one TCP flow over a duplex link,
   3 simulated seconds; returns enough state to detect any divergence
   between runs. *)
let tcp_job ~seed =
  Runner.Job.create ~label:(Printf.sprintf "tcp/seed%d" seed) (fun () ->
      let net = Net.Network.create ~seed () in
      let a = Net.Node.id (Net.Network.add_node net) in
      let b = Net.Node.id (Net.Network.add_node net) in
      let ab, _ =
        Net.Network.duplex net a b
          {
            Net.Link.bandwidth_bps = 800_000.0;
            prop_delay = 0.01;
            queue = Net.Queue_disc.Droptail;
            capacity = 20;
            phase_jitter = true;
          }
      in
      Net.Network.install_routes net;
      let tcp = Tcp.Sender.create ~net ~src:a ~dst:b () in
      Net.Network.run_until net 3.0;
      let snap = Tcp.Sender.snapshot tcp in
      let stats = Net.Link.stats ab in
      ( net,
        ( snap.Tcp.Sender.send_rate,
          snap.Tcp.Sender.cwnd_avg,
          stats.Net.Link.delivered,
          stats.Net.Link.dropped ) ))

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_pool_deterministic_across_jobs () =
  let run jobs =
    Runner.Pool.values
      (Runner.Pool.run ~jobs (List.map (fun seed -> tcp_job ~seed) seeds))
  in
  let sequential = run 1 in
  Alcotest.(check bool) "jobs=1 equals jobs=4" true (sequential = run 4);
  Alcotest.(check bool) "jobs=1 equals jobs=8" true (sequential = run 8);
  (* Different seeds must actually differ, or the comparison is vacuous. *)
  match sequential with
  | first :: rest ->
      Alcotest.(check bool) "seeds diverge" true
        (List.exists (fun r -> r <> first) rest)
  | [] -> Alcotest.fail "no results"

let test_pool_submission_order () =
  let jobs_list =
    List.init 20 (fun i ->
        Runner.Job.pure ~label:(Printf.sprintf "job%d" i) (fun () -> i))
  in
  let outcomes = Runner.Pool.run ~jobs:4 jobs_list in
  List.iteri
    (fun i (o : int Runner.Pool.outcome) ->
      Alcotest.(check int) "value in submission order" i o.Runner.Pool.value;
      Alcotest.(check string) "label preserved"
        (Printf.sprintf "job%d" i)
        o.Runner.Pool.label)
    outcomes

let test_pool_metrics () =
  match Runner.Pool.run ~jobs:1 [ tcp_job ~seed:1 ] with
  | [ o ] ->
      let m = o.Runner.Pool.metrics in
      Alcotest.(check bool) "events fired" true (m.Runner.Metrics.events_fired > 100);
      Alcotest.(check bool) "wall clock nonnegative" true
        (m.Runner.Metrics.wall_s >= 0.0);
      Alcotest.(check bool) "allocation tracked" true
        (m.Runner.Metrics.allocated_mb > 0.0)
  | _ -> Alcotest.fail "expected one outcome"

let test_pool_pure_job_metrics () =
  match Runner.Pool.run ~jobs:2 [ Runner.Job.pure ~label:"p" (fun () -> 42) ] with
  | [ o ] ->
      Alcotest.(check int) "value" 42 o.Runner.Pool.value;
      Alcotest.(check int) "no network, no events" 0
        o.Runner.Pool.metrics.Runner.Metrics.events_fired
  | _ -> Alcotest.fail "expected one outcome"

let test_pool_failure_reported () =
  let jobs_list =
    [
      Runner.Job.pure ~label:"ok" (fun () -> 1);
      Runner.Job.pure ~label:"boom" (fun () -> failwith "expected");
    ]
  in
  match Runner.Pool.run ~jobs:2 jobs_list with
  | _ -> Alcotest.fail "must raise"
  | exception Runner.Pool.Job_failed (label, Failure msg) ->
      Alcotest.(check string) "failing job label" "boom" label;
      Alcotest.(check string) "original exception" "expected" msg
  | exception _ -> Alcotest.fail "wrong exception"

let test_pool_empty_and_clamped () =
  Alcotest.(check int) "empty job list" 0
    (List.length (Runner.Pool.run ~jobs:4 ([] : unit Runner.Job.t list)));
  (* jobs < 1 is clamped to sequential execution. *)
  match Runner.Pool.run ~jobs:0 [ Runner.Job.pure ~label:"x" (fun () -> 7) ] with
  | [ o ] -> Alcotest.(check int) "clamped to 1" 7 o.Runner.Pool.value
  | _ -> Alcotest.fail "expected one outcome"

let test_sharing_sweep_deterministic () =
  (* End-to-end: the experiment-level sweep is bit-identical for any
     jobs count (short run to keep the suite fast). *)
  let run jobs =
    List.map
      (fun (r : Experiments.Sharing.result) ->
        ( r.Experiments.Sharing.ratio,
          r.Experiments.Sharing.rla.Rla.Sender.send_rate,
          r.Experiments.Sharing.wtcp.Tcp.Sender.send_rate,
          r.Experiments.Sharing.essentially_fair ))
      (Runner.Pool.values
         (Experiments.Sharing.sweep ~gateway:Experiments.Scenario.Droptail
            ~case_indices:[ 1 ] ~duration:12.0 ~warmup:4.0 ~seeds:[ 1; 2 ]
            ~jobs ()))
  in
  Alcotest.(check bool) "sweep jobs=1 equals jobs=4" true (run 1 = run 4)

let test_json_emitter () =
  let doc =
    Runner.Json.Obj
      [
        ("name", Runner.Json.String "x\"y");
        ("n", Runner.Json.Int 3);
        ("f", Runner.Json.Float 0.25);
        ("whole", Runner.Json.Float 54.0);
        ("nan", Runner.Json.Float Float.nan);
        ("ok", Runner.Json.Bool true);
        ("xs", Runner.Json.List [ Runner.Json.Int 1; Runner.Json.Null ]);
      ]
  in
  Alcotest.(check string) "rendering"
    "{\"name\":\"x\\\"y\",\"n\":3,\"f\":0.25,\"whole\":54.0,\"nan\":null,\"ok\":true,\"xs\":[1,null]}"
    (Runner.Json.to_string doc)

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      match Runner.Json.to_string (Runner.Json.Float f) with
      | s ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "roundtrip %h" f)
            f (float_of_string s))
    [ 0.1; 1.0 /. 3.0; 2.492776886035313; 1e-9; 123456.789; 54.0 ]

let test_json_parse_roundtrip () =
  (* The bench-trend gate reads perf documents back with [of_string];
     emit → parse must be the identity on everything the emitter
     produces (minus [Verbatim] and non-finite floats). *)
  let doc =
    Runner.Json.Obj
      [
        ("name", Runner.Json.String "x\"y\\z\n");
        ("n", Runner.Json.Int (-3));
        ("f", Runner.Json.Float 0.25);
        ("whole", Runner.Json.Float 54.0);
        ("ok", Runner.Json.Bool true);
        ("no", Runner.Json.Bool false);
        ("nil", Runner.Json.Null);
        ( "xs",
          Runner.Json.List
            [
              Runner.Json.Int 1;
              Runner.Json.Obj [ ("k", Runner.Json.String "v") ];
            ] );
      ]
  in
  Alcotest.(check bool) "emit/parse identity" true
    (Runner.Json.of_string (Runner.Json.to_string doc) = doc)

let test_json_parse_accessors () =
  let j = Runner.Json.of_string {| {"a": 1, "b": 2.5, "c": "s", "d": 1e2} |} in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Option.bind (Runner.Json.member "a" j) Runner.Json.to_int_opt);
  Alcotest.(check (option (float 0.0))) "float member" (Some 2.5)
    (Option.bind (Runner.Json.member "b" j) Runner.Json.to_float_opt);
  Alcotest.(check (option (float 0.0))) "int as float" (Some 1.0)
    (Option.bind (Runner.Json.member "a" j) Runner.Json.to_float_opt);
  Alcotest.(check (option string)) "string member" (Some "s")
    (Option.bind (Runner.Json.member "c" j) Runner.Json.to_string_opt);
  Alcotest.(check (option (float 0.0))) "exponent is float" (Some 100.0)
    (Option.bind (Runner.Json.member "d" j) Runner.Json.to_float_opt);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (Runner.Json.member "zz" j) Runner.Json.to_int_opt)

let test_json_parse_errors () =
  let rejects s =
    try
      ignore (Runner.Json.of_string s);
      false
    with Runner.Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (rejects "{} x");
  Alcotest.(check bool) "unterminated string" true (rejects "\"abc");
  Alcotest.(check bool) "bare word" true (rejects "flase");
  Alcotest.(check bool) "missing colon" true (rejects "{\"a\" 1}");
  Alcotest.(check bool) "empty input" true (rejects "")

let () =
  Alcotest.run "runner"
    [
      ( "pool",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_pool_deterministic_across_jobs;
          Alcotest.test_case "submission order" `Quick test_pool_submission_order;
          Alcotest.test_case "metrics" `Quick test_pool_metrics;
          Alcotest.test_case "pure job metrics" `Quick test_pool_pure_job_metrics;
          Alcotest.test_case "failure reported" `Quick test_pool_failure_reported;
          Alcotest.test_case "empty and clamped" `Quick test_pool_empty_and_clamped;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "sharing sweep deterministic" `Slow
            test_sharing_sweep_deterministic;
        ] );
      ( "json",
        [
          Alcotest.test_case "emitter" `Quick test_json_emitter;
          Alcotest.test_case "float roundtrip" `Quick test_json_float_roundtrip;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse accessors" `Quick test_json_parse_accessors;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
    ]
