(* Tests for the fault-injection subsystem: timeline construction and
   validation, spec-string parsing, seeded generation, the injector's
   link and membership semantics (including the last-receiver guard and
   observability counters), and the control property that the churn
   scenario without faults reproduces the sharing experiment
   bit-for-bit. *)

let check_float = Alcotest.(check (float 1e-9))

let link_config ?(bw = 8_000_000.0) () =
  {
    Net.Link.bandwidth_bps = bw;
    prop_delay = 0.01;
    queue = Net.Queue_disc.Droptail;
    capacity = 50;
    phase_jitter = false;
  }

(* ------------------------------------------------------------------ *)
(* Timeline                                                           *)
(* ------------------------------------------------------------------ *)

let test_timeline_scripted_sorts () =
  let t =
    Faults.Timeline.scripted
      [
        (5.0, Faults.Timeline.Receiver_leave 1);
        (1.0, Faults.Timeline.Receiver_join 2);
        (5.0, Faults.Timeline.Receiver_join 3);
      ]
  in
  Alcotest.(check int) "three entries" 3 (Faults.Timeline.length t);
  match Faults.Timeline.entries t with
  | [ a; b; c ] ->
      check_float "earliest first" 1.0 a.Faults.Timeline.time;
      (* Stable: the two t=5 events keep their script order. *)
      Alcotest.(check bool) "leave before join at the tie" true
        (b.Faults.Timeline.event = Faults.Timeline.Receiver_leave 1
        && c.Faults.Timeline.event = Faults.Timeline.Receiver_join 3)
  | _ -> Alcotest.fail "expected three entries"

let test_timeline_validation () =
  let rejects events =
    try
      ignore (Faults.Timeline.scripted events);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative time" true
    (rejects [ (-1.0, Faults.Timeline.Receiver_leave 1) ]);
  Alcotest.(check bool) "zero bandwidth" true
    (rejects [ (1.0, Faults.Timeline.Set_bandwidth ((0, 1), 0.0)) ]);
  Alcotest.(check bool) "negative delay" true
    (rejects [ (1.0, Faults.Timeline.Set_delay ((0, 1), -0.5)) ])

let test_spec_roundtrip () =
  let spec =
    "120:down:5-14; 150:up:5-14; 130:leave:20; 200:join:20; \
     140:tcpstart:1:15; 250:tcpstop:1; 160:bw:1-2:5e6; 170:delay:1-2:0.05"
  in
  match Faults.Timeline.of_spec spec with
  | Error e ->
      Alcotest.failf "parse failed: %s" (Faults.Timeline.parse_error_to_string e)
  | Ok t -> (
      Alcotest.(check int) "eight entries" 8 (Faults.Timeline.length t);
      match Faults.Timeline.of_spec (Faults.Timeline.to_spec t) with
      | Error e ->
          Alcotest.failf "round-trip failed: %s"
            (Faults.Timeline.parse_error_to_string e)
      | Ok t' ->
          Alcotest.(check bool) "round-trips" true
            (Faults.Timeline.entries t = Faults.Timeline.entries t'))

let test_spec_errors () =
  let fails s =
    match Faults.Timeline.of_spec s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "unknown event" true (fails "10:explode:1-2");
  Alcotest.(check bool) "bad link" true (fails "10:down:xy");
  Alcotest.(check bool) "negative time" true (fails "-3:leave:20");
  Alcotest.(check bool) "missing field" true (fails "10:tcpstart:1");
  Alcotest.(check bool) "zero bandwidth" true (fails "10:bw:1-2:0")

let test_spec_error_position () =
  match Faults.Timeline.of_spec "10:down:1-2; 20:explode:3; 30:up:1-2" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      Alcotest.(check int) "entry index" 1 e.Faults.Timeline.pe_index;
      (* The second entry's text starts after "10:down:1-2; ". *)
      Alcotest.(check int) "byte offset" 13 e.Faults.Timeline.pe_offset;
      Alcotest.(check string) "entry text" "20:explode:3"
        e.Faults.Timeline.pe_entry;
      let contains ~sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      let msg = Faults.Timeline.parse_error_to_string e in
      Alcotest.(check bool) "message cites 1-based entry 2" true
        (contains ~sub:"entry 2" msg && contains ~sub:"offset 13" msg)

(* qcheck: [of_spec] inverts [to_spec] for any scripted timeline whose
   floats survive %g formatting — times and delays are quarter-second
   multiples, bandwidths whole kbit/s, both exact in six significant
   digits. *)
let qcheck_spec_roundtrip =
  let gen_event =
    QCheck.Gen.(
      let addr = int_bound 99 in
      let link = pair addr addr in
      let flow = int_bound 9 in
      let quarter hi = map (fun k -> float_of_int k *. 0.25) (int_bound hi) in
      let bw = map (fun k -> float_of_int (k + 1) *. 1000.0) (int_bound 9999) in
      oneof
        [
          map (fun l -> Faults.Timeline.Link_down l) link;
          map (fun l -> Faults.Timeline.Link_up l) link;
          map (fun (l, b) -> Faults.Timeline.Set_bandwidth (l, b))
            (pair link bw);
          map (fun (l, d) -> Faults.Timeline.Set_delay (l, d))
            (pair link (quarter 40));
          map (fun a -> Faults.Timeline.Receiver_leave a) addr;
          map (fun a -> Faults.Timeline.Receiver_join a) addr;
          map (fun (id, dst) -> Faults.Timeline.Flow_start { id; dst })
            (pair flow addr);
          map (fun id -> Faults.Timeline.Flow_stop { id }) flow;
          map
            (fun (flow, (dst, seq)) ->
              Faults.Timeline.Rst_inject { flow; dst; seq })
            (pair flow (pair addr (int_bound 100_000)));
          map
            (fun (flow, (dst, seq)) ->
              Faults.Timeline.Data_inject { flow; dst; seq })
            (pair flow (pair addr (int_bound 100_000)));
        ])
  in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (pair (map (fun k -> float_of_int k *. 0.25) (int_bound 4000)) gen_event))
  in
  let print events =
    Faults.Timeline.to_spec (Faults.Timeline.scripted events)
  in
  QCheck.Test.make ~name:"of_spec inverts to_spec" ~count:500
    (QCheck.make ~print gen) (fun events ->
      let t = Faults.Timeline.scripted events in
      match Faults.Timeline.of_spec (Faults.Timeline.to_spec t) with
      | Error e ->
          QCheck.Test.fail_report (Faults.Timeline.parse_error_to_string e)
      | Ok t' -> Faults.Timeline.entries t' = Faults.Timeline.entries t)

let gen_params =
  {
    (Faults.Timeline.default_gen ~start:10.0 ~horizon:60.0) with
    Faults.Timeline.outage_links = [ (1, 2); (1, 3) ];
    outage_rate = 0.1;
    churn_receivers = [ 4; 5; 6 ];
    churn_rate = 0.1;
    flow_dsts = [ 4; 5 ];
    flow_rate = 0.05;
  }

let test_generate_deterministic () =
  let draw seed =
    Faults.Timeline.to_spec
      (Faults.Timeline.generate ~rng:(Sim.Rng.create seed) gen_params)
  in
  Alcotest.(check string) "same seed, same timeline" (draw 7) (draw 7);
  Alcotest.(check bool) "timeline is nonempty at these rates" true
    (String.length (draw 7) > 0);
  Alcotest.(check bool) "different seed, different timeline" true
    (draw 7 <> draw 8)

let test_generate_shape () =
  let t = Faults.Timeline.generate ~rng:(Sim.Rng.create 3) gen_params in
  let count p =
    List.length (List.filter p (Faults.Timeline.entries t))
  in
  let is_down e =
    match e.Faults.Timeline.event with
    | Faults.Timeline.Link_down _ -> true
    | _ -> false
  and is_up e =
    match e.Faults.Timeline.event with
    | Faults.Timeline.Link_up _ -> true
    | _ -> false
  and is_leave e =
    match e.Faults.Timeline.event with
    | Faults.Timeline.Receiver_leave _ -> true
    | _ -> false
  and is_join e =
    match e.Faults.Timeline.event with
    | Faults.Timeline.Receiver_join _ -> true
    | _ -> false
  in
  (* Every outage heals and every leave rejoins. *)
  Alcotest.(check int) "downs pair with ups" (count is_down) (count is_up);
  Alcotest.(check int) "leaves pair with joins" (count is_leave) (count is_join);
  List.iter
    (fun e ->
      if e.Faults.Timeline.time < 10.0 then
        Alcotest.failf "event before start: %g" e.Faults.Timeline.time)
    (Faults.Timeline.entries t);
  (* Down events land before the horizon (repairs may trail past it). *)
  List.iter
    (fun e ->
      if is_down e && e.Faults.Timeline.time >= 60.0 then
        Alcotest.failf "outage after horizon: %g" e.Faults.Timeline.time)
    (Faults.Timeline.entries t)

(* ------------------------------------------------------------------ *)
(* Injector: link faults                                              *)
(* ------------------------------------------------------------------ *)

(* Two nodes, one duplex link, a packet injected every 100 ms. *)
let two_node_flood () =
  let net = Net.Network.create ~seed:1 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore (Net.Network.duplex net a b (link_config ()));
  Net.Network.install_routes net;
  let arrivals = ref [] in
  Net.Node.attach (Net.Network.node net b) ~flow:0 (fun pkt ->
      arrivals := (pkt.Net.Packet.uid, Net.Network.now net) :: !arrivals);
  let sched = Net.Network.scheduler net in
  for i = 0 to 99 do
    ignore
      (Sim.Scheduler.schedule_at sched
         (0.1 *. float_of_int i)
         (fun () ->
           Net.Network.send net
             (Net.Network.make_packet net ~flow:0 ~src:a
                ~dst:(Net.Packet.Unicast b) ~size:1000 ~payload:Net.Packet.Raw)))
  done;
  (net, a, b, arrivals)

let test_injector_link_outage () =
  let net, a, b, arrivals = two_node_flood () in
  let timeline =
    Faults.Timeline.scripted
      [
        (3.0, Faults.Timeline.Link_down (a, b));
        (5.0, Faults.Timeline.Link_up (a, b));
      ]
  in
  let inj = Faults.Injector.install ~net timeline in
  Net.Network.run_until net 12.0;
  Alcotest.(check int) "both events applied" 2 (Faults.Injector.injected inj);
  Alcotest.(check int) "one outage" 1 (Faults.Injector.outages inj);
  Alcotest.(check int) "nothing skipped" 0 (Faults.Injector.skipped inj);
  check_float "two seconds of downtime" 2.0 (Faults.Injector.downtime inj);
  let link = Option.get (Net.Network.link_between net a b) in
  Alcotest.(check bool) "drops counted on the link" true
    ((Net.Link.stats link).Net.Link.dropped > 0);
  (* Traffic flows before the outage, stops during it, resumes after. *)
  let during, outside =
    List.partition (fun (_, t) -> t > 3.0 && t < 5.0) !arrivals
  in
  Alcotest.(check int) "silence during the outage" 0 (List.length during);
  Alcotest.(check bool) "deliveries resume after repair" true
    (List.exists (fun (_, t) -> t > 5.0) outside);
  Alcotest.(check bool) "deliveries before the outage" true
    (List.exists (fun (_, t) -> t < 3.0) outside)

let test_injector_redundant_and_unknown () =
  let net, a, b, _ = two_node_flood () in
  let timeline =
    Faults.Timeline.scripted
      [
        (1.0, Faults.Timeline.Link_up (a, b));
        (* already up *)
        (2.0, Faults.Timeline.Link_down (a, b));
        (2.5, Faults.Timeline.Link_down (a, b));
        (* already down *)
        (3.0, Faults.Timeline.Link_up (a, b));
        (4.0, Faults.Timeline.Link_down (7, 9));
        (* no such link *)
      ]
  in
  let inj = Faults.Injector.install ~net timeline in
  Net.Network.run_until net 6.0;
  Alcotest.(check int) "all entries fired" 5 (Faults.Injector.injected inj);
  Alcotest.(check int) "one real outage" 1 (Faults.Injector.outages inj);
  Alcotest.(check int) "three skipped" 3 (Faults.Injector.skipped inj);
  Alcotest.(check bool) "link healthy at the end" true
    (Net.Link.is_up (Option.get (Net.Network.link_between net a b)))

let test_injector_degradation () =
  let net, a, b, arrivals = two_node_flood () in
  let timeline =
    Faults.Timeline.scripted
      [
        (3.0, Faults.Timeline.Set_bandwidth ((a, b), 80_000.0));
        (6.0, Faults.Timeline.Set_delay ((a, b), 0.2));
      ]
  in
  ignore (Faults.Injector.install ~net timeline);
  Net.Network.run_until net 12.0;
  let link = Option.get (Net.Network.link_between net a b) in
  check_float "bandwidth applied" 80_000.0
    (Net.Link.config link).Net.Link.bandwidth_bps;
  check_float "delay applied" 0.2 (Net.Link.config link).Net.Link.prop_delay;
  (* 0.1 s service at the degraded rate still beats the 0.1 s arrival
     spacing, so everything is eventually delivered, in order. *)
  let uids = List.rev_map fst !arrivals in
  Alcotest.(check bool) "no reordering across reconfigurations" true
    (List.sort compare uids = uids)

(* ------------------------------------------------------------------ *)
(* Injector: membership churn over a live RLA session                 *)
(* ------------------------------------------------------------------ *)

let rla_star ?(seed = 1) () =
  let net = Net.Network.create ~seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  ignore (Net.Network.duplex net s hub (link_config ~bw:100e6 ()));
  List.iter
    (fun leaf -> ignore (Net.Network.duplex net hub leaf (link_config ())))
    leaves;
  Net.Network.install_routes net;
  (net, s, leaves)

let membership_handlers rla =
  {
    Faults.Injector.on_receiver_leave =
      (fun addr -> Rla.Sender.drop_receiver rla addr);
    on_receiver_join =
      (fun addr ->
        match Rla.Sender.add_receiver rla addr with
        | ok -> ok
        | exception Invalid_argument _ -> false);
    on_flow_start = (fun ~id:_ ~dst:_ -> false);
    on_flow_stop = (fun ~id:_ -> false);
    on_rst_inject = (fun ~flow:_ ~dst:_ ~seq:_ -> false);
    on_data_inject = (fun ~flow:_ ~dst:_ ~seq:_ -> false);
    membership = (fun () -> List.length (Rla.Sender.active_receivers rla));
  }

let test_injector_membership_churn () =
  let net, s, leaves = rla_star () in
  let registry = Obs.Registry.create () in
  Net.Network.set_registry net (Some registry);
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  let r0 = List.nth leaves 0
  and r1 = List.nth leaves 1
  and r2 = List.nth leaves 2 in
  let timeline =
    Faults.Timeline.scripted
      [
        (2.0, Faults.Timeline.Receiver_leave r0);
        (3.0, Faults.Timeline.Receiver_leave r1);
        (* membership is 1 now: the guard must refuse this leave *)
        (4.0, Faults.Timeline.Receiver_leave r2);
        (5.0, Faults.Timeline.Receiver_join r0);
        (* duplicate join: skipped *)
        (6.0, Faults.Timeline.Receiver_join r0);
      ]
  in
  let inj =
    Faults.Injector.install ~net ~handlers:(membership_handlers rla) timeline
  in
  Net.Network.run_until net 10.0;
  Alcotest.(check int) "all entries fired" 5 (Faults.Injector.injected inj);
  Alcotest.(check int) "last-receiver leave and re-join skipped" 2
    (Faults.Injector.skipped inj);
  Alcotest.(check bool) "r2 survived" true
    (List.mem r2 (Rla.Sender.active_receivers rla));
  Alcotest.(check bool) "r0 is back" true
    (List.mem r0 (Rla.Sender.active_receivers rla));
  Alcotest.(check int) "two active members" 2
    (List.length (Rla.Sender.active_receivers rla));
  (* Observability: the injector published its counters and gauges. *)
  let counters = Obs.Registry.counters registry in
  Alcotest.(check int) "faults.injected counter" 5
    (List.assoc "faults.injected" counters);
  Alcotest.(check int) "faults.skipped counter" 2
    (List.assoc "faults.skipped" counters);
  Alcotest.(check int) "faults.outages counter" 0
    (List.assoc "faults.outages" counters);
  check_float "membership gauge" 2.0
    (List.assoc "faults.membership" (Obs.Registry.gauges registry));
  (* The session keeps making progress with the final membership. *)
  let before = Rla.Sender.max_reach_all rla in
  Net.Network.run_until net 20.0;
  Alcotest.(check bool) "frontier still advances" true
    (Rla.Sender.max_reach_all rla > before)

(* ------------------------------------------------------------------ *)
(* Churn scenario: control equivalence and default script             *)
(* ------------------------------------------------------------------ *)

let small_sharing =
  let base =
    Experiments.Sharing.default_config ~gateway:Experiments.Scenario.Droptail
      ~case:(Experiments.Tree.case_of_index 3)
  in
  { base with Experiments.Sharing.duration = 20.0; warmup = 6.0; seed = 11 }

let test_churn_no_faults_matches_sharing () =
  (* With faults disabled the churn scenario must reproduce the plain
     sharing experiment bit-for-bit: same scheduler event count, same
     fairness numbers, same recorded series. *)
  let reg_a = Obs.Registry.create () in
  let net_a, plain =
    Experiments.Sharing.run_with_net ~registry:reg_a small_sharing
  in
  let reg_b = Obs.Registry.create () in
  let net_b, churned =
    Experiments.Churn.run_with_net ~registry:reg_b
      {
        Experiments.Churn.sharing = small_sharing;
        faults = Experiments.Churn.No_faults;
      }
  in
  let fired net = Sim.Scheduler.events_fired (Net.Network.scheduler net) in
  Alcotest.(check int) "same event count" (fired net_a) (fired net_b);
  Alcotest.(check bool) "same sharing result" true
    (plain = churned.Experiments.Churn.sharing);
  let dump reg =
    Runner.Json.to_string (Runner.Report.registry_json reg)
  in
  Alcotest.(check bool) "byte-identical registry dumps" true
    (dump reg_a = dump reg_b);
  (match churned.Experiments.Churn.epochs with
  | [ e ] ->
      check_float "single epoch covers the window" 6.0
        e.Experiments.Churn.t_start;
      check_float "ends at the horizon" 20.0 e.Experiments.Churn.t_end
  | l -> Alcotest.failf "expected one epoch, got %d" (List.length l));
  Alcotest.(check int) "no injections" 0 churned.Experiments.Churn.injected

let test_churn_default_script () =
  let result =
    Experiments.Churn.run
      {
        Experiments.Churn.sharing = small_sharing;
        faults = Experiments.Churn.Default_script;
      }
  in
  Alcotest.(check int) "six events injected" 6
    result.Experiments.Churn.injected;
  Alcotest.(check int) "one outage" 1 result.Experiments.Churn.outages;
  Alcotest.(check int) "nothing skipped" 0 result.Experiments.Churn.skipped;
  Alcotest.(check int) "one churned flow started" 1
    result.Experiments.Churn.flows_started;
  Alcotest.(check int) "and stopped" 1 result.Experiments.Churn.flows_stopped;
  Alcotest.(check bool) "positive downtime" true
    (result.Experiments.Churn.downtime > 0.0);
  Alcotest.(check int) "seven epochs" 7
    (List.length result.Experiments.Churn.epochs);
  (* Membership dips to 26 during the absence and recovers to 27. *)
  let n_active =
    List.map
      (fun e -> e.Experiments.Churn.n_active)
      result.Experiments.Churn.epochs
  in
  Alcotest.(check bool) "membership dips during the absence" true
    (List.mem 26 n_active);
  (match List.rev n_active with
  | last :: _ -> Alcotest.(check int) "membership recovers" 27 last
  | [] -> Alcotest.fail "no epochs");
  (* Epochs tile the measurement window. *)
  ignore
    (List.fold_left
       (fun prev e ->
         check_float "contiguous epochs" prev e.Experiments.Churn.t_start;
         e.Experiments.Churn.t_end)
       6.0 result.Experiments.Churn.epochs)

let test_churn_deterministic_replay () =
  let run () =
    let result =
      Experiments.Churn.run
        {
          Experiments.Churn.sharing = small_sharing;
          faults =
            Experiments.Churn.Generated
              {
                Experiments.Churn.gen_seed = 5;
                outage_rate = 0.05;
                churn_rate = 0.1;
                flow_rate = 0.05;
              };
        }
    in
    Runner.Json.to_string (Experiments.Churn.to_json result)
  in
  Alcotest.(check string) "same seed, byte-identical report" (run ()) (run ())

let () =
  Alcotest.run "faults"
    [
      ( "timeline",
        [
          Alcotest.test_case "scripted sorts stably" `Quick
            test_timeline_scripted_sorts;
          Alcotest.test_case "validation" `Quick test_timeline_validation;
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "spec error position" `Quick
            test_spec_error_position;
          QCheck_alcotest.to_alcotest qcheck_spec_roundtrip;
          Alcotest.test_case "generate deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "generate shape" `Quick test_generate_shape;
        ] );
      ( "injector",
        [
          Alcotest.test_case "link outage" `Quick test_injector_link_outage;
          Alcotest.test_case "redundant and unknown" `Quick
            test_injector_redundant_and_unknown;
          Alcotest.test_case "degradation" `Quick test_injector_degradation;
          Alcotest.test_case "membership churn" `Quick
            test_injector_membership_churn;
        ] );
      ( "churn",
        [
          Alcotest.test_case "no faults = sharing" `Slow
            test_churn_no_faults_matches_sharing;
          Alcotest.test_case "default script" `Slow test_churn_default_script;
          Alcotest.test_case "deterministic replay" `Slow
            test_churn_deterministic_replay;
        ] );
    ]
