val compare_floats : float -> float -> int

val total : int list -> int

val sorted : int list -> int list
