(* Fixture: determinism-clean code — no findings expected. *)
let compare_floats = Float.compare

let total xs = List.fold_left ( + ) 0 xs

let sorted xs = List.sort Int.compare xs
