(* Fixture: unordered Hashtbl traversal. *)
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl

let sum tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let ok tbl = Hashtbl.length tbl
