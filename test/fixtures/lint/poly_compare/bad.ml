(* Fixture: every syntactic face of polymorphic comparison. *)
type e = { prio : float; seq : int }

let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let sort xs = List.sort compare xs

let hash x = Hashtbl.hash x

let is_zero x = x = 0.0

let fine a b = Float.compare a b < 0
