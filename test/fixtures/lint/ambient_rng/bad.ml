(* Fixture: ambient-rng must flag the global Random API but not the
   explicit-state one. *)
let () = Random.self_init ()

let roll () = Random.int 6

let ok_state st = Random.State.int st 6
