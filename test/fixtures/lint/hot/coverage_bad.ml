(* A hot annotation naming a binding this file does not define: the
   hot-coverage integrity check must fail rather than silently skip. *)

(* lint: hot no_such_function -- fixture: stale annotation *)
let actual x = x
