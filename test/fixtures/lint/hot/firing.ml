(* A hot-annotated function that allocates: the tuple boxes on every
   call. *)

(* lint: hot pair -- fixture: this fast path must stay allocation-free *)
let pair x = (x, x)
