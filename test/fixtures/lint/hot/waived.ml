(* The firing.ml allocation under an explicit waiver. *)

(* lint: hot pair -- fixture: this fast path must stay allocation-free *)
let pair x =
  (* lint: allow alloc-hot -- fixture: the tuple is the declared API *)
  (x, x)
