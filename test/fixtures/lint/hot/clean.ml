(* A hot-annotated function that genuinely does not allocate. *)

(* lint: hot bump -- fixture: bare integer arithmetic *)
let bump x = x + 1

(* Error exits are exempt even though invalid_arg builds a string. *)
(* lint: hot checked -- fixture: the happy path is allocation-free *)
let checked x =
  if x < 0 then invalid_arg "checked: negative";
  x + 1
