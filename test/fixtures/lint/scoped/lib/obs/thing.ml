(* Fixture: directory scoping.  Under lib/obs the hashtbl-order rule
   applies but poly-compare does not. *)
let sort xs = List.sort compare xs

let dump tbl = Hashtbl.iter (fun _ v -> print_int v) tbl
