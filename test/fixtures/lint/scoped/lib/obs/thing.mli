val sort : int list -> int list

val dump : (string, int) Hashtbl.t -> unit
