(* Transitive escape: the spawned closure calls [helper], which calls
   [bump], which mutates a module-level ref — three hops from the
   spawn site to the shared state. *)

let hits = ref 0

let bump () = incr hits

let helper () = bump ()

let start () = ignore (Domain.spawn (fun () -> helper ()))
