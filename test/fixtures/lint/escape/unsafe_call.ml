(* A worker-reachable function using ambient process state: Printf
   writes to the shared stdout channel, which is not domain-safe. *)

let log () = Printf.printf "tick\n"

let start () = ignore (Domain.spawn (fun () -> log ()))
