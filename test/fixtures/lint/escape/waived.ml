(* The shared_ref.ml violation under an explicit waiver. *)

(* lint: allow shared-mutable-capture -- fixture: pretend this counter
   is read-only after spawn *)
let hits = ref 0

let bump () = incr hits

let helper () = bump ()

let start () = ignore (Domain.spawn (fun () -> helper ()))
