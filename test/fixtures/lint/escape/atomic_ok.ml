(* The same three-hop shape as shared_ref.ml, but the shared cell is
   an Atomic — exactly the fix the rule message suggests. *)

let hits = Atomic.make 0

let bump () = Atomic.incr hits

let helper () = bump ()

let start () = ignore (Domain.spawn (fun () -> helper ()))
