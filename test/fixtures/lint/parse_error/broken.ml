(* Fixture: does not parse. *)
let let let = in in
