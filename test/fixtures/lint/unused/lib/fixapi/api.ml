let used = 1

let unused = 2
