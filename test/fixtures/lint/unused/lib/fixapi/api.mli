val used : int

val unused : int
