let () = print_int Fixapi.Api.used
