(* Fixture: an implementation with no interface. *)
let answer = 42
