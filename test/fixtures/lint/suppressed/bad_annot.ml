(* Fixture: malformed annotations are findings themselves, and a
   malformed annotation suppresses nothing. *)

(* lint: allow wall-clock *)
let now () = Unix.gettimeofday ()

(* lint: allow no-such-rule -- a reason for an unknown rule *)
let x = 1

(* lint: forbid wall-clock -- unknown directive *)
let y = 2
