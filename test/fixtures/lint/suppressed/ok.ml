(* Fixture: the same violations as the bad fixtures, every one waived
   by a well-formed annotation — the linter must report nothing. *)

(* lint: allow-file mli-required -- fixture: suppression reaches project-level findings too *)

(* lint: allow wall-clock -- fixture: vetted measurement sink *)
let now () = Unix.gettimeofday ()

let roll () =
  (* lint: allow ambient-rng -- fixture: vetted entropy sink *)
  Random.int 6

(* lint: allow-file poly-compare -- fixture: whole-file waiver *)
let sort xs = List.sort compare xs

let is_zero x = x = 0.0

let sum tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 (* lint: allow hashtbl-order -- fixture: order-independent sum *)
