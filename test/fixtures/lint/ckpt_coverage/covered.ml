(* Mutable run state whose interface exports the capture/restore pair:
   checkpoints can carry it, so ckpt-coverage stays silent. *)

type t = { mutable count : int }

let create () = { count = 0 }
let bump t = t.count <- t.count + 1
let capture t = t.count
let restore t count = t.count <- count
