type t

val create : string -> t
val bump : t -> unit
val read : t -> string * int
