(* Mutable run state with no capture/restore in the interface: the
   ckpt-coverage rule must fire, anchored at the mutable field. *)

type t = { mutable count : int; label : string }

let create label = { count = 0; label }
let bump t = t.count <- t.count + 1
let read t = (t.label, t.count)
