(* lint: allow-file ckpt-coverage -- ephemeral diagnostic counter, never
   part of a checkpoint *)

type t = { mutable hits : int }

let create () = { hits = 0 }
let hit t = t.hits <- t.hits + 1
let hits t = t.hits
