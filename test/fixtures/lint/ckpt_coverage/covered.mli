type t

val create : unit -> t
val bump : t -> unit
val capture : t -> int
val restore : t -> int -> unit
