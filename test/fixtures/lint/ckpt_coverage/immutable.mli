type t

val create : string -> float -> t
val label : t -> string
val weight : t -> float
