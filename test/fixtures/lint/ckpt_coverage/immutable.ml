(* A record without mutable fields holds no run state the checkpoint
   could miss; the rule must not fire here. *)

type t = { label : string; weight : float }

let create label weight = { label; weight }
let label t = t.label
let weight t = t.weight
