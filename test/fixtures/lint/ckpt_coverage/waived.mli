type t

val create : unit -> t
val hit : t -> unit
val hits : t -> int
