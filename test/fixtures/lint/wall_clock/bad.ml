(* Fixture: the wall-clock rule must flag both reads. *)
let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()
