(* Tests for the simulation substrate: heap, rng, scheduler, trace. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h = Sim.Heap.create () in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Sim.Heap.length h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop" None (Sim.Heap.pop h);
  Alcotest.(check (option (float 0.0))) "min_prio" None (Sim.Heap.min_prio h)

let test_heap_single () =
  let h = Sim.Heap.create () in
  Sim.Heap.add h ~prio:3.5 "x";
  Alcotest.(check int) "length" 1 (Sim.Heap.length h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "peek" (Some (3.5, "x")) (Sim.Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) string)))
    "pop" (Some (3.5, "x")) (Sim.Heap.pop h);
  Alcotest.(check bool) "empty after" true (Sim.Heap.is_empty h)

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  List.iter (fun p -> Sim.Heap.add h ~prio:p p)
    [ 5.0; 1.0; 3.0; 2.0; 4.0; 0.5 ];
  let rec drain acc =
    match Sim.Heap.pop h with
    | None -> List.rev acc
    | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list (float 0.0)))
    "ascending" [ 0.5; 1.0; 2.0; 3.0; 4.0; 5.0 ] (drain [])

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.add h ~prio:1.0 v) [ "a"; "b"; "c" ];
  Sim.Heap.add h ~prio:0.5 "first";
  let order = ref [] in
  let rec drain () =
    match Sim.Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "insertion order on ties" [ "first"; "a"; "b"; "c" ] (List.rev !order)

let test_heap_clear () =
  let h = Sim.Heap.create () in
  for i = 1 to 10 do
    Sim.Heap.add h ~prio:(float_of_int i) i
  done;
  Sim.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Sim.Heap.is_empty h);
  Sim.Heap.add h ~prio:1.0 7;
  Alcotest.(check (option (pair (float 0.0) int)))
    "usable after clear" (Some (1.0, 7)) (Sim.Heap.pop h)

let test_heap_iter () =
  let h = Sim.Heap.create () in
  List.iter (fun p -> Sim.Heap.add h ~prio:p (int_of_float p)) [ 3.0; 1.0; 2.0 ];
  let sum = ref 0 in
  Sim.Heap.iter h ~f:(fun _ v -> sum := !sum + v);
  Alcotest.(check int) "iter visits all" 6 !sum

let test_heap_interleaved () =
  let h = Sim.Heap.create () in
  Sim.Heap.add h ~prio:2.0 2;
  Sim.Heap.add h ~prio:1.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "pop 1" (Some (1.0, 1))
    (Sim.Heap.pop h);
  Sim.Heap.add h ~prio:0.5 0;
  Alcotest.(check (option (pair (float 0.0) int))) "pop 0" (Some (0.5, 0))
    (Sim.Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop 2" (Some (2.0, 2))
    (Sim.Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun prios ->
      let h = Sim.Heap.create () in
      List.iter (fun p -> Sim.Heap.add h ~prio:p ()) prios;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare prios)

(* The heap's full contract in one property: pop order equals a stable
   sort of the insertion sequence by priority.  Small integer
   priorities force plenty of ties, so FIFO tie-breaking is exercised
   on every run, not just when random floats happen to collide. *)
let prop_heap_stable_order =
  QCheck.Test.make ~name:"heap pop order = stable sort of insertions"
    ~count:300
    QCheck.(list (int_bound 15))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iteri (fun i k -> Sim.Heap.add h ~prio:(float_of_int k) (k, i)) keys;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      drain [] = expected)

let prop_heap_length =
  QCheck.Test.make ~name:"heap length tracks adds and pops" ~count:200
    QCheck.(list (float_bound_exclusive 100.0))
    (fun prios ->
      let h = Sim.Heap.create () in
      List.iteri (fun i p -> Sim.Heap.add h ~prio:p i) prios;
      let n = List.length prios in
      let ok = ref (Sim.Heap.length h = n) in
      for remaining = n downto 1 do
        ok := !ok && Sim.Heap.length h = remaining;
        ignore (Sim.Heap.pop h)
      done;
      !ok && Sim.Heap.is_empty h)

let test_heap_pop_entry_seqs () =
  let h = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.add h ~prio:1.0 v) [ "a"; "b"; "c" ];
  let rec drain acc =
    match Sim.Heap.pop_entry h with
    | None -> List.rev acc
    | Some entry -> drain (entry :: acc)
  in
  Alcotest.(check (list (triple (float 0.0) int string)))
    "pop_entry returns insertion counters"
    [ (1.0, 0, "a"); (1.0, 1, "b"); (1.0, 2, "c") ]
    (drain [])

let test_heap_top_prio () =
  let h = Sim.Heap.create () in
  Alcotest.(check bool) "raises on empty" true
    (try
       ignore (Sim.Heap.top_prio h);
       false
     with Invalid_argument _ -> true);
  Sim.Heap.add h ~prio:2.0 "x";
  Sim.Heap.add h ~prio:1.0 "y";
  check_float "min priority" 1.0 (Sim.Heap.top_prio h);
  Alcotest.(check int) "read-only" 2 (Sim.Heap.length h)

(* The regression behind the SoA rewrite: popping used to leave the
   vacated slot pointing at the old element, pinning it until a later
   push happened to overwrite the slot.  Fill, drain, collect: every
   value must be collectable (observed through weak pointers) while
   the heap itself is still live. *)
let heap_live_after_drain prios =
  let n = List.length prios in
  let h = Sim.Heap.create () in
  let w = Weak.create (max n 1) in
  List.iteri
    (fun i p ->
      let v = ref i in
      Weak.set w i (Some v);
      Sim.Heap.add h ~prio:p v)
    prios;
  let rec drain () =
    match Sim.Heap.pop h with Some _ -> drain () | None -> ()
  in
  drain ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  (* Keep [h] reachable past the major collection: if the heap itself
     were collectable the check would pass even with leaky slots. *)
  assert (Sim.Heap.is_empty h);
  !live

let test_heap_drained_retains_no_values () =
  Alcotest.(check int) "no values pinned after drain" 0
    (heap_live_after_drain [ 5.0; 1.0; 3.0; 2.0; 4.0 ])

let prop_heap_drained_retains_no_values =
  QCheck.Test.make ~name:"drained heap retains no values" ~count:100
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun prios -> heap_live_after_drain prios = 0)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 1234 and b = Sim.Rng.create 1234 in
  for _ = 1 to 100 do
    check_float "same stream" (Sim.Rng.uniform a) (Sim.Rng.uniform b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rng.bits64 a = Sim.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_uniform_range () =
  let rng = Sim.Rng.create 7 in
  for _ = 1 to 10_000 do
    let u = Sim.Rng.uniform rng in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform out of [0,1)"
  done

let test_rng_uniform_mean () =
  let rng = Sim.Rng.create 99 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.uniform rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_int_bounds () =
  let rng = Sim.Rng.create 5 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of range";
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_int_invalid () =
  let rng = Sim.Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int rng 0))

let test_rng_bernoulli () =
  let rng = Sim.Rng.create 11 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Sim.Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli(0.3)" true (abs_float (freq -. 0.3) < 0.01)

let test_rng_exponential_mean () =
  let rng = Sim.Rng.create 13 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Sim.Rng.exponential rng 2.0 in
    if x < 0.0 then Alcotest.fail "exponential negative";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2" true (abs_float (mean -. 2.0) < 0.05)

let test_rng_split_independent () =
  let root = Sim.Rng.create 21 in
  let a = Sim.Rng.split root in
  let b = Sim.Rng.split root in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rng.bits64 a = Sim.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Sim.Rng.create 31 in
  ignore (Sim.Rng.bits64 a);
  let b = Sim.Rng.copy a in
  for _ = 1 to 10 do
    Alcotest.(check int64) "copy replays" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_range () =
  let rng = Sim.Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.range rng 3.0 7.0 in
    if v < 3.0 || v >= 7.0 then Alcotest.fail "range out of bounds"
  done

(* ------------------------------------------------------------------ *)
(* Scheduler                                                          *)
(* ------------------------------------------------------------------ *)

let test_sched_ordering () =
  let s = Sim.Scheduler.create () in
  let log = ref [] in
  ignore (Sim.Scheduler.schedule_at s 2.0 (fun () -> log := 2 :: !log));
  ignore (Sim.Scheduler.schedule_at s 1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.Scheduler.schedule_at s 3.0 (fun () -> log := 3 :: !log));
  Sim.Scheduler.run_until s 10.0;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_sched_same_time_fifo () =
  let s = Sim.Scheduler.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Scheduler.schedule_at s 1.0 (fun () -> log := i :: !log))
  done;
  Sim.Scheduler.run_until s 2.0;
  Alcotest.(check (list int)) "fifo at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_sched_clock_advances () =
  let s = Sim.Scheduler.create () in
  let seen = ref 0.0 in
  ignore (Sim.Scheduler.schedule_at s 1.5 (fun () -> seen := Sim.Scheduler.now s));
  Sim.Scheduler.run_until s 10.0;
  check_float "clock at event time" 1.5 !seen;
  check_float "clock at horizon" 10.0 (Sim.Scheduler.now s)

let test_sched_horizon_excludes_future () =
  let s = Sim.Scheduler.create () in
  let fired = ref false in
  ignore (Sim.Scheduler.schedule_at s 5.0 (fun () -> fired := true));
  Sim.Scheduler.run_until s 4.0;
  Alcotest.(check bool) "not fired" false !fired;
  Sim.Scheduler.run_until s 6.0;
  Alcotest.(check bool) "fired later" true !fired

let test_sched_past_rejected () =
  let s = Sim.Scheduler.create () in
  ignore (Sim.Scheduler.schedule_at s 2.0 (fun () -> ()));
  Sim.Scheduler.run_until s 3.0;
  Alcotest.(check bool) "raises on past" true
    (try
       ignore (Sim.Scheduler.schedule_at s 1.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_sched_cancel () =
  let s = Sim.Scheduler.create () in
  let fired = ref false in
  let id = Sim.Scheduler.schedule_at s 1.0 (fun () -> fired := true) in
  Sim.Scheduler.cancel s id;
  Sim.Scheduler.run_until s 2.0;
  Alcotest.(check bool) "cancelled event silent" false !fired

let test_sched_cancel_idempotent () =
  let s = Sim.Scheduler.create () in
  let id = Sim.Scheduler.schedule_at s 1.0 (fun () -> ()) in
  Sim.Scheduler.cancel s id;
  Sim.Scheduler.cancel s id;
  Alcotest.(check int) "pending went to zero once" 0 (Sim.Scheduler.pending s)

let test_sched_cancel_after_fire () =
  let s = Sim.Scheduler.create () in
  let id = Sim.Scheduler.schedule_at s 1.0 (fun () -> ()) in
  Sim.Scheduler.run_until s 2.0;
  Alcotest.(check int) "fired" 1 (Sim.Scheduler.events_fired s);
  Alcotest.(check int) "pending zero" 0 (Sim.Scheduler.pending s);
  (* Cancelling a fired id must be a strict no-op: no negative drift,
     no effect on later events. *)
  Sim.Scheduler.cancel s id;
  Alcotest.(check int) "pending still zero" 0 (Sim.Scheduler.pending s);
  let fired = ref false in
  ignore (Sim.Scheduler.schedule_at s 3.0 (fun () -> fired := true));
  Alcotest.(check int) "new event pending" 1 (Sim.Scheduler.pending s);
  Sim.Scheduler.run_until s 4.0;
  Alcotest.(check bool) "new event fires" true !fired;
  Alcotest.(check int) "pending back to zero" 0 (Sim.Scheduler.pending s)

let test_sched_double_cancel_then_fire_others () =
  let s = Sim.Scheduler.create () in
  let hit = ref 0 in
  let a = Sim.Scheduler.schedule_at s 1.0 (fun () -> incr hit) in
  ignore (Sim.Scheduler.schedule_at s 2.0 (fun () -> incr hit));
  Sim.Scheduler.cancel s a;
  Sim.Scheduler.cancel s a;
  Alcotest.(check int) "one pending after double cancel" 1
    (Sim.Scheduler.pending s);
  Sim.Scheduler.run_until s 3.0;
  Alcotest.(check int) "only survivor fired" 1 !hit;
  Alcotest.(check int) "fired counter" 1 (Sim.Scheduler.events_fired s);
  Alcotest.(check int) "pending exhausted" 0 (Sim.Scheduler.pending s)

let test_sched_cancel_storm_invariants () =
  (* Interleave scheduling, firing, and redundant cancels; [pending]
     must always equal the number of live events and never go
     negative. *)
  let s = Sim.Scheduler.create () in
  let ids =
    List.init 100 (fun i ->
        Sim.Scheduler.schedule_at s (float_of_int (i + 1)) (fun () -> ()))
  in
  (* Cancel the even-indexed half, twice each. *)
  List.iteri
    (fun i id ->
      if i mod 2 = 0 then begin
        Sim.Scheduler.cancel s id;
        Sim.Scheduler.cancel s id
      end)
    ids;
  Alcotest.(check int) "half pending" 50 (Sim.Scheduler.pending s);
  Sim.Scheduler.run_until s 1000.0;
  Alcotest.(check int) "half fired" 50 (Sim.Scheduler.events_fired s);
  Alcotest.(check int) "none pending" 0 (Sim.Scheduler.pending s);
  (* Cancel everything again after the fact: still a no-op. *)
  List.iter (fun id -> Sim.Scheduler.cancel s id) ids;
  Alcotest.(check int) "still none pending" 0 (Sim.Scheduler.pending s)

let test_sched_schedule_during_event () =
  let s = Sim.Scheduler.create () in
  let log = ref [] in
  ignore
    (Sim.Scheduler.schedule_at s 1.0 (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.Scheduler.schedule_after s 0.5 (fun () ->
                log := "inner" :: !log))));
  Sim.Scheduler.run_until s 2.0;
  Alcotest.(check (list string)) "nested events" [ "outer"; "inner" ]
    (List.rev !log)

let test_sched_zero_delay_event () =
  let s = Sim.Scheduler.create () in
  let count = ref 0 in
  ignore
    (Sim.Scheduler.schedule_at s 1.0 (fun () ->
         ignore (Sim.Scheduler.schedule_after s 0.0 (fun () -> incr count))));
  Sim.Scheduler.run_until s 1.0;
  Alcotest.(check int) "zero-delay fires within horizon" 1 !count

let test_sched_counters () =
  let s = Sim.Scheduler.create () in
  for i = 1 to 5 do
    ignore (Sim.Scheduler.schedule_at s (float_of_int i) (fun () -> ()))
  done;
  Alcotest.(check int) "pending" 5 (Sim.Scheduler.pending s);
  Sim.Scheduler.run_until s 3.0;
  Alcotest.(check int) "fired" 3 (Sim.Scheduler.events_fired s);
  Alcotest.(check int) "pending remaining" 2 (Sim.Scheduler.pending s)

let test_sched_run_until_empty () =
  let s = Sim.Scheduler.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Sim.Scheduler.schedule_after s 1.0 (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 5;
  Sim.Scheduler.run_until_empty s ~max_events:100;
  Alcotest.(check int) "all chained events" 5 !count

let test_sched_run_until_empty_bounded () =
  let s = Sim.Scheduler.create () in
  let count = ref 0 in
  let rec forever () =
    ignore
      (Sim.Scheduler.schedule_after s 1.0 (fun () ->
           incr count;
           forever ()))
  in
  forever ();
  Sim.Scheduler.run_until_empty s ~max_events:50;
  Alcotest.(check int) "bounded by max_events" 50 !count

let test_sched_rejects_nonfinite () =
  let s = Sim.Scheduler.create () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "schedule_at nan" true
    (raises (fun () ->
         ignore (Sim.Scheduler.schedule_at s Float.nan (fun () -> ()))));
  Alcotest.(check bool) "schedule_at +inf" true
    (raises (fun () ->
         ignore (Sim.Scheduler.schedule_at s Float.infinity (fun () -> ()))));
  Alcotest.(check bool) "schedule_at -inf" true
    (raises (fun () ->
         ignore (Sim.Scheduler.schedule_at s Float.neg_infinity (fun () -> ()))));
  Alcotest.(check bool) "schedule_after nan" true
    (raises (fun () ->
         ignore (Sim.Scheduler.schedule_after s Float.nan (fun () -> ()))));
  Alcotest.(check bool) "schedule_after +inf" true
    (raises (fun () ->
         ignore (Sim.Scheduler.schedule_after s Float.infinity (fun () -> ()))));
  (* The rejection must leave the scheduler untouched. *)
  Alcotest.(check int) "nothing pending" 0 (Sim.Scheduler.pending s);
  let ok = ref false in
  ignore (Sim.Scheduler.schedule_at s 1.0 (fun () -> ok := true));
  Sim.Scheduler.run_until s 2.0;
  Alcotest.(check bool) "finite time still works" true !ok

(* Regression: [run_until_empty ~max_events] used to charge the budget
   for cancelled events it lazily discarded from the heap, so a
   cancel-heavy run could stop far short of [max_events] real firings.
   The budget must count fired events only. *)
let test_sched_max_events_ignores_cancelled () =
  let s = Sim.Scheduler.create () in
  let fired = ref 0 in
  let ids =
    List.init 20 (fun i ->
        Sim.Scheduler.schedule_at s (float_of_int (i + 1)) (fun () ->
            incr fired))
  in
  (* Cancel the 10 earliest, so every skip precedes every real firing;
     under the buggy accounting zero events would fire. *)
  List.iteri (fun i id -> if i < 10 then Sim.Scheduler.cancel s id) ids;
  Sim.Scheduler.run_until_empty s ~max_events:5;
  Alcotest.(check int) "five real events fired" 5 !fired;
  Alcotest.(check int) "events_fired counter" 5 (Sim.Scheduler.events_fired s);
  Alcotest.(check int) "five survivors pending" 5 (Sim.Scheduler.pending s);
  (* The remaining budget-less drain still works. *)
  Sim.Scheduler.run_until_empty s ~max_events:100;
  Alcotest.(check int) "rest fired" 10 !fired

(* Model-based cancel property: schedule events on a small integer
   time grid (forcing ties), cancel an arbitrary subset twice
   (double-cancel), run to a mid-horizon, cancel a second arbitrary
   subset — which now includes ids that already fired — and run to
   completion.  The survivors must fire exactly in the model's
   (time, insertion index) order, and the fired/pending counters must
   agree with the model, i.e. no cancel ever perturbs other events. *)
let prop_sched_cancel_survivors =
  QCheck.Test.make
    ~name:"cancel/double-cancel/cancel-after-fire keeps survivor order"
    ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 40) (int_bound 9))
        (list (int_bound 100))
        (list (int_bound 100)))
    (fun (times, pre_raw, post_raw) ->
      let n = List.length times in
      let times_arr = Array.of_list times in
      let s = Sim.Scheduler.create () in
      let log = ref [] in
      let ids =
        Array.of_list
          (List.mapi
             (fun i time ->
               Sim.Scheduler.schedule_at s (float_of_int time) (fun () ->
                   log := i :: !log))
             times)
      in
      let pre = List.map (fun r -> r mod n) pre_raw in
      List.iter (fun i -> Sim.Scheduler.cancel s ids.(i)) pre;
      List.iter (fun i -> Sim.Scheduler.cancel s ids.(i)) pre;
      Sim.Scheduler.run_until s 4.0;
      let post = List.map (fun r -> r mod n) post_raw in
      List.iter (fun i -> Sim.Scheduler.cancel s ids.(i)) post;
      Sim.Scheduler.run_until s 20.0;
      let fired = List.rev !log in
      let expected =
        List.init n (fun i -> i)
        |> List.filter (fun i ->
               (not (List.mem i pre))
               && (times_arr.(i) <= 4 || not (List.mem i post)))
        |> List.stable_sort (fun a b ->
               compare (times_arr.(a), a) (times_arr.(b), b))
      in
      fired = expected
      && Sim.Scheduler.pending s = 0
      && Sim.Scheduler.events_fired s = List.length expected)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_invariant_counters () =
  Sim.Invariant.reset_counters ();
  Sim.Invariant.require true (fun () -> "fine");
  Alcotest.(check int) "checks counted" 1 (Sim.Invariant.checks_run ());
  Alcotest.(check int) "no failures" 0 (Sim.Invariant.failures_seen ());
  (match Sim.Invariant.require false (fun () -> "boom") with
  | () -> Alcotest.fail "expected Violation"
  | exception Sim.Invariant.Violation msg ->
      Alcotest.(check string) "message" "boom" msg);
  Alcotest.(check int) "failure counted" 1 (Sim.Invariant.failures_seen ());
  Sim.Invariant.reset_counters ();
  Alcotest.(check int) "counters reset" 0 (Sim.Invariant.checks_run ())

let test_invariant_scheduler_clean () =
  (* A checked scheduler run over interleaved events trips nothing. *)
  let was = !Sim.Invariant.enabled in
  Fun.protect
    ~finally:(fun () -> Sim.Invariant.set_enabled was)
    (fun () ->
      Sim.Invariant.set_enabled true;
      Sim.Invariant.reset_counters ();
      let s = Sim.Scheduler.create () in
      for i = 0 to 99 do
        let at = float_of_int ((i * 7919) mod 100) /. 10.0 in
        ignore (Sim.Scheduler.schedule_at s at (fun () -> ()))
      done;
      Sim.Scheduler.run_until_empty s ~max_events:1000;
      Alcotest.(check bool) "checks ran" true (Sim.Invariant.checks_run () > 0);
      Alcotest.(check int) "no violations" 0 (Sim.Invariant.failures_seen ()))

let test_trace_disabled_by_default () =
  let t = Sim.Trace.create () in
  Alcotest.(check bool) "disabled" false (Sim.Trace.enabled t);
  (* Emitting without a sink is a no-op, not an error. *)
  Sim.Trace.emit t ~time:0.0 ~level:Sim.Trace.Info ~component:"x" "hello"

let test_trace_memory_sink () =
  let t = Sim.Trace.create () in
  let sink, records = Sim.Trace.memory_sink () in
  Sim.Trace.set_sink t sink;
  Sim.Trace.emit t ~time:1.0 ~level:Sim.Trace.Warn ~component:"link" "drop";
  Sim.Trace.emitf t ~time:2.0 ~level:Sim.Trace.Debug ~component:"tcp" "cwnd=%d" 5;
  let rs = records () in
  Alcotest.(check int) "two records" 2 (List.length rs);
  let r1 = List.nth rs 0 and r2 = List.nth rs 1 in
  Alcotest.(check string) "message" "drop" r1.Sim.Trace.message;
  Alcotest.(check string) "formatted" "cwnd=5" r2.Sim.Trace.message;
  check_float "time" 1.0 r1.Sim.Trace.time

let test_trace_clear_sink () =
  let t = Sim.Trace.create () in
  let sink, records = Sim.Trace.memory_sink () in
  Sim.Trace.set_sink t sink;
  Sim.Trace.clear_sink t;
  Sim.Trace.emit t ~time:0.0 ~level:Sim.Trace.Info ~component:"x" "gone";
  Alcotest.(check int) "nothing recorded" 0 (List.length (records ()))

let test_trace_level_names () =
  Alcotest.(check string) "debug" "debug" (Sim.Trace.level_to_string Sim.Trace.Debug);
  Alcotest.(check string) "info" "info" (Sim.Trace.level_to_string Sim.Trace.Info);
  Alcotest.(check string) "warn" "warn" (Sim.Trace.level_to_string Sim.Trace.Warn)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "single" `Quick test_heap_single;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "iter" `Quick test_heap_iter;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "pop_entry seqs" `Quick test_heap_pop_entry_seqs;
          Alcotest.test_case "top_prio" `Quick test_heap_top_prio;
          Alcotest.test_case "drained retains no values" `Quick
            test_heap_drained_retains_no_values;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_stable_order;
          QCheck_alcotest.to_alcotest prop_heap_length;
          QCheck_alcotest.to_alcotest prop_heap_drained_retains_no_values;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "range" `Quick test_rng_range;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "ordering" `Quick test_sched_ordering;
          Alcotest.test_case "fifo same time" `Quick test_sched_same_time_fifo;
          Alcotest.test_case "clock advances" `Quick test_sched_clock_advances;
          Alcotest.test_case "horizon" `Quick test_sched_horizon_excludes_future;
          Alcotest.test_case "past rejected" `Quick test_sched_past_rejected;
          Alcotest.test_case "cancel" `Quick test_sched_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_sched_cancel_idempotent;
          Alcotest.test_case "cancel after fire" `Quick test_sched_cancel_after_fire;
          Alcotest.test_case "double cancel, others fire" `Quick
            test_sched_double_cancel_then_fire_others;
          Alcotest.test_case "cancel storm invariants" `Quick
            test_sched_cancel_storm_invariants;
          Alcotest.test_case "nested scheduling" `Quick test_sched_schedule_during_event;
          Alcotest.test_case "zero delay" `Quick test_sched_zero_delay_event;
          Alcotest.test_case "counters" `Quick test_sched_counters;
          Alcotest.test_case "run_until_empty" `Quick test_sched_run_until_empty;
          Alcotest.test_case "rejects non-finite times" `Quick
            test_sched_rejects_nonfinite;
          Alcotest.test_case "max_events ignores cancelled" `Quick
            test_sched_max_events_ignores_cancelled;
          Alcotest.test_case "run_until_empty bounded" `Quick
            test_sched_run_until_empty_bounded;
          QCheck_alcotest.to_alcotest prop_sched_cancel_survivors;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "counters" `Quick test_invariant_counters;
          Alcotest.test_case "scheduler clean" `Quick
            test_invariant_scheduler_clean;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "memory sink" `Quick test_trace_memory_sink;
          Alcotest.test_case "clear sink" `Quick test_trace_clear_sink;
          Alcotest.test_case "level names" `Quick test_trace_level_names;
        ] );
    ]
