(* Runner.Trend: the comparability model behind `make bench-trend`.
   The bench gate prints Trend.skip_reason verbatim, so these tests pin
   both the classification logic and the exact cores-mismatch text. *)

let doc_of_string s =
  match Runner.Trend.doc_of_json (Runner.Json.of_string s) with
  | Ok d -> d
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let base = {|{"duration_s": 30, "seed": 42,
              "scenarios": [{"name": "sharing", "events_per_s": 1e6},
                            {"name": "churn", "events_per_s": 5e5}]}|}

let with_cores c =
  Printf.sprintf
    {|{"duration_s": 30, "seed": 42, "cores": %d,
       "scenarios": [{"name": "scale", "events_per_s": 2e6}]}|}
    c

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_doc_of_json () =
  let d = doc_of_string base in
  Alcotest.(check (float 0.0)) "duration" 30.0 d.Runner.Trend.duration;
  Alcotest.(check (float 0.0)) "seed" 42.0 d.Runner.Trend.seed;
  Alcotest.(check bool) "no cores field" true (d.Runner.Trend.cores = None);
  Alcotest.(check (list string)) "scenario names in order"
    [ "sharing"; "churn" ]
    (List.map fst d.Runner.Trend.scenarios);
  let d = doc_of_string (with_cores 8) in
  Alcotest.(check bool) "cores recorded" true (d.Runner.Trend.cores = Some 8)

let test_doc_of_json_errors () =
  let err s =
    match Runner.Trend.doc_of_json (Runner.Json.of_string s) with
    | Ok _ -> Alcotest.fail "malformed document accepted"
    | Error e -> e
  in
  Alcotest.(check bool) "missing duration named" true
    (contains ~sub:"duration_s" (err {|{"seed": 1, "scenarios": []}|}));
  Alcotest.(check bool) "missing scenarios named" true
    (contains ~sub:"scenarios" (err {|{"duration_s": 1, "seed": 1}|}));
  Alcotest.(check bool) "nameless row rejected" true
    (contains ~sub:"name"
       (err
          {|{"duration_s": 1, "seed": 1,
             "scenarios": [{"events_per_s": 10}]}|}))

let test_classify () =
  let current = doc_of_string base in
  let same = doc_of_string base in
  Alcotest.(check bool) "same parameters are comparable" true
    (Runner.Trend.classify ~current ~machine_cores:4 same
    = Runner.Trend.Comparable);
  let other_seed =
    doc_of_string {|{"duration_s": 30, "seed": 7, "scenarios": []}|}
  in
  Alcotest.(check bool) "seed mismatch skips on params" true
    (Runner.Trend.classify ~current ~machine_cores:4 other_seed
    = Runner.Trend.Skip_params);
  let scale_current = doc_of_string (with_cores 4) in
  Alcotest.(check bool) "matching cores are comparable" true
    (Runner.Trend.classify ~current:scale_current ~machine_cores:4
       (doc_of_string (with_cores 4))
    = Runner.Trend.Comparable);
  match
    Runner.Trend.classify ~current:scale_current ~machine_cores:4
      (doc_of_string (with_cores 16))
  with
  | Runner.Trend.Skip_cores { recorded; machine } ->
      Alcotest.(check int) "recorded cores" 16 recorded;
      Alcotest.(check int) "machine cores" 4 machine
  | _ -> Alcotest.fail "foreign-machine line must skip on cores"

let test_cores_check_wins_over_params () =
  (* A foreign-machine line whose duration/seed ALSO differ must still
     be reported as a cores skip — that is the reason a human needs. *)
  let current = doc_of_string (with_cores 4) in
  let foreign =
    doc_of_string
      {|{"duration_s": 99, "seed": 7, "cores": 32, "scenarios": []}|}
  in
  match Runner.Trend.classify ~current ~machine_cores:4 foreign with
  | Runner.Trend.Skip_cores { recorded = 32; machine = 4 } -> ()
  | _ -> Alcotest.fail "cores check must win over the params check"

let test_skip_reason_text () =
  Alcotest.(check (option string)) "comparable has no reason" None
    (Runner.Trend.skip_reason Runner.Trend.Comparable);
  (match
     Runner.Trend.skip_reason
       (Runner.Trend.Skip_cores { recorded = 16; machine = 4 })
   with
  | None -> Alcotest.fail "cores skip must carry a reason"
  | Some reason ->
      Alcotest.(check string) "the exact text the bench gate prints"
        "recorded on a 16-core machine, this one has 4" reason);
  match Runner.Trend.skip_reason Runner.Trend.Skip_params with
  | None -> Alcotest.fail "params skip must carry a reason"
  | Some reason ->
      Alcotest.(check bool) "params reason names both fields" true
        (contains ~sub:"duration" reason && contains ~sub:"seed" reason)

let () =
  Alcotest.run "trend"
    [
      ( "trend",
        [
          Alcotest.test_case "doc_of_json" `Quick test_doc_of_json;
          Alcotest.test_case "doc_of_json errors" `Quick
            test_doc_of_json_errors;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "cores wins over params" `Quick
            test_cores_check_wins_over_params;
          Alcotest.test_case "skip reasons" `Quick test_skip_reason_text;
        ] );
    ]
