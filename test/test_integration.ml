(* Integration tests: end-to-end properties the paper claims, checked
   on scaled-down runs.  These are the slowest tests in the suite. *)

(* A reusable scaled fig-7-style run. *)
let sharing ~gateway ~case ~duration ~seed =
  Experiments.Sharing.run
    {
      (Experiments.Sharing.default_config ~gateway ~case) with
      Experiments.Sharing.duration;
      warmup = duration /. 4.0;
      seed;
    }

let test_case3_droptail_essentially_fair () =
  let r =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:150.0 ~seed:1
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f within theorem bounds" r.Experiments.Sharing.ratio)
    true r.Experiments.Sharing.essentially_fair;
  (* The paper's case 3 lands close to parity; allow a broad band. *)
  Alcotest.(check bool) "close to parity" true
    (r.Experiments.Sharing.ratio > 0.5 && r.Experiments.Sharing.ratio < 3.0)

let test_case3_red_essentially_fair () =
  let r =
    sharing ~gateway:Experiments.Scenario.Red ~case:Experiments.Tree.L4_all
      ~duration:150.0 ~seed:1
  in
  Alcotest.(check bool) "fair under RED" true r.Experiments.Sharing.essentially_fair

let test_correlation_lemma_in_simulation () =
  (* Cases 1 (common losses) vs 3 (independent): the Lemma predicts a
     larger RLA window under correlated losses. *)
  let case1 =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L1_bottleneck ~duration:150.0 ~seed:1
  in
  let case3 =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:150.0 ~seed:1
  in
  let w1 = case1.Experiments.Sharing.rla.Rla.Sender.cwnd_avg in
  let w3 = case3.Experiments.Sharing.rla.Rla.Sender.cwnd_avg in
  Alcotest.(check bool)
    (Printf.sprintf "cwnd case1 %.1f > case3 %.1f" w1 w3)
    true (w1 > w3)

let test_case5_multicast_gets_more () =
  (* One congested subtree slowing 9 of 27 receivers: the RLA should
     take noticeably more than the TCPs on the congested branch (the
     paper reports 224.6 vs 74.5 pkt/s). *)
  let r =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L2_single ~duration:150.0 ~seed:1
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f > 1.2" r.Experiments.Sharing.ratio)
    true
    (r.Experiments.Sharing.ratio > 1.2);
  Alcotest.(check bool) "still bounded" true r.Experiments.Sharing.essentially_fair

let test_signal_counts_similar_uniform_case () =
  (* Figure 8, case 3: RLA and TCP senders see a similar number of
     congestion signals per branch. *)
  let r =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:150.0 ~seed:1
  in
  let rla_avg =
    r.Experiments.Sharing.rla_signals_congested.Experiments.Sharing.average
  in
  let tcp_avg =
    r.Experiments.Sharing.tcp_cuts_congested.Experiments.Sharing.average
  in
  Alcotest.(check bool)
    (Printf.sprintf "rla %.0f vs tcp %.0f within 2.5x" rla_avg tcp_avg)
    true
    (rla_avg > 0.0 && tcp_avg > 0.0
    && rla_avg /. tcp_avg < 2.5
    && tcp_avg /. rla_avg < 2.5)

let test_rla_window_cut_fraction () =
  (* With 27 equally troubled receivers, cuts ~ signals/27 (plus the
     occasional timeout). *)
  let r =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:150.0 ~seed:1
  in
  let signals = r.Experiments.Sharing.rla.Rla.Sender.congestion_signals in
  let cuts =
    r.Experiments.Sharing.rla.Rla.Sender.window_cuts
    - r.Experiments.Sharing.rla.Rla.Sender.timeouts
  in
  let expected = float_of_int signals /. 27.0 in
  Alcotest.(check bool)
    (Printf.sprintf "cuts %d vs signals/27 = %.1f" cuts expected)
    true
    (float_of_int cuts > 0.4 *. expected && float_of_int cuts < 2.5 *. expected)

let test_two_sessions_split_equally () =
  let config =
    {
      (Experiments.Multi_session.default_config
         ~gateway:Experiments.Scenario.Droptail)
      with
      Experiments.Multi_session.duration = 150.0;
      warmup = 40.0;
    }
  in
  let r = Experiments.Multi_session.run config in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ratio %.2f in [0.6, 1.67]"
       r.Experiments.Multi_session.throughput_ratio)
    true
    (r.Experiments.Multi_session.throughput_ratio > 0.6
    && r.Experiments.Multi_session.throughput_ratio < 1.67)

let test_sharing_deterministic () =
  let r1 =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:60.0 ~seed:9
  in
  let r2 =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:60.0 ~seed:9
  in
  Alcotest.(check (float 1e-9)) "same throughput"
    r1.Experiments.Sharing.rla.Rla.Sender.throughput
    r2.Experiments.Sharing.rla.Rla.Sender.throughput;
  Alcotest.(check int) "same signals"
    r1.Experiments.Sharing.rla.Rla.Sender.congestion_signals
    r2.Experiments.Sharing.rla.Rla.Sender.congestion_signals

let test_seed_changes_run () =
  let r1 =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:60.0 ~seed:9
  in
  let r2 =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L4_all ~duration:60.0 ~seed:10
  in
  Alcotest.(check bool) "different seeds differ" true
    (r1.Experiments.Sharing.rla.Rla.Sender.congestion_signals
    <> r2.Experiments.Sharing.rla.Rla.Sender.congestion_signals)

let test_invariants_do_not_perturb_run () =
  (* The runtime invariant checks are passive: an instrumented run must
     be byte-identical to an uninstrumented one, and a healthy run must
     trip zero of them. *)
  let render () =
    let registry = Obs.Registry.create () in
    let r =
      Experiments.Sharing.run ~registry
        {
          (Experiments.Sharing.default_config
             ~gateway:Experiments.Scenario.Droptail ~case:Experiments.Tree.L4_all)
          with
          Experiments.Sharing.duration = 40.0;
          warmup = 10.0;
          seed = 7;
        }
    in
    ( Runner.Json.to_string (Runner.Report.registry_json registry),
      r.Experiments.Sharing.rla.Rla.Sender.congestion_signals )
  in
  let was_enabled = !Sim.Invariant.enabled in
  Fun.protect
    ~finally:(fun () -> Sim.Invariant.set_enabled was_enabled)
    (fun () ->
      Sim.Invariant.set_enabled false;
      let plain_json, plain_signals = render () in
      Sim.Invariant.set_enabled true;
      Sim.Invariant.reset_counters ();
      let checked_json, checked_signals = render () in
      Alcotest.(check bool) "invariant checks exercised" true
        (Sim.Invariant.checks_run () > 0);
      Alcotest.(check int) "no invariant failures" 0
        (Sim.Invariant.failures_seen ());
      Alcotest.(check int) "same congestion signals" plain_signals
        checked_signals;
      Alcotest.(check string) "byte-identical exported metrics" plain_json
        checked_json)

let test_checkpoint_restore_byte_identical () =
  (* The ISSUE's core acceptance: a run restored from a checkpoint at
     T/2 and driven to T must be byte-identical — exported registry
     JSON, event journal, fairness numbers — to the uninterrupted run.
     Also checks that writing checkpoints is passive (the checkpointed
     run itself equals the plain run). *)
  let config =
    {
      (Experiments.Sharing.default_config ~gateway:Experiments.Scenario.Droptail
         ~case:Experiments.Tree.L4_all)
      with
      Experiments.Sharing.duration = 40.0;
      warmup = 10.0;
      seed = 7;
    }
  in
  let render registry =
    Runner.Json.to_string (Runner.Report.registry_json registry)
  in
  (* Uninterrupted instrumented reference. *)
  let reg0 = Obs.Registry.create () in
  let j0 = Ckpt.Journal.create () in
  Ckpt.Journal.attach j0 reg0;
  let r0 = Experiments.Sharing.run ~registry:reg0 config in
  let json0 = render reg0 in
  (* Same run, writing a checkpoint every 10 s. *)
  let dir = Filename.temp_file "rla_ckpt_integ" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let reg1 = Obs.Registry.create () in
      let j1 = Ckpt.Journal.create () in
      let r1 =
        Ckpt.Sharing_ckpt.run_with_checkpoints ~registry:reg1 ~journal:j1
          ~every:10.0 ~dir ~prefix:"integ" config
      in
      Alcotest.(check string) "checkpointing is passive (registry JSON)" json0
        (render reg1);
      Alcotest.(check bool) "checkpointing is passive (journal)" true
        (Ckpt.Journal.diff j0 j1 = None);
      Alcotest.(check (float 0.0)) "checkpointing is passive (ratio)"
        r0.Experiments.Sharing.ratio r1.Experiments.Sharing.ratio;
      (* Restore the T/2 checkpoint and run to T. *)
      let path =
        Ckpt.Sharing_ckpt.checkpoint_file ~dir ~prefix:"integ" ~time:20.0
      in
      Alcotest.(check bool) "t=20 checkpoint exists" true (Sys.file_exists path);
      match Ckpt.Sharing_ckpt.load ~path with
      | Error e -> Alcotest.fail (Ckpt.Sharing_ckpt.error_to_string e)
      | Ok loaded ->
          let r2 = Ckpt.Sharing_ckpt.resume_run loaded in
          let reg2 =
            match loaded.Ckpt.Sharing_ckpt.registry with
            | Some reg -> reg
            | None -> Alcotest.fail "restored run lost its registry"
          in
          Alcotest.(check string) "restored run: byte-identical registry JSON"
            json0 (render reg2);
          (match loaded.Ckpt.Sharing_ckpt.journal with
          | None -> Alcotest.fail "restored run lost its journal"
          | Some j2 -> (
              match Ckpt.Journal.diff j0 j2 with
              | None -> ()
              | Some d ->
                  Alcotest.failf
                    "restored journal diverges at entry %d (%s vs %s)"
                    d.Ckpt.Journal.index
                    (match d.Ckpt.Journal.a with
                    | Some e -> Ckpt.Journal.entry_to_string e
                    | None -> "<end>")
                    (match d.Ckpt.Journal.b with
                    | Some e -> Ckpt.Journal.entry_to_string e
                    | None -> "<end>")));
          Alcotest.(check int) "restored run: same congestion signals"
            r0.Experiments.Sharing.rla.Rla.Sender.congestion_signals
            r2.Experiments.Sharing.rla.Rla.Sender.congestion_signals;
          Alcotest.(check (float 0.0)) "restored run: same RLA send rate"
            r0.Experiments.Sharing.rla.Rla.Sender.send_rate
            r2.Experiments.Sharing.rla.Rla.Sender.send_rate;
          Alcotest.(check (float 0.0)) "restored run: same fairness ratio"
            r0.Experiments.Sharing.ratio r2.Experiments.Sharing.ratio)

let test_generalized_rla_helps_diff_rtt () =
  (* Without RTT scaling the nearby receivers' signals cut the window
     as often as the distant ones'; the generalized variant should give
     the session at least as much throughput. *)
  let run params =
    let config = Experiments.Diff_rtt.default_config ~case_index:2 in
    (Experiments.Diff_rtt.run
       {
         config with
         Experiments.Diff_rtt.duration = 150.0;
         warmup = 40.0;
         rla_params = params;
       })
      .Experiments.Diff_rtt.rla
      .Rla.Sender.throughput
  in
  let restricted = run Rla.Params.default in
  let generalized = run (Rla.Params.generalized Rla.Params.default) in
  Alcotest.(check bool)
    (Printf.sprintf "generalized %.1f >= 0.8 x restricted %.1f" generalized
       restricted)
    true
    (generalized >= 0.8 *. restricted)

let test_diff_rtt_reasonable_share () =
  let config = Experiments.Diff_rtt.default_config ~case_index:2 in
  let r =
    Experiments.Diff_rtt.run
      { config with Experiments.Diff_rtt.duration = 150.0; warmup = 40.0 }
  in
  (* Figure 10 shows the RLA above the worst TCP but far below n x. *)
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in (0.25, 36)" r.Experiments.Diff_rtt.ratio)
    true
    (r.Experiments.Diff_rtt.ratio > 0.25
    && r.Experiments.Diff_rtt.ratio < 36.0)

let test_rla_is_reliable_transport () =
  (* Every packet the frontier passed was received by every receiver:
     multicast reliability end-to-end under heavy loss. *)
  let net = Net.Network.create ~seed:3 () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init 5 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  ignore
    (Net.Network.duplex net s hub
       (Experiments.Scenario.fast_link_config
          ~gateway:Experiments.Scenario.Droptail ~delay:0.005 ()));
  List.iter
    (fun leaf ->
      ignore
        (Net.Network.duplex net hub leaf
           (Experiments.Scenario.link_config
              ~gateway:Experiments.Scenario.Droptail ~mu_pkts:80.0 ~delay:0.03
              ~buffer:6 ())))
    leaves;
  Net.Network.install_routes net;
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 120.0;
  let frontier = Rla.Sender.max_reach_all rla in
  Alcotest.(check bool) "made progress under loss" true (frontier > 1000);
  List.iter
    (fun ep ->
      Alcotest.(check bool) "receiver has full prefix" true
        (Rla.Receiver.expected ep >= frontier))
    (Rla.Sender.receiver_endpoints rla)

let test_red_tighter_than_droptail () =
  (* Theorem I vs II: RED gives tighter bounds; empirically the RED
     ratio should not be wildly further from 1 than the drop-tail
     ratio.  We check both stay in the drop-tail band. *)
  let dt =
    sharing ~gateway:Experiments.Scenario.Droptail
      ~case:Experiments.Tree.L1_bottleneck ~duration:150.0 ~seed:2
  in
  let red =
    sharing ~gateway:Experiments.Scenario.Red
      ~case:Experiments.Tree.L1_bottleneck ~duration:150.0 ~seed:2
  in
  Alcotest.(check bool) "droptail fair" true dt.Experiments.Sharing.essentially_fair;
  Alcotest.(check bool) "red fair" true red.Experiments.Sharing.essentially_fair


let test_ecn_reduces_retransmissions () =
  let rows = Experiments.Ecn.run ~duration:100.0 () in
  match rows with
  | [ { Experiments.Ecn.ecn = false; result = off }; { ecn = true; result = on } ] ->
      Alcotest.(check bool) "both fair" true
        (off.Experiments.Sharing.essentially_fair
        && on.Experiments.Sharing.essentially_fair);
      let r_off = off.Experiments.Sharing.rla.Rla.Sender.rexmits in
      let r_on = on.Experiments.Sharing.rla.Rla.Sender.rexmits in
      Alcotest.(check bool)
        (Printf.sprintf "rexmits collapse (%d -> %d)" r_off r_on)
        true
        (r_on * 2 < r_off)
  | _ -> Alcotest.fail "expected off/on rows"

let () =
  Alcotest.run "integration"
    [
      ( "fairness",
        [
          Alcotest.test_case "case 3 drop-tail" `Slow
            test_case3_droptail_essentially_fair;
          Alcotest.test_case "case 3 RED" `Slow test_case3_red_essentially_fair;
          Alcotest.test_case "correlation lemma" `Slow
            test_correlation_lemma_in_simulation;
          Alcotest.test_case "case 5 multicast advantage" `Slow
            test_case5_multicast_gets_more;
          Alcotest.test_case "RED vs droptail" `Slow test_red_tighter_than_droptail;
          Alcotest.test_case "ECN reduces retransmissions" `Slow
            test_ecn_reduces_retransmissions;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "signal counts similar" `Slow
            test_signal_counts_similar_uniform_case;
          Alcotest.test_case "cut fraction" `Slow test_rla_window_cut_fraction;
          Alcotest.test_case "reliability" `Slow test_rla_is_reliable_transport;
        ] );
      ( "multi-session",
        [
          Alcotest.test_case "equal split" `Slow test_two_sessions_split_equally;
        ] );
      ( "different rtt",
        [
          Alcotest.test_case "generalized helps" `Slow
            test_generalized_rla_helps_diff_rtt;
          Alcotest.test_case "reasonable share" `Slow test_diff_rtt_reasonable_share;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay" `Slow test_sharing_deterministic;
          Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_run;
          Alcotest.test_case "invariants passive" `Slow
            test_invariants_do_not_perturb_run;
          Alcotest.test_case "checkpoint/restore byte-identical" `Slow
            test_checkpoint_restore_byte_identical;
        ] );
    ]
