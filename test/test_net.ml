(* Tests for the network substrate: packets, RED, queue disciplines,
   links, nodes, network/routing/multicast. *)

let check_float = Alcotest.(check (float 1e-9))

let droptail_config ?(capacity = 20) ?(bw = 8_000_000.0) ?(delay = 0.01) () =
  {
    Net.Link.bandwidth_bps = bw;
    prop_delay = delay;
    queue = Net.Queue_disc.Droptail;
    capacity;
    phase_jitter = false;
  }

(* ------------------------------------------------------------------ *)
(* Packet                                                             *)
(* ------------------------------------------------------------------ *)

let test_packet_dest_strings () =
  Alcotest.(check string) "unicast" "node:3"
    (Net.Packet.dest_to_string (Net.Packet.Unicast 3));
  Alcotest.(check string) "multicast" "group:1"
    (Net.Packet.dest_to_string (Net.Packet.Multicast 1))

let test_packet_pp () =
  let pkt =
    {
      Net.Packet.uid = 1;
      flow = 2;
      src = 0;
      dst = Net.Packet.Unicast 5;
      size = 1000;
      payload = Net.Packet.Raw;
      born = 0.0;
      ecn = false;
      refs = 1;
    }
  in
  let s = Format.asprintf "%a" Net.Packet.pp pkt in
  Alcotest.(check bool) "mentions flow" true
    (String.length s > 0 && String.contains s '2')

(* ------------------------------------------------------------------ *)
(* Packet pool                                                        *)
(* ------------------------------------------------------------------ *)

type Net.Packet.payload += Probe

let test_pool_acquire_release_recycles () =
  let pool = Net.Packet.Pool.create () in
  let p =
    Net.Packet.Pool.acquire pool ~uid:7 ~flow:1 ~src:0
      ~dst:(Net.Packet.Unicast 2) ~size:1000 ~payload:Probe ~born:0.5
  in
  Alcotest.(check int) "one reference" 1 p.Net.Packet.refs;
  Alcotest.(check bool) "ecn starts false" false p.Net.Packet.ecn;
  Alcotest.(check int) "fresh record" 1 (Net.Packet.Pool.allocated pool);
  Net.Packet.Pool.release pool p;
  Alcotest.(check int) "free after release" 1 (Net.Packet.Pool.free_count pool);
  (* The protocol header must not stay alive in the free list. *)
  Alcotest.(check bool) "payload reset on release" true
    (p.Net.Packet.payload = Net.Packet.Raw);
  let q =
    Net.Packet.Pool.acquire pool ~uid:8 ~flow:2 ~src:1
      ~dst:(Net.Packet.Unicast 3) ~size:500 ~payload:Net.Packet.Raw ~born:1.0
  in
  Alcotest.(check bool) "record recycled" true (p == q);
  Alcotest.(check int) "recycle counted" 1 (Net.Packet.Pool.recycled pool);
  Alcotest.(check int) "no second allocation" 1 (Net.Packet.Pool.allocated pool);
  Alcotest.(check int) "uid rewritten" 8 q.Net.Packet.uid;
  Alcotest.(check int) "free list drained" 0 (Net.Packet.Pool.free_count pool)

let test_pool_refcounts () =
  let pool = Net.Packet.Pool.create () in
  let p =
    Net.Packet.Pool.acquire pool ~uid:1 ~flow:0 ~src:0
      ~dst:(Net.Packet.Unicast 1) ~size:100 ~payload:Net.Packet.Raw ~born:0.0
  in
  Net.Packet.Pool.retain p;
  Net.Packet.Pool.retain p;
  Alcotest.(check int) "three references" 3 p.Net.Packet.refs;
  Net.Packet.Pool.release pool p;
  Net.Packet.Pool.release pool p;
  Alcotest.(check int) "still owned" 0 (Net.Packet.Pool.free_count pool);
  Net.Packet.Pool.release pool p;
  Alcotest.(check int) "freed on last release" 1
    (Net.Packet.Pool.free_count pool);
  Alcotest.(check bool) "double release rejected" true
    (try
       Net.Packet.Pool.release pool p;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "retain on dead packet rejected" true
    (try
       Net.Packet.Pool.retain p;
       false
     with Invalid_argument _ -> true)

let test_pool_acquire_copy () =
  let pool = Net.Packet.Pool.create () in
  let p =
    Net.Packet.Pool.acquire pool ~uid:42 ~flow:3 ~src:1
      ~dst:(Net.Packet.Multicast 0) ~size:1500 ~payload:Net.Packet.Raw
      ~born:2.0
  in
  (* Shared packet: a congestion mark must copy, not mutate. *)
  Net.Packet.Pool.retain p;
  let c = Net.Packet.Pool.acquire_copy pool p in
  Alcotest.(check bool) "distinct record" true (not (p == c));
  Alcotest.(check int) "same uid" 42 c.Net.Packet.uid;
  Alcotest.(check int) "same size" 1500 c.Net.Packet.size;
  check_float "same born" 2.0 c.Net.Packet.born;
  Alcotest.(check int) "copy has one reference" 1 c.Net.Packet.refs;
  Alcotest.(check int) "original refs untouched" 2 p.Net.Packet.refs;
  c.Net.Packet.ecn <- true;
  Alcotest.(check bool) "original unmarked" false p.Net.Packet.ecn

(* ------------------------------------------------------------------ *)
(* RED                                                                *)
(* ------------------------------------------------------------------ *)

let red_params = Net.Red.default_params ~mean_pkt_time:0.001

let test_red_admits_when_small () =
  let red = Net.Red.create red_params ~rng:(Sim.Rng.create 1) in
  (* Average starts at 0 and moves slowly; small queues always admit. *)
  for i = 0 to 99 do
    match Net.Red.decide red ~now:(float_of_int i *. 0.001) ~qlen:2 with
    | `Admit -> ()
    | `Drop | `Mark -> Alcotest.fail "dropped below min threshold"
  done

let test_red_avg_tracks_queue () =
  let red = Net.Red.create red_params ~rng:(Sim.Rng.create 1) in
  for _ = 1 to 5_000 do
    ignore (Net.Red.decide red ~now:0.0 ~qlen:10)
  done;
  Alcotest.(check bool) "avg converged toward 10" true
    (abs_float (Net.Red.avg_queue red -. 10.0) < 0.5)

let test_red_drops_above_max () =
  let red = Net.Red.create red_params ~rng:(Sim.Rng.create 1) in
  for _ = 1 to 10_000 do
    ignore (Net.Red.decide red ~now:0.0 ~qlen:18)
  done;
  (* avg is now ~18, above max_th=15: every arrival must drop. *)
  (match Net.Red.decide red ~now:0.0 ~qlen:18 with
  | `Drop -> ()
  | `Admit | `Mark -> Alcotest.fail "must drop above max threshold");
  Alcotest.(check bool) "drop counter advanced" true (Net.Red.drops red > 0)

let test_red_probabilistic_between_thresholds () =
  let red = Net.Red.create red_params ~rng:(Sim.Rng.create 42) in
  (* Drive the average to ~10 (between min 5 and max 15). *)
  for _ = 1 to 5_000 do
    ignore (Net.Red.decide red ~now:0.0 ~qlen:10)
  done;
  let drops = ref 0 and n = 2_000 in
  for _ = 1 to n do
    match Net.Red.decide red ~now:0.0 ~qlen:10 with
    | `Drop -> incr drops
    | `Admit | `Mark -> ()
  done;
  let rate = float_of_int !drops /. float_of_int n in
  (* p_b = 0.1*(10-5)/10 = 0.05; the count mechanism spreads drops so
     the effective rate is close to p_b. *)
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %.3f in (0.01, 0.15)" rate)
    true
    (rate > 0.01 && rate < 0.15)

let test_red_ecn_marks_in_band () =
  let params = { red_params with Net.Red.ecn = true } in
  let red = Net.Red.create params ~rng:(Sim.Rng.create 42) in
  for _ = 1 to 5_000 do
    ignore (Net.Red.decide red ~now:0.0 ~qlen:10)
  done;
  let marks = ref 0 and drops = ref 0 in
  for _ = 1 to 2_000 do
    match Net.Red.decide red ~now:0.0 ~qlen:10 with
    | `Mark -> incr marks
    | `Drop -> incr drops
    | `Admit -> ()
  done;
  Alcotest.(check bool) "marks happened" true (!marks > 10);
  Alcotest.(check int) "no drops in band with ecn" 0 !drops;
  Alcotest.(check bool) "mark counter" true (Net.Red.marks red > 0)

let test_red_ecn_still_drops_above_max () =
  let params = { red_params with Net.Red.ecn = true } in
  let red = Net.Red.create params ~rng:(Sim.Rng.create 1) in
  for _ = 1 to 10_000 do
    ignore (Net.Red.decide red ~now:0.0 ~qlen:18)
  done;
  match Net.Red.decide red ~now:0.0 ~qlen:18 with
  | `Drop -> ()
  | `Admit | `Mark -> Alcotest.fail "over max_th must still drop"

let test_red_idle_decay () =
  let red = Net.Red.create red_params ~rng:(Sim.Rng.create 1) in
  for _ = 1 to 5_000 do
    ignore (Net.Red.decide red ~now:0.0 ~qlen:12)
  done;
  let before = Net.Red.avg_queue red in
  Net.Red.note_empty red ~now:1.0;
  (* After a long idle period the average decays substantially. *)
  ignore (Net.Red.decide red ~now:10.0 ~qlen:0);
  Alcotest.(check bool) "idle decayed the average" true
    (Net.Red.avg_queue red < before /. 2.0)

(* ------------------------------------------------------------------ *)
(* Queue_disc                                                         *)
(* ------------------------------------------------------------------ *)

let test_disc_droptail_capacity () =
  let d =
    Net.Queue_disc.create Net.Queue_disc.Droptail ~capacity:5
      ~rng:(Sim.Rng.create 1)
  in
  (match Net.Queue_disc.on_arrival d ~now:0.0 ~qlen:4 with
  | `Admit -> ()
  | `Drop | `Mark -> Alcotest.fail "should admit under capacity");
  match Net.Queue_disc.on_arrival d ~now:0.0 ~qlen:5 with
  | `Drop -> ()
  | `Admit | `Mark -> Alcotest.fail "should drop at capacity"

let test_disc_bernoulli () =
  let d =
    Net.Queue_disc.create (Net.Queue_disc.Bernoulli_loss 0.5) ~capacity:100
      ~rng:(Sim.Rng.create 3)
  in
  let drops = ref 0 and n = 10_000 in
  for _ = 1 to n do
    match Net.Queue_disc.on_arrival d ~now:0.0 ~qlen:0 with
    | `Drop -> incr drops
    | `Admit | `Mark -> ()
  done;
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "about half dropped" true (abs_float (rate -. 0.5) < 0.03)

let test_disc_bernoulli_invalid () =
  Alcotest.(check bool) "p = 1 rejected" true
    (try
       ignore
         (Net.Queue_disc.create (Net.Queue_disc.Bernoulli_loss 1.0) ~capacity:1
            ~rng:(Sim.Rng.create 1));
       false
     with Invalid_argument _ -> true)

let test_disc_capacity_invalid () =
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore
         (Net.Queue_disc.create Net.Queue_disc.Droptail ~capacity:0
            ~rng:(Sim.Rng.create 1));
       false
     with Invalid_argument _ -> true)

let test_disc_avg_queue_nan_for_droptail () =
  let d =
    Net.Queue_disc.create Net.Queue_disc.Droptail ~capacity:5
      ~rng:(Sim.Rng.create 1)
  in
  Alcotest.(check bool) "nan" true (Float.is_nan (Net.Queue_disc.avg_queue d))

(* ------------------------------------------------------------------ *)
(* Link                                                               *)
(* ------------------------------------------------------------------ *)

let make_packet ?(uid = 0) ?(size = 1000) () =
  {
    Net.Packet.uid;
    flow = 0;
    src = 0;
    dst = Net.Packet.Unicast 1;
    size;
    payload = Net.Packet.Raw;
    born = 0.0;
    ecn = false;
    refs = 1;
  }

let test_link_ecn_marks_packet () =
  let sched = Sim.Scheduler.create () in
  let got_ecn = ref [] in
  let config =
    {
      Net.Link.bandwidth_bps = 8_000_000.0;
      prop_delay = 0.001;
      queue =
        Net.Queue_disc.Red_gateway
          {
            (Net.Red.default_params ~mean_pkt_time:0.001) with
            Net.Red.ecn = true;
            min_th = 0.0;
            max_th = 10.0;
            max_p = 1.0;
            w_q = 1.0;
          };
      capacity = 100;
      phase_jitter = false;
    }
  in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l" config
      ~deliver:(fun pkt -> got_ecn := pkt.Net.Packet.ecn :: !got_ecn)
  in
  (* With w_q = 1 and max_p = 1 the average jumps straight to the queue
     length, so packets arriving at a non-empty queue are marked. *)
  for i = 1 to 10 do
    Net.Link.send link (make_packet ~uid:i ())
  done;
  Sim.Scheduler.run_until sched 1.0;
  Alcotest.(check bool) "some packets marked" true (List.mem true !got_ecn);
  Alcotest.(check bool) "mark counted" true ((Net.Link.stats link).Net.Link.marked > 0)

let test_link_mark_copies_shared_packet () =
  (* A packet shared with another owner (multicast sibling, here the
     test) must be marked on a private copy with the same uid; the
     retained original stays unmarked. *)
  let sched = Sim.Scheduler.create () in
  let pool = Net.Packet.Pool.create () in
  let delivered = ref [] in
  let config =
    {
      Net.Link.bandwidth_bps = 8_000_000.0;
      prop_delay = 0.001;
      queue =
        Net.Queue_disc.Red_gateway
          {
            (Net.Red.default_params ~mean_pkt_time:0.001) with
            Net.Red.ecn = true;
            min_th = 0.0;
            max_th = 10.0;
            max_p = 1.0;
            w_q = 1.0;
          };
      capacity = 100;
      phase_jitter = false;
    }
  in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool ~id:"l" config
      ~deliver:(fun pkt ->
        delivered := (pkt.Net.Packet.uid, pkt.Net.Packet.ecn) :: !delivered;
        Net.Packet.Pool.release pool pkt)
  in
  let held = ref [] in
  for i = 1 to 10 do
    let pkt =
      Net.Packet.Pool.acquire pool ~uid:i ~flow:0 ~src:0
        ~dst:(Net.Packet.Unicast 1) ~size:1000 ~payload:Net.Packet.Raw
        ~born:0.0
    in
    Net.Packet.Pool.retain pkt;
    held := pkt :: !held;
    Net.Link.send link pkt
  done;
  Sim.Scheduler.run_until sched 1.0;
  let marked = List.filter (fun (_, ecn) -> ecn) !delivered in
  Alcotest.(check bool) "some packets marked" true (marked <> []);
  (* Every retained original is still unmarked: the link marked copies. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "original unmarked" false p.Net.Packet.ecn;
      Net.Packet.Pool.release pool p)
    !held;
  (* Marked deliveries kept the original uid (1..10). *)
  List.iter
    (fun (uid, _) ->
      Alcotest.(check bool) "uid preserved" true (uid >= 1 && uid <= 10))
    marked

let test_link_delivery_timing () =
  let sched = Sim.Scheduler.create () in
  let arrivals = ref [] in
  (* 8 Mbps -> a 1000-byte packet serializes in 1 ms; +10 ms propagation. *)
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ())
      ~deliver:(fun _ -> arrivals := Sim.Scheduler.now sched :: !arrivals)
  in
  Net.Link.send link (make_packet ());
  Sim.Scheduler.run_until sched 1.0;
  (match !arrivals with
  | [ t ] -> check_float "tx + prop" 0.011 t
  | _ -> Alcotest.fail "expected one delivery");
  check_float "service time" 0.001 (Net.Link.service_time link 1000)

let test_link_serializes () =
  let sched = Sim.Scheduler.create () in
  let arrivals = ref [] in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ())
      ~deliver:(fun pkt -> arrivals := (pkt.Net.Packet.uid, Sim.Scheduler.now sched) :: !arrivals)
  in
  Net.Link.send link (make_packet ~uid:1 ());
  Net.Link.send link (make_packet ~uid:2 ());
  Sim.Scheduler.run_until sched 1.0;
  match List.rev !arrivals with
  | [ (1, t1); (2, t2) ] ->
      check_float "first" 0.011 t1;
      (* Second waits one service time behind the first. *)
      check_float "second" 0.012 t2
  | _ -> Alcotest.fail "expected two deliveries in order"

let test_link_droptail_overflow () =
  let sched = Sim.Scheduler.create () in
  let delivered = ref 0 in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ~capacity:5 ())
      ~deliver:(fun _ -> incr delivered)
  in
  (* Burst of 10: 1 in service + 5 buffered; 4 dropped. *)
  for i = 1 to 10 do
    Net.Link.send link (make_packet ~uid:i ())
  done;
  Sim.Scheduler.run_until sched 1.0;
  let stats = Net.Link.stats link in
  Alcotest.(check int) "offered" 10 stats.Net.Link.offered;
  Alcotest.(check int) "dropped" 4 stats.Net.Link.dropped;
  Alcotest.(check int) "delivered" 6 stats.Net.Link.delivered;
  Alcotest.(check int) "callback count" 6 !delivered

let test_link_drop_hook () =
  let sched = Sim.Scheduler.create () in
  let dropped_uids = ref [] in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ~capacity:1 ())
      ~deliver:(fun _ -> ())
  in
  Net.Link.set_drop_hook link (fun pkt ->
      dropped_uids := pkt.Net.Packet.uid :: !dropped_uids);
  for i = 1 to 4 do
    Net.Link.send link (make_packet ~uid:i ())
  done;
  Sim.Scheduler.run_until sched 1.0;
  Alcotest.(check (list int)) "hook saw the overflow" [ 3; 4 ]
    (List.rev !dropped_uids)

let test_link_phase_jitter_bounded () =
  let sched = Sim.Scheduler.create () in
  let arrivals = ref [] in
  let config = { (droptail_config ()) with Net.Link.phase_jitter = true } in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 5) ~pool:(Net.Packet.Pool.create ()) ~id:"l" config
      ~deliver:(fun _ -> arrivals := Sim.Scheduler.now sched :: !arrivals)
  in
  Net.Link.send link (make_packet ());
  Sim.Scheduler.run_until sched 1.0;
  match !arrivals with
  | [ t ] ->
      (* Base latency 11 ms plus jitter within one service time (1 ms). *)
      Alcotest.(check bool) "within jitter window" true (t >= 0.011 && t < 0.012)
  | _ -> Alcotest.fail "expected one delivery"

let test_link_fifo_under_jitter () =
  (* Phase jitter draws an independent delay per packet; since jitter
     is bounded by one service time of the *delivered* packet, a 40 B
     ACK chasing a 1000 B data packet could overtake it without the
     FIFO clamp.  Exercise many mixed-size back-to-back packets across
     several seeds and require in-order, nondecreasing deliveries. *)
  List.iter
    (fun seed ->
      let sched = Sim.Scheduler.create () in
      let arrivals = ref [] in
      let config = { (droptail_config ~capacity:100 ()) with Net.Link.phase_jitter = true } in
      let link =
        Net.Link.create ~sched ~rng:(Sim.Rng.create seed) ~pool:(Net.Packet.Pool.create ()) ~id:"l" config
          ~deliver:(fun pkt ->
            arrivals := (pkt.Net.Packet.uid, Sim.Scheduler.now sched) :: !arrivals)
      in
      for i = 0 to 39 do
        let size = if i mod 2 = 0 then 1000 else 40 in
        Net.Link.send link (make_packet ~uid:i ~size ())
      done;
      Sim.Scheduler.run_until sched 10.0;
      let arrivals = List.rev !arrivals in
      Alcotest.(check int) "all delivered" 40 (List.length arrivals);
      ignore
        (List.fold_left
           (fun (prev_uid, prev_t) (uid, t) ->
             if uid <> prev_uid + 1 then
               Alcotest.failf "seed %d: uid %d delivered after %d" seed uid
                 prev_uid;
             if t < prev_t then
               Alcotest.failf "seed %d: delivery times regressed at uid %d"
                 seed uid;
             (uid, t))
           (-1, 0.0) arrivals))
    [ 1; 2; 3; 5; 8; 13 ]

let test_link_down_drops_and_restores () =
  let sched = Sim.Scheduler.create () in
  let arrivals = ref [] in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ())
      ~deliver:(fun pkt ->
        arrivals := (pkt.Net.Packet.uid, Sim.Scheduler.now sched) :: !arrivals)
  in
  (* uid 1 serializes 0..1 ms and is on the wire when the link fails. *)
  Net.Link.send link (make_packet ~uid:1 ());
  ignore
    (Sim.Scheduler.schedule_at sched 0.0015 (fun () ->
         (* uid 2 starts serializing at once, uid 3 queues behind it. *)
         Net.Link.send link (make_packet ~uid:2 ());
         Net.Link.send link (make_packet ~uid:3 ())));
  ignore
    (Sim.Scheduler.schedule_at sched 0.002 (fun () ->
         Net.Link.set_down link;
         Alcotest.(check bool) "reports down" false (Net.Link.is_up link)));
  (* Offers while down are rejected without touching the queue. *)
  ignore
    (Sim.Scheduler.schedule_at sched 0.003 (fun () ->
         Net.Link.send link (make_packet ~uid:4 ());
         Alcotest.(check int) "queue empty while down" 0 (Net.Link.qlen link)));
  ignore (Sim.Scheduler.schedule_at sched 0.5 (fun () -> Net.Link.set_up link));
  ignore
    (Sim.Scheduler.schedule_at sched 0.6 (fun () ->
         Net.Link.send link (make_packet ~uid:5 ())));
  Sim.Scheduler.run_until sched 1.0;
  (match List.rev !arrivals with
  | [ (1, t1); (5, t5) ] ->
      (* The in-flight packet survives the outage; transmission resumes
         after repair. *)
      check_float "wire packet arrives" 0.011 t1;
      check_float "post-repair delivery" 0.611 t5
  | l ->
      Alcotest.failf "expected uids 1 and 5, got %d deliveries"
        (List.length l));
  let stats = Net.Link.stats link in
  Alcotest.(check int) "offered" 5 stats.Net.Link.offered;
  (* uid 2 (aborted in service), uid 3 (flushed), uid 4 (rejected). *)
  Alcotest.(check int) "dropped" 3 stats.Net.Link.dropped;
  Alcotest.(check int) "delivered" 2 stats.Net.Link.delivered;
  check_float "downtime" 0.498 (Net.Link.downtime link);
  Alcotest.(check bool) "up again" true (Net.Link.is_up link)

let test_link_down_idempotent () =
  let sched = Sim.Scheduler.create () in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ()) ~deliver:(fun _ -> ())
  in
  Net.Link.set_down link;
  Net.Link.set_down link;
  Net.Link.set_up link;
  Net.Link.set_up link;
  Alcotest.(check bool) "up" true (Net.Link.is_up link);
  let stats = Net.Link.stats link in
  Alcotest.(check int) "no phantom drops" 0 stats.Net.Link.dropped

let test_link_reconfig_keeps_fifo () =
  let sched = Sim.Scheduler.create () in
  let arrivals = ref [] in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ())
      ~deliver:(fun pkt ->
        arrivals := (pkt.Net.Packet.uid, Sim.Scheduler.now sched) :: !arrivals)
  in
  (* uid 1: serializes 0..1 ms at 8 Mbps, arrives at 11 ms; uid 2
     starts serializing at 1 ms. *)
  Net.Link.send link (make_packet ~uid:1 ());
  Net.Link.send link (make_packet ~uid:2 ());
  (* While uid 1 is propagating, the link loses its delay and speeds
     up: uid 2 would naively arrive at ~2 ms, overtaking uid 1. *)
  ignore
    (Sim.Scheduler.schedule_at sched 0.0015 (fun () ->
         Net.Link.set_bandwidth link 800e6;
         Net.Link.set_delay link 0.0));
  Sim.Scheduler.run_until sched 1.0;
  (match List.rev !arrivals with
  | [ (1, t1); (2, t2) ] ->
      check_float "first packet keeps its delay" 0.011 t1;
      Alcotest.(check bool) "FIFO preserved under reconfiguration" true
        (t2 >= t1)
  | _ -> Alcotest.fail "expected exactly uids 1 then 2 in order");
  let cfg = Net.Link.config link in
  check_float "bandwidth updated" 800e6 cfg.Net.Link.bandwidth_bps;
  check_float "delay updated" 0.0 cfg.Net.Link.prop_delay

let test_link_reconfig_validation () =
  let sched = Sim.Scheduler.create () in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ()) ~deliver:(fun _ -> ())
  in
  Alcotest.(check bool) "zero bandwidth rejected" true
    (try Net.Link.set_bandwidth link 0.0; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay rejected" true
    (try Net.Link.set_delay link (-0.1); false
     with Invalid_argument _ -> true)

let test_link_stats_reset () =
  let sched = Sim.Scheduler.create () in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
      (droptail_config ()) ~deliver:(fun _ -> ())
  in
  Net.Link.send link (make_packet ());
  Sim.Scheduler.run_until sched 1.0;
  Net.Link.reset_stats link;
  let stats = Net.Link.stats link in
  Alcotest.(check int) "offered reset" 0 stats.Net.Link.offered;
  Alcotest.(check int) "delivered reset" 0 stats.Net.Link.delivered

let test_link_invalid_config () =
  let sched = Sim.Scheduler.create () in
  Alcotest.(check bool) "zero bandwidth rejected" true
    (try
       ignore
         (Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"l"
            { (droptail_config ()) with Net.Link.bandwidth_bps = 0.0 }
            ~deliver:(fun _ -> ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Node                                                               *)
(* ------------------------------------------------------------------ *)

let test_node_local_dispatch () =
  let node = Net.Node.create ~pool:(Net.Packet.Pool.create ()) 7 in
  let got = ref [] in
  Net.Node.attach node ~flow:1 (fun pkt -> got := pkt.Net.Packet.uid :: !got);
  Net.Node.receive node
    { (make_packet ~uid:9 ()) with Net.Packet.dst = Net.Packet.Unicast 7; flow = 1 };
  Alcotest.(check (list int)) "delivered to handler" [ 9 ] !got

let test_node_undeliverable () =
  let node = Net.Node.create ~pool:(Net.Packet.Pool.create ()) 7 in
  Net.Node.receive node
    { (make_packet ()) with Net.Packet.dst = Net.Packet.Unicast 7; flow = 99 };
  Net.Node.receive node
    { (make_packet ()) with Net.Packet.dst = Net.Packet.Unicast 8 };
  Alcotest.(check int) "no handler, no route" 2 (Net.Node.undeliverable node)

let test_node_detach () =
  let node = Net.Node.create ~pool:(Net.Packet.Pool.create ()) 0 in
  let got = ref 0 in
  Net.Node.attach node ~flow:1 (fun _ -> incr got);
  Net.Node.detach node ~flow:1;
  Net.Node.receive node
    { (make_packet ()) with Net.Packet.dst = Net.Packet.Unicast 0; flow = 1 };
  Alcotest.(check int) "detached" 0 !got

let test_node_multicast_membership () =
  let node = Net.Node.create ~pool:(Net.Packet.Pool.create ()) 3 in
  Alcotest.(check bool) "not joined" false (Net.Node.joined node ~group:1);
  Net.Node.join node ~group:1;
  Alcotest.(check bool) "joined" true (Net.Node.joined node ~group:1);
  let got = ref 0 in
  Net.Node.attach node ~flow:5 (fun _ -> incr got);
  Net.Node.receive node
    { (make_packet ()) with Net.Packet.dst = Net.Packet.Multicast 1; flow = 5 };
  Alcotest.(check int) "multicast delivered locally" 1 !got

let test_node_mcast_route_dedup () =
  let sched = Sim.Scheduler.create () in
  let node = Net.Node.create ~pool:(Net.Packet.Pool.create ()) 0 in
  let link =
    Net.Link.create ~sched ~rng:(Sim.Rng.create 1) ~pool:(Net.Packet.Pool.create ()) ~id:"x" (droptail_config ())
      ~deliver:(fun _ -> ())
  in
  Net.Node.add_mcast_route node ~group:1 link;
  Net.Node.add_mcast_route node ~group:1 link;
  Alcotest.(check int) "dedup" 1 (List.length (Net.Node.mcast_routes node ~group:1))

(* ------------------------------------------------------------------ *)
(* Network                                                            *)
(* ------------------------------------------------------------------ *)

let build_line () =
  (* 0 -- 1 -- 2 *)
  let net = Net.Network.create ~seed:1 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  let c = Net.Node.id (Net.Network.add_node net) in
  ignore (Net.Network.duplex net a b (droptail_config ()));
  ignore (Net.Network.duplex net b c (droptail_config ()));
  Net.Network.install_routes net;
  (net, a, b, c)

let test_network_routing_line () =
  let net, a, _, c = build_line () in
  let got = ref [] in
  Net.Node.attach (Net.Network.node net c) ~flow:0 (fun pkt ->
      got := pkt.Net.Packet.uid :: !got);
  let pkt =
    Net.Network.make_packet net ~flow:0 ~src:a ~dst:(Net.Packet.Unicast c)
      ~size:1000 ~payload:Net.Packet.Raw
  in
  Net.Network.send net pkt;
  Net.Network.run_until net 1.0;
  Alcotest.(check int) "delivered across two hops" 1 (List.length !got)

let test_network_path () =
  let net, a, _, c = build_line () in
  Alcotest.(check int) "two links" 2 (List.length (Net.Network.path net a c));
  Alcotest.(check int) "self path empty" 0 (List.length (Net.Network.path net a a))

let test_network_local_delivery () =
  let net, a, _, _ = build_line () in
  let got = ref 0 in
  Net.Node.attach (Net.Network.node net a) ~flow:0 (fun _ -> incr got);
  let pkt =
    Net.Network.make_packet net ~flow:0 ~src:a ~dst:(Net.Packet.Unicast a)
      ~size:100 ~payload:Net.Packet.Raw
  in
  Net.Network.send net pkt;
  Alcotest.(check int) "self send is immediate" 1 !got

let test_network_multicast_tree () =
  (* Star: 0 is source, 1 is hub, 2-4 receivers. *)
  let net = Net.Network.create ~seed:1 () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let rs = List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  ignore (Net.Network.duplex net s hub (droptail_config ()));
  List.iter (fun r -> ignore (Net.Network.duplex net hub r (droptail_config ()))) rs;
  Net.Network.install_routes net;
  let group = Net.Network.fresh_group net in
  Net.Network.install_multicast net ~group ~src:s ~members:rs;
  let got = ref 0 in
  List.iter
    (fun r -> Net.Node.attach (Net.Network.node net r) ~flow:0 (fun _ -> incr got))
    rs;
  let pkt =
    Net.Network.make_packet net ~flow:0 ~src:s ~dst:(Net.Packet.Multicast group)
      ~size:1000 ~payload:Net.Packet.Raw
  in
  Net.Network.send net pkt;
  Net.Network.run_until net 1.0;
  Alcotest.(check int) "all members got a copy" 3 !got;
  (* The shared first hop must carry the packet exactly once. *)
  let first_hop = Option.get (Net.Network.link_between net s hub) in
  Alcotest.(check int) "no duplicate on shared hop" 1
    (Net.Link.stats first_hop).Net.Link.delivered

let test_network_multicast_requires_routes () =
  let net = Net.Network.create ~seed:1 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore (Net.Network.duplex net a b (droptail_config ()));
  Alcotest.(check bool) "raises without routes" true
    (try
       Net.Network.install_multicast net ~group:0 ~src:a ~members:[ b ];
       false
     with Invalid_argument _ -> true)

let test_network_fresh_ids () =
  let net = Net.Network.create ~seed:1 () in
  Alcotest.(check int) "flow 0" 0 (Net.Network.fresh_flow net);
  Alcotest.(check int) "flow 1" 1 (Net.Network.fresh_flow net);
  Alcotest.(check int) "group 0" 0 (Net.Network.fresh_group net)

let test_network_duplex_self_loop () =
  let net = Net.Network.create ~seed:1 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  Alcotest.(check bool) "self loop rejected" true
    (try
       ignore (Net.Network.duplex net a a (droptail_config ()));
       false
     with Invalid_argument _ -> true)

let test_network_determinism () =
  (* Same seed, same construction -> identical delivery count trace. *)
  let run seed =
    let net = Net.Network.create ~seed () in
    let a = Net.Node.id (Net.Network.add_node net) in
    let b = Net.Node.id (Net.Network.add_node net) in
    ignore
      (Net.Network.duplex net a b
         { (droptail_config ~capacity:3 ()) with Net.Link.phase_jitter = true });
    Net.Network.install_routes net;
    let got = ref [] in
    Net.Node.attach (Net.Network.node net b) ~flow:0 (fun pkt ->
        got := (pkt.Net.Packet.uid, Net.Network.now net) :: !got);
    for i = 0 to 19 do
      ignore
        (Sim.Scheduler.schedule_at (Net.Network.scheduler net)
           (0.0005 *. float_of_int i)
           (fun () ->
             let pkt =
               Net.Network.make_packet net ~flow:0 ~src:a
                 ~dst:(Net.Packet.Unicast b) ~size:1000 ~payload:Net.Packet.Raw
             in
             Net.Network.send net pkt))
    done;
    Net.Network.run_until net 1.0;
    List.rev !got
  in
  Alcotest.(check bool) "replay equal" true (run 77 = run 77);
  Alcotest.(check bool) "different seed differs" true (run 77 <> run 78)

let test_network_neighbors_order () =
  (* Neighbor lists must come back in link creation order, without
     duplicates, so BFS routing stays deterministic. *)
  let net = Net.Network.create ~seed:1 () in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let spokes = List.init 6 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  List.iter
    (fun s -> ignore (Net.Network.duplex net hub s (droptail_config ())))
    spokes;
  (* A second duplex on an existing pair must not duplicate entries. *)
  ignore (Net.Network.duplex net hub (List.hd spokes) (droptail_config ()));
  Alcotest.(check (list int)) "creation order, no duplicates" spokes
    (Net.Network.neighbors net hub);
  Alcotest.(check (list int)) "spoke sees hub" [ hub ]
    (Net.Network.neighbors net (List.hd spokes));
  Alcotest.(check (list int)) "unknown node empty" []
    (Net.Network.neighbors net 999)

let test_network_pool_recycles_after_delivery () =
  (* End-to-end pool accounting: once every packet of a burst is
     delivered, all records sit in the free list, and the next burst is
     served from it without fresh allocation. *)
  let net, a, _, c = build_line () in
  let pool = Net.Network.pool net in
  let got = ref 0 in
  Net.Node.attach (Net.Network.node net c) ~flow:0 (fun _ -> incr got);
  let burst () =
    for _ = 1 to 5 do
      let pkt =
        Net.Network.make_packet net ~flow:0 ~src:a ~dst:(Net.Packet.Unicast c)
          ~size:1000 ~payload:Net.Packet.Raw
      in
      Net.Network.send net pkt
    done
  in
  burst ();
  Net.Network.run_until net 1.0;
  Alcotest.(check int) "first burst delivered" 5 !got;
  Alcotest.(check int) "all records back in the free list"
    (Net.Packet.Pool.allocated pool)
    (Net.Packet.Pool.free_count pool);
  let allocated_before = Net.Packet.Pool.allocated pool in
  burst ();
  Net.Network.run_until net 2.0;
  Alcotest.(check int) "second burst delivered" 10 !got;
  Alcotest.(check int) "no new allocations" allocated_before
    (Net.Packet.Pool.allocated pool);
  Alcotest.(check bool) "recycling happened" true
    (Net.Packet.Pool.recycled pool > 0)

let test_network_node_lookup () =
  let net = Net.Network.create ~seed:1 () in
  let a = Net.Network.add_node net in
  Alcotest.(check int) "lookup" (Net.Node.id a)
    (Net.Node.id (Net.Network.node net (Net.Node.id a)));
  Alcotest.(check bool) "unknown raises" true
    (try ignore (Net.Network.node net 99); false with Not_found -> true)

let () =
  Alcotest.run "net"
    [
      ( "packet",
        [
          Alcotest.test_case "dest strings" `Quick test_packet_dest_strings;
          Alcotest.test_case "pp" `Quick test_packet_pp;
        ] );
      ( "pool",
        [
          Alcotest.test_case "acquire/release recycles" `Quick
            test_pool_acquire_release_recycles;
          Alcotest.test_case "refcounts" `Quick test_pool_refcounts;
          Alcotest.test_case "acquire_copy" `Quick test_pool_acquire_copy;
        ] );
      ( "red",
        [
          Alcotest.test_case "admits when small" `Quick test_red_admits_when_small;
          Alcotest.test_case "avg tracks queue" `Quick test_red_avg_tracks_queue;
          Alcotest.test_case "drops above max" `Quick test_red_drops_above_max;
          Alcotest.test_case "probabilistic zone" `Quick
            test_red_probabilistic_between_thresholds;
          Alcotest.test_case "idle decay" `Quick test_red_idle_decay;
          Alcotest.test_case "ecn marks in band" `Quick test_red_ecn_marks_in_band;
          Alcotest.test_case "ecn drops above max" `Quick
            test_red_ecn_still_drops_above_max;
        ] );
      ( "queue_disc",
        [
          Alcotest.test_case "droptail capacity" `Quick test_disc_droptail_capacity;
          Alcotest.test_case "bernoulli rate" `Quick test_disc_bernoulli;
          Alcotest.test_case "bernoulli invalid" `Quick test_disc_bernoulli_invalid;
          Alcotest.test_case "capacity invalid" `Quick test_disc_capacity_invalid;
          Alcotest.test_case "droptail avg is nan" `Quick
            test_disc_avg_queue_nan_for_droptail;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery timing" `Quick test_link_delivery_timing;
          Alcotest.test_case "ecn marks packet" `Quick test_link_ecn_marks_packet;
          Alcotest.test_case "mark copies shared packet" `Quick
            test_link_mark_copies_shared_packet;
          Alcotest.test_case "serialization" `Quick test_link_serializes;
          Alcotest.test_case "droptail overflow" `Quick test_link_droptail_overflow;
          Alcotest.test_case "drop hook" `Quick test_link_drop_hook;
          Alcotest.test_case "phase jitter bounded" `Quick
            test_link_phase_jitter_bounded;
          Alcotest.test_case "fifo under jitter" `Quick
            test_link_fifo_under_jitter;
          Alcotest.test_case "stats reset" `Quick test_link_stats_reset;
          Alcotest.test_case "invalid config" `Quick test_link_invalid_config;
          Alcotest.test_case "down drops and restores" `Quick
            test_link_down_drops_and_restores;
          Alcotest.test_case "down idempotent" `Quick test_link_down_idempotent;
          Alcotest.test_case "fifo under reconfig" `Quick
            test_link_reconfig_keeps_fifo;
          Alcotest.test_case "reconfig validation" `Quick
            test_link_reconfig_validation;
        ] );
      ( "node",
        [
          Alcotest.test_case "local dispatch" `Quick test_node_local_dispatch;
          Alcotest.test_case "undeliverable" `Quick test_node_undeliverable;
          Alcotest.test_case "detach" `Quick test_node_detach;
          Alcotest.test_case "multicast membership" `Quick
            test_node_multicast_membership;
          Alcotest.test_case "mcast route dedup" `Quick test_node_mcast_route_dedup;
        ] );
      ( "network",
        [
          Alcotest.test_case "routing line" `Quick test_network_routing_line;
          Alcotest.test_case "path" `Quick test_network_path;
          Alcotest.test_case "local delivery" `Quick test_network_local_delivery;
          Alcotest.test_case "multicast tree" `Quick test_network_multicast_tree;
          Alcotest.test_case "multicast needs routes" `Quick
            test_network_multicast_requires_routes;
          Alcotest.test_case "fresh ids" `Quick test_network_fresh_ids;
          Alcotest.test_case "self loop" `Quick test_network_duplex_self_loop;
          Alcotest.test_case "determinism" `Quick test_network_determinism;
          Alcotest.test_case "neighbors order" `Quick test_network_neighbors_order;
          Alcotest.test_case "pool recycles after delivery" `Quick
            test_network_pool_recycles_after_delivery;
          Alcotest.test_case "node lookup" `Quick test_network_node_lookup;
        ] );
    ]
