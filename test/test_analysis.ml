(* Tests for the analytical models: TCP PA window, RLA drift analysis,
   and the two-session particle model. *)

let check_close msg ~tol expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Tcp_model                                                          *)
(* ------------------------------------------------------------------ *)

let test_pa_window_values () =
  (* W = sqrt(2(1-p)/p); at p=0.02: sqrt(98) = 9.899... *)
  check_close "p=0.02" ~tol:1e-6 9.899494936611665
    (Analysis.Tcp_model.pa_window 0.02);
  check_close "p=0.5" ~tol:1e-6 (sqrt 2.0) (Analysis.Tcp_model.pa_window 0.5)

let test_pa_window_approx () =
  let p = 0.001 in
  let exact = Analysis.Tcp_model.pa_window p in
  let approx = Analysis.Tcp_model.pa_window_approx p in
  Alcotest.(check bool) "approx close for small p" true
    (abs_float (exact -. approx) /. exact < 0.001)

let test_pa_window_invalid () =
  Alcotest.(check bool) "p=0 rejected" true
    (try ignore (Analysis.Tcp_model.pa_window 0.0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "p=1 rejected" true
    (try ignore (Analysis.Tcp_model.pa_window 1.0); false
     with Invalid_argument _ -> true)

let test_pa_window_result_edges () =
  let open Analysis.Tcp_model in
  let expect_err name p want =
    match pa_window_result p with
    | Error e ->
        Alcotest.(check string)
          name
          (domain_error_to_string want)
          (domain_error_to_string e)
    | Ok w -> Alcotest.failf "%s: expected an error, got %g" name w
  in
  expect_err "NaN" Float.nan Not_a_probability;
  expect_err "p=0" 0.0 Below_domain;
  expect_err "p<0" (-0.25) Below_domain;
  expect_err "p=1" 1.0 Above_domain;
  expect_err "p>1" 1.5 Above_domain;
  match pa_window_result 0.02 with
  | Ok w -> check_close "interior = pa_window" ~tol:1e-12 (pa_window 0.02) w
  | Error e -> Alcotest.fail (domain_error_to_string e)

let test_pa_window_clamped_total () =
  let open Analysis.Tcp_model in
  check_close "interior untouched" ~tol:1e-12 (pa_window 0.02)
    (pa_window_clamped 0.02);
  check_close "p=0 clamps to eps" ~tol:1e-3
    (pa_window default_domain_eps)
    (pa_window_clamped 0.0);
  check_close "p=1 clamps to 1-eps" ~tol:1e-12
    (pa_window (1.0 -. default_domain_eps))
    (pa_window_clamped 1.0);
  Alcotest.(check bool) "finite at 0" true (Float.is_finite (pa_window_clamped 0.0));
  Alcotest.(check bool) "positive at 1" true (pa_window_clamped 1.0 > 0.0);
  Alcotest.(check bool) "monotone across the clamp" true
    (pa_window_clamped (-5.0) >= pa_window_clamped 0.5
    && pa_window_clamped 0.5 >= pa_window_clamped 5.0);
  Alcotest.(check bool) "NaN rejected" true
    (try ignore (pa_window_clamped Float.nan); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "eps >= 0.5 rejected" true
    (try ignore (pa_window_clamped ~eps:0.7 0.5); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "eps = 0 rejected" true
    (try ignore (pa_window_clamped ~eps:0.0 0.5); false
     with Invalid_argument _ -> true)

let test_window_rate_edges () =
  let open Analysis.Tcp_model in
  let rtt = 0.1 in
  (* Zero exactly at the PA fixed point, for any rtt. *)
  List.iter
    (fun p ->
      let w = pa_window p in
      check_close (Printf.sprintf "zero at pa_window, p=%.3f" p) ~tol:1e-9 0.0
        (window_rate ~p ~rtt w))
    [ 0.001; 0.01; 0.05 ];
  (* Closed-interval endpoints: pure growth at p=0, pure decay at p=1. *)
  check_close "p=0 pure growth" ~tol:1e-12 (1.0 /. rtt)
    (window_rate ~p:0.0 ~rtt 5.0);
  check_close "p=1 pure halving" ~tol:1e-12
    (-.(5.0 *. 5.0 /. 2.0) /. rtt)
    (window_rate ~p:1.0 ~rtt 5.0);
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) name true
        (try ignore (f ()); false with Invalid_argument _ -> true))
    [
      ("p>1 rejected", fun () -> window_rate ~p:1.5 ~rtt 5.0);
      ("p<0 rejected", fun () -> window_rate ~p:(-0.1) ~rtt 5.0);
      ("NaN p rejected", fun () -> window_rate ~p:Float.nan ~rtt 5.0);
      ("rtt=0 rejected", fun () -> window_rate ~p:0.01 ~rtt:0.0 5.0);
      ("w=0 rejected", fun () -> window_rate ~p:0.01 ~rtt 0.0);
    ]

let test_drift_zero_at_pa_window () =
  List.iter
    (fun p ->
      let w = Analysis.Tcp_model.pa_window p in
      check_close (Printf.sprintf "drift zero at p=%.3f" p) ~tol:1e-9 0.0
        (Analysis.Tcp_model.drift ~p w))
    [ 0.001; 0.01; 0.05 ]

let test_drift_signs () =
  let p = 0.01 in
  let w = Analysis.Tcp_model.pa_window p in
  Alcotest.(check bool) "positive below" true
    (Analysis.Tcp_model.drift ~p (w /. 2.0) > 0.0);
  Alcotest.(check bool) "negative above" true
    (Analysis.Tcp_model.drift ~p (w *. 2.0) < 0.0)

let test_mahdavi_floyd () =
  (* 1.3/(0.1*sqrt(0.01)) = 130. *)
  check_close "formula" ~tol:1e-9 130.0
    (Analysis.Tcp_model.mahdavi_floyd_rate ~rtt:0.1 ~p:0.01);
  (* PA-window throughput is within ~10% of Mahdavi-Floyd at small p. *)
  let a = Analysis.Tcp_model.throughput ~rtt:0.1 ~p:0.01 in
  let b = Analysis.Tcp_model.mahdavi_floyd_rate ~rtt:0.1 ~p:0.01 in
  Alcotest.(check bool) "similar formulas" true (abs_float (a -. b) /. b < 0.1)

let test_inverse_window () =
  List.iter
    (fun p ->
      let w = Analysis.Tcp_model.pa_window p in
      check_close
        (Printf.sprintf "inverse at p=%.3f" p)
        ~tol:1e-9 p
        (Analysis.Tcp_model.congestion_probability_for_window w))
    [ 0.005; 0.02; 0.05 ]

let test_mc_agrees_with_model () =
  let rng = Sim.Rng.create 4 in
  let p = 0.01 in
  let mc = Analysis.Tcp_model.simulate_pa_window ~rng ~p ~steps:500_000 in
  let model = Analysis.Tcp_model.pa_window p in
  (* The sample mean sits slightly above the PA window; 15% is ample. *)
  Alcotest.(check bool)
    (Printf.sprintf "mc %.2f vs model %.2f" mc model)
    true
    (abs_float (mc -. model) /. model < 0.15)

(* ------------------------------------------------------------------ *)
(* Rla_model                                                          *)
(* ------------------------------------------------------------------ *)

let test_two_receiver_closed_form () =
  (* Equation 3 with p1 = p2 = p: W^2 = 4(1-p+p^2/4)/(2p - p^2/4). *)
  let p = 0.01 in
  let w = Analysis.Rla_model.two_receiver_window ~p1:p ~p2:p in
  let expected =
    sqrt (4.0 *. (1.0 -. p +. (p *. p /. 4.0)) /. ((2.0 *. p) -. (p *. p /. 4.0)))
  in
  check_close "closed form" ~tol:1e-9 expected w

let test_two_receiver_matches_drift_zero () =
  List.iter
    (fun (p1, p2) ->
      let closed = Analysis.Rla_model.two_receiver_window ~p1 ~p2 in
      let numeric = Analysis.Rla_model.pa_window_independent ~ps:[| p1; p2 |] in
      Alcotest.(check bool)
        (Printf.sprintf "closed %.3f vs numeric %.3f at (%.3f, %.3f)" closed
           numeric p1 p2)
        true
        (abs_float (closed -. numeric) /. closed < 0.02))
    [ (0.01, 0.01); (0.02, 0.005); (0.03, 0.03) ]

let test_proposition_lower_bound () =
  (* W always exceeds the TCP window at p_max. *)
  List.iter
    (fun ps ->
      let n = Array.length ps in
      let w = Analysis.Rla_model.pa_window_independent ~ps in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d lower bound" n)
        true
        (Analysis.Rla_model.satisfies_proposition ~n ~ps ~window:w))
    [
      [| 0.01; 0.01 |];
      [| 0.02; 0.01; 0.005 |];
      Array.make 8 0.01;
      Array.make 27 0.02;
      Array.append [| 0.04 |] (Array.make 26 0.004);
    ]

let test_proposition_bounds_shape () =
  let lo, hi = Analysis.Rla_model.proposition_bounds ~n:9 ~p_max:0.02 in
  check_close "lower = tcp window" ~tol:1e-9 (Analysis.Tcp_model.pa_window 0.02) lo;
  check_close "upper = sqrt(n) x lower" ~tol:1e-9 (3.0 *. lo) hi

let test_common_loss_larger_window () =
  (* The Lemma: correlation in losses yields a larger average window
     than independent losses with the same per-receiver probability. *)
  List.iter
    (fun (n, p) ->
      let independent =
        Analysis.Rla_model.pa_window_independent ~ps:(Array.make n p)
      in
      let common = Analysis.Rla_model.pa_window_common ~n ~p in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d p=%.3f: common %.2f > independent %.2f" n p
           common independent)
        true
        (common > independent))
    [ (2, 0.01); (4, 0.02); (9, 0.01); (27, 0.01) ]

let test_more_receivers_larger_window () =
  (* Equal congestion everywhere: the window grows (weakly) with n
     because multi-signal packets waste cuts. *)
  let w2 = Analysis.Rla_model.pa_window_common ~n:2 ~p:0.02 in
  let w8 = Analysis.Rla_model.pa_window_common ~n:8 ~p:0.02 in
  Alcotest.(check bool) "monotone in n for common loss" true (w8 >= w2)

let test_min_ratio_function () =
  check_close "f(0.05)" ~tol:1e-9 (0.05 /. 1.925)
    (Analysis.Rla_model.min_ratio_for_upper_bound 0.05);
  (* eta = 20 leaves margin: 1/20 > f(0.05). *)
  Alcotest.(check bool) "eta=20 margin" true
    (0.05 > Analysis.Rla_model.min_ratio_for_upper_bound 0.05)

let test_equal_congestion_bounded () =
  (* Section 4.3: with all receivers equally congested the RLA's window
     multiplier over TCP stays small for any n (the paper claims the
     throughput stays within 4x; the window part stays within 2x). *)
  List.iter
    (fun n ->
      let ratio = Analysis.Rla_model.equal_congestion_ratio ~n ~p:0.01 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d ratio %.2f < 2" n ratio)
        true
        (ratio >= 1.0 && ratio < 2.0))
    [ 1; 2; 4; 9; 27; 81 ]

let test_skewed_congestion_grows () =
  (* One truly congested receiver among n: the multiplier grows with n
     (the O(n)-advantage regime) but stays under the sqrt(3n)-ish
     window bound. *)
  let r4 = Analysis.Rla_model.skewed_congestion_ratio ~n:4 ~p_max:0.02 ~eta:20.0 in
  let r27 = Analysis.Rla_model.skewed_congestion_ratio ~n:27 ~p_max:0.02 ~eta:20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "grows with n (%.2f -> %.2f)" r4 r27)
    true (r27 > r4);
  Alcotest.(check bool) "below the proposition bound" true
    (r27 < sqrt (3.0 *. 27.0))

let test_window_ratio_consistency () =
  let ps = [| 0.02; 0.01; 0.005 |] in
  let direct =
    Analysis.Rla_model.pa_window_independent ~ps
    /. Analysis.Tcp_model.pa_window 0.02
  in
  Alcotest.(check (float 1e-9)) "matches components" direct
    (Analysis.Rla_model.window_ratio_to_tcp ~ps)

let test_rla_mc_agrees () =
  let rng = Sim.Rng.create 10 in
  let ps = Array.make 4 0.01 in
  let model = Analysis.Rla_model.pa_window_independent ~ps in
  let mc = Analysis.Rla_model.simulate_window ~rng ~ps ~steps:500_000 in
  Alcotest.(check bool)
    (Printf.sprintf "mc %.2f vs model %.2f" mc model)
    true
    (abs_float (mc -. model) /. model < 0.15)

let test_rla_model_validation () =
  Alcotest.(check bool) "empty ps" true
    (try ignore (Analysis.Rla_model.pa_window_independent ~ps:[||]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "both zero" true
    (try ignore (Analysis.Rla_model.two_receiver_window ~p1:0.0 ~p2:0.0); false
     with Invalid_argument _ -> true)

(* The O(1) closed form used by the mean-field solver must agree with
   the O(n) Binomial cut-distribution drift it replaces: both are
   expectations over K ~ Binomial(n, 1/n) halvings per loss event, so
   drift_rate_common = (w / rtt) * drift_common exactly. *)
let test_drift_rate_common_closed_form () =
  let rtt = 0.1 in
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          List.iter
            (fun w ->
              let per_packet = Analysis.Rla_model.drift_common ~n ~p w in
              let expected = w /. rtt *. per_packet in
              let got = Analysis.Rla_model.drift_rate_common ~n ~p ~rtt w in
              let tol = 1e-9 *. Float.max 1.0 (Float.abs expected) in
              check_close
                (Printf.sprintf "n=%d p=%.2f w=%.1f" n p w)
                ~tol expected got)
            [ 2.0; 10.0; 40.0 ])
        [ 0.01; 0.1; 0.5 ])
    [ 1; 2; 4; 8; 32 ];
  (* Zero exactly at the closed-form PA window. *)
  List.iter
    (fun n ->
      let p = 0.02 in
      let w = Analysis.Rla_model.pa_window_common ~n ~p in
      check_close (Printf.sprintf "zero at pa_window_common, n=%d" n) ~tol:1e-6
        0.0
        (Analysis.Rla_model.drift_rate_common ~n ~p ~rtt w))
    [ 1; 4; 16 ];
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) name true
        (try ignore (f ()); false with Invalid_argument _ -> true))
    [
      ("n=0 rejected", fun () -> Analysis.Rla_model.drift_rate_common ~n:0 ~p:0.1 ~rtt 5.0);
      ("bad rtt rejected", fun () -> Analysis.Rla_model.drift_rate_common ~n:4 ~p:0.1 ~rtt:0.0 5.0);
      ("bad w rejected", fun () -> Analysis.Rla_model.drift_rate_common ~n:4 ~p:0.1 ~rtt 0.0);
      ("p<0 rejected", fun () -> Analysis.Rla_model.drift_rate_common ~n:4 ~p:(-0.1) ~rtt 5.0);
    ]

(* ------------------------------------------------------------------ *)
(* Particle                                                           *)
(* ------------------------------------------------------------------ *)

let pipes10 = Analysis.Particle.uniform_pipes ~pipe:10.0 ~n:3

let test_particle_signals_at () =
  Alcotest.(check int) "below pipe" 0 (Analysis.Particle.signals_at pipes10 9.9);
  Alcotest.(check int) "at pipe" 3 (Analysis.Particle.signals_at pipes10 10.0);
  let multi =
    {
      Analysis.Particle.pipe_sizes = [| 10.0; 20.0 |];
      counts = [| 2; 3 |];
    }
  in
  Alcotest.(check int) "first level" 2 (Analysis.Particle.signals_at multi 15.0);
  Alcotest.(check int) "both levels" 5 (Analysis.Particle.signals_at multi 25.0)

let test_particle_drift_signs () =
  (* No congestion: both coordinates drift up by 2 per step. *)
  check_close "uncongested drift" ~tol:1e-9 2.0
    (Analysis.Particle.drift_at pipes10 ~w:4.0 ~sum:8.0);
  (* Deep congestion with a large window: drift is negative. *)
  Alcotest.(check bool) "congested drift negative" true
    (Analysis.Particle.drift_at pipes10 ~w:9.0 ~sum:18.0 < 0.0);
  (* Congested but tiny window: increments beat rare cuts. *)
  Alcotest.(check bool) "small window still grows" true
    (Analysis.Particle.drift_at pipes10 ~w:0.5 ~sum:12.0 > 0.0)

let test_particle_fair_point () =
  let fx, fy = Analysis.Particle.fair_point pipes10 in
  check_close "x" ~tol:1e-9 5.0 fx;
  check_close "y" ~tol:1e-9 5.0 fy

let test_particle_drift_field_grid () =
  let field =
    Analysis.Particle.drift_field pipes10 ~x_max:10.0 ~y_max:10.0 ~step:2.0
  in
  Alcotest.(check int) "5x5 grid" 25 (List.length field)

let test_particle_simulation_symmetry () =
  let stats =
    Analysis.Particle.simulate ~rng:(Sim.Rng.create 3) pipes10 ~steps:200_000 ()
  in
  let m1 = stats.Analysis.Particle.mean_w1 in
  let m2 = stats.Analysis.Particle.mean_w2 in
  Alcotest.(check bool)
    (Printf.sprintf "means %.2f vs %.2f equal within 5%%" m1 m2)
    true
    (abs_float (m1 -. m2) /. Stdlib.max m1 m2 < 0.05);
  (* The particle hovers near the fair point: each window's mean is in
     a broad band around pipe/2. *)
  Alcotest.(check bool) "mean near fair value" true (m1 > 2.0 && m1 < 8.0)

let test_particle_mass_concentrates () =
  let pipes = Analysis.Particle.uniform_pipes ~pipe:40.0 ~n:27 in
  let stats =
    Analysis.Particle.simulate ~rng:(Sim.Rng.create 5) pipes ~steps:100_000 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "mass near fair point %.2f > 0.25"
       stats.Analysis.Particle.mass_near_fair_point)
    true
    (stats.Analysis.Particle.mass_near_fair_point > 0.25)

let test_particle_validation () =
  Alcotest.(check bool) "bad pipes" true
    (try ignore (Analysis.Particle.uniform_pipes ~pipe:0.0 ~n:3); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "descending sizes rejected" true
    (try
       ignore
         (Analysis.Particle.signals_at
            { Analysis.Particle.pipe_sizes = [| 10.0; 5.0 |]; counts = [| 1; 1 |] }
            7.0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "analysis"
    [
      ( "tcp_model",
        [
          Alcotest.test_case "pa window values" `Quick test_pa_window_values;
          Alcotest.test_case "approximation" `Quick test_pa_window_approx;
          Alcotest.test_case "invalid p" `Quick test_pa_window_invalid;
          Alcotest.test_case "typed result edges" `Quick
            test_pa_window_result_edges;
          Alcotest.test_case "clamped total" `Quick test_pa_window_clamped_total;
          Alcotest.test_case "window rate edges" `Quick test_window_rate_edges;
          Alcotest.test_case "drift zero" `Quick test_drift_zero_at_pa_window;
          Alcotest.test_case "drift signs" `Quick test_drift_signs;
          Alcotest.test_case "mahdavi-floyd" `Quick test_mahdavi_floyd;
          Alcotest.test_case "inverse" `Quick test_inverse_window;
          Alcotest.test_case "monte carlo" `Slow test_mc_agrees_with_model;
        ] );
      ( "rla_model",
        [
          Alcotest.test_case "closed form" `Quick test_two_receiver_closed_form;
          Alcotest.test_case "matches drift zero" `Quick
            test_two_receiver_matches_drift_zero;
          Alcotest.test_case "proposition lower bound" `Quick
            test_proposition_lower_bound;
          Alcotest.test_case "bounds shape" `Quick test_proposition_bounds_shape;
          Alcotest.test_case "lemma: correlation grows window" `Quick
            test_common_loss_larger_window;
          Alcotest.test_case "monotone in n" `Quick test_more_receivers_larger_window;
          Alcotest.test_case "ratio function" `Quick test_min_ratio_function;
          Alcotest.test_case "monte carlo" `Slow test_rla_mc_agrees;
          Alcotest.test_case "sec 4.3 equal congestion" `Quick
            test_equal_congestion_bounded;
          Alcotest.test_case "sec 4.3 skewed congestion" `Quick
            test_skewed_congestion_grows;
          Alcotest.test_case "window ratio consistency" `Quick
            test_window_ratio_consistency;
          Alcotest.test_case "validation" `Quick test_rla_model_validation;
          Alcotest.test_case "closed-form rate" `Quick
            test_drift_rate_common_closed_form;
        ] );
      ( "particle",
        [
          Alcotest.test_case "signals_at" `Quick test_particle_signals_at;
          Alcotest.test_case "drift signs" `Quick test_particle_drift_signs;
          Alcotest.test_case "fair point" `Quick test_particle_fair_point;
          Alcotest.test_case "drift field grid" `Quick test_particle_drift_field_grid;
          Alcotest.test_case "simulation symmetry" `Slow
            test_particle_simulation_symmetry;
          Alcotest.test_case "mass concentrates" `Slow test_particle_mass_concentrates;
          Alcotest.test_case "validation" `Quick test_particle_validation;
        ] );
    ]
