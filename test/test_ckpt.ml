(* Checkpoint subsystem tests: codec primitives and container
   robustness (truncation, corruption), qcheck round-trips over
   randomized component states, the scheduler re-arm protocol, the
   fault-injector capture/restore, journal save/load/diff, and a fast
   end-to-end save -> load -> resume equivalence check (the slow
   byte-identity variant lives in test_integration.ml). *)

let tmp_file suffix =
  Filename.temp_file "rla_ckpt_test" suffix

(* --- codec primitives ----------------------------------------------- *)

let test_primitive_round_trip () =
  let b = Buffer.create 64 in
  Ckpt.Codec.w_int b 42;
  Ckpt.Codec.w_int b (-7);
  Ckpt.Codec.w_f64 b 3.25;
  Ckpt.Codec.w_f64 b (-0.0);
  Ckpt.Codec.w_f64 b infinity;
  Ckpt.Codec.w_f64 b nan;
  Ckpt.Codec.w_bool b true;
  Ckpt.Codec.w_string b "hello\x00world";
  Ckpt.Codec.w_option Ckpt.Codec.w_int b None;
  Ckpt.Codec.w_option Ckpt.Codec.w_int b (Some 9);
  Ckpt.Codec.w_list Ckpt.Codec.w_int b [ 1; 2; 3 ];
  let r = Ckpt.Codec.reader (Buffer.contents b) in
  Alcotest.(check int) "int" 42 (Ckpt.Codec.r_int r);
  Alcotest.(check int) "negative int" (-7) (Ckpt.Codec.r_int r);
  Alcotest.(check (float 0.0)) "float" 3.25 (Ckpt.Codec.r_f64 r);
  Alcotest.(check bool) "negative zero bits" true
    (Int64.equal (Int64.bits_of_float (Ckpt.Codec.r_f64 r))
       (Int64.bits_of_float (-0.0)));
  Alcotest.(check bool) "infinity" true
    (Float.equal (Ckpt.Codec.r_f64 r) infinity);
  Alcotest.(check bool) "nan round-trips" true (Float.is_nan (Ckpt.Codec.r_f64 r));
  Alcotest.(check bool) "bool" true (Ckpt.Codec.r_bool r);
  Alcotest.(check string) "string with NUL" "hello\x00world"
    (Ckpt.Codec.r_string r);
  Alcotest.(check bool) "none" true
    (Ckpt.Codec.r_option Ckpt.Codec.r_int r = None);
  Alcotest.(check bool) "some" true
    (Ckpt.Codec.r_option Ckpt.Codec.r_int r = Some 9);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (Ckpt.Codec.r_list Ckpt.Codec.r_int r);
  Alcotest.(check bool) "fully consumed" true (Ckpt.Codec.at_end r)

let test_i64_and_pair_round_trip () =
  let b = Buffer.create 32 in
  Ckpt.Codec.w_i64 b 0x0123456789ABCDEFL;
  Ckpt.Codec.w_i64 b (-1L);
  Ckpt.Codec.w_pair Ckpt.Codec.w_int Ckpt.Codec.w_f64 b (42, 1.5);
  let r = Ckpt.Codec.reader (Buffer.contents b) in
  Alcotest.(check int64) "i64" 0x0123456789ABCDEFL (Ckpt.Codec.r_i64 r);
  Alcotest.(check int64) "negative i64" (-1L) (Ckpt.Codec.r_i64 r);
  let i, f = Ckpt.Codec.r_pair Ckpt.Codec.r_int Ckpt.Codec.r_f64 r in
  Alcotest.(check int) "pair fst" 42 i;
  Alcotest.(check (float 0.0)) "pair snd" 1.5 f;
  Alcotest.(check bool) "fully consumed" true (Ckpt.Codec.at_end r)

let test_parse_payload_trailing_bytes () =
  let b = Buffer.create 16 in
  Ckpt.Codec.w_int b 7;
  Ckpt.Codec.w_int b 9;
  let section = { Ckpt.Codec.name = "x"; payload = Buffer.contents b } in
  (match Ckpt.Codec.parse_payload section Ckpt.Codec.r_int with
  | Error (Ckpt.Codec.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error e -> Alcotest.failf "wrong error %s" (Ckpt.Codec.error_to_string e));
  match
    Ckpt.Codec.parse_payload section
      (Ckpt.Codec.r_pair Ckpt.Codec.r_int Ckpt.Codec.r_int)
  with
  | Ok (7, 9) -> ()
  | Ok _ -> Alcotest.fail "wrong payload decoded"
  | Error e -> Alcotest.fail (Ckpt.Codec.error_to_string e)

let sections_fixture =
  [
    { Ckpt.Codec.name = "alpha"; payload = "some payload bytes" };
    { Ckpt.Codec.name = "beta"; payload = "" };
    { Ckpt.Codec.name = "gamma"; payload = String.init 256 Char.chr };
  ]

let test_container_round_trip () =
  let encoded = Ckpt.Codec.encode sections_fixture in
  match Ckpt.Codec.decode encoded with
  | Error e -> Alcotest.fail (Ckpt.Codec.error_to_string e)
  | Ok sections ->
      Alcotest.(check int) "section count" 3 (List.length sections);
      List.iter2
        (fun (a : Ckpt.Codec.section) (b : Ckpt.Codec.section) ->
          Alcotest.(check string) "name" a.Ckpt.Codec.name b.Ckpt.Codec.name;
          Alcotest.(check string) "payload" a.payload b.payload)
        sections_fixture sections

let test_truncation_never_raises () =
  (* Every proper prefix of a valid file must decode to a typed error,
     never an exception. *)
  let encoded = Ckpt.Codec.encode sections_fixture in
  for len = 0 to String.length encoded - 1 do
    match Ckpt.Codec.decode (String.sub encoded 0 len) with
    | Ok _ -> Alcotest.failf "prefix of %d bytes decoded successfully" len
    | Error (Ckpt.Codec.Truncated | Ckpt.Codec.Bad_magic) -> ()
    | Error e ->
        Alcotest.failf "prefix of %d bytes: unexpected %s" len
          (Ckpt.Codec.error_to_string e)
  done

let test_corruption_detected_per_section () =
  let encoded = Ckpt.Codec.encode sections_fixture in
  (* Flip a byte inside the last section's payload: the CRC must name
     that section. *)
  let target = "gamma" in
  let idx =
    (* The 257-byte payload is unique; find one of its bytes. *)
    let rec find i =
      if i >= String.length encoded then Alcotest.fail "pattern not found"
      else if
        i + 4 <= String.length encoded
        && String.equal (String.sub encoded i 4) "\x00\x01\x02\x03"
      then i
      else find (i + 1)
    in
    find 0
  in
  let corrupted = Bytes.of_string encoded in
  Bytes.set corrupted (idx + 2) '\xff';
  (match Ckpt.Codec.decode (Bytes.to_string corrupted) with
  | Error (Ckpt.Codec.Crc_mismatch name) ->
      Alcotest.(check string) "names the bad section" target name
  | Ok _ -> Alcotest.fail "corruption went undetected"
  | Error e -> Alcotest.failf "unexpected %s" (Ckpt.Codec.error_to_string e));
  (* Bad magic. *)
  let bad_magic = Bytes.of_string encoded in
  Bytes.set bad_magic 0 'X';
  (match Ckpt.Codec.decode (Bytes.to_string bad_magic) with
  | Error Ckpt.Codec.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic undetected");
  (* Future version. *)
  let bad_version = Bytes.of_string encoded in
  Bytes.set bad_version 15 '\x63';
  match Ckpt.Codec.decode (Bytes.to_string bad_version) with
  | Error (Ckpt.Codec.Bad_version 99) -> ()
  | _ -> Alcotest.fail "version mismatch undetected"

let test_load_file_errors () =
  (match Ckpt.Codec.load_file ~path:"/nonexistent/rla.ckpt" with
  | Error (Ckpt.Codec.Malformed _) -> ()
  | _ -> Alcotest.fail "missing file should be Malformed with the OS message");
  let path = tmp_file ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ckpt.Codec.save_file ~path sections_fixture;
      (match Ckpt.Codec.load_file ~path with
      | Ok s -> Alcotest.(check int) "sections back" 3 (List.length s)
      | Error e -> Alcotest.fail (Ckpt.Codec.error_to_string e));
      (* Truncate the file on disk: typed error, no exception. *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2)));
      match Ckpt.Codec.load_file ~path with
      | Error Ckpt.Codec.Truncated -> ()
      | Ok _ -> Alcotest.fail "truncated file loaded"
      | Error e -> Alcotest.failf "unexpected %s" (Ckpt.Codec.error_to_string e))

(* --- qcheck state round-trips --------------------------------------- *)

let gen_scoreboard_state =
  QCheck.make
    QCheck.Gen.(
      let* n = int_bound 30 in
      let* entries =
        flatten_l
          (List.init n (fun i ->
               let* sacked = bool in
               let* lost = bool in
               let* rexmitted = bool in
               let* rexmit_time = float_bound_inclusive 100.0 in
               return
                 {
                   Tcp.Scoreboard.e_seq = i;
                   e_sacked = sacked;
                   e_lost = lost && not sacked;
                   e_rexmitted = rexmitted;
                   e_rexmit_time = rexmit_time;
                 }))
      in
      let* high_ack = int_bound 100 in
      let* extra = int_bound 50 in
      return
        {
          Tcp.Scoreboard.s_entries = entries;
          s_high_ack = high_ack;
          s_next_seq = high_ack + n + extra;
          s_highest_sacked = high_ack + n - 1;
          s_sacked_cnt = List.length (List.filter (fun e -> e.Tcp.Scoreboard.e_sacked) entries);
          s_lost_cnt = List.length (List.filter (fun e -> e.Tcp.Scoreboard.e_lost) entries);
          s_rexmit_out = 0;
          s_loss_floor = high_ack;
        })

let prop_scoreboard_codec_round_trip =
  QCheck.Test.make ~name:"tcp sender state codec round-trips" ~count:200
    gen_scoreboard_state (fun st ->
      let buf = Buffer.create 256 in
      let st_wrapped =
        {
          Tcp.Sender.s_sb = st;
          s_rto = { Tcp.Rto.s_srtt = 0.1; s_rttvar = 0.05; s_shift = 0; s_samples = 3 };
          s_receiver =
            {
              Tcp.Receiver.s_ooo = [ 5; 7 ];
              s_recent = [ 7; 5 ];
              s_expected = 4;
              s_received_total = 11;
              s_duplicates = 1;
              s_t0 = 0.0;
              s_wscale = 2;
              s_sack_ok = true;
              s_rst_strict = true;
              s_closed = false;
              s_syn_received = true;
              s_rst_accepted = 0;
              s_rst_challenged = 1;
              s_rst_dropped = 2;
              s_challenge_acks = 1;
              s_ghost_data = 0;
              s_probes_received = 3;
            };
          s_cwnd = 3.5;
          s_ssthresh = 8.0;
          s_in_recovery = false;
          s_recover_point = 0;
          s_timer = Some 17;
          s_start_event = None;
          s_cwnd_avg =
            { Stats.Time_avg.s_start = 0.0; s_last_time = 1.0; s_last_value = 3.5; s_weighted_sum = 3.5 };
          s_rtt = { Stats.Welford.s_n = 2; s_mean = 0.2; s_m2 = 0.0; s_min = 0.1; s_max = 0.3 };
          s_sent_new = 20;
          s_retransmits = 2;
          s_window_cuts = 1;
          s_timeouts = 0;
          s_meas_time = 0.0;
          s_meas_delivered = 0;
          s_meas_sent_new = 0;
          s_meas_retransmits = 0;
          s_meas_window_cuts = 0;
          s_meas_timeouts = 0;
          s_completed_at = None;
          s_established = true;
          s_syn_sent = 1;
          s_neg_wscale = 2;
          s_rwnd_field = 17;
          s_persist_timer = Some 23;
          s_persist_shift = 1;
          s_zero_window_probes = 4;
          s_ghost_acks = 2;
        }
      in
      Ckpt.State.w_tcp_sender buf st_wrapped;
      let r = Ckpt.Codec.reader (Buffer.contents buf) in
      let back = Ckpt.State.r_tcp_sender r in
      Ckpt.Codec.at_end r && back = st_wrapped)

let gen_packet =
  QCheck.Gen.(
    let* uid = int_bound 10_000 in
    let* flow = int_bound 30 in
    let* src = int_bound 40 in
    let* unicast = bool in
    let* target = int_bound 40 in
    let* size = int_range 40 1500 in
    let* born = float_bound_inclusive 300.0 in
    let* ecn = bool in
    let* tag = int_bound 8 in
    let* seq = int_bound 5000 in
    let* sent_at = float_bound_inclusive 300.0 in
    let* rexmit = bool in
    let* rwnd_raw = int_bound 64 in
    let rwnd = rwnd_raw - 1 in
    let payload =
      match tag with
      | 0 -> Net.Packet.Raw
      | 1 -> Tcp.Wire.Tcp_data { seq; sent_at }
      | 2 ->
          Tcp.Wire.Tcp_ack
            {
              cum_ack = seq;
              blocks = [ { Tcp.Wire.block_lo = seq + 2; block_hi = seq + 4 } ];
              echo = sent_at;
              ece = rexmit;
              rwnd;
            }
      | 3 -> Rla.Wire.Rla_data { seq; sent_at; rexmit }
      | 5 -> Tcp.Wire.Tcp_syn { options = seq land 0x1FFFFF; sent_at }
      | 6 ->
          Tcp.Wire.Tcp_syn_ack
            { options = seq land 0x1FFFFF; rwnd = rwnd_raw; sent_at }
      | 7 -> Tcp.Wire.Tcp_rst { seq }
      | 8 -> Tcp.Wire.Tcp_probe { seq; sent_at }
      | _ ->
          Rla.Wire.Rla_ack
            {
              rcvr = target;
              cum_ack = seq;
              blocks = [];
              echo = sent_at;
              ece = ecn;
            }
    in
    return
      {
        Net.Packet.uid;
        flow;
        src;
        dst = (if unicast then Net.Packet.Unicast target else Net.Packet.Multicast target);
        size;
        payload;
        born;
        ecn;
        refs = 1;
      })

let gen_link_state =
  QCheck.make
    QCheck.Gen.(
      let* bw = float_range 1e4 1e8 in
      let* delay = float_range 1e-4 0.2 in
      let* buffer = list_size (int_bound 8) gen_packet in
      let* in_service = opt gen_packet in
      let* inflight_pkts = list_size (int_bound 6) gen_packet in
      let* up = bool in
      let* rng_bits = ui64 in
      let* red = bool in
      let* avg = float_bound_inclusive 20.0 in
      let busy = Option.is_some in_service in
      let inflight = List.mapi (fun i p -> (100 + (2 * i), p)) inflight_pkts in
      let tx_event = if busy then Some 51 else None in
      return
        {
          Net.Link.s_bandwidth_bps = bw;
          s_prop_delay = delay;
          s_buffer = (if busy then buffer else []);
          s_busy = busy;
          s_in_service = in_service;
          s_tx_event = tx_event;
          s_inflight = inflight;
          s_up = up;
          s_down_since = 0.0;
          s_downtime_acc = 0.5;
          s_last_delivery = 12.25;
          s_offered = 100;
          s_dropped = 3;
          s_delivered = 90;
          s_bytes_delivered = 90_000;
          s_marked = 1;
          s_rng = rng_bits;
          s_disc =
            (if red then
               Net.Queue_disc.Red
                 {
                   Net.Red.s_avg = avg;
                   s_count = 4;
                   s_q_time = 1.5;
                   s_idle = false;
                   s_drops = 2;
                   s_marks = 1;
                 }
             else Net.Queue_disc.Stateless);
        })

let prop_link_codec_round_trip =
  QCheck.Test.make ~name:"link state codec round-trips" ~count:200 gen_link_state
    (fun st ->
      let buf = Buffer.create 512 in
      Ckpt.State.w_network buf
        {
          Net.Network.s_root_rng = 77L;
          s_next_flow = 3;
          s_next_group = 1;
          s_next_uid = 999;
          s_nodes = [ 0; 0; 1 ];
          s_links = [ st ];
        };
      let r = Ckpt.Codec.reader (Buffer.contents buf) in
      let back = Ckpt.State.r_network r in
      Ckpt.Codec.at_end r && back.Net.Network.s_links = [ st ])

let gen_scheduler_state =
  QCheck.make
    QCheck.Gen.(
      let* n = int_bound 20 in
      let* times = flatten_l (List.init n (fun _ -> float_range 0.0 100.0)) in
      let* clock = float_bound_inclusive 50.0 in
      let* fired = int_bound 1000 in
      let pending =
        List.mapi (fun i t -> (fired + i, clock +. t)) times
      in
      return
        {
          Sim.Scheduler.s_clock = clock;
          s_next_id = fired + n;
          s_fired = fired;
          s_pending = pending;
        })

let prop_scheduler_codec_round_trip =
  QCheck.Test.make ~name:"scheduler state codec round-trips" ~count:300
    gen_scheduler_state (fun st ->
      let buf = Buffer.create 256 in
      Ckpt.State.w_scheduler buf st;
      let r = Ckpt.Codec.reader (Buffer.contents buf) in
      let back = Ckpt.State.r_scheduler r in
      Ckpt.Codec.at_end r && back = st)

let prop_scheduler_restore_preserves_order =
  (* restore (capture s) into a fresh scheduler + rearm reproduces the
     exact firing order and capture again equals the original state. *)
  QCheck.Test.make ~name:"scheduler capture/restore/rearm replays pop order"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (QCheck.float_range 0.0 10.0))
    (fun delays ->
      let record sched log =
        List.iteri
          (fun i d ->
            ignore
              (Sim.Scheduler.schedule_at sched d (fun () ->
                   log := i :: !log)))
          delays
      in
      let s1 = Sim.Scheduler.create () in
      let log1 = ref [] in
      record s1 log1;
      let st = Sim.Scheduler.capture s1 in
      let s2 = Sim.Scheduler.create () in
      let log2 = ref [] in
      (* Schedule the same events (fresh ids 0..n-1), then restore and
         re-arm each id with its closure. *)
      record s2 log2;
      Sim.Scheduler.restore s2 st;
      List.iteri
        (fun i d ->
          ignore d;
          Sim.Scheduler.rearm s2 ~id:i (fun () -> log2 := i :: !log2))
        delays;
      let ok_rearmed = Sim.Scheduler.unrestored s2 = [] in
      let st2 = Sim.Scheduler.capture s2 in
      Sim.Scheduler.run_until s1 11.0;
      Sim.Scheduler.run_until s2 11.0;
      ok_rearmed && st = st2 && !log1 = !log2)

(* --- heap primitives (used by the scheduler restore path) ------------ *)

let test_heap_capture_restore () =
  let h1 : int Sim.Heap.t = Sim.Heap.create () in
  List.iter
    (fun (p, v) -> Sim.Heap.add h1 ~prio:p v)
    [ (3.0, 30); (1.0, 10); (2.0, 20); (1.0, 11) ];
  let entries = Sim.Heap.capture h1 in
  let next = Sim.Heap.next_seq h1 in
  let h2 : int Sim.Heap.t = Sim.Heap.create () in
  Sim.Heap.restore h2 ~next_seq:next entries;
  Alcotest.(check int) "next_seq carried" next (Sim.Heap.next_seq h2);
  let drain h =
    let out = ref [] in
    let rec go () =
      match Sim.Heap.pop h with
      | None -> List.rev !out
      | Some (_, v) ->
          out := v :: !out;
          go ()
    in
    go ()
  in
  Alcotest.(check (list int)) "same drain order" (drain h1) (drain h2)

(* --- injector capture/restore --------------------------------------- *)

let injector_fixture () =
  let net = Net.Network.create ~seed:5 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore
    (Net.Network.duplex net a b
       (Experiments.Scenario.fast_link_config
          ~gateway:Experiments.Scenario.Droptail ~delay:0.01 ()));
  Net.Network.install_routes net;
  let timeline =
    Faults.Timeline.scripted
      [
        (1.0, Faults.Timeline.Link_down (a, b));
        (2.0, Faults.Timeline.Link_up (a, b));
        (3.0, Faults.Timeline.Link_down (a, b));
        (4.0, Faults.Timeline.Link_up (a, b));
      ]
  in
  (net, Faults.Injector.install ~net timeline)

let test_injector_capture_restore () =
  (* Uninterrupted reference. *)
  let net_ref, inj_ref = injector_fixture () in
  Net.Network.run_until net_ref 5.0;
  (* Interrupted at t=2.5: capture, rebuild, restore, finish. *)
  let net1, inj1 = injector_fixture () in
  Net.Network.run_until net1 2.5;
  let sched_st = Sim.Scheduler.capture (Net.Network.scheduler net1) in
  let net_st = Net.Network.capture net1 in
  let inj_st = Faults.Injector.capture inj1 in
  let net2, inj2 = injector_fixture () in
  Sim.Scheduler.restore (Net.Network.scheduler net2) sched_st;
  Net.Network.restore net2 net_st;
  Faults.Injector.restore inj2 inj_st;
  Alcotest.(check (list int)) "all events claimed" []
    (Sim.Scheduler.unrestored (Net.Network.scheduler net2));
  Alcotest.(check int) "log restored" (Faults.Injector.injected inj1)
    (Faults.Injector.injected inj2);
  Net.Network.run_until net2 5.0;
  Alcotest.(check int) "same injections" (Faults.Injector.injected inj_ref)
    (Faults.Injector.injected inj2);
  Alcotest.(check int) "same outages" (Faults.Injector.outages inj_ref)
    (Faults.Injector.outages inj2);
  Alcotest.(check bool) "same applied log" true
    (Faults.Injector.applied inj_ref = Faults.Injector.applied inj2);
  Alcotest.(check (float 1e-12)) "same downtime"
    (Faults.Injector.downtime inj_ref)
    (Faults.Injector.downtime inj2)

let test_injector_codec_round_trip () =
  let net, inj = injector_fixture () in
  Net.Network.run_until net 2.5;
  let st = Faults.Injector.capture inj in
  let buf = Buffer.create 256 in
  Ckpt.State.w_injector buf st;
  let r = Ckpt.Codec.reader (Buffer.contents buf) in
  let back = Ckpt.State.r_injector r in
  Alcotest.(check bool) "codec round-trip" true
    (Ckpt.Codec.at_end r && back = st)

(* --- journal --------------------------------------------------------- *)

let test_journal_save_load_diff () =
  let j1 = Ckpt.Journal.create () in
  let j2 = Ckpt.Journal.create () in
  let e1 = { Ckpt.Journal.time = 1.5; source = "rla.flow0"; event = "window_cut"; value = 4.0 } in
  let e2 = { Ckpt.Journal.time = 2.25; source = "link3"; event = "drop"; value = 1.0 } in
  let e3 = { Ckpt.Journal.time = 3.0; source = "tcp.flow4"; event = "window_cut"; value = 2.0 } in
  List.iter (Ckpt.Journal.record j1) [ e1; e2; e3 ];
  List.iter (Ckpt.Journal.record j2) [ e1; e2 ];
  (match Ckpt.Journal.diff j1 j1 with
  | None -> ()
  | Some _ -> Alcotest.fail "identical journals diff");
  (match Ckpt.Journal.diff j1 j2 with
  | Some { Ckpt.Journal.index = 2; a = Some a; b = None } ->
      Alcotest.(check string) "divergent event" "window_cut" a.Ckpt.Journal.event
  | _ -> Alcotest.fail "expected divergence at index 2");
  let path = tmp_file ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ckpt.Journal.save j1 ~path;
      match Ckpt.Journal.load ~path with
      | Error msg -> Alcotest.fail msg
      | Ok j1' -> (
          match Ckpt.Journal.diff j1 j1' with
          | None -> ()
          | Some d ->
              Alcotest.failf "journal changed across save/load at %d"
                d.Ckpt.Journal.index))

let test_journal_entries_bit_exact () =
  let j = Ckpt.Journal.create () in
  let e = { Ckpt.Journal.time = 1.0; source = "t"; event = "e"; value = 0.5 } in
  Ckpt.Journal.record j e;
  Ckpt.Journal.record j { e with Ckpt.Journal.value = -0.0 };
  match Ckpt.Journal.entries j with
  | [ a; b ] ->
      Alcotest.(check bool) "recording order preserved" true
        (Ckpt.Journal.entry_equal a e);
      Alcotest.(check bool) "-0. and 0. are distinct payloads" false
        (Ckpt.Journal.entry_equal b { e with Ckpt.Journal.value = 0.0 })
  | _ -> Alcotest.fail "expected two entries"

(* --- manager --------------------------------------------------------- *)

let test_manager_boundaries () =
  (* An empty network still advances its clock under [run_until], so
     the boundary arithmetic is testable without a simulation. *)
  let saves manager until =
    let net = Net.Network.create ~seed:1 () in
    let log = ref [] in
    let m = manager (fun ~time -> log := time :: !log) in
    Ckpt.Manager.run m ~net ~until;
    List.rev !log
  in
  Alcotest.(check (list (float 0.0)))
    "boundaries, final horizon included" [ 2.0; 4.0; 6.0 ]
    (saves (fun save -> Ckpt.Manager.create ~every:2.0 ~save) 6.0);
  Alcotest.(check (list (float 0.0)))
    "resume_from skips saved boundaries" [ 6.0; 8.0 ]
    (saves
       (fun save ->
         let m = Ckpt.Manager.create ~every:2.0 ~save in
         Ckpt.Manager.resume_from m 4.0;
         m)
       8.0)

(* --- end-to-end save/load/resume (fast variant) ---------------------- *)

let small_config =
  {
    (Experiments.Sharing.default_config ~gateway:Experiments.Scenario.Droptail
       ~case:Experiments.Tree.L4_all)
    with
    Experiments.Sharing.duration = 30.0;
    warmup = 10.0;
    seed = 11;
  }

let test_save_load_resume_equivalent () =
  let dir = Filename.temp_file "rla_ckpt_dir" "" in
  Sys.remove dir;
  let reference = Experiments.Sharing.run small_config in
  let checkpointed =
    Ckpt.Sharing_ckpt.run_with_checkpoints ~every:8.0 ~dir ~prefix:"t"
      small_config
  in
  (* Checkpointing is passive: same result as the plain run. *)
  Alcotest.(check (float 0.0)) "ckpt run: same send rate"
    reference.Experiments.Sharing.rla.Rla.Sender.send_rate
    checkpointed.Experiments.Sharing.rla.Rla.Sender.send_rate;
  let ckpt_t16 = Ckpt.Sharing_ckpt.checkpoint_file ~dir ~prefix:"t" ~time:16.0 in
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ckpt_t16);
  (match Ckpt.Sharing_ckpt.load ~path:ckpt_t16 with
  | Error e -> Alcotest.fail (Ckpt.Sharing_ckpt.error_to_string e)
  | Ok loaded ->
      Alcotest.(check (float 0.0)) "poised at capture time" 16.0
        loaded.Ckpt.Sharing_ckpt.time;
      let resumed = Ckpt.Sharing_ckpt.resume_run loaded in
      Alcotest.(check (float 0.0)) "resumed: same send rate"
        reference.Experiments.Sharing.rla.Rla.Sender.send_rate
        resumed.Experiments.Sharing.rla.Rla.Sender.send_rate;
      Alcotest.(check int) "resumed: same signals"
        reference.Experiments.Sharing.rla.Rla.Sender.congestion_signals
        resumed.Experiments.Sharing.rla.Rla.Sender.congestion_signals;
      Alcotest.(check (float 0.0)) "resumed: same worst-TCP send rate"
        reference.Experiments.Sharing.wtcp.Tcp.Sender.send_rate
        resumed.Experiments.Sharing.wtcp.Tcp.Sender.send_rate);
  (* Meta inspection without a rebuild. *)
  (match Ckpt.Codec.load_file ~path:ckpt_t16 with
  | Error e -> Alcotest.fail (Ckpt.Codec.error_to_string e)
  | Ok sections -> (
      match Ckpt.Sharing_ckpt.read_meta sections with
      | Error e -> Alcotest.fail (Ckpt.Codec.error_to_string e)
      | Ok (meta, config) ->
          Alcotest.(check (float 0.0)) "meta time" 16.0 meta.Ckpt.Sharing_ckpt.time;
          Alcotest.(check bool) "meta tcps positive" true
            (meta.Ckpt.Sharing_ckpt.n_tcps > 0);
          Alcotest.(check int) "config seed" 11 config.Experiments.Sharing.seed));
  (* Clean up checkpoint files. *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* --- hardened TCP endpoint: restore at T/2 is byte-identical --------- *)

(* Every PR 10 sender/receiver feature at once — handshake with window
   scaling, a finite receive window (persist timer + zero-window
   probes), Karn's algorithm, strict RFC 5961 validation — plus one
   challenged RST and one ghosted data injection before the capture
   point.  A run interrupted at T/2 and restored into a fresh build
   must end at T with exactly the reference run's state. *)
let hardened_fixture () =
  let net = Net.Network.create ~seed:13 () in
  let a = Net.Node.id (Net.Network.add_node net) in
  let b = Net.Node.id (Net.Network.add_node net) in
  ignore
    (Net.Network.duplex net a b
       {
         Net.Link.bandwidth_bps = 10_000.0 *. 8000.0;
         prop_delay = 0.01;
         queue = Net.Queue_disc.Droptail;
         capacity = 200;
         phase_jitter = false;
       });
  Net.Network.install_routes net;
  let params =
    {
      Tcp.Sender.default_params with
      Tcp.Sender.handshake = true;
      wscale = 3;
      window = Some { Tcp.Receiver.capacity = 8; app_rate = 20.0 };
      karn = true;
    }
  in
  let tcp = Tcp.Sender.create ~net ~src:a ~dst:b ~params () in
  (net, a, b, tcp)

(* Drive the fixture to [until], injecting one in-window RST and one
   far-out-of-window data segment at t=2 (both before any capture
   point this test uses). *)
let hardened_drive (net, a, b, tcp) ~until =
  Net.Network.run_until net (Stdlib.min 2.0 until);
  if until >= 2.0 then begin
    let flow = Tcp.Sender.flow tcp in
    let rcv = Tcp.Sender.receiver tcp in
    let send payload size =
      Net.Network.send net
        (Net.Network.make_packet net ~flow ~src:a ~dst:(Net.Packet.Unicast b)
           ~size ~payload)
    in
    (* In-window for the 8-packet validation window, ahead of the ~20
       pkt/s drain-throttled in-order point during the 10 ms flight. *)
    send
      (Tcp.Wire.Tcp_rst { seq = Tcp.Receiver.expected rcv + 4 })
      Tcp.Wire.ack_size;
    send (Tcp.Wire.Tcp_data { seq = 50_000_000; sent_at = 2.0 }) 1000;
    Net.Network.run_until net until
  end

let test_hardened_endpoint_restore_at_half () =
  let t_full = 20.0 and t_half = 10.0 in
  (* Uninterrupted reference. *)
  let ((_, _, _, tcp_ref) as ref_fx) = hardened_fixture () in
  hardened_drive ref_fx ~until:t_full;
  (* Interrupted at T/2: capture scheduler, network and endpoint. *)
  let ((net1, _, _, tcp1) as fx1) = hardened_fixture () in
  hardened_drive fx1 ~until:t_half;
  let sched_st = Sim.Scheduler.capture (Net.Network.scheduler net1) in
  let net_st = Net.Network.capture net1 in
  let tcp_st = Tcp.Sender.capture tcp1 in
  (* Fresh build (same construction order), restore, finish the run. *)
  let net2, _, _, tcp2 = hardened_fixture () in
  Sim.Scheduler.restore (Net.Network.scheduler net2) sched_st;
  Net.Network.restore net2 net_st;
  Tcp.Sender.restore tcp2 tcp_st;
  Alcotest.(check (list int)) "all pending events claimed" []
    (Sim.Scheduler.unrestored (Net.Network.scheduler net2));
  Net.Network.run_until net2 t_full;
  (* The features actually engaged before the cut... *)
  let rcv_ref = Tcp.Sender.receiver tcp_ref in
  Alcotest.(check bool) "handshake completed" true
    (Tcp.Sender.established tcp_ref);
  Alcotest.(check int) "wscale negotiated" 3
    (Tcp.Sender.negotiated_wscale tcp_ref);
  Alcotest.(check bool) "persist probes sent" true
    (Tcp.Sender.zero_window_probes tcp_ref > 0);
  Alcotest.(check int) "RST challenged" 1 (Tcp.Receiver.rst_challenged rcv_ref);
  Alcotest.(check int) "injection ghosted" 1 (Tcp.Receiver.ghost_data rcv_ref);
  (* ... and the restored run ends in the reference's exact state,
     receiver counters, estimator floats and pending event ids
     included. *)
  Alcotest.(check bool) "byte-identical final state" true
    (Tcp.Sender.capture tcp_ref = Tcp.Sender.capture tcp2)

let test_restore_rejects_wrong_topology () =
  (* A checkpoint from one case must not restore into a session whose
     rebuild disagrees; here we corrupt the config section so the CRC
     catches it first, then check a truncated file as well. *)
  let path = tmp_file ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let session = Experiments.Sharing.setup small_config in
      Net.Network.run_until session.Experiments.Sharing.net 5.0;
      Ckpt.Sharing_ckpt.save ~path ~time:5.0 ~config:small_config ~session ();
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full - 11)));
      match Ckpt.Sharing_ckpt.load ~path with
      | Error (Ckpt.Sharing_ckpt.Codec_error Ckpt.Codec.Truncated) -> ()
      | Error e ->
          Alcotest.failf "unexpected error %s"
            (Ckpt.Sharing_ckpt.error_to_string e)
      | Ok _ -> Alcotest.fail "truncated checkpoint restored")

let () =
  Alcotest.run "ckpt"
    [
      ( "codec",
        [
          Alcotest.test_case "primitives round-trip" `Quick
            test_primitive_round_trip;
          Alcotest.test_case "i64/pair round-trip" `Quick
            test_i64_and_pair_round_trip;
          Alcotest.test_case "parse_payload trailing bytes" `Quick
            test_parse_payload_trailing_bytes;
          Alcotest.test_case "container round-trip" `Quick
            test_container_round_trip;
          Alcotest.test_case "truncation -> typed error" `Quick
            test_truncation_never_raises;
          Alcotest.test_case "corruption detected per section" `Quick
            test_corruption_detected_per_section;
          Alcotest.test_case "file save/load errors" `Quick test_load_file_errors;
        ] );
      ( "state round-trips",
        [
          QCheck_alcotest.to_alcotest prop_scoreboard_codec_round_trip;
          QCheck_alcotest.to_alcotest prop_link_codec_round_trip;
          QCheck_alcotest.to_alcotest prop_scheduler_codec_round_trip;
          QCheck_alcotest.to_alcotest prop_scheduler_restore_preserves_order;
          Alcotest.test_case "heap capture/restore" `Quick
            test_heap_capture_restore;
        ] );
      ( "faults",
        [
          Alcotest.test_case "injector capture/restore" `Quick
            test_injector_capture_restore;
          Alcotest.test_case "injector codec round-trip" `Quick
            test_injector_codec_round_trip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "save/load/diff" `Quick test_journal_save_load_diff;
          Alcotest.test_case "entries bit-exact" `Quick
            test_journal_entries_bit_exact;
        ] );
      ( "manager",
        [
          Alcotest.test_case "interval boundaries" `Quick
            test_manager_boundaries;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "save/load/resume equivalent" `Slow
            test_save_load_resume_equivalent;
          Alcotest.test_case "rejects damaged checkpoints" `Quick
            test_restore_rejects_wrong_topology;
          Alcotest.test_case "hardened endpoint restore at T/2" `Quick
            test_hardened_endpoint_restore_at_half;
        ] );
    ]
