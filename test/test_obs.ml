(* Tests for the observability layer: bounded series decimation, the
   metrics registry (interning, enumeration order, event taps), the
   per-flow CSV exporter's alignment assumption, and the zero-cost
   invariant — a run with a registry installed is bit-identical to one
   without. *)

let check_float = Alcotest.(check (float 1e-9))
let check_exact = Alcotest.(check (float 0.0))

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let test_series_basic () =
  let s = Obs.Series.create "x" in
  Alcotest.(check string) "name" "x" (Obs.Series.name s);
  Alcotest.(check int) "empty" 0 (Obs.Series.length s);
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "no last" None (Obs.Series.last s);
  Obs.Series.add s ~time:1.0 10.0;
  Obs.Series.add s ~time:2.0 20.0;
  Obs.Series.add s ~time:3.0 30.0;
  Alcotest.(check int) "three stored" 3 (Obs.Series.length s);
  Alcotest.(check int) "three offered" 3 (Obs.Series.offered s);
  Alcotest.(check int) "stride 1" 1 (Obs.Series.stride s);
  Alcotest.(check (array (float 0.0)))
    "times" [| 1.0; 2.0; 3.0 |] (Obs.Series.times s);
  Alcotest.(check (array (float 0.0)))
    "values" [| 10.0; 20.0; 30.0 |] (Obs.Series.values s);
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "last" (Some (3.0, 30.0)) (Obs.Series.last s)

let test_series_limit_validated () =
  Alcotest.(check bool) "limit 1 rejected" true
    (try
       ignore (Obs.Series.create ~limit:1 "bad");
       false
     with Invalid_argument _ -> true)

let test_series_bounded () =
  let limit = 64 in
  let s = Obs.Series.create ~limit "bounded" in
  for i = 1 to 10_000 do
    Obs.Series.add s ~time:(float_of_int i) (float_of_int i)
  done;
  Alcotest.(check bool) "within limit" true (Obs.Series.length s <= limit);
  Alcotest.(check int) "all offers counted" 10_000 (Obs.Series.offered s);
  let stride = Obs.Series.stride s in
  Alcotest.(check bool) "stride is a power of two" true
    (stride land (stride - 1) = 0);
  (* Stored samples stay time-ordered and value-aligned. *)
  let ts = Obs.Series.times s and vs = Obs.Series.values s in
  for i = 1 to Array.length ts - 1 do
    if ts.(i) <= ts.(i - 1) then Alcotest.fail "times not increasing"
  done;
  Array.iteri (fun i t -> check_exact "value = time here" t vs.(i)) ts;
  (* The subsample still spans most of the run. *)
  Alcotest.(check bool) "covers the tail" true
    (ts.(Array.length ts - 1) > 9000.0)

let prop_series_decimation_pure =
  (* Decimation depends only on the sequence of add calls: two series
     with the same limit offered samples at the same call points store
     exactly the same sample times — the invariant the per-flow CSV
     join relies on. *)
  QCheck.Test.make ~name:"sibling series keep aligned sample times"
    ~count:100
    QCheck.(pair (int_range 2 20) (list (float_bound_exclusive 100.0)))
    (fun (limit, values) ->
      let a = Obs.Series.create ~limit "a" in
      let b = Obs.Series.create ~limit "b" in
      List.iteri
        (fun i v ->
          let time = float_of_int i in
          Obs.Series.add a ~time v;
          Obs.Series.add b ~time (v *. 2.0))
        values;
      Obs.Series.times a = Obs.Series.times b
      && Obs.Series.length a <= limit
      && Obs.Series.offered a = List.length values)

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_counters () =
  let reg = Obs.Registry.create () in
  let c1 = Obs.Registry.counter reg "drops" in
  let c2 = Obs.Registry.counter reg "drops" in
  Obs.Registry.incr c1;
  Obs.Registry.add c2 4;
  Alcotest.(check int) "interned: one cell" 5 (Obs.Registry.count c1);
  Alcotest.(check string) "name" "drops" (Obs.Registry.counter_name c1);
  ignore (Obs.Registry.counter reg "marks");
  Alcotest.(check (list (pair string int)))
    "creation-order enumeration"
    [ ("drops", 5); ("marks", 0) ]
    (Obs.Registry.counters reg)

let test_registry_gauges () =
  let reg = Obs.Registry.create () in
  let g = Obs.Registry.gauge reg "ssthresh" in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Obs.Registry.gauge_value g);
  Obs.Registry.set g 12.5;
  Obs.Registry.set (Obs.Registry.gauge reg "ssthresh") 13.0;
  check_float "interned: one cell" 13.0 (Obs.Registry.gauge_value g);
  Alcotest.(check (list (pair string (float 0.0))))
    "enumeration" [ ("ssthresh", 13.0) ]
    (Obs.Registry.gauges reg)

let test_registry_series () =
  let reg = Obs.Registry.create ~series_limit:8 () in
  let s = Obs.Registry.series reg "q" in
  Alcotest.(check int) "registry limit applies" 8 (Obs.Series.limit s);
  Obs.Registry.sample reg "q" ~time:1.0 3.0;
  Alcotest.(check int) "sample reaches interned series" 1
    (Obs.Series.length s);
  Alcotest.(check bool) "find_series hit" true
    (Obs.Registry.find_series reg "q" = Some s);
  Alcotest.(check bool) "find_series miss" true
    (Obs.Registry.find_series reg "nope" = None);
  ignore (Obs.Registry.series reg "r");
  Alcotest.(check (list string))
    "creation-order enumeration" [ "q"; "r" ]
    (List.map Obs.Series.name (Obs.Registry.all_series reg))

let test_registry_events () =
  let reg = Obs.Registry.create () in
  (* Emitting with no taps subscribed is a silent no-op. *)
  Obs.Registry.emit reg ~time:0.0 ~source:"x" ~event:"drop" ~value:1.0;
  let seen = ref [] in
  Obs.Registry.on_event reg (fun e -> seen := e :: !seen);
  Obs.Registry.emit reg ~time:2.5 ~source:"link.a" ~event:"mark" ~value:7.0;
  match !seen with
  | [ e ] ->
      check_float "time" 2.5 e.Obs.Registry.time;
      Alcotest.(check string) "source" "link.a" e.Obs.Registry.source;
      Alcotest.(check string) "event" "mark" e.Obs.Registry.event;
      check_float "value" 7.0 e.Obs.Registry.value
  | l -> Alcotest.failf "expected exactly one event, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Exporter alignment                                                 *)
(* ------------------------------------------------------------------ *)

let test_flow_series_csv_shape () =
  let reg = Obs.Registry.create () in
  let cwnd = Obs.Registry.series reg "tcp.flow1.cwnd" in
  let bytes = Obs.Registry.series reg "tcp.flow1.bytes_acked" in
  (* An unpaired cwnd series must be skipped, not crash the export. *)
  ignore (Obs.Registry.series reg "orphan.cwnd");
  for i = 1 to 3 do
    let time = float_of_int i in
    Obs.Series.add cwnd ~time (float_of_int (i * 2));
    Obs.Series.add bytes ~time (float_of_int (i * 100))
  done;
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Runner.Report.flow_series_csv ppf reg;
  Format.pp_print_flush ppf ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check (list string))
    "header plus one row per paired sample"
    [
      "time,flow,cwnd,bytes_acked";
      "1.000000,tcp.flow1,2.000000,100";
      "2.000000,tcp.flow1,4.000000,200";
      "3.000000,tcp.flow1,6.000000,300";
    ]
    lines

(* ------------------------------------------------------------------ *)
(* Zero-cost invariant (determinism regression)                       *)
(* ------------------------------------------------------------------ *)

let small_config =
  let base =
    Experiments.Sharing.default_config ~gateway:Experiments.Scenario.Droptail
      ~case:(Experiments.Tree.case_of_index 3)
  in
  { base with Experiments.Sharing.duration = 30.0; warmup = 10.0; seed = 42 }

let test_probes_do_not_perturb_run () =
  (* Same seed, probes off vs on: fairness numbers and event counts
     must be bit-identical (the instrumentation never schedules events
     or draws RNG). *)
  let net_plain, plain = Experiments.Sharing.run_with_net small_config in
  let registry = Obs.Registry.create () in
  let net_obs, obs =
    Experiments.Sharing.run_with_net ~registry small_config
  in
  let fired net = Sim.Scheduler.events_fired (Net.Network.scheduler net) in
  Alcotest.(check int) "event counts identical" (fired net_plain)
    (fired net_obs);
  check_exact "fairness ratio bit-identical"
    plain.Experiments.Sharing.ratio obs.Experiments.Sharing.ratio;
  check_exact "worst-TCP send rate bit-identical"
    plain.Experiments.Sharing.wtcp.Tcp.Sender.send_rate
    obs.Experiments.Sharing.wtcp.Tcp.Sender.send_rate;
  Alcotest.(check bool) "fairness verdict identical"
    plain.Experiments.Sharing.essentially_fair
    obs.Experiments.Sharing.essentially_fair;
  (* The registry actually observed the run. *)
  Alcotest.(check bool) "per-flow series recorded" true
    (List.length (Obs.Registry.all_series registry) > 28);
  Alcotest.(check int) "events_fired counter mirrors the scheduler"
    (fired net_obs)
    (List.assoc "sim.events_fired" (Obs.Registry.counters registry))

let test_repeat_run_identical_series () =
  (* Two instrumented runs with the same seed store identical series —
     the property behind byte-identical rla_trace CSVs. *)
  let run () =
    let registry = Obs.Registry.create () in
    ignore (Experiments.Sharing.run_with_net ~registry small_config);
    registry
  in
  let a = run () and b = run () in
  let series_of reg =
    List.map
      (fun s -> (Obs.Series.name s, Obs.Series.times s, Obs.Series.values s))
      (Obs.Registry.all_series reg)
  in
  Alcotest.(check bool) "same series, same samples" true
    (series_of a = series_of b);
  Alcotest.(check bool) "same counters" true
    (Obs.Registry.counters a = Obs.Registry.counters b)

let prop_faulted_report_deterministic =
  (* Fault injection preserves the determinism contract: for any
     (simulation seed, timeline seed) pair, a churn run replayed in the
     same process and again on a two-domain pool produces the same
     JSON report bytes — the property behind BENCH_churn.json being
     reproducible at any --jobs. *)
  QCheck.Test.make ~name:"faulted runs byte-identical across jobs" ~count:4
    QCheck.(pair (int_range 1 1000) (int_range 1 1000))
    (fun (seed, gen_seed) ->
      let config =
        {
          Experiments.Churn.sharing =
            { small_config with Experiments.Sharing.duration = 16.0;
              warmup = 4.0; seed };
          faults =
            Experiments.Churn.Generated
              {
                Experiments.Churn.gen_seed;
                outage_rate = 0.1;
                churn_rate = 0.15;
                flow_rate = 0.1;
              };
        }
      in
      let report result =
        Runner.Json.to_string (Experiments.Churn.to_json result)
      in
      let inline = report (Experiments.Churn.run config) in
      let pooled jobs =
        let jobs_list =
          List.init 2 (fun i ->
              Experiments.Churn.job ~label:(Printf.sprintf "churn/%d" i)
                config)
        in
        List.map
          (fun (o : _ Runner.Pool.outcome) -> report o.Runner.Pool.value)
          (Runner.Pool.run ~jobs jobs_list)
      in
      List.for_all (String.equal inline) (pooled 1)
      && List.for_all (String.equal inline) (pooled 2))

let () =
  Alcotest.run "obs"
    [
      ( "series",
        [
          Alcotest.test_case "basic" `Quick test_series_basic;
          Alcotest.test_case "limit validated" `Quick
            test_series_limit_validated;
          Alcotest.test_case "bounded memory" `Quick test_series_bounded;
          QCheck_alcotest.to_alcotest prop_series_decimation_pure;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "gauges" `Quick test_registry_gauges;
          Alcotest.test_case "series" `Quick test_registry_series;
          Alcotest.test_case "event taps" `Quick test_registry_events;
        ] );
      ( "export",
        [
          Alcotest.test_case "flow csv shape" `Quick
            test_flow_series_csv_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "probes are zero-cost" `Slow
            test_probes_do_not_perturb_run;
          Alcotest.test_case "repeat runs identical" `Slow
            test_repeat_run_identical_series;
          QCheck_alcotest.to_alcotest prop_faulted_report_deterministic;
        ] );
    ]
