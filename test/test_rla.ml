(* Tests for the RLA core library: parameters, fairness definitions,
   per-receiver state, and the sender on small multicast networks. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Params                                                             *)
(* ------------------------------------------------------------------ *)

let test_params_defaults () =
  let p = Rla.Params.default in
  check_float "eta" 20.0 p.Rla.Params.eta;
  check_float "grouping" 2.0 p.Rla.Params.group_rtt_factor;
  check_float "forced cut" 2.0 p.Rla.Params.forced_cut_factor;
  Alcotest.(check int) "rexmit thresh" 0 p.Rla.Params.rexmit_thresh;
  Alcotest.(check bool) "restricted" true
    (p.Rla.Params.rtt_scaling = Rla.Params.Equal_rtt)

let test_params_generalized () =
  let p = Rla.Params.generalized Rla.Params.default in
  (match p.Rla.Params.rtt_scaling with
  | Rla.Params.Rtt_power k -> check_float "default k" 2.0 k
  | Rla.Params.Equal_rtt -> Alcotest.fail "expected generalized");
  let p1 = Rla.Params.generalized ~k:1.0 Rla.Params.default in
  match p1.Rla.Params.rtt_scaling with
  | Rla.Params.Rtt_power k -> check_float "custom k" 1.0 k
  | Rla.Params.Equal_rtt -> Alcotest.fail "expected generalized"

(* ------------------------------------------------------------------ *)
(* Fairness                                                           *)
(* ------------------------------------------------------------------ *)

let test_fairness_share () =
  check_float "mu/(m+1)" 50.0
    (Rla.Fairness.share { Rla.Fairness.mu = 200.0; tcp_flows = 3 });
  check_float "no tcp" 200.0
    (Rla.Fairness.share { Rla.Fairness.mu = 200.0; tcp_flows = 0 })

let test_fairness_soft_bottleneck () =
  let branches =
    [
      { Rla.Fairness.mu = 1000.0; tcp_flows = 1 };
      (* share 500 *)
      { Rla.Fairness.mu = 300.0; tcp_flows = 2 };
      (* share 100 <- soft bottleneck *)
      { Rla.Fairness.mu = 150.0; tcp_flows = 0 };
      (* share 150 *)
    ]
  in
  Alcotest.(check int) "index" 1 (Rla.Fairness.soft_bottleneck branches);
  check_float "fair share" 100.0 (Rla.Fairness.fair_share branches)

let test_fairness_soft_vs_hard () =
  (* The hard bottleneck (min mu) is branch 1, but branch 0 with many
     TCP flows is the soft bottleneck. *)
  let branches =
    [
      { Rla.Fairness.mu = 500.0; tcp_flows = 9 };
      (* share 50 *)
      { Rla.Fairness.mu = 100.0; tcp_flows = 0 };
      (* share 100 *)
    ]
  in
  Alcotest.(check int) "soft, not hard" 0 (Rla.Fairness.soft_bottleneck branches)

let test_fairness_empty () =
  Alcotest.(check bool) "empty raises" true
    (try ignore (Rla.Fairness.soft_bottleneck []); false
     with Invalid_argument _ -> true)

let test_fairness_bounds () =
  let a, b = Rla.Fairness.essential_bounds Rla.Fairness.Red ~n:27 in
  check_float "RED a" (1.0 /. 3.0) a;
  Alcotest.(check (float 1e-9)) "RED b" (sqrt 81.0) b;
  let a, b = Rla.Fairness.essential_bounds Rla.Fairness.Droptail ~n:27 in
  check_float "droptail a" 0.25 a;
  check_float "droptail b" 54.0 b

let test_fairness_check () =
  Alcotest.(check bool) "fair case" true
    (Rla.Fairness.is_essentially_fair Rla.Fairness.Droptail ~n:4
       ~rla_throughput:100.0 ~tcp_throughput:100.0);
  Alcotest.(check bool) "starved multicast" false
    (Rla.Fairness.is_essentially_fair Rla.Fairness.Droptail ~n:4
       ~rla_throughput:10.0 ~tcp_throughput:100.0);
  Alcotest.(check bool) "dominating multicast" false
    (Rla.Fairness.is_essentially_fair Rla.Fairness.Droptail ~n:4
       ~rla_throughput:900.0 ~tcp_throughput:100.0)

let test_fairness_ratio_zero_tcp () =
  Alcotest.(check bool) "infinite" true
    (Rla.Fairness.measured_ratio ~rla_throughput:1.0 ~tcp_throughput:0.0
    = infinity);
  Alcotest.(check bool) "zero over zero still infinite" true
    (Rla.Fairness.measured_ratio ~rla_throughput:0.0 ~tcp_throughput:0.0
    = infinity)

let test_fairness_soft_bottleneck_tie () =
  (* Equal shares everywhere: the first minimal branch wins, so the
     designated bottleneck is stable under branch reordering of the
     non-minimal tail. *)
  let branches =
    [
      { Rla.Fairness.mu = 200.0; tcp_flows = 1 };
      (* share 100 *)
      { Rla.Fairness.mu = 100.0; tcp_flows = 0 };
      (* share 100 *)
      { Rla.Fairness.mu = 300.0; tcp_flows = 2 };
      (* share 100 *)
    ]
  in
  Alcotest.(check int) "first minimal wins" 0
    (Rla.Fairness.soft_bottleneck branches);
  check_float "tied fair share" 100.0 (Rla.Fairness.fair_share branches);
  (* A strictly smaller share later in the list still wins outright. *)
  let branches' = branches @ [ { Rla.Fairness.mu = 99.0; tcp_flows = 0 } ] in
  Alcotest.(check int) "strict minimum beats earlier ties" 3
    (Rla.Fairness.soft_bottleneck branches')

let test_fairness_bounds_single_receiver () =
  let a, b = Rla.Fairness.essential_bounds Rla.Fairness.Red ~n:1 in
  check_float "RED a, n=1" (1.0 /. 3.0) a;
  check_float "RED b, n=1" (sqrt 3.0) b;
  let a, b = Rla.Fairness.essential_bounds Rla.Fairness.Droptail ~n:1 in
  check_float "droptail a, n=1" 0.25 a;
  check_float "droptail b, n=1" 2.0 b

(* ------------------------------------------------------------------ *)
(* Rcv_state                                                          *)
(* ------------------------------------------------------------------ *)

let make_rcv ?(params = Rla.Params.default) () =
  Rla.Rcv_state.create ~addr:1 ~params ~session_start:0.0 ()

let test_rcv_state_initial () =
  let r = make_rcv () in
  Alcotest.(check int) "no signals" 0 (Rla.Rcv_state.signals r);
  check_float "no srtt" 0.0 (Rla.Rcv_state.srtt r);
  Alcotest.(check bool) "interval infinite" true
    (Rla.Rcv_state.mean_signal_interval r ~now:10.0 = infinity);
  Alcotest.(check bool) "not troubled before signals" false
    (Rla.Rcv_state.is_troubled r ~now:10.0 ~min_interval:1.0 ~eta:20.0)

let test_rcv_state_srtt () =
  let r = make_rcv () in
  Rla.Rcv_state.observe_rtt r 0.2;
  check_float "first sample" 0.2 (Rla.Rcv_state.srtt r);
  Rla.Rcv_state.observe_rtt r 0.4;
  check_float "ewma 1/8" 0.225 (Rla.Rcv_state.srtt r)

let test_rcv_state_signal_grouping () =
  let r = make_rcv () in
  Rla.Rcv_state.observe_rtt r 0.5;
  (* First losses open a congestion period. *)
  Alcotest.(check bool) "first = signal" true
    (Rla.Rcv_state.register_losses r ~now:10.0);
  (* Within 2*srtt = 1 s: grouped, no new signal. *)
  Alcotest.(check bool) "grouped" false
    (Rla.Rcv_state.register_losses r ~now:10.5);
  (* Past the window: a new signal. *)
  Alcotest.(check bool) "new period" true
    (Rla.Rcv_state.register_losses r ~now:11.5);
  Alcotest.(check int) "two signals" 2 (Rla.Rcv_state.signals r)

let test_rcv_state_grouping_disabled () =
  let params = { Rla.Params.default with Rla.Params.group_rtt_factor = 0.0 } in
  let r = Rla.Rcv_state.create ~addr:1 ~params ~session_start:0.0 () in
  Rla.Rcv_state.observe_rtt r 0.5;
  Alcotest.(check bool) "signal 1" true (Rla.Rcv_state.register_losses r ~now:1.0);
  Alcotest.(check bool) "signal 2 immediately" true
    (Rla.Rcv_state.register_losses r ~now:1.0001)

let test_rcv_state_interval_tracking () =
  let r = make_rcv () in
  Rla.Rcv_state.observe_rtt r 0.1;
  ignore (Rla.Rcv_state.register_losses r ~now:10.0);
  ignore (Rla.Rcv_state.register_losses r ~now:20.0);
  ignore (Rla.Rcv_state.register_losses r ~now:30.0);
  let mean = Rla.Rcv_state.mean_signal_interval r ~now:30.0 in
  Alcotest.(check bool)
    (Printf.sprintf "interval %.1f reflects 10 s cadence" mean)
    true
    (mean >= 9.0 && mean <= 11.0)

let test_rcv_state_aging () =
  let r = make_rcv () in
  Rla.Rcv_state.observe_rtt r 0.1;
  ignore (Rla.Rcv_state.register_losses r ~now:1.0);
  ignore (Rla.Rcv_state.register_losses r ~now:2.0);
  Alcotest.(check bool) "troubled while fresh" true
    (Rla.Rcv_state.is_troubled r ~now:2.0 ~min_interval:1.0 ~eta:20.0);
  (* Long silence ages the interval estimate out of the troubled set. *)
  Alcotest.(check bool) "not troubled after silence" false
    (Rla.Rcv_state.is_troubled r ~now:200.0 ~min_interval:1.0 ~eta:20.0)

let test_rcv_state_acks () =
  let r = make_rcv () in
  Rla.Rcv_state.count_ack r;
  Rla.Rcv_state.count_ack r;
  Alcotest.(check int) "acks" 2 (Rla.Rcv_state.acks r)

(* ------------------------------------------------------------------ *)
(* Sender on small networks                                           *)
(* ------------------------------------------------------------------ *)

let star ?(seed = 1) ?(branch_mu = 500.0) ?(capacity = 20) ?(n = 3) () =
  let net = Net.Network.create ~seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init n (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  let fast =
    {
      Net.Link.bandwidth_bps = 100e6;
      prop_delay = 0.005;
      queue = Net.Queue_disc.Droptail;
      capacity = 100;
      phase_jitter = false;
    }
  in
  let branch =
    {
      Net.Link.bandwidth_bps = branch_mu *. 8000.0;
      prop_delay = 0.02;
      queue = Net.Queue_disc.Droptail;
      capacity;
      phase_jitter = true;
    }
  in
  ignore (Net.Network.duplex net s hub fast);
  List.iter (fun leaf -> ignore (Net.Network.duplex net hub leaf branch)) leaves;
  Net.Network.install_routes net;
  (net, s, leaves)

let test_sender_reaches_all_receivers () =
  let net, s, leaves = star () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 20.0;
  Alcotest.(check bool) "frontier advanced" true (Rla.Sender.max_reach_all rla > 500);
  List.iter
    (fun ep ->
      Alcotest.(check bool) "receiver kept up" true
        (Rla.Receiver.expected ep >= Rla.Sender.max_reach_all rla))
    (Rla.Sender.receiver_endpoints rla)

let test_sender_no_loss_grows_window () =
  (* Huge branches: no congestion, no cuts, monotone frontier. *)
  let net, s, leaves = star ~branch_mu:10_000.0 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 5.0;
  Alcotest.(check int) "no cuts" 0 (Rla.Sender.window_cuts rla);
  Alcotest.(check int) "no signals" 0 (Rla.Sender.congestion_signals rla);
  Alcotest.(check bool) "window opened" true (Rla.Sender.cwnd rla > 10.0)

let test_sender_multicast_efficiency () =
  (* The shared first hop must carry each data packet once, not once
     per receiver. *)
  let net, s, leaves = star ~branch_mu:10_000.0 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 5.0;
  let hub_link = Option.get (Net.Network.link_between net s 1) in
  let delivered_on_shared = (Net.Link.stats hub_link).Net.Link.delivered in
  let frontier = Rla.Sender.max_reach_all rla in
  Alcotest.(check bool)
    (Printf.sprintf "shared-hop packets %d ~ frontier %d" delivered_on_shared frontier)
    true
    (delivered_on_shared < frontier + frontier / 2)

let test_sender_congestion_cuts_window () =
  let net, s, leaves = star ~branch_mu:100.0 ~capacity:10 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 60.0;
  Alcotest.(check bool) "signals detected" true
    (Rla.Sender.congestion_signals rla > 0);
  Alcotest.(check bool) "cuts happened" true (Rla.Sender.window_cuts rla > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (Rla.Sender.rexmits_multicast rla + Rla.Sender.rexmits_unicast rla > 0)

let test_sender_randomized_cut_rate () =
  (* Cuts (excluding timeouts) should be roughly signals/n — the random
     listening core property. *)
  let n = 3 in
  let net, s, leaves = star ~branch_mu:150.0 ~n () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 200.0;
  let signals = Rla.Sender.congestion_signals rla in
  let cuts = Rla.Sender.window_cuts rla - Rla.Sender.timeouts rla in
  Alcotest.(check bool) "enough signals to judge" true (signals > 60);
  let expected = float_of_int signals /. float_of_int n in
  let actual = float_of_int cuts in
  Alcotest.(check bool)
    (Printf.sprintf "cuts %d vs expected %.0f (signals %d)" cuts expected signals)
    true
    (actual > 0.5 *. expected && actual < 2.0 *. expected)

let test_sender_min_last_ack_coherent () =
  let net, s, leaves = star () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 10.0;
  Alcotest.(check bool) "mla >= mra" true
    (Rla.Sender.min_last_ack rla >= Rla.Sender.max_reach_all rla)

let test_sender_signals_per_receiver () =
  let net, s, leaves = star ~branch_mu:100.0 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 60.0;
  let per = Rla.Sender.signals_per_receiver rla in
  Alcotest.(check int) "one entry per receiver" (List.length leaves)
    (List.length per);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 per in
  Alcotest.(check int) "totals add up" (Rla.Sender.congestion_signals rla) total

let test_sender_snapshot_measurement_window () =
  let net, s, leaves = star ~branch_mu:100.0 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 30.0;
  Rla.Sender.reset_measurement rla;
  let snap0 = Rla.Sender.snapshot rla in
  Alcotest.(check int) "delivered restarts" 0 snap0.Rla.Sender.delivered;
  Alcotest.(check int) "signals restart" 0 snap0.Rla.Sender.congestion_signals;
  Net.Network.run_until net 60.0;
  let snap = Rla.Sender.snapshot rla in
  Alcotest.(check bool) "window counts only the tail" true
    (snap.Rla.Sender.delivered > 0
    && snap.Rla.Sender.delivered <= Rla.Sender.max_reach_all rla)

let test_sender_pthresh_restricted () =
  let net, s, leaves = star ~branch_mu:100.0 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 60.0;
  (* All three branches congest equally: each should be troubled and
     pthresh ~ 1/3. *)
  Alcotest.(check int) "all troubled" 3 (Rla.Sender.num_trouble_rcvr rla);
  let p = Rla.Sender.pthresh_for rla (List.hd leaves) in
  Alcotest.(check (float 1e-9)) "1/num_trouble" (1.0 /. 3.0) p

let test_sender_pthresh_unknown_receiver () =
  let net, s, leaves = star () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Alcotest.(check bool) "unknown receiver raises" true
    (try ignore (Rla.Sender.pthresh_for rla 999); false
     with Invalid_argument _ -> true)

let test_sender_rexmit_multicast_vs_unicast () =
  (* With rexmit_thresh = 0 every retransmission goes by multicast;
     with a huge threshold everything goes by unicast. *)
  let run thresh =
    let net, s, leaves = star ~branch_mu:100.0 ~capacity:8 () in
    let params = { Rla.Params.default with Rla.Params.rexmit_thresh = thresh } in
    let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves ~params () in
    Net.Network.run_until net 60.0;
    (Rla.Sender.rexmits_multicast rla, Rla.Sender.rexmits_unicast rla)
  in
  let mc, uc = run 0 in
  Alcotest.(check bool) "thresh 0: multicast used" true (mc > 0);
  Alcotest.(check int) "thresh 0: no unicast" 0 uc;
  let mc, uc = run 1000 in
  Alcotest.(check bool) "huge thresh: unicast used" true (uc > 0);
  Alcotest.(check int) "huge thresh: no multicast" 0 mc

let test_sender_forced_cut_only_mechanism () =
  (* Disabling randomized cuts entirely is impossible, but we can check
     forced cuts stay rare under normal parameters (the paper observed
     zero). *)
  let net, s, leaves = star ~branch_mu:100.0 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 120.0;
  Alcotest.(check bool)
    (Printf.sprintf "forced cuts (%d) rare vs cuts (%d)"
       (Rla.Sender.forced_cuts rla) (Rla.Sender.window_cuts rla))
    true
    (Rla.Sender.forced_cuts rla * 4 <= Rla.Sender.window_cuts rla)

let test_sender_requires_receivers () =
  let net, s, _ = star () in
  Alcotest.(check bool) "no receivers rejected" true
    (try ignore (Rla.Sender.create ~net ~src:s ~receivers:[] ()); false
     with Invalid_argument _ -> true)

let test_receiver_endpoint_rexmits () =
  let net, s, leaves = star ~branch_mu:100.0 ~capacity:8 () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 60.0;
  let total_rexmit_received =
    List.fold_left
      (fun acc ep -> acc + Rla.Receiver.rexmits_received ep)
      0
      (Rla.Sender.receiver_endpoints rla)
  in
  Alcotest.(check bool) "receivers saw retransmissions" true
    (total_rexmit_received > 0)

(* A star with one crippled branch: the natural setting for the
   slow-receiver option. *)
let star_with_slow_branch ?(seed = 1) () =
  let net = Net.Network.create ~seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  let fast =
    {
      Net.Link.bandwidth_bps = 100e6;
      prop_delay = 0.005;
      queue = Net.Queue_disc.Droptail;
      capacity = 100;
      phase_jitter = false;
    }
  in
  ignore (Net.Network.duplex net s hub fast);
  List.iteri
    (fun i leaf ->
      let mu = if i = 0 then 20.0 else 500.0 in
      ignore
        (Net.Network.duplex net hub leaf
           {
             Net.Link.bandwidth_bps = mu *. 8000.0;
             prop_delay = 0.02;
             queue = Net.Queue_disc.Droptail;
             capacity = 20;
             phase_jitter = true;
           }))
    leaves;
  Net.Network.install_routes net;
  (net, s, leaves)

let test_drop_receiver_unblocks_session () =
  let net, s, leaves = star_with_slow_branch () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 60.0;
  let before = Rla.Sender.max_reach_all rla in
  (* The slow branch caps the session near 20 pkt/s. *)
  Alcotest.(check bool) "slow receiver caps the frontier" true
    (before < 60 * 40);
  Alcotest.(check bool) "drop succeeds" true
    (Rla.Sender.drop_receiver rla (List.hd leaves));
  Alcotest.(check int) "two active left" 2
    (List.length (Rla.Sender.active_receivers rla));
  Rla.Sender.reset_measurement rla;
  Net.Network.run_until net 120.0;
  let snap = Rla.Sender.snapshot rla in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.1f rose past the slow branch" snap.Rla.Sender.throughput)
    true
    (snap.Rla.Sender.throughput > 100.0)

let test_drop_receiver_guards () =
  let net, s, leaves = star_with_slow_branch () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 5.0;
  Alcotest.(check bool) "unknown address" false (Rla.Sender.drop_receiver rla 999);
  Alcotest.(check bool) "first drop" true
    (Rla.Sender.drop_receiver rla (List.nth leaves 0));
  Alcotest.(check bool) "re-drop is false" false
    (Rla.Sender.drop_receiver rla (List.nth leaves 0));
  Alcotest.(check bool) "second drop" true
    (Rla.Sender.drop_receiver rla (List.nth leaves 1));
  Alcotest.(check bool) "last receiver protected" true
    (try ignore (Rla.Sender.drop_receiver rla (List.nth leaves 2)); false
     with Invalid_argument _ -> true)

let test_drop_receiver_ignores_acks () =
  let net, s, leaves = star_with_slow_branch () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 20.0;
  ignore (Rla.Sender.drop_receiver rla (List.hd leaves));
  Net.Network.run_until net 40.0;
  (* min_last_ack now reflects only the active receivers, so it can
     exceed what the dropped receiver has acknowledged. *)
  Alcotest.(check bool) "frontier not gated by dropped receiver" true
    (Rla.Sender.min_last_ack rla >= Rla.Sender.max_reach_all rla)

let test_dropped_receiver_gets_no_rexmits () =
  (* Satellite regression: once dropped, a receiver must stop drawing
     retransmissions — its pending retransmit state must not keep
     feeding decisions.  With [rexmit_thresh] = 2 and 3 receivers, the
     lone slow requester always gets unicast retransmissions while
     active, and after the drop no target can exceed the threshold, so
     any retransmission reaching the dropped endpoint is a bug. *)
  let net, s, leaves = star_with_slow_branch () in
  let params = { Rla.Params.default with Rla.Params.rexmit_thresh = 2 } in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves ~params () in
  Net.Network.run_until net 30.0;
  let slow_endpoint =
    List.find
      (fun ep -> Rla.Receiver.node_id ep = List.hd leaves)
      (Rla.Sender.receiver_endpoints rla)
  in
  Alcotest.(check bool) "slow receiver saw unicast rexmits while active" true
    (Rla.Receiver.rexmits_received slow_endpoint > 0);
  ignore (Rla.Sender.drop_receiver rla (List.hd leaves));
  (* Let retransmissions already in flight land before baselining. *)
  Net.Network.run_until net 32.0;
  let baseline = Rla.Receiver.rexmits_received slow_endpoint in
  Net.Network.run_until net 90.0;
  Alcotest.(check int) "no retransmissions after the drop" baseline
    (Rla.Receiver.rexmits_received slow_endpoint);
  Alcotest.(check bool) "session kept retransmitting to the others" true
    (Rla.Sender.rexmits_unicast rla + Rla.Sender.rexmits_multicast rla > 0)

let test_add_receiver_guards () =
  let net, s, leaves = star_with_slow_branch () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  Net.Network.run_until net 5.0;
  Alcotest.(check bool) "active member rejected" false
    (Rla.Sender.add_receiver rla (List.hd leaves));
  Alcotest.(check bool) "unknown address raises" true
    (try ignore (Rla.Sender.add_receiver rla 999); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "source raises" true
    (try ignore (Rla.Sender.add_receiver rla s); false
     with Invalid_argument _ -> true)

let test_join_after_drop_same_address () =
  let net, s, leaves = star_with_slow_branch () in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
  let victim = List.hd leaves in
  Net.Network.run_until net 20.0;
  ignore (Rla.Sender.drop_receiver rla victim);
  Net.Network.run_until net 30.0;
  Alcotest.(check bool) "re-join succeeds" true
    (Rla.Sender.add_receiver rla victim);
  Alcotest.(check int) "three active again" 3
    (List.length (Rla.Sender.active_receivers rla));
  Alcotest.(check int) "slot reused, not duplicated" 3
    (Rla.Sender.n_receivers rla);
  let before = Rla.Sender.max_reach_all rla in
  Net.Network.run_until net 60.0;
  (* The re-joined receiver acknowledges from the join-time frontier,
     so the acked-by-all window keeps advancing. *)
  Alcotest.(check bool) "frontier advances with the rejoined member" true
    (Rla.Sender.max_reach_all rla > before);
  Alcotest.(check bool) "re-join while active rejected" false
    (Rla.Sender.add_receiver rla victim)

let test_pthresh_tracks_membership () =
  (* With [All_receivers] counting, pthresh is exactly 1/n_active and
     must follow every membership change. *)
  let net, s, leaves = star_with_slow_branch () in
  let params =
    { Rla.Params.default with Rla.Params.trouble_counting = Rla.Params.All_receivers }
  in
  let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves ~params () in
  let probe = List.nth leaves 2 in
  Net.Network.run_until net 5.0;
  Alcotest.(check (float 1e-9)) "1/3 initially" (1.0 /. 3.0)
    (Rla.Sender.pthresh_for rla probe);
  ignore (Rla.Sender.drop_receiver rla (List.hd leaves));
  Alcotest.(check (float 1e-9)) "1/2 after a leave" 0.5
    (Rla.Sender.pthresh_for rla probe);
  Alcotest.(check int) "num_trouble follows" 2 (Rla.Sender.num_trouble_rcvr rla);
  Net.Network.run_until net 10.0;
  ignore (Rla.Sender.add_receiver rla (List.hd leaves));
  Alcotest.(check (float 1e-9)) "1/3 after the rejoin" (1.0 /. 3.0)
    (Rla.Sender.pthresh_for rla probe);
  ignore (Rla.Sender.drop_receiver rla (List.nth leaves 1));
  ignore (Rla.Sender.drop_receiver rla (List.nth leaves 2));
  Alcotest.(check (float 1e-9)) "1/1 at a single receiver" 1.0
    (Rla.Sender.pthresh_for rla probe)

let test_sender_deterministic_replay () =
  let run () =
    let net, s, leaves = star ~seed:33 ~branch_mu:120.0 () in
    let rla = Rla.Sender.create ~net ~src:s ~receivers:leaves () in
    Net.Network.run_until net 50.0;
    ( Rla.Sender.max_reach_all rla,
      Rla.Sender.congestion_signals rla,
      Rla.Sender.window_cuts rla )
  in
  Alcotest.(check bool) "same seed, same run" true (run () = run ())

let () =
  Alcotest.run "rla"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "generalized" `Quick test_params_generalized;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "share" `Quick test_fairness_share;
          Alcotest.test_case "soft bottleneck" `Quick test_fairness_soft_bottleneck;
          Alcotest.test_case "soft vs hard" `Quick test_fairness_soft_vs_hard;
          Alcotest.test_case "empty" `Quick test_fairness_empty;
          Alcotest.test_case "theorem bounds" `Quick test_fairness_bounds;
          Alcotest.test_case "fairness check" `Quick test_fairness_check;
          Alcotest.test_case "zero tcp" `Quick test_fairness_ratio_zero_tcp;
          Alcotest.test_case "soft bottleneck tie" `Quick
            test_fairness_soft_bottleneck_tie;
          Alcotest.test_case "bounds n=1" `Quick
            test_fairness_bounds_single_receiver;
        ] );
      ( "rcv_state",
        [
          Alcotest.test_case "initial" `Quick test_rcv_state_initial;
          Alcotest.test_case "srtt" `Quick test_rcv_state_srtt;
          Alcotest.test_case "signal grouping" `Quick test_rcv_state_signal_grouping;
          Alcotest.test_case "grouping disabled" `Quick test_rcv_state_grouping_disabled;
          Alcotest.test_case "interval tracking" `Quick test_rcv_state_interval_tracking;
          Alcotest.test_case "aging" `Quick test_rcv_state_aging;
          Alcotest.test_case "acks" `Quick test_rcv_state_acks;
        ] );
      ( "sender",
        [
          Alcotest.test_case "reaches all receivers" `Quick
            test_sender_reaches_all_receivers;
          Alcotest.test_case "no loss grows window" `Quick
            test_sender_no_loss_grows_window;
          Alcotest.test_case "multicast efficiency" `Quick
            test_sender_multicast_efficiency;
          Alcotest.test_case "congestion cuts" `Quick test_sender_congestion_cuts_window;
          Alcotest.test_case "randomized cut rate" `Slow test_sender_randomized_cut_rate;
          Alcotest.test_case "min_last_ack coherent" `Quick
            test_sender_min_last_ack_coherent;
          Alcotest.test_case "signals per receiver" `Quick
            test_sender_signals_per_receiver;
          Alcotest.test_case "measurement window" `Quick
            test_sender_snapshot_measurement_window;
          Alcotest.test_case "pthresh restricted" `Quick test_sender_pthresh_restricted;
          Alcotest.test_case "pthresh unknown" `Quick test_sender_pthresh_unknown_receiver;
          Alcotest.test_case "rexmit multicast vs unicast" `Slow
            test_sender_rexmit_multicast_vs_unicast;
          Alcotest.test_case "forced cuts rare" `Slow
            test_sender_forced_cut_only_mechanism;
          Alcotest.test_case "requires receivers" `Quick test_sender_requires_receivers;
          Alcotest.test_case "endpoint rexmits" `Quick test_receiver_endpoint_rexmits;
          Alcotest.test_case "deterministic replay" `Quick
            test_sender_deterministic_replay;
        ] );
      ( "drop_receiver",
        [
          Alcotest.test_case "unblocks session" `Slow
            test_drop_receiver_unblocks_session;
          Alcotest.test_case "guards" `Quick test_drop_receiver_guards;
          Alcotest.test_case "ignores dropped acks" `Quick
            test_drop_receiver_ignores_acks;
          Alcotest.test_case "no rexmits to dropped" `Slow
            test_dropped_receiver_gets_no_rexmits;
        ] );
      ( "membership",
        [
          Alcotest.test_case "add guards" `Quick test_add_receiver_guards;
          Alcotest.test_case "join after drop" `Slow
            test_join_after_drop_same_address;
          Alcotest.test_case "pthresh tracks membership" `Quick
            test_pthresh_tracks_membership;
        ] );
    ]
