(* Determinism-linter tests: every rule firing on a fixture, every
   suppression honoured, the JSON report round-tripping, and — the
   point of the whole exercise — the repo's own lib/ tree coming back
   clean. *)

let fx sub = Filename.concat (Filename.concat "fixtures" "lint") sub

let run ?rules paths = Lint.Driver.run ?rules ~paths ()

let count rule findings =
  List.length (List.filter (fun (f : Lint.Finding.t) -> f.rule = rule) findings)

let errors findings =
  List.filter (fun (f : Lint.Finding.t) -> f.severity = Lint.Finding.Error) findings

let check_count findings ~rule n =
  Alcotest.(check int) (rule ^ " count") n (count rule findings)

(* --- one fixture per rule ------------------------------------------ *)

let test_wall_clock () =
  let fs = run [ fx "wall_clock" ] in
  check_count fs ~rule:"wall-clock" 2;
  check_count fs ~rule:"mli-required" 1;
  check_count fs ~rule:"ambient-rng" 0;
  let lines =
    List.filter_map
      (fun (f : Lint.Finding.t) ->
        if f.rule = "wall-clock" then Some f.line else None)
      fs
  in
  Alcotest.(check (list int)) "wall-clock lines" [ 2; 4 ] lines

let test_ambient_rng () =
  let fs = run [ fx "ambient_rng" ] in
  (* Random.self_init and Random.int fire; Random.State.int does not. *)
  check_count fs ~rule:"ambient-rng" 2;
  check_count fs ~rule:"mli-required" 1

let test_poly_compare () =
  let fs = run [ fx "poly_compare" ] in
  (* Three same-field comparisons on one line, plus [compare],
     [Hashtbl.hash] and a float-literal equality; [Float.compare] is
     fine. *)
  check_count fs ~rule:"poly-compare" 6;
  check_count fs ~rule:"mli-required" 1

let test_hashtbl_order () =
  let fs = run [ fx "hashtbl_order" ] in
  (* iter and fold fire; Hashtbl.length does not. *)
  check_count fs ~rule:"hashtbl-order" 2;
  check_count fs ~rule:"mli-required" 1

let test_mli_required () =
  let fs = run [ fx "mli_missing" ] in
  check_count fs ~rule:"mli-required" 1;
  Alcotest.(check int) "only that finding" 1 (List.length fs)

let test_parse_error () =
  let fs = run [ fx "parse_error" ] in
  check_count fs ~rule:"parse-error" 1;
  (* A file that does not parse still gets project-level checks. *)
  check_count fs ~rule:"mli-required" 1

let test_unused_export () =
  let fs = run [ fx (Filename.concat "unused" "lib") ] in
  (* Api.used is referenced from the sibling bin/; Api.unused is not. *)
  check_count fs ~rule:"unused-export" 1;
  (match List.find_opt (fun (f : Lint.Finding.t) -> f.rule = "unused-export") fs with
  | Some f ->
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the unused value" true
        (has_sub f.message "unused")
  | None -> Alcotest.fail "expected an unused-export finding");
  Alcotest.(check int) "warnings do not fail the build" 0
    (Lint.Driver.exit_code fs);
  Alcotest.(check int) "strict mode promotes warnings" 1
    (Lint.Driver.exit_code ~strict:true fs)

let test_ckpt_coverage () =
  let fs = run [ fx "ckpt_coverage" ] in
  (* Only uncovered.ml fires: covered.ml exports the pair, waived.ml
     carries an allow-file annotation, immutable.ml has no mutable
     field. *)
  check_count fs ~rule:"ckpt-coverage" 1;
  match
    List.find_opt (fun (f : Lint.Finding.t) -> f.rule = "ckpt-coverage") fs
  with
  | None -> Alcotest.fail "expected a ckpt-coverage finding"
  | Some f ->
      Alcotest.(check string) "flags the uncovered module" "uncovered.ml"
        (Filename.basename f.file);
      (* Anchored at the mutable field, not line 1. *)
      Alcotest.(check int) "mutable-field line" 4 f.line;
      Alcotest.(check bool) "advisory severity" true
        (f.severity = Lint.Finding.Warning)

(* --- escape analysis (domain safety) ------------------------------- *)

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_shared_mutable_capture () =
  let fs = run [ fx (Filename.concat "escape" "shared_ref.ml") ] in
  check_count fs ~rule:"shared-mutable-capture" 1;
  match
    List.find_opt
      (fun (f : Lint.Finding.t) -> f.rule = "shared-mutable-capture")
      fs
  with
  | None -> Alcotest.fail "expected a shared-mutable-capture finding"
  | Some f ->
      Alcotest.(check int) "anchored at the ref binding" 5 f.line;
      Alcotest.(check bool) "error severity" true
        (f.severity = Lint.Finding.Error);
      (* The provenance chain walks all three hops from the spawn. *)
      Alcotest.(check bool) "provenance chain rendered" true
        (has_sub f.message
           "Shared_ref.start.<closure@11> -> Shared_ref.helper -> \
            Shared_ref.bump")

let test_atomic_version_is_clean () =
  let fs = run [ fx (Filename.concat "escape" "atomic_ok.ml") ] in
  check_count fs ~rule:"shared-mutable-capture" 0;
  check_count fs ~rule:"domain-unsafe-call" 0

let test_domain_unsafe_call () =
  let fs = run [ fx (Filename.concat "escape" "unsafe_call.ml") ] in
  check_count fs ~rule:"domain-unsafe-call" 1;
  match
    List.find_opt (fun (f : Lint.Finding.t) -> f.rule = "domain-unsafe-call") fs
  with
  | None -> Alcotest.fail "expected a domain-unsafe-call finding"
  | Some f ->
      Alcotest.(check bool) "names the ambient call" true
        (has_sub f.message "Printf.printf")

let test_escape_waiver_honoured () =
  let fs = run [ fx (Filename.concat "escape" "waived.ml") ] in
  check_count fs ~rule:"shared-mutable-capture" 0

let test_escape_graph_dump () =
  let dump =
    Lint.Driver.escape_graph
      ~paths:[ fx (Filename.concat "escape" "shared_ref.ml") ]
      ()
  in
  Alcotest.(check bool) "lists the synthetic spawn root" true
    (has_sub dump "<closure@11>");
  Alcotest.(check bool) "marks the reachable helper" true
    (has_sub dump "helper");
  Alcotest.(check bool) "has a summary header" true
    (has_sub dump "escape graph:")

(* --- hot-path allocation checks ------------------------------------ *)

let test_alloc_hot_fires () =
  let fs = run [ fx (Filename.concat "hot" "firing.ml") ] in
  check_count fs ~rule:"alloc-hot" 1;
  match List.find_opt (fun (f : Lint.Finding.t) -> f.rule = "alloc-hot") fs with
  | None -> Alcotest.fail "expected an alloc-hot finding"
  | Some f ->
      Alcotest.(check bool) "names the construct and the function" true
        (has_sub f.message "tuple" && has_sub f.message "pair")

let test_alloc_hot_waiver_honoured () =
  let fs = run [ fx (Filename.concat "hot" "waived.ml") ] in
  check_count fs ~rule:"alloc-hot" 0

let test_alloc_hot_clean () =
  let fs = run [ fx (Filename.concat "hot" "clean.ml") ] in
  (* Neither the bare arithmetic nor the invalid_arg error exit fires. *)
  check_count fs ~rule:"alloc-hot" 0;
  check_count fs ~rule:"hot-coverage" 0

let test_hot_coverage_rejects_unknown_name () =
  let fs = run [ fx (Filename.concat "hot" "coverage_bad.ml") ] in
  check_count fs ~rule:"hot-coverage" 1;
  match
    List.find_opt (fun (f : Lint.Finding.t) -> f.rule = "hot-coverage") fs
  with
  | None -> Alcotest.fail "expected a hot-coverage finding"
  | Some f ->
      Alcotest.(check bool) "names the missing binding" true
        (has_sub f.message "no_such_function");
      Alcotest.(check bool) "error severity" true
        (f.severity = Lint.Finding.Error)

let test_hot_annotations_inventory () =
  let hots = Lint.Driver.hot_annotations ~paths:[ fx "hot" ] () in
  let targets_of file =
    List.filter_map
      (fun (f, t) -> if Filename.basename f = file then Some t else None)
      hots
  in
  Alcotest.(check (list string)) "firing.ml declares pair" [ "pair" ]
    (targets_of "firing.ml");
  Alcotest.(check (list string)) "clean.ml declares both" [ "bump"; "checked" ]
    (List.sort compare (targets_of "clean.ml"))

(* --- suppression and annotation integrity -------------------------- *)

let test_suppressions_honoured () =
  let fs = run [ fx "suppressed"; fx "clean" ] |> errors in
  Alcotest.(check int) "bad-annotation errors" 3 (count "bad-annotation" fs);
  (* The malformed annotation suppresses nothing, so the wall-clock
     violation underneath it still fires. *)
  Alcotest.(check int) "wall-clock still fires" 1 (count "wall-clock" fs);
  (* Every error must come from bad_annot.ml: ok.ml is fully waived and
     clean/ is clean. *)
  List.iter
    (fun (f : Lint.Finding.t) ->
      Alcotest.(check string) "error source" "bad_annot.ml"
        (Filename.basename f.file))
    fs

let test_clean_fixture () =
  Alcotest.(check int) "clean fixture has no findings" 0
    (List.length (run [ fx "clean" ]))

(* --- scoping and rule selection ------------------------------------ *)

let test_scope_lib_obs () =
  let fs = run [ fx (Filename.concat "scoped" "lib") ] in
  (* Under lib/obs the hashtbl-order rule applies but poly-compare is
     out of scope, so [List.sort compare] passes unflagged. *)
  check_count fs ~rule:"hashtbl-order" 1;
  check_count fs ~rule:"poly-compare" 0

let test_rules_filter () =
  let fs = run ~rules:[ "wall-clock" ] [ fx "wall_clock" ] in
  check_count fs ~rule:"wall-clock" 2;
  Alcotest.(check int) "other rules filtered out" 2 (List.length fs)

let test_unknown_rule_rejected () =
  match run ~rules:[ "no-such-rule" ] [ fx "clean" ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the bad rule" true
        (has_sub msg "no-such-rule")

let test_missing_path_rejected () =
  match run [ fx "does_not_exist" ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_scope_key () =
  let check_key path expected =
    Alcotest.(check (option string)) path expected (Lint.Driver.scope_key path)
  in
  check_key "lib/sim/heap.ml" (Some "lib/sim");
  check_key "bin/rla_trace.ml" (Some "bin");
  check_key "bench/main.ml" (Some "bench");
  check_key "test/test_sim.ml" (Some "test");
  (* A lib component wins over a tree name, preserving fixture layouts. *)
  check_key "fixtures/lint/scoped/lib/obs/table.ml" (Some "lib/obs");
  (* Bare fixture paths have no scope: every rule applies. *)
  check_key "fixtures/lint/clean/pure.ml" None

let test_parse_interface () =
  let mli = fx (Filename.concat "ckpt_coverage" "covered.mli") in
  match Lint.Driver.parse_interface mli with
  | Ok sg -> Alcotest.(check bool) "non-empty signature" true (sg <> [])
  | Error e -> Alcotest.fail ("fixture interface failed to parse: " ^ e)

(* --- report formats ------------------------------------------------ *)

let test_json_round_trip () =
  let fs = run [ fx "poly_compare"; fx "wall_clock" ] in
  Alcotest.(check bool) "fixture produced findings" true (fs <> []);
  let json = Lint.Driver.to_json fs in
  match Lint.Json.of_string (Lint.Json.to_string json) with
  | Error e -> Alcotest.fail ("json reparse failed: " ^ e)
  | Ok reparsed -> (
      match Lint.Driver.of_json reparsed with
      | Error e -> Alcotest.fail ("findings decode failed: " ^ e)
      | Ok fs' ->
          Alcotest.(check int) "same cardinality" (List.length fs)
            (List.length fs');
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Lint.Finding.to_string a)
                true
                (Lint.Finding.equal a b))
            fs fs')

let test_text_rendering () =
  let fs = run [ fx "mli_missing" ] in
  let text = Lint.Driver.render_text fs in
  List.iter
    (fun (f : Lint.Finding.t) ->
      let line = Lint.Finding.to_string f in
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("render contains " ^ line) true (has_sub text line))
    fs

let test_sarif_output () =
  let fs = run [ fx "wall_clock"; fx (Filename.concat "hot" "firing.ml") ] in
  Alcotest.(check bool) "fixtures produced findings" true (fs <> []);
  let sarif = Lint.Json.to_string (Lint.Driver.to_sarif fs) in
  Alcotest.(check bool) "declares SARIF 2.1.0" true
    (has_sub sarif "\"version\":\"2.1.0\"");
  Alcotest.(check bool) "carries the schema URI" true
    (has_sub sarif "sarif-2.1.0.json");
  (* The driver's rule table lists every registered rule... *)
  List.iter
    (fun (r : Lint.Rules.t) ->
      Alcotest.(check bool) ("rule table has " ^ r.Lint.Rules.name) true
        (has_sub sarif (Printf.sprintf "\"id\":%S" r.Lint.Rules.name)))
    Lint.Rules.all;
  (* ...and every finding becomes a located result. *)
  List.iter
    (fun (f : Lint.Finding.t) ->
      Alcotest.(check bool) ("result for " ^ f.rule) true
        (has_sub sarif (Printf.sprintf "\"ruleId\":%S" f.rule)))
    fs;
  Alcotest.(check bool) "results carry physical locations" true
    (has_sub sarif "physicalLocation" && has_sub sarif "startLine");
  (* SARIF must remain parseable JSON. *)
  match Lint.Json.of_string sarif with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("SARIF output is not valid JSON: " ^ e)

(* --- the tree itself ----------------------------------------------- *)

let test_lib_is_clean () =
  (* dune copies the library sources into the build tree, so the
     linter can check the very sources this binary was built from.
     Skip (pass) when the copy is absent, e.g. under sandboxed runs. *)
  let lib = Filename.concat ".." "lib" in
  if Sys.file_exists lib && Sys.is_directory lib then
    match errors (run [ lib ]) with
    | [] -> ()
    | errs ->
        Alcotest.fail
          (Printf.sprintf "lib/ has %d determinism errors:\n%s"
             (List.length errs)
             (Lint.Driver.render_text errs))

let existing_trees subs =
  List.filter
    (fun p -> Sys.file_exists p && Sys.is_directory p)
    (List.map (Filename.concat "..") subs)

let test_parallel_engine_is_domain_safe () =
  (* The acceptance bar of the escape pass: the parallel engine, the
     runner pool, and everything they transitively reach must carry no
     domain-safety or hot-path findings.  Escape analysis is
     cross-module, so lint all of lib plus the executables at once. *)
  match existing_trees [ "lib"; "bin"; "bench" ] with
  | [] -> ()
  | trees -> (
      match
        run
          ~rules:
            [
              "shared-mutable-capture";
              "domain-unsafe-call";
              "alloc-hot";
              "hot-coverage";
            ]
          trees
      with
      | [] -> ()
      | findings ->
          Alcotest.fail
            (Printf.sprintf "domain-safety/hot-path findings:\n%s"
               (Lint.Driver.render_text findings)))

let test_hot_paths_are_annotated () =
  (* The performance contract: the scheduler/packet hot path carries
     at least five vetted hot annotations, and the scheduler fire loop
     is one of them. *)
  match existing_trees [ "lib" ] with
  | [] -> ()
  | trees ->
      let hots = Lint.Driver.hot_annotations ~paths:trees () in
      Alcotest.(check bool)
        (Printf.sprintf "%d hot annotations >= 5" (List.length hots))
        true
        (List.length hots >= 5);
      Alcotest.(check bool) "scheduler step is declared hot" true
        (List.exists
           (fun (f, t) -> Filename.basename f = "scheduler.ml" && t = "step")
           hots)

let test_adversary_is_domain_safe () =
  (* The hostile-workload subsystem must clear the same bar as the
     parallel engine: adversaries run inside pooled jobs, so nothing in
     lib/adversary may capture shared mutable state, call
     domain-unsafe primitives, or allocate in a declared hot path. *)
  match existing_trees [ Filename.concat "lib" "adversary" ] with
  | [] -> ()
  | trees -> (
      match
        run
          ~rules:
            [
              "shared-mutable-capture";
              "domain-unsafe-call";
              "alloc-hot";
              "hot-coverage";
              "wall-clock";
              "ambient-rng";
              "mli-required";
            ]
          trees
      with
      | [] -> ()
      | findings ->
          Alcotest.fail
            (Printf.sprintf "lib/adversary findings:\n%s"
               (Lint.Driver.render_text findings)))

let test_ack_validation_declared_hot () =
  (* PR 10's fast path: the per-ack validation gate in the TCP sender
     must carry a vetted hot annotation. *)
  match existing_trees [ Filename.concat "lib" "tcp" ] with
  | [] -> ()
  | trees ->
      let hots = Lint.Driver.hot_annotations ~paths:trees () in
      Alcotest.(check bool) "ack_in_window is declared hot" true
        (List.exists
           (fun (f, t) ->
             Filename.basename f = "sender.ml" && t = "ack_in_window")
           hots)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "ambient-rng" `Quick test_ambient_rng;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "mli-required" `Quick test_mli_required;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
          Alcotest.test_case "unused-export" `Quick test_unused_export;
          Alcotest.test_case "ckpt-coverage" `Quick test_ckpt_coverage;
        ] );
      ( "escape",
        [
          Alcotest.test_case "shared-mutable-capture" `Quick
            test_shared_mutable_capture;
          Alcotest.test_case "atomic version clean" `Quick
            test_atomic_version_is_clean;
          Alcotest.test_case "domain-unsafe-call" `Quick
            test_domain_unsafe_call;
          Alcotest.test_case "waiver honoured" `Quick
            test_escape_waiver_honoured;
          Alcotest.test_case "graph dump" `Quick test_escape_graph_dump;
        ] );
      ( "hot",
        [
          Alcotest.test_case "alloc-hot fires" `Quick test_alloc_hot_fires;
          Alcotest.test_case "alloc-hot waived" `Quick
            test_alloc_hot_waiver_honoured;
          Alcotest.test_case "clean hot function" `Quick test_alloc_hot_clean;
          Alcotest.test_case "hot-coverage unknown name" `Quick
            test_hot_coverage_rejects_unknown_name;
          Alcotest.test_case "annotation inventory" `Quick
            test_hot_annotations_inventory;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "annotations honoured" `Quick
            test_suppressions_honoured;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        ] );
      ( "selection",
        [
          Alcotest.test_case "lib/obs scope" `Quick test_scope_lib_obs;
          Alcotest.test_case "--rules filter" `Quick test_rules_filter;
          Alcotest.test_case "unknown rule" `Quick test_unknown_rule_rejected;
          Alcotest.test_case "missing path" `Quick test_missing_path_rejected;
          Alcotest.test_case "scope keys" `Quick test_scope_key;
          Alcotest.test_case "parse_interface" `Quick test_parse_interface;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "text rendering" `Quick test_text_rendering;
          Alcotest.test_case "sarif output" `Quick test_sarif_output;
        ] );
      ( "self-check",
        [
          Alcotest.test_case "lib/ clean" `Quick test_lib_is_clean;
          Alcotest.test_case "parallel engine domain-safe" `Quick
            test_parallel_engine_is_domain_safe;
          Alcotest.test_case "hot paths annotated" `Quick
            test_hot_paths_are_annotated;
          Alcotest.test_case "adversary subsystem domain-safe" `Quick
            test_adversary_is_domain_safe;
          Alcotest.test_case "ack validation declared hot" `Quick
            test_ack_validation_declared_hot;
        ] );
    ]
