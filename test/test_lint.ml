(* Determinism-linter tests: every rule firing on a fixture, every
   suppression honoured, the JSON report round-tripping, and — the
   point of the whole exercise — the repo's own lib/ tree coming back
   clean. *)

let fx sub = Filename.concat (Filename.concat "fixtures" "lint") sub

let run ?rules paths = Lint.Driver.run ?rules ~paths ()

let count rule findings =
  List.length (List.filter (fun (f : Lint.Finding.t) -> f.rule = rule) findings)

let errors findings =
  List.filter (fun (f : Lint.Finding.t) -> f.severity = Lint.Finding.Error) findings

let check_count findings ~rule n =
  Alcotest.(check int) (rule ^ " count") n (count rule findings)

(* --- one fixture per rule ------------------------------------------ *)

let test_wall_clock () =
  let fs = run [ fx "wall_clock" ] in
  check_count fs ~rule:"wall-clock" 2;
  check_count fs ~rule:"mli-required" 1;
  check_count fs ~rule:"ambient-rng" 0;
  let lines =
    List.filter_map
      (fun (f : Lint.Finding.t) ->
        if f.rule = "wall-clock" then Some f.line else None)
      fs
  in
  Alcotest.(check (list int)) "wall-clock lines" [ 2; 4 ] lines

let test_ambient_rng () =
  let fs = run [ fx "ambient_rng" ] in
  (* Random.self_init and Random.int fire; Random.State.int does not. *)
  check_count fs ~rule:"ambient-rng" 2;
  check_count fs ~rule:"mli-required" 1

let test_poly_compare () =
  let fs = run [ fx "poly_compare" ] in
  (* Three same-field comparisons on one line, plus [compare],
     [Hashtbl.hash] and a float-literal equality; [Float.compare] is
     fine. *)
  check_count fs ~rule:"poly-compare" 6;
  check_count fs ~rule:"mli-required" 1

let test_hashtbl_order () =
  let fs = run [ fx "hashtbl_order" ] in
  (* iter and fold fire; Hashtbl.length does not. *)
  check_count fs ~rule:"hashtbl-order" 2;
  check_count fs ~rule:"mli-required" 1

let test_mli_required () =
  let fs = run [ fx "mli_missing" ] in
  check_count fs ~rule:"mli-required" 1;
  Alcotest.(check int) "only that finding" 1 (List.length fs)

let test_parse_error () =
  let fs = run [ fx "parse_error" ] in
  check_count fs ~rule:"parse-error" 1;
  (* A file that does not parse still gets project-level checks. *)
  check_count fs ~rule:"mli-required" 1

let test_unused_export () =
  let fs = run [ fx (Filename.concat "unused" "lib") ] in
  (* Api.used is referenced from the sibling bin/; Api.unused is not. *)
  check_count fs ~rule:"unused-export" 1;
  (match List.find_opt (fun (f : Lint.Finding.t) -> f.rule = "unused-export") fs with
  | Some f ->
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the unused value" true
        (has_sub f.message "unused")
  | None -> Alcotest.fail "expected an unused-export finding");
  Alcotest.(check int) "warnings do not fail the build" 0
    (Lint.Driver.exit_code fs);
  Alcotest.(check int) "strict mode promotes warnings" 1
    (Lint.Driver.exit_code ~strict:true fs)

let test_ckpt_coverage () =
  let fs = run [ fx "ckpt_coverage" ] in
  (* Only uncovered.ml fires: covered.ml exports the pair, waived.ml
     carries an allow-file annotation, immutable.ml has no mutable
     field. *)
  check_count fs ~rule:"ckpt-coverage" 1;
  match
    List.find_opt (fun (f : Lint.Finding.t) -> f.rule = "ckpt-coverage") fs
  with
  | None -> Alcotest.fail "expected a ckpt-coverage finding"
  | Some f ->
      Alcotest.(check string) "flags the uncovered module" "uncovered.ml"
        (Filename.basename f.file);
      (* Anchored at the mutable field, not line 1. *)
      Alcotest.(check int) "mutable-field line" 4 f.line;
      Alcotest.(check bool) "advisory severity" true
        (f.severity = Lint.Finding.Warning)

(* --- suppression and annotation integrity -------------------------- *)

let test_suppressions_honoured () =
  let fs = run [ fx "suppressed"; fx "clean" ] |> errors in
  Alcotest.(check int) "bad-annotation errors" 3 (count "bad-annotation" fs);
  (* The malformed annotation suppresses nothing, so the wall-clock
     violation underneath it still fires. *)
  Alcotest.(check int) "wall-clock still fires" 1 (count "wall-clock" fs);
  (* Every error must come from bad_annot.ml: ok.ml is fully waived and
     clean/ is clean. *)
  List.iter
    (fun (f : Lint.Finding.t) ->
      Alcotest.(check string) "error source" "bad_annot.ml"
        (Filename.basename f.file))
    fs

let test_clean_fixture () =
  Alcotest.(check int) "clean fixture has no findings" 0
    (List.length (run [ fx "clean" ]))

(* --- scoping and rule selection ------------------------------------ *)

let test_scope_lib_obs () =
  let fs = run [ fx (Filename.concat "scoped" "lib") ] in
  (* Under lib/obs the hashtbl-order rule applies but poly-compare is
     out of scope, so [List.sort compare] passes unflagged. *)
  check_count fs ~rule:"hashtbl-order" 1;
  check_count fs ~rule:"poly-compare" 0

let test_rules_filter () =
  let fs = run ~rules:[ "wall-clock" ] [ fx "wall_clock" ] in
  check_count fs ~rule:"wall-clock" 2;
  Alcotest.(check int) "other rules filtered out" 2 (List.length fs)

let test_unknown_rule_rejected () =
  match run ~rules:[ "no-such-rule" ] [ fx "clean" ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the bad rule" true
        (has_sub msg "no-such-rule")

let test_missing_path_rejected () =
  match run [ fx "does_not_exist" ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- report formats ------------------------------------------------ *)

let test_json_round_trip () =
  let fs = run [ fx "poly_compare"; fx "wall_clock" ] in
  Alcotest.(check bool) "fixture produced findings" true (fs <> []);
  let json = Lint.Driver.to_json fs in
  match Lint.Json.of_string (Lint.Json.to_string json) with
  | Error e -> Alcotest.fail ("json reparse failed: " ^ e)
  | Ok reparsed -> (
      match Lint.Driver.of_json reparsed with
      | Error e -> Alcotest.fail ("findings decode failed: " ^ e)
      | Ok fs' ->
          Alcotest.(check int) "same cardinality" (List.length fs)
            (List.length fs');
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Lint.Finding.to_string a)
                true
                (Lint.Finding.equal a b))
            fs fs')

let test_text_rendering () =
  let fs = run [ fx "mli_missing" ] in
  let text = Lint.Driver.render_text fs in
  List.iter
    (fun (f : Lint.Finding.t) ->
      let line = Lint.Finding.to_string f in
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("render contains " ^ line) true (has_sub text line))
    fs

(* --- the tree itself ----------------------------------------------- *)

let test_lib_is_clean () =
  (* dune copies the library sources into the build tree, so the
     linter can check the very sources this binary was built from.
     Skip (pass) when the copy is absent, e.g. under sandboxed runs. *)
  let lib = Filename.concat ".." "lib" in
  if Sys.file_exists lib && Sys.is_directory lib then
    match errors (run [ lib ]) with
    | [] -> ()
    | errs ->
        Alcotest.fail
          (Printf.sprintf "lib/ has %d determinism errors:\n%s"
             (List.length errs)
             (Lint.Driver.render_text errs))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "ambient-rng" `Quick test_ambient_rng;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "mli-required" `Quick test_mli_required;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
          Alcotest.test_case "unused-export" `Quick test_unused_export;
          Alcotest.test_case "ckpt-coverage" `Quick test_ckpt_coverage;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "annotations honoured" `Quick
            test_suppressions_honoured;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        ] );
      ( "selection",
        [
          Alcotest.test_case "lib/obs scope" `Quick test_scope_lib_obs;
          Alcotest.test_case "--rules filter" `Quick test_rules_filter;
          Alcotest.test_case "unknown rule" `Quick test_unknown_rule_rejected;
          Alcotest.test_case "missing path" `Quick test_missing_path_rejected;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "text rendering" `Quick test_text_rendering;
        ] );
      ( "self-check",
        [ Alcotest.test_case "lib/ clean" `Quick test_lib_is_clean ] );
    ]
