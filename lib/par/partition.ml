type t = {
  parts : int;
  owner : int array;
  members : int list array;
  cut : Net.Topo.edge list;
}

let kruskal topo ~parts =
  let n = Net.Topo.node_count topo in
  if parts < 1 then invalid_arg "Partition.kruskal: parts must be >= 1";
  if parts > n then invalid_arg "Partition.kruskal: more parts than nodes";
  let parent = Array.init n (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let root = find parent.(i) in
      parent.(i) <- root;
      root
    end
  in
  let edges = Array.of_list topo.Net.Topo.edges in
  let order = Array.init (Array.length edges) (fun i -> i) in
  (* Ascending delay, ties by edge index: a total order, so the sort
     result is unique and the partition deterministic. *)
  Array.sort
    (fun a b ->
      let da = edges.(a).Net.Topo.config.Net.Link.prop_delay in
      let db = edges.(b).Net.Topo.config.Net.Link.prop_delay in
      let c = Float.compare da db in
      if c <> 0 then c else Int.compare a b)
    order;
  let components = ref n in
  Array.iter
    (fun i ->
      if !components > parts then begin
        let e = edges.(i) in
        let ru = find e.Net.Topo.u and rv = find e.Net.Topo.v in
        if ru <> rv then begin
          parent.(ru) <- rv;
          decr components
        end
      end)
    order;
  (* Number parts by smallest member node. *)
  let label = Array.make n (-1) in
  let owner = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let r = find v in
    if label.(r) < 0 then begin
      label.(r) <- !next;
      incr next
    end;
    owner.(v) <- label.(r)
  done;
  let k = !next in
  let members = Array.make k [] in
  for v = n - 1 downto 0 do
    members.(owner.(v)) <- v :: members.(owner.(v))
  done;
  let cut =
    List.filter
      (fun e -> owner.(e.Net.Topo.u) <> owner.(e.Net.Topo.v))
      topo.Net.Topo.edges
  in
  { parts = k; owner; members; cut }
