type config = {
  topo : Net.Topo.t;
  parts : int;
  src : int;
  receivers : int list;
  tcp_pairs : (int * int) list;
  workers : int;
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
  with_registry : bool;
}

type error =
  | Zero_delay_cut of int * int
  | Cross_shard_tcp of int * int
  | Bad_config of string
  | Checkpoint_unsupported

type result = {
  shards : int;
  workers : int;
  lookahead : float;
  rounds : int;
  events_fired : int;
  n_receivers : int;
  cut_edges : int;
  rla : Rla.Sender.snapshot;
  tcp : ((int * int) * Tcp.Sender.snapshot) list;
  jain : float;
  fairness_table : string;
  registry_json : string;
  trace_csv : string;
}

let error_to_string = function
  | Zero_delay_cut (u, v) ->
      Printf.sprintf
        "shard-crossing link %d-%d has no propagation delay (zero lookahead); \
         repartition or give the link a positive delay"
        u v
  | Cross_shard_tcp (a, b) ->
      Printf.sprintf
        "TCP pair %d-%d crosses a shard boundary; competing flows must stay \
         inside one shard"
        a b
  | Bad_config msg -> "bad scenario config: " ^ msg
  | Checkpoint_unsupported ->
      "sharded runs are not checkpointable; drop --checkpoint-every or run \
       with --shards 1 through a sequential experiment"

let validate config =
  let n = Net.Topo.node_count config.topo in
  if config.duration <= 0.0 then Some "duration must be positive"
  else if config.warmup < 0.0 || config.warmup >= config.duration then
    Some "need 0 <= warmup < duration"
  else if config.workers < 1 then Some "workers must be >= 1"
  else if config.src < 0 || config.src >= n then Some "src out of range"
  else if config.receivers = [] then Some "no receivers"
  else if
    List.exists
      (fun m -> m < 0 || m >= n || m = config.src)
      config.receivers
  then Some "receiver out of range (or equal to src)"
  else if
    List.exists
      (fun (a, b) -> a < 0 || a >= n || b < 0 || b >= n || a = b)
      config.tcp_pairs
  then Some "tcp pair out of range"
  else None

(* The unique path used for a TCP pair: the direct link when the pair
   is adjacent, else the tree path through the BFS forest rooted at the
   RLA source. *)
let tcp_path eng ~parents a b =
  if Engine.link_for eng a b <> None then [ a; b ]
  else Net.Topo.tree_path ~parents a b

let render_fairness_table config ~eng ~partition ~gateway ~(rla : Rla.Sender.snapshot)
    ~(tcp : ((int * int) * Tcp.Sender.snapshot) list) ~jain =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_rcvrs = List.length config.receivers in
  p "sharded RLA scenario: %d nodes, %d edges, %d shards, %d receivers\n"
    (Net.Topo.node_count config.topo)
    (Net.Topo.edge_count config.topo)
    partition.Partition.parts n_rcvrs;
  p "lookahead %.6f s over %d cut edges; %d rounds; %d events\n"
    (Engine.lookahead eng)
    (List.length partition.Partition.cut)
    (Engine.rounds eng) (Engine.events_fired eng);
  p "RLA  send %.4f pkt/s  goodput %.4f pkt/s  cwnd_avg %.4f  signals %d  cuts %d\n"
    rla.Rla.Sender.send_rate rla.Rla.Sender.throughput rla.Rla.Sender.cwnd_avg
    rla.Rla.Sender.congestion_signals rla.Rla.Sender.window_cuts;
  let a, b = Rla.Fairness.essential_bounds gateway ~n:n_rcvrs in
  List.iter
    (fun ((s, d), (snap : Tcp.Sender.snapshot)) ->
      let ratio =
        Rla.Fairness.measured_ratio ~rla_throughput:rla.Rla.Sender.send_rate
          ~tcp_throughput:snap.Tcp.Sender.send_rate
      in
      let fair =
        Rla.Fairness.is_essentially_fair gateway ~n:n_rcvrs
          ~rla_throughput:rla.Rla.Sender.send_rate
          ~tcp_throughput:snap.Tcp.Sender.send_rate
      in
      p "TCP %d->%d  send %.4f pkt/s  ratio %.4f  %s\n" s d
        snap.Tcp.Sender.send_rate ratio
        (if fair then "essentially-fair" else "OUT-OF-BOUNDS"))
    tcp;
  p "bounds (a, b) = (%.4f, %.4f) for n = %d\n" a b n_rcvrs;
  p "jain(tcp send rates) = %.6f\n" jain;
  Buffer.contents buf

let merged_registry_json eng =
  let shards =
    List.init (Engine.shards eng) (fun i ->
        match Engine.shard_registry eng i with
        | None -> Runner.Json.Obj [ ("shard", Runner.Json.Int i) ]
        | Some reg ->
            Runner.Json.Obj
              [
                ("shard", Runner.Json.Int i);
                ("registry", Runner.Report.registry_json reg);
              ])
  in
  Runner.Json.to_string (Runner.Json.Obj [ ("shards", Runner.Json.List shards) ])

let merged_trace_csv eng =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time,flow,cwnd,bytes_acked\n";
  for i = 0 to Engine.shards eng - 1 do
    match Engine.shard_registry eng i with
    | None -> ()
    | Some reg ->
        let b = Buffer.create 1024 in
        let fmt = Format.formatter_of_buffer b in
        Runner.Report.flow_series_csv fmt reg;
        Format.pp_print_flush fmt ();
        let s = Buffer.contents b in
        (* Every shard emits the same header line; keep only ours. *)
        (match String.index_opt s '\n' with
        | Some j -> Buffer.add_substring buf s (j + 1) (String.length s - j - 1)
        | None -> ())
  done;
  Buffer.contents buf

let has_red topo =
  List.exists
    (fun e ->
      match e.Net.Topo.config.Net.Link.queue with
      | Net.Queue_disc.Red_gateway _ -> true
      | Net.Queue_disc.Droptail | Net.Queue_disc.Bernoulli_loss _ -> false)
    topo.Net.Topo.edges

let run ?checkpoint config =
  match checkpoint with
  | Some _ -> Error Checkpoint_unsupported
  | None -> (
      match validate config with
      | Some msg -> Error (Bad_config msg)
      | None -> (
          let partition = Partition.kruskal config.topo ~parts:config.parts in
          let parents = Net.Topo.bfs_parents config.topo ~root:config.src in
          if List.exists (fun m -> parents.(m) < 0) config.receivers then
            Error (Bad_config "receiver unreachable from src")
          else
            match
              Engine.create ~topo:config.topo ~partition ~seed:config.seed
                ~registries:config.with_registry ()
            with
            | Error (Engine.Zero_delay_cut { u; v }) ->
                Error (Zero_delay_cut (u, v))
            | Ok eng -> (
                (* Acks (and anything else addressed to the source)
                   route along the BFS forest. *)
                Engine.install_toward eng ~parents ~dest:config.src;
                (* Competing TCP flows must be shard-local end to end. *)
                let cross =
                  List.find_opt
                    (fun (a, b) ->
                      let oa = Engine.owner eng a in
                      oa <> Engine.owner eng b
                      || List.exists
                           (fun v -> Engine.owner eng v <> oa)
                           (tcp_path eng ~parents a b))
                    config.tcp_pairs
                in
                match cross with
                | Some (a, b) -> Error (Cross_shard_tcp (a, b))
                | None ->
                    List.iter
                      (fun (a, b) ->
                        Engine.install_path eng (tcp_path eng ~parents a b))
                      config.tcp_pairs;
                    (* Multicast tree + per-receiver unicast branches,
                       then the spanning RLA session: local endpoints
                       on the source shard, remote endpoints on their
                       home shards, all on the session's flow id. *)
                    let src_shard = Engine.owner eng config.src in
                    let snet = Engine.shard_net eng src_shard in
                    let group = Net.Network.fresh_group snet in
                    List.iter
                      (fun m ->
                        let branch =
                          List.rev (Net.Topo.path_to_root ~parents m)
                        in
                        Engine.install_mcast_branch eng ~group branch;
                        Engine.install_path eng branch;
                        Engine.join eng ~group m)
                      config.receivers;
                    let local =
                      List.filter
                        (fun m -> Engine.owner eng m = src_shard)
                        config.receivers
                    in
                    let rla =
                      Rla.Sender.create ~net:snet ~src:config.src
                        ~receivers:config.receivers ~params:config.rla_params
                        ~endpoints:local ~tree:(`Preinstalled group) ()
                    in
                    let flow = Rla.Sender.flow rla in
                    let _remote_endpoints =
                      List.filter_map
                        (fun m ->
                          if Engine.owner eng m = src_shard then None
                          else
                            Some
                              (Rla.Receiver.create
                                 ~net:(Engine.shard_net eng (Engine.owner eng m))
                                 ~node:m ~flow ~sender:config.src
                                 ~ack_jitter:
                                   config.rla_params.Rla.Params.ack_jitter ()))
                        config.receivers
                    in
                    let tcps =
                      List.map
                        (fun (a, b) ->
                          let net =
                            Engine.shard_net eng (Engine.owner eng a)
                          in
                          ((a, b), Tcp.Sender.create ~net ~src:a ~dst:b ()))
                        config.tcp_pairs
                    in
                    Engine.run eng ~until:config.warmup
                      ~workers:config.workers;
                    Rla.Sender.reset_measurement rla;
                    List.iter
                      (fun (_, tcp) -> Tcp.Sender.reset_measurement tcp)
                      tcps;
                    Engine.run eng ~until:config.duration
                      ~workers:config.workers;
                    let rla_snap = Rla.Sender.snapshot rla in
                    let tcp_snaps =
                      List.map
                        (fun (pair, tcp) -> (pair, Tcp.Sender.snapshot tcp))
                        tcps
                    in
                    let jain =
                      match tcp_snaps with
                      | [] -> 1.0
                      | _ ->
                          Rla.Fairness.jain
                            (List.map
                               (fun (_, (s : Tcp.Sender.snapshot)) ->
                                 s.Tcp.Sender.send_rate)
                               tcp_snaps)
                    in
                    let gateway =
                      if has_red config.topo then Rla.Fairness.Red
                      else Rla.Fairness.Droptail
                    in
                    Ok
                      {
                        shards = Engine.shards eng;
                        workers = config.workers;
                        lookahead = Engine.lookahead eng;
                        rounds = Engine.rounds eng;
                        events_fired = Engine.events_fired eng;
                        n_receivers = List.length config.receivers;
                        cut_edges = List.length partition.Partition.cut;
                        rla = rla_snap;
                        tcp = tcp_snaps;
                        jain;
                        fairness_table =
                          render_fairness_table config ~eng ~partition
                            ~gateway ~rla:rla_snap ~tcp:tcp_snaps ~jain;
                        registry_json =
                          (if config.with_registry then
                             merged_registry_json eng
                           else "");
                        trace_csv =
                          (if config.with_registry then merged_trace_csv eng
                           else "");
                      })))
