(** End-to-end sharded RLA scenario on a generated topology.

    Builds an {!Engine.t} over a {!Partition.kruskal} split of the
    topology, installs global routing (unicast toward the source, a
    multicast distribution tree over the BFS paths to every receiver,
    per-receiver unicast branches for retransmissions), starts one RLA
    session rooted at [src] spanning all shards plus per-pair competing
    TCP flows, runs warmup and measurement through the barrier-round
    engine, and renders the merged deterministic outputs (fairness
    table, per-shard registry JSON, merged trace CSV).

    All outputs are byte-identical for any [workers] value: the shard
    structure is fixed by the partition, never by the worker count. *)

type config = {
  topo : Net.Topo.t;
  parts : int;  (** Requested part count for {!Partition.kruskal}. *)
  src : int;  (** RLA source node. *)
  receivers : int list;  (** Multicast group members; non-empty. *)
  tcp_pairs : (int * int) list;
      (** Competing TCP flows.  Each pair must live entirely inside one
          shard (sender, receiver and the routed path between them):
          TCP endpoints share one network object. *)
  workers : int;  (** Domains per barrier round; results-invariant. *)
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
  with_registry : bool;
      (** Install per-shard metrics registries and render
          [registry_json] / [trace_csv] (empty strings otherwise). *)
}

type error =
  | Zero_delay_cut of int * int
      (** A shard-crossing link has no propagation delay — zero
          lookahead (from {!Engine.create}). *)
  | Cross_shard_tcp of int * int
      (** A TCP pair's endpoints or routed path leave its shard. *)
  | Bad_config of string
  | Checkpoint_unsupported
      (** Sharded runs cannot be checkpointed: shard networks are
          sparse address-space slices with live cross-shard messages in
          flight at every barrier, outside what [Ckpt.State] captures.
          Requesting a checkpoint is rejected up front — never silently
          ignored. *)

type result = {
  shards : int;
  workers : int;
  lookahead : float;
  rounds : int;
  events_fired : int;
  n_receivers : int;
  cut_edges : int;
  rla : Rla.Sender.snapshot;
  tcp : ((int * int) * Tcp.Sender.snapshot) list;  (** In [tcp_pairs] order. *)
  jain : float;
      (** Jain index over the competing TCP send rates (1.0 when there
          are none). *)
  fairness_table : string;
  registry_json : string;
  trace_csv : string;
}

val run : ?checkpoint:float * string -> config -> (result, error) Stdlib.result
(** Build and run the scenario.  [checkpoint] (interval, directory) is
    accepted only to be rejected with {!Checkpoint_unsupported} — the
    single validation point behind the CLI flags. *)

val error_to_string : error -> string
