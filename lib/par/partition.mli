(** Topology partitioner for conservative parallel simulation.

    The quality goal is the opposite of a classic min-cut balance: cut
    edges become shard-boundary portals whose minimum propagation delay
    is the engine's lookahead, so the partitioner should cut {e few,
    high-latency} links.  {!kruskal} does exactly that: single-linkage
    clustering that keeps merging the lowest-delay edges until the
    requested number of components remains — the surviving cut is the
    high-delay edge set. *)

type t = {
  parts : int;  (** Achieved part count (see {!kruskal}). *)
  owner : int array;  (** Node -> part index, every node in exactly one. *)
  members : int list array;  (** Part -> member nodes, ascending. *)
  cut : Net.Topo.edge list;
      (** Exactly the edges whose endpoints land in different parts, in
          topology edge order. *)
}

val kruskal : Net.Topo.t -> parts:int -> t
(** Merge edges in ascending [prop_delay] order (ties broken by edge
    index) until [parts] components remain.  Parts are numbered by
    their smallest member node, so the result is a pure function of the
    topology and [parts] — independent of worker count or scheduling.
    On a disconnected topology the achieved [parts] may exceed the
    request (components are never joined by absent edges).  Raises
    [Invalid_argument] if [parts < 1] or [parts] exceeds the node
    count. *)
