(* Cross-shard message: the full wire content of a packet that left
   its shard through a portal, plus the explicit merge key
   (arrival, source shard, per-shard sequence). *)
type msg = {
  m_arrival : float;
  m_src_shard : int;
  m_seq : int;
  m_entry : int;  (* global address of the receiving node *)
  m_flow : int;
  m_psrc : int;
  m_dst : Net.Packet.dest;
  m_size : int;
  m_payload : Net.Packet.payload;
  m_born : float;
  m_ecn : bool;
}

type shard = {
  index : int;
  net : Net.Network.t;
  registry : Obs.Registry.t option;
  mutable outbox : msg list;  (* reverse push order *)
  mutable out_seq : int;
  mutable inbox : msg list;  (* merge order; drained at round start *)
}

type t = {
  part : Partition.t;
  shards : shard array;
  portals : (int * int, Net.Link.t) Hashtbl.t;
  lookahead : float;
  mutable horizon : float;
  mutable rounds : int;
}

type error = Zero_delay_cut of { u : int; v : int }

(* Disjoint per-shard flow-id ranges keep flow numbers globally unique
   in merged reports. *)
let flow_stride = 1000

let owner t v = t.part.Partition.owner.(v)

let shards t = Array.length t.shards

let lookahead t = t.lookahead

let rounds t = t.rounds

let now t = t.horizon

let shard_net t i = t.shards.(i).net

let shard_registry t i = t.shards.(i).registry

let events_fired t =
  Array.fold_left
    (fun acc sh ->
      acc + Sim.Scheduler.events_fired (Net.Network.scheduler sh.net))
    0 t.shards

(* The portal's deliver callback runs at serialization end on the
   sending shard (the portal itself has zero propagation delay); the
   cut edge's real delay is added here, on the arrival stamp. *)
let make_portal t ~src_shard ~u ~v ~config =
  let sh = t.shards.(src_shard) in
  let net = sh.net in
  let cut_delay = config.Net.Link.prop_delay in
  let deliver pkt =
    let m =
      {
        m_arrival = Net.Network.now net +. cut_delay;
        m_src_shard = src_shard;
        m_seq = sh.out_seq;
        m_entry = v;
        m_flow = pkt.Net.Packet.flow;
        m_psrc = pkt.Net.Packet.src;
        m_dst = pkt.Net.Packet.dst;
        m_size = pkt.Net.Packet.size;
        m_payload = pkt.Net.Packet.payload;
        m_born = pkt.Net.Packet.born;
        m_ecn = pkt.Net.Packet.ecn;
      }
    in
    sh.out_seq <- sh.out_seq + 1;
    sh.outbox <- m :: sh.outbox;
    Net.Packet.Pool.release (Net.Network.pool net) pkt
  in
  let link =
    Net.Link.create
      ~sched:(Net.Network.scheduler net)
      ~rng:(Net.Network.fork_rng net) ~pool:(Net.Network.pool net)
      ~id:(Printf.sprintf "portal:%d->%d" u v)
      { config with Net.Link.prop_delay = 0.0 }
      ~deliver
  in
  Net.Link.set_registry link (Net.Network.observer net);
  Hashtbl.replace t.portals (u, v) link

let create ~topo ~partition ?(seed = 1) ?(registries = false) () =
  match
    List.find_opt
      (fun e -> e.Net.Topo.config.Net.Link.prop_delay <= 0.0)
      partition.Partition.cut
  with
  | Some e -> Error (Zero_delay_cut { u = e.Net.Topo.u; v = e.Net.Topo.v })
  | None ->
      let la =
        List.fold_left
          (fun acc e -> Stdlib.min acc e.Net.Topo.config.Net.Link.prop_delay)
          infinity partition.Partition.cut
      in
      let k = partition.Partition.parts in
      let shards =
        Array.init k (fun i ->
            let net = Net.Network.create ~seed:(seed + (1_000_003 * i)) () in
            Net.Network.set_flow_base net (i * flow_stride);
            let registry =
              if registries then Some (Obs.Registry.create ()) else None
            in
            Net.Network.set_registry net registry;
            { index = i; net; registry; outbox = []; out_seq = 0; inbox = [] })
      in
      Array.iteri
        (fun i sh ->
          List.iter
            (fun v -> ignore (Net.Network.add_node_at sh.net v))
            partition.Partition.members.(i))
        shards;
      let t =
        {
          part = partition;
          shards;
          portals = Hashtbl.create 64;
          lookahead = la;
          horizon = 0.0;
          rounds = 0;
        }
      in
      (* Topology edge order fixes link creation and RNG fork order on
         every shard, independent of anything runtime. *)
      List.iter
        (fun e ->
          let u = e.Net.Topo.u and v = e.Net.Topo.v in
          let ou = partition.Partition.owner.(u) in
          let ov = partition.Partition.owner.(v) in
          if ou = ov then
            ignore (Net.Network.duplex shards.(ou).net u v e.Net.Topo.config)
          else begin
            make_portal t ~src_shard:ou ~u ~v ~config:e.Net.Topo.config;
            make_portal t ~src_shard:ov ~u:v ~v:u ~config:e.Net.Topo.config
          end)
        topo.Net.Topo.edges;
      Ok t

(* --- routing over the partitioned address space -------------------- *)

let link_for t u v =
  match Hashtbl.find_opt t.portals (u, v) with
  | Some _ as l -> l
  | None -> Net.Network.link_between t.shards.(owner t u).net u v

let node_of t v = Net.Network.node t.shards.(owner t v).net v

let install_route t ~at ~dest ~next =
  match link_for t at next with
  | None ->
      invalid_arg
        (Printf.sprintf "Engine.install_route: no link %d -> %d" at next)
  | Some link -> Net.Node.set_route (node_of t at) ~dest link

let install_toward t ~parents ~dest =
  Array.iteri
    (fun v p -> if p >= 0 && p <> v then install_route t ~at:v ~dest ~next:p)
    parents

let rec hops f = function
  | a :: (b :: _ as rest) ->
      f a b;
      hops f rest
  | [] | [ _ ] -> ()

let install_path t path =
  match path with
  | [] | [ _ ] -> ()
  | first :: _ ->
      let rec last = function
        | [ x ] -> x
        | _ :: tl -> last tl
        | [] -> assert false
      in
      let dst = last path in
      hops (fun a b -> install_route t ~at:a ~dest:dst ~next:b) path;
      hops (fun a b -> install_route t ~at:a ~dest:first ~next:b) (List.rev path)

let install_mcast_branch t ~group path =
  hops
    (fun a b ->
      match link_for t a b with
      | None ->
          invalid_arg
            (Printf.sprintf "Engine.install_mcast_branch: no link %d -> %d" a b)
      | Some link -> Net.Node.add_mcast_route (node_of t a) ~group link)
    path

let join t ~group v = Net.Node.join (node_of t v) ~group

(* --- barrier rounds ------------------------------------------------- *)

let msg_compare a b =
  let c = Float.compare a.m_arrival b.m_arrival in
  if c <> 0 then c
  else
    let c = Int.compare a.m_src_shard b.m_src_shard in
    if c <> 0 then c else Int.compare a.m_seq b.m_seq

(* Importing at the barrier is always in time: a message produced in
   the round ending at H has arrival > H (see the interface), and the
   shard clock is exactly H after [run_until]. *)
let admit sh m =
  let net = sh.net in
  ignore
    (Sim.Scheduler.schedule_at
       (Net.Network.scheduler net)
       m.m_arrival
       (fun () ->
         let pkt =
           Net.Network.import_packet net ~flow:m.m_flow ~src:m.m_psrc
             ~dst:m.m_dst ~size:m.m_size ~payload:m.m_payload ~born:m.m_born
             ~ecn:m.m_ecn
         in
         Net.Node.receive (Net.Network.node net m.m_entry) pkt))

(* Barrier exchange, on the coordinating domain only: route every
   outbox message to its destination shard and sort per destination by
   the explicit (arrival, source shard, sequence) key.  Messages are
   then scheduled in that order at the next round start, so equal
   arrival times fire in merge order — fixed by data, not by worker
   interleaving. *)
let exchange t =
  let k = Array.length t.shards in
  let per_dst = Array.make k [] in
  Array.iter
    (fun sh ->
      List.iter
        (fun m ->
          let d = t.part.Partition.owner.(m.m_entry) in
          per_dst.(d) <- m :: per_dst.(d))
        (List.rev sh.outbox);
      sh.outbox <- [])
    t.shards;
  Array.iteri
    (fun d msgs -> t.shards.(d).inbox <- List.sort msg_compare msgs)
    per_dst

let round_body h sh =
  let inbox = sh.inbox in
  sh.inbox <- [];
  List.iter (admit sh) inbox;
  Net.Network.run_until sh.net h

(* One round across all shards.  Workers pull shard indices from a
   shared counter; assignment order cannot influence results because a
   shard is touched by exactly one domain per round and shards share no
   mutable state within a round. *)
let parallel_round t ~workers h =
  let n = Array.length t.shards in
  let w = Stdlib.min workers n in
  if w <= 1 then Array.iter (round_body h) t.shards
  else begin
    let next = Atomic.make 0 in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false else round_body h t.shards.(i)
      done
    in
    let doms = List.init (w - 1) (fun _ -> Domain.spawn work) in
    work ();
    List.iter Domain.join doms
  end

let run t ~until ~workers =
  if until < t.horizon then
    invalid_arg
      (Printf.sprintf "Engine.run: until %g precedes the horizon %g" until
         t.horizon);
  let continue = ref true in
  while !continue do
    let h =
      if t.lookahead = infinity then until
      else Stdlib.min (t.horizon +. t.lookahead) until
    in
    parallel_round t ~workers h;
    t.horizon <- h;
    t.rounds <- t.rounds + 1;
    exchange t;
    if h >= until then continue := false
  done
