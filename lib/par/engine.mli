(** Conservative parallel-DES engine over a partitioned topology.

    Each part of a {!Partition.t} becomes a shard: a complete
    {!Net.Network.t} holding that part's nodes (at their global
    addresses) and intra-part links.  Every cut edge becomes a pair of
    {e portal} links — real {!Net.Link.t}s with the cut edge's queue,
    bandwidth and jitter but zero propagation delay — whose delivery
    callback serializes the packet into the owning shard's outbox
    instead of a peer node; the cut edge's propagation delay is paid on
    the receiving side as the message arrival time.

    Execution proceeds in barrier rounds of width [L], the minimum
    propagation delay over all cut edges (the {e lookahead}).  Round
    [k] advances every shard from horizon [H_k] to [H_(k+1) = H_k + L]
    (events in [(H_k, H_(k+1)]]); a packet entering a portal at time
    [p] in that window arrives at [p + d >= p + L > H_(k+1)], so
    importing outbox messages only at the barrier can never deliver a
    message into a shard's past.  At each barrier, messages are merged
    per destination shard in ([arrival], source shard, per-shard
    sequence) order — an explicit total order — and scheduled before
    the next round starts.

    Determinism: shard construction, the round schedule, the merge
    order and every intra-shard event sequence are pure functions of
    the topology, partition and seed.  Worker domains only decide
    {e which CPU} runs a shard's round, never the order of events
    inside it, so results are byte-identical for any worker count —
    including fully sequential execution. *)

type t

type error = Zero_delay_cut of { u : int; v : int }
    (** A cut edge with non-positive propagation delay gives zero
        lookahead: the round width would be zero and the conservative
        protocol cannot advance.  Re-partition so the offending edge is
        interior, or give it a real delay. *)

val create :
  topo:Net.Topo.t ->
  partition:Partition.t ->
  ?seed:int ->
  ?registries:bool ->
  unit ->
  (t, error) result
(** Build one network per part ([seed] perturbed per shard), nodes at
    global addresses, intra-part duplex links in topology edge order,
    and portal link pairs for every cut edge.  [registries] installs a
    fresh {!Obs.Registry.t} per shard (portals included).  With no cut
    edges the lookahead is [infinity] and {!run} degenerates to one
    sequential round per call. *)

val shards : t -> int
val lookahead : t -> float
val rounds : t -> int
(** Barrier rounds completed so far. *)

val now : t -> float
(** The common horizon every shard has reached. *)

val events_fired : t -> int
(** Sum of the per-shard scheduler counters. *)

val owner : t -> int -> int
val shard_net : t -> int -> Net.Network.t
val shard_registry : t -> int -> Obs.Registry.t option

val link_for : t -> int -> int -> Net.Link.t option
(** The directed link [u -> v]: an intra-shard link or a portal. *)

val install_route : t -> at:int -> dest:int -> next:int -> unit
(** Route [dest] at node [at] via the link to neighbor [next] (portal
    or local).  Raises [Invalid_argument] if no such link exists. *)

val install_toward : t -> parents:int array -> dest:int -> unit
(** Given a BFS parent forest rooted at [dest], route [dest] at every
    reachable node via its parent. *)

val install_path : t -> int list -> unit
(** Routes along an explicit node path: forward hops toward the last
    node, reverse hops toward the first. *)

val install_mcast_branch : t -> group:int -> int list -> unit
(** Add multicast forwarding for [group] along consecutive path links
    (idempotent per link — shared branch prefixes are safe). *)

val join : t -> group:int -> int -> unit

val run : t -> until:float -> workers:int -> unit
(** Advance every shard to [until] in lookahead-wide barrier rounds.
    [workers] caps the OCaml domains used per round (clamped to the
    shard count; [<= 1] runs sequentially in the calling domain) and
    has no observable effect on simulation results.  Raises
    [Invalid_argument] if [until] precedes the current horizon. *)
