type mix = Honest | Nonbackoff | Ackdiv | Optack | Rst

let all_mixes = [ Honest; Nonbackoff; Ackdiv; Optack; Rst ]

let mix_name = function
  | Honest -> "none"
  | Nonbackoff -> "nonbackoff"
  | Ackdiv -> "ackdiv"
  | Optack -> "optack"
  | Rst -> "rst"

let mix_of_string = function
  | "none" -> Some Honest
  | "nonbackoff" -> Some Nonbackoff
  | "ackdiv" -> Some Ackdiv
  | "optack" -> Some Optack
  | "rst" -> Some Rst
  | _ -> None

type topology = Fig6 of Tree.case | Kary of { fanout : int; depth : int }

let topology_name = function
  | Fig6 case -> Tree.case_name case
  | Kary { fanout; depth } -> Printf.sprintf "kary%dx%d" fanout depth

type config = {
  topology : topology;
  gateway : Scenario.gateway;
  mix : mix;
  duration : float;
  warmup : float;
  seed : int;
  share : float;
  flood_rate : float;
  ackdiv_split : int;
  optack_lookahead : int;
  rst_count : int;
  rst_interval : float;
  rst_strict : bool;
}

let default_config ~mix =
  {
    topology = Fig6 (Tree.case_of_index 3);
    gateway = Scenario.Droptail;
    mix;
    duration = 300.0;
    warmup = 100.0;
    seed = 1;
    share = 100.0;
    flood_rate = 400.0;
    ackdiv_split = 4;
    optack_lookahead = 0;
    rst_count = 40;
    rst_interval = 4.0;
    rst_strict = true;
  }

type result = {
  config : config;
  label : string;
  n_receivers : int;
  rla_rate : float;
  wtcp_rate : float;
  btcp_rate : float;
  ratio : float;
  jain_honest : float;
  jain_all : float;
  bounds : float * float;
  essentially_fair : bool;
  adv_send_rate : float;
  adv_delivered_rate : float;
  ghost_acks : int;
  rst_accepted : int;
  rst_challenged : int;
  rst_dropped : int;
  rst_injected : int;
  victim_closed : bool;
}

(* A built hostile scenario before the clock advances: the honest
   population (RLA session + per-leaf background TCPs) plus whichever
   adversary the mix calls for.  The fig-6 variant keeps the
   [Sharing.session] so the honest metrics come out of the exact
   pipeline the Sharing goldens use. *)
type adversary =
  | No_adv
  | Flood of Adversary.Flood.t
  | Div of Adversary.Ackdiv.t
  | Opt of Adversary.Optack.t * Tcp.Sender.t
  | Blind of Adversary.Blind.t * Tcp.Sender.t

type session = {
  net : Net.Network.t;
  rla : Rla.Sender.t;
  tcps : (Net.Packet.addr * Tcp.Sender.t) list;
  congested : Net.Packet.addr list;
  sharing : Sharing.session option;  (* fig-6 only *)
  adversary : adversary;
}

(* The adversary aims at the first designated-congested leaf (fig 6)
   or the first leaf (k-ary): the one place where the theorem's
   worst-case TCP already lives. *)
let target_leaf ~congested ~leaves =
  match congested with
  | leaf :: _ -> leaf
  | [] -> (
      match leaves with
      | leaf :: _ -> leaf
      | [] -> invalid_arg "Hostile: no leaves")

let sharing_config config case =
  let base = Sharing.default_config ~gateway:config.gateway ~case in
  {
    base with
    Sharing.duration = config.duration;
    warmup = config.warmup;
    seed = config.seed;
    share = config.share;
  }

(* Single-network k-ary tree (the PR 7 scale topology, sized for one
   event loop): fast root links, soft-bottleneck interior links, RLA
   to every leaf plus one background TCP per leaf — the same
   population shape as the fig-6 tree. *)
let build_kary config ~fanout ~depth =
  if fanout < 2 then invalid_arg "Hostile: --fanout must be >= 2";
  if depth < 2 then invalid_arg "Hostile: --depth must be >= 2";
  let configs =
    [|
      Scenario.fast_link_config ~gateway:config.gateway ~delay:0.005 ();
      Scenario.link_config ~gateway:config.gateway
        ~mu_pkts:(config.share *. 2.0) ~delay:0.025 ();
    |]
  in
  let topo = Net.Topo.kary ~fanout ~depth ~configs in
  let net = Net.Network.create ~seed:config.seed () in
  for _ = 1 to Net.Topo.node_count topo do
    ignore (Net.Network.add_node net)
  done;
  List.iter
    (fun { Net.Topo.u; v; config = link } ->
      ignore (Net.Network.duplex net u v link))
    topo.Net.Topo.edges;
  Net.Network.install_routes net;
  let leaves = Net.Topo.leaves topo in
  let root = 0 in
  let rla = Rla.Sender.create ~net ~src:root ~receivers:leaves () in
  let tcps =
    List.map (fun leaf -> (leaf, Tcp.Sender.create ~net ~src:root ~dst:leaf ())) leaves
  in
  (net, root, leaves, rla, tcps)

(* The attacker cannot see the victim's sequence state but can guess
   its rate (the advertised fair share), so each injection aims where
   a share-rate flow's in-order point would be at that instant — the
   blind-but-informed guesser RFC 5961 is written against.  Some land
   in the validation window (challenge ack under strict mode, teardown
   on a legacy stack), the rest fall outside (dropped). *)
let rst_timeline config ~flow ~dst =
  Faults.Timeline.scripted
    (List.init config.rst_count (fun i ->
         let time =
           config.warmup +. (float_of_int (i + 1) *. config.rst_interval)
         in
         ( time,
           Faults.Timeline.Rst_inject
             { flow; dst; seq = int_of_float (config.share *. time) } )))

let install_adversary config ~net ~root ~tcps ~target =
  match config.mix with
  | Honest -> No_adv
  | Nonbackoff ->
      Flood
        (Adversary.Flood.create ~net ~src:root ~dst:target
           ~rate:config.flood_rate ())
  | Ackdiv ->
      Div
        (Adversary.Ackdiv.create ~net ~src:root ~dst:target
           ~params:
             {
               Adversary.Ackdiv.default_params with
               Adversary.Ackdiv.split = config.ackdiv_split;
             }
           ())
  | Optack ->
      let victim = List.assoc target tcps in
      let opt =
        Adversary.Optack.hijack ~net ~node:target
          ~flow:(Tcp.Sender.flow victim) ~peer:root
          ~lookahead:config.optack_lookahead ()
      in
      Opt (opt, victim)
  | Rst ->
      let victim = List.assoc target tcps in
      Tcp.Receiver.set_rst_strict (Tcp.Sender.receiver victim)
        config.rst_strict;
      let blind = Adversary.Blind.create ~net ~src:root () in
      let handlers =
        {
          Faults.Injector.null_handlers with
          Faults.Injector.on_rst_inject =
            (fun ~flow ~dst ~seq ->
              Adversary.Blind.rst blind ~flow ~dst ~seq;
              true);
          on_data_inject =
            (fun ~flow ~dst ~seq ->
              Adversary.Blind.data blind ~flow ~dst ~seq;
              true);
        }
      in
      ignore
        (Faults.Injector.install ~net ~handlers
           (rst_timeline config ~flow:(Tcp.Sender.flow victim) ~dst:target));
      Blind (blind, victim)

let setup ?registry config =
  if config.duration <= config.warmup then
    invalid_arg "Hostile.run: duration must exceed warmup";
  match config.topology with
  | Fig6 case ->
      let s = Sharing.setup ?registry (sharing_config config case) in
      let tree = s.Sharing.tree in
      let leaves = Array.to_list tree.Tree.leaves in
      let congested = tree.Tree.congested_leaves in
      let target = target_leaf ~congested ~leaves in
      let adversary =
        install_adversary config ~net:s.Sharing.net ~root:tree.Tree.root
          ~tcps:s.Sharing.tcps ~target
      in
      {
        net = s.Sharing.net;
        rla = s.Sharing.rla;
        tcps = s.Sharing.tcps;
        congested;
        sharing = Some s;
        adversary;
      }
  | Kary { fanout; depth } ->
      let net, root, leaves, rla, tcps = build_kary config ~fanout ~depth in
      Scenario.observe ?registry net;
      let target = target_leaf ~congested:[] ~leaves in
      let adversary = install_adversary config ~net ~root ~tcps ~target in
      { net; rla; tcps; congested = leaves; sharing = None; adversary }

let reset_measurements s =
  Rla.Sender.reset_measurement s.rla;
  List.iter (fun (_, tcp) -> Tcp.Sender.reset_measurement tcp) s.tcps;
  match s.adversary with
  | Flood f -> Adversary.Flood.reset_measurement f
  | Div d -> Adversary.Ackdiv.reset_measurement d
  | No_adv | Opt _ | Blind _ -> ()

let adv_rates s =
  match s.adversary with
  | No_adv -> (0.0, 0.0)
  | Flood f -> (Adversary.Flood.send_rate f, Adversary.Flood.delivered_rate f)
  | Div d -> (Adversary.Ackdiv.send_rate d, Adversary.Ackdiv.delivered_rate d)
  | Opt (_, victim) ->
      let snap = Tcp.Sender.snapshot victim in
      (snap.Tcp.Sender.send_rate, snap.Tcp.Sender.throughput)
  | Blind _ -> (0.0, 0.0)

let measure s config =
  let adv_send_rate, adv_delivered_rate = adv_rates s in
  let rla_rate, wtcp_rate, btcp_rate, ratio, jain_honest, bounds, fair, n =
    match s.sharing with
    | Some sharing_session ->
        let case =
          match config.topology with
          | Fig6 case -> case
          | Kary _ -> assert false
        in
        let r = Sharing.measure sharing_session (sharing_config config case) in
        ( r.Sharing.rla.Rla.Sender.send_rate,
          r.Sharing.wtcp.Tcp.Sender.send_rate,
          r.Sharing.btcp.Tcp.Sender.send_rate,
          r.Sharing.ratio,
          r.Sharing.jain,
          r.Sharing.bounds,
          r.Sharing.essentially_fair,
          r.Sharing.n_receivers )
    | None ->
        let rla_snap = Rla.Sender.snapshot s.rla in
        let tcp_rates =
          List.map
            (fun (_, tcp) -> (Tcp.Sender.snapshot tcp).Tcp.Sender.send_rate)
            s.tcps
        in
        let wtcp = List.fold_left Stdlib.min infinity tcp_rates in
        let btcp = List.fold_left Stdlib.max 0.0 tcp_rates in
        let n = List.length s.tcps in
        let fairness_gateway = Scenario.to_fairness_gateway config.gateway in
        let rla_rate = rla_snap.Rla.Sender.send_rate in
        ( rla_rate,
          wtcp,
          btcp,
          Rla.Fairness.measured_ratio ~rla_throughput:rla_rate
            ~tcp_throughput:wtcp,
          Rla.Fairness.jain (rla_rate :: tcp_rates),
          Rla.Fairness.essential_bounds fairness_gateway ~n,
          Rla.Fairness.is_essentially_fair fairness_gateway ~n
            ~rla_throughput:rla_rate ~tcp_throughput:wtcp,
          n )
  in
  (* With a flood or ack-division attacker the misbehaving flow is a
     separate population member; Jain over everyone shows how far the
     whole allocation is bent.  The optimistic acker hijacks an
     existing flow (already inside [jain_honest]); the RST injector
     sends no sustained traffic. *)
  let jain_all =
    match s.adversary with
    | Flood _ | Div _ ->
        let tcp_rates =
          List.map
            (fun (_, tcp) -> (Tcp.Sender.snapshot tcp).Tcp.Sender.send_rate)
            s.tcps
        in
        Rla.Fairness.jain
          ((Rla.Sender.snapshot s.rla).Rla.Sender.send_rate
           :: (tcp_rates @ [ adv_send_rate ]))
    | No_adv | Opt _ | Blind _ -> jain_honest
  in
  let ghost_acks =
    match s.adversary with
    | Opt (_, victim) -> Tcp.Sender.ghost_acks victim
    | _ -> 0
  in
  let rst_accepted, rst_challenged, rst_dropped, rst_injected, victim_closed =
    match s.adversary with
    | Blind (blind, victim) ->
        let rcvr = Tcp.Sender.receiver victim in
        ( Tcp.Receiver.rst_accepted rcvr,
          Tcp.Receiver.rst_challenged rcvr,
          Tcp.Receiver.rst_dropped rcvr,
          Adversary.Blind.rst_sent blind,
          Tcp.Receiver.closed rcvr )
    | _ -> (0, 0, 0, 0, false)
  in
  {
    config;
    label =
      Printf.sprintf "%s/%s" (topology_name config.topology)
        (mix_name config.mix);
    n_receivers = n;
    rla_rate;
    wtcp_rate;
    btcp_rate;
    ratio;
    jain_honest;
    jain_all;
    bounds;
    essentially_fair = fair;
    adv_send_rate;
    adv_delivered_rate;
    ghost_acks;
    rst_accepted;
    rst_challenged;
    rst_dropped;
    rst_injected;
    victim_closed;
  }

let run_with_net ?registry config =
  let s = setup ?registry config in
  Net.Network.run_until s.net config.warmup;
  reset_measurements s;
  Net.Network.run_until s.net config.duration;
  (s.net, measure s config)

let run ?registry config = snd (run_with_net ?registry config)

let print ppf results =
  Format.fprintf ppf
    "@.Hostile workloads — RLA + honest TCPs vs adversary mixes@.";
  Format.fprintf ppf "%-18s %8s %8s %8s %6s %9s %9s %6s %5s %5s %5s@."
    "scenario" "rla" "wtcp" "ratio" "jain" "adv-send" "adv-dlvr" "ghost"
    "rst-a" "rst-c" "rst-d";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-18s %8.1f %8.1f %8.2f %6.3f %9.1f %9.1f %6d %5d %5d %5d%s@."
        r.label r.rla_rate r.wtcp_rate r.ratio r.jain_all r.adv_send_rate
        r.adv_delivered_rate r.ghost_acks r.rst_accepted r.rst_challenged
        r.rst_dropped
        (if r.victim_closed then "  (victim closed)"
         else if not r.essentially_fair then "  (NOT fair)"
         else ""))
    results

let csv_header =
  "scenario,mix,ratio,jain_honest,jain_all,rla_rate,wtcp_rate,btcp_rate,\
   adv_send_rate,adv_delivered_rate,ghost_acks,rst_accepted,rst_challenged,\
   rst_dropped,rst_injected,victim_closed,essentially_fair"

let to_csv_row r =
  Printf.sprintf "%s,%s,%.6f,%.6f,%.6f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d,%b,%b"
    (topology_name r.config.topology)
    (mix_name r.config.mix) r.ratio r.jain_honest r.jain_all r.rla_rate
    r.wtcp_rate r.btcp_rate r.adv_send_rate r.adv_delivered_rate r.ghost_acks
    r.rst_accepted r.rst_challenged r.rst_dropped r.rst_injected
    r.victim_closed r.essentially_fair

let to_json r =
  let a, b = r.bounds in
  Runner.Json.Obj
    [
      ("scenario", Runner.Json.String (topology_name r.config.topology));
      ("mix", Runner.Json.String (mix_name r.config.mix));
      ("seed", Runner.Json.Int r.config.seed);
      ("n_receivers", Runner.Json.Int r.n_receivers);
      ("rla_send_rate", Runner.Json.Float r.rla_rate);
      ("wtcp_send_rate", Runner.Json.Float r.wtcp_rate);
      ("btcp_send_rate", Runner.Json.Float r.btcp_rate);
      ("ratio", Runner.Json.Float r.ratio);
      ("jain", Runner.Json.Float r.jain_honest);
      ("jain_all", Runner.Json.Float r.jain_all);
      ("bound_a", Runner.Json.Float a);
      ("bound_b", Runner.Json.Float b);
      ("essentially_fair", Runner.Json.Bool r.essentially_fair);
      ("adv_send_rate", Runner.Json.Float r.adv_send_rate);
      ("adv_delivered_rate", Runner.Json.Float r.adv_delivered_rate);
      ("ghost_acks", Runner.Json.Int r.ghost_acks);
      ("rst_accepted", Runner.Json.Int r.rst_accepted);
      ("rst_challenged", Runner.Json.Int r.rst_challenged);
      ("rst_dropped", Runner.Json.Int r.rst_dropped);
      ("rst_injected", Runner.Json.Int r.rst_injected);
      ("victim_closed", Runner.Json.Bool r.victim_closed);
    ]

let job ~label config =
  Runner.Job.create ~label (fun () -> run_with_net config)

let sweep ~mixes ~case_index ?(duration = 300.0) ?(warmup = 100.0)
    ?(seeds = [ 1 ]) ?jobs () =
  let jobs_list =
    List.concat_map
      (fun mix ->
        List.map
          (fun seed ->
            let config =
              {
                (default_config ~mix) with
                topology = Fig6 (Tree.case_of_index case_index);
                duration;
                warmup;
                seed;
              }
            in
            job ~label:(Printf.sprintf "%s/seed%d" (mix_name mix) seed) config)
          seeds)
      mixes
  in
  Runner.Pool.run ?jobs jobs_list
