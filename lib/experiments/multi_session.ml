type config = {
  gateway : Scenario.gateway;
  case : Tree.case;
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
  share : float;
}

let default_config ~gateway =
  {
    gateway;
    case = Tree.L4_all;
    duration = 300.0;
    warmup = 100.0;
    seed = 1;
    rla_params =
      { Rla.Params.default with Rla.Params.trouble_counting = Rla.Params.All_receivers };
    share = 100.0;
  }

type result = {
  config : config;
  session1 : Rla.Sender.snapshot;
  session2 : Rla.Sender.snapshot;
  wtcp : Tcp.Sender.snapshot;
  btcp : Tcp.Sender.snapshot;
  throughput_ratio : float;
  cwnd_ratio : float;
}

let run_with_net config =
  if config.duration <= config.warmup then
    invalid_arg "Multi_session.run: duration must exceed warmup";
  let tree =
    Tree.build ~seed:config.seed ~gateway:config.gateway ~case:config.case
      ~share:config.share ()
  in
  let net = tree.Tree.net in
  let leaves = Array.to_list tree.Tree.leaves in
  let session1 =
    Rla.Sender.create ~net ~src:tree.Tree.root ~receivers:leaves
      ~params:config.rla_params ()
  in
  let session2 =
    Rla.Sender.create ~net ~src:tree.Tree.root ~receivers:leaves
      ~params:config.rla_params ()
  in
  let tcps =
    List.map
      (fun leaf -> Tcp.Sender.create ~net ~src:tree.Tree.root ~dst:leaf ())
      leaves
  in
  Net.Network.run_until net config.warmup;
  Rla.Sender.reset_measurement session1;
  Rla.Sender.reset_measurement session2;
  List.iter Tcp.Sender.reset_measurement tcps;
  Net.Network.run_until net config.duration;
  let s1 = Rla.Sender.snapshot session1 in
  let s2 = Rla.Sender.snapshot session2 in
  let snaps =
    List.sort
      (fun a b -> Float.compare a.Tcp.Sender.throughput b.Tcp.Sender.throughput)
      (List.map Tcp.Sender.snapshot tcps)
  in
  let wtcp, btcp =
    match (snaps, List.rev snaps) with
    | lo :: _, hi :: _ -> (lo, hi)
    | _ -> invalid_arg "Multi_session.run: no TCP flows"
  in
  let safe_div a b = if b <= 0.0 then infinity else a /. b in
  ( net,
    {
      config;
      session1 = s1;
      session2 = s2;
      wtcp;
      btcp;
      throughput_ratio =
        safe_div s1.Rla.Sender.send_rate s2.Rla.Sender.send_rate;
      cwnd_ratio = safe_div s1.Rla.Sender.cwnd_avg s2.Rla.Sender.cwnd_avg;
    } )

let run config = snd (run_with_net config)

let run_seeds ~gateway ~seeds ?duration ?warmup ?jobs () =
  let base = default_config ~gateway in
  let jobs_list =
    List.map
      (fun seed ->
        let config =
          {
            base with
            duration = Option.value duration ~default:base.duration;
            warmup = Option.value warmup ~default:base.warmup;
            seed;
          }
        in
        Runner.Job.create
          ~label:(Printf.sprintf "multi_session/seed%d" seed)
          (fun () -> run_with_net config))
      seeds
  in
  Runner.Pool.run ?jobs jobs_list
