(** Shared experiment vocabulary: gateway selection, link-config
    helpers and measurement conventions (warm-up discarding). *)

type gateway = Droptail | Red

val gateway_name : gateway -> string

val gateway_of_string : string -> gateway option

val packet_size : int
(** 1000 bytes, as in all the paper's simulations. *)

val link_config :
  gateway:gateway ->
  mu_pkts:float ->
  delay:float ->
  ?buffer:int ->
  ?phase_jitter:bool ->
  ?ecn:bool ->
  unit ->
  Net.Link.config
(** A link of capacity [mu_pkts] packets/s (1000-byte packets), one-way
    propagation [delay], buffer of [buffer] packets (default 20).
    RED gateways get the paper's thresholds (min 5 / max 15); phase
    jitter defaults to on for drop-tail and off for RED, matching
    section 5.  [ecn] (default off) makes RED gateways mark instead of
    dropping in the probabilistic band. *)

val fast_link_config :
  gateway:gateway ->
  delay:float ->
  ?buffer:int ->
  ?phase_jitter:bool ->
  unit ->
  Net.Link.config
(** A non-bottleneck 100 Mbps link.  The buffer defaults to the paper's
    20 packets — "all nodes have a buffer of size 20 packets" — which
    matters: burst fan-in overflows even fast links occasionally, so
    every branch reports some losses and all receivers stay troubled
    (the paper's "all receivers are troubled receivers"). *)

val to_fairness_gateway : gateway -> Rla.Fairness.gateway

val observe : ?registry:Obs.Registry.t -> Net.Network.t -> unit
(** The scenario-level observability opt-in: with [?registry] present,
    install it on the network ({!Net.Network.set_registry}); without
    it, do nothing.  Scenario runners thread their own [?registry]
    parameter through to this, so any experiment gains per-flow and
    per-link probes with one flag.  Call between topology build and
    sender creation. *)
