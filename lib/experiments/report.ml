let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let print_sharing_table ppf ~title results =
  let width = 22 + (11 * List.length results) in
  Format.fprintf ppf "@.%s@." title;
  hr ppf width;
  Format.fprintf ppf "%-22s" "case";
  List.iteri (fun i _ -> Format.fprintf ppf "%11d" (i + 1)) results;
  Format.fprintf ppf "@.%-22s" "most congested";
  List.iter
    (fun r ->
      Format.fprintf ppf "%11s" (Tree.case_name r.Sharing.config.Sharing.case))
    results;
  Format.fprintf ppf "@.";
  hr ppf width;
  let frow label f =
    Format.fprintf ppf "%-22s" label;
    List.iter (fun r -> Format.fprintf ppf "%11.1f" (f r)) results;
    Format.fprintf ppf "@."
  in
  let f3row label f =
    Format.fprintf ppf "%-22s" label;
    List.iter (fun r -> Format.fprintf ppf "%11.3f" (f r)) results;
    Format.fprintf ppf "@."
  in
  let irow label f =
    Format.fprintf ppf "%-22s" label;
    List.iter (fun r -> Format.fprintf ppf "%11d" (f r)) results;
    Format.fprintf ppf "@."
  in
  frow "RLA thrput (pkt/s)" (fun r -> r.Sharing.rla.Rla.Sender.send_rate);
  frow "RLA goodput (all rcv)" (fun r -> r.Sharing.rla.Rla.Sender.throughput);
  frow "RLA cwnd" (fun r -> r.Sharing.rla.Rla.Sender.cwnd_avg);
  f3row "RLA RTT (s)" (fun r -> r.Sharing.rla.Rla.Sender.rtt_avg);
  f3row "RLA RTT all-rcv (s)" (fun r -> r.Sharing.rla.Rla.Sender.rtt_all_avg);
  irow "RLA #cong signals" (fun r ->
      r.Sharing.rla.Rla.Sender.congestion_signals);
  irow "RLA #wnd cut" (fun r -> r.Sharing.rla.Rla.Sender.window_cuts);
  irow "RLA #forced cut" (fun r -> r.Sharing.rla.Rla.Sender.forced_cuts);
  hr ppf width;
  frow "WTCP thrput (pkt/s)" (fun r -> r.Sharing.wtcp.Tcp.Sender.send_rate);
  frow "WTCP cwnd" (fun r -> r.Sharing.wtcp.Tcp.Sender.cwnd_avg);
  f3row "WTCP RTT (s)" (fun r -> r.Sharing.wtcp.Tcp.Sender.rtt_avg);
  irow "WTCP #wnd cut" (fun r -> r.Sharing.wtcp.Tcp.Sender.window_cuts);
  hr ppf width;
  frow "BTCP thrput (pkt/s)" (fun r -> r.Sharing.btcp.Tcp.Sender.send_rate);
  frow "BTCP cwnd" (fun r -> r.Sharing.btcp.Tcp.Sender.cwnd_avg);
  f3row "BTCP RTT (s)" (fun r -> r.Sharing.btcp.Tcp.Sender.rtt_avg);
  irow "BTCP #wnd cut" (fun r -> r.Sharing.btcp.Tcp.Sender.window_cuts);
  hr ppf width;
  frow "RLA/WTCP ratio" (fun r -> r.Sharing.ratio);
  f3row "Jain index (all)" (fun r -> r.Sharing.jain);
  Format.fprintf ppf "%-22s" "essentially fair";
  List.iter
    (fun r ->
      Format.fprintf ppf "%11s" (if r.Sharing.essentially_fair then "yes" else "NO"))
    results;
  Format.fprintf ppf "@.";
  hr ppf width

let print_group ppf label (g : Sharing.group_stat) =
  Format.fprintf ppf "  %-18s worst %6d   best %6d   average %8.1f@." label
    g.Sharing.worst g.Sharing.best g.Sharing.average

let print_signal_table ppf results =
  Format.fprintf ppf
    "@.Figure 8 — congestion signals per branch (RLA) vs window cuts (TCP)@.";
  hr ppf 64;
  List.iteri
    (fun i r ->
      Format.fprintf ppf "case %d (%s):@." (i + 1)
        (Tree.case_name r.Sharing.config.Sharing.case);
      (match r.Sharing.rla_signals_rest with
      | None ->
          print_group ppf "RLA all links" r.Sharing.rla_signals_congested;
          print_group ppf "TCP all links" r.Sharing.tcp_cuts_congested
      | Some rest ->
          print_group ppf "RLA more congested" r.Sharing.rla_signals_congested;
          print_group ppf "RLA less congested" rest;
          print_group ppf "TCP more congested" r.Sharing.tcp_cuts_congested;
          (match r.Sharing.tcp_cuts_rest with
          | Some tcp_rest -> print_group ppf "TCP less congested" tcp_rest
          | None -> ())))
    results;
  hr ppf 64

let print_diff_rtt_table ppf results =
  Format.fprintf ppf
    "@.Figure 10 — generalized RLA with different round-trip times@.";
  hr ppf 96;
  Format.fprintf ppf "%-4s %-14s %28s %24s %24s@." "case" "bottlenecks"
    "RLA thr/cwnd/RTT/#sig/#cut" "WTCP thr/cwnd/#cut" "BTCP thr/cwnd/#cut";
  List.iteri
    (fun i r ->
      let rla = r.Diff_rtt.rla in
      let w = r.Diff_rtt.wtcp and b = r.Diff_rtt.btcp in
      Format.fprintf ppf "%-4d %-14s %8.1f/%5.1f/%5.3f/%5d/%4d %11.1f/%5.1f/%5d %11.1f/%5.1f/%5d@."
        (i + 1)
        (Tree.case_name r.Diff_rtt.config.Diff_rtt.case)
        rla.Rla.Sender.send_rate rla.Rla.Sender.cwnd_avg
        rla.Rla.Sender.rtt_avg rla.Rla.Sender.congestion_signals
        rla.Rla.Sender.window_cuts w.Tcp.Sender.send_rate
        w.Tcp.Sender.cwnd_avg w.Tcp.Sender.window_cuts
        b.Tcp.Sender.send_rate b.Tcp.Sender.cwnd_avg
        b.Tcp.Sender.window_cuts)
    results;
  hr ppf 96

let print_multi_session ppf r =
  Format.fprintf ppf "@.Section 5.2 — two overlapping multicast sessions@.";
  hr ppf 64;
  let s1 = r.Multi_session.session1 and s2 = r.Multi_session.session2 in
  Format.fprintf ppf "session 1: thrput %7.1f pkt/s   cwnd %6.1f@."
    s1.Rla.Sender.send_rate s1.Rla.Sender.cwnd_avg;
  Format.fprintf ppf "session 2: thrput %7.1f pkt/s   cwnd %6.1f@."
    s2.Rla.Sender.send_rate s2.Rla.Sender.cwnd_avg;
  Format.fprintf ppf "throughput ratio %5.2f   cwnd ratio %5.2f@."
    r.Multi_session.throughput_ratio r.Multi_session.cwnd_ratio;
  Format.fprintf ppf "background TCP: worst %7.1f   best %7.1f pkt/s@."
    r.Multi_session.wtcp.Tcp.Sender.throughput
    r.Multi_session.btcp.Tcp.Sender.throughput;
  hr ppf 64

let print_validation ppf points =
  Format.fprintf ppf
    "@.Equation 1 — PA window sqrt(2(1-p)/p) vs simulated TCP@.";
  hr ppf 72;
  Format.fprintf ppf "%8s %14s %14s %9s %12s %12s@." "p" "cwnd (meas)"
    "cwnd (model)" "ratio" "thr (meas)" "thr (model)";
  List.iter
    (fun pt ->
      Format.fprintf ppf "%8.4f %14.2f %14.2f %9.2f %12.1f %12.1f@."
        pt.Validation.p pt.Validation.measured_cwnd
        pt.Validation.predicted_cwnd pt.Validation.ratio
        pt.Validation.measured_throughput pt.Validation.predicted_throughput)
    points;
  hr ppf 72

let print_baseline_matrix ppf results =
  Format.fprintf ppf
    "@.Baselines — multicast scheme vs TCP through one bottleneck (fair share = 100 pkt/s)@.";
  hr ppf 76;
  Format.fprintf ppf "%-10s %-6s %12s %12s %12s %12s %8s@." "gateway" "scheme"
    "mcast pkt/s" "tcp mean" "tcp min" "tcp max" "ratio";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %12.1f %12.1f %12.1f %12.1f %8.2f@."
        (Scenario.gateway_name r.Baseline_fairness.config.Baseline_fairness.gateway)
        (Baseline_fairness.scheme_name
           r.Baseline_fairness.config.Baseline_fairness.scheme)
        r.Baseline_fairness.mcast_throughput r.Baseline_fairness.tcp_mean
        r.Baseline_fairness.tcp_min r.Baseline_fairness.tcp_max
        r.Baseline_fairness.ratio)
    results;
  hr ppf 76

let print_ablation ppf ~title rows =
  Format.fprintf ppf "@.Ablation — %s@." title;
  hr ppf 88;
  Format.fprintf ppf "%-28s %10s %10s %7s %7s %7s %7s@." "variant" "RLA pkt/s"
    "WTCP" "ratio" "#sig" "#cut" "#forced";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %10.1f %10.1f %7.2f %7d %7d %7d@."
        r.Ablation.variant.Ablation.label r.Ablation.rla_throughput
        r.Ablation.wtcp_throughput r.Ablation.ratio
        r.Ablation.congestion_signals r.Ablation.window_cuts
        r.Ablation.forced_cuts)
    rows;
  hr ppf 88

(* Render the drift field as one glyph per grid point: '+' both grow,
   arrows when shrinking along an axis, 'v' both shrink. *)
let print_drift_field ppf field =
  Format.fprintf ppf "@.Figure 4 — drift field of two competing cwnds@.";
  let xs =
    List.sort_uniq Float.compare (List.map (fun p -> p.Analysis.Particle.x) field)
  in
  let ys =
    List.rev
      (List.sort_uniq Float.compare
         (List.map (fun p -> p.Analysis.Particle.y) field))
  in
  List.iter
    (fun y ->
      Format.fprintf ppf "%6.1f " y;
      List.iter
        (fun x ->
          match
            List.find_opt
              (fun p -> p.Analysis.Particle.x = x && p.Analysis.Particle.y = y)
              field
          with
          | None -> Format.fprintf ppf " "
          | Some p ->
              let glyph =
                match (p.Analysis.Particle.dx >= 0.0, p.Analysis.Particle.dy >= 0.0) with
                | true, true -> '+'
                | false, false -> 'v'
                | true, false -> '>'
                | false, true -> '<'
              in
              Format.fprintf ppf "%c " glyph)
        xs;
      Format.fprintf ppf "@.")
    ys;
  Format.fprintf ppf "       ('+' both windows grow, 'v' both shrink)@."

let print_particle_run ppf stats =
  Format.fprintf ppf "@.Figure 5 — occupancy density of (cwnd1, cwnd2)@.";
  Stats.Density.pp ppf stats.Analysis.Particle.density;
  let cx, cy = stats.Analysis.Particle.centroid in
  Format.fprintf ppf
    "mean w1 %.1f   mean w2 %.1f   mean |w1-w2| %.1f   centroid (%.1f, %.1f)@."
    stats.Analysis.Particle.mean_w1 stats.Analysis.Particle.mean_w2
    stats.Analysis.Particle.mean_abs_diff cx cy;
  Format.fprintf ppf "probability mass near the fair point: %.2f@."
    stats.Analysis.Particle.mass_near_fair_point

let print_buffer_dynamics ppf results =
  Format.fprintf ppf
    "@.Section 3.1 — drop episodes at a drop-tail bottleneck under TCP@.";
  hr ppf 100;
  Format.fprintf ppf "%6s %10s %9s %7s %10s %12s %10s %13s %10s@." "flows"
    "mu pkt/s" "episodes" "drops" "drops/ep" "episode(s)" "gap(s)"
    "episode/2RTT" "gap/2RTT";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%6d %10.0f %9d %7d %10.1f %12.3f %10.2f %13.2f %10.1f@."
        r.Buffer_dynamics.config.Buffer_dynamics.n_tcp
        r.Buffer_dynamics.config.Buffer_dynamics.mu_pkts
        r.Buffer_dynamics.episodes r.Buffer_dynamics.drops
        r.Buffer_dynamics.drops_per_episode
        r.Buffer_dynamics.mean_episode_length r.Buffer_dynamics.mean_gap
        r.Buffer_dynamics.episode_over_2rtt r.Buffer_dynamics.gap_over_2rtt)
    results;
  Format.fprintf ppf
    "(the paper: drops cluster within <= ~2 RTT; episodes are much@.";
  Format.fprintf ppf
    " further apart — the basis for grouping losses within 2*srtt)@.";
  hr ppf 100

let print_proposition_table ppf rows =
  Format.fprintf ppf
    "@.Proposition (eq. 2) — RLA PA window between TCP's and sqrt(n) x TCP's@.";
  hr ppf 72;
  Format.fprintf ppf "%4s %10s %10s %10s %10s %10s %8s@." "n" "p_max"
    "W (model)" "W (MC)" "lower" "upper" "holds";
  List.iter
    (fun (n, ps, w_model, w_mc, lo, hi) ->
      let p_max = Array.fold_left Stdlib.max 0.0 ps in
      Format.fprintf ppf "%4d %10.4f %10.2f %10.2f %10.2f %10.2f %8s@." n
        p_max w_model w_mc lo hi
        (if w_model > lo && w_model < hi then "yes" else "NO"))
    rows;
  hr ppf 72
