(** Mean-field solver vs packet-level simulator, head to head.

    Runs the same scenario family — n TCP flows plus an n-receiver RLA
    session through one RED bottleneck at 100 pkt/s per sender — at
    both tiers and compares bottleneck queue occupancy, drop fraction,
    and the RLA / mean-TCP send-rate ratio.  The ratio is additionally
    checked against Theorem I's essential-fairness envelope
    (1/3, sqrt(3n)). *)

type config = {
  n_points : int list;  (** TCP flow counts (= RLA receiver counts). *)
  duration : float;
  warmup : float;
  seed : int;
  share : float;  (** Bottleneck provisioning per sender (pkts/s). *)
  bins : int;  (** Solver histogram resolution. *)
  tolerance : float;  (** Acceptance band on relative errors. *)
}

val default_config : config
(** n in {16, 32, 64}, 640 s runs with 100 s warmup, 15% tolerance.
    The long horizon is needed by the fairness ratio: the RLA window
    is a single stochastic multiplicative-cut process (it does not
    average out with n the way the TCP population does), so the
    time-averaged ratio converges only over hundreds of loss events. *)

type point = {
  n : int;
  sim_queue : float;  (** Sampled backlog, packets. *)
  mf_queue : float;
  queue_err : float;  (** Relative errors vs the simulation. *)
  sim_drop : float;
  mf_drop : float;
  drop_err : float;
  sim_ratio : float;
  mf_ratio : float;
  ratio_err : float;
  envelope : float * float;
  envelope_ok : bool;  (** Both ratios inside the Theorem I bounds. *)
  within_tol : bool;  (** All three relative errors under tolerance. *)
}

type result = { config : config; points : point list; pass : bool }

val run : ?config:config -> unit -> result

val print : Format.formatter -> result -> unit
