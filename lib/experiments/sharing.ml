type config = {
  gateway : Scenario.gateway;
  case : Tree.case;
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
  share : float;
  phase_jitter : bool option;
  ecn : bool;
}

let default_config ~gateway ~case =
  {
    gateway;
    case;
    duration = 300.0;
    warmup = 100.0;
    seed = 1;
    (* The paper's evaluation pins num_trouble_rcvr to the receiver
       count ("all receivers are troubled receivers"). *)
    rla_params =
      { Rla.Params.default with Rla.Params.trouble_counting = Rla.Params.All_receivers };
    share = 100.0;
    phase_jitter = None;
    ecn = false;
  }

type tcp_flow = {
  leaf : Net.Packet.addr;
  congested : bool;
  snap : Tcp.Sender.snapshot;
}

type group_stat = { worst : int; best : int; average : float }

type result = {
  config : config;
  rla : Rla.Sender.snapshot;
  tcps : tcp_flow list;
  wtcp : Tcp.Sender.snapshot;
  btcp : Tcp.Sender.snapshot;
  n_receivers : int;
  ratio : float;
  jain : float;
  bounds : float * float;
  essentially_fair : bool;
  rla_signals_congested : group_stat;
  rla_signals_rest : group_stat option;
  tcp_cuts_congested : group_stat;
  tcp_cuts_rest : group_stat option;
}

let group_stat = function
  | [] -> { worst = 0; best = 0; average = 0.0 }
  | counts ->
      let worst = List.fold_left Stdlib.max min_int counts in
      let best = List.fold_left Stdlib.min max_int counts in
      let sum = List.fold_left ( + ) 0 counts in
      {
        worst;
        best;
        average = float_of_int sum /. float_of_int (List.length counts);
      }

let split_by_congestion ~congested pairs =
  let in_group, rest =
    List.partition (fun (leaf, _) -> List.mem leaf congested) pairs
  in
  (List.map snd in_group, List.map snd rest)

type session = {
  tree : Tree.t;
  net : Net.Network.t;
  rla : Rla.Sender.t;
  tcps : (Net.Packet.addr * Tcp.Sender.t) list;
}

let setup ?registry config =
  if config.duration <= config.warmup then
    invalid_arg "Sharing.run: duration must exceed warmup";
  let tree =
    Tree.build ~seed:config.seed ~gateway:config.gateway ~case:config.case
      ~share:config.share ?phase_jitter:config.phase_jitter ~ecn:config.ecn ()
  in
  let net = tree.Tree.net in
  Scenario.observe ?registry net;
  let leaves = Array.to_list tree.Tree.leaves in
  let rla =
    Rla.Sender.create ~net ~src:tree.Tree.root ~receivers:leaves
      ~params:config.rla_params ()
  in
  let tcps =
    List.map
      (fun leaf -> (leaf, Tcp.Sender.create ~net ~src:tree.Tree.root ~dst:leaf ()))
      leaves
  in
  { tree; net; rla; tcps }

let start_measurement (s : session) =
  Rla.Sender.reset_measurement s.rla;
  List.iter (fun (_, tcp) -> Tcp.Sender.reset_measurement tcp) s.tcps

let measure ({ tree; rla; tcps; _ } : session) config =
  let rla_snap = Rla.Sender.snapshot rla in
  let congested = tree.Tree.congested_leaves in
  let tcp_flows =
    List.map
      (fun (leaf, tcp) ->
        { leaf; congested = List.mem leaf congested; snap = Tcp.Sender.snapshot tcp })
      tcps
  in
  let by_throughput =
    List.sort
      (fun a b ->
        Float.compare a.snap.Tcp.Sender.throughput b.snap.Tcp.Sender.throughput)
      tcp_flows
  in
  let wtcp, btcp =
    match (by_throughput, List.rev by_throughput) with
    | lo :: _, hi :: _ -> (lo.snap, hi.snap)
    | _ -> invalid_arg "Sharing.run: no TCP flows"
  in
  let n = List.length tcps in
  (* Fairness is about bandwidth share on the bottleneck, so the ratio
     compares send rates (new data + retransmissions), as the paper's
     tables do. *)
  let ratio =
    Rla.Fairness.measured_ratio ~rla_throughput:rla_snap.Rla.Sender.send_rate
      ~tcp_throughput:wtcp.Tcp.Sender.send_rate
  in
  (* Jain's index over all n+1 competing send rates (RLA + every TCP):
     a single summary of how evenly the whole population shares, next
     to the worst-case ratio the theorems bound. *)
  let jain =
    Rla.Fairness.jain
      (rla_snap.Rla.Sender.send_rate
      :: List.map (fun f -> f.snap.Tcp.Sender.send_rate) tcp_flows)
  in
  let fairness_gateway = Scenario.to_fairness_gateway config.gateway in
  let bounds = Rla.Fairness.essential_bounds fairness_gateway ~n in
  let essentially_fair =
    Rla.Fairness.is_essentially_fair fairness_gateway ~n
      ~rla_throughput:rla_snap.Rla.Sender.send_rate
      ~tcp_throughput:wtcp.Tcp.Sender.send_rate
  in
  let rla_cong, rla_rest =
    split_by_congestion ~congested rla_snap.Rla.Sender.signals_per_receiver
  in
  let tcp_cong, tcp_rest =
    split_by_congestion ~congested
      (List.map (fun f -> (f.leaf, f.snap.Tcp.Sender.window_cuts)) tcp_flows)
  in
  {
    config;
    rla = rla_snap;
    tcps = tcp_flows;
    wtcp;
    btcp;
    n_receivers = n;
    ratio;
    jain;
    bounds;
    essentially_fair;
    rla_signals_congested = group_stat rla_cong;
    rla_signals_rest =
      (if rla_rest = [] then None else Some (group_stat rla_rest));
    tcp_cuts_congested = group_stat tcp_cong;
    tcp_cuts_rest =
      (if tcp_rest = [] then None else Some (group_stat tcp_rest));
  }

let run_with_net ?registry config =
  let session = setup ?registry config in
  Net.Network.run_until session.net config.warmup;
  start_measurement session;
  Net.Network.run_until session.net config.duration;
  (session.net, measure session config)

let run ?registry config = snd (run_with_net ?registry config)

let case_config ~gateway ~case_index ?duration ?warmup ?seed () =
  let base = default_config ~gateway ~case:(Tree.case_of_index case_index) in
  {
    base with
    duration = Option.value duration ~default:base.duration;
    warmup = Option.value warmup ~default:base.warmup;
    seed = Option.value seed ~default:base.seed;
  }

let run_case ~gateway ~case_index ?duration ?warmup ?seed () =
  run (case_config ~gateway ~case_index ?duration ?warmup ?seed ())

let job ~label config = Runner.Job.create ~label (fun () -> run_with_net config)

let sweep ~gateway ~case_indices ?duration ?warmup ?(seeds = [ 1 ]) ?jobs () =
  let jobs_list =
    List.concat_map
      (fun case_index ->
        List.map
          (fun seed ->
            job
              ~label:(Printf.sprintf "case%d/seed%d" case_index seed)
              (case_config ~gateway ~case_index ?duration ?warmup ~seed ()))
          seeds)
      case_indices
  in
  Runner.Pool.run ?jobs jobs_list
