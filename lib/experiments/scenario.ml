type gateway = Droptail | Red

let gateway_name = function Droptail -> "drop-tail" | Red -> "RED"

let gateway_of_string s =
  match String.lowercase_ascii s with
  | "droptail" | "drop-tail" | "tail" -> Some Droptail
  | "red" -> Some Red
  | _ -> None

let packet_size = 1000

let queue_kind ~gateway ~mu_pkts ~ecn =
  match gateway with
  | Droptail -> Net.Queue_disc.Droptail
  | Red ->
      let mean_pkt_time = 1.0 /. mu_pkts in
      Net.Queue_disc.Red_gateway
        { (Net.Red.default_params ~mean_pkt_time) with Net.Red.ecn }

let link_config ~gateway ~mu_pkts ~delay ?(buffer = 20) ?phase_jitter
    ?(ecn = false) () =
  if mu_pkts <= 0.0 then invalid_arg "Scenario.link_config: bad capacity";
  let phase_jitter =
    match phase_jitter with
    | Some b -> b
    | None -> ( match gateway with Droptail -> true | Red -> false)
  in
  {
    Net.Link.bandwidth_bps = mu_pkts *. float_of_int (packet_size * 8);
    prop_delay = delay;
    queue = queue_kind ~gateway ~mu_pkts ~ecn;
    capacity = buffer;
    phase_jitter;
  }

let fast_link_config ~gateway ~delay ?(buffer = 20) ?phase_jitter () =
  let mu_pkts = 100.0e6 /. float_of_int (packet_size * 8) in
  link_config ~gateway ~mu_pkts ~delay ~buffer ?phase_jitter ()

let to_fairness_gateway = function
  | Droptail -> Rla.Fairness.Droptail
  | Red -> Rla.Fairness.Red

(* The one-flag observability opt-in: call with the network right after
   topology build and before senders are created, so links retrofit and
   senders pick the registry up at creation time. *)
let observe ?registry net =
  match registry with
  | None -> ()
  | Some reg -> Net.Network.set_registry net (Some reg)
