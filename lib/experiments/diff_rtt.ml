type config = {
  gateway : Scenario.gateway;
  case : Tree.case;
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
  share : float;
}

let default_config ~case_index =
  let case =
    match case_index with
    | 1 -> Tree.L2_all
    | 2 -> Tree.L3_all
    | n ->
        invalid_arg
          (Printf.sprintf "Diff_rtt.default_config: case %d not in {1, 2}" n)
  in
  {
    gateway = Scenario.Droptail;
    case;
    duration = 300.0;
    warmup = 100.0;
    seed = 1;
    rla_params =
      Rla.Params.generalized
        { Rla.Params.default with Rla.Params.trouble_counting = Rla.Params.All_receivers };
    share = 100.0;
  }

type result = {
  config : config;
  rla : Rla.Sender.snapshot;
  wtcp : Tcp.Sender.snapshot;
  btcp : Tcp.Sender.snapshot;
  n_receivers : int;
  ratio : float;
}

let run_with_net config =
  if config.duration <= config.warmup then
    invalid_arg "Diff_rtt.run: duration must exceed warmup";
  let tree =
    Tree.build ~seed:config.seed ~gateway:config.gateway ~case:config.case
      ~share:config.share ~receivers_include_g3:true ()
  in
  let net = tree.Tree.net in
  let receivers = Tree.receivers tree ~include_g3:true in
  let rla =
    Rla.Sender.create ~net ~src:tree.Tree.root ~receivers
      ~params:config.rla_params ()
  in
  (* Background TCPs run to the leaves only: the paper's figure-10 TCP
     rows all show leaf-level round-trip times. *)
  let tcps =
    List.map
      (fun dst -> Tcp.Sender.create ~net ~src:tree.Tree.root ~dst ())
      (Tree.receivers tree ~include_g3:false)
  in
  Net.Network.run_until net config.warmup;
  Rla.Sender.reset_measurement rla;
  List.iter Tcp.Sender.reset_measurement tcps;
  Net.Network.run_until net config.duration;
  let rla_snap = Rla.Sender.snapshot rla in
  let snaps =
    List.sort
      (fun a b -> Float.compare a.Tcp.Sender.throughput b.Tcp.Sender.throughput)
      (List.map Tcp.Sender.snapshot tcps)
  in
  let wtcp, btcp =
    match (snaps, List.rev snaps) with
    | lo :: _, hi :: _ -> (lo, hi)
    | _ -> invalid_arg "Diff_rtt.run: no TCP flows"
  in
  ( net,
    {
      config;
      rla = rla_snap;
      wtcp;
      btcp;
      n_receivers = List.length receivers;
      ratio =
        Rla.Fairness.measured_ratio
          ~rla_throughput:rla_snap.Rla.Sender.send_rate
          ~tcp_throughput:wtcp.Tcp.Sender.send_rate;
    } )

let run config = snd (run_with_net config)

let sweep ~case_indices ?duration ?warmup ?seed ?jobs () =
  let jobs_list =
    List.map
      (fun case_index ->
        let base = default_config ~case_index in
        let config =
          {
            base with
            duration = Option.value duration ~default:base.duration;
            warmup = Option.value warmup ~default:base.warmup;
            seed = Option.value seed ~default:base.seed;
          }
        in
        Runner.Job.create
          ~label:(Printf.sprintf "diff_rtt/case%d/seed%d" case_index config.seed)
          (fun () -> run_with_net config))
      case_indices
  in
  Runner.Pool.run ?jobs jobs_list
