type gen = {
  gen_seed : int;
  outage_rate : float;
  churn_rate : float;
  flow_rate : float;
}

let default_gen = { gen_seed = 1; outage_rate = 0.01; churn_rate = 0.02; flow_rate = 0.01 }

type spec =
  | No_faults
  | Default_script
  | Scripted of Faults.Timeline.t
  | Generated of gen

type config = { sharing : Sharing.config; faults : spec }

let default_config ~gateway ~case =
  { sharing = Sharing.default_config ~gateway ~case; faults = Default_script }

type epoch = {
  t_start : float;
  t_end : float;
  rla_send_rate : float;
  wtcp_send_rate : float;
  ratio : float;
  jain : float;
  bounds : float * float;
  essentially_fair : bool;
  n_active : int;
  events : string list;
}

type result = {
  config : config;
  sharing : Sharing.result;
  epochs : epoch list;
  timeline : Faults.Timeline.t;
  injected : int;
  skipped : int;
  outages : int;
  downtime : float;
  flows_started : int;
  flows_stopped : int;
}

(* The default script exercises every fault class inside the
   measurement window, scaled to its length: one leaf-link outage, one
   leave + rejoin, one competing short-lived TCP. *)
let default_timeline (tree : Tree.t) ~warmup ~duration =
  let at f = warmup +. (f *. (duration -. warmup)) in
  let leaf i = tree.Tree.leaves.(i) in
  let leaf_link i = (tree.Tree.g3.(i / 3), leaf i) in
  Faults.Timeline.scripted
    [
      (at 0.10, Faults.Timeline.Receiver_leave (leaf 6));
      (at 0.20, Faults.Timeline.Link_down (leaf_link 0));
      (at 0.30, Faults.Timeline.Flow_start { id = 1; dst = leaf 1 });
      (at 0.45, Faults.Timeline.Link_up (leaf_link 0));
      (at 0.55, Faults.Timeline.Receiver_join (leaf 6));
      (at 0.70, Faults.Timeline.Flow_stop { id = 1 });
    ]

let generated_timeline (tree : Tree.t) ~warmup ~duration g =
  let leaf i = tree.Tree.leaves.(i) in
  let leaf_link i = (tree.Tree.g3.(i / 3), leaf i) in
  let params =
    {
      (Faults.Timeline.default_gen ~start:warmup ~horizon:duration) with
      Faults.Timeline.outage_links = List.init 6 leaf_link;
      outage_rate = g.outage_rate;
      churn_receivers = Array.to_list tree.Tree.leaves;
      churn_rate = g.churn_rate;
      flow_dsts = Array.to_list tree.Tree.leaves;
      flow_rate = g.flow_rate;
    }
  in
  Faults.Timeline.generate ~rng:(Sim.Rng.create g.gen_seed) params

let resolve_timeline (config : config) (tree : Tree.t) =
  let warmup = config.sharing.Sharing.warmup in
  let duration = config.sharing.Sharing.duration in
  match config.faults with
  | No_faults -> Faults.Timeline.scripted []
  | Default_script -> default_timeline tree ~warmup ~duration
  | Scripted t -> t
  | Generated g -> generated_timeline tree ~warmup ~duration g

(* Epoch boundaries: every distinct fault time strictly inside the
   measurement window, plus the end of the run. *)
let boundaries timeline ~warmup ~duration =
  let inner =
    Faults.Timeline.entries timeline
    |> List.filter_map (fun { Faults.Timeline.time; _ } ->
           if time > warmup && time < duration then Some time else None)
    |> List.sort_uniq Float.compare
  in
  inner @ [ duration ]

let run_with_net ?registry (config : config) =
  let session = Sharing.setup ?registry config.sharing in
  let net = session.Sharing.net in
  let rla = session.Sharing.rla in
  let warmup = config.sharing.Sharing.warmup in
  let duration = config.sharing.Sharing.duration in
  let timeline = resolve_timeline config session.Sharing.tree in
  let flows_started = ref 0 in
  let flows_stopped = ref 0 in
  let live_flows : (int, Tcp.Sender.t) Hashtbl.t = Hashtbl.create 8 in
  let injector =
    if Faults.Timeline.is_empty timeline then None
    else
      let handlers =
        {
          Faults.Injector.on_receiver_leave =
            (fun a -> Rla.Sender.drop_receiver rla a);
          on_receiver_join =
            (fun a ->
              match Rla.Sender.add_receiver rla a with
              | ok -> ok
              | exception Invalid_argument _ -> false);
          on_flow_start =
            (fun ~id ~dst ->
              if Hashtbl.mem live_flows id then false
              else
                match Net.Network.node net dst with
                | exception Not_found -> false
                | _ ->
                    let tcp =
                      Tcp.Sender.create ~net ~src:session.Sharing.tree.Tree.root
                        ~dst ()
                    in
                    Hashtbl.replace live_flows id tcp;
                    incr flows_started;
                    true);
          on_flow_stop =
            (fun ~id ->
              match Hashtbl.find_opt live_flows id with
              | None -> false
              | Some tcp ->
                  Tcp.Sender.stop tcp;
                  Hashtbl.remove live_flows id;
                  incr flows_stopped;
                  true);
          on_rst_inject = (fun ~flow:_ ~dst:_ ~seq:_ -> false);
          on_data_inject = (fun ~flow:_ ~dst:_ ~seq:_ -> false);
          membership =
            (fun () -> List.length (Rla.Sender.active_receivers rla));
        }
      in
      Some (Faults.Injector.install ~net ~handlers timeline)
  in
  Net.Network.run_until net warmup;
  Sharing.start_measurement session;
  (* Cumulative packets-on-the-wire since the warmup reset, recovered
     from each flow's rate snapshot (rate x elapsed); differencing
     consecutive boundaries gives exact per-epoch rates.  Snapshots are
     passive, so epoch accounting cannot perturb the run. *)
  let cumulative t_now =
    let span = t_now -. warmup in
    let rla_cum = (Rla.Sender.snapshot rla).Rla.Sender.send_rate *. span in
    let tcp_cums =
      List.map
        (fun (leaf, tcp) ->
          (leaf, (Tcp.Sender.snapshot tcp).Tcp.Sender.send_rate *. span))
        session.Sharing.tcps
    in
    (rla_cum, tcp_cums)
  in
  let fairness_gateway =
    Scenario.to_fairness_gateway config.sharing.Sharing.gateway
  in
  let epoch_events ~t_start ~t_end =
    match injector with
    | None -> []
    | Some inj ->
        Faults.Injector.applied inj
        |> List.filter_map (fun { Faults.Injector.time; event; ok } ->
               if time > t_start && time <= t_end then
                 Some
                   (if ok then Faults.Timeline.event_to_string event
                    else Faults.Timeline.event_to_string event ^ " (skipped)")
               else None)
  in
  let prev = ref (warmup, 0.0, List.map (fun (l, _) -> (l, 0.0)) session.Sharing.tcps) in
  let epochs =
    List.map
      (fun b ->
        Net.Network.run_until net b;
        let rla_cum, tcp_cums = cumulative b in
        let t_prev, rla_prev, tcp_prevs = !prev in
        let dt = b -. t_prev in
        (* Clamp at zero: differencing two rate x span products can go
           epsilon-negative for a flow that was idle all epoch. *)
        let rla_send_rate = Float.max 0.0 ((rla_cum -. rla_prev) /. dt) in
        let tcp_rates =
          List.map2
            (fun (_, cum) (_, cum_prev) ->
              Float.max 0.0 ((cum -. cum_prev) /. dt))
            tcp_cums tcp_prevs
        in
        let wtcp_send_rate = List.fold_left Float.min infinity tcp_rates in
        let jain = Rla.Fairness.jain (rla_send_rate :: tcp_rates) in
        let n_active = List.length (Rla.Sender.active_receivers rla) in
        let ratio =
          Rla.Fairness.measured_ratio ~rla_throughput:rla_send_rate
            ~tcp_throughput:wtcp_send_rate
        in
        let bounds = Rla.Fairness.essential_bounds fairness_gateway ~n:n_active in
        let essentially_fair =
          Rla.Fairness.is_essentially_fair fairness_gateway ~n:n_active
            ~rla_throughput:rla_send_rate ~tcp_throughput:wtcp_send_rate
        in
        prev := (b, rla_cum, tcp_cums);
        {
          t_start = t_prev;
          t_end = b;
          rla_send_rate;
          wtcp_send_rate;
          ratio;
          jain;
          bounds;
          essentially_fair;
          n_active;
          events = epoch_events ~t_start:t_prev ~t_end:b;
        })
      (boundaries timeline ~warmup ~duration)
  in
  let sharing = Sharing.measure session config.sharing in
  ( net,
    {
      config;
      sharing;
      epochs;
      timeline;
      injected =
        (match injector with None -> 0 | Some i -> Faults.Injector.injected i);
      skipped =
        (match injector with None -> 0 | Some i -> Faults.Injector.skipped i);
      outages =
        (match injector with None -> 0 | Some i -> Faults.Injector.outages i);
      downtime =
        (match injector with None -> 0.0 | Some i -> Faults.Injector.downtime i);
      flows_started = !flows_started;
      flows_stopped = !flows_stopped;
    } )

let run ?registry config = snd (run_with_net ?registry config)

let job ~label config = Runner.Job.create ~label (fun () -> run_with_net config)

let case_config ~gateway ~case_index ?duration ?warmup ?seed
    ?(faults = Default_script) () =
  let base =
    Sharing.default_config ~gateway ~case:(Tree.case_of_index case_index)
  in
  {
    sharing =
      {
        base with
        Sharing.duration = Option.value duration ~default:base.Sharing.duration;
        warmup = Option.value warmup ~default:base.Sharing.warmup;
        seed = Option.value seed ~default:base.Sharing.seed;
      };
    faults;
  }

let sweep ~gateway ~case_indices ?duration ?warmup ?(seeds = [ 1 ]) ?faults
    ?jobs () =
  let jobs_list =
    List.concat_map
      (fun case_index ->
        List.map
          (fun seed ->
            job
              ~label:(Printf.sprintf "churn/case%d/seed%d" case_index seed)
              (case_config ~gateway ~case_index ?duration ?warmup ~seed ?faults
                 ()))
          seeds)
      case_indices
  in
  Runner.Pool.run ?jobs jobs_list

let print ppf (result : result) =
  let config = result.config.sharing in
  Fmt.pf ppf "@[<v>Churn — %s gateways, %s, %g s (warmup %g s), seed %d@,"
    (match config.Sharing.gateway with
    | Scenario.Droptail -> "drop-tail"
    | Scenario.Red -> "RED")
    (Tree.case_name config.Sharing.case)
    config.Sharing.duration config.Sharing.warmup config.Sharing.seed;
  Fmt.pf ppf
    "faults: %d injected, %d skipped, %d outages, %.3g s downtime, %d/%d \
     flows started/stopped@,@,"
    result.injected result.skipped result.outages result.downtime
    result.flows_started result.flows_stopped;
  Fmt.pf ppf "%-16s %6s %9s %9s %7s %6s %13s %5s  %s@,"
    "epoch [s]" "n_act" "rla p/s" "wtcp p/s" "ratio" "jain" "bounds" "fair?"
    "events";
  List.iter
    (fun e ->
      let lo, hi = e.bounds in
      Fmt.pf ppf
        "%7.1f-%-8.1f %6d %9.2f %9.2f %7.2f %6.3f [%4.2f,%6.2f] %5s  %s@,"
        e.t_start e.t_end e.n_active e.rla_send_rate e.wtcp_send_rate e.ratio
        e.jain lo hi
        (if e.essentially_fair then "yes" else "no")
        (String.concat "; " e.events))
    result.epochs;
  Fmt.pf ppf "@,whole-window ratio %.2f (%s)@]@."
    result.sharing.Sharing.ratio
    (if result.sharing.Sharing.essentially_fair then "essentially fair"
     else "outside bounds")

let to_json (result : result) =
  let open Runner.Json in
  let epoch e =
    let lo, hi = e.bounds in
    Obj
      [
        ("t_start", Float e.t_start);
        ("t_end", Float e.t_end);
        ("rla_send_rate", Float e.rla_send_rate);
        ("wtcp_send_rate", Float e.wtcp_send_rate);
        ("ratio", Float e.ratio);
        ("jain", Float e.jain);
        ("bound_lo", Float lo);
        ("bound_hi", Float hi);
        ("essentially_fair", Bool e.essentially_fair);
        ("n_active", Int e.n_active);
        ("events", List (List.map (fun s -> String s) e.events));
      ]
  in
  Obj
    [
      ("experiment", String "churn");
      ("gateway",
       String
         (match result.config.sharing.Sharing.gateway with
         | Scenario.Droptail -> "droptail"
         | Scenario.Red -> "red"));
      ("case", String (Tree.case_name result.config.sharing.Sharing.case));
      ("duration", Float result.config.sharing.Sharing.duration);
      ("warmup", Float result.config.sharing.Sharing.warmup);
      ("seed", Int result.config.sharing.Sharing.seed);
      ("timeline", String (Faults.Timeline.to_spec result.timeline));
      ("injected", Int result.injected);
      ("skipped", Int result.skipped);
      ("outages", Int result.outages);
      ("downtime_s", Float result.downtime);
      ("flows_started", Int result.flows_started);
      ("flows_stopped", Int result.flows_stopped);
      ("whole_window_ratio", Float result.sharing.Sharing.ratio);
      ("whole_window_fair", Bool result.sharing.Sharing.essentially_fair);
      ("epochs", List (List.map epoch result.epochs));
    ]
