(* Head-to-head validation of the mean-field solver against the
   packet-level simulator on overlapping system sizes.

   For each n the two tiers see the same scenario: n TCP flows plus an
   n-receiver RLA session sharing one RED bottleneck provisioned at
   100 pkt/s per sender.  The packet side measures the bottleneck
   backlog (sampled), the drop fraction, and the RLA / mean-TCP
   send-rate ratio; the solver side predicts the same three from the
   ODE system.  Agreement within 15% on queue, drop and ratio — with
   the ratio inside Theorem I's (1/3, sqrt(3n)) envelope — is the
   acceptance bar for the analysis tier. *)

type config = {
  n_points : int list;  (** TCP flow counts (= RLA receiver counts). *)
  duration : float;
  warmup : float;
  seed : int;
  share : float;  (** Bottleneck provisioning per sender (pkts/s). *)
  bins : int;  (** Solver histogram resolution. *)
  tolerance : float;  (** Acceptance band on relative errors. *)
}

let default_config =
  {
    n_points = [ 16; 32; 64 ];
    duration = 640.0;
    warmup = 100.0;
    seed = 1;
    share = 100.0;
    bins = 64;
    tolerance = 0.15;
  }

type point = {
  n : int;
  sim_queue : float;
  mf_queue : float;
  queue_err : float;
  sim_drop : float;
  mf_drop : float;
  drop_err : float;
  sim_ratio : float;
  mf_ratio : float;
  ratio_err : float;
  envelope : float * float;
  envelope_ok : bool;  (** Both ratios inside the Theorem I bounds. *)
  within_tol : bool;  (** All three relative errors under tolerance. *)
}

type result = { config : config; points : point list; pass : bool }

let rel_err ~sim ~mf =
  if Float.abs sim <= 1e-12 then Float.abs (mf -. sim)
  else Float.abs (mf -. sim) /. Float.abs sim

(* One-way propagation: 20 ms source -> gateway, 40 ms gateway ->
   leaf, as in the sharing experiments. *)
let src_delay = 0.02

let leaf_delay = 0.04

let base_rtt ~mu = (2.0 *. (src_delay +. leaf_delay)) +. (1.0 /. mu)

(* Mean-field convergence needs the RED thresholds and the buffer to
   scale with the system, not just the capacity: with fixed thresholds
   the per-packet queue fluctuations never become small relative to the
   probabilistic band and the packet sim stays in a bursty regime the
   fluid limit cannot describe.  Both tiers therefore use thresholds
   and buffer proportional to n+1 (capacity is already 100 pkt/s per
   sender).

   The drop profile is deliberately gentle — a wide probabilistic band
   with a small [max_p] — which places the closed loop inside
   Reynier's stability region (checked by [Meanfield.Stability]): both
   tiers then relax to the same fixed point instead of tracing
   limit cycles whose time averages are fragile to compare. *)
let red_scaled ~senders ~mu =
  let nf = float_of_int senders in
  {
    (Net.Red.default_params ~mean_pkt_time:(1.0 /. mu)) with
    Net.Red.min_th = 0.625 *. nf;
    max_th = 76.0 *. nf;
    max_p = 0.005;
  }

let buffer_scaled ~senders = 100.0 *. float_of_int senders

let run_sim config ~n =
  let mu = config.share *. float_of_int (n + 1) in
  let net = Net.Network.create ~seed:config.seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init n (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  let bottleneck_config =
    {
      Net.Link.bandwidth_bps = mu *. float_of_int (Scenario.packet_size * 8);
      prop_delay = src_delay;
      queue = Net.Queue_disc.Red_gateway (red_scaled ~senders:(n + 1) ~mu);
      capacity = int_of_float (buffer_scaled ~senders:(n + 1));
      phase_jitter = false;
    }
  in
  let bottleneck, _ = Net.Network.duplex net s hub bottleneck_config in
  List.iter
    (fun leaf ->
      ignore
        (Net.Network.duplex net hub leaf
           (Scenario.fast_link_config ~gateway:Scenario.Red ~delay:leaf_delay ())))
    leaves;
  Net.Network.install_routes net;
  let rla_params =
    { Rla.Params.default with Rla.Params.trouble_counting = Rla.Params.All_receivers }
  in
  let rla =
    Rla.Sender.create ~net ~src:s ~receivers:leaves ~params:rla_params ()
  in
  let tcps =
    List.map (fun leaf -> Tcp.Sender.create ~net ~src:s ~dst:leaf ()) leaves
  in
  Net.Network.run_until net config.warmup;
  Rla.Sender.reset_measurement rla;
  List.iter Tcp.Sender.reset_measurement tcps;
  Net.Link.reset_stats bottleneck;
  (* Sample the bottleneck backlog (queue + packet in service) on a
     fixed clock so the time average matches the solver's fluid
     queue. *)
  let sched = Net.Network.scheduler net in
  let samples = ref 0 and backlog = ref 0.0 in
  let rec sample () =
    incr samples;
    backlog :=
      !backlog
      +. float_of_int (Net.Link.qlen bottleneck)
      +. (if Net.Link.busy bottleneck then 1.0 else 0.0);
    if Sim.Scheduler.now sched +. 0.05 < config.duration then
      ignore (Sim.Scheduler.schedule_after sched 0.05 sample)
  in
  ignore (Sim.Scheduler.schedule_after sched 0.05 sample);
  Net.Network.run_until net config.duration;
  let stats = Net.Link.stats bottleneck in
  let queue =
    if !samples = 0 then 0.0 else !backlog /. float_of_int !samples
  in
  let drop =
    if stats.Net.Link.offered = 0 then 0.0
    else float_of_int stats.Net.Link.dropped /. float_of_int stats.Net.Link.offered
  in
  let rla_rate = (Rla.Sender.snapshot rla).Rla.Sender.send_rate in
  let tcp_rates =
    List.map (fun t -> (Tcp.Sender.snapshot t).Tcp.Sender.send_rate) tcps
  in
  let tcp_mean =
    List.fold_left ( +. ) 0.0 tcp_rates /. float_of_int (List.length tcp_rates)
  in
  let ratio = if tcp_mean <= 0.0 then infinity else rla_rate /. tcp_mean in
  (queue, drop, ratio)

let solver_params config ~n =
  let mu = config.share *. float_of_int (n + 1) in
  let rtt = base_rtt ~mu in
  let red = red_scaled ~senders:(n + 1) ~mu in
  Meanfield.Params.make ~capacity:mu
    ~buffer:(buffer_scaled ~senders:(n + 1))
    ~red:
      {
        Meanfield.Params.min_th = red.Net.Red.min_th;
        max_th = red.Net.Red.max_th;
        w_q = red.Net.Red.w_q;
        max_p = red.Net.Red.max_p;
      }
    ~rla:{ Meanfield.Params.receivers = n; rtt }
    ~bins:config.bins ~t_max:80.0 ~settle:40.0
    [ { Meanfield.Params.flows = n; rtt } ]

let run_point config ~n =
  let sim_queue, sim_drop, sim_ratio = run_sim config ~n in
  let sol = Meanfield.Solver.run (solver_params config ~n) in
  let mf_queue = sol.Meanfield.Solver.queue_mean in
  let mf_drop = sol.Meanfield.Solver.drop_mean in
  let mf_ratio = sol.Meanfield.Solver.fairness_ratio in
  let queue_err = rel_err ~sim:sim_queue ~mf:mf_queue in
  let drop_err = rel_err ~sim:sim_drop ~mf:mf_drop in
  let ratio_err = rel_err ~sim:sim_ratio ~mf:mf_ratio in
  let ((lo, hi) as envelope) = Rla.Fairness.essential_bounds Rla.Fairness.Red ~n in
  let inside r = r > lo && r < hi in
  {
    n;
    sim_queue;
    mf_queue;
    queue_err;
    sim_drop;
    mf_drop;
    drop_err;
    sim_ratio;
    mf_ratio;
    ratio_err;
    envelope;
    envelope_ok = inside sim_ratio && inside mf_ratio;
    within_tol =
      queue_err <= config.tolerance
      && drop_err <= config.tolerance
      && ratio_err <= config.tolerance;
  }

let run ?(config = default_config) () =
  if config.duration <= config.warmup then
    invalid_arg "Meanfield_validate.run: duration must exceed warmup";
  if config.n_points = [] then
    invalid_arg "Meanfield_validate.run: no n points";
  let points = List.map (fun n -> run_point config ~n) config.n_points in
  let pass = List.for_all (fun p -> p.within_tol && p.envelope_ok) points in
  { config; points; pass }

let print ppf result =
  Format.fprintf ppf
    "Mean-field vs packet-level (tolerance %.0f%%)@.\
     %-6s %10s %10s %7s %10s %10s %7s %8s %8s %7s %5s@."
    (100.0 *. result.config.tolerance)
    "n" "sim-queue" "mf-queue" "err%" "sim-drop" "mf-drop" "err%" "sim-wr"
    "mf-wr" "err%" "ok";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "%-6d %10.2f %10.2f %6.1f%% %10.5f %10.5f %6.1f%% %8.3f %8.3f %6.1f%% %5s@."
        p.n p.sim_queue p.mf_queue (100.0 *. p.queue_err) p.sim_drop p.mf_drop
        (100.0 *. p.drop_err) p.sim_ratio p.mf_ratio (100.0 *. p.ratio_err)
        (if p.within_tol && p.envelope_ok then "yes" else "NO"))
    result.points;
  Format.fprintf ppf "overall: %s@."
    (if result.pass then "PASS" else "FAIL")
