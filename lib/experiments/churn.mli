(** The {!Sharing} experiment under deterministic fault injection.

    Runs the figure-6 tertiary tree — one RLA session to all 27 leaves
    plus one background TCP per leaf — while a {!Faults.Timeline}
    perturbs it: link outages and repairs, runtime bandwidth/delay
    changes, receiver leave/join (driving [pthresh] recomputation
    through {!Rla.Sender.drop_receiver}/{!Rla.Sender.add_receiver}),
    and competing-flow churn.  The run is cut into {e epochs} at each
    fault time and the essential-fairness ratio is reported per epoch,
    so one run shows how fairness degrades during an outage and
    recovers after it.

    Determinism: the timeline is fixed before the run and the injector
    draws no randomness, so for a given seed the result — including
    every epoch number — is bit-identical across repeats and worker
    counts.  With [faults = No_faults] the run is byte-identical to
    {!Sharing.run} on the same config. *)

type gen = {
  gen_seed : int;  (** Seed of the generation stream (independent of the
                       simulation seed). *)
  outage_rate : float;  (** Link outages per second (Poisson). *)
  churn_rate : float;  (** Receiver leaves per second. *)
  flow_rate : float;  (** Competing-flow starts per second. *)
}

val default_gen : gen

type spec =
  | No_faults  (** Control: identical to {!Sharing.run}. *)
  | Default_script
      (** One leaf-link outage, one leave + rejoin, one short-lived
          competing TCP — all scaled into the measurement window. *)
  | Scripted of Faults.Timeline.t
  | Generated of gen  (** Poisson churn drawn from [gen_seed]. *)

type config = { sharing : Sharing.config; faults : spec }

val default_config : gateway:Scenario.gateway -> case:Tree.case -> config

type epoch = {
  t_start : float;
  t_end : float;
  rla_send_rate : float;  (** Packets on the wire per second, this epoch. *)
  wtcp_send_rate : float;  (** Worst background TCP, this epoch. *)
  ratio : float;
  jain : float;
      (** Jain's index over the RLA session and every background TCP's
          per-epoch rate (1 = perfectly equal shares). *)
  bounds : float * float;
      (** Essential-fairness bounds for the epoch's membership. *)
  essentially_fair : bool;
  n_active : int;  (** Active RLA receivers at the epoch's end. *)
  events : string list;
      (** Fault events applied during the epoch (skipped ones marked). *)
}

type result = {
  config : config;
  sharing : Sharing.result;  (** Whole-window measurement. *)
  epochs : epoch list;
  timeline : Faults.Timeline.t;
  injected : int;
  skipped : int;
  outages : int;
  downtime : float;
  flows_started : int;
  flows_stopped : int;
}

val run : ?registry:Obs.Registry.t -> config -> result

val run_with_net : ?registry:Obs.Registry.t -> config -> Net.Network.t * result

val job : label:string -> config -> result Runner.Job.t
(** Package one run for a {!Runner.Pool} sweep (the network is built
    inside the closure, so the job is domain-safe). *)

val case_config :
  gateway:Scenario.gateway ->
  case_index:int ->
  ?duration:float ->
  ?warmup:float ->
  ?seed:int ->
  ?faults:spec ->
  unit ->
  config
(** Paper case numbering 1-5; [faults] defaults to {!Default_script}. *)

val sweep :
  gateway:Scenario.gateway ->
  case_indices:int list ->
  ?duration:float ->
  ?warmup:float ->
  ?seeds:int list ->
  ?faults:spec ->
  ?jobs:int ->
  unit ->
  result Runner.Pool.outcome list
(** Every [case x seed] combination on a domain pool; per-run results
    (including epoch tables) are bit-identical for any [jobs] count. *)

val print : Format.formatter -> result -> unit
(** Per-epoch fairness table. *)

val to_json : result -> Runner.Json.t
(** Benchmark payload ([BENCH_churn.json] entry). *)
