(** Hostile-workload suite: the sharing experiment under adversarial
    TCP traffic.

    Reuses the paper's fig-6 population (one RLA session to every
    leaf, one background TCP per leaf) — or a single-network k-ary
    scale tree — and adds one configurable adversary from
    {!Adversary}: a non-backoff constant-rate blaster, an
    ack-division attacker, an optimistic acker hijacking a background
    flow, or a blind RST injector driven through a scripted
    {!Faults.Timeline}.  Every mix is deterministic — no adversary
    draws from any RNG — so runs are byte-identical across repeats
    and [--jobs] counts, and the no-adversary mix runs the exact
    Sharing pipeline (same setup order, same measure), matching its
    goldens to the last bit. *)

type mix = Honest | Nonbackoff | Ackdiv | Optack | Rst

val all_mixes : mix list
(** [Honest; Nonbackoff; Ackdiv; Optack; Rst]. *)

val mix_name : mix -> string
(** "none", "nonbackoff", "ackdiv", "optack", "rst". *)

val mix_of_string : string -> mix option

type topology =
  | Fig6 of Tree.case  (** The paper's 27-leaf tree. *)
  | Kary of { fanout : int; depth : int }
      (** Complete k-ary tree on one event loop (PR 7's scale shape);
          every leaf is a receiver, fanout >= 2, depth >= 2. *)

val topology_name : topology -> string

type config = {
  topology : topology;
  gateway : Scenario.gateway;
  mix : mix;
  duration : float;
  warmup : float;
  seed : int;
  share : float;  (** Soft-bottleneck equal share, pkt/s. *)
  flood_rate : float;  (** Nonbackoff blast rate, pkt/s. *)
  ackdiv_split : int;  (** Acks per data packet for the divider. *)
  optack_lookahead : int;
      (** 0 conceals losses (undetectable); > 0 acks unsent data and
          is counted in the victim's ghost_acks. *)
  rst_count : int;  (** Blind RSTs injected after warmup. *)
  rst_interval : float;  (** Seconds between injections. *)
  rst_strict : bool;
      (** RFC 5961 validation at the victim; [false] models a legacy
          stack that any in-window RST kills. *)
}

val default_config : mix:mix -> config
(** Fig-6 case 3, drop-tail, 300 s / 100 s warmup, seed 1, 100 pkt/s
    shares; flood 400 pkt/s, split 4, lookahead 0, 40 RSTs every 4 s,
    strict RFC 5961. *)

type result = {
  config : config;
  label : string;  (** "<topology>/<mix>". *)
  n_receivers : int;
  rla_rate : float;
  wtcp_rate : float;  (** Worst honest-population TCP send rate. *)
  btcp_rate : float;
  ratio : float;  (** RLA / worst-TCP, the theorem's quantity. *)
  jain_honest : float;  (** Jain over RLA + the background TCPs. *)
  jain_all : float;  (** Same, with the adversary's flow included. *)
  bounds : float * float;
  essentially_fair : bool;
  adv_send_rate : float;  (** Adversary pkt/s on the wire (0 for none/rst). *)
  adv_delivered_rate : float;
  ghost_acks : int;  (** Victim-sender acks dropped by validation (optack). *)
  rst_accepted : int;
  rst_challenged : int;
  rst_dropped : int;
  rst_injected : int;
  victim_closed : bool;  (** An injected RST tore the victim down. *)
}

val run : ?registry:Obs.Registry.t -> config -> result

val run_with_net :
  ?registry:Obs.Registry.t -> config -> Net.Network.t * result

val print : Format.formatter -> result list -> unit

val csv_header : string

val to_csv_row : result -> string
(** One deterministic CSV line (fixed float precision) — the
    hostile-smoke byte-compare artifact. *)

val to_json : result -> Runner.Json.t

val job : label:string -> config -> result Runner.Job.t

val sweep :
  mixes:mix list ->
  case_index:int ->
  ?duration:float ->
  ?warmup:float ->
  ?seeds:int list ->
  ?jobs:int ->
  unit ->
  result Runner.Pool.outcome list
(** Run every [mix x seed] combination of the fig-6 scenario on a
    domain pool; per-run results are bit-identical for any [jobs]. *)
