(** Section 5.2: two overlapping multicast sessions from the same
    sender to the same 27 receivers (case-3 topology by default), plus
    the background TCP per leaf.  The paper reports the two sessions
    splitting the bandwidth almost equally (65.1 / 65.9 pkt/s, windows
    19.9 / 20.1). *)

type config = {
  gateway : Scenario.gateway;
  case : Tree.case;
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
  share : float;
}

val default_config : gateway:Scenario.gateway -> config

type result = {
  config : config;
  session1 : Rla.Sender.snapshot;
  session2 : Rla.Sender.snapshot;
  wtcp : Tcp.Sender.snapshot;
  btcp : Tcp.Sender.snapshot;
  throughput_ratio : float;  (** session1 / session2, in [0, inf). *)
  cwnd_ratio : float;
}

val run : config -> result

val run_seeds :
  gateway:Scenario.gateway ->
  seeds:int list ->
  ?duration:float ->
  ?warmup:float ->
  ?jobs:int ->
  unit ->
  result Runner.Pool.outcome list
(** Replicate the experiment over independent seeds on a domain pool;
    outcomes in [seeds] order, bit-identical for any [jobs] count. *)
