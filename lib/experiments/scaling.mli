(** Receiver-count scaling.

    Section 2.1's minimum requirement for reasonable fairness: the
    multicast session's throughput must not diminish to zero as the
    number of receivers grows (a sender that reacted to {e every}
    congestion signal would collapse like 1/N).  This experiment sweeps
    N receivers on a uniform star whose branches are each shared with
    one TCP flow, and reports the RLA's throughput and fairness ratio
    per N. *)

type config = {
  ns : int list;  (** Receiver counts to sweep. *)
  gateway : Scenario.gateway;
  share : float;  (** Per-branch fair share, pkt/s. *)
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
}

val default_config : config
(** N in 2, 4, 8, 16, 32; drop-tail; 100 pkt/s shares. *)

type point = {
  n : int;
  rla_throughput : float;
  rla_cwnd : float;
  wtcp_throughput : float;
  ratio : float;
  jain : float;
      (** Jain's index over the RLA session and all N competing TCPs
          (1 = perfectly equal shares). *)
  congestion_signals : int;
  window_cuts : int;
}

val run : config -> point list

val print : Format.formatter -> point list -> unit

(** {2 Sharded scaling}

    The 10k-receiver regime is out of reach for one event loop, so the
    sharded variant drives a deep k-ary tree through the conservative
    parallel engine ({!Par.Engine}): the partitioner cuts the slow
    root links (one shard per branch plus the root), every leaf joins
    the RLA session, and one competing TCP runs inside each branch.
    Results are byte-identical for any [workers] value. *)

type sharded_config = {
  fanout : int;
  depth : int;  (** >= 2: the TCP pairs need an interior branch hop. *)
  workers : int;  (** Domains per barrier round; results-invariant. *)
  share : float;  (** Per-branch fair share, pkt/s. *)
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
}

val default_sharded_config : sharded_config
(** Fanout 22, depth 3: 10648 receivers on 11155 nodes across 23
    shards with a 20 ms lookahead. *)

val sharded_topo : sharded_config -> Net.Topo.t

val run_sharded :
  ?checkpoint:float * string ->
  sharded_config ->
  (Par.Scenario.result, Par.Scenario.error) Stdlib.result
(** [checkpoint] is rejected with {!Par.Scenario.Checkpoint_unsupported}
    (sharded runs are not checkpointable). *)

val print_sharded : Format.formatter -> Par.Scenario.result -> unit
