(** The paper's main experiment (figures 7, 8 and 9): one RLA multicast
    session from the tree root to all 27 leaves, plus one background
    TCP connection from the root to every leaf, under one of the five
    bottleneck cases, with drop-tail or RED gateways. *)

type config = {
  gateway : Scenario.gateway;
  case : Tree.case;
  duration : float;  (** Total simulated seconds (paper: 3000). *)
  warmup : float;  (** Discarded prefix (paper: 100). *)
  seed : int;
  rla_params : Rla.Params.t;
  share : float;  (** Soft-bottleneck equal share, pkt/s (paper: 100). *)
  phase_jitter : bool option;
      (** Override the gateway-type default (drop-tail: on, RED: off);
          used by the phase-effect ablation. *)
  ecn : bool;
      (** RED gateways mark instead of dropping (the ECN extension);
          ignored for drop-tail. *)
}

val default_config : gateway:Scenario.gateway -> case:Tree.case -> config
(** 300 s runs with 100 s warm-up — long enough for stable shapes while
    keeping the full five-case sweep tractable; pass a larger
    [duration] to approach the paper's 3000 s numbers. *)

type tcp_flow = {
  leaf : Net.Packet.addr;
  congested : bool;  (** Behind a designated bottleneck link. *)
  snap : Tcp.Sender.snapshot;
}

type group_stat = { worst : int; best : int; average : float }
(** Congestion-signal statistics over a set of branches (figure 8):
    [worst] is the largest count, [best] the smallest. *)

type result = {
  config : config;
  rla : Rla.Sender.snapshot;
  tcps : tcp_flow list;
  wtcp : Tcp.Sender.snapshot;  (** Lowest-throughput TCP. *)
  btcp : Tcp.Sender.snapshot;  (** Highest-throughput TCP. *)
  n_receivers : int;
  ratio : float;  (** RLA throughput / worst-TCP throughput. *)
  jain : float;
      (** Jain's fairness index over the n+1 send rates (RLA plus every
          background TCP): 1 when perfectly even, 1/(n+1) when one flow
          monopolises the bottleneck. *)
  bounds : float * float;  (** Theorem (a, b) for this gateway. *)
  essentially_fair : bool;
  rla_signals_congested : group_stat;
      (** Signals per receiver on congested branches. *)
  rla_signals_rest : group_stat option;
      (** Same for the remaining branches (cases 4-5). *)
  tcp_cuts_congested : group_stat;
  tcp_cuts_rest : group_stat option;
}

type session = {
  tree : Tree.t;
  net : Net.Network.t;
  rla : Rla.Sender.t;
  tcps : (Net.Packet.addr * Tcp.Sender.t) list;
      (** One background TCP per leaf, keyed by its destination. *)
}
(** A built-but-not-yet-run instance of the experiment, exposed so
    scenario variants (e.g. {!Churn}) can drive the identical setup
    through a different run loop. *)

val setup : ?registry:Obs.Registry.t -> config -> session
(** Build the tree, install observability, and create the RLA session
    and background TCPs — everything {!run} does before advancing the
    clock, in the same order (so a variant that then simply runs to
    [duration] is bit-identical to {!run}). *)

val start_measurement : session -> unit
(** Reset every flow's measurement window (call at [warmup]). *)

val measure : session -> config -> result
(** Assemble the result from the current flow states (call at
    [duration]). *)

val run : ?registry:Obs.Registry.t -> config -> result
(** Run one case.  With [?registry], the run is instrumented
    ({!Scenario.observe}): per-flow cwnd/bytes-acked series, per-link
    occupancy and drop counters, RED average-queue estimates, and
    scheduler heartbeat all land in the registry.  Instrumentation is
    passive — results are bit-identical with or without it. *)

val run_with_net : ?registry:Obs.Registry.t -> config -> Net.Network.t * result
(** Like {!run} but also returns the network (for event counts and
    link stats). *)

val run_case :
  gateway:Scenario.gateway ->
  case_index:int ->
  ?duration:float ->
  ?warmup:float ->
  ?seed:int ->
  unit ->
  result
(** Convenience wrapper using the paper's case numbering 1-5. *)

val job : label:string -> config -> result Runner.Job.t
(** Package one run as a sweep job (a fresh network is built inside
    the job closure, so it is safe to execute on any domain). *)

val sweep :
  gateway:Scenario.gateway ->
  case_indices:int list ->
  ?duration:float ->
  ?warmup:float ->
  ?seeds:int list ->
  ?jobs:int ->
  unit ->
  result Runner.Pool.outcome list
(** Run every [case x seed] combination on a domain pool ([seeds]
    defaults to [[1]]; [jobs] to {!Runner.Pool.default_jobs}).
    Outcomes come back in submission order — cases outermost — and the
    per-run results are bit-identical for any [jobs] count. *)
