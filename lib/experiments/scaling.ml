type config = {
  ns : int list;
  gateway : Scenario.gateway;
  share : float;
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
}

let default_config =
  {
    ns = [ 2; 4; 8; 16; 32 ];
    gateway = Scenario.Droptail;
    share = 100.0;
    duration = 200.0;
    warmup = 50.0;
    seed = 1;
    rla_params = Rla.Params.default;
  }

type point = {
  n : int;
  rla_throughput : float;
  rla_cwnd : float;
  wtcp_throughput : float;
  ratio : float;
  jain : float;
  congestion_signals : int;
  window_cuts : int;
}

let run_point config n =
  if config.duration <= config.warmup then
    invalid_arg "Scaling.run: duration must exceed warmup";
  let net = Net.Network.create ~seed:config.seed () in
  let s = Net.Node.id (Net.Network.add_node net) in
  let hub = Net.Node.id (Net.Network.add_node net) in
  let leaves = List.init n (fun _ -> Net.Node.id (Net.Network.add_node net)) in
  ignore
    (Net.Network.duplex net s hub
       (Scenario.fast_link_config ~gateway:config.gateway ~delay:0.005 ()));
  List.iter
    (fun leaf ->
      ignore
        (Net.Network.duplex net hub leaf
           (Scenario.link_config ~gateway:config.gateway
              ~mu_pkts:(config.share *. 2.0) ~delay:0.05 ())))
    leaves;
  Net.Network.install_routes net;
  let rla =
    Rla.Sender.create ~net ~src:s ~receivers:leaves ~params:config.rla_params ()
  in
  let tcps = List.map (fun leaf -> Tcp.Sender.create ~net ~src:s ~dst:leaf ()) leaves in
  Net.Network.run_until net config.warmup;
  Rla.Sender.reset_measurement rla;
  List.iter Tcp.Sender.reset_measurement tcps;
  Net.Network.run_until net config.duration;
  let snap = Rla.Sender.snapshot rla in
  let tcp_rates =
    List.map (fun tcp -> (Tcp.Sender.snapshot tcp).Tcp.Sender.send_rate) tcps
  in
  let wtcp = List.fold_left Stdlib.min infinity tcp_rates in
  {
    n;
    rla_throughput = snap.Rla.Sender.send_rate;
    rla_cwnd = snap.Rla.Sender.cwnd_avg;
    wtcp_throughput = wtcp;
    ratio =
      Rla.Fairness.measured_ratio ~rla_throughput:snap.Rla.Sender.send_rate
        ~tcp_throughput:wtcp;
    jain = Rla.Fairness.jain (snap.Rla.Sender.send_rate :: tcp_rates);
    congestion_signals = snap.Rla.Sender.congestion_signals;
    window_cuts = snap.Rla.Sender.window_cuts;
  }

let run config = List.map (run_point config) config.ns

(* --- sharded scaling: 10k+ receivers through the parallel engine --- *)

type sharded_config = {
  fanout : int;
  depth : int;  (** >= 2: the TCP pairs need an interior branch hop. *)
  workers : int;
  share : float;
  duration : float;
  warmup : float;
  seed : int;
  rla_params : Rla.Params.t;
}

let default_sharded_config =
  {
    fanout = 22;
    depth = 3;
    workers = 1;
    share = 100.0;
    duration = 2.0;
    warmup = 0.5;
    seed = 1;
    rla_params = Rla.Params.default;
  }

(* Three-level k-ary tree sized so the leaf count is [fanout^depth]
   (fanout 22, depth 3: 10648 receivers on 11155 nodes).  The root
   links are fast but long-haul (20 ms) — Kruskal therefore cuts
   exactly those, giving fanout+1 shards and a 20 ms lookahead — while
   each branch keeps a mid-level soft bottleneck shared by that
   branch's TCP flow. *)
let sharded_topo config =
  let link ~bw ~delay ~capacity =
    {
      Net.Link.bandwidth_bps = bw;
      prop_delay = delay;
      queue = Net.Queue_disc.Droptail;
      capacity;
      phase_jitter = false;
    }
  in
  Net.Topo.kary ~fanout:config.fanout ~depth:config.depth
    ~configs:
      [|
        link ~bw:100e6 ~delay:0.02 ~capacity:100;
        link ~bw:(config.share *. 2.0 *. 8000.0) ~delay:0.005 ~capacity:20;
        link ~bw:10e6 ~delay:0.002 ~capacity:50;
      |]

(* One competing TCP per branch: branch root down its leftmost chain to
   the first leaf — entirely inside the branch's shard, crossing that
   branch's mid-level bottleneck. *)
let sharded_tcp_pairs config =
  List.init config.fanout (fun i ->
      let branch_root = i + 1 in
      let rec descend node levels =
        if levels = 0 then node
        else descend ((node * config.fanout) + 1) (levels - 1)
      in
      (branch_root, descend branch_root (config.depth - 1)))

let run_sharded ?checkpoint config =
  if config.fanout < 2 || config.depth < 2 then
    invalid_arg "Scaling.run_sharded: need fanout >= 2 and depth >= 2";
  let topo = sharded_topo config in
  Par.Scenario.run ?checkpoint
    {
      Par.Scenario.topo;
      parts = config.fanout + 1;
      src = 0;
      receivers = Net.Topo.leaves topo;
      tcp_pairs = sharded_tcp_pairs config;
      workers = config.workers;
      duration = config.duration;
      warmup = config.warmup;
      seed = config.seed;
      rla_params = config.rla_params;
      with_registry = false;
    }

let print_sharded ppf (r : Par.Scenario.result) =
  Format.fprintf ppf
    "@.Sharded scaling — conservative parallel DES over the branch cut@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "%s" r.Par.Scenario.fairness_table;
  Format.fprintf ppf "%s@." (String.make 72 '-')

let print ppf points =
  Format.fprintf ppf
    "@.Scaling — RLA throughput must not vanish as receivers grow@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "%6s %12s %10s %12s %8s %6s %8s %8s@." "N" "RLA pkt/s"
    "RLA cwnd" "WTCP pkt/s" "ratio" "jain" "#sig" "#cut";
  List.iter
    (fun p ->
      Format.fprintf ppf "%6d %12.1f %10.1f %12.1f %8.2f %6.3f %8d %8d@." p.n
        p.rla_throughput p.rla_cwnd p.wtcp_throughput p.ratio p.jain
        p.congestion_signals p.window_cuts)
    points;
  Format.fprintf ppf "%s@." (String.make 72 '-')
