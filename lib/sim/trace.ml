(* lint: allow-file ckpt-coverage -- the only mutable field is the live
   sink closure, reinstalled by the driver on resume, not run state *)

type level = Debug | Info | Warn

type record = { time : float; level : level; component : string; message : string }

type t = { mutable sink : (record -> unit) option }

let create () = { sink = None }

let set_sink t f = t.sink <- Some f

let clear_sink t = t.sink <- None

let enabled t = t.sink <> None

let emit t ~time ~level ~component message =
  match t.sink with
  | None -> ()
  | Some sink -> sink { time; level; component; message }

let emitf t ~time ~level ~component fmt =
  match t.sink with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some sink ->
      Format.kasprintf
        (fun message -> sink { time; level; component; message })
        fmt

let memory_sink () =
  let records = ref [] in
  let sink r = records := r :: !records in
  (sink, fun () -> List.rev !records)

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
