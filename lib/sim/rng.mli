(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic decision in the simulator draws from an explicit
    [Rng.t] so that a run is fully reproducible from its seed.  Streams
    can be {!split} so independent components (e.g. each traffic source)
    consume independent sequences regardless of interleaving. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val split : t -> t
(** [split t] derives a statistically independent generator, advancing
    [t] by one step. *)

val copy : t -> t
(** Duplicate the current state. *)

val state : t -> int64
(** [state t] is the complete generator state (splitmix64 is a single
    64-bit counter).  [set_state t (state t')] makes [t] continue
    [t']'s stream exactly; used by checkpoint/restore. *)

val set_state : t -> int64 -> unit
(** Overwrite the generator state in place. *)

val of_state : int64 -> t
(** Build a generator resuming from a captured {!state}. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound] must be positive. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)]. *)
