(* Array-based binary min-heap.  Ordering is lexicographic on
   (priority, sequence number) so that insertions at equal priority pop
   in FIFO order — required for deterministic event scheduling.

   The layout is a structure of arrays: priorities live in an unboxed
   [float array], tie-break counters in an [int array], and values in a
   uniform pointer array.  Sift operations therefore compare raw floats
   and ints without chasing a boxed entry record per element, and
   adding an element allocates nothing beyond amortized array growth.

   Values are stored through [Obj.repr] in a uniform (non-flat) array
   created from an immediate, so the representation is safe for every
   ['a] including [float] (floats are stored boxed, never unboxed, and
   all accesses go through the uniform-array path).  Vacated slots are
   overwritten with the immediate dummy on [pop], [clear] and
   [restore], so a drained heap keeps no value (and hence no closure,
   packet or sender captured by one) reachable. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable vals : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let dummy : Obj.t = Obj.repr 0

let create () =
  { prios = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* (prio, seq) at index [i] precedes index [j]. *)
let lt t i j =
  let pi = Array.unsafe_get t.prios i and pj = Array.unsafe_get t.prios j in
  if pi < pj then true
  else if pi > pj then false
  else Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j

let grow t =
  let cap = Array.length t.prios in
  if t.size = cap then begin
    let new_cap = if cap = 0 then initial_capacity else 2 * cap in
    let prios = Array.make new_cap 0.0 in
    let seqs = Array.make new_cap 0 in
    let vals = Array.make new_cap dummy in
    Array.blit t.prios 0 prios 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.prios <- prios;
    t.seqs <- seqs;
    t.vals <- vals
  end

(* Sifts are hole-based: instead of swapping three arrays at every
   level, the moving element's (prio, seq) stay in registers while
   displaced entries are pulled into the hole, and the caller writes
   the moving element once at the returned index.  Both loops are
   tail-recursive, so the hot path allocates nothing.  Unsafe accesses
   are in-bounds by construction ([grow] ran / indices < [t.size]). *)

(* Final index for an element [(prio, seq)] inserted at hole [i],
   pulling larger parents down as it ascends. *)
let rec sift_up_hole t ~prio ~seq i =
  if i = 0 then 0
  else begin
    let parent = (i - 1) / 2 in
    let pp = Array.unsafe_get t.prios parent in
    if prio < pp || (prio = pp && seq < Array.unsafe_get t.seqs parent) then begin
      Array.unsafe_set t.prios i pp;
      Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs parent);
      Array.unsafe_set t.vals i (Array.unsafe_get t.vals parent);
      sift_up_hole t ~prio ~seq parent
    end
    else i
  end

(* Final index for an element [(prio, seq)] descending from hole [i],
   pulling the smaller child up at each level. *)
let rec sift_down_hole t ~prio ~seq i =
  let left = (2 * i) + 1 in
  if left >= t.size then i
  else begin
    let right = left + 1 in
    let c = if right < t.size && lt t right left then right else left in
    let cp = Array.unsafe_get t.prios c in
    if cp < prio || (cp = prio && Array.unsafe_get t.seqs c < seq) then begin
      Array.unsafe_set t.prios i cp;
      Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs c);
      Array.unsafe_set t.vals i (Array.unsafe_get t.vals c);
      sift_down_hole t ~prio ~seq c
    end
    else i
  end

let push t ~prio ~seq value =
  grow t;
  let v = Obj.repr value in
  let i = sift_up_hole t ~prio ~seq t.size in
  t.size <- t.size + 1;
  Array.unsafe_set t.prios i prio;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.vals i v

let add t ~prio value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t ~prio ~seq value

(* Restore path: re-insert an element under its original tie-break
   counter so that a restored heap pops in exactly the original order.
   The caller owns seq uniqueness; [next_seq] is left untouched. *)
let add_with_seq t ~prio ~seq value = push t ~prio ~seq value

let next_seq t = t.next_seq

let set_next_seq t n = t.next_seq <- n

let capture t =
  let xs = ref [] in
  for i = 0 to t.size - 1 do
    xs := (t.prios.(i), t.seqs.(i), (Obj.obj t.vals.(i) : 'a)) :: !xs
  done;
  List.sort
    (fun (p1, s1, _) (p2, s2, _) ->
      match Float.compare p1 p2 with 0 -> Int.compare s1 s2 | c -> c)
    !xs

let clear t =
  t.prios <- [||];
  t.seqs <- [||];
  t.vals <- [||];
  t.size <- 0

let restore t ~next_seq entries =
  clear t;
  List.iter (fun (prio, seq, value) -> push t ~prio ~seq value) entries;
  t.next_seq <- next_seq

let min_prio t = if t.size = 0 then None else Some t.prios.(0)

(* lint: hot top_prio -- read once per scheduler step; must stay a bare
   unboxed array load *)
let top_prio t =
  if t.size = 0 then invalid_arg "Heap.top_prio: empty heap";
  t.prios.(0)

let peek t =
  if t.size = 0 then None
  else Some (t.prios.(0), (Obj.obj t.vals.(0) : 'a))

let top_seq t =
  if t.size = 0 then invalid_arg "Heap.top_seq: empty heap";
  t.seqs.(0)

(* Allocation-free root removal for the scheduler's fire loop: the
   caller reads (prio, seq) via [top_prio]/[top_seq] first, so only the
   value crosses the call.  The former last element descends from the
   root hole; its vacated slot is cleared so the popped (or moved)
   value never stays reachable from the backing array. *)
(* lint: hot pop_top -- the scheduler fire loop's root removal; PR 6's
   2-2.5x events/s win rests on this staying allocation-free *)
let pop_top t =
  if t.size = 0 then invalid_arg "Heap.pop_top: empty heap";
  let prio = Array.unsafe_get t.prios 0 in
  let seq = Array.unsafe_get t.seqs 0 in
  let value : 'a = Obj.obj (Array.unsafe_get t.vals 0) in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    let mp = Array.unsafe_get t.prios last in
    let ms = Array.unsafe_get t.seqs last in
    let mv = Array.unsafe_get t.vals last in
    Array.unsafe_set t.vals last dummy;
    let i = sift_down_hole t ~prio:mp ~seq:ms 0 in
    Array.unsafe_set t.prios i mp;
    Array.unsafe_set t.seqs i ms;
    Array.unsafe_set t.vals i mv;
    (* Stable-order backstop: everything still in the heap was >= the
       popped root (in (prio, seq) order), so the new root must be too. *)
    if !Invariant.enabled then
      Invariant.require
        (not (t.prios.(0) < prio || (t.prios.(0) = prio && t.seqs.(0) < seq)))
        (fun () ->
          Printf.sprintf
            "Heap.pop: successor (%g, #%d) precedes popped entry (%g, #%d)"
            t.prios.(0) t.seqs.(0) prio seq)
  end
  else Array.unsafe_set t.vals 0 dummy;
  value

(* lint: hot pop_entry -- checkpoint drain + replay path over the live
   heap; one option cell per entry is its only allowed allocation *)
let pop_entry t =
  if t.size = 0 then None
  else begin
    let prio = t.prios.(0) in
    let seq = t.seqs.(0) in
    (* lint: allow alloc-hot -- the Some-triple is the drain API; one
       cell per drained entry, off the per-event fire loop *)
    Some (prio, seq, pop_top t)
  end

let pop t =
  if t.size = 0 then None
  else begin
    let prio = t.prios.(0) in
    Some (prio, pop_top t)
  end

let iter t ~f =
  for i = 0 to t.size - 1 do
    f t.prios.(i) (Obj.obj t.vals.(i) : 'a)
  done
