(* Array-based binary min-heap.  Ordering is lexicographic on
   (priority, sequence number) so that insertions at equal priority pop
   in FIFO order — required for deterministic event scheduling. *)

type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt a b =
  match Float.compare a.prio b.prio with
  | 0 -> Int.compare a.seq b.seq < 0
  | c -> c < 0

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let new_cap = if cap = 0 then initial_capacity else 2 * cap in
    let data = Array.make new_cap entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && lt t.data.(left) t.data.(!smallest) then smallest := left;
  if right < t.size && lt t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~prio value =
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Restore path: re-insert an element under its original tie-break
   counter so that a restored heap pops in exactly the original order.
   The caller owns seq uniqueness; [next_seq] is left untouched. *)
let add_with_seq t ~prio ~seq value =
  let entry = { prio; seq; value } in
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let next_seq t = t.next_seq

let set_next_seq t n = t.next_seq <- n

let capture t =
  let xs = ref [] in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    xs := (e.prio, e.seq, e.value) :: !xs
  done;
  List.sort
    (fun (p1, s1, _) (p2, s2, _) ->
      match Float.compare p1 p2 with 0 -> Int.compare s1 s2 | c -> c)
    !xs

let restore t ~next_seq entries =
  t.data <- [||];
  t.size <- 0;
  List.iter (fun (prio, seq, value) -> add_with_seq t ~prio ~seq value) entries;
  t.next_seq <- next_seq

let min_prio t = if t.size = 0 then None else Some t.data.(0).prio

let peek t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.prio, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* Stable-order backstop: everything still in the heap was >= the
       popped root (in (prio, seq) order), so the new root must be too. *)
    if !Invariant.enabled && t.size > 0 then
      Invariant.require
        (not (lt t.data.(0) e))
        (fun () ->
          Printf.sprintf
            "Heap.pop: successor (%g, #%d) precedes popped entry (%g, #%d)"
            t.data.(0).prio t.data.(0).seq e.prio e.seq);
    Some (e.prio, e.value)
  end

let clear t =
  t.data <- [||];
  t.size <- 0

let iter t ~f =
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    f e.prio e.value
  done
