(** Discrete-event scheduler.

    Time is a [float] in seconds.  Events are closures fired in
    nondecreasing time order; simultaneous events fire in scheduling
    order.  Events can be cancelled through the handle returned at
    scheduling time (used for retransmission timers). *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t

val now : t -> float
(** Current simulated time (seconds). *)

val schedule_at : t -> float -> (unit -> unit) -> event_id
(** [schedule_at t time f] fires [f] at absolute [time].  Scheduling in
    the past raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> event_id
(** [schedule_after t delay f] fires [f] [delay] seconds from now. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event.  Cancelling an event that already fired,
    was already cancelled, or never existed is a strict no-op: it
    neither perturbs {!pending} nor affects any other event. *)

val run_until : t -> float -> unit
(** Execute events in order until the queue is empty or the next event
    is past the horizon; the clock ends at exactly the horizon. *)

val run_until_empty : t -> max_events:int -> unit
(** Run until no events remain or [max_events] have fired. *)

val pending : t -> int
(** Number of pending (non-cancelled) events. *)

val set_registry : t -> Obs.Registry.t option -> unit
(** Install (or remove, with [None]) a metrics registry.  With one
    installed, each fired event bumps the ["sim.events_fired"] counter,
    updates the ["sim.time"] gauge, and offers a decimated
    ["sim.heartbeat"] sample (simulated time vs events fired).  Probing
    is passive: it never schedules events, so runs are bit-identical
    with observability on or off. *)

val events_fired : t -> int
(** Total number of events executed so far. *)
