(** Discrete-event scheduler.

    Time is a [float] in seconds.  Events are closures fired in
    nondecreasing time order; simultaneous events fire in scheduling
    order.  Events can be cancelled through the handle returned at
    scheduling time (used for retransmission timers). *)

type t

type event_id = int
(** Handle for cancelling a scheduled event.  The representation is
    public so checkpoint codecs can serialize pending-event ownership;
    ids are dense, start at 0 and never repeat within a run. *)

val create : unit -> t

val now : t -> float
(** Current simulated time (seconds). *)

val schedule_at : t -> float -> (unit -> unit) -> event_id
(** [schedule_at t time f] fires [f] at absolute [time].  Scheduling in
    the past, or at a non-finite time (NaN or infinite, which would
    poison the heap ordering), raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> event_id
(** [schedule_after t delay f] fires [f] [delay] seconds from now.
    Raises [Invalid_argument] on a negative or non-finite delay. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event.  Cancelling an event that already fired,
    was already cancelled, or never existed is a strict no-op: it
    neither perturbs {!pending} nor affects any other event. *)

val step : t -> float -> [ `Fired | `Skipped | `Done ]
(** Pop one event at or before the horizon: [`Fired] executed it,
    [`Skipped] discarded a lazily-cancelled entry, [`Done] means the
    queue is exhausted or the next event lies beyond the horizon.  The
    run loops are built on this; it is the per-event hot path and must
    stay allocation-free. *)

val run_until : t -> float -> unit
(** Execute events in order until the queue is empty or the next event
    is past the horizon; the clock ends at exactly the horizon. *)

val run_until_empty : t -> max_events:int -> unit
(** Run until no events remain or [max_events] have fired. *)

val pending : t -> int
(** Number of pending (non-cancelled) events. *)

val set_registry : t -> Obs.Registry.t option -> unit
(** Install (or remove, with [None]) a metrics registry.  With one
    installed, each fired event bumps the ["sim.events_fired"] counter,
    updates the ["sim.time"] gauge, and offers a decimated
    ["sim.heartbeat"] sample (simulated time vs events fired).  Probing
    is passive: it never schedules events, so runs are bit-identical
    with observability on or off. *)

val events_fired : t -> int
(** Total number of events executed so far. *)

(** {1 Checkpoint/restore}

    Closures cannot be serialized, so a checkpoint stores only the
    scheduler scalars plus the (id, fire-time) pairs of pending events.
    [restore] empties the queue and parks those pairs; each component
    that owns an event then calls {!rearm} to re-attach its closure
    under the original id, which reproduces the original pop order
    byte-for-byte (tie-break counters equal event ids).  {!unrestored}
    must be empty before the simulation is resumed. *)

type state = {
  s_clock : float;
  s_next_id : int;
  s_fired : int;
  s_pending : (event_id * float) list;  (** ascending id *)
}

val capture : t -> state
(** Pure read of the complete scheduler state; cancelled events are
    excluded (skipping them is side-effect-free). *)

val restore : t -> state -> unit
(** Reset the scheduler to [state] with an empty queue; every pending
    id awaits a {!rearm} call from its owning component. *)

val rearm : t -> id:event_id -> (unit -> unit) -> unit
(** [rearm t ~id f] re-attaches closure [f] to restored pending event
    [id] at its captured fire time.  Raises [Invalid_argument] if [id]
    is not awaiting restore (double re-arm, or not pending in the
    checkpoint). *)

val unrestored : t -> event_id list
(** Restored pending ids not yet re-armed, ascending.  Non-empty after
    the components' re-arm pass means the checkpoint recorded an event
    no component claims — the caller must fail rather than resume. *)
