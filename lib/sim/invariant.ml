(* Debug-gated runtime invariants — the dynamic backstop to the static
   determinism linter (lib/lint).  The linter can prove "no ambient
   entropy reached this file"; it cannot prove "the heap popped in
   stable order on this run".  These checks can, and because probing is
   passive (no events scheduled, no RNG drawn, no output emitted), an
   instrumented run stays byte-identical to an uninstrumented one.

   Gate: the RLA_DEBUG_INVARIANTS environment variable at startup
   (1/true/yes/on), or [set_enabled] from tests.  Disabled, the cost at
   every check site is a single ref read. *)

exception Violation of string

let env_enabled =
  match Sys.getenv_opt "RLA_DEBUG_INVARIANTS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* Written once at startup (or from single-domain test setup) before
   any worker domain exists; workers only read it. *)
(* lint: allow shared-mutable-capture -- set before any Domain.spawn;
   workers only read it, and a stale read just skips a debug check *)
let enabled = ref env_enabled

let set_enabled b = enabled := b

(* Counters are informational but shared across shard workers, so they
   must be atomic or parallel runs would under-count (and race). *)
let checks = Atomic.make 0

let failures = Atomic.make 0

let checks_run () = Atomic.get checks

let failures_seen () = Atomic.get failures

let reset_counters () =
  Atomic.set checks 0;
  Atomic.set failures 0

(* [msg] is a thunk so the failure string is only built when the check
   actually fails; call sites guard on [!enabled] themselves to keep
   the disabled cost to one ref read. *)
let require cond msg =
  Atomic.incr checks;
  if not cond then begin
    Atomic.incr failures;
    raise (Violation (msg ()))
  end
