(* Debug-gated runtime invariants — the dynamic backstop to the static
   determinism linter (lib/lint).  The linter can prove "no ambient
   entropy reached this file"; it cannot prove "the heap popped in
   stable order on this run".  These checks can, and because probing is
   passive (no events scheduled, no RNG drawn, no output emitted), an
   instrumented run stays byte-identical to an uninstrumented one.

   Gate: the RLA_DEBUG_INVARIANTS environment variable at startup
   (1/true/yes/on), or [set_enabled] from tests.  Disabled, the cost at
   every check site is a single ref read. *)

exception Violation of string

let env_enabled =
  match Sys.getenv_opt "RLA_DEBUG_INVARIANTS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let enabled = ref env_enabled

let set_enabled b = enabled := b

let checks = ref 0

let failures = ref 0

let checks_run () = !checks

let failures_seen () = !failures

let reset_counters () =
  checks := 0;
  failures := 0

(* [msg] is a thunk so the failure string is only built when the check
   actually fails; call sites guard on [!enabled] themselves to keep
   the disabled cost to one ref read. *)
let require cond msg =
  incr checks;
  if not cond then begin
    incr failures;
    raise (Violation (msg ()))
  end
