(* Splitmix64: tiny, fast, and passes BigCrush for our purposes.  State
   is a single 64-bit counter, which makes [split] trivial. *)

(* lint: allow-file ckpt-coverage -- state/set_state are this module's
   capture/restore pair; checkpoints carry the generator exactly *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

(* Checkpoint/restore: the whole generator is one 64-bit counter, so
   the explicit state API is exact — no reaching into opaque stdlib
   [Random.State] internals, and a restored stream continues the
   original sequence bit-for-bit. *)
let state t = t.state

let set_state t s = t.state <- s

let of_state s = { state = s }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let copy t = { state = t.state }

(* 53 uniformly random mantissa bits -> float in [0, 1). *)
let uniform t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound is tiny compared to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = uniform t < p

let exponential t mean =
  let u = uniform t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let range t lo hi = lo +. (uniform t *. (hi -. lo))
