(** Debug-gated runtime invariants: the dynamic backstop to the static
    determinism linter.  Enabled by the [RLA_DEBUG_INVARIANTS]
    environment variable (1/true/yes/on) or {!set_enabled}; checks are
    passive, so instrumented runs replay byte-identically. *)

exception Violation of string

val enabled : bool ref
(** Check sites guard on [!enabled] so the disabled cost is one ref
    read per site. *)

val set_enabled : bool -> unit

val require : bool -> (unit -> string) -> unit
(** [require cond msg] counts a check; on failure counts it and raises
    {!Violation} with [msg ()] (built lazily). *)

val checks_run : unit -> int
(** Checks evaluated since start (or {!reset_counters}). *)

val failures_seen : unit -> int

val reset_counters : unit -> unit
