(** Binary min-heap keyed by [(priority, tie-break counter)].

    The heap is the core of the discrete-event scheduler: events are
    ordered by simulated time, and events scheduled for the same time
    fire in insertion order (the monotone counter breaks ties), which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> prio:float -> 'a -> unit
(** [add t ~prio x] inserts [x] with priority [prio].  Elements with
    equal priority are returned in insertion order. *)

val min_prio : 'a t -> float option
(** Priority of the minimum element, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element with its priority. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val add_with_seq : 'a t -> prio:float -> seq:int -> 'a -> unit
(** [add_with_seq t ~prio ~seq x] inserts [x] under an explicit
    tie-break counter instead of the internal one, so a restored heap
    reproduces the original pop order exactly.  The caller guarantees
    [seq] uniqueness; the internal counter is not advanced. *)

val next_seq : 'a t -> int
(** Value the internal tie-break counter will assign next. *)

val set_next_seq : 'a t -> int -> unit
(** Overwrite the internal tie-break counter (checkpoint restore). *)

val capture : 'a t -> (float * int * 'a) list
(** All elements as [(prio, seq, value)] sorted in pop order.  Pure
    read; the heap is unchanged. *)

val restore : 'a t -> next_seq:int -> (float * int * 'a) list -> unit
(** Replace the contents with the captured elements (under their
    original tie-break counters) and set the internal counter, making
    subsequent pops byte-identical to the captured heap's. *)

val iter : 'a t -> f:(float -> 'a -> unit) -> unit
(** Iterate over all elements in unspecified order. *)
