(** Binary min-heap keyed by [(priority, tie-break counter)].

    The heap is the core of the discrete-event scheduler: events are
    ordered by simulated time, and events scheduled for the same time
    fire in insertion order (the monotone counter breaks ties), which
    keeps simulations deterministic.

    The backing store is a structure of arrays (unboxed priorities,
    unboxed counters, uniform value slots), so the hot sift path never
    follows a per-element pointer and insertion allocates nothing
    beyond amortized growth.  Slots vacated by {!pop} (and the whole
    store on {!clear}/{!restore}) are overwritten, so a drained heap
    retains no reference to any value it ever held. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> prio:float -> 'a -> unit
(** [add t ~prio x] inserts [x] with priority [prio].  Elements with
    equal priority are returned in insertion order. *)

val min_prio : 'a t -> float option
(** Priority of the minimum element, if any. *)

val top_prio : 'a t -> float
(** Priority of the minimum element.  Unlike {!min_prio} this does not
    allocate an option; raises [Invalid_argument] on an empty heap, so
    callers on the hot path pair it with {!is_empty}. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element with its priority. *)

val top_seq : 'a t -> int
(** Tie-break counter of the minimum element; raises [Invalid_argument]
    on an empty heap. *)

val pop_top : 'a t -> 'a
(** Remove the minimum element and return only its value, allocating
    nothing — the hot-path combination with {!top_prio}/{!top_seq}.
    Raises [Invalid_argument] on an empty heap. *)

val pop_entry : 'a t -> (float * int * 'a) option
(** Like {!pop} but also returns the element's tie-break counter.  The
    scheduler relies on this: its event ids advance in lockstep with
    the heap counter, so the counter of a popped event {e is} its id
    and no per-event id record needs allocating. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val add_with_seq : 'a t -> prio:float -> seq:int -> 'a -> unit
(** [add_with_seq t ~prio ~seq x] inserts [x] under an explicit
    tie-break counter instead of the internal one, so a restored heap
    reproduces the original pop order exactly.  The caller guarantees
    [seq] uniqueness; the internal counter is not advanced. *)

val next_seq : 'a t -> int
(** Value the internal tie-break counter will assign next. *)

val set_next_seq : 'a t -> int -> unit
(** Overwrite the internal tie-break counter (checkpoint restore). *)

val capture : 'a t -> (float * int * 'a) list
(** All elements as [(prio, seq, value)] sorted in pop order.  Pure
    read; the heap is unchanged. *)

val restore : 'a t -> next_seq:int -> (float * int * 'a) list -> unit
(** Replace the contents with the captured elements (under their
    original tie-break counters) and set the internal counter, making
    subsequent pops byte-identical to the captured heap's. *)

val iter : 'a t -> f:(float -> 'a -> unit) -> unit
(** Iterate over all elements in unspecified order. *)
