type event = { id : int; action : unit -> unit }

type event_id = int

(* [pending_ids] holds exactly the ids that are scheduled and neither
   fired nor cancelled; it is the single source of truth for both
   [cancel] and [pending], so cancelling a fired, unknown or
   already-cancelled id cannot drift the pending count or leak table
   entries. *)
(* Cached observability handles; [None] (the default) keeps the hot
   path to a single match.  Probing never schedules events, so the
   simulation is bit-identical with or without a registry. *)
type taps = {
  events_fired_c : Obs.Registry.counter;
  clock_g : Obs.Registry.gauge;
  heartbeat : Obs.Series.t;
}

(* [rearm_times] is non-empty only between [restore] and the end of the
   owning components' re-arm pass: it maps each restored pending id to
   its fire time until the component that owns the event re-attaches a
   closure via [rearm]. *)
type t = {
  queue : event Heap.t;
  pending_ids : (int, unit) Hashtbl.t;
  rearm_times : (int, float) Hashtbl.t;
  mutable clock : float;
  mutable next_id : int;
  mutable fired : int;
  mutable taps : taps option;
}

let create () =
  {
    queue = Heap.create ();
    pending_ids = Hashtbl.create 64;
    rearm_times = Hashtbl.create 16;
    clock = 0.0;
    next_id = 0;
    fired = 0;
    taps = None;
  }

let set_registry t reg =
  t.taps <-
    Option.map
      (fun r ->
        {
          events_fired_c = Obs.Registry.counter r "sim.events_fired";
          clock_g = Obs.Registry.gauge r "sim.time";
          heartbeat = Obs.Registry.series r "sim.heartbeat";
        })
      reg

let now t = t.clock

let schedule_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_at: %g is in the past (now %g)" time
         t.clock);
  let id = t.next_id in
  t.next_id <- id + 1;
  Heap.add t.queue ~prio:time { id; action };
  Hashtbl.replace t.pending_ids id ();
  id

let schedule_after t delay action = schedule_at t (t.clock +. delay) action

let cancel t id = Hashtbl.remove t.pending_ids id

(* Pop one event; returns false when the queue is exhausted or the next
   event lies beyond [horizon].  Cancelled events are skipped lazily on
   pop. *)
let step t horizon =
  match Heap.peek t.queue with
  | None -> false
  | Some (time, _) when time > horizon -> false
  | Some _ -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (time, ev) ->
          if Hashtbl.mem t.pending_ids ev.id then begin
            Hashtbl.remove t.pending_ids ev.id;
            if !Invariant.enabled then
              Invariant.require (time >= t.clock) (fun () ->
                  Printf.sprintf
                    "Scheduler.step: event %d fires at %g, before the clock %g"
                    ev.id time t.clock);
            t.clock <- time;
            t.fired <- t.fired + 1;
            (match t.taps with
            | None -> ()
            | Some taps ->
                Obs.Registry.incr taps.events_fired_c;
                Obs.Registry.set taps.clock_g time;
                Obs.Series.add taps.heartbeat ~time (float_of_int t.fired));
            ev.action ();
            true
          end
          else true)

let run_until t horizon =
  while step t horizon do
    ()
  done;
  if horizon > t.clock then t.clock <- horizon

let run_until_empty t ~max_events =
  let budget = ref max_events in
  while !budget > 0 && step t infinity do
    decr budget
  done

let pending t = Hashtbl.length t.pending_ids

let events_fired t = t.fired

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_clock : float;
  s_next_id : int;
  s_fired : int;
  s_pending : (int * float) list;
}

(* Closures cannot be serialized, so a captured scheduler records only
   which events are pending and when they fire.  On restore each owning
   component re-attaches its closure through [rearm]; heap tie-break
   counters equal event ids in normal operation (both advance in
   lockstep from zero), so re-inserting under seq = id reproduces the
   original pop order exactly.  Cancelled-but-unpopped heap entries are
   deliberately dropped: skipping them is side-effect-free. *)
let capture t =
  let pend = ref [] in
  Heap.iter t.queue ~f:(fun prio ev ->
      if Hashtbl.mem t.pending_ids ev.id then pend := (ev.id, prio) :: !pend);
  {
    s_clock = t.clock;
    s_next_id = t.next_id;
    s_fired = t.fired;
    s_pending = List.sort (fun (a, _) (b, _) -> Int.compare a b) !pend;
  }

let restore t st =
  Heap.clear t.queue;
  Heap.set_next_seq t.queue st.s_next_id;
  Hashtbl.reset t.pending_ids;
  Hashtbl.reset t.rearm_times;
  t.clock <- st.s_clock;
  t.next_id <- st.s_next_id;
  t.fired <- st.s_fired;
  List.iter (fun (id, at) -> Hashtbl.replace t.rearm_times id at) st.s_pending

let rearm t ~id action =
  match Hashtbl.find_opt t.rearm_times id with
  | None ->
      invalid_arg
        (Printf.sprintf "Scheduler.rearm: event %d is not awaiting restore" id)
  | Some at ->
      Hashtbl.remove t.rearm_times id;
      Heap.add_with_seq t.queue ~prio:at ~seq:id { id; action };
      Hashtbl.replace t.pending_ids id ()

let unrestored t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.rearm_times []
  |> List.sort Int.compare
