type event_id = int

(* The heap stores the event closures directly: event ids and the
   heap's tie-break counter both advance in lockstep from zero (and the
   restore path re-inserts under seq = id), so the counter of a popped
   entry IS the event id and no per-event id record is allocated. *)

(* Pending-or-not is one bit per event id in a growable bitmap —
   [Bytes] indexed by id — rather than a hash table: ids are dense and
   never reused, so the bitmap gives branch-cheap O(1) schedule, fire
   and cancel with no per-event allocation, at one bit per id ever
   issued.  [pending_count] is maintained on every transition, so
   cancelling a fired, unknown or already-cancelled id cannot drift the
   pending count (cancel is a strict no-op unless the bit is set). *)

(* Cached observability handles; [None] (the default) keeps the hot
   path to a single match.  Probing never schedules events, so the
   simulation is bit-identical with or without a registry. *)
type taps = {
  events_fired_c : Obs.Registry.counter;
  clock_g : Obs.Registry.gauge;
  heartbeat : Obs.Series.t;
}

(* [rearm_times] is non-empty only between [restore] and the end of the
   owning components' re-arm pass: it maps each restored pending id to
   its fire time until the component that owns the event re-attaches a
   closure via [rearm]. *)
type t = {
  queue : (unit -> unit) Heap.t;
  mutable flags : Bytes.t;  (* bit id = event id is pending *)
  mutable pending_count : int;
  rearm_times : (int, float) Hashtbl.t;
  mutable clock : float;
  mutable next_id : int;
  mutable fired : int;
  mutable taps : taps option;
}

let initial_flag_bytes = 1024

let create () =
  {
    queue = Heap.create ();
    flags = Bytes.make initial_flag_bytes '\000';
    pending_count = 0;
    rearm_times = Hashtbl.create 16;
    clock = 0.0;
    next_id = 0;
    fired = 0;
    taps = None;
  }

let flag_is_set t id =
  let byte = id lsr 3 in
  byte < Bytes.length t.flags
  && Char.code (Bytes.unsafe_get t.flags byte) land (1 lsl (id land 7)) <> 0

let ensure_flag_capacity t id =
  let byte = id lsr 3 in
  let len = Bytes.length t.flags in
  if byte >= len then begin
    let new_len = Stdlib.max (2 * len) (byte + 1) in
    let grown = Bytes.make new_len '\000' in
    Bytes.blit t.flags 0 grown 0 len;
    t.flags <- grown
  end

let set_flag t id =
  ensure_flag_capacity t id;
  let byte = id lsr 3 in
  Bytes.unsafe_set t.flags byte
    (Char.chr (Char.code (Bytes.unsafe_get t.flags byte) lor (1 lsl (id land 7))))

let clear_flag t id =
  let byte = id lsr 3 in
  Bytes.unsafe_set t.flags byte
    (Char.chr
       (Char.code (Bytes.unsafe_get t.flags byte) land lnot (1 lsl (id land 7))))

let set_registry t reg =
  t.taps <-
    Option.map
      (fun r ->
        {
          events_fired_c = Obs.Registry.counter r "sim.events_fired";
          clock_g = Obs.Registry.gauge r "sim.time";
          heartbeat = Obs.Registry.series r "sim.heartbeat";
        })
      reg

let now t = t.clock

let schedule_at t time action =
  if not (Float.is_finite time) then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_at: fire time %g is not finite" time);
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_at: %g is in the past (now %g)" time
         t.clock);
  let id = t.next_id in
  t.next_id <- id + 1;
  Heap.add t.queue ~prio:time action;
  set_flag t id;
  t.pending_count <- t.pending_count + 1;
  id

let schedule_after t delay action =
  if not (Float.is_finite delay) then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule_after: delay %g is not finite" delay);
  schedule_at t (t.clock +. delay) action

let cancel t id =
  if id >= 0 && id < t.next_id && flag_is_set t id then begin
    clear_flag t id;
    t.pending_count <- t.pending_count - 1
  end

(* Pop one event.  [`Fired] executed an event, [`Skipped] discarded a
   lazily-cancelled entry, [`Done] means the queue is exhausted or the
   next event lies beyond [horizon].  Only [`Fired] counts against
   run_until_empty's budget: a cancel-heavy run must still fire
   [max_events] real events. *)
(* lint: hot step -- fires every simulated event; the events/s number
   in BENCH_perf.json is mostly this function *)
let step t horizon =
  if Heap.is_empty t.queue then `Done
  else begin
    let time = Heap.top_prio t.queue in
    if time > horizon then `Done
    else begin
      (* Read (time, id) off the root, then pop just the closure —
         this path allocates nothing per event. *)
      let id = Heap.top_seq t.queue in
      let action = Heap.pop_top t.queue in
      if flag_is_set t id then begin
          clear_flag t id;
          t.pending_count <- t.pending_count - 1;
          if !Invariant.enabled then
            Invariant.require (time >= t.clock) (fun () ->
                Printf.sprintf
                  "Scheduler.step: event %d fires at %g, before the clock %g"
                  id time t.clock);
          t.clock <- time;
          t.fired <- t.fired + 1;
          (match t.taps with
          | None -> ()
          | Some taps ->
              Obs.Registry.incr taps.events_fired_c;
              Obs.Registry.set taps.clock_g time;
              Obs.Series.add taps.heartbeat ~time (float_of_int t.fired));
          action ();
          `Fired
        end
        else `Skipped
    end
  end

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match step t horizon with `Fired | `Skipped -> () | `Done -> continue := false
  done;
  if horizon > t.clock then t.clock <- horizon

let run_until_empty t ~max_events =
  let budget = ref max_events in
  let continue = ref (max_events > 0) in
  while !continue do
    match step t infinity with
    | `Fired ->
        decr budget;
        if !budget <= 0 then continue := false
    | `Skipped -> ()
    | `Done -> continue := false
  done

let pending t = t.pending_count

let events_fired t = t.fired

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_clock : float;
  s_next_id : int;
  s_fired : int;
  s_pending : (int * float) list;
}

(* Closures cannot be serialized, so a captured scheduler records only
   which events are pending and when they fire.  On restore each owning
   component re-attaches its closure through [rearm]; heap tie-break
   counters equal event ids (both advance in lockstep from zero), so
   re-inserting under seq = id reproduces the original pop order
   exactly.  Cancelled-but-unpopped heap entries are deliberately
   dropped: skipping them is side-effect-free. *)
let capture t =
  let pend =
    List.filter_map
      (fun (prio, seq, _) -> if flag_is_set t seq then Some (seq, prio) else None)
      (Heap.capture t.queue)
  in
  {
    s_clock = t.clock;
    s_next_id = t.next_id;
    s_fired = t.fired;
    s_pending = List.sort (fun (a, _) (b, _) -> Int.compare a b) pend;
  }

let restore t st =
  Heap.clear t.queue;
  Heap.set_next_seq t.queue st.s_next_id;
  Bytes.fill t.flags 0 (Bytes.length t.flags) '\000';
  ensure_flag_capacity t st.s_next_id;
  t.pending_count <- 0;
  Hashtbl.reset t.rearm_times;
  t.clock <- st.s_clock;
  t.next_id <- st.s_next_id;
  t.fired <- st.s_fired;
  List.iter (fun (id, at) -> Hashtbl.replace t.rearm_times id at) st.s_pending

let rearm t ~id action =
  match Hashtbl.find_opt t.rearm_times id with
  | None ->
      invalid_arg
        (Printf.sprintf "Scheduler.rearm: event %d is not awaiting restore" id)
  | Some at ->
      Hashtbl.remove t.rearm_times id;
      Heap.add_with_seq t.queue ~prio:at ~seq:id action;
      set_flag t id;
      t.pending_count <- t.pending_count + 1

let unrestored t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.rearm_times []
  |> List.sort Int.compare
