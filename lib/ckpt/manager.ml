type t = {
  every : float;
  save : time:float -> unit;
  mutable next_k : int;  (* next boundary is [next_k * every] *)
}

let create ~every ~save =
  if not (every > 0.0) then
    invalid_arg "Ckpt.Manager.create: interval must be positive";
  { every; save; next_k = 1 }

let boundary t = float_of_int t.next_k *. t.every

let resume_from t time =
  t.next_k <- 1;
  while boundary t <= time do
    t.next_k <- t.next_k + 1
  done

let run t ~net ~until =
  let rec advance () =
    let now = Net.Network.now net in
    if now < until then begin
      let b = boundary t in
      if b <= until then begin
        Net.Network.run_until net b;
        t.next_k <- t.next_k + 1;
        t.save ~time:b;
        advance ()
      end
      else Net.Network.run_until net until
    end
  in
  advance ()
