let section_names =
  [ "meta"; "config"; "scheduler"; "network"; "rla"; "tcp"; "registry"; "journal" ]

type meta = { time : float; n_tcps : int }

let w_meta b m =
  Codec.w_f64 b m.time;
  Codec.w_int b m.n_tcps

let r_meta r =
  let time = Codec.r_f64 r in
  let n_tcps = Codec.r_int r in
  { time; n_tcps }

let w_journal_entry b (e : Journal.entry) =
  Codec.w_f64 b e.Journal.time;
  Codec.w_string b e.source;
  Codec.w_string b e.event;
  Codec.w_f64 b e.value

let r_journal_entry r =
  let time = Codec.r_f64 r in
  let source = Codec.r_string r in
  let event = Codec.r_string r in
  let value = Codec.r_f64 r in
  { Journal.time; source; event; value }

let payload_of f v =
  let b = Buffer.create 1024 in
  f b v;
  Buffer.contents b

let find_section sections name =
  List.find_opt (fun s -> String.equal s.Codec.name name) sections

let require_section sections name =
  match find_section sections name with
  | Some s -> Ok s
  | None -> Error (Codec.Malformed (Printf.sprintf "missing section %S" name))

let save ~path ~time ~config ~session ?registry ?journal () =
  let { Experiments.Sharing.net; rla; tcps; _ } = session in
  let sections =
    [
      {
        Codec.name = "meta";
        payload = payload_of w_meta { time; n_tcps = List.length tcps };
      };
      {
        Codec.name = "config";
        payload = payload_of State.w_sharing_config config;
      };
      {
        Codec.name = "scheduler";
        payload =
          payload_of State.w_scheduler
            (Sim.Scheduler.capture (Net.Network.scheduler net));
      };
      {
        Codec.name = "network";
        payload = payload_of State.w_network (Net.Network.capture net);
      };
      {
        Codec.name = "rla";
        payload = payload_of State.w_rla_sender (Rla.Sender.capture rla);
      };
      {
        Codec.name = "tcp";
        payload =
          payload_of
            (Codec.w_list State.w_tcp_sender)
            (List.map (fun (_, tcp) -> Tcp.Sender.capture tcp) tcps);
      };
    ]
  in
  let sections =
    match registry with
    | None -> sections
    | Some reg ->
        sections
        @ [
            {
              Codec.name = "registry";
              payload = payload_of State.w_registry (Obs.Registry.capture reg);
            };
          ]
  in
  let sections =
    match journal with
    | None -> sections
    | Some j ->
        sections
        @ [
            {
              Codec.name = "journal";
              payload =
                payload_of (Codec.w_list w_journal_entry) (Journal.entries j);
            };
          ]
  in
  Codec.save_file ~path sections

type error =
  | Codec_error of Codec.error
  | Unclaimed_events of Sim.Scheduler.event_id list

let error_to_string = function
  | Codec_error e -> Codec.error_to_string e
  | Unclaimed_events ids ->
      Printf.sprintf "checkpoint has %d pending event(s) no component claimed: %s"
        (List.length ids)
        (String.concat ", " (List.map string_of_int ids))

type loaded = {
  config : Experiments.Sharing.config;
  session : Experiments.Sharing.session;
  registry : Obs.Registry.t option;
  journal : Journal.t option;
  time : float;
}

let read_meta sections =
  let ( let* ) = Result.bind in
  let* meta_s = require_section sections "meta" in
  let* config_s = require_section sections "config" in
  let* meta = Codec.parse_payload meta_s r_meta in
  let* config = Codec.parse_payload config_s State.r_sharing_config in
  Ok (meta, config)

let load ~path =
  let ( let* ) = Result.bind in
  let as_codec r = Result.map_error (fun e -> Codec_error e) r in
  let* sections = as_codec (Codec.load_file ~path) in
  let* meta, config = as_codec (read_meta sections) in
  let* sched_st =
    as_codec
      (Result.bind (require_section sections "scheduler") (fun s ->
           Codec.parse_payload s State.r_scheduler))
  in
  let* net_st =
    as_codec
      (Result.bind (require_section sections "network") (fun s ->
           Codec.parse_payload s State.r_network))
  in
  let* rla_st =
    as_codec
      (Result.bind (require_section sections "rla") (fun s ->
           Codec.parse_payload s State.r_rla_sender))
  in
  let* tcp_sts =
    as_codec
      (Result.bind (require_section sections "tcp") (fun s ->
           Codec.parse_payload s (Codec.r_list State.r_tcp_sender)))
  in
  let* registry_st =
    match find_section sections "registry" with
    | None -> Ok None
    | Some s ->
        as_codec
          (Result.map
             (fun st -> Some st)
             (Codec.parse_payload s State.r_registry))
  in
  let* journal_entries =
    match find_section sections "journal" with
    | None -> Ok None
    | Some s ->
        as_codec
          (Result.map
             (fun es -> Some es)
             (Codec.parse_payload s (Codec.r_list r_journal_entry)))
  in
  (* Rebuild the identical session (same creation order, same event-id
     assignment), then overlay the captured state.  The scheduler goes
     first — component restores re-arm their events into it. *)
  match
    let registry =
      match registry_st with
      | None -> None
      | Some _ -> Some (Obs.Registry.create ())
    in
    let session = Experiments.Sharing.setup ?registry config in
    let net = session.Experiments.Sharing.net in
    let sched = Net.Network.scheduler net in
    Sim.Scheduler.restore sched sched_st;
    Net.Network.restore net net_st;
    Rla.Sender.restore session.Experiments.Sharing.rla rla_st;
    let tcps = session.Experiments.Sharing.tcps in
    if List.length tcp_sts <> List.length tcps then
      invalid_arg
        (Printf.sprintf "checkpoint has %d TCP flows, session has %d"
           (List.length tcp_sts) (List.length tcps));
    List.iter2 (fun (_, tcp) st -> Tcp.Sender.restore tcp st) tcps tcp_sts;
    (match (registry, registry_st) with
    | Some reg, Some st -> Obs.Registry.restore reg st
    | _ -> ());
    let journal =
      match journal_entries with
      | None -> None
      | Some entries ->
          let j = Journal.create () in
          List.iter (Journal.record j) entries;
          (match registry with Some reg -> Journal.attach j reg | None -> ());
          Some j
    in
    (session, registry, journal)
  with
  | exception Invalid_argument msg -> Error (Codec_error (Codec.Malformed msg))
  | session, registry, journal -> (
      match Sim.Scheduler.unrestored (Net.Network.scheduler session.Experiments.Sharing.net) with
      | [] ->
          Ok { config; session; registry; journal; time = meta.time }
      | ids -> Error (Unclaimed_events ids))

let checkpoint_file ~dir ~prefix ~time =
  Filename.concat dir (Printf.sprintf "%s_t%010.3f.ckpt" prefix time)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* The one run loop both entry points share: slice to [duration] with
   the warm-up reset at its usual place.  [now <= warmup] (not [<]) so
   a checkpoint taken exactly at the warm-up boundary — which captures
   pre-reset state, since the manager saves before the reset runs —
   replays the reset on resume, exactly like the uninterrupted run. *)
let drive ~config ~session ~registry ~journal ~ckpt =
  let net = session.Experiments.Sharing.net in
  let mgr =
    match ckpt with
    | None -> None
    | Some (every, dir, prefix) ->
        mkdir_p dir;
        let save_boundary ~time =
          save
            ~path:(checkpoint_file ~dir ~prefix ~time)
            ~time ~config ~session ?registry ?journal ()
        in
        let m = Manager.create ~every ~save:save_boundary in
        Manager.resume_from m (Net.Network.now net);
        Some m
  in
  let run_to until =
    match mgr with
    | Some m -> Manager.run m ~net ~until
    | None -> Net.Network.run_until net until
  in
  if Net.Network.now net <= config.Experiments.Sharing.warmup then begin
    run_to config.Experiments.Sharing.warmup;
    Experiments.Sharing.start_measurement session
  end;
  run_to config.Experiments.Sharing.duration;
  Experiments.Sharing.measure session config

let run_with_checkpoints ?registry ?journal ~every ~dir ~prefix config =
  let session = Experiments.Sharing.setup ?registry config in
  (match (journal, registry) with
  | Some j, Some reg -> Journal.attach j reg
  | _ -> ());
  drive ~config ~session ~registry ~journal ~ckpt:(Some (every, dir, prefix))

let resume_run ?every ?dir ?prefix loaded =
  let ckpt =
    match (every, dir) with
    | Some every, Some dir ->
        Some (every, dir, Option.value prefix ~default:"resume")
    | _ -> None
  in
  drive ~config:loaded.config ~session:loaded.session
    ~registry:loaded.registry ~journal:loaded.journal ~ckpt
