(* Version 2: Tcp_ack carries an advertised-window field; the TCP
   sender/receiver sections grew handshake, flow-control and RFC 5961
   state; fault timelines gained blind-injection events. *)
let version = 2

let magic = "RLACKPT1"

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Crc_mismatch of string
  | Malformed of string

let error_to_string = function
  | Truncated -> "truncated checkpoint"
  | Bad_magic -> "not a checkpoint file (bad magic)"
  | Bad_version v ->
      Printf.sprintf "unsupported checkpoint format version %d (expected %d)" v
        version
  | Crc_mismatch name -> Printf.sprintf "section %S failed its CRC-32" name
  | Malformed msg -> Printf.sprintf "malformed checkpoint: %s" msg

type section = { name : string; payload : string }

(* --- CRC-32 (IEEE 802.3, reflected), table-driven ------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int64.of_int n) in
         for _ = 0 to 7 do
           c :=
             if not (Int64.equal (Int64.logand !c 1L) 0L) then
               Int64.logxor 0xEDB88320L (Int64.shift_right_logical !c 1)
             else Int64.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFL in
  String.iter
    (fun ch ->
      let idx =
        Int64.to_int (Int64.logand (Int64.logxor !crc (Int64.of_int (Char.code ch))) 0xFFL)
      in
      crc := Int64.logxor table.(idx) (Int64.shift_right_logical !crc 8))
    s;
  Int64.logand (Int64.logxor !crc 0xFFFFFFFFL) 0xFFFFFFFFL

(* --- primitives ----------------------------------------------------- *)

exception Parse of string

type reader = { buf : string; mutable pos : int }

let reader buf = { buf; pos = 0 }

let at_end r = r.pos = String.length r.buf

let need r n =
  if r.pos + n > String.length r.buf then raise (Parse "unexpected end of input")

let w_i64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let r_i64 r =
  need r 8;
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.buf.[r.pos]));
    r.pos <- r.pos + 1
  done;
  !v

let w_int b v = w_i64 b (Int64.of_int v)

let r_int r = Int64.to_int (r_i64 r)

let w_f64 b v = w_i64 b (Int64.bits_of_float v)

let r_f64 r = Int64.float_of_bits (r_i64 r)

let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let r_bool r =
  need r 1;
  let c = r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> raise (Parse (Printf.sprintf "bad bool byte %d" (Char.code c)))

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let r_string r =
  let n = r_int r in
  if n < 0 then raise (Parse "negative string length");
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let w_option w b = function
  | None -> w_bool b false
  | Some v ->
      w_bool b true;
      w b v

let r_option rd r = if r_bool r then Some (rd r) else None

let w_list w b l =
  w_int b (List.length l);
  List.iter (w b) l

let r_list rd r =
  let n = r_int r in
  if n < 0 then raise (Parse "negative list length");
  List.init n (fun _ -> rd r)

let w_pair wa wb b (a, v) =
  wa b a;
  wb b v

let r_pair ra rb r =
  let a = ra r in
  let v = rb r in
  (a, v)

(* --- container ------------------------------------------------------ *)

let encode sections =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  w_int b version;
  w_int b (List.length sections);
  List.iter
    (fun { name; payload } ->
      w_string b name;
      w_int b (String.length payload);
      w_i64 b (crc32 payload);
      Buffer.add_string b payload)
    sections;
  Buffer.contents b

let decode s =
  let r = reader s in
  let truncated_as e = match e with Parse _ -> Truncated | e -> raise e in
  try
    if String.length s < String.length magic then Error Truncated
    else if String.sub s 0 (String.length magic) <> magic then Error Bad_magic
    else begin
      r.pos <- String.length magic;
      let v = r_int r in
      if v <> version then Error (Bad_version v)
      else begin
        let n = r_int r in
        if n < 0 then Error (Malformed "negative section count")
        else begin
          let sections = ref [] in
          let err = ref None in
          (try
             for _ = 1 to n do
               let name = r_string r in
               let len = r_int r in
               if len < 0 then raise (Parse "negative section length");
               let crc = r_i64 r in
               need r len;
               let payload = String.sub r.buf r.pos len in
               r.pos <- r.pos + len;
               if not (Int64.equal (crc32 payload) crc) then begin
                 err := Some (Crc_mismatch name);
                 raise Exit
               end;
               sections := { name; payload } :: !sections
             done;
             if not (at_end r) then
               err := Some (Malformed "trailing bytes after last section")
           with
          | Exit -> ()
          | Parse _ -> err := Some Truncated);
          match !err with
          | Some e -> Error e
          | None -> Ok (List.rev !sections)
        end
      end
    end
  with e -> Error (truncated_as e)

let parse_payload { name; payload } f =
  let r = reader payload in
  try
    let v = f r in
    if at_end r then Ok v
    else Error (Malformed (Printf.sprintf "section %S: trailing bytes" name))
  with
  | Parse msg -> Error (Malformed (Printf.sprintf "section %S: %s" name msg))
  | Invalid_argument msg ->
      Error (Malformed (Printf.sprintf "section %S: %s" name msg))

let save_file ~path sections =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode sections));
  Sys.rename tmp path

let load_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode s
  | exception Sys_error msg -> Error (Malformed msg)
  | exception _ -> Error Truncated
