(** Periodic checkpoint driver.

    Slices a simulation's run loop at multiples of the checkpoint
    interval and invokes a save callback at each boundary.  Slicing is
    the whole trick: [Sim.Scheduler.run_until] leaves the clock at
    exactly the horizon and schedules nothing, so running to [t] in
    one call or in ten slices fires the identical event sequence —
    checkpointing never perturbs the run.

    The boundary count is tracked as an integer multiple of the
    interval (not accumulated floats), so a resumed manager lands on
    the same boundaries as the original one. *)

type t

val create : every:float -> save:(time:float -> unit) -> t
(** [every] must be positive.  [save ~time] runs with the simulation
    clock at exactly [time]; it must be passive (pure state capture —
    no event scheduling, no RNG draws). *)

val resume_from : t -> float -> unit
(** Skip boundaries at or before the given time (call once after
    restoring a checkpoint taken at that time, so it is not
    immediately re-saved). *)

val run : t -> net:Net.Network.t -> until:float -> unit
(** Advance the network to [until], saving at every interval boundary
    on the way (a boundary equal to [until] saves too).  Callable
    repeatedly with increasing horizons — the experiment's own phase
    boundaries (warm-up) just become extra slice points. *)
