type entry = { time : float; source : string; event : string; value : float }

type t = { mutable rev_entries : entry list; mutable len : int }

let create () = { rev_entries = []; len = 0 }

let record t e =
  t.rev_entries <- e :: t.rev_entries;
  t.len <- t.len + 1

let attach t registry =
  Obs.Registry.on_event registry (fun e ->
      record t
        {
          time = e.Obs.Registry.time;
          source = e.source;
          event = e.event;
          value = e.value;
        })

let entries t = List.rev t.rev_entries

let length t = t.len

let entry_equal a b =
  Int64.equal (Int64.bits_of_float a.time) (Int64.bits_of_float b.time)
  && String.equal a.source b.source
  && String.equal a.event b.event
  && Int64.equal (Int64.bits_of_float a.value) (Int64.bits_of_float b.value)

let entry_to_string e =
  Printf.sprintf "%h\t%s\t%s\t%h" e.time e.source e.event e.value

let save t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (entry_to_string e);
          output_char oc '\n')
        (entries t));
  Sys.rename tmp path

let parse_line lineno line =
  match String.split_on_char '\t' line with
  | [ time; source; event; value ] -> (
      match (float_of_string_opt time, float_of_string_opt value) with
      | Some time, Some value -> Ok { time; source; event; value }
      | _ -> Error (Printf.sprintf "line %d: bad float field" lineno))
  | _ -> Error (Printf.sprintf "line %d: expected 4 tab-separated fields" lineno)

let load ~path =
  match open_in_bin path with
  | exception _ -> Error (Printf.sprintf "cannot open %s" path)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let t = create () in
          let rec loop lineno =
            match input_line ic with
            | exception End_of_file -> Ok t
            | line when String.length line = 0 -> loop (lineno + 1)
            | line -> (
                match parse_line lineno line with
                | Ok e ->
                    record t e;
                    loop (lineno + 1)
                | Error _ as e -> e)
          in
          loop 1)

type divergence = { index : int; a : entry option; b : entry option }

let diff ta tb =
  let rec walk i ea eb =
    match (ea, eb) with
    | [], [] -> None
    | a :: ea, b :: eb when entry_equal a b -> walk (i + 1) ea eb
    | a, b ->
        Some
          {
            index = i;
            a = (match a with x :: _ -> Some x | [] -> None);
            b = (match b with x :: _ -> Some x | [] -> None);
          }
  in
  walk 0 (entries ta) (entries tb)
