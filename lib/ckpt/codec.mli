(** Self-describing binary checkpoint container.

    A checkpoint file is a magic string, a format version, and a list
    of named sections, each carrying its own length and CRC-32:

    {v
      "RLACKPT1"  (8 bytes)
      version     (8-byte big-endian int)
      n_sections  (8-byte big-endian int)
      n times:
        name      (length-prefixed string)
        length    (8-byte big-endian int)
        crc32     (8-byte big-endian int, CRC-32 of the payload)
        payload   (length bytes)
    v}

    Readers that do not understand a section can skip it by length;
    corruption is detected per section, so {!decode} can report
    {e which} part of a damaged file is bad.  All scalars inside
    payloads use the {!section:primitives} below — in particular
    floats travel as their IEEE-754 bit patterns, so a round trip is
    bit-exact (NaNs included).

    Decoding never raises: truncated, mislabeled or corrupt input
    comes back as a typed {!error}. *)

val version : int
(** Current format version; bumped on any incompatible layout change.
    Files with a different version are rejected ({!Bad_version})
    rather than misread. *)

type error =
  | Truncated  (** Input ends before the announced structure does. *)
  | Bad_magic  (** Not a checkpoint file. *)
  | Bad_version of int  (** A checkpoint, but from format [n]. *)
  | Crc_mismatch of string  (** Named section failed its CRC. *)
  | Malformed of string  (** Structural parse error (description). *)

val error_to_string : error -> string

type section = { name : string; payload : string }

val encode : section list -> string

val decode : string -> (section list, error) result

val save_file : path:string -> section list -> unit
(** Write-then-rename, so a crash mid-write never leaves a truncated
    file under the final name. *)

val load_file : path:string -> (section list, error) result
(** Never raises: a missing or unreadable file maps to
    [Error (Malformed <os message>)], a short read to [Error Truncated]. *)

val crc32 : string -> int64
(** CRC-32 (IEEE 802.3 polynomial) of the whole string. *)

(** {1:primitives Payload primitives}

    Writers append to a [Buffer.t]; readers consume a cursor and raise
    the internal {!Parse} exception on malformed input, which
    {!decode}-level callers convert with {!parse_payload}. *)

exception Parse of string

type reader

val reader : string -> reader

val at_end : reader -> bool

val parse_payload : section -> (reader -> 'a) -> ('a, error) result
(** Run a decoder over a section payload, mapping {!Parse} (and any
    stray [Invalid_argument]) to [Error (Malformed ...)].  Fails with
    [Malformed] as well when the decoder leaves trailing bytes. *)

val w_i64 : Buffer.t -> int64 -> unit

val w_int : Buffer.t -> int -> unit

val w_f64 : Buffer.t -> float -> unit

val w_bool : Buffer.t -> bool -> unit

val w_string : Buffer.t -> string -> unit

val w_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

val w_pair :
  (Buffer.t -> 'a -> unit) ->
  (Buffer.t -> 'b -> unit) ->
  Buffer.t ->
  'a * 'b ->
  unit

val r_i64 : reader -> int64

val r_int : reader -> int

val r_f64 : reader -> float

val r_bool : reader -> bool

val r_string : reader -> string

val r_option : (reader -> 'a) -> reader -> 'a option

val r_list : (reader -> 'a) -> reader -> 'a list

val r_pair : (reader -> 'a) -> (reader -> 'b) -> reader -> 'a * 'b
