(** Binary encoders/decoders for every component's checkpoint state.

    One [w_]/[r_] pair per state record defined across
    [lib/{sim,net,tcp,core,stats,obs,faults}], composed from the
    {!Codec} primitives.  Encoders append to a buffer; decoders raise
    {!Codec.Parse} on malformed input (callers go through
    {!Codec.parse_payload}, which converts that to a typed error).

    Also carries the {!Experiments.Sharing.config} codec, so a
    checkpoint is self-contained: restoring needs no command line —
    the file says how to rebuild the identical topology. *)

val w_scheduler : Buffer.t -> Sim.Scheduler.state -> unit

val r_scheduler : Codec.reader -> Sim.Scheduler.state

val w_packet : Buffer.t -> Net.Packet.t -> unit
(** Payload constructors covered: [Raw], [Tcp_data], [Tcp_ack],
    [Rla_data], [Rla_ack].  Raises [Invalid_argument] on any other
    (unknown extension) payload — such packets cannot round-trip. *)

val r_packet : Codec.reader -> Net.Packet.t

val w_network : Buffer.t -> Net.Network.state -> unit

val r_network : Codec.reader -> Net.Network.state

val w_tcp_sender : Buffer.t -> Tcp.Sender.state -> unit

val r_tcp_sender : Codec.reader -> Tcp.Sender.state

val w_rla_sender : Buffer.t -> Rla.Sender.state -> unit

val r_rla_sender : Codec.reader -> Rla.Sender.state

val w_registry : Buffer.t -> Obs.Registry.state -> unit

val r_registry : Codec.reader -> Obs.Registry.state

val w_injector : Buffer.t -> Faults.Injector.state -> unit

val r_injector : Codec.reader -> Faults.Injector.state

val w_sharing_config : Buffer.t -> Experiments.Sharing.config -> unit

val r_sharing_config : Codec.reader -> Experiments.Sharing.config
