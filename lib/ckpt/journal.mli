(** Checkpoint event journal: an append-only log of the simulation's
    instrumentation events (congestion signals, window cuts, forced
    cuts, fault injections, ...) used to localize divergence.

    A journal {!attach}ed to a run's metrics registry records every
    {!Obs.Registry.emit} in firing order.  Two runs that should be
    identical (an uninterrupted run vs. a restore-and-resume, or the
    same seed at different [--jobs]) then either produce identical
    journals, or {!diff} names the exact first event where their
    histories part — far more actionable than "the final CSV differs".

    Recording is passive (no scheduled events, no RNG draws), so an
    attached journal never perturbs the run.  Entries round-trip
    through {!save}/{!load} bit-exactly: floats are written as C99
    hexadecimal literals. *)

type entry = { time : float; source : string; event : string; value : float }

type t

val create : unit -> t

val attach : t -> Obs.Registry.t -> unit
(** Subscribe to the registry's event stream; every emitted event is
    appended.  A journal can gather several registries, though runs
    here use one. *)

val record : t -> entry -> unit

val entries : t -> entry list
(** In recording order. *)

val length : t -> int

val entry_equal : entry -> entry -> bool
(** Bit-exact: float payloads are compared by their IEEE-754 bits
    (so identical NaNs compare equal and [-0. <> 0.]). *)

val entry_to_string : entry -> string

val save : t -> path:string -> unit
(** One tab-separated line per entry ([time, source, event, value],
    floats in [%h] form), written via a temporary file and rename. *)

val load : path:string -> (t, string) result

type divergence = {
  index : int;  (** 0-based position of the first differing entry. *)
  a : entry option;  (** [None] = first journal ended here. *)
  b : entry option;
}

val diff : t -> t -> divergence option
(** [None] when the journals are identical. *)
