open Codec

(* --- stats ---------------------------------------------------------- *)

let w_ewma b (s : Stats.Ewma.state) =
  w_f64 b s.Stats.Ewma.s_avg;
  w_int b s.s_samples

let r_ewma r =
  let s_avg = r_f64 r in
  let s_samples = r_int r in
  { Stats.Ewma.s_avg; s_samples }

let w_welford b (s : Stats.Welford.state) =
  w_int b s.Stats.Welford.s_n;
  w_f64 b s.s_mean;
  w_f64 b s.s_m2;
  w_f64 b s.s_min;
  w_f64 b s.s_max

let r_welford r =
  let s_n = r_int r in
  let s_mean = r_f64 r in
  let s_m2 = r_f64 r in
  let s_min = r_f64 r in
  let s_max = r_f64 r in
  { Stats.Welford.s_n; s_mean; s_m2; s_min; s_max }

let w_time_avg b (s : Stats.Time_avg.state) =
  w_f64 b s.Stats.Time_avg.s_start;
  w_f64 b s.s_last_time;
  w_f64 b s.s_last_value;
  w_f64 b s.s_weighted_sum

let r_time_avg r =
  let s_start = r_f64 r in
  let s_last_time = r_f64 r in
  let s_last_value = r_f64 r in
  let s_weighted_sum = r_f64 r in
  { Stats.Time_avg.s_start; s_last_time; s_last_value; s_weighted_sum }

(* --- scheduler ------------------------------------------------------ *)

let w_scheduler b (s : Sim.Scheduler.state) =
  w_f64 b s.Sim.Scheduler.s_clock;
  w_int b s.s_next_id;
  w_int b s.s_fired;
  w_list (w_pair w_int w_f64) b s.s_pending

let r_scheduler r =
  let s_clock = r_f64 r in
  let s_next_id = r_int r in
  let s_fired = r_int r in
  let s_pending = r_list (r_pair r_int r_f64) r in
  { Sim.Scheduler.s_clock; s_next_id; s_fired; s_pending }

(* --- packets -------------------------------------------------------- *)

let w_dest b = function
  | Net.Packet.Unicast a ->
      w_int b 0;
      w_int b a
  | Net.Packet.Multicast g ->
      w_int b 1;
      w_int b g

let r_dest r =
  match r_int r with
  | 0 -> Net.Packet.Unicast (r_int r)
  | 1 -> Net.Packet.Multicast (r_int r)
  | n -> raise (Parse (Printf.sprintf "bad dest tag %d" n))

let w_sack_block b (blk : Tcp.Wire.sack_block) =
  w_int b blk.Tcp.Wire.block_lo;
  w_int b blk.block_hi

let r_sack_block r =
  let block_lo = r_int r in
  let block_hi = r_int r in
  { Tcp.Wire.block_lo; block_hi }

let w_payload b = function
  | Net.Packet.Raw -> w_int b 0
  | Tcp.Wire.Tcp_data { seq; sent_at } ->
      w_int b 1;
      w_int b seq;
      w_f64 b sent_at
  | Tcp.Wire.Tcp_ack { cum_ack; blocks; echo; ece; rwnd } ->
      w_int b 2;
      w_int b cum_ack;
      w_list w_sack_block b blocks;
      w_f64 b echo;
      w_bool b ece;
      w_int b rwnd
  | Rla.Wire.Rla_data { seq; sent_at; rexmit } ->
      w_int b 3;
      w_int b seq;
      w_f64 b sent_at;
      w_bool b rexmit
  | Rla.Wire.Rla_ack { rcvr; cum_ack; blocks; echo; ece } ->
      w_int b 4;
      w_int b rcvr;
      w_int b cum_ack;
      w_list w_sack_block b blocks;
      w_f64 b echo;
      w_bool b ece
  | Tcp.Wire.Tcp_syn { options; sent_at } ->
      w_int b 5;
      w_int b options;
      w_f64 b sent_at
  | Tcp.Wire.Tcp_syn_ack { options; rwnd; sent_at } ->
      w_int b 6;
      w_int b options;
      w_int b rwnd;
      w_f64 b sent_at
  | Tcp.Wire.Tcp_rst { seq } ->
      w_int b 7;
      w_int b seq
  | Tcp.Wire.Tcp_probe { seq; sent_at } ->
      w_int b 8;
      w_int b seq;
      w_f64 b sent_at
  | _ -> invalid_arg "Ckpt.State: unknown packet payload extension"

let r_payload r =
  match r_int r with
  | 0 -> Net.Packet.Raw
  | 1 ->
      let seq = r_int r in
      let sent_at = r_f64 r in
      Tcp.Wire.Tcp_data { seq; sent_at }
  | 2 ->
      let cum_ack = r_int r in
      let blocks = r_list r_sack_block r in
      let echo = r_f64 r in
      let ece = r_bool r in
      let rwnd = r_int r in
      Tcp.Wire.Tcp_ack { cum_ack; blocks; echo; ece; rwnd }
  | 3 ->
      let seq = r_int r in
      let sent_at = r_f64 r in
      let rexmit = r_bool r in
      Rla.Wire.Rla_data { seq; sent_at; rexmit }
  | 4 ->
      let rcvr = r_int r in
      let cum_ack = r_int r in
      let blocks = r_list r_sack_block r in
      let echo = r_f64 r in
      let ece = r_bool r in
      Rla.Wire.Rla_ack { rcvr; cum_ack; blocks; echo; ece }
  | 5 ->
      let options = r_int r in
      let sent_at = r_f64 r in
      Tcp.Wire.Tcp_syn { options; sent_at }
  | 6 ->
      let options = r_int r in
      let rwnd = r_int r in
      let sent_at = r_f64 r in
      Tcp.Wire.Tcp_syn_ack { options; rwnd; sent_at }
  | 7 -> Tcp.Wire.Tcp_rst { seq = r_int r }
  | 8 ->
      let seq = r_int r in
      let sent_at = r_f64 r in
      Tcp.Wire.Tcp_probe { seq; sent_at }
  | n -> raise (Parse (Printf.sprintf "bad payload tag %d" n))

let w_packet b (p : Net.Packet.t) =
  w_int b p.Net.Packet.uid;
  w_int b p.flow;
  w_int b p.src;
  w_dest b p.dst;
  w_int b p.size;
  w_payload b p.payload;
  w_f64 b p.born;
  w_bool b p.ecn

let r_packet r =
  let uid = r_int r in
  let flow = r_int r in
  let src = r_int r in
  let dst = r_dest r in
  let size = r_int r in
  let payload = r_payload r in
  let born = r_f64 r in
  let ecn = r_bool r in
  (* [refs] is not serialized: a deserialized packet is a private copy
     with exactly one owner (the link state it is restored into). *)
  { Net.Packet.uid; flow; src; dst; size; payload; born; ecn; refs = 1 }

(* --- links / network ------------------------------------------------ *)

let w_red b (s : Net.Red.state) =
  w_f64 b s.Net.Red.s_avg;
  w_int b s.s_count;
  w_f64 b s.s_q_time;
  w_bool b s.s_idle;
  w_int b s.s_drops;
  w_int b s.s_marks

let r_red r =
  let s_avg = r_f64 r in
  let s_count = r_int r in
  let s_q_time = r_f64 r in
  let s_idle = r_bool r in
  let s_drops = r_int r in
  let s_marks = r_int r in
  { Net.Red.s_avg; s_count; s_q_time; s_idle; s_drops; s_marks }

let w_disc b = function
  | Net.Queue_disc.Stateless -> w_int b 0
  | Net.Queue_disc.Red s ->
      w_int b 1;
      w_red b s

let r_disc r =
  match r_int r with
  | 0 -> Net.Queue_disc.Stateless
  | 1 -> Net.Queue_disc.Red (r_red r)
  | n -> raise (Parse (Printf.sprintf "bad queue-disc tag %d" n))

let w_link b (s : Net.Link.state) =
  w_f64 b s.Net.Link.s_bandwidth_bps;
  w_f64 b s.s_prop_delay;
  w_list w_packet b s.s_buffer;
  w_bool b s.s_busy;
  w_option w_packet b s.s_in_service;
  w_option w_int b s.s_tx_event;
  w_list (w_pair w_int w_packet) b s.s_inflight;
  w_bool b s.s_up;
  w_f64 b s.s_down_since;
  w_f64 b s.s_downtime_acc;
  w_f64 b s.s_last_delivery;
  w_int b s.s_offered;
  w_int b s.s_dropped;
  w_int b s.s_delivered;
  w_int b s.s_bytes_delivered;
  w_int b s.s_marked;
  w_i64 b s.s_rng;
  w_disc b s.s_disc

let r_link r =
  let s_bandwidth_bps = r_f64 r in
  let s_prop_delay = r_f64 r in
  let s_buffer = r_list r_packet r in
  let s_busy = r_bool r in
  let s_in_service = r_option r_packet r in
  let s_tx_event = r_option r_int r in
  let s_inflight = r_list (r_pair r_int r_packet) r in
  let s_up = r_bool r in
  let s_down_since = r_f64 r in
  let s_downtime_acc = r_f64 r in
  let s_last_delivery = r_f64 r in
  let s_offered = r_int r in
  let s_dropped = r_int r in
  let s_delivered = r_int r in
  let s_bytes_delivered = r_int r in
  let s_marked = r_int r in
  let s_rng = r_i64 r in
  let s_disc = r_disc r in
  {
    Net.Link.s_bandwidth_bps;
    s_prop_delay;
    s_buffer;
    s_busy;
    s_in_service;
    s_tx_event;
    s_inflight;
    s_up;
    s_down_since;
    s_downtime_acc;
    s_last_delivery;
    s_offered;
    s_dropped;
    s_delivered;
    s_bytes_delivered;
    s_marked;
    s_rng;
    s_disc;
  }

let w_network b (s : Net.Network.state) =
  w_i64 b s.Net.Network.s_root_rng;
  w_int b s.s_next_flow;
  w_int b s.s_next_group;
  w_int b s.s_next_uid;
  w_list w_int b s.s_nodes;
  w_list w_link b s.s_links

let r_network r =
  let s_root_rng = r_i64 r in
  let s_next_flow = r_int r in
  let s_next_group = r_int r in
  let s_next_uid = r_int r in
  let s_nodes = r_list r_int r in
  let s_links = r_list r_link r in
  { Net.Network.s_root_rng; s_next_flow; s_next_group; s_next_uid; s_nodes; s_links }

(* --- tcp ------------------------------------------------------------ *)

let w_rto b (s : Tcp.Rto.state) =
  w_f64 b s.Tcp.Rto.s_srtt;
  w_f64 b s.s_rttvar;
  w_int b s.s_shift;
  w_int b s.s_samples

let r_rto r =
  let s_srtt = r_f64 r in
  let s_rttvar = r_f64 r in
  let s_shift = r_int r in
  let s_samples = r_int r in
  { Tcp.Rto.s_srtt; s_rttvar; s_shift; s_samples }

let w_sb_entry b (e : Tcp.Scoreboard.entry_state) =
  w_int b e.Tcp.Scoreboard.e_seq;
  w_bool b e.e_sacked;
  w_bool b e.e_lost;
  w_bool b e.e_rexmitted;
  w_f64 b e.e_rexmit_time

let r_sb_entry r =
  let e_seq = r_int r in
  let e_sacked = r_bool r in
  let e_lost = r_bool r in
  let e_rexmitted = r_bool r in
  let e_rexmit_time = r_f64 r in
  { Tcp.Scoreboard.e_seq; e_sacked; e_lost; e_rexmitted; e_rexmit_time }

let w_scoreboard b (s : Tcp.Scoreboard.state) =
  w_list w_sb_entry b s.Tcp.Scoreboard.s_entries;
  w_int b s.s_high_ack;
  w_int b s.s_next_seq;
  w_int b s.s_highest_sacked;
  w_int b s.s_sacked_cnt;
  w_int b s.s_lost_cnt;
  w_int b s.s_rexmit_out;
  w_int b s.s_loss_floor

let r_scoreboard r =
  let s_entries = r_list r_sb_entry r in
  let s_high_ack = r_int r in
  let s_next_seq = r_int r in
  let s_highest_sacked = r_int r in
  let s_sacked_cnt = r_int r in
  let s_lost_cnt = r_int r in
  let s_rexmit_out = r_int r in
  let s_loss_floor = r_int r in
  {
    Tcp.Scoreboard.s_entries;
    s_high_ack;
    s_next_seq;
    s_highest_sacked;
    s_sacked_cnt;
    s_lost_cnt;
    s_rexmit_out;
    s_loss_floor;
  }

let w_tcp_receiver b (s : Tcp.Receiver.state) =
  w_list w_int b s.Tcp.Receiver.s_ooo;
  w_list w_int b s.s_recent;
  w_int b s.s_expected;
  w_int b s.s_received_total;
  w_int b s.s_duplicates;
  w_f64 b s.s_t0;
  w_int b s.s_wscale;
  w_bool b s.s_sack_ok;
  w_bool b s.s_rst_strict;
  w_bool b s.s_closed;
  w_bool b s.s_syn_received;
  w_int b s.s_rst_accepted;
  w_int b s.s_rst_challenged;
  w_int b s.s_rst_dropped;
  w_int b s.s_challenge_acks;
  w_int b s.s_ghost_data;
  w_int b s.s_probes_received

let r_tcp_receiver r =
  let s_ooo = r_list r_int r in
  let s_recent = r_list r_int r in
  let s_expected = r_int r in
  let s_received_total = r_int r in
  let s_duplicates = r_int r in
  let s_t0 = r_f64 r in
  let s_wscale = r_int r in
  let s_sack_ok = r_bool r in
  let s_rst_strict = r_bool r in
  let s_closed = r_bool r in
  let s_syn_received = r_bool r in
  let s_rst_accepted = r_int r in
  let s_rst_challenged = r_int r in
  let s_rst_dropped = r_int r in
  let s_challenge_acks = r_int r in
  let s_ghost_data = r_int r in
  let s_probes_received = r_int r in
  {
    Tcp.Receiver.s_ooo;
    s_recent;
    s_expected;
    s_received_total;
    s_duplicates;
    s_t0;
    s_wscale;
    s_sack_ok;
    s_rst_strict;
    s_closed;
    s_syn_received;
    s_rst_accepted;
    s_rst_challenged;
    s_rst_dropped;
    s_challenge_acks;
    s_ghost_data;
    s_probes_received;
  }

let w_tcp_sender b (s : Tcp.Sender.state) =
  w_scoreboard b s.Tcp.Sender.s_sb;
  w_rto b s.s_rto;
  w_tcp_receiver b s.s_receiver;
  w_f64 b s.s_cwnd;
  w_f64 b s.s_ssthresh;
  w_bool b s.s_in_recovery;
  w_int b s.s_recover_point;
  w_option w_int b s.s_timer;
  w_option w_int b s.s_start_event;
  w_time_avg b s.s_cwnd_avg;
  w_welford b s.s_rtt;
  w_int b s.s_sent_new;
  w_int b s.s_retransmits;
  w_int b s.s_window_cuts;
  w_int b s.s_timeouts;
  w_f64 b s.s_meas_time;
  w_int b s.s_meas_delivered;
  w_int b s.s_meas_sent_new;
  w_int b s.s_meas_retransmits;
  w_int b s.s_meas_window_cuts;
  w_int b s.s_meas_timeouts;
  w_option w_f64 b s.s_completed_at;
  w_bool b s.s_established;
  w_int b s.s_syn_sent;
  w_int b s.s_neg_wscale;
  w_int b s.s_rwnd_field;
  w_option w_int b s.s_persist_timer;
  w_int b s.s_persist_shift;
  w_int b s.s_zero_window_probes;
  w_int b s.s_ghost_acks

let r_tcp_sender r =
  let s_sb = r_scoreboard r in
  let s_rto = r_rto r in
  let s_receiver = r_tcp_receiver r in
  let s_cwnd = r_f64 r in
  let s_ssthresh = r_f64 r in
  let s_in_recovery = r_bool r in
  let s_recover_point = r_int r in
  let s_timer = r_option r_int r in
  let s_start_event = r_option r_int r in
  let s_cwnd_avg = r_time_avg r in
  let s_rtt = r_welford r in
  let s_sent_new = r_int r in
  let s_retransmits = r_int r in
  let s_window_cuts = r_int r in
  let s_timeouts = r_int r in
  let s_meas_time = r_f64 r in
  let s_meas_delivered = r_int r in
  let s_meas_sent_new = r_int r in
  let s_meas_retransmits = r_int r in
  let s_meas_window_cuts = r_int r in
  let s_meas_timeouts = r_int r in
  let s_completed_at = r_option r_f64 r in
  let s_established = r_bool r in
  let s_syn_sent = r_int r in
  let s_neg_wscale = r_int r in
  let s_rwnd_field = r_int r in
  let s_persist_timer = r_option r_int r in
  let s_persist_shift = r_int r in
  let s_zero_window_probes = r_int r in
  let s_ghost_acks = r_int r in
  {
    Tcp.Sender.s_sb;
    s_rto;
    s_receiver;
    s_cwnd;
    s_ssthresh;
    s_in_recovery;
    s_recover_point;
    s_timer;
    s_start_event;
    s_cwnd_avg;
    s_rtt;
    s_sent_new;
    s_retransmits;
    s_window_cuts;
    s_timeouts;
    s_meas_time;
    s_meas_delivered;
    s_meas_sent_new;
    s_meas_retransmits;
    s_meas_window_cuts;
    s_meas_timeouts;
    s_completed_at;
    s_established;
    s_syn_sent;
    s_neg_wscale;
    s_rwnd_field;
    s_persist_timer;
    s_persist_shift;
    s_zero_window_probes;
    s_ghost_acks;
  }

(* --- rla ------------------------------------------------------------ *)

let w_rcv_state b (s : Rla.Rcv_state.state) =
  w_scoreboard b s.Rla.Rcv_state.s_board;
  w_ewma b s.s_srtt;
  w_ewma b s.s_interval;
  w_f64 b s.s_cperiod_start;
  w_f64 b s.s_last_signal;
  w_int b s.s_signals;
  w_int b s.s_acks;
  w_bool b s.s_active

let r_rcv_state r =
  let s_board = r_scoreboard r in
  let s_srtt = r_ewma r in
  let s_interval = r_ewma r in
  let s_cperiod_start = r_f64 r in
  let s_last_signal = r_f64 r in
  let s_signals = r_int r in
  let s_acks = r_int r in
  let s_active = r_bool r in
  {
    Rla.Rcv_state.s_board;
    s_srtt;
    s_interval;
    s_cperiod_start;
    s_last_signal;
    s_signals;
    s_acks;
    s_active;
  }

let w_rla_receiver b (s : Rla.Receiver.state) =
  w_i64 b s.Rla.Receiver.s_rng;
  w_list w_int b s.s_ooo;
  w_list w_int b s.s_recent;
  w_int b s.s_expected;
  w_int b s.s_received_total;
  w_int b s.s_duplicates;
  w_int b s.s_rexmits_received;
  w_list
    (fun b (id, echo, ece) ->
      w_int b id;
      w_f64 b echo;
      w_bool b ece)
    b s.s_pending_acks

let r_rla_receiver r =
  let s_rng = r_i64 r in
  let s_ooo = r_list r_int r in
  let s_recent = r_list r_int r in
  let s_expected = r_int r in
  let s_received_total = r_int r in
  let s_duplicates = r_int r in
  let s_rexmits_received = r_int r in
  let s_pending_acks =
    r_list
      (fun r ->
        let id = r_int r in
        let echo = r_f64 r in
        let ece = r_bool r in
        (id, echo, ece))
      r
  in
  {
    Rla.Receiver.s_rng;
    s_ooo;
    s_recent;
    s_expected;
    s_received_total;
    s_duplicates;
    s_rexmits_received;
    s_pending_acks;
  }

let w_coverage b (c : Rla.Sender.coverage_state) =
  w_int b c.Rla.Sender.c_seq;
  w_int b c.c_covered;
  w_bool b c.c_rexmitted;
  w_f64 b c.c_sent_at

let r_coverage r =
  let c_seq = r_int r in
  let c_covered = r_int r in
  let c_rexmitted = r_bool r in
  let c_sent_at = r_f64 r in
  { Rla.Sender.c_seq; c_covered; c_rexmitted; c_sent_at }

let w_rexmit_target b = function
  | Rla.Sender.To_group -> w_int b 0
  | Rla.Sender.To_receivers addrs ->
      w_int b 1;
      w_list w_int b addrs

let r_rexmit_target r =
  match r_int r with
  | 0 -> Rla.Sender.To_group
  | 1 -> Rla.Sender.To_receivers (r_list r_int r)
  | n -> raise (Parse (Printf.sprintf "bad rexmit-target tag %d" n))

let w_rla_sender b (s : Rla.Sender.state) =
  w_list w_rcv_state b s.Rla.Sender.s_rcvrs;
  w_int b s.s_n_active;
  w_list w_rla_receiver b s.s_endpoints;
  w_i64 b s.s_rng;
  w_rto b s.s_rto;
  w_f64 b s.s_cwnd;
  w_f64 b s.s_ssthresh;
  w_ewma b s.s_awnd;
  w_f64 b s.s_last_window_cut;
  w_int b s.s_next_seq;
  w_int b s.s_mra;
  w_list w_coverage b s.s_coverage;
  w_list w_int b s.s_pending;
  w_list (w_pair w_int w_rexmit_target) b s.s_rexmit_queue;
  w_list w_int b s.s_queued;
  w_option w_int b s.s_timer;
  w_option w_int b s.s_start_event;
  w_int b s.s_num_trouble;
  w_int b s.s_window_cuts;
  w_int b s.s_forced_cuts;
  w_int b s.s_timeouts;
  w_int b s.s_signals;
  w_int b s.s_rexmits_multicast;
  w_int b s.s_rexmits_unicast;
  w_int b s.s_sent_new;
  w_time_avg b s.s_cwnd_avg;
  w_welford b s.s_rtt;
  w_welford b s.s_rtt_acks;
  w_f64 b s.s_meas_time;
  w_int b s.s_meas_mra;
  w_int b s.s_meas_signals;
  w_int b s.s_meas_cuts;
  w_int b s.s_meas_forced;
  w_int b s.s_meas_timeouts;
  w_int b s.s_meas_rexmits;
  w_int b s.s_meas_sent_new;
  w_list w_int b s.s_meas_signals_per

let r_rla_sender r =
  let s_rcvrs = r_list r_rcv_state r in
  let s_n_active = r_int r in
  let s_endpoints = r_list r_rla_receiver r in
  let s_rng = r_i64 r in
  let s_rto = r_rto r in
  let s_cwnd = r_f64 r in
  let s_ssthresh = r_f64 r in
  let s_awnd = r_ewma r in
  let s_last_window_cut = r_f64 r in
  let s_next_seq = r_int r in
  let s_mra = r_int r in
  let s_coverage = r_list r_coverage r in
  let s_pending = r_list r_int r in
  let s_rexmit_queue = r_list (r_pair r_int r_rexmit_target) r in
  let s_queued = r_list r_int r in
  let s_timer = r_option r_int r in
  let s_start_event = r_option r_int r in
  let s_num_trouble = r_int r in
  let s_window_cuts = r_int r in
  let s_forced_cuts = r_int r in
  let s_timeouts = r_int r in
  let s_signals = r_int r in
  let s_rexmits_multicast = r_int r in
  let s_rexmits_unicast = r_int r in
  let s_sent_new = r_int r in
  let s_cwnd_avg = r_time_avg r in
  let s_rtt = r_welford r in
  let s_rtt_acks = r_welford r in
  let s_meas_time = r_f64 r in
  let s_meas_mra = r_int r in
  let s_meas_signals = r_int r in
  let s_meas_cuts = r_int r in
  let s_meas_forced = r_int r in
  let s_meas_timeouts = r_int r in
  let s_meas_rexmits = r_int r in
  let s_meas_sent_new = r_int r in
  let s_meas_signals_per = r_list r_int r in
  {
    Rla.Sender.s_rcvrs;
    s_n_active;
    s_endpoints;
    s_rng;
    s_rto;
    s_cwnd;
    s_ssthresh;
    s_awnd;
    s_last_window_cut;
    s_next_seq;
    s_mra;
    s_coverage;
    s_pending;
    s_rexmit_queue;
    s_queued;
    s_timer;
    s_start_event;
    s_num_trouble;
    s_window_cuts;
    s_forced_cuts;
    s_timeouts;
    s_signals;
    s_rexmits_multicast;
    s_rexmits_unicast;
    s_sent_new;
    s_cwnd_avg;
    s_rtt;
    s_rtt_acks;
    s_meas_time;
    s_meas_mra;
    s_meas_signals;
    s_meas_cuts;
    s_meas_forced;
    s_meas_timeouts;
    s_meas_rexmits;
    s_meas_sent_new;
    s_meas_signals_per;
  }

(* --- registry ------------------------------------------------------- *)

let w_farray b a =
  w_int b (Array.length a);
  Array.iter (w_f64 b) a

let r_farray r =
  let n = r_int r in
  if n < 0 then raise (Parse "negative array length");
  Array.init n (fun _ -> r_f64 r)

let w_series b (s : Obs.Series.state) =
  w_farray b s.Obs.Series.s_times;
  w_farray b s.s_values;
  w_int b s.s_stride;
  w_int b s.s_skip;
  w_int b s.s_offered

let r_series r =
  let s_times = r_farray r in
  let s_values = r_farray r in
  let s_stride = r_int r in
  let s_skip = r_int r in
  let s_offered = r_int r in
  { Obs.Series.s_times; s_values; s_stride; s_skip; s_offered }

let w_registry b (s : Obs.Registry.state) =
  w_list (w_pair w_string w_int) b s.Obs.Registry.s_counters;
  w_list (w_pair w_string w_f64) b s.s_gauges;
  w_list
    (fun b (name, limit, series) ->
      w_string b name;
      w_int b limit;
      w_series b series)
    b s.s_series

let r_registry r =
  let s_counters = r_list (r_pair r_string r_int) r in
  let s_gauges = r_list (r_pair r_string r_f64) r in
  let s_series =
    r_list
      (fun r ->
        let name = r_string r in
        let limit = r_int r in
        let series = r_series r in
        (name, limit, series))
      r
  in
  { Obs.Registry.s_counters; s_gauges; s_series }

(* --- faults --------------------------------------------------------- *)

let w_flink b (a, z) =
  w_int b a;
  w_int b z

let r_flink r =
  let a = r_int r in
  let z = r_int r in
  (a, z)

let w_fault_event b = function
  | Faults.Timeline.Link_down l ->
      w_int b 0;
      w_flink b l
  | Faults.Timeline.Link_up l ->
      w_int b 1;
      w_flink b l
  | Faults.Timeline.Set_bandwidth (l, bps) ->
      w_int b 2;
      w_flink b l;
      w_f64 b bps
  | Faults.Timeline.Set_delay (l, d) ->
      w_int b 3;
      w_flink b l;
      w_f64 b d
  | Faults.Timeline.Receiver_leave a ->
      w_int b 4;
      w_int b a
  | Faults.Timeline.Receiver_join a ->
      w_int b 5;
      w_int b a
  | Faults.Timeline.Flow_start { id; dst } ->
      w_int b 6;
      w_int b id;
      w_int b dst
  | Faults.Timeline.Flow_stop { id } ->
      w_int b 7;
      w_int b id
  | Faults.Timeline.Rst_inject { flow; dst; seq } ->
      w_int b 8;
      w_int b flow;
      w_int b dst;
      w_int b seq
  | Faults.Timeline.Data_inject { flow; dst; seq } ->
      w_int b 9;
      w_int b flow;
      w_int b dst;
      w_int b seq

let r_fault_event r =
  match r_int r with
  | 0 -> Faults.Timeline.Link_down (r_flink r)
  | 1 -> Faults.Timeline.Link_up (r_flink r)
  | 2 ->
      let l = r_flink r in
      let bps = r_f64 r in
      Faults.Timeline.Set_bandwidth (l, bps)
  | 3 ->
      let l = r_flink r in
      let d = r_f64 r in
      Faults.Timeline.Set_delay (l, d)
  | 4 -> Faults.Timeline.Receiver_leave (r_int r)
  | 5 -> Faults.Timeline.Receiver_join (r_int r)
  | 6 ->
      let id = r_int r in
      let dst = r_int r in
      Faults.Timeline.Flow_start { id; dst }
  | 7 -> Faults.Timeline.Flow_stop { id = r_int r }
  | 8 ->
      let flow = r_int r in
      let dst = r_int r in
      let seq = r_int r in
      Faults.Timeline.Rst_inject { flow; dst; seq }
  | 9 ->
      let flow = r_int r in
      let dst = r_int r in
      let seq = r_int r in
      Faults.Timeline.Data_inject { flow; dst; seq }
  | n -> raise (Parse (Printf.sprintf "bad fault-event tag %d" n))

let w_applied b (a : Faults.Injector.applied) =
  w_f64 b a.Faults.Injector.time;
  w_fault_event b a.event;
  w_bool b a.ok

let r_applied r =
  let time = r_f64 r in
  let event = r_fault_event r in
  let ok = r_bool r in
  { Faults.Injector.time; event; ok }

let w_injector b (s : Faults.Injector.state) =
  w_list w_applied b s.Faults.Injector.s_log;
  w_int b s.s_outages;
  w_int b s.s_skipped;
  w_list w_flink b s.s_touched;
  w_list (w_pair w_int w_int) b s.s_pending

let r_injector r =
  let s_log = r_list r_applied r in
  let s_outages = r_int r in
  let s_skipped = r_int r in
  let s_touched = r_list r_flink r in
  let s_pending = r_list (r_pair r_int r_int) r in
  { Faults.Injector.s_log; s_outages; s_skipped; s_touched; s_pending }

(* --- sharing config ------------------------------------------------- *)

let w_gateway b = function
  | Experiments.Scenario.Droptail -> w_int b 0
  | Experiments.Scenario.Red -> w_int b 1

let r_gateway r =
  match r_int r with
  | 0 -> Experiments.Scenario.Droptail
  | 1 -> Experiments.Scenario.Red
  | n -> raise (Parse (Printf.sprintf "bad gateway tag %d" n))

let w_case b = function
  | Experiments.Tree.L1_bottleneck -> w_int b 0
  | Experiments.Tree.L2_all -> w_int b 1
  | Experiments.Tree.L3_all -> w_int b 2
  | Experiments.Tree.L4_all -> w_int b 3
  | Experiments.Tree.L4_first k ->
      w_int b 4;
      w_int b k
  | Experiments.Tree.L2_single -> w_int b 5

let r_case r =
  match r_int r with
  | 0 -> Experiments.Tree.L1_bottleneck
  | 1 -> Experiments.Tree.L2_all
  | 2 -> Experiments.Tree.L3_all
  | 3 -> Experiments.Tree.L4_all
  | 4 -> Experiments.Tree.L4_first (r_int r)
  | 5 -> Experiments.Tree.L2_single
  | n -> raise (Parse (Printf.sprintf "bad tree-case tag %d" n))

let w_rtt_scaling b = function
  | Rla.Params.Equal_rtt -> w_int b 0
  | Rla.Params.Rtt_power k ->
      w_int b 1;
      w_f64 b k

let r_rtt_scaling r =
  match r_int r with
  | 0 -> Rla.Params.Equal_rtt
  | 1 -> Rla.Params.Rtt_power (r_f64 r)
  | n -> raise (Parse (Printf.sprintf "bad rtt-scaling tag %d" n))

let w_trouble_counting b = function
  | Rla.Params.Dynamic -> w_int b 0
  | Rla.Params.All_receivers -> w_int b 1

let r_trouble_counting r =
  match r_int r with
  | 0 -> Rla.Params.Dynamic
  | 1 -> Rla.Params.All_receivers
  | n -> raise (Parse (Printf.sprintf "bad trouble-counting tag %d" n))

let w_rla_params b (p : Rla.Params.t) =
  w_f64 b p.Rla.Params.eta;
  w_f64 b p.group_rtt_factor;
  w_f64 b p.forced_cut_factor;
  w_rtt_scaling b p.rtt_scaling;
  w_trouble_counting b p.trouble_counting;
  w_int b p.rexmit_thresh;
  w_f64 b p.awnd_weight;
  w_f64 b p.interval_ewma_weight;
  w_f64 b p.srtt_weight;
  w_int b p.dupthresh;
  w_f64 b p.init_cwnd;
  w_f64 b p.init_ssthresh;
  w_int b p.max_burst;
  w_int b p.rcv_buffer;
  w_int b p.data_size;
  w_f64 b p.min_rto;
  w_f64 b p.ack_jitter;
  w_f64 b p.rexmit_timeout_factor

let r_rla_params r =
  let eta = r_f64 r in
  let group_rtt_factor = r_f64 r in
  let forced_cut_factor = r_f64 r in
  let rtt_scaling = r_rtt_scaling r in
  let trouble_counting = r_trouble_counting r in
  let rexmit_thresh = r_int r in
  let awnd_weight = r_f64 r in
  let interval_ewma_weight = r_f64 r in
  let srtt_weight = r_f64 r in
  let dupthresh = r_int r in
  let init_cwnd = r_f64 r in
  let init_ssthresh = r_f64 r in
  let max_burst = r_int r in
  let rcv_buffer = r_int r in
  let data_size = r_int r in
  let min_rto = r_f64 r in
  let ack_jitter = r_f64 r in
  let rexmit_timeout_factor = r_f64 r in
  {
    Rla.Params.eta;
    group_rtt_factor;
    forced_cut_factor;
    rtt_scaling;
    trouble_counting;
    rexmit_thresh;
    awnd_weight;
    interval_ewma_weight;
    srtt_weight;
    dupthresh;
    init_cwnd;
    init_ssthresh;
    max_burst;
    rcv_buffer;
    data_size;
    min_rto;
    ack_jitter;
    rexmit_timeout_factor;
  }

let w_sharing_config b (c : Experiments.Sharing.config) =
  w_gateway b c.Experiments.Sharing.gateway;
  w_case b c.case;
  w_f64 b c.duration;
  w_f64 b c.warmup;
  w_int b c.seed;
  w_rla_params b c.rla_params;
  w_f64 b c.share;
  w_option w_bool b c.phase_jitter;
  w_bool b c.ecn

let r_sharing_config r =
  let gateway = r_gateway r in
  let case = r_case r in
  let duration = r_f64 r in
  let warmup = r_f64 r in
  let seed = r_int r in
  let rla_params = r_rla_params r in
  let share = r_f64 r in
  let phase_jitter = r_option r_bool r in
  let ecn = r_bool r in
  {
    Experiments.Sharing.gateway;
    case;
    duration;
    warmup;
    seed;
    rla_params;
    share;
    phase_jitter;
    ecn;
  }
