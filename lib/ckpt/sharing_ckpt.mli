(** Checkpoint/restore for the paper's main (tree-sharing) experiment.

    A checkpoint file is fully self-contained: it embeds the
    {!Experiments.Sharing.config}, so restore rebuilds the identical
    topology with {!Experiments.Sharing.setup} (deterministic creation
    order), overlays every component's captured state, re-arms all
    pending events under their original ids, and refuses to resume if
    any checkpointed event went unclaimed.  A run restored at time [T]
    and driven to [2T] is byte-identical — trace CSV, registry JSON and
    fairness tables — to the uninterrupted run.

    Supported runs are the plain sharing scenario (RLA session + 27
    background TCPs).  Fault-injected runs are not checkpointable from
    the CLI — the churn driver owns extra flow state outside the
    session — but {!Faults.Injector.capture} exists and is exercised in
    unit tests. *)

val section_names : string list
(** The sections a checkpoint carries, in file order: [meta], [config],
    [scheduler], [network], [rla], [tcp], optionally [registry] and
    [journal]. *)

type meta = { time : float; n_tcps : int }

val read_meta :
  Codec.section list -> (meta * Experiments.Sharing.config, Codec.error) result
(** Decode just the [meta] and [config] sections (cheap inspection —
    no topology rebuild). *)

val save :
  path:string ->
  time:float ->
  config:Experiments.Sharing.config ->
  session:Experiments.Sharing.session ->
  ?registry:Obs.Registry.t ->
  ?journal:Journal.t ->
  unit ->
  unit
(** Capture the complete simulation into [path] (write-then-rename).
    [time] must be the current simulation clock.  Capture is passive:
    no events scheduled, no RNG draws, so saving never perturbs the
    run. *)

type error =
  | Codec_error of Codec.error
  | Unclaimed_events of Sim.Scheduler.event_id list
      (** The checkpoint recorded pending events no component re-armed
          — refusing to resume beats silently dropping them. *)

val error_to_string : error -> string

type loaded = {
  config : Experiments.Sharing.config;
  session : Experiments.Sharing.session;
  registry : Obs.Registry.t option;
      (** Rebuilt and restored when the checkpointed run was
          instrumented; journal taps are re-attached on resume. *)
  journal : Journal.t option;
  time : float;  (** Clock at capture; the session is poised there. *)
}

val load : path:string -> (loaded, error) result
(** Rebuild and restore.  Never raises: truncation, corruption and
    mismatched topology all come back as [Error]. *)

val run_with_checkpoints :
  ?registry:Obs.Registry.t ->
  ?journal:Journal.t ->
  every:float ->
  dir:string ->
  prefix:string ->
  Experiments.Sharing.config ->
  Experiments.Sharing.result
(** The canonical checkpointed run loop: set the session up, then
    advance to [duration] saving [dir]/[prefix]_t<time>.ckpt at every
    multiple of [every] (boundaries are slice points of the ordinary
    run loop, so results are byte-identical to
    {!Experiments.Sharing.run}).  [dir] is created if missing. *)

val resume_run :
  ?every:float ->
  ?dir:string ->
  ?prefix:string ->
  loaded ->
  Experiments.Sharing.result
(** Continue a loaded checkpoint to its config's [duration], applying
    the warm-up measurement reset only if the checkpoint predates it.
    With [every]/[dir] supplied, keeps writing checkpoints at the same
    boundaries the original run would have hit. *)

val checkpoint_file : dir:string -> prefix:string -> time:float -> string
(** The path [run_with_checkpoints] writes for a given boundary. *)
