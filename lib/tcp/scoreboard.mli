(** Sender-side SACK scoreboard (RFC 2018 / RFC 3517 style).

    Tracks, for every outstanding packet, whether it has been
    selectively acknowledged, declared lost, or retransmitted, and
    maintains the [pipe] estimate (packets believed in flight) in
    O(1) amortised time per event.

    Invariants on per-packet flags: [sacked] excludes [lost];
    [rexmitted] implies [lost].  The loss rule is the paper's: a packet
    P is lost once some packet with sequence number >= P + dupthresh
    has been SACKed. *)

type t

val create : ?start:int -> unit -> t
(** [start] (default 0) positions the board mid-stream: [high_ack],
    [next_seq] and the loss floor all begin there, and everything below
    counts as already delivered.  A receiver that joins a running
    multicast session gets a board aligned with the sender's current
    sequence frontier. *)

val high_ack : t -> int
(** Next packet the receiver expects cumulatively. *)

val next_seq : t -> int
(** Next new sequence number to allocate. *)

val register_send : t -> int
(** Allocate and return the next new sequence number. *)

val advance_cum : t -> int -> int
(** [advance_cum t ack] processes a cumulative ack ([ack] = next
    expected).  Returns how many packets were newly acknowledged.
    Acks below the current point return 0. *)

val mark_sacked : t -> lo:int -> hi:int -> int
(** SACK the half-open range; returns the number of newly SACKed
    packets.  Ranges at or below [high_ack] are ignored. *)

val mark_sacked_seqs : t -> lo:int -> hi:int -> int list
(** Like {!mark_sacked} but returns the newly SACKed sequence numbers
    (ascending).  The RLA sender needs them to maintain its
    acked-by-all coverage counts without double counting. *)

val advance_cum_seqs : t -> int -> int list
(** Like {!advance_cum} but returns the sequence numbers in the newly
    acknowledged range that had {e not} been SACKed before (ascending);
    previously SACKed packets were already reported by
    {!mark_sacked_seqs}. *)

val detect_losses : t -> dupthresh:int -> int list
(** Newly lost packets (ascending), marking them lost as a side
    effect. *)

val process_ack :
  t ->
  cum_ack:int ->
  blocks:(int * int) list ->
  dupthresh:int ->
  int * int * int list
(** One-pass ack processing for the sender hot path: advance the
    cumulative point, apply the SACK blocks (half-open [(lo, hi)]
    ranges) and run loss detection in a single call, without building
    the intermediate per-step sequence lists.  Returns
    [(newly_cum_acked, newly_sacked, new_losses)] — exactly what the
    separate {!advance_cum} / {!mark_sacked} / {!detect_losses} calls
    would have produced. *)

val mark_lost : t -> int -> bool
(** Force-mark one packet lost (used on timeout); [false] if it was
    already lost or SACKed. *)

val mark_all_lost : t -> int
(** Timeout handling: every outstanding unSACKed packet is marked lost
    and pending retransmissions are forgotten.  Returns the number
    marked. *)

val next_retransmit : t -> int option
(** Lowest lost packet not yet retransmitted. *)

val mark_retransmitted : ?at:float -> t -> int -> unit
(** Record that the packet was retransmitted (at time [at], default 0);
    raises [Invalid_argument] unless it is currently lost and not
    already retransmitted. *)

val expire_rexmits : t -> before:float -> int list
(** Presume retransmissions sent strictly before [before] lost: clear
    their retransmitted flags (making them eligible again) and return
    their sequence numbers, ascending.  Converts a lost retransmission
    into a quick re-request instead of a full timeout. *)

val range_has_rexmit : t -> lo:int -> hi:int -> bool
(** Does the window-clamped range [\[lo, hi)] contain a packet whose
    retransmission is still outstanding?  Karn's-algorithm callers ask
    this {e before} {!process_ack} (advancing the cumulative point
    clears the flags) to decide whether an RTT sample is ambiguous. *)

val pipe : t -> int
(** Estimate of packets currently in flight. *)

val in_flight_window : t -> int
(** [next_seq - high_ack]: outstanding window including holes. *)

val highest_sacked : t -> int
(** Highest packet ever SACKed, or -1. *)

val is_sacked : t -> int -> bool

val is_lost : t -> int -> bool

val is_rexmitted : t -> int -> bool

val check_invariants : t -> unit
(** Recompute counters from scratch and raise [Assert_failure] on
    mismatch (test support). *)

type entry_state = {
  e_seq : int;
  e_sacked : bool;
  e_lost : bool;
  e_rexmitted : bool;
  e_rexmit_time : float;
}

type state = {
  s_entries : entry_state list;  (** ascending seq *)
  s_high_ack : int;
  s_next_seq : int;
  s_highest_sacked : int;
  s_sacked_cnt : int;
  s_lost_cnt : int;
  s_rexmit_out : int;
  s_loss_floor : int;
}

val capture : t -> state

val restore : t -> state -> unit
