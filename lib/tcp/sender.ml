type params = {
  init_cwnd : float;
  init_ssthresh : float;
  dupthresh : int;
  max_burst : int;
  max_cwnd : float;
  data_size : int;
  min_rto : float;
  limit : int option;
  handshake : bool;
  wscale : int;
  window : Receiver.window option;
  karn : bool;
}

let default_params =
  {
    init_cwnd = 1.0;
    init_ssthresh = 64.0;
    dupthresh = 3;
    max_burst = 4;
    max_cwnd = 128.0;
    data_size = Wire.data_size;
    min_rto = 1.0;
    limit = None;
    handshake = false;
    wscale = 0;
    window = None;
    karn = false;
  }

(* Persist-timer probes back off like the RTO but cap at NS2's 60 s. *)
let persist_max = 60.0

(* Cached observability handles (see [Obs.Registry]); sampling happens
   at ack/timeout processing points only, never from scheduled events,
   so instrumented and bare runs are bit-identical. *)
type taps = {
  reg : Obs.Registry.t;
  source : string;
  cwnd_s : Obs.Series.t;
  bytes_s : Obs.Series.t;
  srtt_s : Obs.Series.t;
  cuts_c : Obs.Registry.counter;
  ssthresh_g : Obs.Registry.gauge;
}

type t = {
  net : Net.Network.t;
  params : params;
  src : Net.Packet.addr;
  dst : Net.Packet.addr;
  flow : Net.Packet.flow;
  sb : Scoreboard.t;
  rto : Rto.t;
  receiver : Receiver.t;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable in_recovery : bool;
  mutable recover_point : int;
  mutable timer : Sim.Scheduler.event_id option;
  (* One shared closure for every RTO (re)arm — the timer is re-armed
     on each delivering ack, so a per-arm closure is hot-path litter. *)
  mutable timeout_thunk : unit -> unit;
  mutable start_event : Sim.Scheduler.event_id option;
  (* connection establishment (params.handshake) *)
  mutable established : bool;
  mutable syn_sent : int;
  mutable neg_wscale : int;
  (* flow control: last advertised window field; Wire.no_rwnd = none *)
  mutable rwnd_field : int;
  mutable persist_timer : Sim.Scheduler.event_id option;
  mutable persist_thunk : unit -> unit;
  mutable persist_shift : int;
  mutable zero_window_probes : int;
  (* RFC 5961-style validation: acks for never-sent data, dropped *)
  mutable ghost_acks : int;
  (* statistics *)
  cwnd_avg : Stats.Time_avg.t;
  rtt : Stats.Welford.t ref;
  mutable sent_new : int;
  mutable retransmits : int;
  mutable window_cuts : int;
  mutable timeouts : int;
  (* measurement baseline (reset_measurement) *)
  mutable meas_time : float;
  mutable meas_delivered : int;
  mutable meas_sent_new : int;
  mutable meas_retransmits : int;
  mutable meas_window_cuts : int;
  mutable meas_timeouts : int;
  mutable completed_at : float option;
  mutable taps : taps option;
}

let flow t = t.flow

let cwnd t = t.cwnd

let ssthresh t = t.ssthresh

let in_recovery t = t.in_recovery

let delivered t = Scoreboard.high_ack t.sb

let window_cuts t = t.window_cuts

let timeouts t = t.timeouts

let retransmits t = t.retransmits

let sent_new t = t.sent_new

let rtt_stats t = !(t.rtt)

let receiver t = t.receiver

let established t = t.established

let syn_sent t = t.syn_sent

let negotiated_wscale t = t.neg_wscale

let ghost_acks t = t.ghost_acks

let zero_window_probes t = t.zero_window_probes

let now t = Net.Network.now t.net

let local_options t =
  Options.make
    ~mss:(Stdlib.min t.params.data_size 0xFFFF)
    ~wscale:t.params.wscale ~sack_ok:true

(* Peer receive window in packets; no advertisement means unlimited
   (the pre-hardening behavior, and the honest default). *)
let rwnd_pkts t =
  if t.rwnd_field = Wire.no_rwnd then max_int
  else t.rwnd_field lsl t.neg_wscale

(* lint: hot ack_in_window -- runs once per received ack before any
   scoreboard work; pure integer compares, no allocation *)
let ack_in_window t ~cum_ack = cum_ack <= Scoreboard.next_seq t.sb

let set_cwnd t value =
  let value = Stdlib.max 1.0 (Stdlib.min value t.params.max_cwnd) in
  t.cwnd <- value;
  Stats.Time_avg.update t.cwnd_avg ~time:(now t) ~value

(* One aligned (cwnd, bytes_acked) probe: both series get a sample at
   every call point, so their decimation schedules — and therefore
   their sample times — stay identical and exporters can zip them. *)
let probe_flow t =
  match t.taps with
  | None -> ()
  | Some taps ->
      let time = now t in
      Obs.Series.add taps.cwnd_s ~time t.cwnd;
      Obs.Series.add taps.bytes_s ~time
        (float_of_int (delivered t * t.params.data_size));
      Obs.Registry.set taps.ssthresh_g t.ssthresh

let probe_cut t =
  match t.taps with
  | None -> ()
  | Some taps ->
      Obs.Registry.incr taps.cuts_c;
      Obs.Registry.emit taps.reg ~time:(now t) ~source:taps.source
        ~event:"window_cut" ~value:t.cwnd

let avg_cwnd t = Stats.Time_avg.average t.cwnd_avg ~upto:(now t)

let reset_measurement t =
  Stats.Time_avg.reset t.cwnd_avg ~start:(now t) ~value:t.cwnd;
  t.rtt := Stats.Welford.create ();
  t.meas_time <- now t;
  t.meas_delivered <- delivered t;
  t.meas_sent_new <- t.sent_new;
  t.meas_retransmits <- t.retransmits;
  t.meas_window_cuts <- t.window_cuts;
  t.meas_timeouts <- t.timeouts

type snapshot = {
  time : float;
  delivered : int;
  sent_new : int;
  retransmits : int;
  window_cuts : int;
  timeouts : int;
  cwnd_now : float;
  cwnd_avg : float;
  rtt_avg : float;
  throughput : float;
  send_rate : float;
}

let snapshot t =
  let span = now t -. t.meas_time in
  let delivered_span = delivered t - t.meas_delivered in
  let sent_span =
    t.sent_new - t.meas_sent_new + t.retransmits - t.meas_retransmits
  in
  let rate n = if span <= 0.0 then 0.0 else float_of_int n /. span in
  {
    time = now t;
    delivered = delivered_span;
    sent_new = t.sent_new - t.meas_sent_new;
    retransmits = t.retransmits - t.meas_retransmits;
    window_cuts = t.window_cuts - t.meas_window_cuts;
    timeouts = t.timeouts - t.meas_timeouts;
    cwnd_now = t.cwnd;
    cwnd_avg = avg_cwnd t;
    rtt_avg = Stats.Welford.mean !(t.rtt);
    throughput = rate delivered_span;
    send_rate = rate sent_span;
  }

let cancel_timer t =
  match t.timer with
  | None -> ()
  | Some id ->
      Sim.Scheduler.cancel (Net.Network.scheduler t.net) id;
      t.timer <- None

let cancel_persist t =
  match t.persist_timer with
  | None -> ()
  | Some id ->
      Sim.Scheduler.cancel (Net.Network.scheduler t.net) id;
      t.persist_timer <- None

let send_data t ~seq ~rexmit =
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:t.src
      ~dst:(Net.Packet.Unicast t.dst) ~size:t.params.data_size
      ~payload:(Wire.Tcp_data { seq; sent_at = now t })
  in
  if rexmit then t.retransmits <- t.retransmits + 1
  else t.sent_new <- t.sent_new + 1;
  Net.Network.send t.net pkt

let rec arm_timer t =
  if t.timer = None && t.completed_at = None then begin
    let sched = Net.Network.scheduler t.net in
    let id =
      Sim.Scheduler.schedule_after sched (Rto.timeout t.rto) t.timeout_thunk
    in
    t.timer <- Some id
  end

and restart_timer t =
  cancel_timer t;
  if Scoreboard.in_flight_window t.sb > 0 then arm_timer t

and try_send t =
  if t.established then begin
    let can_send_new () =
      (match t.params.limit with
      | None -> true
      | Some limit -> Scoreboard.next_seq t.sb < limit)
      (* Flow control: unacknowledged data must fit the peer window. *)
      && Scoreboard.in_flight_window t.sb < rwnd_pkts t
    in
    let budget = ref t.params.max_burst in
    let blocked = ref false in
    while
      (not !blocked) && !budget > 0
      && Scoreboard.pipe t.sb < int_of_float t.cwnd
    do
      (match Scoreboard.next_retransmit t.sb with
      | Some seq ->
          Scoreboard.mark_retransmitted t.sb seq;
          send_data t ~seq ~rexmit:true
      | None ->
          if can_send_new () then begin
            let seq = Scoreboard.register_send t.sb in
            send_data t ~seq ~rexmit:false
          end
          else blocked := true);
      decr budget
    done;
    if Scoreboard.in_flight_window t.sb > 0 then arm_timer t
    else if rwnd_pkts t = 0 && t.completed_at = None then
      (* Zero window and nothing in flight: only a probe can solicit
         the reopening advertisement (the peer has nothing to ack). *)
      arm_persist t
  end

and arm_persist t =
  if t.persist_timer = None && t.completed_at = None then begin
    let interval =
      Stdlib.min
        (Rto.timeout t.rto *. (2.0 ** float_of_int t.persist_shift))
        persist_max
    in
    t.persist_timer <-
      Some
        (Sim.Scheduler.schedule_after
           (Net.Network.scheduler t.net)
           interval t.persist_thunk)
  end

and on_persist t =
  if t.established && t.completed_at = None && rwnd_pkts t = 0 then begin
    let pkt =
      Net.Network.make_packet t.net ~flow:t.flow ~src:t.src
        ~dst:(Net.Packet.Unicast t.dst) ~size:Wire.ack_size
        ~payload:
          (Wire.Tcp_probe { seq = Scoreboard.next_seq t.sb; sent_at = now t })
    in
    Net.Network.send t.net pkt;
    t.zero_window_probes <- t.zero_window_probes + 1;
    if t.persist_shift < 16 then t.persist_shift <- t.persist_shift + 1;
    arm_persist t
  end

and send_syn t =
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:t.src
      ~dst:(Net.Packet.Unicast t.dst) ~size:Wire.ack_size
      ~payload:
        (Wire.Tcp_syn
           { options = Options.encode (local_options t); sent_at = now t })
  in
  t.syn_sent <- t.syn_sent + 1;
  Net.Network.send t.net pkt;
  arm_timer t

and on_timeout t =
  if not t.established then begin
    (* SYN retransmission with exponential backoff. *)
    if t.completed_at = None then begin
      Rto.backoff t.rto;
      send_syn t
    end
  end
  else begin
    (* Timeout: halve ssthresh, collapse to one packet, resend from the
       cumulative ack point. *)
    if Scoreboard.in_flight_window t.sb > 0 then begin
      t.timeouts <- t.timeouts + 1;
      t.window_cuts <- t.window_cuts + 1;
      t.ssthresh <- Stdlib.max 2.0 (t.cwnd /. 2.0);
      set_cwnd t 1.0;
      probe_cut t;
      probe_flow t;
      Rto.backoff t.rto;
      ignore (Scoreboard.mark_all_lost t.sb);
      t.in_recovery <- false;
      t.recover_point <- Scoreboard.next_seq t.sb
    end;
    try_send t
  end

let enter_recovery t =
  t.in_recovery <- true;
  t.recover_point <- Scoreboard.next_seq t.sb;
  t.window_cuts <- t.window_cuts + 1;
  t.ssthresh <- Stdlib.max 2.0 (t.cwnd /. 2.0);
  set_cwnd t t.ssthresh;
  probe_cut t

let grow_window t newly =
  for _ = 1 to newly do
    if t.cwnd < t.ssthresh then set_cwnd t (t.cwnd +. 1.0)
    else set_cwnd t (t.cwnd +. (1.0 /. t.cwnd))
  done

let check_completion t =
  match (t.params.limit, t.completed_at) with
  | Some limit, None when Scoreboard.high_ack t.sb >= limit ->
      t.completed_at <- Some (now t);
      cancel_timer t;
      cancel_persist t
  | _ -> ()

let on_ack t ~cum_ack ~blocks ~echo ~ece ~rwnd =
  if not (ack_in_window t ~cum_ack) then
    (* RFC 5961-flavored validation: an ack for data never sent is a
       forgery (or an optimistic acker); drop it before it can touch
       the estimator, the scoreboard or the window. *)
    t.ghost_acks <- t.ghost_acks + 1
  else begin
    t.rwnd_field <- rwnd;
    if rwnd <> 0 && t.persist_timer <> None then begin
      cancel_persist t;
      t.persist_shift <- 0
    end;
    (* Karn's algorithm (params.karn): an RTT sample spanning a
       retransmitted range is ambiguous — ask before process_ack
       clears the flags.  Challenge acks carry no echo (< 0). *)
    let rexmitted =
      t.params.karn
      && Scoreboard.range_has_rexmit t.sb ~lo:(Scoreboard.high_ack t.sb)
           ~hi:cum_ack
    in
    if echo >= 0.0 then Rto.sample ~rexmitted t.rto (now t -. echo);
    (match t.taps with
    | None -> ()
    | Some taps -> Obs.Series.add taps.srtt_s ~time:(now t) (Rto.srtt t.rto));
    let newly, _, losses =
      Scoreboard.process_ack t.sb ~cum_ack
        ~blocks:
          (List.map
             (fun { Wire.block_lo; block_hi } -> (block_lo, block_hi))
             blocks)
        ~dupthresh:t.params.dupthresh
    in
    if newly > 0 then begin
      restart_timer t;
      if t.in_recovery && Scoreboard.high_ack t.sb >= t.recover_point then
        t.in_recovery <- false;
      if not t.in_recovery then grow_window t newly
    end;
    if (losses <> [] || ece) && not t.in_recovery then enter_recovery t;
    probe_flow t;
    check_completion t;
    if t.completed_at = None then try_send t
  end

let on_syn_ack t ~options ~rwnd ~sent_at =
  if not t.established then
    match Options.decode options with
    | Error _ -> ()  (* unparseable SYN-ACK options: drop the segment *)
    | Ok peer ->
        let negotiated = Options.negotiate (local_options t) peer in
        t.neg_wscale <- negotiated.Options.wscale;
        t.rwnd_field <- rwnd;
        t.established <- true;
        Rto.sample t.rto (now t -. sent_at);
        cancel_timer t;
        try_send t

let completed_at t = t.completed_at

let is_complete t = t.completed_at <> None

(* Flow churn: end the flow now.  Reuses the finite-flow completion
   machinery — acknowledgments for packets already in flight keep
   draining (and updating the scoreboard), but no new transmission or
   retransmission is ever scheduled again. *)
let stop t =
  if t.completed_at = None then begin
    t.completed_at <- Some (now t);
    cancel_timer t;
    cancel_persist t
  end

let create ~net ~src ~dst ?(params = default_params) ?(start_at = 0.0) () =
  let flow = Net.Network.fresh_flow net in
  let receiver =
    Receiver.create ?window:params.window ~wscale:params.wscale ~net ~node:dst
      ~flow ~peer:src ()
  in
  let start = Net.Network.now net +. start_at in
  let t =
    {
      net;
      params;
      src;
      dst;
      flow;
      sb = Scoreboard.create ();
      rto = Rto.create ~min_rto:params.min_rto ();
      receiver;
      cwnd = Stdlib.max 1.0 params.init_cwnd;
      ssthresh = params.init_ssthresh;
      in_recovery = false;
      recover_point = 0;
      timer = None;
      timeout_thunk = ignore;
      start_event = None;
      established = not params.handshake;
      syn_sent = 0;
      neg_wscale = (if params.handshake then 0 else params.wscale);
      rwnd_field = Wire.no_rwnd;
      persist_timer = None;
      persist_thunk = ignore;
      persist_shift = 0;
      zero_window_probes = 0;
      ghost_acks = 0;
      cwnd_avg = Stats.Time_avg.create ~start ~value:params.init_cwnd;
      rtt = ref (Stats.Welford.create ());
      sent_new = 0;
      retransmits = 0;
      window_cuts = 0;
      timeouts = 0;
      meas_time = start;
      meas_delivered = 0;
      meas_sent_new = 0;
      meas_retransmits = 0;
      meas_window_cuts = 0;
      meas_timeouts = 0;
      completed_at = None;
      taps = None;
    }
  in
  t.timeout_thunk <-
    (fun () ->
      t.timer <- None;
      on_timeout t);
  t.persist_thunk <-
    (fun () ->
      t.persist_timer <- None;
      on_persist t);
  (match Net.Network.observer net with
  | None -> ()
  | Some reg ->
      let source = Printf.sprintf "tcp.flow%d" flow in
      t.taps <-
        Some
          {
            reg;
            source;
            cwnd_s = Obs.Registry.series reg (source ^ ".cwnd");
            bytes_s = Obs.Registry.series reg (source ^ ".bytes_acked");
            srtt_s = Obs.Registry.series reg (source ^ ".srtt");
            cuts_c = Obs.Registry.counter reg (source ^ ".window_cuts");
            ssthresh_g = Obs.Registry.gauge reg (source ^ ".ssthresh");
          };
      probe_flow t);
  Net.Node.attach (Net.Network.node net src) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Wire.Tcp_ack { cum_ack; blocks; echo; ece; rwnd } ->
          if echo >= 0.0 then Stats.Welford.add !(t.rtt) (now t -. echo);
          on_ack t ~cum_ack ~blocks ~echo ~ece ~rwnd
      | Wire.Tcp_syn_ack { options; rwnd; sent_at } ->
          on_syn_ack t ~options ~rwnd ~sent_at
      | _ -> ());
  (* Random sub-RTT stagger avoids artificial start synchronisation. *)
  let stagger = Sim.Rng.float (Net.Network.fork_rng net) 0.1 in
  t.start_event <-
    Some
      (Sim.Scheduler.schedule_at (Net.Network.scheduler net) (start +. stagger)
         (fun () ->
           t.start_event <- None;
           if t.established then try_send t else send_syn t));
  t

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_sb : Scoreboard.state;
  s_rto : Rto.state;
  s_receiver : Receiver.state;
  s_cwnd : float;
  s_ssthresh : float;
  s_in_recovery : bool;
  s_recover_point : int;
  s_timer : Sim.Scheduler.event_id option;
  s_start_event : Sim.Scheduler.event_id option;
  s_cwnd_avg : Stats.Time_avg.state;
  s_rtt : Stats.Welford.state;
  s_sent_new : int;
  s_retransmits : int;
  s_window_cuts : int;
  s_timeouts : int;
  s_meas_time : float;
  s_meas_delivered : int;
  s_meas_sent_new : int;
  s_meas_retransmits : int;
  s_meas_window_cuts : int;
  s_meas_timeouts : int;
  s_completed_at : float option;
  s_established : bool;
  s_syn_sent : int;
  s_neg_wscale : int;
  s_rwnd_field : int;
  s_persist_timer : Sim.Scheduler.event_id option;
  s_persist_shift : int;
  s_zero_window_probes : int;
  s_ghost_acks : int;
}

let capture t =
  {
    s_sb = Scoreboard.capture t.sb;
    s_rto = Rto.capture t.rto;
    s_receiver = Receiver.capture t.receiver;
    s_cwnd = t.cwnd;
    s_ssthresh = t.ssthresh;
    s_in_recovery = t.in_recovery;
    s_recover_point = t.recover_point;
    s_timer = t.timer;
    s_start_event = t.start_event;
    s_cwnd_avg = Stats.Time_avg.capture t.cwnd_avg;
    s_rtt = Stats.Welford.capture !(t.rtt);
    s_sent_new = t.sent_new;
    s_retransmits = t.retransmits;
    s_window_cuts = t.window_cuts;
    s_timeouts = t.timeouts;
    s_meas_time = t.meas_time;
    s_meas_delivered = t.meas_delivered;
    s_meas_sent_new = t.meas_sent_new;
    s_meas_retransmits = t.meas_retransmits;
    s_meas_window_cuts = t.meas_window_cuts;
    s_meas_timeouts = t.meas_timeouts;
    s_completed_at = t.completed_at;
    s_established = t.established;
    s_syn_sent = t.syn_sent;
    s_neg_wscale = t.neg_wscale;
    s_rwnd_field = t.rwnd_field;
    s_persist_timer = t.persist_timer;
    s_persist_shift = t.persist_shift;
    s_zero_window_probes = t.zero_window_probes;
    s_ghost_acks = t.ghost_acks;
  }

let restore t st =
  Scoreboard.restore t.sb st.s_sb;
  Rto.restore t.rto st.s_rto;
  Receiver.restore t.receiver st.s_receiver;
  t.cwnd <- st.s_cwnd;
  t.ssthresh <- st.s_ssthresh;
  t.in_recovery <- st.s_in_recovery;
  t.recover_point <- st.s_recover_point;
  t.timer <- st.s_timer;
  t.start_event <- st.s_start_event;
  t.established <- st.s_established;
  t.syn_sent <- st.s_syn_sent;
  t.neg_wscale <- st.s_neg_wscale;
  t.rwnd_field <- st.s_rwnd_field;
  t.persist_timer <- st.s_persist_timer;
  t.persist_shift <- st.s_persist_shift;
  t.zero_window_probes <- st.s_zero_window_probes;
  t.ghost_acks <- st.s_ghost_acks;
  let sched = Net.Network.scheduler t.net in
  (match st.s_timer with
  | None -> ()
  | Some id -> Sim.Scheduler.rearm sched ~id t.timeout_thunk);
  (match st.s_persist_timer with
  | None -> ()
  | Some id -> Sim.Scheduler.rearm sched ~id t.persist_thunk);
  (match st.s_start_event with
  | None -> ()
  | Some id ->
      Sim.Scheduler.rearm sched ~id (fun () ->
          t.start_event <- None;
          if t.established then try_send t else send_syn t));
  Stats.Time_avg.restore t.cwnd_avg st.s_cwnd_avg;
  Stats.Welford.restore !(t.rtt) st.s_rtt;
  t.sent_new <- st.s_sent_new;
  t.retransmits <- st.s_retransmits;
  t.window_cuts <- st.s_window_cuts;
  t.timeouts <- st.s_timeouts;
  t.meas_time <- st.s_meas_time;
  t.meas_delivered <- st.s_meas_delivered;
  t.meas_sent_new <- st.s_meas_sent_new;
  t.meas_retransmits <- st.s_meas_retransmits;
  t.meas_window_cuts <- st.s_meas_window_cuts;
  t.meas_timeouts <- st.s_meas_timeouts;
  t.completed_at <- st.s_completed_at
