(** TCP SACK receiver endpoint.

    Consumes data packets, delivers them in order (conceptually — the
    application is an infinite sink) and acknowledges every packet with
    the cumulative ack plus up to three SACK blocks, most recently
    changed first, echoing the data packet's timestamp. *)

type t

val create : net:Net.Network.t -> node:Net.Packet.addr -> flow:Net.Packet.flow -> peer:Net.Packet.addr -> t
(** Attach a receiver for [flow] at [node], acknowledging to [peer]. *)

val expected : t -> int
(** Next in-order packet expected. *)

val received_total : t -> int
(** Data packets that arrived (including duplicates). *)

val duplicates : t -> int

val out_of_order_pending : t -> int
(** Packets buffered above the in-order point. *)

type state = {
  s_ooo : int list;  (** out-of-order set, ascending *)
  s_recent : int list;  (** SACK block representatives, recency order *)
  s_expected : int;
  s_received_total : int;
  s_duplicates : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** Acks are sent synchronously on data arrival, so the receiver owns
    no scheduler events; restore is pure state overwrite. *)
