(** TCP SACK receiver endpoint.

    Consumes data packets, delivers them in order (conceptually — by
    default the application is an infinite sink) and acknowledges every
    packet with the cumulative ack plus up to three SACK blocks, most
    recently changed first, echoing the data packet's timestamp.

    The hardened endpoint also answers SYNs (negotiating options),
    advertises a finite receive window when one is modeled, responds to
    zero-window probes, and validates RST and far-out-of-window data
    sequences per RFC 5961 — a blind injection draws a challenge ack
    instead of tearing the connection down. *)

type window = {
  capacity : int;  (** Receive-buffer size, packets (>= 1). *)
  app_rate : float;
      (** Application drain rate, packets/s, as a deterministic
          function of simulated time — no consumption events. *)
}

type t

val create :
  ?window:window ->
  ?wscale:int ->
  ?rst_strict:bool ->
  net:Net.Network.t ->
  node:Net.Packet.addr ->
  flow:Net.Packet.flow ->
  peer:Net.Packet.addr ->
  unit ->
  t
(** Attach a receiver for [flow] at [node], acknowledging to [peer].
    Without [window] no finite window is advertised (acks carry
    {!Wire.no_rwnd}), matching the pre-hardening behavior.  [wscale]
    (default 0) is the shift offered at SYN time and applied to the
    advertised field; [rst_strict] (default [true]) selects RFC 5961
    RST validation — [false] models a legacy stack that accepts any
    in-window RST. *)

val expected : t -> int
(** Next in-order packet expected. *)

val received_total : t -> int
(** Data packets that arrived (including duplicates). *)

val duplicates : t -> int

val out_of_order_pending : t -> int
(** Packets buffered above the in-order point. *)

val closed : t -> bool
(** An accepted RST tore the connection down; the endpoint goes
    silent (no acks, no data processing). *)

val window_scale : t -> int
(** Effective shift after any SYN negotiation. *)

val set_rst_strict : t -> bool -> unit
(** Toggle RFC 5961 RST validation (for legacy-stack experiments). *)

val rst_accepted : t -> int

val rst_challenged : t -> int
(** In-window inexact RSTs answered with a challenge ack. *)

val rst_dropped : t -> int
(** RSTs outside the receive window, silently discarded. *)

val challenge_acks : t -> int

val ghost_data : t -> int
(** Data segments dropped by sequence validation (blind injection). *)

val probes_received : t -> int
(** Zero-window probes answered. *)

type state = {
  s_ooo : int list;  (** out-of-order set, ascending *)
  s_recent : int list;  (** SACK block representatives, recency order *)
  s_expected : int;
  s_received_total : int;
  s_duplicates : int;
  s_t0 : float;
  s_wscale : int;
  s_sack_ok : bool;
  s_rst_strict : bool;
  s_closed : bool;
  s_syn_received : bool;
  s_rst_accepted : int;
  s_rst_challenged : int;
  s_rst_dropped : int;
  s_challenge_acks : int;
  s_ghost_data : int;
  s_probes_received : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** Acks are sent synchronously on data arrival, so the receiver owns
    no scheduler events; restore is pure state overwrite. *)
