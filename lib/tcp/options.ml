(* SYN-time TCP options, packed into a single immediate integer so
   they travel inside a packet payload without allocating.

   Layout (low to high bits):
     bits  0-15  mss, in bytes (1 .. 65535; 0 is invalid)
     bits 16-19  window-scale shift (0 .. 14, RFC 7323 cap)
     bit  20     SACK-permitted
   Everything above bit 20 must be zero. *)

type t = { mss : int; wscale : int; sack_ok : bool }

type error = Bad_mss of int | Bad_wscale of int | Bad_bits of int

let error_to_string = function
  | Bad_mss m -> Fmt.str "mss %d outside 1..65535" m
  | Bad_wscale w -> Fmt.str "window scale %d outside 0..14 (RFC 7323)" w
  | Bad_bits v -> Fmt.str "undefined option bits set in %#x" v

let max_wscale = 14
let default = { mss = Wire.data_size; wscale = 0; sack_ok = true }

let make ~mss ~wscale ~sack_ok =
  if mss < 1 || mss > 0xFFFF then invalid_arg "Tcp.Options.make: bad mss";
  if wscale < 0 || wscale > max_wscale then
    invalid_arg "Tcp.Options.make: bad wscale";
  { mss; wscale; sack_ok }

let encode t = t.mss lor (t.wscale lsl 16) lor (if t.sack_ok then 1 lsl 20 else 0)

let decode v =
  if v lsr 21 <> 0 || v < 0 then Error (Bad_bits v)
  else
    let mss = v land 0xFFFF in
    let wscale = (v lsr 16) land 0xF in
    if mss = 0 then Error (Bad_mss mss)
    else if wscale > max_wscale then Error (Bad_wscale wscale)
    else Ok { mss; wscale; sack_ok = v land (1 lsl 20) <> 0 }

(* Symmetric negotiation over our packet-granular model: both
   directions use the smaller mss and shift, and SACK only if both
   ends permit it.  (Real TCP scales each direction by the peer's
   announced shift; the symmetric min is the conservative choice and
   keeps a single shift per connection.) *)
let negotiate a b =
  { mss = min a.mss b.mss; wscale = min a.wscale b.wscale;
    sack_ok = a.sack_ok && b.sack_ok }

let to_string t =
  Fmt.str "mss=%d wscale=%d sack=%b" t.mss t.wscale t.sack_ok
