(** Jacobson/Karels round-trip estimation and retransmit timeout.

    srtt and rttvar follow RFC 6298 (gains 1/8 and 1/4); the timeout is
    [srtt + 4 * rttvar], clamped to [\[min_rto, max_rto\]] and doubled on
    each backoff. *)

type t

val create : ?min_rto:float -> ?max_rto:float -> unit -> t
(** Defaults: [min_rto] 1.0 s, [max_rto] 60 s — NS2's values. *)

val sample : ?rexmitted:bool -> t -> float -> unit
(** Feed a fresh RTT measurement (seconds); resets any backoff.
    With [~rexmitted:true] the call is a no-op (Karn's algorithm): a
    sample over a retransmitted range neither updates srtt/rttvar nor
    clears the backoff shift. *)

val srtt : t -> float
(** Smoothed RTT; 0 before the first sample. *)

val rttvar : t -> float

val timeout : t -> float
(** Current retransmission timeout (includes backoff). *)

val backoff : t -> unit
(** Double the timeout (up to [max_rto]), as after a timer expiry.
    Once the clamped timeout reaches [max_rto] the shift freezes, so
    repeated backoffs cannot overflow the exponent. *)

val at_max : t -> bool
(** The timeout has hit the [max_rto] ceiling. *)

val has_sample : t -> bool

type state = {
  s_srtt : float;
  s_rttvar : float;
  s_shift : int;
  s_samples : int;
}
(** Complete estimator state ([min_rto]/[max_rto] are configuration). *)

val capture : t -> state

val restore : t -> state -> unit
