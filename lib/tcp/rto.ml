type t = {
  min_rto : float;
  max_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable shift : int;  (* exponential backoff: timeout is scaled by 2^shift *)
  mutable samples : int;
}

let create ?(min_rto = 1.0) ?(max_rto = 60.0) () =
  { min_rto; max_rto; srtt = 0.0; rttvar = 0.0; shift = 0; samples = 0 }

let sample ?(rexmitted = false) t m =
  if m < 0.0 then invalid_arg "Rto.sample: negative RTT";
  (* Karn's algorithm: a measurement taken over a retransmitted
     sequence range is ambiguous (the ack may answer either
     transmission), so it must neither update the estimator nor relax
     an in-force backoff.  The timestamp echo makes most samples
     unambiguous; callers flag the ones that are not. *)
  if not rexmitted then begin
    if t.samples = 0 then begin
      t.srtt <- m;
      t.rttvar <- m /. 2.0
    end
    else begin
      let err = m -. t.srtt in
      t.srtt <- t.srtt +. (err /. 8.0);
      t.rttvar <- t.rttvar +. ((abs_float err -. t.rttvar) /. 4.0)
    end;
    t.samples <- t.samples + 1;
    t.shift <- 0
  end

let srtt t = t.srtt

let rttvar t = t.rttvar

let base_timeout t =
  if t.samples = 0 then 3.0 (* conservative default before any sample *)
  else Stdlib.max t.min_rto (t.srtt +. (4.0 *. t.rttvar))

let timeout t =
  let v = base_timeout t *. (2.0 ** float_of_int t.shift) in
  Stdlib.min v t.max_rto

(* The shift only grows while it still changes the clamped timeout, so
   the cap is enforced structurally: once [timeout t = max_rto] the
   shift freezes and [2.0 ** shift] can never overflow. *)
let backoff t = if timeout t < t.max_rto then t.shift <- t.shift + 1

let at_max t = timeout t >= t.max_rto

let has_sample t = t.samples > 0

type state = {
  s_srtt : float;
  s_rttvar : float;
  s_shift : int;
  s_samples : int;
}

let capture t =
  {
    s_srtt = t.srtt;
    s_rttvar = t.rttvar;
    s_shift = t.shift;
    s_samples = t.samples;
  }

let restore t st =
  t.srtt <- st.s_srtt;
  t.rttvar <- st.s_rttvar;
  t.shift <- st.s_shift;
  t.samples <- st.s_samples
