(** TCP packet payloads.

    Sequence numbers count whole packets (as the paper's analysis
    does), not bytes.  Data packets carry their send timestamp, echoed
    back in acknowledgments, giving RTT samples that are immune to
    retransmission ambiguity (Karn's problem). *)

type sack_block = { block_lo : int; block_hi : int }
(** Half-open range [\[block_lo, block_hi)] of packets received
    out of order. *)

type Net.Packet.payload +=
  | Tcp_data of { seq : int; sent_at : float }
  | Tcp_ack of {
      cum_ack : int;
      blocks : sack_block list;
      echo : float;
      ece : bool;
      rwnd : int;
    }
        (** [cum_ack] is the next packet the receiver expects;
            [blocks] holds at most {!max_sack_blocks} ranges, most
            recently changed first; [ece] echoes a congestion mark set
            by an ECN-enabled gateway on the acknowledged data.
            [rwnd] is the advertised-window {e field} — the receive
            window right-shifted by the negotiated scale and clamped
            to {!rwnd_field_max} — or {!no_rwnd} when the receiver
            does not model a finite window (the sender then treats the
            window as unlimited, the pre-hardening behavior). *)
  | Tcp_syn of { options : int; sent_at : float }
        (** Connection request; [options] is {!Options.encode}d. *)
  | Tcp_syn_ack of { options : int; rwnd : int; sent_at : float }
        (** Accept: the responder's own options (negotiation is the
            meet of the two) plus its initial window field. *)
  | Tcp_rst of { seq : int }
        (** Reset claiming sequence number [seq]; subject to RFC 5961
            validation at the receiver. *)
  | Tcp_probe of { seq : int; sent_at : float }
        (** Zero-window probe: one sequence number of ghost data sent
            by the persist timer to solicit a fresh window
            advertisement. *)

val max_sack_blocks : int
(** 3, as in RFC 2018 with timestamps in use. *)

val data_size : int
(** Bytes on the wire for a data packet (1000, as in the paper). *)

val ack_size : int
(** Bytes on the wire for a pure ack (40). *)

val no_rwnd : int
(** -1: sentinel for "no window advertised" in [Tcp_ack]/[Tcp_syn_ack]. *)

val rwnd_field_bits : int
(** Width of the advertised-window field: 6 bits, the packet-granular
    analogue of TCP's 16-bit byte-granular field, so windows above
    {!rwnd_field_max} packets need a negotiated window scale just as
    byte windows above 64 KiB do (RFC 7323). *)

val rwnd_field_max : int
(** [2^rwnd_field_bits - 1 = 63] packets at shift 0. *)

val block_to_string : sack_block -> string
