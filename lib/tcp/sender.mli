(** TCP SACK sender with an infinite data source.

    Implements the congestion control the paper models: slow start,
    congestion avoidance (+1/cwnd per new ack), one window halving per
    recovery episode regardless of how many packets that window lost,
    SACK-driven retransmission, and timeout with exponential backoff.

    All stochastic inputs come through the network's RNG streams, so a
    run is reproducible from the network seed. *)

type params = {
  init_cwnd : float;
  init_ssthresh : float;
  dupthresh : int;  (** Paper: 3. *)
  max_burst : int;  (** Packets releasable per ack event (NS2: 4). *)
  max_cwnd : float;  (** Receiver-window cap, in packets. *)
  data_size : int;  (** Bytes per data packet. *)
  min_rto : float;
  limit : int option;
      (** [Some n] makes this a finite flow of [n] packets (for
          short-flow experiments); [None] sends forever. *)
  handshake : bool;
      (** Run a SYN / SYN-ACK exchange (with {!Options} negotiation)
          before data; [false] starts established, the legacy
          behavior. *)
  wscale : int;
      (** Window-scale shift offered at SYN time and applied to the
          advertised-window field (RFC 7323; 0..14). *)
  window : Receiver.window option;
      (** Finite receive window to model at the peer; [None] keeps the
          infinite-sink receiver (no advertisement, no flow control,
          no zero-window probing — the legacy behavior). *)
  karn : bool;
      (** Karn's algorithm: discard RTT samples spanning retransmitted
          ranges and keep the RTO backoff in force until an
          unambiguous sample arrives. *)
}

val default_params : params
(** cwnd 1, ssthresh 64, dupthresh 3, max_burst 4, max_cwnd 128 (a
    1998-vintage 128 KB receiver window), 1000-byte packets, min RTO
    1.0 s, infinite data; no handshake, no window scaling, infinite
    receive window, Karn off — every hardening feature defaults to
    the legacy behavior so existing experiments replay byte-identically. *)

type t

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  dst:Net.Packet.addr ->
  ?params:params ->
  ?start_at:float ->
  unit ->
  t
(** Build sender + receiver pair on a fresh flow; transmission starts
    at [start_at] (default 0, plus a sub-RTT random stagger drawn from
    the network RNG to avoid synchronised starts).

    If the network has a metrics registry installed
    ({!Net.Network.set_registry}) when the sender is created, the flow
    publishes ["tcp.flow<N>.cwnd"], ["tcp.flow<N>.bytes_acked"] and
    ["tcp.flow<N>.srtt"] series (sampled on ack/timeout processing; the
    cwnd and bytes series share identical sample times so exporters can
    zip them), a ["tcp.flow<N>.window_cuts"] counter, a
    ["tcp.flow<N>.ssthresh"] gauge, and [window_cut] events.  Probing
    is passive: behaviour is bit-identical with or without it. *)

val flow : t -> Net.Packet.flow

val cwnd : t -> float

val ssthresh : t -> float

val in_recovery : t -> bool

val delivered : t -> int
(** Packets cumulatively acknowledged so far. *)

val window_cuts : t -> int
(** Total halvings (fast recovery entries + timeouts). *)

val timeouts : t -> int

val retransmits : t -> int

val sent_new : t -> int

val rtt_stats : t -> Stats.Welford.t
(** RTT samples since the last {!reset_measurement}. *)

val avg_cwnd : t -> float
(** Time-weighted average of cwnd since the last {!reset_measurement}. *)

val reset_measurement : t -> unit
(** Restart the measurement window: cwnd time-average, RTT stats and
    the snapshot baseline all restart at the current instant (the paper
    discards the first 100 s of each run). *)

type snapshot = {
  time : float;
  delivered : int;
  sent_new : int;
  retransmits : int;
  window_cuts : int;
  timeouts : int;
  cwnd_now : float;
  cwnd_avg : float;
  rtt_avg : float;
  throughput : float;  (** Delivered (goodput) pkt/s since the reset. *)
  send_rate : float;
      (** Packets put on the wire per second (new + retransmissions) —
          the flow's bandwidth share of its bottleneck, which is the
          quantity the paper's tables report (~ cwnd / RTT). *)
}

val snapshot : t -> snapshot
(** Counters are measured from the last {!reset_measurement}. *)

val receiver : t -> Receiver.t

val established : t -> bool
(** [true] once the handshake completed (immediately, without one). *)

val syn_sent : t -> int
(** SYN transmissions, including backoff retries. *)

val negotiated_wscale : t -> int
(** Effective window-scale shift after negotiation (0 before). *)

val ack_in_window : t -> cum_ack:int -> bool
(** The ack-validation fast path: a cumulative ack is acceptable iff
    it does not acknowledge data never sent ([cum_ack <= next_seq]).
    Runs once per received ack before any scoreboard work; a failing
    ack is counted in {!ghost_acks} and otherwise ignored, which is
    what neutralises optimistic-ack forgery. *)

val ghost_acks : t -> int
(** Acks dropped by {!ack_in_window} validation. *)

val zero_window_probes : t -> int
(** Persist-timer probes sent against a closed peer window. *)

val completed_at : t -> float option
(** For finite flows: when the last packet was cumulatively
    acknowledged; [None] while incomplete or for infinite flows. *)

val is_complete : t -> bool

val stop : t -> unit
(** End the flow now (traffic churn): the retransmission timer is
    cancelled and no further packet is ever sent, but acknowledgments
    for data already in flight keep draining.  After [stop] the flow
    reports {!is_complete}.  Idempotent; a no-op on flows that already
    completed. *)

(** {2 Checkpoint/restore} *)

type state = {
  s_sb : Scoreboard.state;
  s_rto : Rto.state;
  s_receiver : Receiver.state;
  s_cwnd : float;
  s_ssthresh : float;
  s_in_recovery : bool;
  s_recover_point : int;
  s_timer : Sim.Scheduler.event_id option;
  s_start_event : Sim.Scheduler.event_id option;
  s_cwnd_avg : Stats.Time_avg.state;
  s_rtt : Stats.Welford.state;
  s_sent_new : int;
  s_retransmits : int;
  s_window_cuts : int;
  s_timeouts : int;
  s_meas_time : float;
  s_meas_delivered : int;
  s_meas_sent_new : int;
  s_meas_retransmits : int;
  s_meas_window_cuts : int;
  s_meas_timeouts : int;
  s_completed_at : float option;
  s_established : bool;
  s_syn_sent : int;
  s_neg_wscale : int;
  s_rwnd_field : int;
  s_persist_timer : Sim.Scheduler.event_id option;
  s_persist_shift : int;
  s_zero_window_probes : int;
  s_ghost_acks : int;
}

val capture : t -> state
(** Pure read of the complete sender+receiver endpoint state, including
    pending retransmission-timer and start-stagger event ids. *)

val restore : t -> state -> unit
(** Overwrite a freshly created sender (same construction order) and
    re-arm its pending events under their original ids.  Must run after
    [Sim.Scheduler.restore] on the same scheduler. *)
