type window = { capacity : int; app_rate : float }

type t = {
  net : Net.Network.t;
  node : Net.Node.t;
  flow : Net.Packet.flow;
  peer : Net.Packet.addr;
  ooo : (int, unit) Hashtbl.t;  (* received above [expected] *)
  mutable recent : int list;  (* representatives of recent ooo blocks *)
  mutable expected : int;
  mutable received_total : int;
  mutable duplicates : int;
  window : window option;
  local_options : Options.t;  (* offered at SYN time *)
  mutable t0 : float;  (* application drain epoch *)
  mutable wscale : int;  (* effective shift for the advertised field *)
  mutable sack_ok : bool;
  mutable rst_strict : bool;  (* RFC 5961 on; off = legacy in-window accept *)
  mutable closed : bool;  (* an accepted RST tore the connection down *)
  mutable syn_received : bool;
  mutable rst_accepted : int;
  mutable rst_challenged : int;
  mutable rst_dropped : int;
  mutable challenge_acks : int;
  mutable ghost_data : int;  (* data dropped by sequence validation *)
  mutable probes_received : int;
}

let expected t = t.expected

let received_total t = t.received_total

let duplicates t = t.duplicates

let out_of_order_pending t = Hashtbl.length t.ooo

let closed t = t.closed

let rst_accepted t = t.rst_accepted

let rst_challenged t = t.rst_challenged

let rst_dropped t = t.rst_dropped

let challenge_acks t = t.challenge_acks

let ghost_data t = t.ghost_data

let probes_received t = t.probes_received

let window_scale t = t.wscale

let set_rst_strict t v = t.rst_strict <- v

(* Honest senders never put data more than their configured window
   above the cumulative point; anything far beyond that is a blind
   injection, not reordering.  With no finite-window model we validate
   against a bound comfortably above any cwnd this repo configures, so
   hardening cannot reject honest traffic. *)
let default_validation_window = 1024

let validation_window t =
  match t.window with
  | Some w -> Stdlib.max 1 w.capacity
  | None -> default_validation_window

(* The advertised-window field for the next ack: receive buffer minus
   what the application has not yet drained, scaled and clamped to the
   field width.  Drain is a deterministic function of simulated time
   (rate [app_rate] from epoch [t0]), so no consumption events are
   needed and replay stays byte-identical. *)
let rwnd_field t =
  match t.window with
  | None -> Wire.no_rwnd
  | Some w ->
      let drained =
        int_of_float (w.app_rate *. (Net.Network.now t.net -. t.t0))
      in
      let backlog = t.expected - Stdlib.min t.expected drained in
      let avail =
        Stdlib.max 0 (w.capacity - backlog - Hashtbl.length t.ooo)
      in
      Stdlib.min (avail lsr t.wscale) Wire.rwnd_field_max

(* The contiguous SACK block containing [seq] in the out-of-order set. *)
let block_around t seq =
  let lo = ref seq in
  while Hashtbl.mem t.ooo (!lo - 1) do
    decr lo
  done;
  let hi = ref (seq + 1) in
  while Hashtbl.mem t.ooo !hi do
    incr hi
  done;
  { Wire.block_lo = !lo; block_hi = !hi }

let sack_blocks t =
  let rec build acc seen = function
    | [] -> List.rev acc
    | _ when List.length acc >= Wire.max_sack_blocks -> List.rev acc
    | rep :: rest ->
        if rep < t.expected || not (Hashtbl.mem t.ooo rep) then
          build acc seen rest
        else begin
          let block = block_around t rep in
          if List.mem block.Wire.block_lo seen then build acc seen rest
          else build (block :: acc) (block.Wire.block_lo :: seen) rest
        end
  in
  build [] [] t.recent

let send_ack t ~echo ~ece =
  let blocks = if t.sack_ok then sack_blocks t else [] in
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow
      ~src:(Net.Node.id t.node) ~dst:(Net.Packet.Unicast t.peer)
      ~size:Wire.ack_size
      ~payload:
        (Wire.Tcp_ack
           { cum_ack = t.expected; blocks; echo; ece; rwnd = rwnd_field t })
  in
  Net.Network.send t.net pkt

(* A challenge ack (RFC 5961 §3.2) carries no timestamp echo — the
   negative sentinel tells the peer not to take an RTT sample. *)
let send_challenge_ack t =
  t.challenge_acks <- t.challenge_acks + 1;
  send_ack t ~echo:(-1.0) ~ece:false

let on_data t ~seq ~sent_at ~ecn =
  if not t.closed then begin
    t.received_total <- t.received_total + 1;
    if seq < t.expected - validation_window t
       || seq >= t.expected + validation_window t
    then begin
      (* Blind injection far outside the receive window: drop the
         payload, answer with a challenge ack (RFC 5961 §4 applied to
         data), never buffer. *)
      t.ghost_data <- t.ghost_data + 1;
      send_challenge_ack t
    end
    else begin
      if seq < t.expected || Hashtbl.mem t.ooo seq then
        t.duplicates <- t.duplicates + 1
      else if seq = t.expected then begin
        t.expected <- t.expected + 1;
        (* Absorb any buffered continuation. *)
        while Hashtbl.mem t.ooo t.expected do
          Hashtbl.remove t.ooo t.expected;
          t.expected <- t.expected + 1
        done;
        t.recent <- List.filter (fun r -> r >= t.expected) t.recent
      end
      else begin
        Hashtbl.replace t.ooo seq ();
        t.recent <- seq :: List.filter (fun r -> r <> seq) t.recent;
        (* Bound the representative list: one per possible block is enough. *)
        if List.length t.recent > 4 * Wire.max_sack_blocks then
          t.recent <-
            List.filteri (fun i _ -> i < 4 * Wire.max_sack_blocks) t.recent
      end;
      send_ack t ~echo:sent_at ~ece:ecn
    end
  end

(* RFC 5961 §3.2 RST processing: exact-match sequence resets; an
   in-window but inexact sequence draws a challenge ack under strict
   validation (legacy stacks accept it — that laxity is what blind
   RST attacks exploit); anything outside the window is dropped. *)
let on_rst t ~seq =
  if not t.closed then begin
    if seq = t.expected then begin
      t.rst_accepted <- t.rst_accepted + 1;
      t.closed <- true
    end
    else if seq > t.expected && seq < t.expected + validation_window t then
      if t.rst_strict then begin
        t.rst_challenged <- t.rst_challenged + 1;
        send_challenge_ack t
      end
      else begin
        t.rst_accepted <- t.rst_accepted + 1;
        t.closed <- true
      end
    else t.rst_dropped <- t.rst_dropped + 1
  end

let on_syn t ~options ~sent_at =
  if not t.closed then
    match Options.decode options with
    | Error _ -> ()  (* unparseable SYN options: drop the segment *)
    | Ok offered ->
        let negotiated = Options.negotiate offered t.local_options in
        t.wscale <- negotiated.Options.wscale;
        t.sack_ok <- negotiated.Options.sack_ok;
        t.syn_received <- true;
        let pkt =
          Net.Network.make_packet t.net ~flow:t.flow
            ~src:(Net.Node.id t.node) ~dst:(Net.Packet.Unicast t.peer)
            ~size:Wire.ack_size
            ~payload:
              (Wire.Tcp_syn_ack
                 {
                   options = Options.encode t.local_options;
                   rwnd = rwnd_field t;
                   sent_at;
                 })
        in
        Net.Network.send t.net pkt

let on_probe t ~sent_at =
  if not t.closed then begin
    t.probes_received <- t.probes_received + 1;
    (* A probe solicits a fresh window advertisement; the ack is a
       plain duplicate ack carrying the current field. *)
    send_ack t ~echo:sent_at ~ece:false
  end

type state = {
  s_ooo : int list;  (* ascending *)
  s_recent : int list;  (* recency order, as held *)
  s_expected : int;
  s_received_total : int;
  s_duplicates : int;
  s_t0 : float;
  s_wscale : int;
  s_sack_ok : bool;
  s_rst_strict : bool;
  s_closed : bool;
  s_syn_received : bool;
  s_rst_accepted : int;
  s_rst_challenged : int;
  s_rst_dropped : int;
  s_challenge_acks : int;
  s_ghost_data : int;
  s_probes_received : int;
}

let capture t =
  {
    s_ooo =
      Hashtbl.fold (fun seq () acc -> seq :: acc) t.ooo []
      |> List.sort Int.compare;
    s_recent = t.recent;
    s_expected = t.expected;
    s_received_total = t.received_total;
    s_duplicates = t.duplicates;
    s_t0 = t.t0;
    s_wscale = t.wscale;
    s_sack_ok = t.sack_ok;
    s_rst_strict = t.rst_strict;
    s_closed = t.closed;
    s_syn_received = t.syn_received;
    s_rst_accepted = t.rst_accepted;
    s_rst_challenged = t.rst_challenged;
    s_rst_dropped = t.rst_dropped;
    s_challenge_acks = t.challenge_acks;
    s_ghost_data = t.ghost_data;
    s_probes_received = t.probes_received;
  }

let restore t st =
  Hashtbl.reset t.ooo;
  List.iter (fun seq -> Hashtbl.replace t.ooo seq ()) st.s_ooo;
  t.recent <- st.s_recent;
  t.expected <- st.s_expected;
  t.received_total <- st.s_received_total;
  t.duplicates <- st.s_duplicates;
  t.t0 <- st.s_t0;
  t.wscale <- st.s_wscale;
  t.sack_ok <- st.s_sack_ok;
  t.rst_strict <- st.s_rst_strict;
  t.closed <- st.s_closed;
  t.syn_received <- st.s_syn_received;
  t.rst_accepted <- st.s_rst_accepted;
  t.rst_challenged <- st.s_rst_challenged;
  t.rst_dropped <- st.s_rst_dropped;
  t.challenge_acks <- st.s_challenge_acks;
  t.ghost_data <- st.s_ghost_data;
  t.probes_received <- st.s_probes_received

let create ?window ?(wscale = 0) ?(rst_strict = true) ~net ~node ~flow ~peer ()
    =
  if wscale < 0 || wscale > Options.max_wscale then
    invalid_arg "Tcp.Receiver.create: bad wscale";
  (match window with
  | Some w when w.capacity < 1 || w.app_rate < 0.0 ->
      invalid_arg "Tcp.Receiver.create: bad window"
  | _ -> ());
  let node = Net.Network.node net node in
  let t =
    {
      net;
      node;
      flow;
      peer;
      ooo = Hashtbl.create 64;
      recent = [];
      expected = 0;
      received_total = 0;
      duplicates = 0;
      window;
      local_options = Options.make ~mss:Wire.data_size ~wscale ~sack_ok:true;
      t0 = Net.Network.now net;
      wscale;
      sack_ok = true;
      rst_strict;
      closed = false;
      syn_received = false;
      rst_accepted = 0;
      rst_challenged = 0;
      rst_dropped = 0;
      challenge_acks = 0;
      ghost_data = 0;
      probes_received = 0;
    }
  in
  Net.Node.attach node ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Wire.Tcp_data { seq; sent_at } ->
          on_data t ~seq ~sent_at ~ecn:pkt.Net.Packet.ecn
      | Wire.Tcp_syn { options; sent_at } -> on_syn t ~options ~sent_at
      | Wire.Tcp_rst { seq } -> on_rst t ~seq
      | Wire.Tcp_probe { seq = _; sent_at } -> on_probe t ~sent_at
      | _ -> ());
  t
