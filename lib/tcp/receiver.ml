type t = {
  net : Net.Network.t;
  node : Net.Node.t;
  flow : Net.Packet.flow;
  peer : Net.Packet.addr;
  ooo : (int, unit) Hashtbl.t;  (* received above [expected] *)
  mutable recent : int list;  (* representatives of recent ooo blocks *)
  mutable expected : int;
  mutable received_total : int;
  mutable duplicates : int;
}

let expected t = t.expected

let received_total t = t.received_total

let duplicates t = t.duplicates

let out_of_order_pending t = Hashtbl.length t.ooo

(* The contiguous SACK block containing [seq] in the out-of-order set. *)
let block_around t seq =
  let lo = ref seq in
  while Hashtbl.mem t.ooo (!lo - 1) do
    decr lo
  done;
  let hi = ref (seq + 1) in
  while Hashtbl.mem t.ooo !hi do
    incr hi
  done;
  { Wire.block_lo = !lo; block_hi = !hi }

let sack_blocks t =
  let rec build acc seen = function
    | [] -> List.rev acc
    | _ when List.length acc >= Wire.max_sack_blocks -> List.rev acc
    | rep :: rest ->
        if rep < t.expected || not (Hashtbl.mem t.ooo rep) then
          build acc seen rest
        else begin
          let block = block_around t rep in
          if List.mem block.Wire.block_lo seen then build acc seen rest
          else build (block :: acc) (block.Wire.block_lo :: seen) rest
        end
  in
  build [] [] t.recent

let send_ack t ~echo ~ece =
  let blocks = sack_blocks t in
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow
      ~src:(Net.Node.id t.node) ~dst:(Net.Packet.Unicast t.peer)
      ~size:Wire.ack_size
      ~payload:(Wire.Tcp_ack { cum_ack = t.expected; blocks; echo; ece })
  in
  Net.Network.send t.net pkt

let on_data t ~seq ~sent_at ~ecn =
  t.received_total <- t.received_total + 1;
  if seq < t.expected || Hashtbl.mem t.ooo seq then
    t.duplicates <- t.duplicates + 1
  else if seq = t.expected then begin
    t.expected <- t.expected + 1;
    (* Absorb any buffered continuation. *)
    while Hashtbl.mem t.ooo t.expected do
      Hashtbl.remove t.ooo t.expected;
      t.expected <- t.expected + 1
    done;
    t.recent <- List.filter (fun r -> r >= t.expected) t.recent
  end
  else begin
    Hashtbl.replace t.ooo seq ();
    t.recent <- seq :: List.filter (fun r -> r <> seq) t.recent;
    (* Bound the representative list: one per possible block is enough. *)
    if List.length t.recent > 4 * Wire.max_sack_blocks then
      t.recent <-
        List.filteri (fun i _ -> i < 4 * Wire.max_sack_blocks) t.recent
  end;
  send_ack t ~echo:sent_at ~ece:ecn

type state = {
  s_ooo : int list;  (* ascending *)
  s_recent : int list;  (* recency order, as held *)
  s_expected : int;
  s_received_total : int;
  s_duplicates : int;
}

let capture t =
  {
    s_ooo =
      Hashtbl.fold (fun seq () acc -> seq :: acc) t.ooo []
      |> List.sort Int.compare;
    s_recent = t.recent;
    s_expected = t.expected;
    s_received_total = t.received_total;
    s_duplicates = t.duplicates;
  }

let restore t st =
  Hashtbl.reset t.ooo;
  List.iter (fun seq -> Hashtbl.replace t.ooo seq ()) st.s_ooo;
  t.recent <- st.s_recent;
  t.expected <- st.s_expected;
  t.received_total <- st.s_received_total;
  t.duplicates <- st.s_duplicates

let create ~net ~node ~flow ~peer =
  let node = Net.Network.node net node in
  let t =
    {
      net;
      node;
      flow;
      peer;
      ooo = Hashtbl.create 64;
      recent = [];
      expected = 0;
      received_total = 0;
      duplicates = 0;
    }
  in
  Net.Node.attach node ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Wire.Tcp_data { seq; sent_at } ->
          on_data t ~seq ~sent_at ~ecn:pkt.Net.Packet.ecn
      | _ -> ());
  t
