type sack_block = { block_lo : int; block_hi : int }

type Net.Packet.payload +=
  | Tcp_data of { seq : int; sent_at : float }
  | Tcp_ack of {
      cum_ack : int;
      blocks : sack_block list;
      echo : float;
      ece : bool;
      rwnd : int;
    }
  | Tcp_syn of { options : int; sent_at : float }
  | Tcp_syn_ack of { options : int; rwnd : int; sent_at : float }
  | Tcp_rst of { seq : int }
  | Tcp_probe of { seq : int; sent_at : float }

let max_sack_blocks = 3

let data_size = 1000

let ack_size = 40

let no_rwnd = -1

let rwnd_field_bits = 6

let rwnd_field_max = (1 lsl rwnd_field_bits) - 1

let block_to_string b = Printf.sprintf "[%d,%d)" b.block_lo b.block_hi
