(* Ring-buffer scoreboard.  The only live per-packet state is for
   sequence numbers in the half-open window [high_ack, next_seq), so
   the per-packet flags live in a power-of-two ring indexed by
   [seq land (cap - 1)] — a [Bytes] of flag bits plus a parallel
   [float array] of retransmit times — instead of a hash table.  Every
   flag read/update is then one byte access with no hashing and no
   entry allocation, which matters because the sender consults the
   board several times per ack.

   Slot reuse is sound because the window never exceeds [cap]
   (register_send grows the ring first) and a slot is zeroed whenever
   its sequence number leaves the window (advance_cum), so a zero flag
   byte is exactly "no entry" in the old hash-table representation. *)

let f_sacked = 0b001

let f_lost = 0b010

let f_rexmitted = 0b100

type t = {
  mutable flags : Bytes.t;
  mutable rexmit_time : float array;
  mutable cap : int;  (* power of two; always >= window *)
  mutable high_ack : int;
  mutable next_seq : int;
  mutable highest_sacked : int;
  mutable sacked_cnt : int;
  mutable lost_cnt : int;  (* lost and not sacked *)
  mutable rexmit_out : int;  (* retransmitted, not yet sacked/acked *)
  mutable loss_floor : int;  (* below this, loss detection already ran *)
}

let initial_cap = 256

let create ?(start = 0) () =
  if start < 0 then invalid_arg "Scoreboard.create: negative start";
  {
    flags = Bytes.make initial_cap '\000';
    rexmit_time = Array.make initial_cap 0.0;
    cap = initial_cap;
    high_ack = start;
    next_seq = start;
    highest_sacked = start - 1;
    sacked_cnt = 0;
    lost_cnt = 0;
    rexmit_out = 0;
    loss_floor = start;
  }

let high_ack t = t.high_ack

let next_seq t = t.next_seq

let highest_sacked t = t.highest_sacked

let slot t seq = seq land (t.cap - 1)

let get_flags t seq = Char.code (Bytes.unsafe_get t.flags (slot t seq))

let set_flags t seq f = Bytes.unsafe_set t.flags (slot t seq) (Char.unsafe_chr f)

let clear_slot t seq =
  set_flags t seq 0;
  t.rexmit_time.(slot t seq) <- 0.0

let in_window t seq = seq >= t.high_ack && seq < t.next_seq

let ensure_capacity t window =
  if window > t.cap then begin
    let new_cap = ref t.cap in
    while window > !new_cap do
      new_cap := 2 * !new_cap
    done;
    let flags = Bytes.make !new_cap '\000' in
    let times = Array.make !new_cap 0.0 in
    let mask = !new_cap - 1 in
    for seq = t.high_ack to t.next_seq - 1 do
      Bytes.set flags (seq land mask) (Bytes.get t.flags (slot t seq));
      times.(seq land mask) <- t.rexmit_time.(slot t seq)
    done;
    t.flags <- flags;
    t.rexmit_time <- times;
    t.cap <- !new_cap
  end

let register_send t =
  let s = t.next_seq in
  ensure_capacity t (s + 1 - t.high_ack);
  (* A freshly entering sequence number starts flagless; its slot was
     zeroed when the previous occupant left the window. *)
  t.next_seq <- s + 1;
  s

let is_sacked t seq = in_window t seq && get_flags t seq land f_sacked <> 0

let is_lost t seq = in_window t seq && get_flags t seq land f_lost <> 0

let is_rexmitted t seq = in_window t seq && get_flags t seq land f_rexmitted <> 0

let sack_one t seq =
  if in_window t seq then begin
    let f = get_flags t seq in
    if f land f_sacked <> 0 then false
    else begin
      if f land f_lost <> 0 then t.lost_cnt <- t.lost_cnt - 1;
      if f land f_rexmitted <> 0 then t.rexmit_out <- t.rexmit_out - 1;
      set_flags t seq f_sacked;
      t.sacked_cnt <- t.sacked_cnt + 1;
      if seq > t.highest_sacked then t.highest_sacked <- seq;
      true
    end
  end
  else false

let mark_sacked t ~lo ~hi =
  let newly = ref 0 in
  for seq = lo to hi - 1 do
    if sack_one t seq then incr newly
  done;
  !newly

let mark_sacked_seqs t ~lo ~hi =
  let newly = ref [] in
  for seq = lo to hi - 1 do
    if sack_one t seq then newly := seq :: !newly
  done;
  List.rev !newly

let advance_cum_seqs t ack =
  if ack <= t.high_ack then []
  else begin
    let ack = Stdlib.min ack t.next_seq in
    let fresh = ref [] in
    for seq = t.high_ack to ack - 1 do
      let f = get_flags t seq in
      if f land f_sacked <> 0 then t.sacked_cnt <- t.sacked_cnt - 1
      else begin
        fresh := seq :: !fresh;
        if f land f_lost <> 0 then t.lost_cnt <- t.lost_cnt - 1;
        if f land f_rexmitted <> 0 then t.rexmit_out <- t.rexmit_out - 1
      end;
      clear_slot t seq
    done;
    t.high_ack <- ack;
    if t.loss_floor < ack then t.loss_floor <- ack;
    List.rev !fresh
  end

(* Counting variant of {!advance_cum_seqs}: same transition, no list
   built.  Returns how far the cumulative point moved (previously
   SACKed positions count as newly acknowledged too). *)
let advance_cum t ack =
  if ack <= t.high_ack then 0
  else begin
    let ack = Stdlib.min ack t.next_seq in
    let before = t.high_ack in
    for seq = before to ack - 1 do
      let f = get_flags t seq in
      if f land f_sacked <> 0 then t.sacked_cnt <- t.sacked_cnt - 1
      else begin
        if f land f_lost <> 0 then t.lost_cnt <- t.lost_cnt - 1;
        if f land f_rexmitted <> 0 then t.rexmit_out <- t.rexmit_out - 1
      end;
      clear_slot t seq
    done;
    t.high_ack <- ack;
    if t.loss_floor < ack then t.loss_floor <- ack;
    ack - before
  end

let mark_lost t seq =
  if not (in_window t seq) then false
  else begin
    let f = get_flags t seq in
    if f land (f_sacked lor f_lost) <> 0 then false
    else begin
      set_flags t seq (f lor f_lost);
      t.lost_cnt <- t.lost_cnt + 1;
      true
    end
  end

let detect_losses t ~dupthresh =
  (* A packet is lost once a packet >= seq + dupthresh has been SACKed;
     only the range [loss_floor, highest_sacked - dupthresh] can contain
     fresh losses. *)
  let upper = t.highest_sacked - dupthresh in
  let result = ref [] in
  if upper >= t.loss_floor then begin
    for seq = t.loss_floor to upper do
      if mark_lost t seq then result := seq :: !result
    done;
    t.loss_floor <- upper + 1
  end;
  List.rev !result

(* One traversal per ack instead of one for the cumulative advance, one
   per SACK block and one for loss detection rebuilding lists between
   the steps; the sender's hot ack path calls this. *)
let rec sacked_in_blocks t acc = function
  | [] -> acc
  | (lo, hi) :: rest -> sacked_in_blocks t (acc + mark_sacked t ~lo ~hi) rest

(* lint: hot process_ack -- once per received ack on the sender fast
   path; the fused single-pass design is the PR 6 scoreboard win *)
let process_ack t ~cum_ack ~blocks ~dupthresh =
  let newly_cum = advance_cum t cum_ack in
  let newly_sacked = sacked_in_blocks t 0 blocks in
  let losses = detect_losses t ~dupthresh in
  (* lint: allow alloc-hot -- the (cum, sacked, losses) triple is the
     sender-facing API; one tuple per ack, locked in by bench-trend *)
  (newly_cum, newly_sacked, losses)

let mark_all_lost t =
  let marked = ref 0 in
  for seq = t.high_ack to t.next_seq - 1 do
    let f = get_flags t seq in
    let f =
      if f land f_rexmitted <> 0 then begin
        (* The retransmission is presumed lost as well; allow resending. *)
        t.rexmit_out <- t.rexmit_out - 1;
        f land lnot f_rexmitted
      end
      else f
    in
    if f land (f_sacked lor f_lost) = 0 then begin
      set_flags t seq (f lor f_lost);
      t.lost_cnt <- t.lost_cnt + 1;
      incr marked
    end
    else set_flags t seq f
  done;
  !marked

let next_retransmit t =
  (* Lost packets are rare and near high_ack; a scan bounded by the
     first candidate keeps this cheap. *)
  let rec scan seq =
    if seq >= t.next_seq then None
    else
      let f = get_flags t seq in
      if f land f_lost <> 0 && f land f_rexmitted = 0 then Some seq
      else scan (seq + 1)
  in
  if t.lost_cnt - t.rexmit_out <= 0 then None else scan t.high_ack

let mark_retransmitted ?(at = 0.0) t seq =
  if not (is_lost t seq) then
    invalid_arg "Scoreboard.mark_retransmitted: not lost";
  if get_flags t seq land f_rexmitted <> 0 then
    invalid_arg "Scoreboard.mark_retransmitted: already retransmitted";
  set_flags t seq (get_flags t seq lor f_rexmitted);
  t.rexmit_time.(slot t seq) <- at;
  t.rexmit_out <- t.rexmit_out + 1

let expire_rexmits t ~before =
  (* A retransmission older than [before] is presumed lost itself: the
     packet becomes eligible for another retransmission without waiting
     for the (much costlier) global timeout. *)
  if t.rexmit_out = 0 then []
  else begin
    let stale = ref [] in
    for seq = t.next_seq - 1 downto t.high_ack do
      let f = get_flags t seq in
      if f land f_rexmitted <> 0 && t.rexmit_time.(slot t seq) < before then begin
        set_flags t seq (f land lnot f_rexmitted);
        t.rexmit_out <- t.rexmit_out - 1;
        stale := seq :: !stale
      end
    done;
    !stale
  end

(* Karn's-algorithm support: does the (clamped) range [lo, hi) hold a
   retransmitted packet?  Must be asked before [process_ack] advances
   the cumulative point — advancing clears the slots.  The scan is
   bounded by the window, and by [rexmit_out = 0] in the common case. *)
let range_has_rexmit t ~lo ~hi =
  if t.rexmit_out = 0 then false
  else begin
    let lo = Stdlib.max lo t.high_ack and hi = Stdlib.min hi t.next_seq in
    let found = ref false in
    let seq = ref lo in
    while (not !found) && !seq < hi do
      if get_flags t !seq land f_rexmitted <> 0 then found := true;
      incr seq
    done;
    !found
  end

let in_flight_window t = t.next_seq - t.high_ack

let pipe t = in_flight_window t - t.sacked_cnt - t.lost_cnt + t.rexmit_out

type entry_state = {
  e_seq : int;
  e_sacked : bool;
  e_lost : bool;
  e_rexmitted : bool;
  e_rexmit_time : float;
}

type state = {
  s_entries : entry_state list;  (* ascending seq *)
  s_high_ack : int;
  s_next_seq : int;
  s_highest_sacked : int;
  s_sacked_cnt : int;
  s_lost_cnt : int;
  s_rexmit_out : int;
  s_loss_floor : int;
}

(* Slots with a zero flag byte are exactly the sequence numbers the old
   hash-table representation had no entry for (an entry was only ever
   created together with at least one flag), so capturing the non-zero
   slots in ascending window order reproduces the historical state
   byte-for-byte. *)
let capture t =
  let es = ref [] in
  for seq = t.next_seq - 1 downto t.high_ack do
    let f = get_flags t seq in
    if f <> 0 then
      es :=
        {
          e_seq = seq;
          e_sacked = f land f_sacked <> 0;
          e_lost = f land f_lost <> 0;
          e_rexmitted = f land f_rexmitted <> 0;
          e_rexmit_time = t.rexmit_time.(slot t seq);
        }
        :: !es
  done;
  {
    s_entries = !es;
    s_high_ack = t.high_ack;
    s_next_seq = t.next_seq;
    s_highest_sacked = t.highest_sacked;
    s_sacked_cnt = t.sacked_cnt;
    s_lost_cnt = t.lost_cnt;
    s_rexmit_out = t.rexmit_out;
    s_loss_floor = t.loss_floor;
  }

let restore t st =
  t.high_ack <- st.s_high_ack;
  t.next_seq <- st.s_next_seq;
  ensure_capacity t (st.s_next_seq - st.s_high_ack);
  Bytes.fill t.flags 0 t.cap '\000';
  Array.fill t.rexmit_time 0 t.cap 0.0;
  List.iter
    (fun e ->
      let f =
        (if e.e_sacked then f_sacked else 0)
        lor (if e.e_lost then f_lost else 0)
        lor if e.e_rexmitted then f_rexmitted else 0
      in
      set_flags t e.e_seq f;
      t.rexmit_time.(slot t e.e_seq) <- e.e_rexmit_time)
    st.s_entries;
  t.highest_sacked <- st.s_highest_sacked;
  t.sacked_cnt <- st.s_sacked_cnt;
  t.lost_cnt <- st.s_lost_cnt;
  t.rexmit_out <- st.s_rexmit_out;
  t.loss_floor <- st.s_loss_floor

let check_invariants t =
  let sacked = ref 0 and lost = ref 0 and rexmit = ref 0 in
  for seq = t.high_ack to t.next_seq - 1 do
    let f = get_flags t seq in
    assert (not (f land f_sacked <> 0 && f land f_lost <> 0));
    if f land f_rexmitted <> 0 then assert (f land f_lost <> 0);
    if f land f_sacked <> 0 then incr sacked;
    if f land f_lost <> 0 then incr lost;
    if f land f_rexmitted <> 0 then incr rexmit
  done;
  assert (!sacked = t.sacked_cnt);
  assert (!lost = t.lost_cnt);
  assert (!rexmit = t.rexmit_out);
  assert (pipe t >= 0)
