type entry = {
  mutable sacked : bool;
  mutable lost : bool;
  mutable rexmitted : bool;
  mutable rexmit_time : float;
}

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable high_ack : int;
  mutable next_seq : int;
  mutable highest_sacked : int;
  mutable sacked_cnt : int;
  mutable lost_cnt : int;  (* lost and not sacked *)
  mutable rexmit_out : int;  (* retransmitted, not yet sacked/acked *)
  mutable loss_floor : int;  (* below this, loss detection already ran *)
}

let create ?(start = 0) () =
  if start < 0 then invalid_arg "Scoreboard.create: negative start";
  {
    entries = Hashtbl.create 256;
    high_ack = start;
    next_seq = start;
    highest_sacked = start - 1;
    sacked_cnt = 0;
    lost_cnt = 0;
    rexmit_out = 0;
    loss_floor = start;
  }

let high_ack t = t.high_ack

let next_seq t = t.next_seq

let highest_sacked t = t.highest_sacked

let register_send t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let entry t seq =
  match Hashtbl.find_opt t.entries seq with
  | Some e -> e
  | None ->
      let e =
        { sacked = false; lost = false; rexmitted = false; rexmit_time = 0.0 }
      in
      Hashtbl.replace t.entries seq e;
      e

let is_sacked t seq =
  match Hashtbl.find_opt t.entries seq with
  | Some e -> e.sacked
  | None -> false

let is_lost t seq =
  match Hashtbl.find_opt t.entries seq with Some e -> e.lost | None -> false

let is_rexmitted t seq =
  match Hashtbl.find_opt t.entries seq with
  | Some e -> e.rexmitted
  | None -> false

let sack_one t seq =
  if seq >= t.high_ack && seq < t.next_seq then begin
    let e = entry t seq in
    if e.sacked then false
    else begin
      if e.lost then t.lost_cnt <- t.lost_cnt - 1;
      if e.rexmitted then begin
        t.rexmit_out <- t.rexmit_out - 1;
        e.rexmitted <- false
      end;
      e.lost <- false;
      e.sacked <- true;
      t.sacked_cnt <- t.sacked_cnt + 1;
      if seq > t.highest_sacked then t.highest_sacked <- seq;
      true
    end
  end
  else false

let mark_sacked t ~lo ~hi =
  let newly = ref 0 in
  for seq = lo to hi - 1 do
    if sack_one t seq then incr newly
  done;
  !newly

let mark_sacked_seqs t ~lo ~hi =
  let newly = ref [] in
  for seq = lo to hi - 1 do
    if sack_one t seq then newly := seq :: !newly
  done;
  List.rev !newly

let advance_cum_seqs t ack =
  if ack <= t.high_ack then []
  else begin
    let ack = Stdlib.min ack t.next_seq in
    let fresh = ref [] in
    for seq = t.high_ack to ack - 1 do
      (match Hashtbl.find_opt t.entries seq with
      | None -> fresh := seq :: !fresh
      | Some e ->
          if e.sacked then t.sacked_cnt <- t.sacked_cnt - 1
          else begin
            fresh := seq :: !fresh;
            if e.lost then t.lost_cnt <- t.lost_cnt - 1;
            if e.rexmitted then t.rexmit_out <- t.rexmit_out - 1
          end);
      Hashtbl.remove t.entries seq
    done;
    t.high_ack <- ack;
    if t.loss_floor < ack then t.loss_floor <- ack;
    List.rev !fresh
  end

let advance_cum t ack =
  let before = t.high_ack in
  ignore (advance_cum_seqs t ack);
  Stdlib.max 0 (t.high_ack - before)

let mark_lost t seq =
  if seq < t.high_ack || seq >= t.next_seq then false
  else begin
    let e = entry t seq in
    if e.sacked || e.lost then false
    else begin
      e.lost <- true;
      t.lost_cnt <- t.lost_cnt + 1;
      true
    end
  end

let detect_losses t ~dupthresh =
  (* A packet is lost once a packet >= seq + dupthresh has been SACKed;
     only the range [loss_floor, highest_sacked - dupthresh] can contain
     fresh losses. *)
  let upper = t.highest_sacked - dupthresh in
  let result = ref [] in
  if upper >= t.loss_floor then begin
    for seq = t.loss_floor to upper do
      if mark_lost t seq then result := seq :: !result
    done;
    t.loss_floor <- upper + 1
  end;
  List.rev !result

let mark_all_lost t =
  let marked = ref 0 in
  for seq = t.high_ack to t.next_seq - 1 do
    let e = entry t seq in
    if e.rexmitted then begin
      (* The retransmission is presumed lost as well; allow resending. *)
      e.rexmitted <- false;
      t.rexmit_out <- t.rexmit_out - 1
    end;
    if (not e.sacked) && not e.lost then begin
      e.lost <- true;
      t.lost_cnt <- t.lost_cnt + 1;
      incr marked
    end
  done;
  !marked

let next_retransmit t =
  (* Lost packets are rare and near high_ack; a scan bounded by the
     first candidate keeps this cheap. *)
  let rec scan seq =
    if seq >= t.next_seq then None
    else
      match Hashtbl.find_opt t.entries seq with
      | Some e when e.lost && not e.rexmitted -> Some seq
      | _ -> scan (seq + 1)
  in
  if t.lost_cnt - t.rexmit_out <= 0 then None else scan t.high_ack

let mark_retransmitted ?(at = 0.0) t seq =
  let e = entry t seq in
  if not e.lost then invalid_arg "Scoreboard.mark_retransmitted: not lost";
  if e.rexmitted then
    invalid_arg "Scoreboard.mark_retransmitted: already retransmitted";
  e.rexmitted <- true;
  e.rexmit_time <- at;
  t.rexmit_out <- t.rexmit_out + 1

let expire_rexmits t ~before =
  (* A retransmission older than [before] is presumed lost itself: the
     packet becomes eligible for another retransmission without waiting
     for the (much costlier) global timeout. *)
  let stale = ref [] in
  Hashtbl.iter
    (fun seq e ->
      if e.rexmitted && e.rexmit_time < before then stale := (seq, e) :: !stale)
    t.entries;
  List.iter
    (fun (_, e) ->
      e.rexmitted <- false;
      t.rexmit_out <- t.rexmit_out - 1)
    !stale;
  List.sort Int.compare (List.map fst !stale)

let in_flight_window t = t.next_seq - t.high_ack

let pipe t = in_flight_window t - t.sacked_cnt - t.lost_cnt + t.rexmit_out

type entry_state = {
  e_seq : int;
  e_sacked : bool;
  e_lost : bool;
  e_rexmitted : bool;
  e_rexmit_time : float;
}

type state = {
  s_entries : entry_state list;  (* ascending seq *)
  s_high_ack : int;
  s_next_seq : int;
  s_highest_sacked : int;
  s_sacked_cnt : int;
  s_lost_cnt : int;
  s_rexmit_out : int;
  s_loss_floor : int;
}

let capture t =
  let es =
    Hashtbl.fold
      (fun seq (e : entry) acc ->
        {
          e_seq = seq;
          e_sacked = e.sacked;
          e_lost = e.lost;
          e_rexmitted = e.rexmitted;
          e_rexmit_time = e.rexmit_time;
        }
        :: acc)
      t.entries []
  in
  {
    s_entries = List.sort (fun a b -> Int.compare a.e_seq b.e_seq) es;
    s_high_ack = t.high_ack;
    s_next_seq = t.next_seq;
    s_highest_sacked = t.highest_sacked;
    s_sacked_cnt = t.sacked_cnt;
    s_lost_cnt = t.lost_cnt;
    s_rexmit_out = t.rexmit_out;
    s_loss_floor = t.loss_floor;
  }

let restore t st =
  Hashtbl.reset t.entries;
  List.iter
    (fun e ->
      Hashtbl.replace t.entries e.e_seq
        {
          sacked = e.e_sacked;
          lost = e.e_lost;
          rexmitted = e.e_rexmitted;
          rexmit_time = e.e_rexmit_time;
        })
    st.s_entries;
  t.high_ack <- st.s_high_ack;
  t.next_seq <- st.s_next_seq;
  t.highest_sacked <- st.s_highest_sacked;
  t.sacked_cnt <- st.s_sacked_cnt;
  t.lost_cnt <- st.s_lost_cnt;
  t.rexmit_out <- st.s_rexmit_out;
  t.loss_floor <- st.s_loss_floor

let check_invariants t =
  let sacked = ref 0 and lost = ref 0 and rexmit = ref 0 in
  Hashtbl.iter
    (fun seq e ->
      assert (seq >= t.high_ack && seq < t.next_seq);
      assert (not (e.sacked && e.lost));
      if e.rexmitted then assert e.lost;
      if e.sacked then incr sacked;
      if e.lost then incr lost;
      if e.rexmitted then incr rexmit)
    t.entries;
  assert (!sacked = t.sacked_cnt);
  assert (!lost = t.lost_cnt);
  assert (!rexmit = t.rexmit_out);
  assert (pipe t >= 0)
