(** SYN-time TCP options as a packed-integer codec.

    A connection's options ride in {!Wire.Tcp_syn} / {!Wire.Tcp_syn_ack}
    payloads as one immediate integer ({!encode} / {!decode}), mirroring
    the MSS, window-scale (RFC 7323) and SACK-permitted option kinds of
    a real SYN.  {!decode} is total: junk bits yield a typed error, not
    an exception, so a malformed SYN can be dropped like a real
    segment with an unparseable option list. *)

type t = {
  mss : int;  (** Maximum segment size, bytes; 1..65535. *)
  wscale : int;  (** Window-scale shift, 0..14 (RFC 7323 cap). *)
  sack_ok : bool;  (** SACK-permitted. *)
}

type error = Bad_mss of int | Bad_wscale of int | Bad_bits of int

val error_to_string : error -> string

val max_wscale : int
(** 14, the RFC 7323 maximum shift. *)

val default : t
(** [mss = Wire.data_size], no scaling, SACK on — the options implied
    for connections created without a handshake. *)

val make : mss:int -> wscale:int -> sack_ok:bool -> t
(** Raises [Invalid_argument] outside the ranges above. *)

val encode : t -> int
(** Pack into a non-negative immediate integer (fits in 21 bits). *)

val decode : int -> (t, error) result
(** Inverse of {!encode}; rejects zero mss, shifts above
    {!max_wscale}, and any bits outside the defined layout. *)

val negotiate : t -> t -> t
(** Symmetric meet: min mss, min shift, SACK iff both permit. *)

val to_string : t -> string
