(** Deterministic fault schedules.

    A timeline is an ordered list of timestamped fault events — link
    outages and repairs, runtime link degradation, multicast membership
    churn, and competing-flow churn.  Timelines are either scripted
    ({!scripted}, {!of_spec}) or generated from a seeded RNG stream
    ({!generate}); in both cases the schedule is a pure value fixed
    before the simulation starts, so a run that injects it is
    reproducible from the seed alone. *)

type link = Net.Packet.addr * Net.Packet.addr
(** A duplex link named by its endpoints; the injector applies link
    events to both directions. *)

type event =
  | Link_down of link  (** Carrier loss: queued packets are dropped. *)
  | Link_up of link
  | Set_bandwidth of link * float  (** New rate, bits per second. *)
  | Set_delay of link * float  (** New one-way propagation, seconds. *)
  | Receiver_leave of Net.Packet.addr
      (** The RLA session stops listening to this receiver. *)
  | Receiver_join of Net.Packet.addr
      (** Join (or re-join) the multicast session at this node. *)
  | Flow_start of { id : int; dst : Net.Packet.addr }
      (** Start a competing TCP flow; [id] is script-scoped. *)
  | Flow_stop of { id : int }
  | Rst_inject of { flow : int; dst : Net.Packet.addr; seq : int }
      (** Blind RST forgery: spoof a reset claiming sequence [seq]
          into [flow] at receiver [dst] (RFC 5961's threat model). *)
  | Data_inject of { flow : int; dst : Net.Packet.addr; seq : int }
      (** Blind data forgery: spoof a junk segment at [seq] into
          [flow] at receiver [dst]. *)

type entry = { time : float; event : event }

type t
(** Entries in nondecreasing time order. *)

val entries : t -> entry list

val is_empty : t -> bool

val length : t -> int

val scripted : (float * event) list -> t
(** Build a timeline from explicit (time, event) pairs; sorting is
    stable, so simultaneous events keep their script order.  Raises
    [Invalid_argument] on negative times, nonpositive bandwidths or
    negative delays. *)

val merge : t -> t -> t
(** Interleave two timelines (stable by time). *)

(** {2 Random generation} *)

type gen_params = {
  horizon : float;  (** Events are generated in [\[start, horizon)]. *)
  start : float;
  outage_links : link list;  (** Candidate links for outages. *)
  outage_rate : float;  (** Poisson arrivals per second. *)
  outage_min : float;  (** Outage duration bounds, seconds. *)
  outage_max : float;
  churn_receivers : Net.Packet.addr list;
  churn_rate : float;  (** Leave events per second. *)
  absence_min : float;  (** Seconds until the receiver rejoins. *)
  absence_max : float;
  flow_dsts : Net.Packet.addr list;
  flow_rate : float;  (** Competing-flow starts per second. *)
  flow_lifetime_min : float;
  flow_lifetime_max : float;
}

val default_gen : start:float -> horizon:float -> gen_params
(** Mild churn defaults with empty candidate lists — fill in
    [outage_links] / [churn_receivers] / [flow_dsts] to enable each
    fault class. *)

val generate : rng:Sim.Rng.t -> gen_params -> t
(** Draw a timeline: each fault class is an independent Poisson process
    with bounded-uniform durations (outage length, membership absence,
    flow lifetime); repairs/rejoins/stops may land past [horizon].  The
    result depends only on the RNG state and parameters. *)

(** {2 Spec strings (CLI)} *)

type parse_error = {
  pe_index : int;  (** 0-based index of the offending entry. *)
  pe_offset : int;  (** Byte offset of the entry in the spec string. *)
  pe_entry : string;  (** The trimmed entry text ([""] for an empty spec). *)
  pe_reason : string;
}
(** Typed spec-parse diagnosis: which entry failed, where it starts in
    the input, and why. *)

val parse_error_to_string : parse_error -> string
(** Render with 1-based entry numbering for CLI error messages. *)

val of_spec : string -> (t, parse_error) result
(** Parse a [';']-separated script, e.g.
    ["120:down:5-14; 150:up:5-14; 130:leave:20; 200:join:20;
      140:tcpstart:1:15; 250:tcpstop:1"].
    Entry forms: [TIME:down:A-B], [TIME:up:A-B], [TIME:bw:A-B:BPS],
    [TIME:delay:A-B:SECS], [TIME:leave:ADDR], [TIME:join:ADDR],
    [TIME:tcpstart:ID:DST], [TIME:tcpstop:ID], [TIME:rst:FLOW:DST:SEQ],
    [TIME:inj:FLOW:DST:SEQ]. *)

val to_spec : t -> string
(** Inverse of {!of_spec} (up to float formatting). *)

val spec_grammar : string
(** One-line grammar summary for [--help] texts. *)

val pp_entry : Format.formatter -> entry -> unit

val pp_event : Format.formatter -> event -> unit

val event_to_string : event -> string
