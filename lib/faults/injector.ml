type handlers = {
  on_receiver_leave : Net.Packet.addr -> bool;
  on_receiver_join : Net.Packet.addr -> bool;
  on_flow_start : id:int -> dst:Net.Packet.addr -> bool;
  on_flow_stop : id:int -> bool;
  on_rst_inject : flow:int -> dst:Net.Packet.addr -> seq:int -> bool;
  on_data_inject : flow:int -> dst:Net.Packet.addr -> seq:int -> bool;
  membership : unit -> int;
}

let null_handlers =
  {
    on_receiver_leave = (fun _ -> false);
    on_receiver_join = (fun _ -> false);
    on_flow_start = (fun ~id:_ ~dst:_ -> false);
    on_flow_stop = (fun ~id:_ -> false);
    on_rst_inject = (fun ~flow:_ ~dst:_ ~seq:_ -> false);
    on_data_inject = (fun ~flow:_ ~dst:_ ~seq:_ -> false);
    membership = (fun () -> 0);
  }

type applied = { time : float; event : Timeline.event; ok : bool }

type probe = {
  injected : Obs.Registry.counter;
  skipped_c : Obs.Registry.counter;
  outages_c : Obs.Registry.counter;
  membership_g : Obs.Registry.gauge;
  downtime_g : Obs.Registry.gauge;
  registry : Obs.Registry.t;
}

type t = {
  net : Net.Network.t;
  handlers : handlers;
  timeline : Timeline.t;
  mutable log : applied list;  (** Reverse application order. *)
  mutable outages : int;
  mutable skipped : int;
  mutable touched : Timeline.link list;  (** Links ever taken down. *)
  (* Timeline entries scheduled but not yet fired, keyed by event id;
     the payload is the entry's index in [Timeline.entries], which is
     all a restore needs to re-arm the same firing. *)
  pending : (Sim.Scheduler.event_id, int) Hashtbl.t;
  probe : probe option;
}

let timeline t = t.timeline

let applied t = List.rev t.log

let outages t = t.outages

let skipped t = t.skipped

let injected t = List.length t.log

(* Both directions of the duplex pair, in (a->b, b->a) order. *)
let directions t (a, b) =
  match
    (Net.Network.link_between t.net a b, Net.Network.link_between t.net b a)
  with
  | Some ab, Some ba -> [ ab; ba ]
  | Some ab, None -> [ ab ]
  | None, Some ba -> [ ba ]
  | None, None -> []

let downtime t =
  (* Directed halves of a duplex pair go down and up together, so
     either one measures the pair's outage time. *)
  List.fold_left
    (fun acc pair ->
      match directions t pair with
      | l :: _ -> acc +. Net.Link.downtime l
      | [] -> acc)
    0.0 t.touched

let event_value = function
  | Timeline.Link_down _ | Timeline.Link_up _ -> 0.0
  | Timeline.Set_bandwidth (_, bps) -> bps
  | Timeline.Set_delay (_, d) -> d
  | Timeline.Receiver_leave a | Timeline.Receiver_join a -> float_of_int a
  | Timeline.Flow_start { id; _ } | Timeline.Flow_stop { id } -> float_of_int id
  | Timeline.Rst_inject { seq; _ } | Timeline.Data_inject { seq; _ } ->
      float_of_int seq

let event_kind = function
  | Timeline.Link_down _ -> "link_down"
  | Timeline.Link_up _ -> "link_up"
  | Timeline.Set_bandwidth _ -> "set_bandwidth"
  | Timeline.Set_delay _ -> "set_delay"
  | Timeline.Receiver_leave _ -> "receiver_leave"
  | Timeline.Receiver_join _ -> "receiver_join"
  | Timeline.Flow_start _ -> "flow_start"
  | Timeline.Flow_stop _ -> "flow_stop"
  | Timeline.Rst_inject _ -> "rst_inject"
  | Timeline.Data_inject _ -> "data_inject"

let apply t event =
  match event with
  | Timeline.Link_down pair -> (
      match directions t pair with
      | [] -> false
      | links ->
          let was_up = List.exists Net.Link.is_up links in
          List.iter Net.Link.set_down links;
          if was_up then begin
            t.outages <- t.outages + 1;
            if not (List.mem pair t.touched) then
              t.touched <- t.touched @ [ pair ]
          end;
          was_up)
  | Timeline.Link_up pair -> (
      match directions t pair with
      | [] -> false
      | links ->
          let was_down = List.exists (fun l -> not (Net.Link.is_up l)) links in
          List.iter Net.Link.set_up links;
          was_down)
  | Timeline.Set_bandwidth (pair, bps) -> (
      match directions t pair with
      | [] -> false
      | links ->
          List.iter (fun l -> Net.Link.set_bandwidth l bps) links;
          true)
  | Timeline.Set_delay (pair, d) -> (
      match directions t pair with
      | [] -> false
      | links ->
          List.iter (fun l -> Net.Link.set_delay l d) links;
          true)
  | Timeline.Receiver_leave a ->
      (* Refuse to empty the session: the sender cannot run with zero
         receivers (and [drop_receiver] would raise). *)
      if t.handlers.membership () <= 1 then false
      else t.handlers.on_receiver_leave a
  | Timeline.Receiver_join a -> t.handlers.on_receiver_join a
  | Timeline.Flow_start { id; dst } -> t.handlers.on_flow_start ~id ~dst
  | Timeline.Flow_stop { id } -> t.handlers.on_flow_stop ~id
  | Timeline.Rst_inject { flow; dst; seq } ->
      t.handlers.on_rst_inject ~flow ~dst ~seq
  | Timeline.Data_inject { flow; dst; seq } ->
      t.handlers.on_data_inject ~flow ~dst ~seq

let fire t ({ Timeline.time; event } as entry) =
  ignore (entry : Timeline.entry);
  let ok = apply t event in
  t.log <- { time; event; ok } :: t.log;
  if not ok then t.skipped <- t.skipped + 1;
  match t.probe with
  | None -> ()
  | Some p ->
      Obs.Registry.incr p.injected;
      if not ok then Obs.Registry.incr p.skipped_c;
      (match event with
      | Timeline.Link_down _ when ok -> Obs.Registry.incr p.outages_c
      | _ -> ());
      Obs.Registry.set p.membership_g (float_of_int (t.handlers.membership ()));
      Obs.Registry.set p.downtime_g (downtime t);
      Obs.Registry.emit p.registry ~time ~source:"faults"
        ~event:(event_kind event) ~value:(event_value event)

let install ~net ?(handlers = null_handlers) timeline =
  let probe =
    match Net.Network.observer net with
    | None -> None
    | Some registry ->
        Some
          {
            injected = Obs.Registry.counter registry "faults.injected";
            skipped_c = Obs.Registry.counter registry "faults.skipped";
            outages_c = Obs.Registry.counter registry "faults.outages";
            membership_g = Obs.Registry.gauge registry "faults.membership";
            downtime_g = Obs.Registry.gauge registry "faults.downtime_s";
            registry;
          }
  in
  let t =
    {
      net;
      handlers;
      timeline;
      log = [];
      outages = 0;
      skipped = 0;
      touched = [];
      pending = Hashtbl.create 16;
      probe;
    }
  in
  let sched = Net.Network.scheduler net in
  List.iteri
    (fun idx ({ Timeline.time; _ } as entry) ->
      let at = Float.max time (Sim.Scheduler.now sched) in
      let rid = ref (-1) in
      let id =
        Sim.Scheduler.schedule_at sched at (fun () ->
            Hashtbl.remove t.pending !rid;
            fire t entry)
      in
      rid := id;
      Hashtbl.replace t.pending id idx)
    (Timeline.entries timeline);
  t

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_log : applied list;  (* reverse application order, as stored *)
  s_outages : int;
  s_skipped : int;
  s_touched : Timeline.link list;
  s_pending : (Sim.Scheduler.event_id * int) list;
      (* (event id, timeline-entry index), ascending id *)
}

let capture t =
  {
    s_log = t.log;
    s_outages = t.outages;
    s_skipped = t.skipped;
    s_touched = t.touched;
    s_pending =
      Hashtbl.fold (fun id idx acc -> (id, idx) :: acc) t.pending []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
  }

let restore t st =
  t.log <- st.s_log;
  t.outages <- st.s_outages;
  t.skipped <- st.s_skipped;
  t.touched <- st.s_touched;
  Hashtbl.reset t.pending;
  let entries = Array.of_list (Timeline.entries t.timeline) in
  let sched = Net.Network.scheduler t.net in
  List.iter
    (fun (id, idx) ->
      if idx < 0 || idx >= Array.length entries then
        invalid_arg "Injector.restore: timeline entry index out of range";
      let entry = entries.(idx) in
      Hashtbl.replace t.pending id idx;
      Sim.Scheduler.rearm sched ~id (fun () ->
          Hashtbl.remove t.pending id;
          fire t entry))
    st.s_pending
