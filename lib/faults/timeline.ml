type link = Net.Packet.addr * Net.Packet.addr

type event =
  | Link_down of link
  | Link_up of link
  | Set_bandwidth of link * float
  | Set_delay of link * float
  | Receiver_leave of Net.Packet.addr
  | Receiver_join of Net.Packet.addr
  | Flow_start of { id : int; dst : Net.Packet.addr }
  | Flow_stop of { id : int }
  | Rst_inject of { flow : int; dst : Net.Packet.addr; seq : int }
  | Data_inject of { flow : int; dst : Net.Packet.addr; seq : int }

type entry = { time : float; event : event }

type t = entry list

let entries t = t

let is_empty t = t = []

let length = List.length

let pp_link ppf (a, b) = Fmt.pf ppf "%d-%d" a b

let pp_event ppf = function
  | Link_down l -> Fmt.pf ppf "down %a" pp_link l
  | Link_up l -> Fmt.pf ppf "up %a" pp_link l
  | Set_bandwidth (l, bps) -> Fmt.pf ppf "bw %a %g" pp_link l bps
  | Set_delay (l, d) -> Fmt.pf ppf "delay %a %g" pp_link l d
  | Receiver_leave a -> Fmt.pf ppf "leave %d" a
  | Receiver_join a -> Fmt.pf ppf "join %d" a
  | Flow_start { id; dst } -> Fmt.pf ppf "tcpstart %d->%d" id dst
  | Flow_stop { id } -> Fmt.pf ppf "tcpstop %d" id
  | Rst_inject { flow; dst; seq } ->
      Fmt.pf ppf "rst flow%d->%d seq %d" flow dst seq
  | Data_inject { flow; dst; seq } ->
      Fmt.pf ppf "inj flow%d->%d seq %d" flow dst seq

let pp_entry ppf { time; event } = Fmt.pf ppf "%g:%a" time pp_event event

let event_to_string e = Fmt.str "%a" pp_event e

let validate_event = function
  | Set_bandwidth (_, bps) when bps <= 0.0 ->
      invalid_arg "Faults.Timeline: bandwidth must be positive"
  | Set_delay (_, d) when d < 0.0 ->
      invalid_arg "Faults.Timeline: delay must be nonnegative"
  | Rst_inject { seq; _ } | Data_inject { seq; _ } ->
      if seq < 0 then
        invalid_arg "Faults.Timeline: injected sequence must be nonnegative"
  | _ -> ()

let scripted events =
  List.iter
    (fun (time, event) ->
      if time < 0.0 || Float.is_nan time then
        invalid_arg "Faults.Timeline: event times must be nonnegative";
      validate_event event)
    events;
  (* Stable sort keeps the script order for simultaneous events, which
     in turn fixes the injector's scheduling (and hence firing) order. *)
  List.stable_sort
    (fun a b -> Float.compare a.time b.time)
    (List.map (fun (time, event) -> { time; event }) events)

let merge a b =
  List.stable_sort (fun x y -> Float.compare x.time y.time) (a @ b)

(* {2 Generation} *)

type gen_params = {
  horizon : float;
  start : float;
  outage_links : link list;
  outage_rate : float;
  outage_min : float;
  outage_max : float;
  churn_receivers : Net.Packet.addr list;
  churn_rate : float;
  absence_min : float;
  absence_max : float;
  flow_dsts : Net.Packet.addr list;
  flow_rate : float;
  flow_lifetime_min : float;
  flow_lifetime_max : float;
}

let default_gen ~start ~horizon =
  {
    horizon;
    start;
    outage_links = [];
    outage_rate = 0.01;
    outage_min = 0.5;
    outage_max = 5.0;
    churn_receivers = [];
    churn_rate = 0.02;
    absence_min = 5.0;
    absence_max = 30.0;
    flow_dsts = [];
    flow_rate = 0.01;
    flow_lifetime_min = 10.0;
    flow_lifetime_max = 60.0;
  }

(* Each category is a Poisson process drawn to completion before the
   next one starts, so the generated schedule depends only on the RNG
   state handed in — never on interleaving. *)
let poisson_times ~rng ~rate ~start ~horizon =
  if rate <= 0.0 then []
  else begin
    let times = ref [] in
    let t = ref (start +. Sim.Rng.exponential rng (1.0 /. rate)) in
    while !t < horizon do
      times := !t :: !times;
      t := !t +. Sim.Rng.exponential rng (1.0 /. rate)
    done;
    List.rev !times
  end

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int rng (List.length l)))

let generate ~rng p =
  if p.horizon <= p.start then
    invalid_arg "Faults.Timeline.generate: horizon must exceed start";
  if p.outage_min > p.outage_max || p.outage_min < 0.0 then
    invalid_arg "Faults.Timeline.generate: bad outage bounds";
  let events = ref [] in
  let add time event = events := (time, event) :: !events in
  (* Link outages: down at a Poisson arrival, up after a bounded
     uniform duration (possibly past the horizon — the link heals even
     if the run ends first). *)
  List.iter
    (fun t ->
      match pick rng p.outage_links with
      | None -> ()
      | Some l ->
          let d = Sim.Rng.range rng p.outage_min p.outage_max in
          add t (Link_down l);
          add (t +. d) (Link_up l))
    (poisson_times ~rng ~rate:p.outage_rate ~start:p.start ~horizon:p.horizon);
  (* Membership churn: a receiver leaves, then rejoins after a bounded
     absence. *)
  List.iter
    (fun t ->
      match pick rng p.churn_receivers with
      | None -> ()
      | Some a ->
          let d = Sim.Rng.range rng p.absence_min p.absence_max in
          add t (Receiver_leave a);
          add (t +. d) (Receiver_join a))
    (poisson_times ~rng ~rate:p.churn_rate ~start:p.start ~horizon:p.horizon);
  (* Flow churn: short-lived competing TCP connections.  Ids count down
     from a high base so they cannot collide with script-chosen ids. *)
  let next_id = ref 1_000_000 in
  List.iter
    (fun t ->
      match pick rng p.flow_dsts with
      | None -> ()
      | Some dst ->
          let id = !next_id in
          incr next_id;
          let d = Sim.Rng.range rng p.flow_lifetime_min p.flow_lifetime_max in
          add t (Flow_start { id; dst });
          add (t +. d) (Flow_stop { id }))
    (poisson_times ~rng ~rate:p.flow_rate ~start:p.start ~horizon:p.horizon);
  scripted (List.rev !events)

(* {2 Spec strings} *)

let spec_grammar =
  "TIME:down:A-B | TIME:up:A-B | TIME:bw:A-B:BPS | TIME:delay:A-B:SECS \
   | TIME:leave:ADDR | TIME:join:ADDR | TIME:tcpstart:ID:DST \
   | TIME:tcpstop:ID | TIME:rst:FLOW:DST:SEQ | TIME:inj:FLOW:DST:SEQ, \
   ';'-separated"

let parse_link s =
  match String.split_on_char '-' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> Error (Printf.sprintf "bad link %S (want A-B)" s))
  | _ -> Error (Printf.sprintf "bad link %S (want A-B)" s)

let parse_entry s =
  let ( let* ) = Result.bind in
  let int name v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "bad %s %S" name v)
  in
  let num name v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad %s %S" name v)
  in
  match String.split_on_char ':' s with
  | time :: kind :: rest -> (
      let* time = num "time" time in
      if time < 0.0 then Error (Printf.sprintf "negative time in %S" s)
      else
        let* event =
          match (String.lowercase_ascii kind, rest) with
          | "down", [ l ] ->
              let* l = parse_link l in
              Ok (Link_down l)
          | "up", [ l ] ->
              let* l = parse_link l in
              Ok (Link_up l)
          | "bw", [ l; bps ] ->
              let* l = parse_link l in
              let* bps = num "bandwidth" bps in
              if bps <= 0.0 then Error "bandwidth must be positive"
              else Ok (Set_bandwidth (l, bps))
          | "delay", [ l; d ] ->
              let* l = parse_link l in
              let* d = num "delay" d in
              if d < 0.0 then Error "delay must be nonnegative"
              else Ok (Set_delay (l, d))
          | "leave", [ a ] ->
              let* a = int "address" a in
              Ok (Receiver_leave a)
          | "join", [ a ] ->
              let* a = int "address" a in
              Ok (Receiver_join a)
          | "tcpstart", [ id; dst ] ->
              let* id = int "flow id" id in
              let* dst = int "destination" dst in
              Ok (Flow_start { id; dst })
          | "tcpstop", [ id ] ->
              let* id = int "flow id" id in
              Ok (Flow_stop { id })
          | "rst", [ flow; dst; seq ] ->
              let* flow = int "flow id" flow in
              let* dst = int "destination" dst in
              let* seq = int "sequence" seq in
              if seq < 0 then Error "injected sequence must be nonnegative"
              else Ok (Rst_inject { flow; dst; seq })
          | "inj", [ flow; dst; seq ] ->
              let* flow = int "flow id" flow in
              let* dst = int "destination" dst in
              let* seq = int "sequence" seq in
              if seq < 0 then Error "injected sequence must be nonnegative"
              else Ok (Data_inject { flow; dst; seq })
          | k, _ -> Error (Printf.sprintf "unknown fault event %S in %S" k s)
        in
        Ok (time, event))
  | _ -> Error (Printf.sprintf "bad fault entry %S (want TIME:EVENT:...)" s)

type parse_error = {
  pe_index : int;
  pe_offset : int;
  pe_entry : string;
  pe_reason : string;
}

let parse_error_to_string e =
  if e.pe_entry = "" then Fmt.str "fault spec: %s" e.pe_reason
  else
    Fmt.str "fault spec entry %d (offset %d, %S): %s" (e.pe_index + 1)
      e.pe_offset e.pe_entry e.pe_reason

(* Split on ';' keeping each entry's byte offset in the original spec
   (after leading whitespace), so parse errors can point at the exact
   position of the offending entry. *)
let split_with_offsets spec =
  let n = String.length spec in
  let pieces = ref [] in
  let start = ref 0 in
  for i = 0 to n do
    if i = n || spec.[i] = ';' then begin
      pieces := (!start, String.sub spec !start (i - !start)) :: !pieces;
      start := i + 1
    end
  done;
  List.rev !pieces
  |> List.filter_map (fun (off, raw) ->
         let trimmed = String.trim raw in
         if trimmed = "" then None
         else begin
           let lead = ref 0 in
           while
             match raw.[!lead] with
             | ' ' | '\t' | '\n' | '\r' -> true
             | _ -> false
           do
             incr lead
           done;
           Some (off + !lead, trimmed)
         end)

let of_spec spec =
  match split_with_offsets spec with
  | [] ->
      Error
        { pe_index = 0; pe_offset = 0; pe_entry = ""; pe_reason = "empty fault spec" }
  | pieces ->
      let rec build i acc = function
        | [] -> Ok (scripted (List.rev acc))
        | (off, s) :: rest -> (
            match parse_entry s with
            | Ok e -> build (i + 1) (e :: acc) rest
            | Error reason ->
                Error
                  { pe_index = i; pe_offset = off; pe_entry = s; pe_reason = reason })
      in
      build 0 [] pieces

let to_spec t =
  String.concat ";"
    (List.map
       (fun { time; event } ->
         match event with
         | Link_down l -> Fmt.str "%g:down:%a" time pp_link l
         | Link_up l -> Fmt.str "%g:up:%a" time pp_link l
         | Set_bandwidth (l, bps) -> Fmt.str "%g:bw:%a:%g" time pp_link l bps
         | Set_delay (l, d) -> Fmt.str "%g:delay:%a:%g" time pp_link l d
         | Receiver_leave a -> Fmt.str "%g:leave:%d" time a
         | Receiver_join a -> Fmt.str "%g:join:%d" time a
         | Flow_start { id; dst } -> Fmt.str "%g:tcpstart:%d:%d" time id dst
         | Flow_stop { id } -> Fmt.str "%g:tcpstop:%d" time id
         | Rst_inject { flow; dst; seq } ->
             Fmt.str "%g:rst:%d:%d:%d" time flow dst seq
         | Data_inject { flow; dst; seq } ->
             Fmt.str "%g:inj:%d:%d:%d" time flow dst seq)
       t)
