(** Applies a {!Timeline} to a running simulation.

    [install] schedules every timeline entry on the network's
    scheduler (entries in the past fire immediately, in timeline
    order).  Link events act directly on both directions of the named
    duplex pair; membership and flow-churn events go through the
    [handlers] the experiment supplies, because the injector does not
    know about RLA sessions or TCP senders.

    Determinism: the injector schedules all its events at install time
    from a fixed timeline and never draws from any RNG, so for a given
    seed and timeline a run is bit-identical across repeats and worker
    counts.  With a metrics registry installed on the network, the
    injector additionally publishes ["faults.injected"] /
    ["faults.skipped"] / ["faults.outages"] counters, a
    ["faults.membership"] gauge, a cumulative ["faults.downtime_s"]
    gauge, and one registry event per applied entry (source
    ["faults"]); this probing is passive and does not perturb the
    run. *)

type handlers = {
  on_receiver_leave : Net.Packet.addr -> bool;
      (** Drop the receiver from the multicast session; [false] when
          the address is unknown or already gone. *)
  on_receiver_join : Net.Packet.addr -> bool;
      (** (Re-)join the receiver; [false] when already a member. *)
  on_flow_start : id:int -> dst:Net.Packet.addr -> bool;
      (** Start a competing flow under the script-scoped [id]. *)
  on_flow_stop : id:int -> bool;
  on_rst_inject : flow:int -> dst:Net.Packet.addr -> seq:int -> bool;
      (** Forge a blind RST into [flow] at [dst] (usually routed to an
          [Adversary.Blind] attacker node); [false] when unhandled. *)
  on_data_inject : flow:int -> dst:Net.Packet.addr -> seq:int -> bool;
      (** Forge a blind junk-data segment into [flow] at [dst]. *)
  membership : unit -> int;
      (** Current active receiver count; leaves that would take it to 0
          are skipped (a session cannot lose its last receiver). *)
}

val null_handlers : handlers
(** Rejects every membership/flow event (link faults still work). *)

type applied = {
  time : float;
  event : Timeline.event;
  ok : bool;  (** [false] when the event was skipped (guard refused, no
                  such link, redundant toggle). *)
}

type t

val install :
  net:Net.Network.t -> ?handlers:handlers -> Timeline.t -> t
(** Schedule the whole timeline against [net]'s scheduler.  Call after
    the topology exists and before (or during) the run. *)

val timeline : t -> Timeline.t

val applied : t -> applied list
(** Entries that have fired so far, in application order. *)

val injected : t -> int

val outages : t -> int
(** Link-down events that actually took an up link down. *)

val skipped : t -> int

val downtime : t -> float
(** Cumulative outage seconds summed over the duplex pairs this
    injector has taken down (in-progress outages included). *)

type state = {
  s_log : applied list;  (** reverse application order *)
  s_outages : int;
  s_skipped : int;
  s_touched : Timeline.link list;
  s_pending : (Sim.Scheduler.event_id * int) list;
      (** not-yet-fired entries as [(event id, timeline-entry index)],
          ascending id *)
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite the injector's progress and re-arm every not-yet-fired
    timeline entry under its original event id.  The injector must
    have been installed from the same timeline; must run after
    [Sim.Scheduler.restore]. *)
