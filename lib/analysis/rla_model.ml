let check_p name p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg (name ^ ": probability out of range")

let two_receiver_window ~p1 ~p2 =
  check_p "Rla_model.two_receiver_window" p1;
  check_p "Rla_model.two_receiver_window" p2;
  if p1 +. p2 <= 0.0 then
    invalid_arg "Rla_model.two_receiver_window: both probabilities zero";
  let num = 4.0 *. (1.0 -. (0.5 *. (p1 +. p2)) +. (0.25 *. p1 *. p2)) in
  let den = p1 +. p2 -. (0.25 *. p1 *. p2) in
  sqrt (num /. den)

(* Enumerate the outcome distribution of one packet: each receiver i
   signals independently w.p. ps.(i); each signal independently causes
   a halving w.p. 1/n.  With K halvings the window multiplies by 2^-K;
   with K = 0 it gains 1/w.  n <= ~30 in the paper, so enumerating the
   number of signals j (not the subsets) is exact for equal ps and an
   excellent approximation otherwise; we enumerate subsets for n <= 12
   and fall back to a signal-count binomial mixture above that. *)

let binomial_pmf n k p =
  let rec choose n k =
    if k = 0 || k = n then 1.0
    else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  choose n k *. (p ** float_of_int k) *. ((1.0 -. p) ** float_of_int (n - k))

(* Distribution of the number of signals J for independent
   heterogeneous ps: dynamic program over receivers. *)
let signal_count_dist ps =
  let n = Array.length ps in
  let dist = Array.make (n + 1) 0.0 in
  dist.(0) <- 1.0;
  Array.iter
    (fun p ->
      for j = n downto 1 do
        dist.(j) <- (dist.(j) *. (1.0 -. p)) +. (dist.(j - 1) *. p)
      done;
      dist.(0) <- dist.(0) *. (1.0 -. p))
    ps;
  dist

let drift_of_cut_dist ~cut_dist w =
  (* cut_dist.(k) = probability of exactly k halvings for one packet. *)
  let d = ref (cut_dist.(0) /. w) in
  for k = 1 to Array.length cut_dist - 1 do
    let shrink = 1.0 -. (1.0 /. (2.0 ** float_of_int k)) in
    d := !d -. (cut_dist.(k) *. shrink *. w)
  done;
  !d

let cut_dist_independent ps =
  let n = Array.length ps in
  if n = 0 then invalid_arg "Rla_model: empty receiver set";
  Array.iter (check_p "Rla_model.drift_independent") ps;
  let jdist = signal_count_dist ps in
  let q = 1.0 /. float_of_int n in
  let cuts = Array.make (n + 1) 0.0 in
  for j = 0 to n do
    if jdist.(j) > 0.0 then
      for k = 0 to j do
        cuts.(k) <- cuts.(k) +. (jdist.(j) *. binomial_pmf j k q)
      done
  done;
  cuts

let drift_independent ~ps w =
  if w <= 0.0 then invalid_arg "Rla_model.drift_independent: bad window";
  drift_of_cut_dist ~cut_dist:(cut_dist_independent ps) w

let cut_dist_common ~n ~p =
  if n <= 0 then invalid_arg "Rla_model: n must be positive";
  check_p "Rla_model.drift_common" p;
  (* With probability p all n receivers signal at once; the cut count
     is then Binomial(n, 1/n); otherwise no signal. *)
  let q = 1.0 /. float_of_int n in
  let cuts = Array.make (n + 1) 0.0 in
  for k = 0 to n do
    cuts.(k) <- p *. binomial_pmf n k q
  done;
  cuts.(0) <- cuts.(0) +. (1.0 -. p);
  cuts

let drift_common ~n ~p w =
  if w <= 0.0 then invalid_arg "Rla_model.drift_common: bad window";
  drift_of_cut_dist ~cut_dist:(cut_dist_common ~n ~p) w

(* Continuous-time version of [drift_common] for the mean-field
   solver: packets depart at rate w / rtt, each contributing the
   per-packet drift.  Uses the exact closed form of the cut-count
   expectation so the cost is O(1) in n (the solver targets n in the
   millions, where materializing the Binomial(n, 1/n) cut distribution
   would dominate): with K ~ Binomial(n, 1/n),
     P(K = 0)  = (1 - 1/n)^n
     E[2^-K]   = (1 - 1/(2n))^n
   so the per-packet drift is
     (1 - p (1 - P(K=0))) / w  -  p (1 - E[2^-K]) w.
   Clamps p just below 1 so RED profiles that saturate remain
   integrable. *)
let drift_rate_common ~n ~p ~rtt w =
  if n <= 0 then invalid_arg "Rla_model.drift_rate_common: bad n";
  if rtt <= 0.0 then invalid_arg "Rla_model.drift_rate_common: bad rtt";
  if w <= 0.0 then invalid_arg "Rla_model.drift_rate_common: bad window";
  if Float.is_nan p || p < 0.0 then
    invalid_arg "Rla_model.drift_rate_common: bad probability";
  let p = Float.min p (1.0 -. 1e-9) in
  let nf = float_of_int n in
  let b0 = (1.0 -. (1.0 /. nf)) ** nf in
  let shrink = 1.0 -. ((1.0 -. (1.0 /. (2.0 *. nf))) ** nf) in
  ((1.0 -. (p *. (1.0 -. b0))) -. (p *. shrink *. w *. w)) /. rtt

let bisect_zero f =
  (* Drift is positive for small w and negative for large w. *)
  let lo = ref 1e-6 and hi = ref 1.0 in
  while f !hi > 0.0 do
    hi := !hi *. 2.0;
    if !hi > 1e9 then invalid_arg "Rla_model: drift has no zero"
  done;
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid > 0.0 then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let pa_window_independent ~ps =
  let cut_dist = cut_dist_independent ps in
  bisect_zero (fun w -> drift_of_cut_dist ~cut_dist w)

let pa_window_common ~n ~p =
  let cut_dist = cut_dist_common ~n ~p in
  bisect_zero (fun w -> drift_of_cut_dist ~cut_dist w)

let proposition_bounds ~n ~p_max =
  if n <= 0 then invalid_arg "Rla_model.proposition_bounds: bad n";
  check_p "Rla_model.proposition_bounds" p_max;
  if p_max = 0.0 then invalid_arg "Rla_model.proposition_bounds: p_max zero";
  let tcp = sqrt (2.0 *. (1.0 -. p_max)) /. sqrt p_max in
  (tcp, sqrt (float_of_int n) *. tcp)

let satisfies_proposition ~n ~ps ~window =
  let p_max = Array.fold_left Stdlib.max 0.0 ps in
  let lo, hi = proposition_bounds ~n ~p_max in
  window > lo && window < hi

let min_ratio_for_upper_bound p1 =
  check_p "Rla_model.min_ratio_for_upper_bound" p1;
  p1 /. (2.0 -. (1.5 *. p1))

let window_ratio_to_tcp ~ps =
  let p_max = Array.fold_left Stdlib.max 0.0 ps in
  pa_window_independent ~ps /. Tcp_model.pa_window p_max

let equal_congestion_ratio ~n ~p =
  if n <= 0 then invalid_arg "Rla_model.equal_congestion_ratio: bad n";
  window_ratio_to_tcp ~ps:(Array.make n p)

let skewed_congestion_ratio ~n ~p_max ~eta =
  if n <= 0 then invalid_arg "Rla_model.skewed_congestion_ratio: bad n";
  if eta <= 1.0 then invalid_arg "Rla_model.skewed_congestion_ratio: bad eta";
  let ps = Array.make n (p_max /. eta) in
  ps.(0) <- p_max;
  window_ratio_to_tcp ~ps

let sample_cuts rng ~cut_dist =
  let u = Sim.Rng.uniform rng in
  let rec pick k acc =
    if k >= Array.length cut_dist - 1 then k
    else begin
      let acc = acc +. cut_dist.(k) in
      if u < acc then k else pick (k + 1) acc
    end
  in
  pick 0 0.0

let simulate_with ~rng ~cut_dist ~steps =
  if steps <= 0 then invalid_arg "Rla_model.simulate: bad steps";
  let w = ref 10.0 in
  let acc = ref 0.0 in
  for _ = 1 to steps do
    let k = sample_cuts rng ~cut_dist in
    if k = 0 then w := !w +. (1.0 /. !w)
    else w := Stdlib.max 1.0 (!w /. (2.0 ** float_of_int k));
    acc := !acc +. !w
  done;
  !acc /. float_of_int steps

let simulate_window ~rng ~ps ~steps =
  simulate_with ~rng ~cut_dist:(cut_dist_independent ps) ~steps

let simulate_window_common ~rng ~n ~p ~steps =
  simulate_with ~rng ~cut_dist:(cut_dist_common ~n ~p) ~steps
