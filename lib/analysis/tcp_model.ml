let check_p name p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg (name ^ ": congestion probability must lie in (0, 1)")

let pa_window p =
  check_p "Tcp_model.pa_window" p;
  sqrt (2.0 *. (1.0 -. p)) /. sqrt p

type domain_error = Not_a_probability | Below_domain | Above_domain

let domain_error_to_string = function
  | Not_a_probability -> "congestion probability is NaN"
  | Below_domain -> "congestion probability <= 0 (formula diverges)"
  | Above_domain -> "congestion probability >= 1 (window collapses)"

let pa_window_result p =
  if Float.is_nan p then Error Not_a_probability
  else if p <= 0.0 then Error Below_domain
  else if p >= 1.0 then Error Above_domain
  else Ok (sqrt (2.0 *. (1.0 -. p)) /. sqrt p)

let default_domain_eps = 1e-9

let pa_window_clamped ?(eps = default_domain_eps) p =
  if Float.is_nan p then invalid_arg "Tcp_model.pa_window_clamped: NaN";
  if not (eps > 0.0 && eps < 0.5) then
    invalid_arg "Tcp_model.pa_window_clamped: eps must lie in (0, 0.5)";
  let p = Float.min (1.0 -. eps) (Float.max eps p) in
  sqrt (2.0 *. (1.0 -. p)) /. sqrt p

let pa_window_approx p =
  check_p "Tcp_model.pa_window_approx" p;
  sqrt 2.0 /. sqrt p

let drift ~p w =
  check_p "Tcp_model.drift" p;
  if w <= 0.0 then invalid_arg "Tcp_model.drift: non-positive window";
  ((1.0 -. p) /. w) -. (p *. w /. 2.0)

(* Continuous-time drift kernel shared with the mean-field solver:
   ACKs arrive at rate (1-p) w / rtt, each adding 1/w; losses at rate
   p w / rtt, each costing w/2.  Accepts the closed interval p in
   [0, 1] (the solver's RED profile reaches both ends). *)
let window_rate ~p ~rtt w =
  if rtt <= 0.0 then invalid_arg "Tcp_model.window_rate: bad rtt";
  if w <= 0.0 then invalid_arg "Tcp_model.window_rate: non-positive window";
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Tcp_model.window_rate: probability outside [0, 1]";
  ((1.0 -. p) -. (p *. w *. w /. 2.0)) /. rtt

let mahdavi_floyd_rate ~rtt ~p =
  check_p "Tcp_model.mahdavi_floyd_rate" p;
  if rtt <= 0.0 then invalid_arg "Tcp_model.mahdavi_floyd_rate: bad rtt";
  1.3 /. (rtt *. sqrt p)

let throughput ~rtt ~p =
  if rtt <= 0.0 then invalid_arg "Tcp_model.throughput: bad rtt";
  pa_window p /. rtt

let congestion_probability_for_window w =
  if w <= 0.0 then
    invalid_arg "Tcp_model.congestion_probability_for_window: bad window";
  2.0 /. ((w *. w) +. 2.0)

let moderate_congestion_limit = 0.05

let simulate_pa_window ~rng ~p ~steps =
  check_p "Tcp_model.simulate_pa_window" p;
  if steps <= 0 then invalid_arg "Tcp_model.simulate_pa_window: bad steps";
  let w = ref (pa_window p) in
  let acc = ref 0.0 in
  for _ = 1 to steps do
    if Sim.Rng.bernoulli rng p then w := Stdlib.max 1.0 (!w /. 2.0)
    else w := !w +. (1.0 /. !w);
    acc := !acc +. !w
  done;
  !acc /. float_of_int steps
