(** Drift analysis of the RLA window process (section 4.2).

    Models the congestion window of an RLA sender listening to [n]
    receivers with per-packet congestion-signal probabilities
    [p_1..p_n], each signal triggering a halving independently with
    probability [1/n].  The proportional-average (PA) window is the
    zero of the expected drift; the paper's Proposition bounds it
    between the TCP PA window at [p_max] and [sqrt n] times it. *)

val two_receiver_window : p1:float -> p2:float -> float
(** Closed form of equation 3:
    [W^2 = 4(1 - (p1+p2)/2 + p1 p2/4) / (p1 + p2 - p1 p2 / 4)]. *)

val drift_independent : ps:float array -> float -> float
(** Expected drift of the window at [w] when the [n = length ps]
    receivers lose packets independently. *)

val pa_window_independent : ps:float array -> float
(** Zero of {!drift_independent} (bisection). *)

val drift_common : n:int -> p:float -> float -> float
(** Drift when all losses are common (one loss event signals all [n]
    receivers at once; the cut count is Binomial(n, 1/n)). *)

val pa_window_common : n:int -> p:float -> float
(** Zero of {!drift_common}. *)

val drift_rate_common : n:int -> p:float -> rtt:float -> float -> float
(** [drift_rate_common ~n ~p ~rtt w]: continuous-time window drift
    (windows per second) of the common-loss RLA process —
    [(w / rtt) * drift_common ~n ~p w].  Shared with the mean-field
    solver; accepts [p in [0, 1]] (clamped just below 1). *)

val proposition_bounds : n:int -> p_max:float -> float * float
(** Equation 2: [(sqrt(2(1-p)/p), sqrt n * sqrt(2(1-p)/p))]. *)

val satisfies_proposition : n:int -> ps:float array -> window:float -> bool
(** Check a window value against the Proposition at
    [p_max = max ps]. *)

val min_ratio_for_upper_bound : float -> float
(** [f(p1) = p1 / (2 - 1.5 p1)] from the proof: the upper bound of the
    two-receiver case needs [p2/p1 >= f(p1)]; with eta = 20 the RLA
    guarantees the ratio stays above 1/20 = 0.05 > f(0.05). *)

val window_ratio_to_tcp : ps:float array -> float
(** [pa_window_independent ps / Tcp_model.pa_window (max ps)] — the
    window-share multiplier the RLA gets over the soft-bottleneck TCP
    in the drift model. *)

val equal_congestion_ratio : n:int -> p:float -> float
(** Section 4.3, first regime: all [n] troubled receivers equally
    congested.  The paper claims the resulting throughput is at most
    four times the competing TCP's for {e any} n; in window terms this
    ratio stays below 2 (the remaining factor comes from the <= 2x
    RTT bound of equation 5). *)

val skewed_congestion_ratio : n:int -> p_max:float -> eta:float -> float
(** Section 4.3, second regime: one receiver at [p_max] and [n-1]
    receivers just congested enough to stay troubled
    ([p_max / eta]).  Grows with n — the multicast deliberately takes
    more when a single receiver is the only real bottleneck. *)

val simulate_window :
  rng:Sim.Rng.t -> ps:float array -> steps:int -> float
(** Monte-Carlo iterate of the RLA window process with independent
    losses; returns the sample-average window. *)

val simulate_window_common :
  rng:Sim.Rng.t -> n:int -> p:float -> steps:int -> float
(** Same with fully correlated losses. *)
