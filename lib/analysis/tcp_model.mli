(** Closed-form TCP steady-state models (section 4.1).

    [pa_window p] is the proportional-average window
    [sqrt(2(1-p)/p)] from the drift analysis of Ott, Kemperman &
    Mathis; [mahdavi_floyd_rate] is the popular
    [1.3 / (rtt * sqrt p)] throughput estimate the paper compares
    against.  Both hold for moderate congestion (p < 5%). *)

val pa_window : float -> float
(** Proportional-average window (packets) at congestion probability
    [p]; raises [Invalid_argument] outside (0, 1). *)

val pa_window_approx : float -> float
(** The small-p simplification [sqrt 2 / sqrt p]. *)

(** {2 Total variants for solver loops}

    The mean-field solver's drop-probability loop sweeps RED profiles
    that legitimately reach [p = 0] (average queue below [min_th]) and
    [p = 1] (average queue at [max_th]); {!pa_window} raises on both
    ends.  These variants make the domain behaviour explicit. *)

type domain_error =
  | Not_a_probability  (** NaN input. *)
  | Below_domain  (** [p <= 0]: the formula diverges. *)
  | Above_domain  (** [p >= 1]: the window collapses to 0. *)

val domain_error_to_string : domain_error -> string

val pa_window_result : float -> (float, domain_error) result
(** [pa_window] as a typed result: never raises. *)

val default_domain_eps : float
(** 1e-9: the default clamp width of {!pa_window_clamped}. *)

val pa_window_clamped : ?eps:float -> float -> float
(** [pa_window] evaluated at [p] clamped into [[eps, 1 - eps]]
    (default {!default_domain_eps}): a total, monotone version for
    fixed-point iterations.  [pa_window_clamped 0.0] is the (huge but
    finite) window at [p = eps], [pa_window_clamped 1.0] the (tiny but
    positive) window at [1 - eps].  Raises [Invalid_argument] only on
    NaN input or [eps] outside (0, 0.5). *)

val window_rate : p:float -> rtt:float -> float -> float
(** [window_rate ~p ~rtt w]: continuous-time window drift (windows per
    second) of an AIMD TCP flow at window [w], loss probability [p] and
    round-trip time [rtt]: [((1-p) - p w^2 / 2) / rtt].  This is
    {!drift} scaled by the packet rate [w / rtt]; shared with the
    mean-field transport.  Accepts the closed interval [p in [0, 1]]. *)

val drift : p:float -> float -> float
(** [drift ~p w]: expected per-ack window drift
    [(1-p)/w - p*w/2]; zero exactly at {!pa_window}. *)

val mahdavi_floyd_rate : rtt:float -> p:float -> float
(** Throughput (pkt/s) [1.3/(rtt*sqrt p)]. *)

val throughput : rtt:float -> p:float -> float
(** PA-window throughput estimate [pa_window p / rtt]. *)

val congestion_probability_for_window : float -> float
(** Inverse of {!pa_window}: the congestion probability yielding a
    given PA window ([p = 2/(w^2+2)]). *)

val moderate_congestion_limit : float
(** 0.05: the regime in which these formulas (and the paper's
    theorems) apply. *)

val simulate_pa_window :
  rng:Sim.Rng.t -> p:float -> steps:int -> float
(** Monte-Carlo check of the drift model: iterate the idealised window
    process ([w + 1/w] w.p. [1-p], [w/2] w.p. [p]) and return the
    sample-average window. *)
