(** Linter orchestration: target expansion, rule scoping, suppression,
    rendering.  This is the API both [bin/rla_lint] and the test suite
    drive. *)

val run : ?rules:string list -> paths:string list -> unit -> Finding.t list
(** Lints every .ml/.mli under [paths] (files or directories).  With
    [?rules], only those rules (plus {!Rules.always_on}) report.
    Raises [Invalid_argument] for unknown rules or missing paths.
    Findings come back sorted and deduplicated, already filtered by
    per-rule directory scope and in-source suppressions. *)

val parse_interface : string -> (Parsetree.signature, string) result
(** Parses an .mli with compiler-libs; exposed for {!Project_check}. *)

val render_text : Finding.t list -> string
(** One [file:line rule message] line per finding. *)

val to_json : Finding.t list -> Json.t

val of_json : Json.t -> (Finding.t list, string) result
(** Inverse of {!to_json} (the round-trip the tests lock in). *)

val exit_code : ?strict:bool -> Finding.t list -> int
(** 1 if any error finding (or, with [strict], any warning), else 0. *)
