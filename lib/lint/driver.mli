(** Linter orchestration: target expansion, rule scoping, suppression,
    rendering.  This is the API both [bin/rla_lint] and the test suite
    drive. *)

val run : ?rules:string list -> paths:string list -> unit -> Finding.t list
(** Lints every .ml/.mli under [paths] (files or directories).  With
    [?rules], only those rules (plus {!Rules.always_on}) report.
    Raises [Invalid_argument] for unknown rules or missing paths.
    Findings come back sorted and deduplicated, already filtered by
    per-rule directory scope and in-source suppressions. *)

val parse_interface : string -> (Parsetree.signature, string) result
(** Parses an .mli with compiler-libs; exposed for {!Project_check}. *)

val scope_key : string -> string option
(** The scope key {!Rules.in_scope} filters on: ["lib/<sub>"] for files
    under a lib component, the tree name for bin/bench/test/examples,
    [None] otherwise. *)

val escape_graph : paths:string list -> unit -> string
(** Builds the cross-module escape graph over [paths] and renders the
    [--graph] listing (see {!Escape.dump}). *)

val hot_annotations : paths:string list -> unit -> (string * string) list
(** Every well-formed [(* lint: hot ... *)] directive under [paths] as
    [(file, target)] pairs, in sorted file order. *)

val render_text : Finding.t list -> string
(** One [file:line rule message] line per finding. *)

val to_json : Finding.t list -> Json.t

val to_sarif : Finding.t list -> Json.t
(** Minimal SARIF 2.1.0 document (one run, registry rule table, one
    result per finding) for [--format sarif]. *)

val of_json : Json.t -> (Finding.t list, string) result
(** Inverse of {!to_json} (the round-trip the tests lock in). *)

val exit_code : ?strict:bool -> Finding.t list -> int
(** 1 if any error finding (or, with [strict], any warning), else 0. *)
