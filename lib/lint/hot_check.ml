(* The alloc-hot contract.

   A function annotated [(* lint: hot <name> -- <reason> *)] is a
   measured hot path (heap pop, scheduler step, packet pool, ack
   processing): the annotation freezes the claim that its body does not
   allocate, and this pass fails the build when a later edit introduces
   an allocation construct — closures, tuples, records, payload-carrying
   constructors, [ref] cells, [Printf]/[Format]/[List] combinators,
   string building, float-typed lets (boxing).

   Two subtrees are deliberately exempt because they are off the fast
   path by construction: conditionals guarded by [Invariant.enabled]
   (debug-only instrumentation that invariant-smoke proves inert), and
   error exits ([invalid_arg]/[failwith]/[raise]/[assert]) — an
   allocation on the way to an exception is free.  Partial application
   is NOT detected (it is invisible syntactically); reviewers still own
   that one.

   [hot-coverage] keeps the annotations honest: each must name a
   binding the file actually defines and its interface exports, so a
   rename cannot silently orphan the contract. *)

open Parsetree

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let rec longident_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> longident_parts p @ [ s ]
  | Longident.Lapply (p, _) -> longident_parts p

let joined lid = String.concat "." (longident_parts lid)

(* --- binding discovery ---------------------------------------------- *)

let bindings_of_structure items =
  let out = ref [] in
  let rec go prefix items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } ->
                    out := (prefix ^ txt, vb.pvb_expr) :: !out
                | _ -> ())
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some name; _ };
              pmb_expr = { pmod_desc = Pmod_structure inner; _ };
              _;
            } ->
            go (prefix ^ name ^ ".") inner
        | _ -> ())
      items
  in
  go "" items;
  List.rev !out

let rec exported_paths prefix sg =
  List.concat_map
    (fun item ->
      match item.psig_desc with
      | Psig_value vd -> [ prefix ^ vd.pval_name.txt ]
      | Psig_module
          {
            pmd_name = { txt = Some m; _ };
            pmd_type = { pmty_desc = Pmty_signature inner; _ };
            _;
          } ->
          exported_paths (prefix ^ m ^ ".") inner
      | _ -> [])
    sg

(* --- allocation scan ------------------------------------------------ *)

let error_exits = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace" ]

let float_op = function
  | "+." | "-." | "*." | "/." | "Float.add" | "Float.sub" | "Float.mul"
  | "Float.div" ->
      true
  | _ -> false

(* Does an expression read [Invariant.enabled] (directly or via [!])?
   Such a conditional guards debug instrumentation. *)
let mentions_invariant_enabled cond =
  let found = ref false in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match longident_parts txt with
              | [ "Invariant"; "enabled" ] | [ "enabled" ] -> found := true
              | parts -> (
                  match List.rev parts with
                  | "enabled" :: _ -> found := true
                  | _ -> ()))
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  iterator.expr iterator cond;
  !found

let alloc_head = function
  | "ref" -> Some "ref-cell allocation"
  | "String.concat" | "^" | "@" | "Array.append" | "Bytes.concat" ->
      Some "string/list building"
  | j when String.length j > 7 && String.sub j 0 7 = "Printf." ->
      Some ("call into " ^ j)
  | j when String.length j > 7 && String.sub j 0 7 = "Format." ->
      Some ("call into " ^ j)
  | j when String.length j > 5 && String.sub j 0 5 = "List." ->
      Some ("call into " ^ j ^ " (closure + list cells)")
  | _ -> None

let scan_body ~file ~target ~reason body =
  let findings = ref [] in
  let flag line what =
    findings :=
      Finding.make ~file ~line ~rule:"alloc-hot"
        ~severity:(Rules.severity_of "alloc-hot")
        (Printf.sprintf
           "%s in hot function %s (declared hot: %s); keep the fast path \
            allocation-free or waive with a vetted reason"
           what target reason)
      :: !findings
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_ifthenelse (cond, _, _) when mentions_invariant_enabled cond
            ->
              (* Debug-only branch; invariant-smoke proves it inert. *)
              ()
          | Pexp_assert _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when List.mem (joined txt) error_exits ->
              ()
          | Pexp_fun _ ->
              flag (line_of e.pexp_loc) "closure allocation";
              Ast_iterator.default_iterator.expr it e
          | Pexp_function _ ->
              flag (line_of e.pexp_loc) "closure allocation";
              Ast_iterator.default_iterator.expr it e
          | Pexp_tuple _ ->
              flag (line_of e.pexp_loc) "tuple allocation";
              Ast_iterator.default_iterator.expr it e
          | Pexp_record _ ->
              flag (line_of e.pexp_loc) "record allocation";
              Ast_iterator.default_iterator.expr it e
          | Pexp_construct ({ txt; _ }, Some _) ->
              flag (line_of e.pexp_loc)
                (Printf.sprintf "constructor %s allocation" (joined txt));
              Ast_iterator.default_iterator.expr it e
          | Pexp_variant (tag, Some _) ->
              flag (line_of e.pexp_loc)
                (Printf.sprintf "variant `%s allocation" tag);
              Ast_iterator.default_iterator.expr it e
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              (match alloc_head (joined txt) with
              | Some what -> flag (line_of e.pexp_loc) what
              | None -> ());
              Ast_iterator.default_iterator.expr it e)
          | Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match vb.pvb_expr.pexp_desc with
                  | Pexp_apply
                      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
                    when float_op (joined txt) ->
                      flag (line_of vb.pvb_loc)
                        "float-valued let (boxing risk)"
                  | _ -> ())
                vbs;
              Ast_iterator.default_iterator.expr it e
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  iterator.expr iterator body;
  List.rev !findings

(* Skip the binding's own parameter lambdas: [let f a b = body] parses
   as nested [Pexp_fun]s that are not allocations per call. *)
let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | _ -> e

let check ~file ~hots ~interface ast =
  let bindings = bindings_of_structure ast in
  let exported =
    Option.map (fun sg -> exported_paths "" sg) interface
  in
  List.concat_map
    (fun (h : Annot.hot) ->
      match List.assoc_opt h.target bindings with
      | None ->
          [
            Finding.make ~file ~line:h.hot_line ~rule:"hot-coverage"
              ~severity:(Rules.severity_of "hot-coverage")
              (Printf.sprintf
                 "hot annotation names %s, but this file defines no such \
                  binding"
                 h.target);
          ]
      | Some expr -> (
          match exported with
          | Some paths when not (List.mem h.target paths) ->
              [
                Finding.make ~file ~line:h.hot_line ~rule:"hot-coverage"
                  ~severity:(Rules.severity_of "hot-coverage")
                  (Printf.sprintf
                     "hot annotation names %s, which the interface does \
                      not export — hot paths are part of the public \
                      performance contract"
                     h.target);
              ]
          | _ -> (
              let body = strip_params expr in
              match body.pexp_desc with
              | Pexp_function cases ->
                  List.concat_map
                    (fun c ->
                      scan_body ~file ~target:h.target ~reason:h.hot_reason
                        c.pc_rhs)
                    cases
              | _ ->
                  scan_body ~file ~target:h.target ~reason:h.hot_reason body)))
    hots
