(* Parsetree checks.  Everything here is purely syntactic
   (compiler-libs Pparse/Ast_iterator, no typing pass), so the rules
   are deliberately conservative approximations:

   - wall-clock / ambient-rng: exact identifier matches, no false
     positives.
   - poly-compare: flags the unqualified polymorphic [compare] (and
     Hashtbl.hash), [=]/[<>] against a float literal, and comparison
     operators applied to the same record field of two values
     (`a.prio < b.prio`) — the pattern by which polymorphic compare
     sneaks into heap orderings and packet comparisons.
   - hashtbl-order: exact matches on Hashtbl.iter/fold/to_seq*.

   What the syntax cannot prove is backstopped dynamically by
   Sim.Invariant. *)

open Parsetree

let ident_path lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let wall_clock_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
    "Sys.time" ]

let poly_compare_idents =
  [ "compare"; "Stdlib.compare"; "Pervasives.compare"; "Hashtbl.hash";
    "Hashtbl.seeded_hash" ]

let hashtbl_order_idents =
  [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values" ]

let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let equality_ops = [ "="; "<>" ]

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let field_name e =
  match e.pexp_desc with
  | Pexp_field (_, lid) -> (
      match Longident.flatten lid.txt with
      | parts when parts <> [] -> Some (List.nth parts (List.length parts - 1))
      | _ -> None
      | exception _ -> None)
  | _ -> None

let check_impl ~file structure =
  let findings = ref [] in
  let add ~loc rule message =
    let pos = loc.Location.loc_start in
    findings :=
      Finding.make ~file ~line:pos.Lexing.pos_lnum
        ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
        ~rule ~severity:(Rules.severity_of rule) message
      :: !findings
  in
  let check_ident e =
    match e.pexp_desc with
    | Pexp_ident lid ->
        let path = ident_path lid.txt in
        let loc = e.pexp_loc in
        if List.mem path wall_clock_idents then
          add ~loc "wall-clock"
            (Printf.sprintf
               "%s reads the wall clock; use Sim.Scheduler.now (or annotate \
                a vetted measurement sink)"
               path)
        else if String.equal path "Random.self_init"
                || String.equal path "Random.State.make_self_init" then
          add ~loc "ambient-rng"
            (Printf.sprintf "%s seeds from ambient entropy; runs would no \
                             longer replay" path)
        else if
          starts_with ~prefix:"Random." path
          && not (starts_with ~prefix:"Random.State." path)
        then
          add ~loc "ambient-rng"
            (Printf.sprintf
               "global %s draws from shared ambient state; use the seeded \
                Sim.Rng carried by the component"
               path)
        else if List.mem path poly_compare_idents then
          add ~loc "poly-compare"
            (Printf.sprintf
               "polymorphic %s; use an explicit comparator (Float.compare, \
                Int.compare, String.compare, ...)"
               path)
        else if List.mem path hashtbl_order_idents then
          add ~loc "hashtbl-order"
            (Printf.sprintf
               "%s iterates in hash order, which is not part of the replay \
                contract; sort the keys first or keep an insertion-order \
                list"
               path)
    | _ -> ()
  in
  let check_comparison e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
                  [ (_, a); (_, b) ])
      when List.mem op comparison_ops ->
        let loc = e.pexp_loc in
        if List.mem op equality_ops && (is_float_literal a || is_float_literal b)
        then
          add ~loc "poly-compare"
            (Printf.sprintf
               "float equality via polymorphic (%s); floats want explicit \
                comparison (Float.equal or an epsilon)"
               op)
        else begin
          match (field_name a, field_name b) with
          | Some fa, Some fb when String.equal fa fb ->
              add ~loc "poly-compare"
                (Printf.sprintf
                   "(%s) on record field %s of two values; spell out the \
                    comparator so the ordering is explicit"
                   op fa)
          | _ -> ()
        end
    | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check_ident e;
          check_comparison e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iterator.structure iterator structure;
  List.rev !findings
