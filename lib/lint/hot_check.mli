(** The alloc-hot contract: functions declared
    [(* lint: hot <name> -- <reason> *)] are scanned for allocation
    constructs, and [hot-coverage] verifies each annotation names a
    binding the file defines and its interface exports.

    Exempt subtrees: conditionals guarded by [Invariant.enabled] and
    error exits ([invalid_arg]/[failwith]/[raise]/[assert]).  Partial
    application is not detectable syntactically and is out of scope. *)

val check :
  file:string ->
  hots:Annot.hot list ->
  interface:Parsetree.signature option ->
  Parsetree.structure ->
  Finding.t list
(** [check ~file ~hots ~interface ast] returns the [alloc-hot] and
    [hot-coverage] findings for one implementation file.  [interface]
    is the parsed sibling [.mli] when one exists; without one, a
    defined binding counts as exported. *)
